#!/bin/sh
# Tier-1 verification loop: build, vet, and run the full test suite with
# the race detector enabled (the live runtime is heavily concurrent).
# The routing-snapshot stress tests run first and explicitly so the
# lock-free emission path is always exercised under the race detector,
# even when the package list or cache state changes.
# The telemetry scrape-under-churn stress runs the same way: every /metrics
# handler read races live emissions and Apply re-assignments.
# The health-under-churn stress adds the observability layer to that mix:
# a 2 ms sampler feeds the single-writer tsdb rings and the SLO engine
# while scrapers read /metrics, /debug/timeseries, and /debug/health and
# Apply flips the placement — the lock-free ring reader/writer claims
# only hold if this stays clean under the race detector.
# The chaos matrix (worker crashes, crash-during-migration, node failure →
# reschedule) runs twice under the race detector: fault injection +
# supervised restart are timing-sensitive, and each test asserts
# at-least-once conservation (every spout root acked or replayed).
# The distributed smoke runs explicitly under the race detector: real
# worker processes are spawned over loopback TCP, one is killed with a
# real SIGKILL, and the tests assert supervised respawn plus exact
# at-least-once conservation across the process death.
# The distributed pass includes the trace-under-migration stress
# (TestDistributedTraceUnderMigration): sampled tuple trees crossing a
# live §IV-D migration must assemble completely at the driver — no orphan
# spans — with critical-path shares summing to the completion latency.
# The allocation gate reruns the emit-path benchmarks and fails if ANY of
# them regressed past 1 alloc/op: the pooled emission rewrite holds both
# the plain path and the tracing-enabled unsampled path at 0, and a
# regression here silently costs double-digit throughput on the GC-bound
# 1-CPU benchmark hosts.
# The codec fuzz smoke throws 30s of generated hostile bytes at the wire
# decoders (workers decode frames from the network, so malformed input
# must error, never panic).
# The golden-assignment tests pin every scheduling algorithm's output
# byte-for-byte, and the hot-swap test swaps contenders by name on a
# running engine; both run explicitly so scheduler-API changes cannot
# silently alter placements. The arena smoke then runs every registered
# algorithm over the live workload — a contender that panics, drops an
# executor, or shares a slot across topologies exits non-zero here.
# The experiment package replays full paper figures, which is slow under
# the race detector — hence the raised per-package timeout.
# The shuffled pass reorders test execution within every package, catching
# tests that only pass because an earlier test left state behind.
set -eux
cd "$(dirname "$0")"
test -z "$(gofmt -l .)"
go build ./...
go vet ./...
go test -race -count=1 -run 'TestRoutingSnapshotStress|TestRouteObservesSinglePlacement|TestEmissionsFlowWhileEngineLockHeld|TestMonitorStopConcurrent' ./internal/live
go test -race -count=1 -run 'TestScrapeUnderChurnStress|TestHealthUnderChurnStress' ./internal/telemetry
go test -race -count=2 -run 'TestChaos|TestReliabilityParityShape' ./internal/live
go test -race -count=1 -run 'TestDistributed|TestStaleGen' ./internal/dist
go test -count=1 -run '^$' -bench BenchmarkEmit -benchmem ./internal/live |
	awk '/^BenchmarkEmit/ { seen++; allocs = $(NF-1)
	       if (allocs + 0 > 1) { print "emit-path allocation regression: " $1 " at " allocs " allocs/op (budget 1)"; bad = 1 }
	       else { print "emit-path allocs/op: " $1 " " allocs " (budget 1)" } }
	     END { if (!seen) { print "emit-path allocation gate: no BenchmarkEmit output"; exit 1 }
	           exit bad }'
go test -count=1 -fuzz 'FuzzDecodeValues' -fuzztime 15s -run '^$' ./internal/live
go test -count=1 -fuzz 'FuzzDecodeFrame' -fuzztime 15s -run '^$' ./internal/live
go test -race -count=1 -run 'TestGoldenAssignments' ./internal/scheduler
go test -race -count=1 -run 'TestHotSwapMidRunReschedulesCleanly' ./internal/live
go run ./cmd/tstorm-bench -arena -duration 250ms -json /tmp/tstorm_arena_smoke.json
go test -shuffle=on -count=1 ./...
go test -race -timeout 30m ./...
