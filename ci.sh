#!/bin/sh
# Tier-1 verification loop: build, vet, and run the full test suite with
# the race detector enabled (the live runtime is heavily concurrent).
# The experiment package replays full paper figures, which is slow under
# the race detector — hence the raised per-package timeout.
set -eux
cd "$(dirname "$0")"
go build ./...
go vet ./...
go test -race -timeout 30m ./...
