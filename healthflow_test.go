package tstorm_test

// End-to-end observability-layer test on the public facade: a live stack
// wired WithHealth must detect a CrashWorker-induced throughput collapse
// purely from the retained time series — throughput-floor degrades, the
// transition lands in the trace ring, the supervisor's restart heals it,
// and the recovery transition lands too. The sampler is driven manually
// (WithSampleEvery pushed out to an hour) so the test controls the
// series' clock deterministically instead of racing a 1 s cadence.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"tstorm"
	"tstorm/internal/cluster"
)

// healthTrace scans the recorder for a health transition of the given
// kind on the given rule.
func healthTrace(rec *tstorm.TraceRecorder, kind, rule string) bool {
	for _, ev := range rec.Events() {
		if string(ev.Kind) == kind && ev.Where == rule {
			return true
		}
	}
	return false
}

func TestHealthDetectsCrashAndRecovery(t *testing.T) {
	b := tstorm.NewTopology("healthflow", 2)
	b.SetAckers(1)
	b.Spout("src", 1).Output("default", "v")
	b.Bolt("work", 2).Shuffle("src")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tstorm.NewCluster(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := tstorm.NewTraceRecorder(512)
	lcfg := tstorm.DefaultLiveConfig()
	lcfg.Trace = rec
	eng, err := tstorm.NewLiveEngine(lcfg, cl)
	if err != nil {
		t.Fatal(err)
	}

	// Spout and acker on node01; both sink bolts alone on node02, so one
	// CrashWorker kills exactly the processing capacity being watched.
	slotA := tstorm.SlotID{Node: "node01", Port: tstorm.BasePort}
	slotB := tstorm.SlotID{Node: "node02", Port: tstorm.BasePort}
	initial := cluster.NewAssignment(0)
	for _, ex := range top.Executors() {
		slot := slotA
		if ex.Component == "work" {
			slot = slotB
		}
		initial.Assign(ex, slot)
	}

	var seen int64
	app := &tstorm.App{
		Topology:      top,
		Spouts:        map[string]func() tstorm.Spout{"src": func() tstorm.Spout { return &facadeSpout{} }},
		Bolts:         map[string]func() tstorm.Bolt{"work": func() tstorm.Bolt { return facadeBolt{seen: &seen} }},
		SpoutInterval: map[string]time.Duration{"src": time.Millisecond},
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	stack, err := tstorm.Wire(eng,
		tstorm.WithMonitorPeriod(time.Hour),
		tstorm.WithGeneratePeriod(time.Hour),
		tstorm.WithHealth(),
		tstorm.WithSampleEvery(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Stop()
	if stack.TSDB == nil || stack.Health == nil || stack.Sampler() == nil {
		t.Fatal("WithHealth left the observability layer unwired")
	}

	// Manual sampling clock: every tick advances the series one synthetic
	// second while ~20 ms of real traffic accumulates underneath.
	sim := time.Now()
	tick := func() {
		time.Sleep(20 * time.Millisecond)
		sim = sim.Add(time.Second)
		stack.Sampler().Tick(sim)
	}

	ruleLevel := func() string {
		lvl, ok := stack.Health.RuleLevel("throughput-floor")
		if !ok {
			t.Fatal("throughput-floor rule missing")
		}
		return lvl.String()
	}

	// Healthy phase: seed the EWMA baseline and fill the rate window.
	for i := 0; i < 10; i++ {
		tick()
	}
	if got := ruleLevel(); got != "ok" {
		t.Fatalf("throughput-floor = %s after healthy warmup, want ok", got)
	}

	// Fault phase: keep killing node02's executors (the supervisor keeps
	// restarting them) until the retained series shows the collapse.
	degraded := false
	for i := 0; i < 40 && !degraded; i++ {
		eng.CrashWorker(slotB)
		tick()
		degraded = ruleLevel() != "ok"
	}
	if !degraded {
		t.Fatal("throughput-floor never left ok while the sink slot was being crashed")
	}
	// A deep collapse may escalate straight past degraded, so either
	// fault-transition kind satisfies the detection claim.
	if !healthTrace(rec, "health-degraded", "throughput-floor") &&
		!healthTrace(rec, "health-critical", "throughput-floor") {
		t.Error("fault transition missing from the trace ring")
	}

	// Recovery phase: stop crashing, let the supervisor restart the
	// bolts, and keep sampling until the rule clears its hysteresis.
	deadline := time.Now().Add(30 * time.Second)
	for ruleLevel() != "ok" {
		if time.Now().After(deadline) {
			t.Fatal("throughput-floor never recovered after the crashes stopped")
		}
		tick()
	}
	if !healthTrace(rec, "health-recovered", "throughput-floor") {
		t.Error("recovered transition missing from the trace ring")
	}

	// The same story must be visible over the facade's HTTP surface.
	srv, err := stack.StartTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	var st tstorm.HealthStatus
	if err := json.Unmarshal([]byte(get("/debug/health")), &st); err != nil {
		t.Fatalf("/debug/health not JSON: %v", err)
	}
	if len(st.Rules) == 0 || st.Transitions < 2 {
		t.Errorf("/debug/health reports %d rules, %d transitions; want the full story", len(st.Rules), st.Transitions)
	}
	var ts struct {
		Series []struct {
			Name   string            `json:"name"`
			Points []json.RawMessage `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(get("/debug/timeseries?family=sink_processed_total")), &ts); err != nil {
		t.Fatalf("/debug/timeseries not JSON: %v", err)
	}
	if len(ts.Series) != 1 || len(ts.Series[0].Points) == 0 {
		t.Error("/debug/timeseries has no retained sink_processed_total points")
	}
	if !strings.Contains(get("/metrics"), "tstorm_health_level ") {
		t.Error("/metrics missing the tstorm_health_level family")
	}
}
