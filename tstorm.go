// Package tstorm is a Go reproduction of "T-Storm: Traffic-aware Online
// Scheduling in Storm" (Xu, Chen, Tang, Su — IEEE ICDCS 2014): a complete
// Storm-like stream-processing engine running on a deterministic
// discrete-event simulation of a cluster, plus the T-Storm scheduling
// architecture on top of it — per-node load monitors, an EWMA load
// database, a hot-swappable schedule generator running the paper's
// traffic-aware Algorithm 1 with its consolidation factor γ, a thin custom
// scheduler, and the smooth re-assignment machinery of §IV-D.
//
// Two execution backends share that scheduling stack: the deterministic
// simulation (Runtime + Wire) and a live wall-clock engine that runs the
// same Apps on real goroutines with bounded-channel queues (LiveEngine +
// WireLive), where node boundaries are emulated by serialization and copy
// cost so traffic-aware placement measurably raises real throughput.
//
// This root package is the public facade: it re-exports the main types
// and provides Wire, which assembles the whole T-Storm stack in one call.
// The examples/ directory shows complete programs; cmd/tstorm-bench
// regenerates every figure of the paper's evaluation.
//
// A minimal session:
//
//	b := tstorm.NewTopology("demo", 4)
//	b.SetAckers(1)
//	b.Spout("src", 1).Output("default", "v")
//	b.Bolt("work", 2).Shuffle("src")
//	top, _ := b.Build()
//
//	cl, _ := tstorm.NewCluster(3, 4, 2000, 4)
//	rt, _ := tstorm.NewRuntime(tstorm.TStormConfig(), cl)
//	initial, _ := tstorm.InitialSchedule(top, cl)
//	_ = rt.Submit(&tstorm.App{ /* code + costs */ }, initial)
//	stack, _ := tstorm.Wire(rt, 1.5)
//	_ = rt.RunFor(10 * time.Minute)
//	_ = stack
package tstorm

import (
	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/engine"
	"tstorm/internal/live"
	"tstorm/internal/loaddb"
	"tstorm/internal/monitor"
	"tstorm/internal/predictor"
	"tstorm/internal/scheduler"
	"tstorm/internal/telemetry"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tuple"
)

// Topology model.
type (
	// Topology is a validated Storm application graph.
	Topology = topology.Topology
	// TopologyBuilder assembles a Topology.
	TopologyBuilder = topology.Builder
	// ExecutorID identifies one executor of one topology.
	ExecutorID = topology.ExecutorID
	// Tuple is the unit of data flowing through a topology.
	Tuple = tuple.Tuple
	// Values is a tuple's payload.
	Values = tuple.Values
)

// Physical cluster model.
type (
	// Cluster is a fixed set of worker nodes.
	Cluster = cluster.Cluster
	// Node is one worker node.
	Node = cluster.Node
	// SlotID identifies a worker slot (node, port).
	SlotID = cluster.SlotID
	// Assignment maps executors to slots.
	Assignment = cluster.Assignment
)

// Execution engine.
type (
	// Runtime is the simulated Storm cluster.
	Runtime = engine.Runtime
	// Config holds the engine's timing and cost parameters.
	Config = engine.Config
	// App bundles a topology with its component code and costs.
	App = engine.App
	// Spout produces the topology's input stream.
	Spout = engine.Spout
	// Bolt consumes and processes tuples.
	Bolt = engine.Bolt
	// Emitter is handed to bolts to emit tuples.
	Emitter = engine.Emitter
	// SpoutEmitter is handed to spouts to emit root tuples.
	SpoutEmitter = engine.SpoutEmitter
	// Context gives user code its identity.
	Context = engine.Context
	// CostFn models a component's per-tuple CPU cost.
	CostFn = engine.CostFn
	// TopologyMetrics collects a topology's measurements.
	TopologyMetrics = engine.TopologyMetrics
)

// Scheduling.
type (
	// Algorithm computes executor-to-slot assignments.
	Algorithm = scheduler.Algorithm
	// SchedulerInput carries what algorithms may use.
	SchedulerInput = scheduler.Input
	// TrafficAware is the paper's Algorithm 1.
	TrafficAware = core.TrafficAware
	// Generator is the schedule generator daemon.
	Generator = core.Generator
	// CustomScheduler fetches and applies generated schedules.
	CustomScheduler = core.CustomScheduler
	// LoadDB is the load-information database.
	LoadDB = loaddb.DB
	// MonitorFleet drives the per-node load monitors.
	MonitorFleet = monitor.Fleet
)

// Live (wall-clock) runtime: the same App and scheduling brain on real
// goroutines instead of the discrete-event simulation.
type (
	// LiveEngine executes topologies on one goroutine per executor with
	// bounded-channel queues; worker groups map to cluster slots. Routing
	// reads an immutable copy-on-write snapshot (republished atomically by
	// Submit/Apply), so emitters never take the engine lock on the
	// per-tuple hot path.
	LiveEngine = live.Engine
	// LiveConfig holds the live engine's knobs.
	LiveConfig = live.Config
	// LiveMonitor samples executor CPU and traffic over wall-clock windows.
	LiveMonitor = live.Monitor
	// LiveGenerator periodically schedules the live engine.
	LiveGenerator = live.Generator
	// LiveGeneratorConfig holds the live generator's knobs.
	LiveGeneratorConfig = live.GeneratorConfig
	// LiveTotals is a snapshot of the live engine's counters.
	LiveTotals = live.Totals
)

// DefaultLiveConfig returns the live engine's default configuration.
func DefaultLiveConfig() LiveConfig { return live.DefaultConfig() }

// NewLiveEngine builds a wall-clock execution engine over the cluster.
func NewLiveEngine(cfg LiveConfig, cl *Cluster) (*LiveEngine, error) {
	return live.NewEngine(cfg, cl)
}

// LiveStack is the T-Storm scheduling architecture wired onto the live
// runtime: the same load database and Algorithm 1 as Wire's Stack, fed by
// wall-clock measurements instead of simulated ones.
type LiveStack struct {
	Engine    *LiveEngine
	DB        *LoadDB
	Monitor   *LiveMonitor
	Generator *LiveGenerator
}

// WireLive assembles the T-Storm stack on a live engine: a wall-clock
// monitor sampling every 20 s into an α=0.5 load DB and a schedule
// generator running Algorithm 1 with the given γ every 300 s. Submit
// topologies and Start the engine first.
func WireLive(eng *LiveEngine, gamma float64) (*LiveStack, error) {
	db := loaddb.New(0.5)
	mon := live.StartMonitor(eng, db, live.DefaultMonitorPeriod)
	gen, err := live.StartGenerator(eng, db, live.DefaultGeneratorConfig(), core.NewTrafficAware(gamma))
	if err != nil {
		mon.Stop()
		return nil, err
	}
	return &LiveStack{Engine: eng, DB: db, Monitor: mon, Generator: gen}, nil
}

// StartTelemetry serves the stack's observability endpoints — Prometheus
// text-format /metrics, /debug/placement, and /debug/trace (when the
// engine was built with LiveConfig.Trace) — on addr (e.g. ":9090", or
// "127.0.0.1:0" for an ephemeral port; read the bound address back with
// Addr). Close the returned server when done.
func (s *LiveStack) StartTelemetry(addr string) (*TelemetryServer, error) {
	srv, err := telemetry.NewServer(telemetry.Config{
		Engine:  s.Engine,
		Monitor: s.Monitor,
		Trace:   s.Engine.Trace(),
	})
	if err != nil {
		return nil, err
	}
	if err := srv.Start(addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// Stop halts the live stack's periodic work (not the engine itself).
func (s *LiveStack) Stop() {
	s.Monitor.Stop()
	s.Generator.Stop()
}

// Forget drops a dead topology's measurements from the live stack: the
// monitor prunes its flow memory and stops reporting the topology's
// executors, and the load database deletes its records — so later
// sampling rounds cannot resurrect the keys.
func (s *LiveStack) Forget(topo string) {
	s.Monitor.Forget(topo)
}

// Observability.
type (
	// TraceRecorder captures structured runtime events.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded runtime event.
	TraceEvent = trace.Event
	// TelemetryServer serves /metrics (Prometheus text format),
	// /debug/placement, and /debug/trace for a live engine.
	TelemetryServer = telemetry.Server
	// TelemetryConfig selects what a TelemetryServer exposes.
	TelemetryConfig = telemetry.Config
	// Estimator is a pluggable load estimator (§IV-B extension point).
	Estimator = predictor.Estimator
)

// NewTelemetryServer builds a telemetry server over a live engine and
// optional monitor/trace sources (not yet listening; call Start).
func NewTelemetryServer(cfg TelemetryConfig) (*TelemetryServer, error) {
	return telemetry.NewServer(cfg)
}

// NewTraceRecorder returns a bounded event recorder; attach it via
// Config.Trace before building the runtime.
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// NewTopology starts a topology builder with the given name and requested
// worker count.
func NewTopology(name string, numWorkers int) *TopologyBuilder {
	return topology.NewBuilder(name, numWorkers)
}

// NewCluster builds a cluster of n identical nodes (cores × coreMHz CPU,
// slots worker slots each).
func NewCluster(n, cores int, coreMHz float64, slots int) (*Cluster, error) {
	return cluster.Uniform(n, cores, coreMHz, slots)
}

// NewRuntime builds a simulated Storm runtime over the cluster.
func NewRuntime(cfg Config, cl *Cluster) (*Runtime, error) {
	return engine.NewRuntime(cfg, cl)
}

// DefaultConfig reproduces stock Storm 0.8 behaviour.
func DefaultConfig() Config { return engine.DefaultConfig() }

// TStormConfig enables T-Storm's smooth re-assignment (§IV-D).
func TStormConfig() Config { return engine.TStormConfig() }

// NewTrafficAware returns Algorithm 1 with consolidation factor γ.
func NewTrafficAware(gamma float64) *TrafficAware { return core.NewTrafficAware(gamma) }

// InitialSchedule computes T-Storm's modified initial placement for a
// topology: min(N_u, nodes) workers, one per node.
func InitialSchedule(top *Topology, cl *Cluster) (*Assignment, error) {
	return scheduler.TStormInitial{}.Schedule(&scheduler.Input{
		Topologies: []*Topology{top}, Cluster: cl,
	})
}

// DefaultSchedule computes Storm's default round-robin placement.
func DefaultSchedule(top *Topology, cl *Cluster) (*Assignment, error) {
	return scheduler.RoundRobin{}.Schedule(&scheduler.Input{
		Topologies: []*Topology{top}, Cluster: cl,
	})
}

// Stack is the wired T-Storm scheduling architecture of Fig. 4.
type Stack struct {
	DB        *LoadDB
	Monitors  *MonitorFleet
	Generator *Generator
	Scheduler *CustomScheduler
}

// Wire assembles the full T-Storm stack on a runtime: load monitors
// sampling every 20 s into an α=0.5 load DB, a schedule generator running
// Algorithm 1 with the given γ on the paper's periods, and the custom
// scheduler fetching every 10 s.
func Wire(rt *Runtime, gamma float64) (*Stack, error) {
	db := loaddb.New(0.5)
	fleet := monitor.Start(rt, db, monitor.DefaultPeriod)
	gen, err := core.StartGenerator(rt, db, core.DefaultGeneratorConfig(), core.NewTrafficAware(gamma))
	if err != nil {
		fleet.Stop()
		return nil, err
	}
	cs := core.StartCustomScheduler(rt, core.DefaultFetchPeriod)
	return &Stack{DB: db, Monitors: fleet, Generator: gen, Scheduler: cs}, nil
}

// Stop halts the stack's periodic work.
func (s *Stack) Stop() {
	s.Monitors.Stop()
	s.Generator.Stop()
	s.Scheduler.Stop()
}
