// Package tstorm is a Go reproduction of "T-Storm: Traffic-aware Online
// Scheduling in Storm" (Xu, Chen, Tang, Su — IEEE ICDCS 2014): a complete
// Storm-like stream-processing engine running on a deterministic
// discrete-event simulation of a cluster, plus the T-Storm scheduling
// architecture on top of it — per-node load monitors, an EWMA load
// database, a hot-swappable schedule generator running the paper's
// traffic-aware Algorithm 1 with its consolidation factor γ, a thin custom
// scheduler, and the smooth re-assignment machinery of §IV-D.
//
// Two execution backends share that scheduling stack: the deterministic
// simulation (Runtime) and a live wall-clock engine that runs the same
// Apps on real goroutines with bounded-channel queues (LiveEngine), where
// node boundaries are emulated by serialization and copy cost so
// traffic-aware placement measurably raises real throughput. The live
// engine additionally provides Storm's at-least-once reliability — acker
// executors, spout timeout wheels, replays — plus fault injection
// (CrashWorker, FailNode) and supervised restart.
//
// This root package is the public facade: it re-exports the main types
// and provides Wire, which assembles the whole T-Storm stack over either
// backend in one call. The examples/ directory shows complete programs;
// cmd/tstorm-bench regenerates every figure of the paper's evaluation.
//
// A minimal session:
//
//	b := tstorm.NewTopology("demo", 4)
//	b.SetAckers(1)
//	b.Spout("src", 1).Output("default", "v")
//	b.Bolt("work", 2).Shuffle("src")
//	top, _ := b.Build()
//
//	cl, _ := tstorm.NewCluster(3, 4, 2000, 4)
//	rt, _ := tstorm.NewRuntime(tstorm.TStormConfig(), cl)
//	initial, _ := tstorm.InitialSchedule(top, cl)
//	_ = rt.Submit(&tstorm.App{ /* code + costs */ }, initial)
//	stack, _ := tstorm.Wire(rt, tstorm.WithGamma(1.5))
//	_ = rt.RunFor(10 * time.Minute)
//	_ = stack.Stop()
package tstorm

import (
	"fmt"
	"sync"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/decision"
	"tstorm/internal/dist"
	"tstorm/internal/engine"
	"tstorm/internal/health"
	"tstorm/internal/live"
	"tstorm/internal/loaddb"
	"tstorm/internal/monitor"
	"tstorm/internal/predictor"
	"tstorm/internal/scheduler"
	"tstorm/internal/telemetry"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tsdb"
	"tstorm/internal/tuple"
)

// Topology model.
type (
	// Topology is a validated Storm application graph.
	Topology = topology.Topology
	// TopologyBuilder assembles a Topology.
	TopologyBuilder = topology.Builder
	// ExecutorID identifies one executor of one topology.
	ExecutorID = topology.ExecutorID
	// Tuple is the unit of data flowing through a topology.
	Tuple = tuple.Tuple
	// Values is a tuple's payload.
	Values = tuple.Values
)

// Physical cluster model.
type (
	// Cluster is a fixed set of worker nodes.
	Cluster = cluster.Cluster
	// Node is one worker node.
	Node = cluster.Node
	// SlotID identifies a worker slot (node, port).
	SlotID = cluster.SlotID
	// Assignment maps executors to slots.
	Assignment = cluster.Assignment
)

// Execution engine.
type (
	// Runtime is the simulated Storm cluster.
	Runtime = engine.Runtime
	// Config holds the engine's timing and cost parameters.
	Config = engine.Config
	// App bundles a topology with its component code and costs.
	App = engine.App
	// Spout produces the topology's input stream.
	Spout = engine.Spout
	// Bolt consumes and processes tuples.
	Bolt = engine.Bolt
	// Emitter is handed to bolts to emit tuples.
	Emitter = engine.Emitter
	// SpoutEmitter is handed to spouts to emit root tuples.
	SpoutEmitter = engine.SpoutEmitter
	// Context gives user code its identity.
	Context = engine.Context
	// CostFn models a component's per-tuple CPU cost.
	CostFn = engine.CostFn
	// TopologyMetrics collects a topology's measurements.
	TopologyMetrics = engine.TopologyMetrics
)

// Scheduling.
type (
	// Algorithm computes executor-to-slot assignments.
	Algorithm = scheduler.Algorithm
	// SchedulerInput carries what algorithms may use.
	SchedulerInput = scheduler.Input
	// TrafficAware is the paper's Algorithm 1.
	TrafficAware = core.TrafficAware
	// Generator is the schedule generator daemon.
	Generator = core.Generator
	// CustomScheduler fetches and applies generated schedules.
	CustomScheduler = core.CustomScheduler
	// LoadDB is the load-information database.
	LoadDB = loaddb.DB
	// MonitorFleet drives the per-node load monitors.
	MonitorFleet = monitor.Fleet
)

// Live (wall-clock) runtime: the same App and scheduling brain on real
// goroutines instead of the discrete-event simulation.
type (
	// LiveEngine executes topologies on one goroutine per executor with
	// bounded-channel queues; worker groups map to cluster slots. Routing
	// reads an immutable copy-on-write snapshot (republished atomically by
	// Submit/Apply), so emitters never take the engine lock on the
	// per-tuple hot path.
	LiveEngine = live.Engine
	// LiveConfig holds the live engine's knobs.
	LiveConfig = live.Config
	// LiveMonitor samples executor CPU and traffic over wall-clock windows.
	LiveMonitor = live.Monitor
	// LiveGenerator periodically schedules the live engine.
	LiveGenerator = live.Generator
	// LiveGeneratorConfig holds the live generator's knobs.
	LiveGeneratorConfig = live.GeneratorConfig
	// LiveTotals is a snapshot of the live engine's counters.
	LiveTotals = live.Totals
	// LiveSupervisor restarts crashed live executors with backoff.
	LiveSupervisor = live.Supervisor
)

// Distributed (multi-process) runtime: real worker OS processes on
// loopback TCP behind the same facade, driven by the same scheduling
// stack.
type (
	// DistEngine is the distributed driver: it spawns one worker process
	// per cluster slot (re-executing the current binary), supervises them
	// with exponential-backoff respawn, and coordinates §IV-D migration
	// across process boundaries. It implements the same scheduling surface
	// as LiveEngine, so Wire drives both identically.
	DistEngine = dist.Engine
	// DistConfig holds the distributed driver's knobs.
	DistConfig = dist.Config
	// DistWorkerStatus is one worker process's liveness row.
	DistWorkerStatus = dist.WorkerStatus
	// DistRestartRecord documents one supervised worker-process respawn.
	DistRestartRecord = dist.RestartRecord
)

// NewDistEngine builds a distributed driver (workers spawn at Start).
// The binary calling this MUST call RunDistWorkerIfChild first thing in
// main(), because worker processes are the same binary re-executed.
func NewDistEngine(cfg DistConfig) (*DistEngine, error) { return dist.NewEngine(cfg) }

// RunDistWorkerIfChild turns the process into a distributed worker when
// it was spawned by a DistEngine (and never returns in that case); a
// no-op otherwise. Call it at the top of main() — and in TestMain of any
// test binary that builds a DistEngine.
func RunDistWorkerIfChild() { dist.RunWorkerIfChild() }

// DefaultLiveConfig returns the live engine's default configuration.
func DefaultLiveConfig() LiveConfig { return live.DefaultConfig() }

// NewLiveEngine builds a wall-clock execution engine over the cluster.
func NewLiveEngine(cfg LiveConfig, cl *Cluster) (*LiveEngine, error) {
	return live.NewEngine(cfg, cl)
}

// Observability.
type (
	// TraceRecorder captures structured runtime events.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded runtime event.
	TraceEvent = trace.Event
	// TelemetryServer serves /metrics (Prometheus text format),
	// /debug/placement, /debug/trace, /debug/scheduler, and
	// /debug/traffic for a live engine.
	TelemetryServer = telemetry.Server
	// TelemetryConfig selects what a TelemetryServer exposes.
	TelemetryConfig = telemetry.Config
	// Estimator is a pluggable load estimator (§IV-B extension point).
	Estimator = predictor.Estimator
	// DecisionHistory retains scheduler decision reports and traffic
	// snapshots (see WithDecisionHistory).
	DecisionHistory = decision.History
	// DecisionReport explains one scheduling round: every placement with
	// its candidate slots, gains, and rejection constraints, plus the
	// predicted inter-node traffic before and after.
	DecisionReport = decision.Report
	// TimeSeriesDB retains fixed-capacity ring-buffer time series sampled
	// from the runtime's counters (see WithHealth).
	TimeSeriesDB = tsdb.DB
	// TimeSeriesSampler drives the periodic collection into a TimeSeriesDB.
	TimeSeriesSampler = tsdb.Sampler
	// HealthEngine evaluates declarative SLO rules against retained series
	// with EWMA baselines and hysteresis (see WithHealth).
	HealthEngine = health.Engine
	// HealthStatus is the health engine's full verdict snapshot, as served
	// on /debug/health.
	HealthStatus = health.Status
)

// NewTelemetryServer builds a telemetry server over a live engine and
// optional monitor/trace sources (not yet listening; call Start).
func NewTelemetryServer(cfg TelemetryConfig) (*TelemetryServer, error) {
	return telemetry.NewServer(cfg)
}

// NewTraceRecorder returns a bounded event recorder; attach it via
// Config.Trace before building the runtime.
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.NewRecorder(capacity) }

// NewTopology starts a topology builder with the given name and requested
// worker count.
func NewTopology(name string, numWorkers int) *TopologyBuilder {
	return topology.NewBuilder(name, numWorkers)
}

// BasePort is the first worker-slot port on every node (Storm's default
// supervisor configuration).
const BasePort = cluster.BasePort

// NewCluster builds a cluster of n identical nodes (cores × coreMHz CPU,
// slots worker slots each).
func NewCluster(n, cores int, coreMHz float64, slots int) (*Cluster, error) {
	return cluster.Uniform(n, cores, coreMHz, slots)
}

// NewRuntime builds a simulated Storm runtime over the cluster.
func NewRuntime(cfg Config, cl *Cluster) (*Runtime, error) {
	return engine.NewRuntime(cfg, cl)
}

// DefaultConfig reproduces stock Storm 0.8 behaviour.
func DefaultConfig() Config { return engine.DefaultConfig() }

// TStormConfig enables T-Storm's smooth re-assignment (§IV-D).
func TStormConfig() Config { return engine.TStormConfig() }

// NewTrafficAware returns Algorithm 1 with consolidation factor γ.
func NewTrafficAware(gamma float64) *TrafficAware { return core.NewTrafficAware(gamma) }

// Cycles converts a per-tuple processing duration on a core of the given
// clock rate into CPU cycles, for use with ConstCost.
func Cycles(d time.Duration, atMHz float64) float64 { return engine.Cycles(d, atMHz) }

// ConstCost returns a CostFn charging a fixed cycle count per tuple.
func ConstCost(cycles float64) CostFn { return engine.ConstCost(cycles) }

// InitialSchedule computes T-Storm's modified initial placement for a
// topology: min(N_u, nodes) workers, one per node.
func InitialSchedule(top *Topology, cl *Cluster) (*Assignment, error) {
	return scheduler.TStormInitial{}.Schedule(&scheduler.Input{
		Topologies: []*Topology{top}, Cluster: cl,
	})
}

// DefaultSchedule computes Storm's default round-robin placement.
func DefaultSchedule(top *Topology, cl *Cluster) (*Assignment, error) {
	return scheduler.RoundRobin{}.Schedule(&scheduler.Input{
		Topologies: []*Topology{top}, Cluster: cl,
	})
}

// Backend is the execution-engine surface Wire schedules over. All three
// backends satisfy it: the simulated *Runtime, the wall-clock
// *LiveEngine, and the multi-process *DistEngine.
type Backend interface {
	// Topologies lists the submitted topology names.
	Topologies() []string
	// Cluster returns the physical cluster the backend executes on.
	Cluster() *Cluster
}

// Compile-time proof that all engines are Backends.
var (
	_ Backend = (*Runtime)(nil)
	_ Backend = (*LiveEngine)(nil)
	_ Backend = (*DistEngine)(nil)
)

// Paper defaults (Table II): consolidation factor γ, the load-monitoring
// period, and the schedule-generation period.
const (
	DefaultGamma          = 1.5
	DefaultMonitorPeriod  = 20 * time.Second
	DefaultGeneratePeriod = 300 * time.Second
)

// wireConfig collects Wire's options; zero fields mean Table II defaults.
type wireConfig struct {
	gamma           float64
	algorithm       string // scheduling algorithm name; "" = Algorithm 1
	monitorPeriod   time.Duration
	generatePeriod  time.Duration
	ackTimeout      time.Duration // live only
	maxPending      int           // live only; -1 = unset
	decisionHistory int           // reports retained; 0 = disabled
	traceSampling   int           // wall-clock backends; 0 = disabled
	pprof           bool          // mount /debug/pprof on StartTelemetry
	health          bool          // wall-clock backends; sampler + SLO engine
	sampleEvery     time.Duration // health sampling cadence; 0 = 1 s
	err             error         // first invalid option
}

// Option configures Wire.
type Option func(*wireConfig)

// optErr records the first invalid option; Wire reports it.
func (c *wireConfig) optErr(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithGamma sets Algorithm 1's consolidation factor γ (default 1.5).
func WithGamma(gamma float64) Option {
	return func(c *wireConfig) {
		if gamma <= 0 {
			c.optErr(fmt.Errorf("tstorm: WithGamma(%v): gamma must be positive", gamma))
			return
		}
		c.gamma = gamma
	}
}

// WithAlgorithm selects the scheduling algorithm the generator runs, by
// registry name: "tstorm" (Algorithm 1, the default), the baselines
// ("default", "tstorm-initial", "aniello-offline", "aniello-online",
// "load-balanced"), or the multi-resource contenders ("rstorm",
// "hetero"). Every built-in stays registered in Stack's generator
// regardless, so the choice here is just the starting point — SwapTo can
// hot-swap to any other name mid-run. Unknown names are rejected by
// Wire.
func WithAlgorithm(name string) Option {
	return func(c *wireConfig) {
		if name == "" {
			c.optErr(fmt.Errorf("tstorm: WithAlgorithm(%q): empty algorithm name", name))
			return
		}
		c.algorithm = name
	}
}

// resolveAlgorithm turns the configured name into the initial Algorithm
// instance: Algorithm 1 with the configured γ by default, or any
// registered built-in by name.
func (c *wireConfig) resolveAlgorithm() (Algorithm, error) {
	if c.algorithm == "" || c.algorithm == "tstorm" {
		return core.NewTrafficAware(c.gamma), nil
	}
	r := scheduler.NewRegistry()
	scheduler.RegisterBuiltins(r)
	a, ok := r.Get(c.algorithm)
	if !ok {
		return nil, fmt.Errorf("tstorm: WithAlgorithm(%q): unknown algorithm (have \"tstorm\" and %v)", c.algorithm, r.Names())
	}
	return a, nil
}

// ensureTStorm guarantees Algorithm 1 stays hot-swappable by name even
// when the stack was wired onto a different initial algorithm.
func ensureTStorm(r *scheduler.Registry, gamma float64) {
	if _, ok := r.Get("tstorm"); !ok {
		r.Register(core.NewTrafficAware(gamma))
	}
}

// WithMonitorPeriod sets the load-monitoring period (default 20 s, the
// paper's Table II).
func WithMonitorPeriod(d time.Duration) Option {
	return func(c *wireConfig) {
		if d <= 0 {
			c.optErr(fmt.Errorf("tstorm: WithMonitorPeriod(%v): period must be positive", d))
			return
		}
		c.monitorPeriod = d
	}
}

// WithGeneratePeriod sets the schedule-generation period (default 300 s,
// the paper's Table II).
func WithGeneratePeriod(d time.Duration) Option {
	return func(c *wireConfig) {
		if d <= 0 {
			c.optErr(fmt.Errorf("tstorm: WithGeneratePeriod(%v): period must be positive", d))
			return
		}
		c.generatePeriod = d
	}
}

// WithDecisionHistory makes the generator record a DecisionReport and a
// traffic-matrix snapshot for each scheduling round, retaining the last n
// of each on Stack.Decisions. StartTelemetry then serves them on
// /debug/scheduler and /debug/traffic and exports the tstorm_scheduler_*
// metric families, including the predicted-vs-observed inter-node traffic
// reconciliation gauge. Works on both backends (the reconciliation gauge
// needs the live engine's counters).
func WithDecisionHistory(n int) Option {
	return func(c *wireConfig) {
		if n <= 0 {
			c.optErr(fmt.Errorf("tstorm: WithDecisionHistory(%d): report count must be positive", n))
			return
		}
		c.decisionHistory = n
	}
}

// WithTraceSampling enables sampled end-to-end tuple tracing: one in rate
// spout roots (rate must be a power of two; 1 samples everything) carries
// its tuple tree's spans to a collector that assembles them with a
// critical-path latency decomposition by boundary class (local,
// inter-slot, inter-process, inter-node). StartTelemetry then serves the
// assembled trees on /debug/tuples and exports the tstorm_trace_*
// families. Unsampled tuples stay on the allocation-free emit path.
// Wall-clock backends only; Wire rejects it on the simulated Runtime,
// which has no wall clock to attribute latency against.
func WithTraceSampling(rate int) Option {
	return func(c *wireConfig) {
		if rate <= 0 {
			c.optErr(fmt.Errorf("tstorm: WithTraceSampling(%d): rate must be a positive power of two", rate))
			return
		}
		c.traceSampling = rate
	}
}

// WithPprof mounts Go's net/http/pprof profiling handlers under
// /debug/pprof/ on the server StartTelemetry returns. Off by default:
// profile endpoints can pause the process (CPU profile, blocking trace),
// so they stay opt-in while the rest of the telemetry surface is
// read-only.
func WithPprof() Option {
	return func(c *wireConfig) { c.pprof = true }
}

// WithHealth enables the in-process observability layer on wall-clock
// backends: a background sampler (default 1 s cadence; see
// WithSampleEvery) retains the engine's counters, queue depths, and
// windowed completion p99 as fixed-capacity ring-buffer time series on
// Stack.TSDB, and an SLO health engine on Stack.Health judges them with
// the standard rule set — throughput floor against an EWMA baseline,
// completion-p99 ceiling, predicted-vs-observed ratio band, queue
// saturation, worker heartbeat age, ack-timeout storms, and batch-pool
// miss rate — with ok→degraded→critical hysteresis. Transitions are
// emitted as trace events, StartTelemetry serves /debug/timeseries and
// /debug/health plus the tstorm_health_* families, and tstorm-top
// renders the same data as a terminal dashboard. Wire rejects it on the
// simulated Runtime, which has no wall clock to sample against.
func WithHealth() Option {
	return func(c *wireConfig) { c.health = true }
}

// WithSampleEvery sets the health sampler's cadence (default 1 s).
// Only meaningful together with WithHealth; Wire rejects it alone.
func WithSampleEvery(d time.Duration) Option {
	return func(c *wireConfig) {
		if d <= 0 {
			c.optErr(fmt.Errorf("tstorm: WithSampleEvery(%v): cadence must be positive", d))
			return
		}
		c.sampleEvery = d
	}
}

// WithAckTimeout sets the live engine's spout ack timeout — how long an
// anchored root may stay un-acked before its spout fails it for replay.
// Live backend only; Wire rejects it on the simulated Runtime, whose
// timeout is Config.MessageTimeout at construction.
func WithAckTimeout(d time.Duration) Option {
	return func(c *wireConfig) {
		if d <= 0 {
			c.optErr(fmt.Errorf("tstorm: WithAckTimeout(%v): timeout must be positive", d))
			return
		}
		c.ackTimeout = d
	}
}

// WithMaxPending caps every live spout's outstanding un-acked roots
// (engine-wide default; App.MaxPending overrides per spout, 0 lifts the
// cap). Live backend only; Wire rejects it on the simulated Runtime,
// which reads App.MaxPending directly.
func WithMaxPending(n int) Option {
	return func(c *wireConfig) {
		if n < 0 {
			c.optErr(fmt.Errorf("tstorm: WithMaxPending(%d): cap must be >= 0", n))
			return
		}
		c.maxPending = n
	}
}

// Stack is the wired T-Storm scheduling architecture of Fig. 4, over
// either backend: load monitors sampling into an α=0.5 EWMA load DB and a
// schedule generator running Algorithm 1. Exactly one backend's component
// set is non-nil; the shared lifecycle (Stop, Forget, StartTelemetry)
// works through the Stack itself.
type Stack struct {
	// DB is the load-information database both backends feed.
	DB *LoadDB

	// Simulated backend (nil on a live Stack).
	Monitors  *MonitorFleet
	Generator *Generator
	Scheduler *CustomScheduler

	// Live backend (nil on a simulated Stack).
	Engine        *LiveEngine
	Monitor       *LiveMonitor
	LiveGenerator *LiveGenerator
	// Supervisor restarts crashed live executors (CrashWorker/FailNode)
	// with exponential backoff.
	Supervisor *LiveSupervisor

	// Distributed backend (nil otherwise). Monitoring runs inside the
	// worker processes and flows into DB over the control plane, and
	// process supervision is built into the engine, so the dist Stack has
	// no Monitor or Supervisor components. LiveGenerator is shared with
	// the live backend: the identical generator drives both.
	Dist *DistEngine

	// Decisions retains the generator's per-round DecisionReports and
	// traffic snapshots when the stack was wired WithDecisionHistory
	// (nil otherwise). Both backends feed it.
	Decisions *DecisionHistory

	// TSDB retains the sampled time series and Health judges them when
	// the stack was wired WithHealth (both nil otherwise). StartTelemetry
	// serves them on /debug/timeseries and /debug/health.
	TSDB   *TimeSeriesDB
	Health *HealthEngine

	// sampler drives the periodic collection feeding TSDB and Health;
	// Stop halts it with the rest of the stack.
	sampler *TimeSeriesSampler

	// pprof records WithPprof for StartTelemetry.
	pprof bool

	stopOnce sync.Once
}

// Sampler returns the health sampler when wired WithHealth (nil
// otherwise). Tests drive Sampler().Tick directly for deterministic
// collection instead of waiting out the cadence.
func (s *Stack) Sampler() *TimeSeriesSampler { return s.sampler }

// Live reports whether the stack drives the in-process live backend.
func (s *Stack) Live() bool { return s.Engine != nil }

// Distributed reports whether the stack drives the multi-process backend.
func (s *Stack) Distributed() bool { return s.Dist != nil }

// Wire assembles the full T-Storm stack on a backend: load monitors
// sampling every 20 s into an α=0.5 load DB and a schedule generator
// running Algorithm 1 with γ=1.5 every 300 s (all Table II defaults,
// overridable via options). On the simulated Runtime it also starts the
// custom scheduler fetching every 10 s; on the live engine it also starts
// the supervisor that restarts crashed workers. Submit topologies (and
// Start the live engine) first.
func Wire(backend Backend, opts ...Option) (*Stack, error) {
	cfg := wireConfig{
		gamma:          DefaultGamma,
		monitorPeriod:  DefaultMonitorPeriod,
		generatePeriod: DefaultGeneratePeriod,
		maxPending:     -1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}

	algo, err := cfg.resolveAlgorithm()
	if err != nil {
		return nil, err
	}
	if cfg.sampleEvery != 0 && !cfg.health {
		return nil, fmt.Errorf("tstorm: WithSampleEvery only tunes WithHealth; wire them together")
	}

	db := loaddb.New(0.5)
	switch be := backend.(type) {
	case *Runtime:
		if cfg.ackTimeout != 0 || cfg.maxPending >= 0 {
			return nil, fmt.Errorf("tstorm: WithAckTimeout/WithMaxPending apply to the live backend only (the simulated Runtime reads Config.MessageTimeout and App.MaxPending)")
		}
		if cfg.traceSampling != 0 {
			return nil, fmt.Errorf("tstorm: WithTraceSampling applies to the wall-clock backends only (the simulated Runtime has no wall clock to attribute latency against)")
		}
		if cfg.health {
			return nil, fmt.Errorf("tstorm: WithHealth applies to the wall-clock backends only (the simulated Runtime has no wall clock to sample against)")
		}
		fleet := monitor.Start(be, db, cfg.monitorPeriod)
		gcfg := core.DefaultGeneratorConfig()
		gcfg.GenerationPeriod = cfg.generatePeriod
		var hist *decision.History
		if cfg.decisionHistory > 0 {
			hist = decision.NewHistory(cfg.decisionHistory)
			gcfg.History = hist
		}
		gen, err := core.StartGenerator(be, db, gcfg, algo)
		if err != nil {
			fleet.Stop()
			return nil, err
		}
		ensureTStorm(gen.Registry(), cfg.gamma)
		cs := core.StartCustomScheduler(be, core.DefaultFetchPeriod)
		return &Stack{DB: db, Monitors: fleet, Generator: gen, Scheduler: cs, Decisions: hist, pprof: cfg.pprof}, nil

	case *LiveEngine:
		if cfg.ackTimeout > 0 {
			be.SetAckTimeout(cfg.ackTimeout)
		}
		if cfg.maxPending >= 0 {
			be.SetMaxPending(cfg.maxPending)
		}
		if cfg.traceSampling != 0 && be.TraceSampling() != cfg.traceSampling {
			// Must land before Start (the mask is read lock-free on the emit
			// path); an already-started engine takes LiveConfig.TraceSampling
			// at construction instead.
			if err := be.SetTraceSampling(cfg.traceSampling); err != nil {
				return nil, err
			}
		}
		mon := live.StartMonitor(be, db, cfg.monitorPeriod)
		lcfg := live.DefaultGeneratorConfig()
		lcfg.Period = cfg.generatePeriod
		var hist *decision.History
		if cfg.decisionHistory > 0 {
			hist = decision.NewHistory(cfg.decisionHistory)
			lcfg.History = hist
		}
		gen, err := live.StartGenerator(be, db, lcfg, algo)
		if err != nil {
			mon.Stop()
			return nil, err
		}
		ensureTStorm(gen.Registry(), cfg.gamma)
		sup := live.StartSupervisor(be, 0)
		st := &Stack{DB: db, Engine: be, Monitor: mon, LiveGenerator: gen, Supervisor: sup, Decisions: hist, pprof: cfg.pprof}
		if cfg.health {
			src := health.Sources{
				Totals:       be.Totals,
				PendingRoots: be.PendingRoots,
				QueueSaturation: func() (float64, int) {
					return be.QueueSaturation(0.8)
				},
				CompletionLatency: be.CompletionLatencySnapshot,
			}
			if hist != nil {
				src.Ratio = func(now time.Time) (float64, bool) {
					return hist.Reconcile(be.Totals().InterNodeSent, now)
				}
			}
			startHealth(&cfg, st, src, be.Trace())
		}
		return st, nil

	case *DistEngine:
		if cfg.ackTimeout != 0 || cfg.maxPending >= 0 {
			return nil, fmt.Errorf("tstorm: WithAckTimeout/WithMaxPending on the distributed backend go through DistConfig before Start")
		}
		// Monitoring is worker-side: each process samples its executors and
		// ships windows over the control plane into this load DB.
		be.SetLoadSink(db)
		be.SetMonitorPeriod(cfg.monitorPeriod)
		if cfg.traceSampling != 0 && be.TraceSampling() != cfg.traceSampling {
			if err := be.SetTraceSampling(cfg.traceSampling); err != nil {
				return nil, err
			}
		}
		lcfg := live.DefaultGeneratorConfig()
		lcfg.Period = cfg.generatePeriod
		var hist *decision.History
		if cfg.decisionHistory > 0 {
			hist = decision.NewHistory(cfg.decisionHistory)
			lcfg.History = hist
		}
		gen, err := live.StartGenerator(be, db, lcfg, algo)
		if err != nil {
			return nil, err
		}
		ensureTStorm(gen.Registry(), cfg.gamma)
		st := &Stack{DB: db, Dist: be, LiveGenerator: gen, Decisions: hist, pprof: cfg.pprof}
		if cfg.health {
			// CachedTotals reads the heartbeat-refreshed aggregates — the
			// sampler must never block on per-worker status RPCs.
			src := health.Sources{
				Totals: be.CachedTotals,
				PendingRoots: func() int64 {
					var sum int64
					for _, w := range be.Workers() {
						sum += w.Pending
					}
					return sum
				},
				Workers: func(now time.Time) (alive, total int, oldestBeat time.Duration, ok bool) {
					ws := be.Workers()
					if len(ws) == 0 {
						return 0, 0, 0, false
					}
					for i := range ws {
						if !ws[i].Alive {
							continue
						}
						alive++
						if !ws[i].LastBeat.IsZero() {
							if age := now.Sub(ws[i].LastBeat); age > oldestBeat {
								oldestBeat = age
							}
						}
					}
					return alive, len(ws), oldestBeat, true
				},
			}
			if hist != nil {
				src.Ratio = func(now time.Time) (float64, bool) {
					return hist.Reconcile(be.CachedTotals().InterNodeSent, now)
				}
			}
			startHealth(&cfg, st, src, be.Trace())
		}
		return st, nil

	default:
		return nil, fmt.Errorf("tstorm: unsupported backend %T (want *tstorm.Runtime or *tstorm.LiveEngine)", backend)
	}
}

// startHealth assembles the WithHealth machinery onto a wired stack: a
// ring-buffer tsdb fed by the backend taps, the standard SLO rule set
// judging it, and a background sampler driving one collect+evaluate pass
// per cadence tick. Transitions land on rec (the backend's trace
// recorder; nil keeps them in /debug/health only).
func startHealth(cfg *wireConfig, st *Stack, src health.Sources, rec *trace.Recorder) {
	tdb := tsdb.NewDB(0)
	col := health.NewCollector(tdb, src)
	eng := health.New(health.StandardRules(tdb, health.RuleOptions{}), rec)
	every := cfg.sampleEvery
	if every <= 0 {
		every = tsdb.DefaultSampleEvery
	}
	smp := tsdb.NewSampler(every, func(now time.Time) {
		col.Collect(now)
		eng.Evaluate(now)
	})
	smp.Start()
	st.TSDB, st.Health, st.sampler = tdb, eng, smp
}

// StartTelemetry serves the stack's observability endpoints — Prometheus
// text-format /metrics, /debug/placement, /debug/trace (when the engine
// was built with LiveConfig.Trace), /debug/scheduler + /debug/traffic
// (when wired WithDecisionHistory), /debug/tuples (when wired
// WithTraceSampling), /debug/timeseries + /debug/health (when wired
// WithHealth), and /debug/pprof/ (when wired WithPprof) — on addr (e.g. ":9090", or
// "127.0.0.1:0" for an ephemeral port; read the bound address back with
// Addr). Close the returned server when done. On the distributed backend
// the counters are fleet aggregates and /debug/workers lists the worker
// processes. Wall-clock backends only: the simulated Runtime has no
// wall-clock to scrape against.
func (s *Stack) StartTelemetry(addr string) (*TelemetryServer, error) {
	var cfg telemetry.Config
	switch {
	case s.Live():
		cfg = telemetry.Config{
			Engine:  s.Engine,
			Monitor: s.Monitor,
			Trace:   s.Engine.Trace(),
			History: s.Decisions,
			DB:      s.DB,
			Tuples:  s.Engine.TraceCollector(),
			Pprof:   s.pprof,
			TSDB:    s.TSDB,
			Health:  s.Health,
		}
	case s.Distributed():
		be := s.Dist
		cfg = telemetry.Config{
			Totals:    be.Totals,
			Placement: be.Placement,
			Workers: func() []telemetry.WorkerStatus {
				ws := be.Workers()
				out := make([]telemetry.WorkerStatus, len(ws))
				for i, w := range ws {
					out[i] = telemetry.WorkerStatus{
						Slot: w.Slot, PID: w.PID, Alive: w.Alive,
						Restarts: w.Restarts, DataAddr: w.DataAddr, Pending: w.Pending,
					}
				}
				return out
			},
			Trace:   be.Trace(),
			History: s.Decisions,
			DB:      s.DB,
			Tuples:  be.TraceCollector(),
			Pprof:   s.pprof,
			TSDB:    s.TSDB,
			Health:  s.Health,
		}
	default:
		return nil, fmt.Errorf("tstorm: StartTelemetry requires the live or distributed backend")
	}
	srv, err := telemetry.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(addr); err != nil {
		return nil, err
	}
	return srv, nil
}

// Forget drops a dead topology's measurements from the stack: the monitor
// prunes its flow memory and stops reporting the topology's executors,
// and the load database deletes its records — so later sampling rounds
// cannot resurrect the keys. Works on all backends; on the distributed
// backend the worker-side monitors prune themselves when the engine in
// their process drops the topology, so only the driver's database needs
// clearing here.
func (s *Stack) Forget(topo string) {
	switch {
	case s.Live():
		s.Monitor.Forget(topo)
	case s.Distributed():
		s.DB.Forget(topo)
	default:
		s.Monitors.Forget(topo)
	}
}

// Stop halts the stack's periodic work — monitors, generator, and the
// backend-specific daemons (custom scheduler or supervisor) — but not the
// engine itself. It is idempotent: only the first call stops anything,
// and every call returns nil.
func (s *Stack) Stop() error {
	s.stopOnce.Do(func() {
		if s.Monitors != nil {
			s.Monitors.Stop()
		}
		if s.Generator != nil {
			s.Generator.Stop()
		}
		if s.Scheduler != nil {
			s.Scheduler.Stop()
		}
		if s.Monitor != nil {
			s.Monitor.Stop()
		}
		if s.LiveGenerator != nil {
			s.LiveGenerator.Stop()
		}
		if s.Supervisor != nil {
			s.Supervisor.Stop()
		}
		if s.sampler != nil {
			s.sampler.Stop()
		}
	})
	return nil
}
