package tstorm_test

import (
	"sync/atomic"
	"testing"
	"time"

	"tstorm"
	"tstorm/internal/tuple"
)

// facadeSpout emits sequential ints through the public facade types.
type facadeSpout struct{ n int }

func (s *facadeSpout) Open(*tstorm.Context) {}
func (s *facadeSpout) NextTuple(em tstorm.SpoutEmitter) {
	em.EmitWithID("", tuple.Values{s.n}, s.n)
	s.n++
}
func (s *facadeSpout) Ack(any)  {}
func (s *facadeSpout) Fail(any) {}

// facadeBolt counts executions; atomically, since the live engine runs
// one goroutine per bolt executor and they share the counter.
type facadeBolt struct{ seen *int64 }

func (facadeBolt) Prepare(*tstorm.Context) {}
func (b facadeBolt) Execute(in tstorm.Tuple, em tstorm.Emitter) {
	atomic.AddInt64(b.seen, 1)
}

// TestFacadeEndToEnd drives the whole public API surface the README
// advertises: build, cluster, runtime, initial schedule, submit, Wire,
// run, metrics.
func TestFacadeEndToEnd(t *testing.T) {
	b := tstorm.NewTopology("facade", 4)
	b.SetAckers(1)
	b.Spout("src", 1).Output("default", "v")
	b.Bolt("work", 2).Shuffle("src")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cl, err := tstorm.NewCluster(3, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := tstorm.NewRuntime(tstorm.TStormConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := tstorm.InitialSchedule(top, cl)
	if err != nil {
		t.Fatal(err)
	}
	var seen int64
	app := &tstorm.App{
		Topology: top,
		Spouts:   map[string]func() tstorm.Spout{"src": func() tstorm.Spout { return &facadeSpout{} }},
		Bolts:    map[string]func() tstorm.Bolt{"work": func() tstorm.Bolt { return facadeBolt{seen: &seen} }},
	}
	if err := rt.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	stack, err := tstorm.Wire(rt, tstorm.WithGamma(1.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("facade")
	if tm.Completions == 0 || seen == 0 {
		t.Fatalf("completions=%d seen=%d", tm.Completions, seen)
	}
	if tm.Failed != 0 {
		t.Fatalf("failed = %d", tm.Failed)
	}
	if stack.Generator.Algorithm().Name() != "tstorm" {
		t.Fatal("Wire did not install the tstorm algorithm")
	}
	stack.Stop()
	// Stopped stack: no further schedules generate, the cluster keeps
	// processing.
	before := tm.Completions
	if err := rt.RunFor(time.Minute); err != nil {
		t.Fatal(err)
	}
	if tm.Completions <= before {
		t.Fatal("processing stalled after Stop")
	}
}

func TestFacadeDefaultSchedule(t *testing.T) {
	b := tstorm.NewTopology("rr", 5)
	b.Spout("s", 1).Output("default", "v")
	b.Bolt("b", 4).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := tstorm.NewCluster(5, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := tstorm.DefaultSchedule(top, cl)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != top.NumExecutors() {
		t.Fatal("default schedule incomplete")
	}
	ta := tstorm.NewTrafficAware(2)
	if ta.Name() != "tstorm" {
		t.Fatal("facade TrafficAware wrong")
	}
}
