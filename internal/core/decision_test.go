package core

import (
	"testing"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

// TestDecisionProbeNamesEveryConstraint hand-builds a cluster where, for
// the last-placed executor, each of Algorithm 1's three constraints is the
// unique rejector of one candidate slot: the second slot of an occupied
// node fails the one-slot-per-topology rule, the weak node fails capacity,
// and the full node fails the γ count cap — and the probe must name each.
func TestDecisionProbeNamesEveryConstraint(t *testing.T) {
	b := topology.NewBuilder("t", 4)
	b.SetAckers(0)
	b.Spout("a", 2).Output("default", "v")
	b.Bolt("b", 1).Shuffle("a")
	b.Bolt("c", 1).Shuffle("a")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New([]cluster.Node{
		{ID: "n1", Cores: 4, CoreMHz: 2000, NumSlots: 2},
		{ID: "n2", Cores: 1, CoreMHz: 100, NumSlots: 1},
		{ID: "n3", Cores: 4, CoreMHz: 2000, NumSlots: 1},
	})
	if err != nil {
		t.Fatal(err)
	}

	exec := func(comp string, i int) topology.ExecutorID {
		return topology.ExecutorID{Topology: "t", Component: comp, Index: i}
	}
	a0, a1, eb, ec := exec("a", 0), exec("a", 1), exec("b", 0), exec("c", 0)
	db := loaddb.New(1)
	db.UpdateExecutorLoad(a0, 50)
	db.UpdateExecutorLoad(a1, 50)
	db.UpdateExecutorLoad(eb, 10)
	db.UpdateExecutorLoad(ec, 500)
	db.UpdateTraffic(a0, a1, 1000) // dominates the sort: a0, a1 first
	db.UpdateTraffic(ec, eb, 5)    // ties b and c; identity order places b first

	probe := decision.NewBuilder()
	in := &scheduler.Input{
		Topologies: []*topology.Topology{top},
		Cluster:    cl,
		Load:       db.Snapshot(),
		Probe:      probe,
	}
	// γ·Ne/K = 1.5·4/3 = 2 executors per node.
	algo := NewTrafficAware(1.5)
	assign, err := algo.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rep := probe.Report()

	if rep.Algorithm != "tstorm" || rep.Executors != 4 || rep.Nodes != 3 {
		t.Fatalf("report header = %q/%d/%d, want tstorm/4/3", rep.Algorithm, rep.Executors, rep.Nodes)
	}
	if rep.CountCap != 2 {
		t.Fatalf("CountCap = %v, want 2", rep.CountCap)
	}
	if rep.Relaxations != 0 {
		t.Fatalf("Relaxations = %d, want 0", rep.Relaxations)
	}
	if len(rep.Placements) != 4 {
		t.Fatalf("got %d placements, want 4", len(rep.Placements))
	}
	for i, p := range rep.Placements {
		if p.Rank != i {
			t.Fatalf("placement %d has rank %d", i, p.Rank)
		}
		if s, ok := assign.Slot(p.Executor); !ok || s != p.Slot {
			t.Fatalf("placement %v records slot %v, assignment has %v (ok=%v)", p.Executor, p.Slot, s, ok)
		}
	}

	// a1 must co-locate with a0 and record the gain of their shared flow.
	p1 := rep.Placements[1]
	if p1.Executor != a1 || p1.Slot != (cluster.SlotID{Node: "n1", Port: 6700}) || p1.Gain != 1000 {
		t.Fatalf("a1 placement = %+v, want n1:6700 with gain 1000", p1)
	}

	// c is placed last; its candidate list must name each constraint once.
	pc := rep.Placements[3]
	if pc.Executor != ec {
		t.Fatalf("last placement is %v, want %v", pc.Executor, ec)
	}
	want := map[cluster.SlotID]decision.Constraint{
		{Node: "n1", Port: 6700}: decision.RejectedCount,    // two executors already there
		{Node: "n1", Port: 6701}: decision.RejectedSlot,     // topology t owns n1:6700
		{Node: "n2", Port: 6700}: decision.RejectedCapacity, // 10+500 MHz > 100 MHz
		{Node: "n3", Port: 6700}: "",                        // feasible, chosen
	}
	if len(pc.Options) != len(want) {
		t.Fatalf("c has %d options, want %d: %+v", len(pc.Options), len(want), pc.Options)
	}
	for _, o := range pc.Options {
		wantC, ok := want[o.Slot]
		if !ok {
			t.Fatalf("unexpected candidate slot %v", o.Slot)
		}
		if o.Rejected != wantC {
			t.Fatalf("slot %v rejected by %q, want %q", o.Slot, o.Rejected, wantC)
		}
		if wantGotChosen := wantC == ""; o.Chosen != wantGotChosen {
			t.Fatalf("slot %v chosen=%v, want %v", o.Slot, o.Chosen, wantGotChosen)
		}
	}
	if pc.Slot != (cluster.SlotID{Node: "n3", Port: 6700}) {
		t.Fatalf("c placed on %v, want n3:6700", pc.Slot)
	}

	// Only the c→b flow crosses nodes (b on n2, c on n3): 5 tuples/s.
	if rep.PredictedAfter != 5 {
		t.Fatalf("PredictedAfter = %v, want 5", rep.PredictedAfter)
	}

	// The probe must not change the outcome.
	in2 := &scheduler.Input{
		Topologies: []*topology.Topology{top},
		Cluster:    cl,
		Load:       db.Snapshot(),
	}
	plain, err := NewTrafficAware(1.5).Schedule(in2)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(assign) {
		t.Fatal("assignment differs with probe attached")
	}
}

// TestDecisionProbeRecordsRelaxation squeezes a topology onto a cluster
// whose count cap cannot hold it, and checks the relaxation is flagged on
// the placement and counted in the report.
func TestDecisionProbeRecordsRelaxation(t *testing.T) {
	top := buildChain(t, "t", 4, 2, 2, 0) // 2+2+2 = 6 executors
	cl, err := cluster.Uniform(1, 4, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	db := chainLoad(top, 100, 10)
	probe := decision.NewBuilder()
	_, err = NewTrafficAware(1).Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{top},
		Cluster:    cl,
		Load:       db.Snapshot(),
		Probe:      probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := probe.Report()
	// γ·Ne/K = 1·6/1 = 6: all six fit without relaxation? No — the cap is
	// 6 and there are 6 executors, so none relax. Force it tighter below.
	if rep.Relaxations != 0 {
		t.Fatalf("unexpected relaxations on the loose cluster: %d", rep.Relaxations)
	}

	// Two topologies, 12 executors, one node: cap = γ·12/1 with γ=1 is 12,
	// still loose. Instead shrink per-node capacity so capacity relaxation
	// triggers: each executor burns 1500 MHz on a 2000 MHz node.
	db2 := chainLoad(top, 100, 1500)
	cl2, err := cluster.Uniform(1, 1, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	probe2 := decision.NewBuilder()
	_, err = NewTrafficAware(1).Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{top},
		Cluster:    cl2,
		Load:       db2.Snapshot(),
		Probe:      probe2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := probe2.Report()
	if rep2.Relaxations == 0 {
		t.Fatal("expected relaxations on the overloaded node")
	}
	flagged := 0
	for _, p := range rep2.Placements {
		if p.RelaxedCount || p.RelaxedCapacity {
			flagged++
			if !p.RelaxedCapacity {
				t.Fatalf("placement %v relaxed count only; capacity relaxation expected: %+v", p.Executor, p)
			}
		}
	}
	if flagged != rep2.Relaxations {
		t.Fatalf("flagged placements %d != report relaxations %d", flagged, rep2.Relaxations)
	}
}
