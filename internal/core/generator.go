package core

import (
	"encoding/json"
	"fmt"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
)

// SchedulePath is the coordination-store path the schedule generator
// publishes a topology's schedule under; the custom scheduler fetches it
// from there.
func SchedulePath(topo string) string { return "/schedules/" + topo }

// GeneratorConfig holds the schedule generator's timing and thresholds.
type GeneratorConfig struct {
	// GenerationPeriod is the regular scheduling interval (paper: 300 s).
	GenerationPeriod time.Duration
	// OverloadCheckPeriod is how often node loads are checked for
	// overload (paper: every monitoring period, 20 s).
	OverloadCheckPeriod time.Duration
	// OverloadThreshold is the node-load fraction of capacity above which
	// an immediate re-scheduling is triggered. Monitors measure useful
	// cycles only, while busy-spinning threads burn the rest of a
	// saturated node, so the practical saturation point sits well below
	// nominal capacity.
	OverloadThreshold float64
	// OverloadCooldown suppresses repeated overload-triggered generations
	// while a new schedule is still being applied and measured.
	OverloadCooldown time.Duration
	// CapacityFraction sets C_k as a fraction of physical node capacity
	// (the paper's overload-prevention headroom).
	CapacityFraction float64
	// History, when non-nil, receives a decision report and a
	// traffic-matrix snapshot for every generation — the scheduler
	// decision trail behind /debug/scheduler.
	History *decision.History
}

// DefaultGeneratorConfig matches the paper's Table II settings.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		GenerationPeriod:    300 * time.Second,
		OverloadCheckPeriod: 20 * time.Second,
		OverloadThreshold:   0.5,
		OverloadCooldown:    90 * time.Second,
		CapacityFraction:    0.9,
	}
}

// Validate checks the configuration.
func (c GeneratorConfig) Validate() error {
	if c.GenerationPeriod <= 0 || c.OverloadCheckPeriod <= 0 {
		return fmt.Errorf("core: non-positive generator period")
	}
	if c.OverloadThreshold <= 0 || c.OverloadThreshold > 1 {
		return fmt.Errorf("core: overload threshold %v out of (0,1]", c.OverloadThreshold)
	}
	if c.CapacityFraction <= 0 || c.CapacityFraction > 1 {
		return fmt.Errorf("core: capacity fraction %v out of (0,1]", c.CapacityFraction)
	}
	return nil
}

// Generator is the schedule generator daemon (§IV-A step 2): it
// periodically reads the load database, runs the current scheduling
// algorithm, and publishes new schedules to the coordination store. It is
// an independent component — swapping its algorithm or adjusting γ at
// runtime never touches the engine.
type Generator struct {
	rt  *engine.Runtime
	db  *loaddb.DB
	cfg GeneratorConfig

	registry *scheduler.Registry
	algo     scheduler.Algorithm

	lastOverloadGen sim.Time
	hasOverloadGen  bool

	generations      int
	overloadTriggers int
	published        int

	tickGen      *sim.Ticker
	tickOverload *sim.Ticker
}

// StartGenerator schedules the generator's periodic work on the runtime's
// simulation engine and returns it. algo is the initial algorithm; the
// registry is pre-populated with every built-in scheduler so any of them
// can be hot-swapped in by name, and algo is registered last so the
// running instance wins a name clash.
func StartGenerator(rt *engine.Runtime, db *loaddb.DB, cfg GeneratorConfig, algo scheduler.Algorithm) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		rt: rt, db: db, cfg: cfg,
		registry: scheduler.NewRegistry(),
		algo:     algo,
	}
	scheduler.RegisterBuiltins(g.registry)
	g.registry.Register(algo)
	g.tickGen = rt.Sim().Every(cfg.GenerationPeriod, cfg.GenerationPeriod, func() { g.Generate() })
	g.tickOverload = rt.Sim().Every(cfg.OverloadCheckPeriod, cfg.OverloadCheckPeriod, g.checkOverload)
	return g, nil
}

// Stop halts the generator's periodic work.
func (g *Generator) Stop() {
	g.tickGen.Stop()
	g.tickOverload.Stop()
}

// Registry exposes the generator's algorithm registry so additional
// algorithms can be made available for hot-swapping.
func (g *Generator) Registry() *scheduler.Registry { return g.registry }

// Algorithm returns the active algorithm.
func (g *Generator) Algorithm() scheduler.Algorithm { return g.algo }

// SetAlgorithm hot-swaps the scheduling algorithm: the next generation
// (periodic or overload-triggered) uses it. Nothing in Storm is stopped
// or reconfigured.
func (g *Generator) SetAlgorithm(a scheduler.Algorithm) {
	g.registry.Register(a)
	g.algo = a
	g.emit(trace.AlgorithmSwapped, "", a.Name())
}

// emit records a trace event on the runtime's recorder, if any.
func (g *Generator) emit(kind trace.Kind, topo, detail string) {
	if rec := g.rt.Config().Trace; rec != nil {
		rec.Emit(trace.Event{At: g.rt.Sim().Now(), Kind: kind, Topology: topo, Detail: detail})
	}
}

// SwapTo hot-swaps to a previously registered algorithm by name.
func (g *Generator) SwapTo(name string) error {
	a, ok := g.registry.Get(name)
	if !ok {
		return fmt.Errorf("core: algorithm %q not registered", name)
	}
	g.algo = a
	g.emit(trace.AlgorithmSwapped, "", name)
	return nil
}

// SetGamma adjusts the consolidation factor on the fly. It returns an
// error if the active algorithm has no γ parameter.
func (g *Generator) SetGamma(gamma float64) error {
	ta, ok := g.algo.(*TrafficAware)
	if !ok {
		return fmt.Errorf("core: active algorithm %q has no consolidation factor", g.algo.Name())
	}
	if gamma < 1 {
		return fmt.Errorf("core: γ=%v must be ≥ 1", gamma)
	}
	ta.Gamma = gamma
	return nil
}

// Generations reports how many scheduling runs completed.
func (g *Generator) Generations() int { return g.generations }

// OverloadTriggers reports how many generations were overload-triggered.
func (g *Generator) OverloadTriggers() int { return g.overloadTriggers }

// Published reports how many schedules were actually written (i.e.
// differed from the live assignment).
func (g *Generator) Published() int { return g.published }

// improvementThreshold is the minimum relative inter-node traffic gain a
// new schedule must offer (when it does not reduce node count) to be worth
// the re-assignment disruption. Overload-triggered generations bypass it.
const improvementThreshold = 0.10

// Generate runs the active algorithm over the current load snapshot and
// publishes any schedule that meaningfully improves on the live
// assignment — fewer nodes, or ≥10% less inter-node traffic. It is a
// no-op until monitors have stored load data.
func (g *Generator) Generate() bool { return g.generate(false) }

func (g *Generator) generate(force bool) bool {
	if !g.db.HasData() {
		return false
	}
	topos := g.rt.Topologies()
	if len(topos) == 0 {
		return false
	}
	var tops []*topology.Topology
	for _, name := range topos {
		app, _ := g.rt.App(name)
		tops = append(tops, app.Topology)
	}
	snap := g.db.Snapshot()
	in := scheduler.NewInput(tops, g.rt.Cluster(), snap, g.cfg.CapacityFraction)
	// Failed nodes are off limits until they recover.
	for _, down := range g.rt.DownNodes() {
		in.OccupyNode(down)
	}
	if g.cfg.History != nil {
		in.Probe = decision.NewBuilder()
	}
	// The incumbent assignment across all topologies, for the report's
	// predicted-before objective and move count.
	incumbent := cluster.NewAssignment(0)
	for _, name := range topos {
		if a, ok := g.rt.CurrentAssignment(name); ok {
			for e, s := range a.Executors {
				incumbent.Assign(e, s)
			}
		}
	}
	global, err := g.algo.Schedule(in)
	if err != nil {
		return false
	}
	g.generations++
	changed := false
	for _, name := range topos {
		app, _ := g.rt.App(name)
		part := cluster.NewAssignment(0)
		for _, e := range app.Topology.Executors() {
			if s, ok := global.Slot(e); ok {
				part.Assign(e, s)
			}
		}
		cur, ok := g.rt.CurrentAssignment(name)
		if ok && cur.Equal(part) {
			continue
		}
		if ok && !force && !worthApplying(part, cur, in.Load) {
			continue
		}
		data, err := json.Marshal(part)
		if err != nil {
			continue
		}
		if _, err := g.rt.Coord().SetOrCreate(SchedulePath(name), data); err == nil {
			g.published++
			changed = true
			g.emit(trace.ScheduleGenerated, name,
				fmt.Sprintf("algo=%s nodes=%d", g.algo.Name(), part.NumUsedNodes()))
		}
	}
	if h := g.cfg.History; h != nil && in.Probe != nil {
		rep := in.Probe.Report()
		if len(incumbent.Executors) > 0 {
			rep.PredictedBefore = decision.InterNodeRate(incumbent, snap)
		}
		rep.Moved = decision.MovedExecutors(global, incumbent)
		rep.Applied = changed
		h.Add(rep)
		h.RecordTraffic(time.Now(), snap)
	}
	return changed
}

// worthApplying reports whether the re-assignment disruption is justified:
// the new schedule uses fewer worker nodes, or cuts inter-node traffic by
// at least improvementThreshold.
func worthApplying(next, cur *cluster.Assignment, load *loaddb.Snapshot) bool {
	if next.NumUsedNodes() < cur.NumUsedNodes() {
		return true
	}
	curT := InterNodeTraffic(cur, load)
	nextT := InterNodeTraffic(next, load)
	return nextT < curT*(1-improvementThreshold)
}

// checkOverload inspects per-node workload estimates and triggers an
// immediate generation when any node exceeds the overload threshold —
// the paper's timely overload handling (Figs. 9 and 10).
func (g *Generator) checkOverload() {
	if !g.db.HasData() {
		return
	}
	now := g.rt.Sim().Now()
	if g.hasOverloadGen && now.Sub(g.lastOverloadGen) < g.cfg.OverloadCooldown {
		return
	}
	snap := g.db.Snapshot()
	combined := cluster.NewAssignment(0)
	for _, name := range g.rt.Topologies() {
		if a, ok := g.rt.CurrentAssignment(name); ok {
			for e, s := range a.Executors {
				combined.Assign(e, s)
			}
		}
	}
	node, load := MaxNodeLoad(combined, snap)
	if node == "" {
		return
	}
	capacity := g.rt.NodeCapacityMHz(node)
	if capacity <= 0 || load < g.cfg.OverloadThreshold*capacity {
		return
	}
	g.overloadTriggers++
	g.hasOverloadGen = true
	g.lastOverloadGen = now
	g.emit(trace.OverloadDetected, "", fmt.Sprintf("node %s at %.0f MHz", node, load))
	g.generate(true)
}

// CustomScheduler is the thin Nimbus-side scheduler (§IV-A step 3): every
// fetch period (10 s) it reads the published schedule from the
// coordination store and, if it differs from the live assignment, applies
// it. It never computes schedules itself — that is the generator's job,
// which is what makes hot-swapping possible.
type CustomScheduler struct {
	rt      *engine.Runtime
	period  time.Duration
	applied int
	ticker  *sim.Ticker
}

// DefaultFetchPeriod is the paper's schedule fetching period.
const DefaultFetchPeriod = 10 * time.Second

// StartCustomScheduler schedules periodic fetching on the runtime's
// simulation engine.
func StartCustomScheduler(rt *engine.Runtime, period time.Duration) *CustomScheduler {
	if period <= 0 {
		period = DefaultFetchPeriod
	}
	cs := &CustomScheduler{rt: rt, period: period}
	cs.ticker = rt.Sim().Every(period, period, cs.Fetch)
	return cs
}

// Stop halts fetching.
func (cs *CustomScheduler) Stop() {
	cs.ticker.Stop()
}

// Applied reports how many schedules were applied.
func (cs *CustomScheduler) Applied() int { return cs.applied }

// Fetch reads each topology's published schedule and applies it when it
// differs from the live assignment.
func (cs *CustomScheduler) Fetch() {
	for _, name := range cs.rt.Topologies() {
		data, _, err := cs.rt.Coord().Get(SchedulePath(name))
		if err != nil {
			continue
		}
		var a cluster.Assignment
		if err := json.Unmarshal(data, &a); err != nil {
			continue
		}
		cur, ok := cs.rt.CurrentAssignment(name)
		if ok && cur.Equal(&a) {
			continue
		}
		if err := cs.rt.PublishAssignment(name, &a); err == nil {
			cs.applied++
		}
	}
}
