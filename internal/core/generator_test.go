package core

import (
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/monitor"
	"tstorm/internal/scheduler"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// intSpout emits sequential ints forever at the configured interval.
type intSpout struct{ seq int }

func (s *intSpout) Open(*engine.Context) {}
func (s *intSpout) NextTuple(em engine.SpoutEmitter) {
	em.EmitWithID("", tuple.Values{s.seq}, s.seq)
	s.seq++
}
func (s *intSpout) Ack(any)  {}
func (s *intSpout) Fail(any) {}

// passBolt forwards every tuple.
type passBolt struct{}

func (passBolt) Prepare(*engine.Context) {}
func (passBolt) Execute(in tuple.Tuple, em engine.Emitter) {
	em.Emit("", in.Values)
}

// sinkBolt consumes.
type sinkBolt struct{}

func (sinkBolt) Prepare(*engine.Context)             {}
func (sinkBolt) Execute(tuple.Tuple, engine.Emitter) {}

func testApp(t *testing.T) *engine.App {
	t.Helper()
	b := topology.NewBuilder("pipeline", 20)
	b.SetAckers(2)
	b.Spout("spout", 2).Output("default", "v")
	b.Bolt("mid", 4).Shuffle("spout").Output("default", "v")
	b.Bolt("sink", 4).Shuffle("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &engine.App{
		Topology: top,
		Spouts:   map[string]func() engine.Spout{"spout": func() engine.Spout { return &intSpout{} }},
		Bolts: map[string]func() engine.Bolt{
			"mid":  func() engine.Bolt { return passBolt{} },
			"sink": func() engine.Bolt { return sinkBolt{} },
		},
		Costs: map[string]engine.CostFn{
			"spout": engine.ConstCost(engine.Cycles(100*time.Microsecond, 2000)),
			"mid":   engine.ConstCost(engine.Cycles(150*time.Microsecond, 2000)),
			"sink":  engine.ConstCost(engine.Cycles(150*time.Microsecond, 2000)),
		},
		SpoutInterval: map[string]time.Duration{"spout": 5 * time.Millisecond},
	}
}

// pipelineStack wires runtime + monitors + generator + custom scheduler,
// the full T-Storm architecture of Fig. 4.
func pipelineStack(t *testing.T, gamma float64) (*engine.Runtime, *Generator, *CustomScheduler, *engine.App) {
	t.Helper()
	cl, err := cluster.Uniform(10, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := engine.NewRuntime(engine.TStormConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	app := testApp(t)
	initial, err := scheduler.RoundRobin{}.Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{app.Topology}, Cluster: cl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	db := loaddb.New(0.5)
	monitor.Start(rt, db, 20*time.Second)
	gcfg := DefaultGeneratorConfig()
	gcfg.GenerationPeriod = 100 * time.Second // shortened for the test
	gen, err := StartGenerator(rt, db, gcfg, NewTrafficAware(gamma))
	if err != nil {
		t.Fatal(err)
	}
	cs := StartCustomScheduler(rt, DefaultFetchPeriod)
	return rt, gen, cs, app
}

// TestSimGeneratorFeedsDecisionHistory runs the simulated stack with a
// decision history attached: every generation must add a report with
// per-executor placements (and candidate options, since the tstorm
// algorithm runs), plus a traffic snapshot of what it decided on.
func TestSimGeneratorFeedsDecisionHistory(t *testing.T) {
	cl, err := cluster.Uniform(10, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := engine.NewRuntime(engine.TStormConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	app := testApp(t)
	initial, err := scheduler.RoundRobin{}.Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{app.Topology}, Cluster: cl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	db := loaddb.New(0.5)
	monitor.Start(rt, db, 20*time.Second)
	hist := decision.NewHistory(4)
	gcfg := DefaultGeneratorConfig()
	gcfg.GenerationPeriod = 100 * time.Second
	gcfg.History = hist
	gen, err := StartGenerator(rt, db, gcfg, NewTrafficAware(2))
	if err != nil {
		t.Fatal(err)
	}
	StartCustomScheduler(rt, DefaultFetchPeriod)
	if err := rt.RunFor(400 * time.Second); err != nil {
		t.Fatal(err)
	}
	if gen.Generations() == 0 {
		t.Fatal("generator never ran")
	}
	if got := hist.Rounds(); got != int64(gen.Generations()) {
		t.Fatalf("history rounds %d != generations %d", got, gen.Generations())
	}
	reports := hist.Reports()
	if len(reports) == 0 {
		t.Fatal("no reports retained")
	}
	ne := app.Topology.NumExecutors()
	for _, rep := range reports {
		if rep.Algorithm != "tstorm" || rep.Executors != ne {
			t.Fatalf("report header %q/%d, want tstorm/%d", rep.Algorithm, rep.Executors, ne)
		}
		if len(rep.Placements) != ne {
			t.Fatalf("round %d has %d placements, want %d", rep.Round, len(rep.Placements), ne)
		}
		for _, p := range rep.Placements {
			if len(p.Options) == 0 {
				t.Fatalf("round %d placement %v has no candidate options", rep.Round, p.Executor)
			}
		}
		// The incumbent placement existed on every round, so the predicted
		// before value is always derivable.
		if rep.PredictedBefore < 0 {
			t.Fatalf("round %d has no predicted-before traffic", rep.Round)
		}
	}
	if got := len(hist.TrafficHistory()); got == 0 || got > hist.Capacity() {
		t.Fatalf("traffic history length %d, want within (0, %d]", got, hist.Capacity())
	}
	// The first generation replaces round-robin with T-Storm's placement:
	// it must be applied, and its moves counted.
	if hist.Moves() == 0 {
		t.Fatal("no moves recorded despite rescheduling away from round-robin")
	}
}

func TestEndToEndReschedulingImprovesLatencyAndConsolidates(t *testing.T) {
	rt, gen, cs, _ := pipelineStack(t, 4)
	if err := rt.RunFor(400 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("pipeline")
	if gen.Generations() == 0 {
		t.Fatal("generator never ran")
	}
	if gen.Published() == 0 {
		t.Fatal("generator never published a schedule")
	}
	if cs.Applied() == 0 {
		t.Fatal("custom scheduler never applied a schedule")
	}
	// Consolidation: the initial round-robin spread over 10 nodes must
	// shrink substantially under γ=4.
	if got := tm.NodesInUse.Last(); got >= 10 {
		t.Fatalf("still using %v nodes after consolidation", got)
	}
	// The paper's headline: latency after stabilization beats the initial
	// (default-scheduler) phase.
	before := tm.Latency.MeanAfter(0) // includes the early phase
	after := tm.MeanLatencyAfter(sim.Time(250 * time.Second))
	if after >= before {
		t.Fatalf("latency did not improve: before-incl %.3fms, after %.3fms", before, after)
	}
	if tm.Completions == 0 {
		t.Fatal("nothing completed")
	}
}

func TestHotSwapAlgorithmAndGamma(t *testing.T) {
	rt, gen, _, _ := pipelineStack(t, 2)
	if err := rt.RunFor(150 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Swap γ on the fly.
	if err := gen.SetGamma(6); err != nil {
		t.Fatal(err)
	}
	// Register and swap to a different algorithm, then back by name.
	gen.SetAlgorithm(scheduler.AnielloOnline{})
	if gen.Algorithm().Name() != "aniello-online" {
		t.Fatal("hot swap did not take")
	}
	if err := gen.SetGamma(2); err == nil {
		t.Fatal("SetGamma accepted on an algorithm without γ")
	}
	if err := gen.SwapTo("tstorm"); err != nil {
		t.Fatal(err)
	}
	if gen.Algorithm().Name() != "tstorm" {
		t.Fatal("swap back failed")
	}
	if err := gen.SwapTo("ghost"); err == nil {
		t.Fatal("unknown algorithm swap accepted")
	}
	if err := gen.SetGamma(0.1); err == nil {
		t.Fatal("γ<1 accepted")
	}
	// The cluster kept running across the swaps.
	before := rt.Metrics("pipeline").Completions
	if err := rt.RunFor(100 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Metrics("pipeline").Completions <= before {
		t.Fatal("processing stalled across hot swap")
	}
}

func TestOverloadTriggersImmediateRescheduling(t *testing.T) {
	cl, err := cluster.Uniform(10, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := engine.NewRuntime(engine.TStormConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	app := testApp(t)
	// Overload: everything on one worker on one node (the user asked for
	// one worker, as in the paper's Figs. 9/10), with heavy per-tuple
	// cost: 2 spouts × 200/s × (0.1+0.15+0.15 ms at 2 GHz)... raised to
	// make one node insufficient.
	app.Costs = map[string]engine.CostFn{
		"spout": engine.ConstCost(engine.Cycles(1*time.Millisecond, 2000)),
		"mid":   engine.ConstCost(engine.Cycles(8*time.Millisecond, 2000)),
		"sink":  engine.ConstCost(engine.Cycles(8*time.Millisecond, 2000)),
	}
	initial := cluster.NewAssignment(0)
	for _, e := range app.Topology.Executors() {
		initial.Assign(e, cl.Slots()[0])
	}
	if err := rt.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	db := loaddb.New(0.5)
	monitor.Start(rt, db, 20*time.Second)
	gen, err := StartGenerator(rt, db, DefaultGeneratorConfig(), NewTrafficAware(2))
	if err != nil {
		t.Fatal(err)
	}
	StartCustomScheduler(rt, DefaultFetchPeriod)

	// Run shorter than the 300 s generation period: any rescheduling must
	// be overload-triggered.
	if err := rt.RunFor(250 * time.Second); err != nil {
		t.Fatal(err)
	}
	if gen.OverloadTriggers() == 0 {
		t.Fatal("overload never detected")
	}
	tm := rt.Metrics("pipeline")
	if got := tm.NodesInUse.Last(); got < 2 {
		t.Fatalf("overload handling did not allocate more nodes: %v", got)
	}
	// Latency after recovery is far below the overload peak.
	peak := tm.Latency.MeanAfter(sim.Time(60 * time.Second))
	late := tm.MeanLatencyAfter(sim.Time(200 * time.Second))
	if late >= peak {
		t.Fatalf("no recovery: peak-incl %.1fms vs late %.1fms", peak, late)
	}
}

func TestGeneratorSkipsWithoutData(t *testing.T) {
	cl, err := cluster.Uniform(2, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := engine.NewRuntime(engine.TStormConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	db := loaddb.New(0.5)
	gen, err := StartGenerator(rt, db, DefaultGeneratorConfig(), NewTrafficAware(2))
	if err != nil {
		t.Fatal(err)
	}
	if gen.Generate() {
		t.Fatal("generated without load data")
	}
	if gen.Generations() != 0 {
		t.Fatal("generation counted without data")
	}
}

func TestGeneratorConfigValidate(t *testing.T) {
	bad := DefaultGeneratorConfig()
	bad.GenerationPeriod = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero period accepted")
	}
	bad2 := DefaultGeneratorConfig()
	bad2.OverloadThreshold = 1.5
	if err := bad2.Validate(); err == nil {
		t.Fatal("threshold >1 accepted")
	}
	bad3 := DefaultGeneratorConfig()
	bad3.CapacityFraction = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("zero capacity fraction accepted")
	}
	if _, err := StartGenerator(nil, nil, bad3, nil); err == nil {
		t.Fatal("StartGenerator accepted bad config")
	}
}
