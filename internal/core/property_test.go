package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

// randomInput builds a random-but-valid scheduling input from fuzz bytes.
func randomInput(t *testing.T, seed int64) (*scheduler.Input, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodes := 2 + rng.Intn(9)  // 2..10 nodes
	spouts := 1 + rng.Intn(4) // executor counts
	bolts1 := 1 + rng.Intn(8)
	bolts2 := 1 + rng.Intn(8)
	ackers := rng.Intn(4)

	b := topology.NewBuilder("prop", 1+rng.Intn(20))
	b.SetAckers(ackers)
	b.Spout("s", spouts).Output("default", "v")
	b.Bolt("m", bolts1).Shuffle("s").Output("default", "v")
	b.Bolt("t", bolts2).Shuffle("m")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Uniform(nodes, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	db := loaddb.New(1)
	execs := top.Executors()
	for _, e := range execs {
		db.UpdateExecutorLoad(e, float64(rng.Intn(2000)))
	}
	// Random sparse traffic.
	for i := 0; i < len(execs)*2; i++ {
		a := execs[rng.Intn(len(execs))]
		c := execs[rng.Intn(len(execs))]
		if a != c {
			db.UpdateTraffic(a, c, float64(1+rng.Intn(500)))
		}
	}
	gamma := 1 + rng.Float64()*5
	return &scheduler.Input{
		Topologies:  []*topology.Topology{top},
		Cluster:     cl,
		Load:        db.Snapshot(),
		Constraints: scheduler.Constraints{CPUFraction: 0.9},
	}, gamma
}

// Property: for any valid input, Algorithm 1 places every executor, never
// gives one topology two slots on a node, and is deterministic.
func TestPropertyAlgorithm1Invariants(t *testing.T) {
	f := func(seed int64) bool {
		in, gamma := randomInput(t, seed)
		ta := NewTrafficAware(gamma)
		a, err := ta.Schedule(in)
		if err != nil {
			return false
		}
		// Everything placed exactly once.
		want := in.Topologies[0].NumExecutors()
		if len(a.Executors) != want {
			return false
		}
		// Constraint 1: at most one slot per topology per node.
		perNode := map[cluster.NodeID]map[cluster.SlotID]bool{}
		for _, s := range a.Executors {
			if perNode[s.Node] == nil {
				perNode[s.Node] = map[cluster.SlotID]bool{}
			}
			perNode[s.Node][s] = true
		}
		for _, slots := range perNode {
			if len(slots) > 1 {
				return false
			}
		}
		// Deterministic.
		b, err := NewTrafficAware(gamma).Schedule(in)
		if err != nil || !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the objective never exceeds the total traffic volume, and a
// single-node-capable input yields zero inter-node traffic at high γ.
func TestPropertyObjectiveBounded(t *testing.T) {
	f := func(seed int64) bool {
		in, gamma := randomInput(t, seed)
		ta := NewTrafficAware(gamma)
		a, err := ta.Schedule(in)
		if err != nil {
			return false
		}
		total := 0.0
		for _, fl := range in.Load.Flows {
			total += fl.Rate
		}
		obj := InterNodeTraffic(a, in.Load)
		return obj >= 0 && obj <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: γ controls consolidation — the loosest cap never uses more
// nodes than the tightest, and no intermediate γ exceeds the γ=1 spread
// by more than the greedy's one-node wiggle (Algorithm 1 is a heuristic,
// so strict per-step monotonicity is not guaranteed).
func TestPropertyGammaConsolidates(t *testing.T) {
	f := func(seed int64) bool {
		in, _ := randomInput(t, seed)
		// Make loads light so the count cap is the only binding constraint.
		light := loaddb.New(1)
		for e := range in.Load.ExecLoad {
			light.UpdateExecutorLoad(e, 10)
		}
		for _, fl := range in.Load.Flows {
			light.UpdateTraffic(fl.From, fl.To, fl.Rate)
		}
		in.Load = light.Snapshot()
		counts := make([]int, 0, 5)
		for _, gamma := range []float64{1, 1.5, 2, 3, 6} {
			a, err := NewTrafficAware(gamma).Schedule(in)
			if err != nil {
				return false
			}
			counts = append(counts, a.NumUsedNodes())
		}
		spread := counts[0]
		packed := counts[len(counts)-1]
		if packed > spread {
			return false
		}
		for _, n := range counts {
			if n > spread+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
