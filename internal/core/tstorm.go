// Package core implements the paper's contribution: the traffic-aware
// online scheduling algorithm (Algorithm 1) with its consolidation factor
// γ and capacity constraints, the schedule generator daemon that runs it
// periodically (and immediately on overload) with hot-swapping of
// algorithms and on-the-fly parameter changes, and the thin custom
// scheduler that fetches generated schedules and applies them to the
// cluster.
package core

import (
	"fmt"
	"math"
	"sort"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

// TrafficAware is Algorithm 1 of the paper. Executors are sorted in
// descending order of their total (incoming + outgoing) traffic, and each
// is assigned to the feasible slot that minimizes the incremental
// inter-node traffic, subject to three per-node constraints:
//
//  1. executors of one topology occupy at most one slot per node;
//  2. total assigned workload stays within C_k (Constraints.CPUFraction
//     × the node's physical capacity);
//  3. the executor count stays within γ·N_e/K (the consolidation factor).
//
// If no slot satisfies every constraint, the constraints are relaxed
// progressively (first the count cap, then capacity), so the algorithm is
// total; relaxations are reported in the Stats.
type TrafficAware struct {
	// Gamma is the consolidation factor γ (≥ 1). 1 spreads executors
	// almost evenly over all nodes; larger values consolidate onto fewer
	// nodes.
	Gamma float64
	// DisableTrafficOrder skips line 2 of Algorithm 1 (the descending
	// total-traffic sort) and places executors in declaration order
	// instead — an ablation isolating the sort's contribution.
	DisableTrafficOrder bool

	// LastStats records diagnostics of the most recent Schedule call.
	LastStats Stats
}

// Stats reports diagnostics of one scheduling run.
type Stats struct {
	// Relaxations counts executors that needed constraint relaxation.
	Relaxations int
	// InterNodeTraffic is the objective value of the produced assignment
	// (sum of traffic rates crossing node boundaries).
	InterNodeTraffic float64
	// NodesUsed is the number of distinct nodes in the assignment.
	NodesUsed int
}

var _ scheduler.Algorithm = (*TrafficAware)(nil)

// NewTrafficAware returns the algorithm with the given consolidation
// factor.
func NewTrafficAware(gamma float64) *TrafficAware {
	return &TrafficAware{Gamma: gamma}
}

// Name returns "tstorm".
func (t *TrafficAware) Name() string { return "tstorm" }

// Schedule runs Algorithm 1.
func (t *TrafficAware) Schedule(in *scheduler.Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if t.Gamma < 1 {
		return nil, fmt.Errorf("core: consolidation factor γ=%v must be ≥ 1", t.Gamma)
	}
	load := in.Load
	if load == nil {
		load = &loaddb.Snapshot{}
	}
	// The usable-capacity fraction lives in the input's Constraints block
	// (0 selects full capacity); only the CPU dimension matters here —
	// Algorithm 1 is deliberately blind to memory and bandwidth, which is
	// exactly what the rstorm/hetero contenders exist to contrast.
	capFrac := in.Constraints.CPUFraction
	if capFrac == 0 {
		capFrac = 1
	}

	// Collect executors of all topologies (the paper's E over M
	// topologies) with loads l_i and pairwise traffic r_ii'.
	var execs []topology.ExecutorID
	for _, top := range in.Topologies {
		execs = append(execs, top.Executors()...)
	}
	ne := len(execs)
	k := in.Cluster.NumNodes()
	// The paper's per-node executor cap γ·Ne/K, floored at one: a node
	// that may host no executor at all would make every small topology
	// (Ne < K) infeasible and hand control to the relaxation path, which
	// packs — the opposite of the γ=1 "almost even distribution" intent.
	countCap := t.Gamma * float64(ne) / float64(k)
	if countCap < 1 {
		countCap = 1
	}

	totalTraffic := load.TotalTraffic()
	// Line 2: sort executors by descending total traffic; ties broken by
	// executor identity for determinism.
	if !t.DisableTrafficOrder {
		sort.SliceStable(execs, func(i, j int) bool {
			ti, tj := totalTraffic[execs[i]], totalTraffic[execs[j]]
			if ti != tj {
				return ti > tj
			}
			return execs[i].Less(execs[j])
		})
	}

	// Pairwise traffic, symmetrized: r(i,i') + r(i',i).
	pair := make(map[loaddb.FlowKey]float64, len(load.Flows))
	for _, f := range load.Flows {
		pair[loaddb.FlowKey{From: f.From, To: f.To}] += f.Rate
		pair[loaddb.FlowKey{From: f.To, To: f.From}] += f.Rate
	}

	// Mutable assignment state.
	slots := in.FreeSlots()
	nodeLoad := make(map[cluster.NodeID]float64)
	nodeCount := make(map[cluster.NodeID]int)
	// topoSlot[node][topology] = slot chosen for that topology on that node.
	topoSlot := make(map[cluster.NodeID]map[string]cluster.SlotID)
	slotTopo := make(map[cluster.SlotID]string) // slot → owning topology
	// trafficToNode[i] is computed per executor during its placement.
	placedOnNode := make(map[cluster.NodeID][]topology.ExecutorID)

	a := cluster.NewAssignment(0)
	t.LastStats = Stats{}

	capacityOf := func(n cluster.NodeID) float64 {
		node, _ := in.Cluster.Node(n)
		return node.CapacityMHz() * capFrac
	}

	probe := in.Probe
	if probe != nil {
		probe.Begin(t.Name(), ne, k)
		probe.Policy(t.Gamma, capFrac, countCap)
	}

	for rank, e := range execs {
		li := load.ExecLoad[e]
		// The slot a topology must reuse per node, if any.
		type candidate struct {
			slot cluster.SlotID
			gain float64 // co-located traffic (maximize = minimize incremental)
		}
		// Co-located traffic depends only on the node, not the slot:
		// cache it per node across candidate slots.
		gainCache := make(map[cluster.NodeID]float64)
		nodeGain := func(n cluster.NodeID) float64 {
			if g, ok := gainCache[n]; ok {
				return g
			}
			g := 0.0
			for _, other := range placedOnNode[n] {
				g += pair[loaddb.FlowKey{From: e, To: other}]
			}
			gainCache[n] = g
			return g
		}
		// classify reproduces eval's checks in order and names the first
		// failing constraint — the probe's per-candidate verdict.
		classify := func(s cluster.SlotID, relaxCount, relaxCapacity bool) decision.Constraint {
			owner, owned := slotTopo[s]
			if owned && owner != e.Topology {
				return decision.RejectedSlot // slot belongs to another topology
			}
			ts := topoSlot[s.Node][e.Topology]
			if ts != (cluster.SlotID{}) && ts != s {
				return decision.RejectedSlot // constraint 1: one slot per topology per node
			}
			if !relaxCapacity && nodeLoad[s.Node]+li > capacityOf(s.Node) {
				return decision.RejectedCapacity // constraint 2
			}
			if !relaxCount && float64(nodeCount[s.Node]+1) > countCap {
				return decision.RejectedCount // constraint 3
			}
			return ""
		}
		var opts []decision.SlotOption
		eval := func(relaxCount, relaxCapacity, record bool) (cluster.SlotID, bool) {
			var best candidate
			found := false
			for _, s := range slots {
				rejected := classify(s, relaxCount, relaxCapacity)
				if record {
					opts = append(opts, decision.SlotOption{
						Slot: s, Gain: nodeGain(s.Node), Rejected: rejected,
					})
				}
				if rejected != "" {
					continue
				}
				gain := nodeGain(s.Node)
				if !found || gain > best.gain {
					best = candidate{slot: s, gain: gain}
					found = true
				}
			}
			return best.slot, found
		}

		slot, ok := eval(false, false, probe != nil)
		relaxedCount, relaxedCapacity := false, false
		if !ok {
			t.LastStats.Relaxations++
			relaxedCount = true
			slot, ok = eval(true, false, false)
		}
		if !ok {
			relaxedCapacity = true
			slot, ok = eval(true, true, false)
		}
		if !ok {
			return nil, fmt.Errorf("core: no slot available for executor %v", e)
		}
		if probe != nil {
			for i := range opts {
				if opts[i].Slot == slot {
					opts[i].Chosen = true
				}
			}
			probe.Place(decision.Placement{
				Executor:        e,
				Rank:            rank,
				Traffic:         totalTraffic[e],
				Load:            li,
				Slot:            slot,
				Gain:            nodeGain(slot.Node),
				RelaxedCount:    relaxedCount,
				RelaxedCapacity: relaxedCapacity,
				Options:         opts,
			})
		}
		a.Assign(e, slot)
		nodeLoad[slot.Node] += li
		nodeCount[slot.Node]++
		placedOnNode[slot.Node] = append(placedOnNode[slot.Node], e)
		if topoSlot[slot.Node] == nil {
			topoSlot[slot.Node] = make(map[string]cluster.SlotID)
		}
		topoSlot[slot.Node][e.Topology] = slot
		slotTopo[slot] = e.Topology
	}

	t.LastStats.NodesUsed = a.NumUsedNodes()
	t.LastStats.InterNodeTraffic = InterNodeTraffic(a, load)
	if probe != nil {
		probe.Finish(a, load)
	}
	return a, nil
}

// InterNodeTraffic computes the objective of the paper's scheduling
// problem: the total traffic rate crossing node boundaries under the
// given assignment.
func InterNodeTraffic(a *cluster.Assignment, load *loaddb.Snapshot) float64 {
	return decision.InterNodeRate(a, load)
}

// InterProcessTraffic computes the traffic between distinct slots on the
// same node (what constraint 1 drives to zero).
func InterProcessTraffic(a *cluster.Assignment, load *loaddb.Snapshot) float64 {
	total := 0.0
	for _, f := range load.Flows {
		sa, okA := a.Slot(f.From)
		sb, okB := a.Slot(f.To)
		if okA && okB && sa.Node == sb.Node && sa != sb {
			total += f.Rate
		}
	}
	return total
}

// MaxNodeLoad returns the highest per-node workload sum (MHz) under the
// assignment, and that node's ID.
func MaxNodeLoad(a *cluster.Assignment, load *loaddb.Snapshot) (cluster.NodeID, float64) {
	perNode := make(map[cluster.NodeID]float64)
	for e, mhz := range load.ExecLoad {
		if s, ok := a.Slot(e); ok {
			perNode[s.Node] += mhz
		}
	}
	var worst cluster.NodeID
	worstLoad := math.Inf(-1)
	nodes := make([]cluster.NodeID, 0, len(perNode))
	for n := range perNode {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		if perNode[n] > worstLoad {
			worst, worstLoad = n, perNode[n]
		}
	}
	if math.IsInf(worstLoad, -1) {
		return "", 0
	}
	return worst, worstLoad
}
