package core

import (
	"testing"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

func buildChain(t *testing.T, name string, workers, spoutPar, boltPar, ackers int) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(name, workers)
	b.SetAckers(ackers)
	b.Spout("spout", spoutPar).Output("default", "v")
	b.Bolt("mid", boltPar).Shuffle("spout").Output("default", "v")
	b.Bolt("sink", boltPar).Shuffle("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func tenNodes(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.Uniform(10, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// chainLoad populates a DB with a uniform pipeline load for the chain
// topology: every spout executor sends rate tuples/s to every mid
// executor, etc., and each executor burns mhz.
func chainLoad(top *topology.Topology, rate, mhz float64) *loaddb.DB {
	db := loaddb.New(1)
	var spouts, mids, sinks []topology.ExecutorID
	for _, e := range top.Executors() {
		switch e.Component {
		case "spout":
			spouts = append(spouts, e)
		case "mid":
			mids = append(mids, e)
		case "sink":
			sinks = append(sinks, e)
		}
		db.UpdateExecutorLoad(e, mhz)
	}
	for _, s := range spouts {
		for _, m := range mids {
			db.UpdateTraffic(s, m, rate/float64(len(mids)))
		}
	}
	for _, m := range mids {
		for _, k := range sinks {
			db.UpdateTraffic(m, k, rate/float64(len(sinks)))
		}
	}
	return db
}

func TestTrafficAwareBeatsRoundRobinOnObjective(t *testing.T) {
	top := buildChain(t, "t", 20, 2, 5, 3) // 2+5+5+3 = 15 executors
	cl := tenNodes(t)
	db := chainLoad(top, 100, 100)
	in := &scheduler.Input{
		Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot(),
	}
	ta := NewTrafficAware(2)
	tstormA, err := ta.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	rrA, err := scheduler.RoundRobin{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	tstormObj := InterNodeTraffic(tstormA, snap)
	rrObj := InterNodeTraffic(rrA, snap)
	if tstormObj >= rrObj {
		t.Fatalf("T-Storm inter-node traffic %.1f not below round-robin %.1f", tstormObj, rrObj)
	}
	if ta.LastStats.InterNodeTraffic != tstormObj {
		t.Fatalf("LastStats objective %v != recomputed %v", ta.LastStats.InterNodeTraffic, tstormObj)
	}
}

func TestTrafficAwareOneSlotPerTopologyPerNode(t *testing.T) {
	top := buildChain(t, "t", 20, 2, 5, 3)
	cl := tenNodes(t)
	db := chainLoad(top, 100, 100)
	a, err := NewTrafficAware(1.5).Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	slotsPerNode := make(map[cluster.NodeID]map[cluster.SlotID]bool)
	for _, s := range a.UsedSlots() {
		if slotsPerNode[s.Node] == nil {
			slotsPerNode[s.Node] = make(map[cluster.SlotID]bool)
		}
		slotsPerNode[s.Node][s] = true
	}
	for n, slots := range slotsPerNode {
		if len(slots) > 1 {
			t.Fatalf("node %s hosts %d slots of one topology, want ≤1", n, len(slots))
		}
	}
	// Consequence: inter-process traffic is zero.
	if got := InterProcessTraffic(a, db.Snapshot()); got != 0 {
		t.Fatalf("inter-process traffic = %v, want 0", got)
	}
}

func TestGammaControlsConsolidation(t *testing.T) {
	// The Word Count shape of the paper: 2+5+5+5 executors + 3 ackers =
	// 20 executors on 10 nodes. γ=1 → 10 nodes, γ=1.8 → 7, γ=2.2 → 5.
	b := topology.NewBuilder("wc", 20)
	b.SetAckers(3)
	b.Spout("reader", 2).Output("default", "line")
	b.Bolt("split", 5).Shuffle("reader").Output("default", "word")
	b.Bolt("count", 5).Fields("split", "word").Output("default", "word", "count")
	b.Bolt("mongo", 5).Shuffle("count")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl := tenNodes(t)
	db := loaddb.New(1)
	for _, e := range top.Executors() {
		db.UpdateExecutorLoad(e, 200)
	}
	execs := top.Executors()
	for i := 0; i < len(execs); i++ {
		for j := i + 1; j < len(execs); j++ {
			db.UpdateTraffic(execs[i], execs[j], 10)
		}
	}
	tests := []struct {
		gamma     float64
		wantNodes int
	}{
		{1.0, 10},
		{1.8, 7},
		{2.2, 5},
	}
	for _, tt := range tests {
		a, err := NewTrafficAware(tt.gamma).Schedule(&scheduler.Input{
			Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot(),
		})
		if err != nil {
			t.Fatalf("γ=%v: %v", tt.gamma, err)
		}
		if got := a.NumUsedNodes(); got != tt.wantNodes {
			t.Errorf("γ=%v used %d nodes, want %d", tt.gamma, got, tt.wantNodes)
		}
	}
}

func TestCapacityConstraintSpreadsHeavyLoad(t *testing.T) {
	top := buildChain(t, "t", 20, 2, 5, 1) // 13 executors
	cl := tenNodes(t)                      // 8000 MHz per node
	db := loaddb.New(1)
	for _, e := range top.Executors() {
		db.UpdateExecutorLoad(e, 3000) // 3 GHz each: at most 2 per node at 0.9 cap
		db.UpdateTraffic(e, e, 0)
	}
	a, err := NewTrafficAware(6).Schedule(&scheduler.Input{
		Topologies:  []*topology.Topology{top},
		Cluster:     cl,
		Load:        db.Snapshot(),
		Constraints: scheduler.Constraints{CPUFraction: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 13 executors × 3000 MHz at ≤ 7200 MHz usable per node → ≥ 7 nodes.
	if got := a.NumUsedNodes(); got < 7 {
		t.Fatalf("capacity ignored: %d nodes for 39 GHz of load", got)
	}
	perNode := make(map[cluster.NodeID]float64)
	for e, s := range a.Executors {
		perNode[s.Node] += db.ExecutorLoad(e)
	}
	for n, l := range perNode {
		if l > 7200 {
			t.Fatalf("node %s overloaded at %v MHz", n, l)
		}
	}
}

func TestRelaxationWhenInfeasible(t *testing.T) {
	// γ=1 with 45 executors on 10 nodes: cap 4.5/node can't hold 45
	// executors in 10 nodes without relaxation (4×10 = 40 < 45); the
	// algorithm must still produce a full assignment.
	top := buildChain(t, "t", 40, 5, 15, 10) // 5+15+15+10 = 45
	cl := tenNodes(t)
	db := chainLoad(top, 1000, 100)
	ta := NewTrafficAware(1)
	a, err := ta.Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != 45 {
		t.Fatalf("placed %d, want 45", len(a.Executors))
	}
	if ta.LastStats.Relaxations == 0 {
		t.Fatal("expected relaxations at γ=1 with 45 executors")
	}
	if got := a.NumUsedNodes(); got != 10 {
		t.Fatalf("γ=1 used %d nodes, want all 10", got)
	}
}

func TestTrafficAwareValidation(t *testing.T) {
	top := buildChain(t, "t", 1, 1, 1, 1)
	cl := tenNodes(t)
	if _, err := NewTrafficAware(0.5).Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{top}, Cluster: cl,
	}); err == nil {
		t.Fatal("γ<1 accepted")
	}
	if _, err := NewTrafficAware(1).Schedule(&scheduler.Input{}); err == nil {
		t.Fatal("empty input accepted")
	}
	// Nil load snapshot is fine (cold start).
	if _, err := NewTrafficAware(1).Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{top}, Cluster: cl,
	}); err != nil {
		t.Fatal(err)
	}
	if NewTrafficAware(1).Name() != "tstorm" {
		t.Fatal("Name wrong")
	}
}

func TestTrafficAwareMultiTopology(t *testing.T) {
	t1 := buildChain(t, "one", 10, 1, 2, 1)
	t2 := buildChain(t, "two", 10, 1, 2, 1)
	cl := tenNodes(t)
	db := loaddb.New(1)
	for _, top := range []*topology.Topology{t1, t2} {
		for _, e := range top.Executors() {
			db.UpdateExecutorLoad(e, 100)
		}
	}
	a, err := NewTrafficAware(5).Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{t1, t2}, Cluster: cl, Load: db.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != t1.NumExecutors()+t2.NumExecutors() {
		t.Fatal("not all executors placed")
	}
	owner := make(map[cluster.SlotID]string)
	for e, s := range a.Executors {
		if o, ok := owner[s]; ok && o != e.Topology {
			t.Fatalf("slot %v shared by topologies %s and %s", s, o, e.Topology)
		}
		owner[s] = e.Topology
	}
}

func TestDeterministicOutput(t *testing.T) {
	top := buildChain(t, "t", 20, 2, 5, 3)
	cl := tenNodes(t)
	db := chainLoad(top, 100, 100)
	in := &scheduler.Input{Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot()}
	a1, err := NewTrafficAware(2).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewTrafficAware(2).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if !a1.Equal(a2) {
		t.Fatal("two identical runs produced different assignments")
	}
}

func TestMaxNodeLoad(t *testing.T) {
	top := buildChain(t, "t", 1, 1, 1, 1)
	cl := tenNodes(t)
	db := loaddb.New(1)
	execs := top.Executors()
	a := cluster.NewAssignment(0)
	for i, e := range execs {
		db.UpdateExecutorLoad(e, float64(100*(i+1)))
		a.Assign(e, cl.Slots()[0]) // everything on node01
	}
	node, load := MaxNodeLoad(a, db.Snapshot())
	if node != "node01" {
		t.Fatalf("MaxNodeLoad node = %s", node)
	}
	want := 0.0
	for i := range execs {
		want += float64(100 * (i + 1))
	}
	if load != want {
		t.Fatalf("load = %v, want %v", load, want)
	}
	// Empty assignment.
	if n, l := MaxNodeLoad(cluster.NewAssignment(0), db.Snapshot()); n != "" || l != 0 {
		t.Fatalf("empty MaxNodeLoad = %s, %v", n, l)
	}
}

func TestHeterogeneousClusterRespectsPerNodeCapacity(t *testing.T) {
	// Two big nodes (8×2000 MHz) and four small ones (2×2000 MHz): the
	// capacity constraint is per-node (C_k), so heavy executors must
	// concentrate on the big nodes without overloading the small ones.
	nodes := []cluster.Node{
		{ID: "big1", Cores: 8, CoreMHz: 2000, NumSlots: 4},
		{ID: "big2", Cores: 8, CoreMHz: 2000, NumSlots: 4},
		{ID: "small1", Cores: 2, CoreMHz: 2000, NumSlots: 2},
		{ID: "small2", Cores: 2, CoreMHz: 2000, NumSlots: 2},
		{ID: "small3", Cores: 2, CoreMHz: 2000, NumSlots: 2},
		{ID: "small4", Cores: 2, CoreMHz: 2000, NumSlots: 2},
	}
	cl, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	top := buildChain(t, "het", 10, 2, 6, 1) // 15 executors
	db := loaddb.New(1)
	for _, e := range top.Executors() {
		db.UpdateExecutorLoad(e, 2400) // 2.4 GHz each: small nodes fit ≤1, big ≤6
	}
	ta := NewTrafficAware(6)
	a, err := ta.Schedule(&scheduler.Input{
		Topologies:  []*topology.Topology{top},
		Cluster:     cl,
		Load:        db.Snapshot(),
		Constraints: scheduler.Constraints{CPUFraction: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	perNode := map[cluster.NodeID]float64{}
	for e, s := range a.Executors {
		perNode[s.Node] += snap.ExecLoad[e]
	}
	for _, n := range nodes {
		if perNode[n.ID] > 0.9*n.CapacityMHz()+1e-9 {
			t.Fatalf("node %s overloaded: %v MHz of %v", n.ID, perNode[n.ID], n.CapacityMHz())
		}
	}
	// Big nodes must carry more than small ones.
	if perNode["big1"] <= perNode["small1"] {
		t.Fatalf("capacity-blind packing: big1=%v small1=%v", perNode["big1"], perNode["small1"])
	}
	if ta.LastStats.Relaxations != 0 {
		t.Fatalf("feasible heterogeneous input needed %d relaxations", ta.LastStats.Relaxations)
	}
}

func TestTrafficAwareBeatsLoadBalancedOnObjective(t *testing.T) {
	// Same load information, same one-slot-per-node rule: the only
	// difference is the objective. T-Storm must win on inter-node traffic.
	top := buildChain(t, "t", 20, 5, 5, 3)
	cl := tenNodes(t)
	// Skewed, tie-free traffic: spout[i] → mid[i] is hot with distinct
	// rates, and executor loads differ, so the load balancer's choices are
	// driven by balance alone and split the pairs.
	db := loaddb.New(1)
	for i, e := range top.Executors() {
		db.UpdateExecutorLoad(e, 300+float64(13*i))
	}
	for i := 0; i < 5; i++ {
		from := topology.ExecutorID{Topology: "t", Component: "spout", Index: i}
		to := topology.ExecutorID{Topology: "t", Component: "mid", Index: i}
		db.UpdateTraffic(from, to, float64(1000-100*i))
		sink := topology.ExecutorID{Topology: "t", Component: "sink", Index: (i + 1) % 5}
		db.UpdateTraffic(to, sink, 1)
	}
	in := &scheduler.Input{
		Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot(),
	}
	lb, err := scheduler.LoadBalanced{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	ta, err := NewTrafficAware(2).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	if got, other := InterNodeTraffic(ta, snap), InterNodeTraffic(lb, snap); got >= other {
		t.Fatalf("T-Storm objective %.0f not below load-balanced %.0f", got, other)
	}
}
