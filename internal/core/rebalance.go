package core

import (
	"fmt"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

// Rebalance re-applies an initial-style placement with a new requested
// worker count — Storm's `storm rebalance -n` command, which T-Storm also
// uses to enforce its one-worker-per-node initial setting (§IV-C). With
// tstormStyle the modified initial scheduler is used (min(N_u, nodes)
// workers, one per node); otherwise Storm's default round-robin.
func Rebalance(rt *engine.Runtime, topo string, numWorkers int, tstormStyle bool) error {
	app, ok := rt.App(topo)
	if !ok {
		return fmt.Errorf("core: unknown topology %q", topo)
	}
	if err := app.Topology.SetNumWorkers(numWorkers); err != nil {
		return err
	}
	in := &scheduler.Input{
		Topologies: []*topology.Topology{app.Topology},
		Cluster:    rt.Cluster(),
		Occupied:   occupiedByOthers(rt, topo),
	}
	var alg scheduler.Algorithm = scheduler.RoundRobin{}
	if tstormStyle {
		alg = scheduler.TStormInitial{}
	}
	a, err := alg.Schedule(in)
	if err != nil {
		return err
	}
	return rt.PublishAssignment(topo, a)
}

// occupiedByOthers marks every slot used by topologies other than topo,
// plus all slots of failed nodes.
func occupiedByOthers(rt *engine.Runtime, topo string) map[cluster.SlotID]bool {
	occ := make(map[cluster.SlotID]bool)
	for _, other := range rt.Topologies() {
		if other == topo {
			continue
		}
		if a, ok := rt.CurrentAssignment(other); ok {
			for _, s := range a.Executors {
				occ[s] = true
			}
		}
	}
	for _, down := range rt.DownNodes() {
		if node, ok := rt.Cluster().Node(down); ok {
			for p := 0; p < node.NumSlots; p++ {
				occ[cluster.SlotID{Node: down, Port: cluster.BasePort + p}] = true
			}
		}
	}
	return occ
}
