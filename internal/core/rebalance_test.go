package core

import (
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

func startedRuntime(t *testing.T) (*engine.Runtime, *engine.App) {
	t.Helper()
	cl, err := cluster.Uniform(10, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := engine.NewRuntime(engine.TStormConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	app := testApp(t)
	initial, err := scheduler.RoundRobin{}.Schedule(&scheduler.Input{
		Topologies: []*topology.Topology{app.Topology}, Cluster: cl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	return rt, app
}

func TestRebalanceChangesWorkerCount(t *testing.T) {
	rt, app := startedRuntime(t)
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Shrink from 20 requested workers to 4 with the default style.
	if err := Rebalance(rt, "pipeline", 4, false); err != nil {
		t.Fatal(err)
	}
	if app.Topology.NumWorkers() != 4 {
		t.Fatalf("NumWorkers = %d, want 4", app.Topology.NumWorkers())
	}
	cur, _ := rt.CurrentAssignment("pipeline")
	if got := len(cur.UsedSlots()); got != 4 {
		t.Fatalf("used %d slots after rebalance, want 4", got)
	}
	// T-Storm style: one worker per node.
	if err := Rebalance(rt, "pipeline", 20, true); err != nil {
		t.Fatal(err)
	}
	cur, _ = rt.CurrentAssignment("pipeline")
	if got := len(cur.UsedSlots()); got != 10 {
		t.Fatalf("tstorm-style rebalance used %d slots, want 10 (one per node)", got)
	}
	perNode := map[cluster.NodeID]int{}
	for _, s := range cur.UsedSlots() {
		perNode[s.Node]++
	}
	for n, c := range perNode {
		if c != 1 {
			t.Fatalf("node %s hosts %d slots, want 1", n, c)
		}
	}
	// Processing continues across the rebalances.
	if err := rt.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Metrics("pipeline").Completions == 0 {
		t.Fatal("nothing completed after rebalances")
	}
}

func TestRebalanceValidation(t *testing.T) {
	rt, _ := startedRuntime(t)
	if err := Rebalance(rt, "ghost", 2, false); err == nil {
		t.Fatal("rebalanced unknown topology")
	}
	if err := Rebalance(rt, "pipeline", 0, false); err == nil {
		t.Fatal("rebalanced to zero workers")
	}
}

func TestKillTopologyStopsEverything(t *testing.T) {
	rt, _ := startedRuntime(t)
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("pipeline")
	if tm.Completions == 0 {
		t.Fatal("no progress before kill")
	}
	if err := rt.KillTopology("pipeline"); err != nil {
		t.Fatal(err)
	}
	if err := rt.KillTopology("pipeline"); err == nil {
		t.Fatal("double kill succeeded")
	}
	before := tm.Completions
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tm.Completions != before {
		t.Fatalf("killed topology kept completing: %d → %d", before, tm.Completions)
	}
	if len(rt.Topologies()) != 0 {
		t.Fatalf("Topologies = %v after kill", rt.Topologies())
	}
	if _, ok := rt.CurrentAssignment("pipeline"); ok {
		t.Fatal("assignment survives kill")
	}
}
