package tsdb

import (
	"sync"
	"testing"
	"time"
)

func ts(sec int) int64 { return int64(sec) * int64(time.Second) }

func TestSeriesRingWrapKeepsNewest(t *testing.T) {
	s := newSeries("c", Counter, 4)
	for i := 0; i < 10; i++ {
		s.Append(ts(i), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	pts := s.Last(10)
	if len(pts) != 4 {
		t.Fatalf("Last returned %d points, want 4", len(pts))
	}
	for i, p := range pts {
		want := float64(6 + i)
		if p.V != want || p.TS != ts(6+i) {
			t.Errorf("point %d = %+v, want v=%v", i, p, want)
		}
	}
	latest, ok := s.Latest()
	if !ok || latest.V != 9 {
		t.Errorf("Latest = %+v/%v, want 9", latest, ok)
	}
}

func TestSeriesQueries(t *testing.T) {
	now := time.Unix(100, 0)
	c := newSeries("c", Counter, 64)
	for i := 0; i <= 10; i++ {
		c.Append(ts(90+i), float64(i*50)) // +50/s for 10s ending at t=100
	}
	rate, ok := c.RateOver(now, 10*time.Second)
	if !ok || rate != 50 {
		t.Errorf("RateOver = %v/%v, want 50", rate, ok)
	}
	delta, ok := c.DeltaOver(now, 5*time.Second)
	if !ok || delta != 250 {
		t.Errorf("DeltaOver = %v/%v, want 250", delta, ok)
	}
	// Windows that trim to fewer than two samples report no data.
	if _, ok := c.RateOver(now, time.Millisecond); ok {
		t.Error("RateOver over an empty window reported ok")
	}

	g := newSeries("g", Gauge, 64)
	for i, v := range []float64{5, 1, 9, 3, 7} {
		g.Append(ts(96+i), v)
	}
	if q, ok := g.QuantileOver(now, 10*time.Second, 1); !ok || q != 9 {
		t.Errorf("QuantileOver(1) = %v/%v, want 9", q, ok)
	}
	if q, ok := g.QuantileOver(now, 10*time.Second, 0.5); !ok || q != 5 {
		t.Errorf("QuantileOver(0.5) = %v/%v, want 5", q, ok)
	}
	if m, ok := g.MaxOver(now, 10*time.Second); !ok || m != 9 {
		t.Errorf("MaxOver = %v/%v, want 9", m, ok)
	}
	// A counter that shrank (backend swap) clamps to zero rate, not negative.
	d := newSeries("d", Counter, 8)
	d.Append(ts(99), 100)
	d.Append(ts(100), 40)
	if rate, ok := d.RateOver(now, 5*time.Second); !ok || rate != 0 {
		t.Errorf("shrinking counter rate = %v/%v, want 0", rate, ok)
	}
}

func TestAppendAllocationFree(t *testing.T) {
	s := newSeries("c", Counter, 128)
	n := testing.AllocsPerRun(1000, func() {
		s.Append(1, 1)
	})
	if n != 0 {
		t.Errorf("Append allocates %.1f times per call, want 0", n)
	}
}

func TestDBRegisterIdempotent(t *testing.T) {
	db := NewDB(16)
	a := db.Register("throughput", Counter)
	b := db.Register("throughput", Counter)
	if a != b {
		t.Error("re-registering returned a different series")
	}
	db.Register("p99", Gauge)
	names := db.Names()
	if len(names) != 2 || names[0] != "throughput" || names[1] != "p99" {
		t.Errorf("Names = %v", names)
	}
	if db.Lookup("p99") == nil || db.Lookup("absent") != nil {
		t.Error("Lookup misbehaved")
	}
	if got := db.Lookup("p99").Kind(); got != Gauge {
		t.Errorf("kind = %v, want gauge", got)
	}
}

// TestReadersRaceWriter hammers Last/Since from several goroutines while
// a single writer laps the ring; every returned slice must be internally
// consistent (monotone timestamps, value == timestamp scheme preserved).
// Run under -race by the full ci.sh pass.
func TestReadersRaceWriter(t *testing.T) {
	s := newSeries("c", Counter, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				pts := s.Last(32)
				for i := 1; i < len(pts); i++ {
					if pts[i].TS < pts[i-1].TS {
						t.Errorf("timestamps out of order: %v then %v", pts[i-1].TS, pts[i].TS)
						return
					}
				}
				for _, p := range pts {
					if p.V != float64(p.TS) {
						t.Errorf("torn point: ts=%d v=%v", p.TS, p.V)
						return
					}
				}
			}
		}()
	}
	for i := int64(1); i <= 100000; i++ {
		s.Append(i, float64(i))
	}
	close(stop)
	wg.Wait()
}

func TestSamplerTickAndLoop(t *testing.T) {
	db := NewDB(64)
	c := db.Register("x", Counter)
	var n int64
	s := NewSampler(time.Millisecond, func(now time.Time) {
		n++
		c.Append(now.UnixNano(), float64(n))
	})
	base := time.Unix(50, 0)
	for i := 0; i < 3; i++ {
		s.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if s.Ticks() != 3 || c.Len() != 3 {
		t.Fatalf("ticks=%d len=%d, want 3/3", s.Ticks(), c.Len())
	}
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for s.Ticks() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if s.Ticks() < 5 {
		t.Errorf("background loop ticked only %d times", s.Ticks())
	}
	after := s.Ticks()
	time.Sleep(5 * time.Millisecond)
	if s.Ticks() != after {
		t.Error("sampler kept ticking after Stop")
	}
}
