// Package tsdb retains short metric histories in memory so health rules
// and dashboards can ask about trends ("is throughput falling?", "is a
// heartbeat age climbing?") without an external scraper. Each Series is a
// fixed-capacity ring of (timestamp, value) samples written by exactly
// one goroutine — the Sampler — with per-slot atomic stores, so readers
// (HTTP handlers, health probes) never block the writer and the write
// path allocates nothing in steady state.
package tsdb

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind tells queries how to interpret a series.
type Kind uint8

const (
	// Counter samples are monotone cumulative totals; Rate and Delta are
	// the meaningful queries.
	Counter Kind = iota
	// Gauge samples are instantaneous readings; Latest and QuantileOver
	// are the meaningful queries.
	Gauge
)

// String names the kind for exposition.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Point is one retained sample.
type Point struct {
	// TS is the sample instant in Unix nanoseconds.
	TS int64 `json:"t"`
	// V is the sampled value.
	V float64 `json:"v"`
}

// Series is a fixed-capacity ring of samples. Writes (Append) must come
// from a single goroutine; reads may come from any number of goroutines
// concurrently. head counts samples ever written — slot head%cap is the
// next write target — and is published after the slot contents, so a
// reader that re-checks head after copying knows whether any slot it
// read could have been overwritten mid-copy.
type Series struct {
	name string
	kind Kind
	ts   []int64
	vals []uint64 // math.Float64bits
	head atomic.Uint64
}

func newSeries(name string, kind Kind, capacity int) *Series {
	if capacity < 2 {
		capacity = 2
	}
	return &Series{
		name: name,
		kind: kind,
		ts:   make([]int64, capacity),
		vals: make([]uint64, capacity),
	}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Kind returns the series kind.
func (s *Series) Kind() Kind { return s.kind }

// Cap returns the ring capacity in samples.
func (s *Series) Cap() int { return len(s.ts) }

// Len reports how many samples are currently retained.
func (s *Series) Len() int {
	h := s.head.Load()
	if h > uint64(len(s.ts)) {
		return len(s.ts)
	}
	return int(h)
}

// Append records one sample. Single writer only: the caller (normally a
// Sampler tick) must serialize Append calls itself. Allocation-free.
func (s *Series) Append(tsNano int64, v float64) {
	h := s.head.Load()
	i := int(h % uint64(len(s.ts)))
	atomic.StoreInt64(&s.ts[i], tsNano)
	atomic.StoreUint64(&s.vals[i], math.Float64bits(v))
	s.head.Store(h + 1)
}

// Last returns up to n most recent samples, oldest first. The copy is
// consistent: if the writer laps a slot mid-read the affected prefix is
// dropped rather than returned torn.
func (s *Series) Last(n int) []Point {
	if n <= 0 {
		return nil
	}
	capN := uint64(len(s.ts))
	for attempt := 0; ; attempt++ {
		h := s.head.Load()
		if h == 0 {
			return nil
		}
		k := uint64(n)
		if k > h {
			k = h
		}
		if k > capN {
			k = capN
		}
		start := h - k
		out := make([]Point, k)
		for i := uint64(0); i < k; i++ {
			idx := (start + i) % capN
			t := atomic.LoadInt64(&s.ts[idx])
			v := atomic.LoadUint64(&s.vals[idx])
			out[i] = Point{TS: t, V: math.Float64frombits(v)}
		}
		h2 := s.head.Load()
		if h2-start <= capN {
			return out
		}
		if attempt >= 4 {
			// The writer lapped us repeatedly (it would take a pathological
			// sampling cadence). Drop the possibly-torn oldest entries and
			// keep the rest: slots numbered < h2-cap may have been rewritten.
			torn := h2 - capN - start
			if torn >= k {
				return nil
			}
			return out[torn:]
		}
	}
}

// Since returns the retained samples with TS >= cutoff (Unix nanos),
// oldest first.
func (s *Series) Since(cutoff int64) []Point {
	pts := s.Last(len(s.ts))
	i := sort.Search(len(pts), func(i int) bool { return pts[i].TS >= cutoff })
	return pts[i:]
}

// Latest returns the most recent sample, if any.
func (s *Series) Latest() (Point, bool) {
	pts := s.Last(1)
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[0], true
}

// RateOver returns the per-second rate of change across the samples in
// the window ending at now. For counters this is the throughput over the
// window. ok is false with fewer than two in-window samples or when no
// time elapsed between them. Negative rates (a counter that shrank, e.g.
// after a backend swap) clamp to 0.
func (s *Series) RateOver(now time.Time, window time.Duration) (rate float64, ok bool) {
	pts := s.Since(now.Add(-window).UnixNano())
	if len(pts) < 2 {
		return 0, false
	}
	first, last := pts[0], pts[len(pts)-1]
	elapsed := time.Duration(last.TS - first.TS).Seconds()
	if elapsed <= 0 {
		return 0, false
	}
	r := (last.V - first.V) / elapsed
	if r < 0 {
		r = 0
	}
	return r, true
}

// DeltaOver returns the value change across the window ending at now.
// ok is false with fewer than two in-window samples.
func (s *Series) DeltaOver(now time.Time, window time.Duration) (delta float64, ok bool) {
	pts := s.Since(now.Add(-window).UnixNano())
	if len(pts) < 2 {
		return 0, false
	}
	return pts[len(pts)-1].V - pts[0].V, true
}

// QuantileOver returns the q-quantile (0 < q <= 1, nearest-rank) of the
// sampled values in the window ending at now. ok is false when the
// window holds no samples.
func (s *Series) QuantileOver(now time.Time, window time.Duration, q float64) (v float64, ok bool) {
	pts := s.Since(now.Add(-window).UnixNano())
	if len(pts) == 0 {
		return 0, false
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.V
	}
	sort.Float64s(vals)
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := int(math.Ceil(q * float64(len(vals))))
	return vals[rank-1], true
}

// MaxOver returns the maximum sampled value in the window ending at now.
func (s *Series) MaxOver(now time.Time, window time.Duration) (v float64, ok bool) {
	pts := s.Since(now.Add(-window).UnixNano())
	if len(pts) == 0 {
		return 0, false
	}
	m := pts[0].V
	for _, p := range pts[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m, true
}

// DefaultCapacity retains ~8.5 minutes of history at a 1 s cadence.
const DefaultCapacity = 512

// DB is a registry of named series. Registration is cheap and idempotent;
// lookups take a read lock only.
type DB struct {
	mu       sync.RWMutex
	capacity int
	series   map[string]*Series
	order    []string
}

// NewDB returns a registry whose series each retain capacity samples
// (DefaultCapacity when <= 0).
func NewDB(capacity int) *DB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &DB{capacity: capacity, series: make(map[string]*Series)}
}

// Register returns the named series, creating it with the given kind on
// first use. Re-registering an existing name returns the existing series
// regardless of kind.
func (db *DB) Register(name string, kind Kind) *Series {
	db.mu.RLock()
	s := db.series[name]
	db.mu.RUnlock()
	if s != nil {
		return s
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if s := db.series[name]; s != nil {
		return s
	}
	s = newSeries(name, kind, db.capacity)
	db.series[name] = s
	db.order = append(db.order, name)
	return s
}

// Lookup returns the named series, or nil.
func (db *DB) Lookup(name string) *Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.series[name]
}

// Names returns the registered series names in registration order.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.order...)
}
