package tsdb

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleEvery is the cadence used when none is configured.
const DefaultSampleEvery = time.Second

// Sampler drives a collect function on a fixed cadence. The collect
// function is the single writer for every series it appends to: Tick and
// the background loop serialize through one mutex, so collectors never
// run concurrently with themselves.
type Sampler struct {
	every   time.Duration
	collect func(now time.Time)

	mu      sync.Mutex // serializes collect calls
	ticks   atomic.Int64
	startMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}
}

// NewSampler returns a sampler calling collect every interval
// (DefaultSampleEvery when <= 0). It does not start sampling; call Start
// for the background loop or Tick for manual, deterministic advancement.
func NewSampler(every time.Duration, collect func(now time.Time)) *Sampler {
	if every <= 0 {
		every = DefaultSampleEvery
	}
	return &Sampler{every: every, collect: collect}
}

// Every returns the configured cadence.
func (s *Sampler) Every() time.Duration { return s.every }

// Tick runs one collection pass stamped now. Safe to call concurrently
// with the background loop — passes never overlap.
func (s *Sampler) Tick(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collect(now)
	s.ticks.Add(1)
}

// Ticks reports how many collection passes have run.
func (s *Sampler) Ticks() int64 { return s.ticks.Load() }

// Start launches the background sampling loop. Idempotent.
func (s *Sampler) Start() {
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.Tick(now)
		}
	}
}

// Stop halts the background loop and waits for any in-flight pass to
// finish. Idempotent; Start may be called again afterwards.
func (s *Sampler) Stop() {
	s.startMu.Lock()
	defer s.startMu.Unlock()
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}
