package transport

import (
	"testing"
	"testing/quick"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/sim"
)

func TestClassify(t *testing.T) {
	a := cluster.SlotID{Node: "n1", Port: 6700}
	b := cluster.SlotID{Node: "n1", Port: 6701}
	c := cluster.SlotID{Node: "n2", Port: 6700}
	tests := []struct {
		src, dst cluster.SlotID
		want     HopKind
	}{
		{a, a, HopLocal},
		{a, b, HopInterProcess},
		{a, c, HopInterNode},
		{c, a, HopInterNode},
	}
	for _, tt := range tests {
		if got := Classify(tt.src, tt.dst); got != tt.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tt.src, tt.dst, got, tt.want)
		}
	}
}

func TestHopKindString(t *testing.T) {
	if HopLocal.String() != "local" || HopInterProcess.String() != "inter-process" ||
		HopInterNode.String() != "inter-node" || HopKind(0).String() != "HopKind(0)" {
		t.Fatal("HopKind.String wrong")
	}
}

func TestDefaultCostModelValidAndOrdered(t *testing.T) {
	m := DefaultCostModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The whole premise of the paper: local < inter-process < inter-node.
	if !(m.PropagationDelay(HopLocal) < m.PropagationDelay(HopInterProcess) &&
		m.PropagationDelay(HopInterProcess) < m.PropagationDelay(HopInterNode)) {
		t.Fatal("hop delays not ordered local < inter-process < inter-node")
	}
}

func TestCostModelValidation(t *testing.T) {
	bad := []CostModel{
		{LocalDelay: -1, BandwidthBps: 1},
		{LoopbackDelay: -1, BandwidthBps: 1},
		{NetworkDelay: -1, BandwidthBps: 1},
		{BandwidthBps: 0},
		{BandwidthBps: 1, SerializeCyclesPerByte: -1},
		{BandwidthBps: 1, ContextSwitchPenalty: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, m)
		}
	}
}

func TestTransmissionTime(t *testing.T) {
	m := CostModel{BandwidthBps: 1e9}
	// 10 KB at 1 Gbps = 80 µs.
	if got := m.TransmissionTime(10000); got != 80*time.Microsecond {
		t.Fatalf("TransmissionTime = %v, want 80µs", got)
	}
	if got := m.TransmissionTime(0); got != 0 {
		t.Fatalf("TransmissionTime(0) = %v", got)
	}
}

func TestSerializeCycles(t *testing.T) {
	m := CostModel{SerializeCyclesPerByte: 6}
	if got := m.SerializeCycles(100); got != 600 {
		t.Fatalf("SerializeCycles = %v, want 600", got)
	}
}

func TestNICSerializesTransmissions(t *testing.T) {
	m := CostModel{BandwidthBps: 1e9}
	nic := NewNIC(m)
	t0 := sim.Time(0)
	// First message: done at 80µs.
	d1 := nic.Send(t0, 10000)
	if d1 != sim.Time(80*time.Microsecond) {
		t.Fatalf("d1 = %v, want 80µs", d1)
	}
	// Second message at the same instant queues behind the first.
	d2 := nic.Send(t0, 10000)
	if d2 != sim.Time(160*time.Microsecond) {
		t.Fatalf("d2 = %v, want 160µs", d2)
	}
	// A message after the NIC is idle starts fresh.
	d3 := nic.Send(sim.Time(time.Millisecond), 10000)
	if d3 != sim.Time(time.Millisecond+80*time.Microsecond) {
		t.Fatalf("d3 = %v", d3)
	}
	if nic.BytesSent() != 30000 || nic.MessagesSent() != 3 {
		t.Fatalf("counters = %d bytes, %d msgs", nic.BytesSent(), nic.MessagesSent())
	}
}

// Property: NIC completion times are monotonically non-decreasing and
// never earlier than enqueue time + transmission time.
func TestPropertyNICMonotonic(t *testing.T) {
	f := func(sizes []uint16, gaps []uint8) bool {
		m := CostModel{BandwidthBps: 1e6}
		nic := NewNIC(m)
		now := sim.Time(0)
		var last sim.Time
		for i, s := range sizes {
			if i < len(gaps) {
				now = now.Add(time.Duration(gaps[i]) * time.Microsecond)
			}
			done := nic.Send(now, int(s))
			if done < last {
				return false
			}
			if done < now.Add(m.TransmissionTime(int(s))) {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDispatcherRoutesByGeneration(t *testing.T) {
	d := NewDispatcher()
	if _, ok := d.Route(1); ok {
		t.Fatal("empty dispatcher routed")
	}
	d.Register(100, "old")
	d.Register(200, "new")
	if d.Generations() != 2 {
		t.Fatalf("Generations = %d, want 2", d.Generations())
	}
	if w, _ := d.Route(100); w != "old" {
		t.Fatalf("Route(100) = %v, want old", w)
	}
	if w, _ := d.Route(200); w != "new" {
		t.Fatalf("Route(200) = %v, want new", w)
	}
	// Unknown generation falls back to the newest.
	if w, _ := d.Route(999); w != "new" {
		t.Fatalf("Route(999) = %v, want new", w)
	}
}

func TestDispatcherUnregister(t *testing.T) {
	d := NewDispatcher()
	d.Register(100, "old")
	d.Register(200, "new")
	d.Unregister(200)
	if w, _ := d.Route(200); w != "old" {
		t.Fatalf("after unregistering newest, Route(200) = %v, want old", w)
	}
	d.Unregister(100)
	if _, ok := d.Route(100); ok {
		t.Fatal("empty dispatcher still routes")
	}
}

func TestDispatcherRegisterOutOfOrder(t *testing.T) {
	d := NewDispatcher()
	d.Register(200, "new")
	d.Register(100, "old") // registering an older generation must not displace current
	if w, _ := d.Route(999); w != "new" {
		t.Fatalf("current generation = %v, want new", w)
	}
}

func TestNICFreeAt(t *testing.T) {
	nic := NewNIC(CostModel{BandwidthBps: 1e9})
	if nic.FreeAt() != 0 {
		t.Fatal("fresh NIC not free")
	}
	done := nic.Send(sim.Time(0), 10000)
	if nic.FreeAt() != done {
		t.Fatalf("FreeAt = %v, want %v", nic.FreeAt(), done)
	}
}
