// Package transport models how tuples move between executors: the hop
// classification (intra-worker, inter-process, inter-node) whose costs
// motivate traffic-aware scheduling, the NIC bandwidth queue, and the
// per-slot dispatcher T-Storm adds to route messages to old- or
// new-generation workers by assignment ID during re-assignment (§IV-D).
package transport

import (
	"fmt"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/sim"
)

// HopKind classifies the path between two executors.
type HopKind int

// Hop kinds, cheapest first.
const (
	// HopLocal is a hand-off between executors in the same worker
	// process: an in-memory queue transfer.
	HopLocal HopKind = iota + 1
	// HopInterProcess crosses worker processes on the same node:
	// serialization plus a loopback round.
	HopInterProcess
	// HopInterNode crosses machines: serialization, NIC transmission and
	// network latency.
	HopInterNode
)

// String names the hop kind.
func (k HopKind) String() string {
	switch k {
	case HopLocal:
		return "local"
	case HopInterProcess:
		return "inter-process"
	case HopInterNode:
		return "inter-node"
	default:
		return fmt.Sprintf("HopKind(%d)", int(k))
	}
}

// Classify determines the hop kind between two slots.
func Classify(src, dst cluster.SlotID) HopKind {
	if src == dst {
		return HopLocal
	}
	if src.Node == dst.Node {
		return HopInterProcess
	}
	return HopInterNode
}

// CostModel holds the latency/bandwidth/CPU parameters of the simulated
// cluster fabric. All fields must be non-negative.
type CostModel struct {
	// LocalDelay is the intra-worker queue hand-off latency.
	LocalDelay time.Duration
	// LoopbackDelay is the same-node inter-process message latency
	// (loopback TCP round through the kernel).
	LoopbackDelay time.Duration
	// NetworkDelay is the inter-node propagation + protocol-stack latency,
	// excluding transmission time.
	NetworkDelay time.Duration
	// BandwidthBps is the NIC line rate in bits per second.
	BandwidthBps float64
	// SerializeCyclesPerByte is the CPU cost (in MHz·µs ≡ cycles) charged
	// per byte to serialize or deserialize a tuple crossing a process
	// boundary.
	SerializeCyclesPerByte float64
	// ContextSwitchPenalty is the fractional slowdown added per extra
	// active worker process on a node beyond the first (Observation 1
	// attributes part of the spread-out cost to context switching).
	ContextSwitchPenalty float64
}

// DefaultCostModel matches the paper's testbed: 1 Gbps Ethernet between
// IBM blade servers, with latencies typical of Storm 0.8's ZeroMQ
// transport (in-memory hand-off ≪ loopback IPC < LAN hop).
func DefaultCostModel() CostModel {
	return CostModel{
		LocalDelay:             15 * time.Microsecond,
		LoopbackDelay:          80 * time.Microsecond,
		NetworkDelay:           150 * time.Microsecond,
		BandwidthBps:           1e9,
		SerializeCyclesPerByte: 8,
		ContextSwitchPenalty:   0.06,
	}
}

// Validate checks the model's parameters.
func (m CostModel) Validate() error {
	if m.LocalDelay < 0 || m.LoopbackDelay < 0 || m.NetworkDelay < 0 {
		return fmt.Errorf("transport: negative delay in cost model")
	}
	if m.BandwidthBps <= 0 {
		return fmt.Errorf("transport: non-positive bandwidth")
	}
	if m.SerializeCyclesPerByte < 0 || m.ContextSwitchPenalty < 0 {
		return fmt.Errorf("transport: negative CPU cost parameter")
	}
	return nil
}

// PropagationDelay returns the latency component (excluding NIC
// transmission time and serialization CPU) for a hop.
func (m CostModel) PropagationDelay(kind HopKind) time.Duration {
	switch kind {
	case HopLocal:
		return m.LocalDelay
	case HopInterProcess:
		return m.LoopbackDelay
	default:
		return m.NetworkDelay
	}
}

// TransmissionTime returns the time to push size bytes through the NIC.
func (m CostModel) TransmissionTime(size int) time.Duration {
	sec := float64(size) * 8 / m.BandwidthBps
	return time.Duration(sec * float64(time.Second))
}

// SerializeCycles returns the CPU cycles charged on each side of a
// process-crossing hop for a tuple of the given size.
func (m CostModel) SerializeCycles(size int) float64 {
	return m.SerializeCyclesPerByte * float64(size)
}

// NIC models one node's egress port as a FIFO: transmissions serialize at
// line rate, so concurrent senders on a node queue behind each other.
type NIC struct {
	model    CostModel
	nextFree sim.Time
	sentB    int64
	sentMsgs int64
}

// NewNIC returns an idle NIC using the given cost model.
func NewNIC(model CostModel) *NIC { return &NIC{model: model} }

// Send enqueues a message of size bytes at instant now and returns the
// instant the last bit leaves the wire (propagation delay not included).
func (n *NIC) Send(now sim.Time, size int) sim.Time {
	start := now
	if n.nextFree > start {
		start = n.nextFree
	}
	done := start.Add(n.model.TransmissionTime(size))
	n.nextFree = done
	n.sentB += int64(size)
	n.sentMsgs++
	return done
}

// FreeAt reports when the NIC finishes its current transmissions (now or
// earlier means idle).
func (n *NIC) FreeAt() sim.Time { return n.nextFree }

// BytesSent reports the cumulative bytes transmitted.
func (n *NIC) BytesSent() int64 { return n.sentB }

// MessagesSent reports the cumulative messages transmitted.
func (n *NIC) MessagesSent() int64 { return n.sentMsgs }

// Dispatcher is T-Storm's per-slot message router. Workers register under
// the assignment ID they were started for; inbound messages carry the
// sender's assignment ID and are delivered to the matching generation, so
// old-generation tuples finish on old workers while new-generation tuples
// flow to their replacements.
type Dispatcher struct {
	byAssign map[int64]any
	current  int64
	hasCur   bool
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{byAssign: make(map[int64]any)}
}

// Register binds a worker (opaque to this package) to an assignment ID.
// The most recently registered assignment becomes the current one.
func (d *Dispatcher) Register(assignID int64, worker any) {
	d.byAssign[assignID] = worker
	if !d.hasCur || assignID >= d.current {
		d.current = assignID
		d.hasCur = true
	}
}

// Unregister removes the worker bound to assignID.
func (d *Dispatcher) Unregister(assignID int64) {
	delete(d.byAssign, assignID)
	if d.current == assignID {
		d.hasCur = false
		for id := range d.byAssign {
			if !d.hasCur || id > d.current {
				d.current = id
				d.hasCur = true
			}
		}
	}
}

// Route returns the worker registered for assignID; if none, it falls back
// to the current (newest) worker, mirroring the paper's dispatcher which
// only needs to distinguish generations that actually co-exist.
func (d *Dispatcher) Route(assignID int64) (any, bool) {
	if w, ok := d.byAssign[assignID]; ok {
		return w, true
	}
	if d.hasCur {
		return d.byAssign[d.current], true
	}
	return nil, false
}

// Generations reports how many worker generations co-exist on the slot.
func (d *Dispatcher) Generations() int { return len(d.byAssign) }
