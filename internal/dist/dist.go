package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/coord"
	"tstorm/internal/engine"
	"tstorm/internal/live"
	"tstorm/internal/logx"
	"tstorm/internal/trace"
	"tstorm/internal/tracing"
)

// Config holds the distributed driver's knobs. The cluster is always
// uniform (the paper's testbed shape): Nodes machines × SlotsPerNode
// worker processes, all on loopback.
type Config struct {
	// Nodes, Cores, CoreMHz, SlotsPerNode shape the emulated cluster the
	// scheduler reasons about; one OS process backs each slot.
	Nodes        int
	Cores        int
	CoreMHz      float64
	SlotsPerNode int

	// Worker-engine knobs, shipped to every worker verbatim.
	Seed          uint64
	QueueCapacity int
	AckTimeout    time.Duration
	MaxPending    int

	// MaxHops bounds mid-migration frame forwarding (default 3).
	MaxHops int
	// HeartbeatPeriod is the worker status-push cadence (default 100 ms).
	HeartbeatPeriod time.Duration
	// MonitorPeriod is each worker's load-monitor period; 0 disables
	// worker monitors (tests drive Sample-free flows; the facade sets it).
	MonitorPeriod time.Duration

	// ReadyTimeout bounds fleet bring-up: every worker registered and
	// configured (default 30 s — slow CI boxes fork+exec slowly).
	ReadyTimeout time.Duration
	// DrainTimeout bounds §IV-D quiescence polling before a migration
	// proceeds anyway (default 5 s).
	DrainTimeout time.Duration
	// ApplyTimeout bounds the wait for the worker fleet to confirm an
	// applied assignment (default 10 s).
	ApplyTimeout time.Duration
	// SpoutHaltDelay is the §IV-D smoothing pause after migration before
	// spouts resume (default 250 ms, as in the live engine).
	SpoutHaltDelay time.Duration

	// Process-respawn backoff schedule (defaults 100 ms base, 10 s cap).
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// Trace receives driver-side runtime events (worker lifecycle,
	// publishes, applies). Nil disables tracing.
	Trace *trace.Recorder

	// Log receives the driver's structured operational log (worker spawn
	// failures, respawns). Defaults to stderr at the level named by
	// TSTORM_LOG (info when unset); use logx.Nop() to silence.
	Log *logx.Logger

	// TraceSampling samples 1-in-N tuple trees for end-to-end tracing (a
	// power of two; 0 disables). Workers record spans and ship them with
	// heartbeats; the driver's collector assembles the trees.
	TraceSampling int
}

func (c *Config) fillDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.CoreMHz <= 0 {
		c.CoreMHz = 2000
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxHops <= 0 {
		c.MaxHops = DefaultMaxHops
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 100 * time.Millisecond
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.ApplyTimeout <= 0 {
		c.ApplyTimeout = 10 * time.Second
	}
	if c.SpoutHaltDelay <= 0 {
		c.SpoutHaltDelay = 250 * time.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = DefaultBackoffCap
	}
	if c.Log == nil {
		c.Log = logx.New(os.Stderr, logx.ParseLevel(os.Getenv(EnvLogLevel)))
	}
}

// workerHandle is the driver's record of one slot's worker process across
// its incarnations.
type workerHandle struct {
	slot cluster.SlotID

	mu       sync.Mutex
	cmd      *exec.Cmd
	pid      int
	dataAddr string
	sess     *session
	restarts int

	// Last-known status from heartbeats/RPCs of the current incarnation.
	lastTotals  live.Totals
	lastAudits  []auditEntry
	lastPending int64
	// lastBeat is when the current incarnation last reported status —
	// the liveness signal health rules and /debug/workers age against.
	lastBeat time.Time
}

func (h *workerHandle) setProcess(cmd *exec.Cmd) {
	h.mu.Lock()
	h.cmd = cmd
	h.pid = cmd.Process.Pid
	h.mu.Unlock()
}

func (h *workerHandle) attachSession(s *session, dataAddr string, pid int) {
	h.mu.Lock()
	old := h.sess
	h.sess = s
	h.dataAddr = dataAddr
	if pid != 0 {
		h.pid = pid
	}
	h.mu.Unlock()
	if old != nil {
		old.conn.close()
	}
}

// detachSession clears h.sess if s is still the attached session.
func (h *workerHandle) detachSession(s *session) {
	h.mu.Lock()
	if h.sess == s {
		h.sess = nil
	}
	h.mu.Unlock()
}

func (h *workerHandle) session() *session {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sess
}

func (h *workerHandle) storeStatus(m *msg) {
	h.mu.Lock()
	if m.Totals != nil {
		h.lastTotals = *m.Totals
	}
	h.lastAudits = m.Audits
	h.lastPending = m.Pending
	h.lastBeat = time.Now()
	h.mu.Unlock()
}

// kill SIGKILLs the current incarnation; reports whether a process was
// there to kill.
func (h *workerHandle) kill() bool {
	h.mu.Lock()
	cmd := h.cmd
	h.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return false
	}
	return cmd.Process.Kill() == nil
}

// Engine is the distributed driver: the same scheduling surface as the
// in-process live engine (it implements live.SchedulerTarget, so the
// unchanged Generator and Algorithm 1 drive it), executed by a fleet of
// real worker processes it spawns and supervises.
type Engine struct {
	cfg   Config
	cl    *cluster.Cluster
	store *coord.Store

	ctrlLn   net.Listener
	ctrlAddr string

	mu      sync.Mutex
	names   []string // topology names in submit order
	apps    map[string]*engine.App
	subs    []submission // wire form, submit order; assignments tracked in assign
	assign  map[string]*cluster.Assignment
	handles map[cluster.SlotID]*workerHandle
	order   []cluster.SlotID
	down    map[cluster.NodeID]bool
	round   *applyRound
	// configured flips once Start's fleet-wide config broadcast succeeded;
	// spoutsHalted mirrors the fleet spout state for respawn catch-up.
	configured   bool
	spoutsHalted bool
	// retired accumulates dead incarnations' last-known counters; audits
	// likewise (Acked/Restarts cumulative, Outstanding dropped — a dead
	// worker's in-flight roots are gone, replay re-emits them elsewhere
	// only if the spout survived).
	retired       live.Totals
	retiredAudits map[string]auditEntry

	// applyMu serializes Apply's halt→quiesce→publish→resume sequence.
	applyMu sync.Mutex

	gen                       atomic.Uint32
	migrations, applies       atomic.Int64
	procCrashes, procRestarts atomic.Int64

	histMu  sync.Mutex
	history []RestartRecord

	// collector assembles worker-shipped spans into tuple trees when
	// tracing is on (nil otherwise).
	collector *tracing.Collector

	sinkMu sync.Mutex
	sink   live.LoadSink

	regCh   chan struct{}
	started atomic.Bool
	stopped atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// NewEngine builds a distributed driver. Workers are not spawned until
// Start.
func NewEngine(cfg Config) (*Engine, error) {
	cfg.fillDefaults()
	cl, err := cluster.Uniform(cfg.Nodes, cfg.Cores, cfg.CoreMHz, cfg.SlotsPerNode)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:           cfg,
		cl:            cl,
		store:         coord.NewWallStore(0),
		apps:          make(map[string]*engine.App),
		assign:        make(map[string]*cluster.Assignment),
		handles:       make(map[cluster.SlotID]*workerHandle),
		down:          make(map[cluster.NodeID]bool),
		retiredAudits: make(map[string]auditEntry),
		regCh:         make(chan struct{}, 1),
		stopCh:        make(chan struct{}),
	}
	for _, slot := range cl.Slots() {
		e.handles[slot] = &workerHandle{slot: slot}
		e.order = append(e.order, slot)
	}
	if cfg.TraceSampling != 0 {
		if err := e.SetTraceSampling(cfg.TraceSampling); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// SetTraceSampling sets the 1-in-rate tuple-tree sampling rate (a power of
// two; 0 disables). Must precede Start: the rate ships to workers in the
// config broadcast.
func (e *Engine) SetTraceSampling(rate int) error {
	if e.started.Load() {
		return fmt.Errorf("dist: SetTraceSampling after start")
	}
	if rate == 0 {
		e.cfg.TraceSampling, e.collector = 0, nil
		return nil
	}
	if _, err := tracing.Mask(rate); err != nil {
		return err
	}
	e.cfg.TraceSampling = rate
	if e.collector == nil {
		e.collector = tracing.NewCollector(tracing.Config{})
	}
	return nil
}

// TraceSampling returns the sampling rate (0 = tracing off).
func (e *Engine) TraceSampling() int { return e.cfg.TraceSampling }

// TraceCollector returns the driver's tuple-tree collector — nil when
// tracing is off.
func (e *Engine) TraceCollector() *tracing.Collector { return e.collector }

// ingestSpans feeds one worker's heartbeat span batch into the collector.
func (e *Engine) ingestSpans(spans []tracing.Span) {
	if e.collector != nil && len(spans) > 0 {
		e.collector.Add(spans)
	}
}

// Store exposes the coordination store assignments publish through (the
// ZooKeeper stand-in), for tests and debugging.
func (e *Engine) Store() *coord.Store { return e.store }

// Submit registers one workload (by registry name) with its initial
// assignment. The driver builds it locally too — the scheduler needs the
// topology, and misconfigurations should fail here, not in N workers.
// Must precede Start.
func (e *Engine) Submit(workload string, params any, initial *cluster.Assignment) error {
	if e.started.Load() {
		return fmt.Errorf("dist: submit after start")
	}
	if initial == nil {
		return fmt.Errorf("dist: nil initial assignment")
	}
	raw, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("dist: workload params: %w", err)
	}
	built, err := buildWorkload(workload, raw)
	if err != nil {
		return err
	}
	name := built.App.Topology.Name()
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.apps[name]; dup {
		return fmt.Errorf("dist: topology %q already submitted", name)
	}
	for _, exec := range built.App.Topology.Executors() {
		if _, ok := initial.Slot(exec); !ok {
			return fmt.Errorf("dist: initial assignment misses %s", exec)
		}
	}
	e.names = append(e.names, name)
	e.apps[name] = built.App
	e.assign[name] = initial.Clone()
	e.subs = append(e.subs, submission{Workload: workload, Params: raw})
	return nil
}

// Start brings the fleet up: control listener, one supervised worker
// process per slot, a registration barrier, a fleet-wide config broadcast
// (workers come up with spouts halted), then a fleet-wide resume. On
// return every worker is executing.
func (e *Engine) Start() error {
	if !e.started.CompareAndSwap(false, true) {
		return fmt.Errorf("dist: already started")
	}
	e.mu.Lock()
	nTopo := len(e.names)
	e.mu.Unlock()
	if nTopo == 0 {
		return fmt.Errorf("dist: nothing submitted")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	e.ctrlLn = ln
	e.ctrlAddr = ln.Addr().String()
	e.gen.Store(1)
	e.publishAssignments()
	e.wg.Add(1)
	go e.serveControl()
	for _, slot := range e.order {
		e.wg.Add(1)
		go e.superviseSlot(e.handles[slot])
	}

	deadline := time.Now().Add(e.cfg.ReadyTimeout)
	if err := e.awaitRegistrations(deadline); err != nil {
		e.Stop()
		return err
	}
	// Configure concurrently: each worker builds its topologies and starts
	// its engine halted.
	sessions := e.liveSessions()
	errCh := make(chan error, len(sessions))
	for _, s := range sessions {
		s := s
		go func() { errCh <- e.configureWorker(s) }()
	}
	for range sessions {
		if cfgErr := <-errCh; cfgErr != nil && err == nil {
			err = cfgErr
		}
	}
	if err != nil {
		e.Stop()
		return fmt.Errorf("dist: fleet config failed: %w", err)
	}
	e.mu.Lock()
	e.configured = true
	e.spoutsHalted = false
	e.mu.Unlock()
	for _, s := range e.liveSessions() {
		s.notify(&msg{Type: msgResume})
	}
	e.emitTrace(trace.AssignmentPublished, "", "",
		fmt.Sprintf("fleet up: %d workers, %d topologies", len(sessions), nTopo))
	return nil
}

// awaitRegistrations blocks until every slot has an attached session.
func (e *Engine) awaitRegistrations(deadline time.Time) error {
	for {
		missing := 0
		e.mu.Lock()
		for _, slot := range e.order {
			if e.handles[slot].session() == nil {
				missing++
			}
		}
		e.mu.Unlock()
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: %d of %d workers failed to register within %s",
				missing, len(e.order), e.cfg.ReadyTimeout)
		}
		select {
		case <-e.regCh:
		case <-time.After(20 * time.Millisecond):
		case <-e.stopCh:
			return fmt.Errorf("dist: stopped during bring-up")
		}
	}
}

// publishAssignments writes every topology's current assignment to the
// coord store at the current generation (initial publish; sessions ship
// later generations).
func (e *Engine) publishAssignments() {
	e.mu.Lock()
	defer e.mu.Unlock()
	gen := e.gen.Load()
	for _, name := range e.names {
		rec := assignmentRecord{Gen: gen, Topology: name, Assignment: e.assign[name]}
		data, _ := json.Marshal(rec)
		e.store.SetOrCreate(assignmentPath(name), data)
	}
}

// Stop tears the fleet down: polite stop RPCs, then SIGKILL, then waits
// for supervisors and the control loop to exit. Idempotent.
func (e *Engine) Stop() {
	if !e.stopped.CompareAndSwap(false, true) {
		return
	}
	close(e.stopCh)
	var wg sync.WaitGroup
	for _, s := range e.liveSessions() {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.rpc(&msg{Type: msgStop}, 500*time.Millisecond)
		}()
	}
	wg.Wait()
	for _, slot := range e.order {
		e.handles[slot].kill()
	}
	if e.ctrlLn != nil {
		e.ctrlLn.Close()
	}
	e.wg.Wait()
}

// Done is closed when the engine stops.
func (e *Engine) Done() <-chan struct{} { return e.stopCh }

// --- live.SchedulerTarget ---

// Topologies lists submitted topology names in submit order.
func (e *Engine) Topologies() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.names...)
}

// App returns a submitted workload's locally built app.
func (e *Engine) App(name string) (*engine.App, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	app, ok := e.apps[name]
	return app, ok
}

// Cluster returns the cluster model the fleet realizes.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// CurrentAssignment returns a copy of a topology's live assignment.
func (e *Engine) CurrentAssignment(name string) (*cluster.Assignment, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	a, ok := e.assign[name]
	if !ok {
		return nil, false
	}
	return a.Clone(), true
}

// DownNodes lists nodes taken out by FailNode, sorted.
func (e *Engine) DownNodes() []cluster.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]cluster.NodeID, 0, len(e.down))
	for n := range e.down {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Apply migrates a topology to a new assignment across the process fleet,
// §IV-D end to end: halt every spout, poll workers to quiescence, publish
// the next generation through the coord store (sessions relay it to their
// workers, which move executors and re-route in-flight frames), wait for
// fleet confirmation, smooth, resume. Returns the fleet-wide number of
// executors that moved.
func (e *Engine) Apply(name string, next *cluster.Assignment) (int, error) {
	e.applyMu.Lock()
	defer e.applyMu.Unlock()
	if !e.started.Load() || e.stopped.Load() {
		return 0, fmt.Errorf("dist: engine not running")
	}
	if next == nil {
		return 0, fmt.Errorf("dist: nil assignment")
	}
	e.mu.Lock()
	cur, ok := e.assign[name]
	if !ok {
		e.mu.Unlock()
		return 0, fmt.Errorf("dist: unknown topology %q", name)
	}
	app := e.apps[name]
	for _, exec := range app.Topology.Executors() {
		if _, ok := next.Slot(exec); !ok {
			e.mu.Unlock()
			return 0, fmt.Errorf("dist: assignment misses %s", exec)
		}
	}
	moved := 0
	for exec, slot := range next.Executors {
		if old, ok := cur.Executors[exec]; !ok || old != slot {
			moved++
		}
	}
	e.mu.Unlock()
	if moved == 0 {
		return 0, nil
	}

	// Halt: no new roots fleet-wide while executors move.
	e.setSpoutsHalted(true)
	defer func() {
		time.Sleep(e.cfg.SpoutHaltDelay)
		e.setSpoutsHalted(false)
	}()
	e.quiesce()

	gen := e.gen.Add(1)
	round := newApplyRound(gen, len(e.liveSessions()))
	e.mu.Lock()
	e.round = round
	e.assign[name] = next.Clone()
	rec := assignmentRecord{Gen: gen, Topology: name, Assignment: next}
	e.mu.Unlock()
	data, _ := json.Marshal(rec)
	if _, err := e.store.SetOrCreate(assignmentPath(name), data); err != nil {
		return 0, fmt.Errorf("dist: publish assignment: %w", err)
	}
	e.emitTrace(trace.AssignmentPublished, name, "",
		fmt.Sprintf("gen %d: %d executors move", gen, moved))

	tm := time.NewTimer(e.cfg.ApplyTimeout)
	defer tm.Stop()
	select {
	case <-round.done:
	case <-tm.C:
		e.emitTrace(trace.ReassignApplied, name, "", fmt.Sprintf("gen %d: fleet confirmation timed out", gen))
	case <-e.stopCh:
	}
	e.mu.Lock()
	e.round = nil
	e.mu.Unlock()
	if round.firstErr != nil {
		return moved, fmt.Errorf("dist: apply gen %d: %w", gen, round.firstErr)
	}
	e.migrations.Add(int64(moved))
	e.applies.Add(1)
	e.emitTrace(trace.ReassignApplied, name, "", fmt.Sprintf("gen %d applied: %d moved", gen, moved))
	return moved, nil
}

// setSpoutsHalted broadcasts halt/resume and records the fleet state for
// respawn catch-up.
func (e *Engine) setSpoutsHalted(halted bool) {
	e.mu.Lock()
	e.spoutsHalted = halted
	e.mu.Unlock()
	typ := msgResume
	if halted {
		typ = msgHalt
	}
	for _, s := range e.liveSessions() {
		s.notify(&msg{Type: typ})
	}
	if halted {
		e.emitTrace(trace.SpoutsHalted, "", "", "fleet-wide")
	} else {
		e.emitTrace(trace.SpoutsResumed, "", "", "fleet-wide")
	}
}

// quiesce polls the fleet's in-flight tuple counts until they reach zero
// twice in a row (a frame on the wire is invisible between the sender's
// decrement and the receiver's increment, so one zero reading can lie) or
// the drain timeout passes.
func (e *Engine) quiesce() {
	deadline := time.Now().Add(e.cfg.DrainTimeout)
	zeros := 0
	for time.Now().Before(deadline) {
		var sum int64
		for _, s := range e.liveSessions() {
			if reply, err := s.rpc(&msg{Type: msgPending}, time.Second); err == nil {
				sum += reply.Pending
			}
		}
		if sum == 0 {
			zeros++
			if zeros >= 2 {
				e.emitTrace(trace.QueuesDrained, "", "", "fleet quiescent")
				return
			}
		} else {
			zeros = 0
		}
		time.Sleep(10 * time.Millisecond)
	}
	e.emitTrace(trace.QueuesDrained, "", "", "drain timeout — migrating with frames in flight")
}

// Totals aggregates fleet counters: a fresh snapshot from every live
// worker (fallback: its last heartbeat) plus retired incarnations.
// Migrations and Applies are driver-authoritative (every worker counts
// the same fleet-wide moves, so summing would multiply them), and the
// driver's process-level kills and respawns are added on top of the
// workers' executor-level ones.
func (e *Engine) Totals() live.Totals {
	e.mu.Lock()
	sum := e.retired
	e.mu.Unlock()
	for _, slot := range e.orderedSlots() {
		h := e.handleFor(slot)
		if h == nil {
			continue
		}
		if s := h.session(); s != nil {
			if reply, err := s.rpc(&msg{Type: msgTotals}, time.Second); err == nil {
				h.storeStatus(reply)
			}
		}
		h.mu.Lock()
		sum = addTotals(sum, h.lastTotals)
		h.mu.Unlock()
	}
	sum.Migrations = e.migrations.Load()
	sum.Applies = e.applies.Load()
	sum.WorkerCrashes += e.procCrashes.Load()
	sum.WorkerRestarts += e.procRestarts.Load()
	return sum
}

// CachedTotals aggregates fleet counters from the last heartbeats alone —
// no per-worker RPC, so it is cheap enough for a 1 s sampler and never
// blocks on a sick worker. Staleness is bounded by the heartbeat period.
func (e *Engine) CachedTotals() live.Totals {
	e.mu.Lock()
	sum := e.retired
	e.mu.Unlock()
	for _, slot := range e.orderedSlots() {
		h := e.handleFor(slot)
		if h == nil {
			continue
		}
		h.mu.Lock()
		sum = addTotals(sum, h.lastTotals)
		h.mu.Unlock()
	}
	sum.Migrations = e.migrations.Load()
	sum.Applies = e.applies.Load()
	sum.WorkerCrashes += e.procCrashes.Load()
	sum.WorkerRestarts += e.procRestarts.Load()
	return sum
}

// Audit sums a topology's worker-reported at-least-once gauges (workers
// hosting none of its spouts contribute zeros) plus retired incarnations.
func (e *Engine) Audit(name string) (acked, outstanding, restarts int) {
	e.mu.Lock()
	if a, ok := e.retiredAudits[name]; ok {
		acked, restarts = a.Acked, a.Restarts
	}
	e.mu.Unlock()
	for _, slot := range e.orderedSlots() {
		h := e.handleFor(slot)
		if h == nil {
			continue
		}
		h.mu.Lock()
		for _, a := range h.lastAudits {
			if a.Topology == name {
				acked += a.Acked
				outstanding += a.Outstanding
				restarts += a.Restarts
			}
		}
		h.mu.Unlock()
	}
	return acked, outstanding, restarts
}

// retireWorker folds a dead incarnation's last-known counters into the
// retired accumulators and clears its per-incarnation status.
func (e *Engine) retireWorker(h *workerHandle) {
	h.mu.Lock()
	tot := h.lastTotals
	audits := h.lastAudits
	h.lastTotals = live.Totals{}
	h.lastAudits = nil
	h.lastPending = 0
	h.cmd = nil
	sess := h.sess
	h.restarts++
	h.mu.Unlock()
	if sess != nil {
		sess.conn.close()
	}
	e.mu.Lock()
	e.retired = addTotals(e.retired, tot)
	for _, a := range audits {
		r := e.retiredAudits[a.Topology]
		r.Topology = a.Topology
		r.Acked += a.Acked
		r.Restarts += a.Restarts
		e.retiredAudits[a.Topology] = r
	}
	e.mu.Unlock()
}

func addTotals(a, b live.Totals) live.Totals {
	return live.Totals{
		RootsEmitted:     a.RootsEmitted + b.RootsEmitted,
		TuplesSent:       a.TuplesSent + b.TuplesSent,
		InterNodeSent:    a.InterNodeSent + b.InterNodeSent,
		InterProcessSent: a.InterProcessSent + b.InterProcessSent,
		Processed:        a.Processed + b.Processed,
		SinkProcessed:    a.SinkProcessed + b.SinkProcessed,
		Migrations:       a.Migrations + b.Migrations,
		Applies:          a.Applies + b.Applies,
		Acked:            a.Acked + b.Acked,
		LateAcked:        a.LateAcked + b.LateAcked,
		FailedRoots:      a.FailedRoots + b.FailedRoots,
		Replayed:         a.Replayed + b.Replayed,
		Dropped:          a.Dropped + b.Dropped,
		WorkerCrashes:    a.WorkerCrashes + b.WorkerCrashes,
		WorkerRestarts:   a.WorkerRestarts + b.WorkerRestarts,
		CtlCombined:      a.CtlCombined + b.CtlCombined,
		PoolHits:         a.PoolHits + b.PoolHits,
		PoolMisses:       a.PoolMisses + b.PoolMisses,
		TraceSampled:     a.TraceSampled + b.TraceSampled,
		TraceSpanDropped: a.TraceSpanDropped + b.TraceSpanDropped,
	}
}

// --- failure injection ---

// CrashWorker SIGKILLs the worker process owning a slot — the distributed
// runtime's kill -9 is an actual kill -9. The supervisor respawns it on
// the backoff schedule. Returns 1 if a process was killed.
func (e *Engine) CrashWorker(slot cluster.SlotID) int {
	h := e.handleFor(slot)
	if h == nil || !h.kill() {
		return 0
	}
	e.procCrashes.Add(1)
	e.emitTrace(trace.WorkerKilled, "", slot.String(), "SIGKILL")
	return 1
}

// FailNode kills every worker process on a node and fences the node:
// supervisors idle instead of respawning, and the generator schedules
// around it. Returns how many processes were killed.
func (e *Engine) FailNode(node cluster.NodeID) int {
	e.mu.Lock()
	e.down[node] = true
	e.mu.Unlock()
	n := 0
	for _, slot := range e.orderedSlots() {
		if slot.Node != node {
			continue
		}
		if h := e.handleFor(slot); h != nil && h.kill() {
			n++
			e.procCrashes.Add(1)
		}
	}
	e.emitTrace(trace.NodeFailed, "", string(node), fmt.Sprintf("%d workers killed", n))
	return n
}

// RecoverNode lifts a node's fence; its supervisors respawn workers.
func (e *Engine) RecoverNode(node cluster.NodeID) {
	e.mu.Lock()
	delete(e.down, node)
	e.mu.Unlock()
	e.emitTrace(trace.NodeRecovered, "", string(node), "")
}

func (e *Engine) nodeDown(node cluster.NodeID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.down[node]
}

// --- introspection (telemetry, tests, bench) ---

// WorkerStatus is one slot's process-level state.
type WorkerStatus struct {
	Slot     cluster.SlotID `json:"slot"`
	PID      int            `json:"pid"`
	Alive    bool           `json:"alive"`
	Restarts int            `json:"restarts"`
	DataAddr string         `json:"data_addr"`
	Pending  int64          `json:"pending"`
	// LastBeat is when the current incarnation last reported status
	// (zero before its first heartbeat).
	LastBeat time.Time `json:"last_beat,omitempty"`
}

// Workers snapshots every slot's process state, in slot order.
func (e *Engine) Workers() []WorkerStatus {
	var out []WorkerStatus
	for _, slot := range e.orderedSlots() {
		h := e.handleFor(slot)
		if h == nil {
			continue
		}
		h.mu.Lock()
		out = append(out, WorkerStatus{
			Slot:     h.slot,
			PID:      h.pid,
			Alive:    h.sess != nil,
			Restarts: h.restarts,
			DataAddr: h.dataAddr,
			Pending:  h.lastPending,
			LastBeat: h.lastBeat,
		})
		h.mu.Unlock()
	}
	return out
}

// Placement snapshots the executor→slot mapping across all topologies,
// sorted by executor, mirroring the live engine's Placement for the
// telemetry layer.
func (e *Engine) Placement() []live.PlacementEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []live.PlacementEntry
	for _, name := range e.names {
		for exec, slot := range e.assign[name].Executors {
			out = append(out, live.PlacementEntry{Executor: exec, Slot: slot})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Executor.Less(out[j].Executor) })
	return out
}

// Generation reports the current assignment generation.
func (e *Engine) Generation() uint32 { return e.gen.Load() }

// Restarts reports how many worker-process respawns the supervisors
// performed.
func (e *Engine) Restarts() int { return int(e.procRestarts.Load()) }

// Trace exposes the recorder the engine was configured with (nil if
// tracing is off) so telemetry can serve the driver's decision log.
func (e *Engine) Trace() *trace.Recorder { return e.cfg.Trace }

// SetLoadSink wires the driver-side destination for worker monitor
// windows (the facade passes the loaddb.DB the generator reads).
func (e *Engine) SetLoadSink(sink live.LoadSink) {
	e.sinkMu.Lock()
	e.sink = sink
	e.sinkMu.Unlock()
}

func (e *Engine) loadSink() live.LoadSink {
	e.sinkMu.Lock()
	defer e.sinkMu.Unlock()
	return e.sink
}

// SetMonitorPeriod re-paces every worker's load monitor.
func (e *Engine) SetMonitorPeriod(period time.Duration) {
	if period <= 0 {
		return
	}
	e.mu.Lock()
	e.cfg.MonitorPeriod = period
	e.mu.Unlock()
	for _, s := range e.liveSessions() {
		s.notify(&msg{Type: msgMonitor, PeriodNs: int64(period)})
	}
}

func (e *Engine) orderedSlots() []cluster.SlotID {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]cluster.SlotID(nil), e.order...)
}

func (e *Engine) handleFor(slot cluster.SlotID) *workerHandle {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.handles[slot]
}

func (e *Engine) emitTrace(kind trace.Kind, topo, where, detail string) {
	if e.cfg.Trace == nil {
		return
	}
	e.cfg.Trace.Emit(trace.Event{
		Wall:     time.Now(),
		Kind:     kind,
		Topology: topo,
		Where:    where,
		Detail:   detail,
	})
}

var _ live.SchedulerTarget = (*Engine)(nil)
