package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/coord"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
)

// The Nimbus-style control plane. The driver listens on loopback; every
// worker dials in, registers its slot, and gets a session. Assignments
// are the one piece of cluster state that flows through the coord store
// (the ZooKeeper stand-in): Apply publishes the new assignment under
// /assignments/<topology>, and each live session's persistent watcher
// relays it to its worker over the control connection — Storm's workers
// learning their schedule from ZooKeeper, with the store's watch
// semantics doing the fan-out.

// assignmentRecord is the JSON payload published to the coord store.
type assignmentRecord struct {
	Gen        uint32              `json:"gen"`
	Topology   string              `json:"topology"`
	Assignment *cluster.Assignment `json:"assignment"`
}

func assignmentPath(topo string) string { return "/assignments/" + topo }

// session is the driver's half of one worker's control connection.
type session struct {
	e    *Engine
	h    *workerHandle
	conn *lineConn

	mu      sync.Mutex
	nextID  int64
	calls   map[int64]chan *msg
	lastGen uint32 // newest generation relayed (or shipped in config)

	watches []*coord.Watch
	done    chan struct{}
}

func newSession(e *Engine, h *workerHandle, conn *lineConn) *session {
	return &session{
		e:     e,
		h:     h,
		conn:  conn,
		calls: make(map[int64]chan *msg),
		done:  make(chan struct{}),
	}
}

// rpc sends a request with a correlation ID and waits for the worker's
// reply (or session death, or timeout).
func (s *session) rpc(m *msg, timeout time.Duration) (*msg, error) {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	ch := make(chan *msg, 1)
	s.calls[id] = ch
	s.mu.Unlock()
	m.ID = id
	defer func() {
		s.mu.Lock()
		delete(s.calls, id)
		s.mu.Unlock()
	}()
	if err := s.conn.send(m); err != nil {
		return nil, err
	}
	tm := time.NewTimer(timeout)
	defer tm.Stop()
	select {
	case reply := <-ch:
		if reply.Err != "" {
			return reply, errors.New(reply.Err)
		}
		return reply, nil
	case <-s.done:
		return nil, fmt.Errorf("dist: worker %s session closed", s.h.slot)
	case <-tm.C:
		return nil, fmt.Errorf("dist: worker %s rpc %q timed out", s.h.slot, m.Type)
	}
}

// notify sends a fire-and-forget control message.
func (s *session) notify(m *msg) { s.conn.send(m) }

// readLoop dispatches worker messages until the connection drops.
func (s *session) readLoop() {
	defer s.close()
	for {
		m, err := s.conn.recv()
		if err != nil {
			return
		}
		switch m.Type {
		case msgReply:
			s.mu.Lock()
			ch := s.calls[m.ID]
			s.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		case msgHeartbeat:
			s.h.storeStatus(m)
			s.e.ingestSpans(m.Spans)
		case msgWindow:
			s.e.applyWindow(m)
		case msgForget:
			s.e.forgetTopology(m.Forget)
		default:
			// Unknown worker chatter is ignored: the control plane must
			// survive version skew in either direction.
		}
	}
}

// close tears the session down: watchers cancelled, pending RPCs failed,
// handle detached.
func (s *session) close() {
	s.mu.Lock()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	watches := s.watches
	s.watches = nil
	s.mu.Unlock()
	for _, w := range watches {
		w.Cancel()
	}
	s.conn.close()
	s.h.detachSession(s)
	s.e.sessionGone()
}

// watchAssignments registers this session's persistent coord-store
// watchers, one per topology. Fired events relay the newest published
// record to the worker.
func (s *session) watchAssignments() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return
	default:
	}
	for _, name := range s.e.Topologies() {
		name := name
		w := s.e.store.WatchData(assignmentPath(name), func(coord.Event) {
			s.relayAssignment(name)
		})
		s.watches = append(s.watches, w)
	}
}

// relayAssignment reads the current published record for one topology and,
// if this session has not shipped that generation yet, sends the apply RPC
// to the worker and reports the outcome into the pending apply round.
func (s *session) relayAssignment(name string) {
	data, _, err := s.e.store.Get(assignmentPath(name))
	if err != nil {
		return
	}
	var rec assignmentRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return
	}
	s.mu.Lock()
	if rec.Gen <= s.lastGen {
		s.mu.Unlock()
		return
	}
	s.lastGen = rec.Gen
	s.mu.Unlock()

	reply, err := s.rpc(&msg{
		Type:       msgApply,
		Topology:   rec.Topology,
		Assignment: rec.Assignment,
		Gen:        rec.Gen,
	}, s.e.cfg.ApplyTimeout)
	moved := 0
	if reply != nil {
		moved = reply.Moved
	}
	s.e.reportApply(rec.Gen, s.h.slot, moved, err)
}

// serveControl accepts worker control connections until the listener
// closes.
func (e *Engine) serveControl() {
	defer e.wg.Done()
	for {
		c, err := e.ctrlLn.Accept()
		if err != nil {
			return
		}
		go e.handshake(newLineConn(c))
	}
}

// handshake consumes a connection's register message, attaches a session
// to the slot's handle, and — when the fleet is already configured (this
// is a supervisor respawn) — configures the newcomer immediately.
func (e *Engine) handshake(conn *lineConn) {
	m, err := conn.recv()
	if err != nil || m.Type != msgRegister {
		conn.close()
		return
	}
	e.mu.Lock()
	h, ok := e.handles[m.Slot]
	configured := e.configured
	e.mu.Unlock()
	if !ok || e.stopped.Load() {
		conn.close()
		return
	}
	s := newSession(e, h, conn)
	h.attachSession(s, m.DataAddr, m.PID)
	go s.readLoop()
	if configured {
		go e.configureRespawn(s)
	} else {
		// Initial bring-up: Start's barrier configures the fleet once every
		// slot has registered.
		select {
		case e.regCh <- struct{}{}:
		default:
		}
	}
}

// configureWorker ships the full config to one session and waits for the
// worker's ready reply.
func (e *Engine) configureWorker(s *session) error {
	cfg := e.buildConfigMsg()
	s.mu.Lock()
	s.lastGen = cfg.Gen
	s.mu.Unlock()
	if _, err := s.rpc(cfg, e.cfg.ReadyTimeout); err != nil {
		return err
	}
	s.watchAssignments()
	return nil
}

// configureRespawn brings a respawned worker back into a running fleet:
// full config (current assignments and generation), fresh peer map for
// everyone (its data address changed), and a resume if spouts are live.
func (e *Engine) configureRespawn(s *session) {
	if err := e.configureWorker(s); err != nil {
		e.emitTrace(trace.WorkerCrashed, "", s.h.slot.String(),
			fmt.Sprintf("respawn config failed: %v", err))
		s.conn.close()
		return
	}
	e.broadcastPeers()
	e.mu.Lock()
	resumed := e.configured && !e.spoutsHalted
	e.mu.Unlock()
	if resumed {
		s.notify(&msg{Type: msgResume})
	}
	e.emitTrace(trace.AssignmentPublished, "", s.h.slot.String(), "respawned worker reconfigured")
}

// buildConfigMsg assembles the config message from current engine state.
func (e *Engine) buildConfigMsg() *msg {
	e.mu.Lock()
	defer e.mu.Unlock()
	subs := make([]submission, len(e.subs))
	for i, sub := range e.subs {
		cp := sub
		cp.Assignment = e.assign[e.names[i]].Clone()
		subs[i] = cp
	}
	return &msg{
		Type:  msgConfig,
		Nodes: e.cl.Nodes(),
		Engine: &engineSpec{
			Seed:          e.cfg.Seed,
			QueueCapacity: e.cfg.QueueCapacity,
			AckTimeoutNs:  int64(e.cfg.AckTimeout),
			MaxPending:    e.cfg.MaxPending,
			MaxHops:       e.cfg.MaxHops,
			HeartbeatNs:   int64(e.cfg.HeartbeatPeriod),
			MonitorNs:     int64(e.cfg.MonitorPeriod),
			TraceSampling: e.cfg.TraceSampling,
		},
		Subs:  subs,
		Peers: e.peerEntriesLocked(),
		Gen:   e.gen.Load(),
	}
}

// peerEntriesLocked snapshots the slot→data-address map (registered
// workers only). Callers hold e.mu.
func (e *Engine) peerEntriesLocked() []peerEntry {
	var out []peerEntry
	for _, slot := range e.order {
		h := e.handles[slot]
		h.mu.Lock()
		addr := h.dataAddr
		h.mu.Unlock()
		if addr != "" {
			out = append(out, peerEntry{Slot: slot, Addr: addr})
		}
	}
	return out
}

// broadcastPeers pushes the current peer map to every live session.
func (e *Engine) broadcastPeers() {
	e.mu.Lock()
	entries := e.peerEntriesLocked()
	e.mu.Unlock()
	for _, s := range e.liveSessions() {
		s.notify(&msg{Type: msgPeers, Peers: entries})
	}
}

// applyWindow folds one worker's monitor window into the driver-side load
// sink (the unchanged loaddb.DB the scheduler reads).
func (e *Engine) applyWindow(m *msg) {
	sink := e.loadSink()
	if sink == nil {
		return
	}
	loads := make(map[topology.ExecutorID]float64, len(m.Loads))
	for _, l := range m.Loads {
		loads[l.Exec] = l.MHz
	}
	flows := make(map[loaddb.FlowKey]float64, len(m.Flows))
	for _, f := range m.Flows {
		flows[loaddb.FlowKey{From: f.From, To: f.To}] = f.Rate
	}
	if len(loads) == 0 && len(flows) == 0 {
		return
	}
	sink.ApplyWindow(loads, flows)
	e.emitTrace(trace.MonitorSampled, "", m.Slot.String(),
		fmt.Sprintf("window: %d loads, %d flows", len(loads), len(flows)))
}

func (e *Engine) forgetTopology(name string) {
	if name == "" {
		return
	}
	if sink := e.loadSink(); sink != nil {
		sink.Forget(name)
	}
}

// applyRound tracks one published generation's fan-out: every live worker
// must confirm (or the round times out / loses a worker).
type applyRound struct {
	gen  uint32
	mu   sync.Mutex
	want int
	got  int
	// moved is the fleet-wide executor move count; every worker reports
	// the same fleet-wide number, so the max is the consensus value.
	moved    int
	firstErr error
	done     chan struct{}
}

func newApplyRound(gen uint32, want int) *applyRound {
	r := &applyRound{gen: gen, want: want, done: make(chan struct{})}
	if want <= 0 {
		close(r.done)
	}
	return r
}

func (r *applyRound) report(moved int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.got >= r.want {
		return
	}
	r.got++
	if moved > r.moved {
		r.moved = moved
	}
	if err != nil && r.firstErr == nil {
		r.firstErr = err
	}
	if r.got == r.want {
		close(r.done)
	}
}

// dropOne shrinks the quorum when a worker dies mid-round.
func (r *applyRound) dropOne() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.want <= r.got {
		return
	}
	r.want--
	if r.got == r.want {
		close(r.done)
	}
}

// reportApply feeds a session's relay outcome into the current round.
func (e *Engine) reportApply(gen uint32, slot cluster.SlotID, moved int, err error) {
	e.mu.Lock()
	round := e.round
	e.mu.Unlock()
	if round == nil || round.gen != gen {
		return
	}
	if err != nil {
		e.emitTrace(trace.WorkerCrashed, "", slot.String(), fmt.Sprintf("apply gen %d: %v", gen, err))
	}
	round.report(moved, err)
}

// sessionGone notifies the pending apply round that a worker dropped out.
func (e *Engine) sessionGone() {
	e.mu.Lock()
	round := e.round
	e.mu.Unlock()
	if round != nil {
		round.dropOne()
	}
}

// liveSessions snapshots the attached sessions.
func (e *Engine) liveSessions() []*session {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*session
	for _, slot := range e.order {
		if s := e.handles[slot].session(); s != nil {
			out = append(out, s)
		}
	}
	return out
}
