// Package dist is the distributed execution backend: real worker OS
// processes on loopback TCP behind the same Wire facade as the simulated
// and in-process live engines.
//
// The process model mirrors Storm's. The driver process hosts a
// Nimbus-style control plane: it publishes assignments through an
// internal/coord wall-clock store and exports them to workers over a
// JSON-lines control connection, spawns one worker process per cluster
// slot (re-executing its own binary, as Storm supervisors launch worker
// JVMs), and supervises them — a kill -9 is detected by process exit and
// answered with an exponential-backoff respawn. Each worker runs the
// unchanged internal/live engine restricted to its own slot
// (Config.LocalSlots): executors placed elsewhere are routing proxies, and
// transfers to them leave as binary frames (the live codec) over
// persistent per-peer TCP connections. Serialization emulation is off in
// workers (InterNodeCopies 0, WireCost < 0): crossing a process boundary
// costs real encode + syscall + TCP work, so the traffic-aware scheduler's
// wins are measured, not modeled.
//
// Migration follows §IV-D across process boundaries: the driver halts
// every spout, polls workers until the fleet is quiescent, bumps the
// assignment generation, publishes the new assignment through the coord
// store (worker sessions watch it and relay), and resumes spouts after the
// smoothing delay. Data frames carry the sender's generation and a hop
// budget; a frame that lands on a worker no longer hosting its target is
// forwarded to the current owner, so tuples in flight during the handoff
// are conserved.
//
// Any binary that constructs a dist Engine must call RunWorkerIfChild
// first thing in main (or TestMain): worker processes are this same binary
// re-executed with TSTORM_DIST_* environment variables.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"tstorm/internal/cluster"
	"tstorm/internal/live"
	"tstorm/internal/topology"
	"tstorm/internal/tracing"
)

// Environment variables marking a process as a spawned worker and telling
// it where to report.
const (
	// EnvControl is the driver's control-listener address. Its presence is
	// what makes RunWorkerIfChild take over the process.
	EnvControl = "TSTORM_DIST_CONTROL"
	// EnvSlotNode and EnvSlotPort name the cluster slot this worker owns.
	EnvSlotNode = "TSTORM_DIST_SLOT_NODE"
	EnvSlotPort = "TSTORM_DIST_SLOT_PORT"
	// EnvLogLevel sets the worker's structured-log threshold
	// (debug|info|warn|error|off, default info). The driver propagates
	// its own level here on spawn.
	EnvLogLevel = "TSTORM_LOG"
)

// Control-message types. The control plane is JSON lines: one msg object
// per line, driver→worker requests carrying an ID answered by a "reply"
// with the same ID; worker→driver traffic (register, heartbeat, window) is
// fire-and-forget.
const (
	msgRegister  = "register"  // worker → driver: slot, data addr, pid
	msgConfig    = "config"    // driver → worker: cluster, engine knobs, submissions, peers (RPC)
	msgPeers     = "peers"     // driver → worker: refreshed slot→addr map
	msgHalt      = "halt"      // driver → worker: halt spouts
	msgResume    = "resume"    // driver → worker: resume spouts
	msgApply     = "apply"     // driver → worker: install published assignment (RPC)
	msgPending   = "pending"   // driver → worker: report in-flight tuple count (RPC)
	msgTotals    = "totals"    // driver → worker: report counters + audits (RPC)
	msgMonitor   = "monitor"   // driver → worker: change the monitor period
	msgStop      = "stop"      // driver → worker: exit cleanly
	msgHeartbeat = "heartbeat" // worker → driver: periodic counters + audits
	msgWindow    = "window"    // worker → driver: one monitor sample window
	msgForget    = "forget"    // worker → driver: drop a topology's load rows
	msgReply     = "reply"     // worker → driver: RPC response
)

// msg is the kitchen-sink control-plane message; Type selects which
// fields matter.
type msg struct {
	Type string `json:"type"`
	ID   int64  `json:"id,omitempty"`

	// register
	Slot     cluster.SlotID `json:"slot"`
	DataAddr string         `json:"data_addr,omitempty"`
	PID      int            `json:"pid,omitempty"`

	// config
	Nodes  []cluster.Node `json:"nodes,omitempty"`
	Engine *engineSpec    `json:"engine,omitempty"`
	Subs   []submission   `json:"subs,omitempty"`
	Peers  []peerEntry    `json:"peers,omitempty"`
	Gen    uint32         `json:"gen,omitempty"`

	// apply / monitor
	Topology   string              `json:"topology,omitempty"`
	Assignment *cluster.Assignment `json:"assignment,omitempty"`
	PeriodNs   int64               `json:"period_ns,omitempty"`

	// replies and telemetry pushes
	OK      bool         `json:"ok,omitempty"`
	Err     string       `json:"err,omitempty"`
	Moved   int          `json:"moved,omitempty"`
	Pending int64        `json:"pending,omitempty"`
	Totals  *live.Totals `json:"totals,omitempty"`
	Audits  []auditEntry `json:"audits,omitempty"`
	Loads   []loadEntry  `json:"loads,omitempty"`
	Flows   []flowEntry  `json:"flows,omitempty"`
	Forget  string       `json:"forget,omitempty"`
	// Spans ships sampled tuple-tracing spans drained from the worker's
	// executor rings with each heartbeat; the driver's collector assembles
	// them into tuple trees (internal/tracing).
	Spans []tracing.Span `json:"spans,omitempty"`
}

// engineSpec is the worker-engine configuration the driver ships in the
// config message.
type engineSpec struct {
	Seed          uint64 `json:"seed"`
	QueueCapacity int    `json:"queue_capacity"`
	AckTimeoutNs  int64  `json:"ack_timeout_ns"`
	MaxPending    int    `json:"max_pending"`
	MaxHops       int    `json:"max_hops"`
	HeartbeatNs   int64  `json:"heartbeat_ns"`
	MonitorNs     int64  `json:"monitor_ns"`
	TraceSampling int    `json:"trace_sampling,omitempty"`
}

// submission is one topology the worker must build and submit. Workload
// names resolve through the registry (registry.go) in the worker process,
// so user code never crosses the wire — only its name and parameters.
type submission struct {
	Workload   string              `json:"workload"`
	Params     json.RawMessage     `json:"params,omitempty"`
	Assignment *cluster.Assignment `json:"assignment"`
}

// peerEntry maps one slot to its owner's data-plane address.
type peerEntry struct {
	Slot cluster.SlotID `json:"slot"`
	Addr string         `json:"addr"`
}

// auditEntry carries one topology's at-least-once conservation gauges
// (workloads that register an AuditFn only).
type auditEntry struct {
	Topology    string `json:"topology"`
	Acked       int    `json:"acked"`
	Outstanding int    `json:"outstanding"`
	Restarts    int    `json:"restarts"`
}

// loadEntry and flowEntry are the wire form of one monitor window (maps
// with struct keys do not survive JSON).
type loadEntry struct {
	Exec topology.ExecutorID `json:"exec"`
	MHz  float64             `json:"mhz"`
}

type flowEntry struct {
	From topology.ExecutorID `json:"from"`
	To   topology.ExecutorID `json:"to"`
	Rate float64             `json:"rate"`
}

// maxControlLine bounds one control-plane JSON line (assignments for large
// topologies are the big case).
const maxControlLine = 32 << 20

// lineConn frames JSON messages over a TCP connection, one per line.
// Sends are serialized; receives belong to a single reader goroutine.
type lineConn struct {
	c   net.Conn
	dec *json.Decoder
	wmu sync.Mutex
}

func newLineConn(c net.Conn) *lineConn {
	return &lineConn{c: c, dec: json.NewDecoder(bufio.NewReaderSize(c, 64<<10))}
}

func (l *lineConn) send(m *msg) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	l.wmu.Lock()
	defer l.wmu.Unlock()
	_, err = l.c.Write(data)
	return err
}

func (l *lineConn) recv() (*msg, error) {
	var m msg
	if err := l.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (l *lineConn) close() error { return l.c.Close() }

// slotEnvString renders a slot for the child environment.
func slotEnvString(s cluster.SlotID) (node, port string) {
	return string(s.Node), fmt.Sprintf("%d", s.Port)
}
