package dist

// Internal unit tests for the worker's frame-handling path. These build
// two single-slot live engines by hand (no workloads import — that would
// cycle) and drive handleFrame directly: a traced frame (frameDataT) with
// a stale generation must be counted and still delivered, exactly like a
// plain data frame — the tracing extension does not change §IV-D's
// generation accounting or forwarding.

import (
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/live"
	"tstorm/internal/logx"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// captureSink records every frame an engine ships to remote slots.
type captureSink struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *captureSink) Send(to cluster.SlotID, frame []byte) bool {
	c.mu.Lock()
	c.frames = append(c.frames, append([]byte(nil), frame...))
	c.mu.Unlock()
	return true
}

func (c *captureSink) take() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.frames
	c.frames = nil
	return out
}

type staleTestSpout struct{ emitted int }

func (s *staleTestSpout) Open(*engine.Context) {}
func (s *staleTestSpout) NextTuple(emit engine.SpoutEmitter) {
	if s.emitted >= 64 {
		time.Sleep(time.Millisecond)
		return
	}
	s.emitted++
	emit.EmitWithID("", tuple.Values{"w"}, s.emitted)
}
func (s *staleTestSpout) Ack(any)  {}
func (s *staleTestSpout) Fail(any) {}

type staleTestBolt struct{}

func (staleTestBolt) Prepare(*engine.Context)             {}
func (staleTestBolt) Execute(tuple.Tuple, engine.Emitter) {}

// staleTestApp is a two-component anchored chain: spout "gen" feeding bolt
// "echo", with one acker.
func staleTestApp(t *testing.T) *engine.App {
	t.Helper()
	b := topology.NewBuilder("trace-stale", 2).SetAckers(1)
	b.Spout("gen", 1).Output("", "word")
	b.Bolt("echo", 1).Shuffle("gen")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &engine.App{
		Topology: top,
		Spouts:   map[string]func() engine.Spout{"gen": func() engine.Spout { return &staleTestSpout{} }},
		Bolts:    map[string]func() engine.Bolt{"echo": func() engine.Bolt { return staleTestBolt{} }},
	}
}

func staleTestEngine(t *testing.T, cl *cluster.Cluster, app *engine.App, a *cluster.Assignment, local cluster.SlotID, sink live.RemoteSink) *live.Engine {
	t.Helper()
	eng, err := live.NewEngine(live.Config{
		Seed:            7,
		InterNodeCopies: 0,
		WireCost:        -1,
		LocalSlots:      []cluster.SlotID{local},
		Remote:          sink,
		TraceSampling:   1, // sample everything: every frame to echo is traced
	}, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, a); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Stop)
	return eng
}

func TestStaleGenTracedFrameCountedAndDelivered(t *testing.T) {
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	slots := cl.Slots()
	spoutSlot, boltSlot := slots[0], slots[1]
	a := cluster.NewAssignment(0)
	a.Assign(topology.ExecutorID{Topology: "trace-stale", Component: "gen", Index: 0}, spoutSlot)
	a.Assign(topology.ExecutorID{Topology: "trace-stale", Component: topology.AckerComponent, Index: 0}, spoutSlot)
	a.Assign(topology.ExecutorID{Topology: "trace-stale", Component: "echo", Index: 0}, boltSlot)

	// Sender engine: hosts the spout; every transfer to echo leaves as a
	// traced frame through the capture sink.
	capture := &captureSink{}
	sender := staleTestEngine(t, cl, staleTestApp(t), a, spoutSlot, capture)
	var frames [][]byte
	deadline := time.Now().Add(10 * time.Second)
	for len(frames) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		frames = capture.take()
	}
	if len(frames) == 0 {
		t.Fatal("sender engine produced no remote frames")
	}
	sender.Stop()

	// Receiver worker: hosts the bolt. Its peer set believes the fleet is
	// at generation 5.
	recv := staleTestEngine(t, cl, staleTestApp(t), a, boltSlot, &captureSink{})
	w := &worker{
		slot:    boltSlot,
		baseLog: logx.Nop(),
		peers:   newPeerSet(boltSlot, 3),
		eng:     recv,
	}
	w.logv.Store(w.baseLog)
	w.peers.gen.Store(5)

	before := recv.Totals().Processed
	if err := w.handleFrame(3, 3, frames[0]); err != nil {
		t.Fatalf("stale traced frame rejected: %v", err)
	}
	if got := w.staleFrames.Load(); got != 1 {
		t.Fatalf("staleFrames = %d after one old-generation frame, want 1", got)
	}
	// A current-generation traced frame must not count as stale.
	if len(frames) > 1 {
		if err := w.handleFrame(5, 3, frames[1]); err != nil {
			t.Fatalf("current traced frame rejected: %v", err)
		}
	}
	if got := w.staleFrames.Load(); got != 1 {
		t.Fatalf("staleFrames = %d, want 1 (current-gen frame miscounted)", got)
	}
	// The stale frame was counted, not dropped: the bolt processes it.
	deadline = time.Now().Add(10 * time.Second)
	for recv.Totals().Processed == before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if recv.Totals().Processed == before {
		t.Fatal("stale traced frame was never delivered to the bolt")
	}
}
