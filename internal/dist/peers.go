package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/cluster"
)

// Data-plane wire format: length-prefixed frames over persistent per-peer
// TCP connections. Each frame is
//
//	[u32 length][u32 generation][u8 hops][live binary frame]
//
// with length covering everything after itself (5 + len(frame), big
// endian). The generation is the sender's assignment generation at
// dispatch, so a receiver can tell pre-reassignment traffic from current
// traffic (§IV-D's dispatcher distinguishes tuples emitted under the old
// schedule); hops is the forwarding budget left for frames that land on a
// worker which no longer hosts the target executor mid-migration.
const (
	frameHeaderLen = 4 + 4 + 1
	// maxWireFrame caps one data frame; anything larger is a corrupt or
	// hostile length prefix and the connection is dropped.
	maxWireFrame = 64 << 20
	// DefaultMaxHops is the forwarding budget for frames chasing a migrated
	// executor. Two covers every single reassignment race (sender stale,
	// then forwarder stale); a third absorbs back-to-back generations.
	DefaultMaxHops = 3

	dialTimeout  = 2 * time.Second
	writeTimeout = 10 * time.Second
)

// writeWireFrame appends the header and writes one frame to w.
func writeWireFrame(w io.Writer, gen uint32, hops byte, frame []byte) error {
	if len(frame) > maxWireFrame-5 {
		return fmt.Errorf("dist: frame of %d bytes exceeds wire cap", len(frame))
	}
	buf := make([]byte, frameHeaderLen+len(frame))
	binary.BigEndian.PutUint32(buf[0:4], uint32(5+len(frame)))
	binary.BigEndian.PutUint32(buf[4:8], gen)
	buf[8] = hops
	copy(buf[frameHeaderLen:], frame)
	_, err := w.Write(buf)
	return err
}

// readWireFrame reads one frame off r, enforcing the length cap before
// allocating.
func readWireFrame(r *bufio.Reader) (gen uint32, hops byte, frame []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return 0, 0, nil, err
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length < 5 || length > maxWireFrame {
		return 0, 0, nil, fmt.Errorf("dist: wire frame length %d out of bounds", length)
	}
	if _, err = io.ReadFull(r, hdr[4:]); err != nil {
		return 0, 0, nil, err
	}
	gen = binary.BigEndian.Uint32(hdr[4:8])
	hops = hdr[8]
	frame = make([]byte, length-5)
	if _, err = io.ReadFull(r, frame); err != nil {
		return 0, 0, nil, err
	}
	return gen, hops, frame, nil
}

// peerConn is one lazily dialed, persistent connection to a peer worker's
// data listener. Writes are serialized per connection; a write error drops
// the connection so the next send redials.
type peerConn struct {
	mu   sync.Mutex
	addr string
	c    net.Conn
}

// peerSet implements live.RemoteSink for a worker: it owns the slot→addr
// map published by the driver and the persistent connections to each peer.
// Send is called from executor goroutines (possibly several at once), so
// everything is lock-protected per peer.
type peerSet struct {
	local   cluster.SlotID
	maxHops int

	mu    sync.Mutex
	addrs map[cluster.SlotID]string
	conns map[cluster.SlotID]*peerConn

	// gen is the worker's current assignment generation, stamped on every
	// outgoing frame.
	gen atomic.Uint32

	// undialable counts sends dropped because no route existed or the peer
	// could not be reached (the sender's engine separately counts these in
	// Totals.RemoteDropped via Send's false return).
	undialable atomic.Int64
}

func newPeerSet(local cluster.SlotID, maxHops int) *peerSet {
	if maxHops <= 0 {
		maxHops = DefaultMaxHops
	}
	return &peerSet{
		local:   local,
		maxHops: maxHops,
		addrs:   make(map[cluster.SlotID]string),
		conns:   make(map[cluster.SlotID]*peerConn),
	}
}

// update installs a fresh slot→addr map. A peer whose address changed
// (respawned worker) gets its stale connection closed so the next send
// dials the new process.
func (p *peerSet) update(entries []peerEntry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fresh := make(map[cluster.SlotID]string, len(entries))
	for _, e := range entries {
		fresh[e.Slot] = e.Addr
	}
	for slot, pc := range p.conns {
		if addr, ok := fresh[slot]; !ok || addr != pc.addr {
			pc.mu.Lock()
			if pc.c != nil {
				pc.c.Close()
				pc.c = nil
			}
			pc.mu.Unlock()
			delete(p.conns, slot)
		}
	}
	p.addrs = fresh
}

// Send implements live.RemoteSink: encode-side transfer of one frame to
// the worker owning slot `to`. False means undeliverable — the engine
// counts the drop and at-least-once replay recovers the tuples.
func (p *peerSet) Send(to cluster.SlotID, frame []byte) bool {
	return p.send(to, frame, byte(p.maxHops))
}

// send writes one frame with an explicit hop budget (forwarding decrements
// it). One redial is attempted on a stale connection; after that the frame
// is dropped rather than blocking the executor on a dead peer.
func (p *peerSet) send(to cluster.SlotID, frame []byte, hops byte) bool {
	p.mu.Lock()
	addr, ok := p.addrs[to]
	if !ok {
		p.mu.Unlock()
		p.undialable.Add(1)
		return false
	}
	pc := p.conns[to]
	if pc == nil {
		pc = &peerConn{addr: addr}
		p.conns[to] = pc
	}
	p.mu.Unlock()

	pc.mu.Lock()
	defer pc.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if pc.c == nil {
			c, err := net.DialTimeout("tcp", pc.addr, dialTimeout)
			if err != nil {
				p.undialable.Add(1)
				return false
			}
			pc.c = c
		}
		pc.c.SetWriteDeadline(time.Now().Add(writeTimeout))
		if err := writeWireFrame(pc.c, p.gen.Load(), hops, frame); err != nil {
			pc.c.Close()
			pc.c = nil
			continue
		}
		pc.c.SetWriteDeadline(time.Time{})
		return true
	}
	p.undialable.Add(1)
	return false
}

// closeAll tears down every peer connection (worker shutdown).
func (p *peerSet) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for slot, pc := range p.conns {
		pc.mu.Lock()
		if pc.c != nil {
			pc.c.Close()
			pc.c = nil
		}
		pc.mu.Unlock()
		delete(p.conns, slot)
	}
}
