// Integration tests for the distributed runtime: every test here spawns
// real worker processes (this test binary, re-executed — see TestMain)
// that talk to the driver over loopback TCP. They live in an external
// test package so they can pull in internal/workloads, whose init
// registers the self-fed Word Count with the dist workload registry;
// the dist package itself must not import workloads.
package dist_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/dist"
	"tstorm/internal/live"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
	"tstorm/internal/workloads"
)

// TestMain routes re-executions of this binary into worker mode. Without
// this call first, a spawned worker would run the test suite instead of
// serving its slot.
func TestMain(m *testing.M) {
	dist.RunWorkerIfChild()
	os.Exit(m.Run())
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", timeout, what)
}

// selfFedExecutors enumerates the executor IDs the self-fed Word Count
// topology will have under the given sizing (all fields must be set).
func selfFedExecutors(p workloads.SelfFedParams) []topology.ExecutorID {
	type comp struct {
		name string
		n    int
	}
	comps := []comp{
		{"reader", p.Spouts}, {"split", p.Splitters},
		{"count", p.Counters}, {"mongo", p.Mongos},
	}
	if p.Reliable {
		ackers := p.Ackers
		if ackers <= 0 {
			ackers = 1
		}
		comps = append(comps, comp{topology.AckerComponent, ackers})
	}
	var out []topology.ExecutorID
	for _, c := range comps {
		for i := 0; i < c.n; i++ {
			out = append(out, topology.ExecutorID{
				Topology: "wordcount-live", Component: c.name, Index: i,
			})
		}
	}
	return out
}

// placeByComponent assigns every executor of a component to one slot.
func placeByComponent(t *testing.T, p workloads.SelfFedParams, where map[string]cluster.SlotID) *cluster.Assignment {
	t.Helper()
	a := cluster.NewAssignment(0)
	for _, exec := range selfFedExecutors(p) {
		slot, ok := where[exec.Component]
		if !ok {
			t.Fatalf("no placement for component %q", exec.Component)
		}
		a.Assign(exec, slot)
	}
	return a
}

func slotOn(node string) cluster.SlotID {
	return cluster.SlotID{Node: cluster.NodeID(node), Port: cluster.BasePort}
}

// startFleet builds, submits, and starts a 3-node driver, failing the
// test on any error and wiring cleanup.
func startFleet(t *testing.T, cfg dist.Config, p workloads.SelfFedParams, initial *cluster.Assignment) *dist.Engine {
	t.Helper()
	e, err := dist.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(workloads.SelfFedWorkload, p, initial); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Stop)
	return e
}

// TestDistributedWordCountSmoke is the basic three-process pipeline:
// reader, split, count, and mongo each pinned to a different worker
// process, so every hop but one crosses a process (and node) boundary
// over real TCP. The test asserts tuples actually flow end to end and
// that the fleet-wide counters see the inter-node traffic.
func TestDistributedWordCountSmoke(t *testing.T) {
	p := workloads.SelfFedParams{Spouts: 2, Splitters: 2, Counters: 2, Mongos: 1, Workers: 3}
	initial := placeByComponent(t, p, map[string]cluster.SlotID{
		"reader": slotOn("node01"),
		"split":  slotOn("node02"),
		"count":  slotOn("node03"),
		"mongo":  slotOn("node01"),
	})
	e := startFleet(t, dist.Config{Nodes: 3}, p, initial)

	ws := e.Workers()
	if len(ws) != 3 {
		t.Fatalf("got %d workers, want 3", len(ws))
	}
	self := os.Getpid()
	seen := map[int]bool{}
	for _, w := range ws {
		if !w.Alive {
			t.Fatalf("worker %s not alive after Start", w.Slot)
		}
		if w.PID == 0 || w.PID == self || seen[w.PID] {
			t.Fatalf("worker %s has bogus pid %d (driver pid %d)", w.Slot, w.PID, self)
		}
		seen[w.PID] = true
	}

	waitFor(t, 30*time.Second, "end-to-end flow through 3 processes", func() bool {
		tot := e.Totals()
		return tot.SinkProcessed > 2000 && tot.InterNodeSent > 1000
	})
	tot := e.Totals()
	if f := tot.InterNodeFraction(); f < 0.5 {
		t.Errorf("inter-node fraction = %.3f, want > 0.5 (every hop crosses processes)", f)
	}
	if tot.RootsEmitted == 0 || tot.Processed == 0 {
		t.Errorf("counters not aggregating: %+v", tot)
	}
	if got := len(e.Placement()); got != len(selfFedExecutors(p)) {
		t.Errorf("placement has %d entries, want %d", got, len(selfFedExecutors(p)))
	}
}

// TestDistributedKillWorkerRecovers kills -9 a bolt-hosting worker
// process mid-run and asserts the supervisor respawns it, the fleet
// recovers, and at-least-once delivery loses no lines: the reliable
// readers (pinned to a surviving worker — their replay ledger is
// process-local) replay everything the dead process had in flight, and
// the audit converges to exactly Spouts×Limit distinct acked lines with
// nothing outstanding.
func TestDistributedKillWorkerRecovers(t *testing.T) {
	p := workloads.SelfFedParams{
		Spouts: 1, Splitters: 2, Counters: 2, Mongos: 1, Workers: 3,
		Reliable: true, Ackers: 1, MaxPending: 64, Limit: 1500,
	}
	victim := slotOn("node02")
	initial := placeByComponent(t, p, map[string]cluster.SlotID{
		"reader":                slotOn("node01"),
		topology.AckerComponent: slotOn("node01"),
		"split":                 victim,
		"count":                 slotOn("node03"),
		"mongo":                 slotOn("node03"),
	})
	e := startFleet(t, dist.Config{
		Nodes:       3,
		AckTimeout:  2 * time.Second,
		BackoffBase: 50 * time.Millisecond,
	}, p, initial)

	want := p.Spouts * p.Limit
	waitFor(t, 30*time.Second, "initial progress", func() bool {
		acked, _, _ := e.Audit("wordcount-live")
		return acked > 100
	})

	if n := e.CrashWorker(victim); n != 1 {
		t.Fatalf("CrashWorker(%s) = %d, want 1", victim, n)
	}
	waitFor(t, 30*time.Second, "supervisor respawn", func() bool {
		for _, w := range e.Workers() {
			if w.Slot == victim {
				return w.Alive && w.Restarts >= 1
			}
		}
		return false
	})

	waitFor(t, 60*time.Second, "all lines acked after crash", func() bool {
		acked, outstanding, _ := e.Audit("wordcount-live")
		return acked == want && outstanding == 0
	})
	acked, outstanding, _ := e.Audit("wordcount-live")
	if acked != want || outstanding != 0 {
		t.Fatalf("audit = %d acked / %d outstanding, want exactly %d / 0 (lost or duplicated lines)",
			acked, outstanding, want)
	}
	tot := e.Totals()
	if tot.WorkerCrashes < 1 || tot.WorkerRestarts < 1 {
		t.Errorf("crash/restart counters = %d/%d, want >= 1/1", tot.WorkerCrashes, tot.WorkerRestarts)
	}
	if rec := e.History(); len(rec) == 0 || rec[0].Slot != victim {
		t.Errorf("restart history = %+v, want a record for %s", rec, victim)
	}
}

// TestDistributedMigrationConservation moves executors between worker
// processes mid-run (§IV-D across process boundaries: halt, drain,
// publish through the coord store, fleet confirmation, resume) and
// asserts tuple conservation end to end: every line acked exactly once,
// none lost, none outstanding.
func TestDistributedMigrationConservation(t *testing.T) {
	p := workloads.SelfFedParams{
		Spouts: 1, Splitters: 2, Counters: 2, Mongos: 1, Workers: 3,
		Reliable: true, Ackers: 1, MaxPending: 64, Limit: 2000,
	}
	initial := placeByComponent(t, p, map[string]cluster.SlotID{
		"reader":                slotOn("node01"),
		topology.AckerComponent: slotOn("node01"),
		"split":                 slotOn("node02"),
		"count":                 slotOn("node02"),
		"mongo":                 slotOn("node03"),
	})
	e := startFleet(t, dist.Config{Nodes: 3, AckTimeout: 2 * time.Second}, p, initial)

	waitFor(t, 30*time.Second, "pre-migration progress", func() bool {
		acked, _, _ := e.Audit("wordcount-live")
		return acked > 200
	})

	// Move both count executors from node02's process to node03's.
	cur, ok := e.CurrentAssignment("wordcount-live")
	if !ok {
		t.Fatal("assignment missing")
	}
	next := cur.Clone()
	movedExecs := 0
	for exec, slot := range next.Executors {
		if exec.Component == "count" && slot == slotOn("node02") {
			next.Assign(exec, slotOn("node03"))
			movedExecs++
		}
	}
	if movedExecs != p.Counters {
		t.Fatalf("found %d count executors on node02, want %d", movedExecs, p.Counters)
	}
	moved, err := e.Apply("wordcount-live", next)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if moved != movedExecs {
		t.Fatalf("Apply moved %d executors, want %d", moved, movedExecs)
	}
	if g := e.Generation(); g != 2 {
		t.Errorf("generation = %d after one apply, want 2", g)
	}
	for _, pe := range e.Placement() {
		if pe.Executor.Component == "count" && pe.Slot != slotOn("node03") {
			t.Errorf("executor %s still on %s after migration", pe.Executor, pe.Slot)
		}
	}

	want := p.Spouts * p.Limit
	waitFor(t, 60*time.Second, "all lines acked across migration", func() bool {
		acked, outstanding, _ := e.Audit("wordcount-live")
		return acked == want && outstanding == 0
	})
	acked, outstanding, _ := e.Audit("wordcount-live")
	if acked != want || outstanding != 0 {
		t.Fatalf("audit = %d acked / %d outstanding, want exactly %d / 0 across the migration",
			acked, outstanding, want)
	}
	tot := e.Totals()
	if tot.Migrations != int64(movedExecs) || tot.Applies != 1 {
		t.Errorf("migrations/applies = %d/%d, want %d/1", tot.Migrations, tot.Applies, movedExecs)
	}
}

// TestDistributedRescheduleCutsInterNodeTraffic closes the tentpole
// loop: worker-side monitors ship real traffic windows over the control
// plane into the driver's load database, and the unchanged T-Storm
// generator (Algorithm 1) reschedules the fleet — cutting the measured
// inter-node (here: inter-process TCP) traffic of a deliberately bad
// placement.
func TestDistributedRescheduleCutsInterNodeTraffic(t *testing.T) {
	p := workloads.SelfFedParams{Spouts: 1, Splitters: 1, Counters: 1, Mongos: 1, Workers: 3}
	// Worst case: every hop in the chain crosses a process.
	initial := placeByComponent(t, p, map[string]cluster.SlotID{
		"reader": slotOn("node01"),
		"split":  slotOn("node02"),
		"count":  slotOn("node03"),
		"mongo":  slotOn("node01"),
	})
	e := startFleet(t, dist.Config{Nodes: 3, MonitorPeriod: 50 * time.Millisecond}, p, initial)

	db := loaddb.New(0.5)
	e.SetLoadSink(db)
	gen, err := live.StartGenerator(e, db, live.GeneratorConfig{
		Period:               time.Hour, // manual Reschedule only
		CapacityFraction:     0.9,
		ImprovementThreshold: 0.10,
	}, core.NewTrafficAware(1.0))
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Stop()

	waitFor(t, 30*time.Second, "measured traffic in the load db", func() bool {
		return db.HasData() && e.Totals().SinkProcessed > 2000
	})
	// Let the EWMA settle over a few windows so Algorithm 1 sees the real
	// flow ordering.
	time.Sleep(500 * time.Millisecond)
	before := e.Totals()
	if f := before.InterNodeFraction(); f < 0.5 {
		t.Fatalf("initial inter-node fraction = %.3f, want > 0.5 (bad placement)", f)
	}

	if !gen.Reschedule() {
		t.Fatal("forced reschedule applied nothing")
	}
	afterApply := e.Totals()
	waitFor(t, 30*time.Second, "post-migration traffic", func() bool {
		return e.Totals().SinkProcessed-afterApply.SinkProcessed > 2000
	})
	phase2 := e.Totals().Sub(afterApply)
	preF := before.InterNodeFraction()
	postF := phase2.InterNodeFraction()
	if postF >= preF {
		t.Errorf("reschedule did not cut inter-node traffic: %.3f -> %.3f", preF, postF)
	}
	t.Logf("inter-node fraction: %.3f before, %.3f after reschedule (gen %d)",
		preF, postF, e.Generation())
}

// TestDistributedBackoffIsExponential crashes one worker repeatedly and
// asserts the supervisor's respawn schedule actually doubles: each
// History record's imposed backoff must match Backoff(attempt-1), and
// the observed waits must be at least that long.
func TestDistributedBackoffIsExponential(t *testing.T) {
	p := workloads.SelfFedParams{Spouts: 1, Splitters: 1, Counters: 1, Mongos: 1, Workers: 1}
	all := slotOn("node01")
	victim := slotOn("node02")
	initial := placeByComponent(t, p, map[string]cluster.SlotID{
		"reader": all, "split": all, "count": all, "mongo": victim,
	})
	base := 80 * time.Millisecond
	e := startFleet(t, dist.Config{Nodes: 2, BackoffBase: base, BackoffCap: 2 * time.Second}, p, initial)

	const crashes = 3
	for i := 0; i < crashes; i++ {
		waitFor(t, 30*time.Second, fmt.Sprintf("victim alive before crash %d", i+1), func() bool {
			for _, w := range e.Workers() {
				if w.Slot == victim {
					return w.Alive && w.Restarts == i
				}
			}
			return false
		})
		if n := e.CrashWorker(victim); n != 1 {
			t.Fatalf("crash %d: CrashWorker = %d, want 1", i+1, n)
		}
		waitFor(t, 30*time.Second, fmt.Sprintf("respawn %d", i+1), func() bool {
			return len(e.History()) >= i+1
		})
	}

	hist := e.History()
	if len(hist) < crashes {
		t.Fatalf("history has %d records, want >= %d", len(hist), crashes)
	}
	for i, rec := range hist[:crashes] {
		wantBackoff := base << uint(i)
		if rec.Slot != victim {
			t.Errorf("record %d: slot %s, want %s", i, rec.Slot, victim)
		}
		if rec.Attempt != i+1 {
			t.Errorf("record %d: attempt %d, want %d", i, rec.Attempt, i+1)
		}
		if rec.Backoff != wantBackoff {
			t.Errorf("record %d: imposed backoff %s, want %s (exponential from %s)",
				i, rec.Backoff, wantBackoff, base)
		}
		if rec.Waited < rec.Backoff {
			t.Errorf("record %d: waited %s < imposed backoff %s", i, rec.Waited, rec.Backoff)
		}
		if rec.Backoff != e.Backoff(i) {
			t.Errorf("record %d: Backoff(%d) = %s disagrees with record %s", i, i, e.Backoff(i), rec.Backoff)
		}
	}
}
