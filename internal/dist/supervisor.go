package dist

import (
	"fmt"
	"os"
	"os/exec"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/trace"
)

// Process supervision: one goroutine per slot spawns the worker process
// (this same binary, re-executed), waits on it, and respawns it with
// exponential backoff when it dies — Storm's supervisor daemon, with
// kill -9 as the failure it exists to absorb. A slot on a failed node
// idles until RecoverNode.

// RestartRecord documents one worker-process respawn: 1-based attempt
// number, the backoff the schedule imposed, and the crash→respawn wait
// actually observed (≥ Backoff). The chaos tests assert the schedule is
// genuinely exponential from these, exactly as they do for the in-process
// supervisor's executor restarts.
type RestartRecord struct {
	Slot    cluster.SlotID
	Attempt int
	Backoff time.Duration
	Waited  time.Duration
	At      time.Time
}

// Default process-restart pacing (same shape as live.Supervisor).
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffCap  = 10 * time.Second

	// nodeDownScanPeriod is how often an idled supervisor re-checks
	// whether its failed node recovered.
	nodeDownScanPeriod = 50 * time.Millisecond
)

// Backoff exposes the restart schedule: the wait imposed before respawn
// attempt n (0-based), doubling from the base up to the cap.
func (e *Engine) Backoff(n int) time.Duration {
	d := e.cfg.BackoffBase
	for i := 0; i < n && d < e.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > e.cfg.BackoffCap {
		d = e.cfg.BackoffCap
	}
	return d
}

// History returns a copy of the process-restart log in respawn order.
func (e *Engine) History() []RestartRecord {
	e.histMu.Lock()
	defer e.histMu.Unlock()
	return append([]RestartRecord(nil), e.history...)
}

// superviseSlot is the per-slot supervision loop.
func (e *Engine) superviseSlot(h *workerHandle) {
	defer e.wg.Done()
	wlog := e.cfg.Log.With("worker", h.slot.String())
	crashes := 0
	var lastCrash time.Time
	for {
		if e.stopped.Load() {
			return
		}
		if e.nodeDown(h.slot.Node) {
			select {
			case <-e.stopCh:
				return
			case <-time.After(nodeDownScanPeriod):
			}
			continue
		}
		var backoff time.Duration
		if crashes > 0 {
			backoff = e.Backoff(crashes - 1)
			if wait := backoff - time.Since(lastCrash); wait > 0 {
				select {
				case <-e.stopCh:
					return
				case <-time.After(wait):
				}
			}
			// A node failure during the backoff re-enters the idle loop.
			if e.nodeDown(h.slot.Node) || e.stopped.Load() {
				continue
			}
		}
		cmd, err := e.spawnWorker(h)
		if err != nil {
			// Spawn failures (fd exhaustion and friends) retry on the same
			// backoff schedule as crashes.
			e.emitTrace(trace.WorkerCrashed, "", h.slot.String(), fmt.Sprintf("spawn failed: %v", err))
			wlog.Errorf("spawn failed: %v", err)
			lastCrash = time.Now()
			crashes++
			continue
		}
		h.setProcess(cmd)
		if crashes > 0 {
			e.procRestarts.Add(1)
			rec := RestartRecord{
				Slot:    h.slot,
				Attempt: crashes,
				Backoff: backoff,
				Waited:  time.Since(lastCrash),
				At:      time.Now(),
			}
			e.histMu.Lock()
			e.history = append(e.history, rec)
			e.histMu.Unlock()
			e.emitTrace(trace.WorkerRestarted, "", h.slot.String(),
				fmt.Sprintf("worker respawned pid %d (attempt %d, waited %s)", cmd.Process.Pid, crashes, rec.Waited.Round(time.Millisecond)))
			wlog.Infof("respawned pid=%d attempt=%d waited=%s", cmd.Process.Pid, crashes, rec.Waited.Round(time.Millisecond))
		} else {
			e.emitTrace(trace.WorkerStarted, "", h.slot.String(), fmt.Sprintf("worker pid %d", cmd.Process.Pid))
		}
		cmd.Wait()
		lastCrash = time.Now()
		crashes++
		e.retireWorker(h)
		if e.stopped.Load() {
			return
		}
		e.emitTrace(trace.WorkerCrashed, "", h.slot.String(),
			fmt.Sprintf("worker process exited; respawn in %s", e.Backoff(crashes-1)))
		wlog.Warnf("worker process exited; respawn in %s", e.Backoff(crashes-1))
	}
}

// spawnWorker launches one worker process for h's slot: this binary,
// re-executed with the dist environment set.
func (e *Engine) spawnWorker(h *workerHandle) (*exec.Cmd, error) {
	exe := os.Args[0]
	cmd := exec.Command(exe)
	node, port := slotEnvString(h.slot)
	cmd.Env = append(os.Environ(),
		EnvControl+"="+e.ctrlAddr,
		EnvSlotNode+"="+node,
		EnvSlotPort+"="+port,
	)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return cmd, nil
}
