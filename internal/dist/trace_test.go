// Trace-under-migration stress: sampled roots in flight across a §IV-D
// cross-process migration must still produce complete tuple trees at the
// driver's collector — spans recorded in different worker processes,
// before and after the move, shipped up on heartbeats and stitched
// together — with no orphan spans and critical-path shares that sum to
// the tree's completion latency.
package dist_test

import (
	"math"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/dist"
	"tstorm/internal/topology"
	"tstorm/internal/tracing"
	"tstorm/internal/workloads"
)

func TestDistributedTraceUnderMigration(t *testing.T) {
	p := workloads.SelfFedParams{
		Spouts: 1, Splitters: 2, Counters: 2, Mongos: 1, Workers: 3,
		Reliable: true, Ackers: 1, MaxPending: 64, Limit: 2000,
	}
	initial := placeByComponent(t, p, map[string]cluster.SlotID{
		"reader":                slotOn("node01"),
		topology.AckerComponent: slotOn("node01"),
		"split":                 slotOn("node02"),
		"count":                 slotOn("node02"),
		"mongo":                 slotOn("node03"),
	})
	e := startFleet(t, dist.Config{
		Nodes:      3,
		AckTimeout: 2 * time.Second,
		// ~60 sampled trees out of 2000 roots. Each sampled line fans out
		// into ~20 spans (split + per-word count + mongo), so the fast
		// heartbeat keeps the 256-slot executor rings from overflowing.
		TraceSampling:   32,
		HeartbeatPeriod: 25 * time.Millisecond,
	}, p, initial)

	tc := e.TraceCollector()
	if tc == nil {
		t.Fatal("TraceCollector is nil with sampling configured")
	}

	waitFor(t, 30*time.Second, "pre-migration progress", func() bool {
		acked, _, _ := e.Audit("wordcount-live")
		return acked > 200
	})

	// Migrate both count executors across processes while sampled roots
	// are in flight.
	cur, ok := e.CurrentAssignment("wordcount-live")
	if !ok {
		t.Fatal("assignment missing")
	}
	next := cur.Clone()
	for exec, slot := range next.Executors {
		if exec.Component == "count" && slot == slotOn("node02") {
			next.Assign(exec, slotOn("node03"))
		}
	}
	if _, err := e.Apply("wordcount-live", next); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	want := p.Spouts * p.Limit
	waitFor(t, 60*time.Second, "all lines acked across migration", func() bool {
		acked, outstanding, _ := e.Audit("wordcount-live")
		return acked == want && outstanding == 0
	})

	// Sampled roots were registered fleet-wide and their spans reached the
	// driver: wait for trees to settle (heartbeat ship + collector settle
	// delay) and assemble.
	tot := e.Totals()
	if tot.TraceSampled == 0 {
		t.Fatal("no roots sampled at rate 8 across the whole run")
	}
	if tot.TraceSpanDropped != 0 {
		t.Errorf("%d spans dropped to full rings (trees may be incomplete)", tot.TraceSpanDropped)
	}
	waitFor(t, 15*time.Second, "assembled tuple trees", func() bool {
		return tc.Stats().Completed >= 10
	})

	st := tc.Stats()
	if st.Evicted != 0 || st.OrphanSpans != 0 {
		t.Errorf("collector evicted %d trees with %d orphan spans; want none", st.Evicted, st.OrphanSpans)
	}

	trees := tc.Trees(64)
	if len(trees) == 0 {
		t.Fatal("no completed trees retained")
	}
	sawInterNode := false
	for _, tr := range trees {
		if len(tr.Path) == 0 || len(tr.Spans) < 3 {
			t.Fatalf("tree %x incomplete: %d path steps, %d spans", tr.Root, len(tr.Path), len(tr.Spans))
		}
		var sum float64
		for _, v := range tr.Shares {
			sum += v
		}
		// Acceptance bar: boundary-class shares decompose the completion
		// latency within 1%.
		if tr.CompletionMs <= 0 || math.Abs(sum-tr.CompletionMs) > 0.01*tr.CompletionMs {
			t.Errorf("tree %x: shares sum %.4fms vs completion %.4fms (off by >1%%)",
				tr.Root, sum, tr.CompletionMs)
		}
		for _, step := range tr.Path {
			switch step.Boundary {
			case tracing.BoundaryLocal, tracing.BoundaryInterSlot,
				tracing.BoundaryInterProcess, tracing.BoundaryInterNode, "":
			default:
				t.Errorf("tree %x: unknown boundary class %q", tr.Root, step.Boundary)
			}
			if step.Boundary == tracing.BoundaryInterNode {
				sawInterNode = true
			}
		}
	}
	// Every hop in this placement crosses processes on different emulated
	// nodes, so real TCP hops must show up on critical paths.
	if !sawInterNode {
		t.Error("no inter-node step on any critical path despite cross-process placement")
	}
	shares := tracing.ShareByClassOf(trees)
	var frac float64
	for _, v := range shares {
		frac += v
	}
	if math.Abs(frac-1) > 1e-6 {
		t.Errorf("ShareByClassOf fractions sum to %.6f, want 1", frac)
	}
	t.Logf("%d trees assembled; share by class: %v", len(trees), shares)
}
