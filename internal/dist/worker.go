package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/live"
	"tstorm/internal/loaddb"
	"tstorm/internal/logx"
	"tstorm/internal/topology"
)

// RunWorkerIfChild turns the current process into a distributed worker if
// it was spawned by a dist driver (detected by TSTORM_DIST_CONTROL in the
// environment) and never returns in that case. Call it first thing in
// main() — and in TestMain for any test binary that constructs a dist
// Engine — since workers are this same binary re-executed.
func RunWorkerIfChild() {
	addr := os.Getenv(EnvControl)
	if addr == "" {
		return
	}
	os.Exit(workerMain(addr))
}

// worker is the state of one spawned worker process: a live engine
// restricted to its slot, peers for the data plane, and the control
// connection back to the driver.
type worker struct {
	slot cluster.SlotID
	ctrl *lineConn
	// baseLog carries the worker= field; logv holds the current logger
	// (baseLog plus a gen= field once a generation is known) — an atomic
	// pointer because the data-plane, control, and heartbeat goroutines
	// all log.
	baseLog *logx.Logger
	logv    atomic.Pointer[logx.Logger]

	dataLn net.Listener
	peers  *peerSet

	eng    *live.Engine
	mon    *live.Monitor
	audits map[string]AuditFn
	spec   engineSpec

	// staleFrames counts data frames that arrived stamped with an older
	// assignment generation than ours — §IV-D traffic emitted under the
	// previous schedule, conserved by forwarding.
	staleFrames atomic.Int64
	// forwarded counts frames re-sent to the current owner of a migrated
	// executor; forwardDrops counts the ones whose hop budget ran out.
	forwarded    atomic.Int64
	forwardDrops atomic.Int64
}

func workerMain(ctrlAddr string) int {
	base := logx.New(os.Stderr, logx.ParseLevel(os.Getenv(EnvLogLevel)))
	port, err := strconv.Atoi(os.Getenv(EnvSlotPort))
	if err != nil {
		base.Errorf("bad %s: %v", EnvSlotPort, err)
		return 2
	}
	slot := cluster.SlotID{Node: cluster.NodeID(os.Getenv(EnvSlotNode)), Port: port}
	w := &worker{
		slot:    slot,
		baseLog: base.With("worker", slot.String()),
		audits:  make(map[string]AuditFn),
	}
	w.logv.Store(w.baseLog)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		w.log().Errorf("data listen: %v", err)
		return 2
	}
	defer ln.Close()
	w.dataLn = ln

	// The driver just spawned us, so its listener is up; retry briefly to
	// ride out scheduler hiccups, then give up and let the supervisor
	// respawn us with backoff.
	var ctrl net.Conn
	for attempt := 0; ; attempt++ {
		ctrl, err = net.DialTimeout("tcp", ctrlAddr, dialTimeout)
		if err == nil {
			break
		}
		if attempt >= 9 {
			w.log().Errorf("control dial %s: %v", ctrlAddr, err)
			return 2
		}
		time.Sleep(100 * time.Millisecond)
	}
	w.ctrl = newLineConn(ctrl)
	defer w.ctrl.close()

	if err := w.ctrl.send(&msg{
		Type:     msgRegister,
		Slot:     slot,
		DataAddr: ln.Addr().String(),
		PID:      os.Getpid(),
	}); err != nil {
		w.log().Errorf("register: %v", err)
		return 2
	}

	code := w.controlLoop()
	w.shutdown()
	return code
}

// log returns the current structured logger (worker and generation
// fields bound).
func (w *worker) log() *logx.Logger { return w.logv.Load() }

// setGen rebinds the logger's gen= field when the assignment generation
// advances, so every subsequent line attributes itself to the schedule
// it ran under.
func (w *worker) setGen(gen uint32) {
	w.logv.Store(w.baseLog.With("gen", strconv.FormatUint(uint64(gen), 10)))
}

// controlLoop processes driver messages serially until stop or the
// control connection drops (driver exit — workers never outlive it).
func (w *worker) controlLoop() int {
	for {
		m, err := w.ctrl.recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				w.log().Warnf("control connection lost: %v", err)
			}
			return 0
		}
		switch m.Type {
		case msgConfig:
			err := w.configure(m)
			reply := &msg{Type: msgReply, ID: m.ID, OK: err == nil}
			if err != nil {
				reply.Err = err.Error()
				w.log().Errorf("configure: %v", err)
			}
			w.ctrl.send(reply)
		case msgPeers:
			w.peersUpdate(m)
		case msgHalt:
			if w.eng != nil {
				w.eng.HaltSpouts()
			}
		case msgResume:
			if w.eng != nil {
				w.eng.ResumeSpouts()
			}
		case msgApply:
			reply := &msg{Type: msgReply, ID: m.ID}
			if w.eng == nil {
				reply.Err = "apply before config"
			} else if m.Assignment == nil {
				reply.Err = "apply without assignment"
			} else {
				moved, err := w.eng.ApplyAssignment(m.Topology, m.Assignment)
				reply.Moved = moved
				reply.OK = err == nil
				if err != nil {
					reply.Err = err.Error()
				}
				// Stamp subsequent sends with the new generation only after
				// the new routing table is in place.
				w.peers.gen.Store(m.Gen)
				w.setGen(m.Gen)
			}
			w.ctrl.send(reply)
		case msgPending:
			var p int64
			if w.eng != nil {
				p = w.eng.Pending()
			}
			w.ctrl.send(&msg{Type: msgReply, ID: m.ID, OK: true, Pending: p})
		case msgTotals:
			w.ctrl.send(w.statusMsg(msgReply, m.ID))
		case msgMonitor:
			// Start a monitor lazily if the worker was configured without
			// one (the facade turns monitoring on after the fleet is up).
			if w.eng != nil && m.PeriodNs > 0 {
				if w.mon != nil {
					w.mon.Stop()
				}
				w.mon = live.StartMonitor(w.eng, upstreamSink{w}, time.Duration(m.PeriodNs))
			}
		case msgStop:
			w.ctrl.send(&msg{Type: msgReply, ID: m.ID, OK: true})
			return 0
		default:
			w.log().Warnf("unknown control message %q", m.Type)
		}
	}
}

// configure builds the cluster and every submitted topology, starts the
// engine (spouts halted — the driver resumes the fleet once every worker
// is ready), and begins serving the data plane.
func (w *worker) configure(m *msg) error {
	if w.eng != nil {
		return fmt.Errorf("already configured")
	}
	if m.Engine == nil {
		return fmt.Errorf("config without engine spec")
	}
	cl, err := cluster.New(m.Nodes)
	if err != nil {
		return err
	}
	w.spec = *m.Engine
	w.peers = newPeerSet(w.slot, w.spec.MaxHops)
	w.peersUpdate(m)

	eng, err := live.NewEngine(live.Config{
		Seed:          w.spec.Seed,
		QueueCapacity: w.spec.QueueCapacity,
		AckTimeout:    time.Duration(w.spec.AckTimeoutNs),
		MaxPending:    w.spec.MaxPending,
		// Emulation off: a process hop costs real codec + TCP work, and
		// a same-process hop costs a channel send — measured, not modeled.
		InterNodeCopies: 0,
		WireCost:        -1,
		LocalSlots:      []cluster.SlotID{w.slot},
		Remote:          w.peers,
		// LocalSlots is set, so the engine records spans but creates no
		// collector: this worker exports them to the driver (heartbeatLoop).
		TraceSampling: w.spec.TraceSampling,
	}, cl)
	if err != nil {
		return err
	}
	for _, sub := range m.Subs {
		built, err := buildWorkload(sub.Workload, sub.Params)
		if err != nil {
			return err
		}
		if err := eng.Submit(built.App, sub.Assignment); err != nil {
			return err
		}
		w.audits[built.App.Topology.Name()] = built.Audit
	}
	// Start halted: no roots flow until the driver has the whole fleet
	// registered and broadcasts resume.
	eng.HaltSpouts()
	if err := eng.Start(); err != nil {
		return err
	}
	w.eng = eng
	if w.spec.MonitorNs > 0 {
		w.mon = live.StartMonitor(eng, upstreamSink{w}, time.Duration(w.spec.MonitorNs))
	}
	go w.serveData()
	go w.heartbeatLoop()
	return nil
}

func (w *worker) peersUpdate(m *msg) {
	if w.peers == nil {
		return
	}
	w.peers.update(m.Peers)
	if m.Gen != 0 {
		w.peers.gen.Store(m.Gen)
		w.setGen(m.Gen)
	}
}

// statusMsg assembles a totals/heartbeat message.
func (w *worker) statusMsg(typ string, id int64) *msg {
	out := &msg{Type: typ, ID: id, OK: true, Slot: w.slot}
	if w.eng == nil {
		return out
	}
	t := w.eng.Totals()
	out.Totals = &t
	out.Pending = w.eng.Pending()
	names := make([]string, 0, len(w.audits))
	for name, fn := range w.audits {
		if fn != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		acked, outstanding, restarts := w.audits[name]()
		out.Audits = append(out.Audits, auditEntry{
			Topology: name, Acked: acked, Outstanding: outstanding, Restarts: restarts,
		})
	}
	return out
}

func (w *worker) heartbeatLoop() {
	period := time.Duration(w.spec.HeartbeatNs)
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	tk := time.NewTicker(period)
	defer tk.Stop()
	for {
		select {
		case <-w.eng.Done():
			return
		case <-tk.C:
			hb := w.statusMsg(msgHeartbeat, 0)
			// Drain span rings here and only here: heartbeatLoop is the span
			// rings' single consumer (statusMsg itself must stay drain-free —
			// the totals RPC runs it on the control goroutine).
			hb.Spans = w.eng.DrainSpans()
			if err := w.ctrl.send(hb); err != nil {
				return
			}
		}
	}
}

// serveData accepts peer connections on the data listener.
func (w *worker) serveData() {
	for {
		c, err := w.dataLn.Accept()
		if err != nil {
			return
		}
		go w.handleData(c)
	}
}

// handleData drains frames off one peer connection into the engine. A
// frame whose target migrated away is forwarded to the current owner
// while its hop budget lasts; a frame that fails to decode closes the
// connection — malformed input from a peer is a protocol breach, and the
// peer's redial starts a clean stream.
func (w *worker) handleData(c net.Conn) {
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	for {
		gen, hops, frame, err := readWireFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				w.log().Warnf("data connection from %s dropped: %v", c.RemoteAddr(), err)
			}
			return
		}
		if err := w.handleFrame(gen, hops, frame); err != nil {
			w.log().Errorf("malformed frame from %s: %v — closing connection", c.RemoteAddr(), err)
			return
		}
	}
}

// handleFrame processes one decoded wire frame: stale-generation
// accounting, ingest, and mid-migration forwarding. A non-nil error means
// the frame was malformed and the connection should drop.
func (w *worker) handleFrame(gen uint32, hops byte, frame []byte) error {
	if cur := w.peers.gen.Load(); gen < cur {
		w.staleFrames.Add(1)
	}
	if err := w.eng.Ingest(frame); err != nil {
		var nl *live.NotLocalError
		if errors.As(err, &nl) {
			// Mid-migration race: we no longer (or never did) host the
			// target. Chase the current owner.
			if hops > 0 && w.peers.send(nl.Slot, frame, hops-1) {
				w.forwarded.Add(1)
			} else {
				w.forwardDrops.Add(1)
				w.log().Warnf("frame for %s undeliverable (hops exhausted)", nl.Slot)
			}
			return nil
		}
		return err
	}
	return nil
}

func (w *worker) shutdown() {
	if w.mon != nil {
		w.mon.Stop()
	}
	if w.eng != nil {
		w.eng.Stop()
	}
	if w.peers != nil {
		w.peers.closeAll()
	}
	w.dataLn.Close()
	if n := w.forwardDrops.Load(); n > 0 {
		w.log().Warnf("%d frames dropped with hops exhausted", n)
	}
}

// upstreamSink ships monitor windows over the control connection into the
// driver's load database: the distributed half of §IV-B, where each
// worker's monitor reports its slice of the traffic matrix upward.
type upstreamSink struct{ w *worker }

func (s upstreamSink) ApplyWindow(loads map[topology.ExecutorID]float64, flows map[loaddb.FlowKey]float64) {
	m := &msg{Type: msgWindow, Slot: s.w.slot}
	for exec, mhz := range loads {
		m.Loads = append(m.Loads, loadEntry{Exec: exec, MHz: mhz})
	}
	for key, rate := range flows {
		m.Flows = append(m.Flows, flowEntry{From: key.From, To: key.To, Rate: rate})
	}
	sort.Slice(m.Loads, func(i, j int) bool { return m.Loads[i].Exec.Less(m.Loads[j].Exec) })
	sort.Slice(m.Flows, func(i, j int) bool {
		if m.Flows[i].From != m.Flows[j].From {
			return m.Flows[i].From.Less(m.Flows[j].From)
		}
		return m.Flows[i].To.Less(m.Flows[j].To)
	})
	s.w.ctrl.send(m)
}

func (s upstreamSink) Forget(topo string) {
	s.w.ctrl.send(&msg{Type: msgForget, Forget: topo})
}
