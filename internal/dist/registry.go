package dist

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"tstorm/internal/engine"
)

// Worker processes cannot receive Go closures over the wire, so workloads
// cross it by name: the driver ships a registered workload's name plus a
// JSON parameter blob, and the worker — the same binary, so the same
// registrations — rebuilds the topology locally. This is Storm's model
// too: a worker JVM instantiates the same spout/bolt classes from the
// same jar, configured by the serialized conf.

// AuditFn reports a workload's at-least-once conservation gauges from
// inside a worker: completed roots, roots still in flight, and replay
// count. Workers that host none of the workload's spouts return zeros.
type AuditFn func() (acked, outstanding, restarts int)

// Built is what a workload factory hands back: the app to submit, and an
// optional audit hook polled by heartbeats.
type Built struct {
	App   *engine.App
	Audit AuditFn
}

// BuildFn constructs a workload instance from its wire parameters. It
// runs once per process (driver and every worker).
type BuildFn func(params json.RawMessage) (Built, error)

var (
	regMu    sync.Mutex
	registry = map[string]BuildFn{}
)

// RegisterWorkload makes a workload constructible by name in worker
// processes. Call it from package init so driver and re-executed workers
// agree; registering a duplicate name panics to surface the init bug.
func RegisterWorkload(name string, fn BuildFn) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || fn == nil {
		panic("dist: RegisterWorkload with empty name or nil builder")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("dist: workload %q registered twice", name))
	}
	registry[name] = fn
}

// buildWorkload resolves a registered workload and builds it.
func buildWorkload(name string, params json.RawMessage) (Built, error) {
	regMu.Lock()
	fn, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return Built{}, fmt.Errorf("dist: workload %q not registered (known: %v)", name, registeredWorkloads())
	}
	return fn(params)
}

// registeredWorkloads lists registration names, sorted, for error text.
func registeredWorkloads() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
