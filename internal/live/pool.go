package live

import (
	"sync"
	"sync/atomic"
)

// This file is the engine's object-pooling layer: every batch slice that
// crosses an executor boundary on the hot path — delivery batches
// ([]liveMsg), acker control batches ([]ctlMsg), completion-event batches
// ([]ackEvent) and codec encode buffers ([]byte) — is drawn from a
// sync.Pool and returned after its single consumer is done with it, so
// steady-state emission allocates nothing per tuple.
//
// Ownership rules (see DESIGN.md "Pooling lifetime rules"):
//
//   - The sender allocates a batch from the pool and owns it until the
//     hand-off point (channel send or remote frame encode) succeeds.
//   - A successful channel send transfers ownership to the single receiver
//     goroutine, which returns the batch after folding/processing it.
//   - On the remote path the frame encode copies everything out, so the
//     sending side returns the batch immediately after encoding.
//   - Batches dropped at dead executors are returned by the dropper.
//   - put clears the used prefix so pooled memory never pins tuple
//     payloads; oversized batches are left to the GC to bound pool growth.
//
// Encode buffers follow the same life cycle one level down: allocated by
// the sender in appendDelivery, released by the receiving bolt right after
// decodeValues copied the payload out (decode copies strings and byte
// runs, so the buffer is dead the moment it returns).

const (
	// poolMinCap is the capacity of a freshly allocated pooled batch.
	poolMinCap = 16
	// poolMaxCap bounds what put accepts back; anything a fan-out grew
	// beyond it is left to the GC so one huge batch cannot pin memory.
	poolMaxCap = 4096
	// encBufCap is the initial capacity of a pooled encode buffer.
	encBufCap = 128
)

// batchPool is a typed sync.Pool of reusable slices with hit/miss
// telemetry. The zero value is ready to use.
type batchPool[T any] struct {
	pool   sync.Pool
	newCap int
	hits   atomic.Int64
	misses atomic.Int64
}

// get returns an empty slice with whatever capacity the pool had on hand.
func (p *batchPool[T]) get() []T {
	if v := p.pool.Get(); v != nil {
		p.hits.Add(1)
		return (*v.(*[]T))[:0]
	}
	p.misses.Add(1)
	c := p.newCap
	if c <= 0 {
		c = poolMinCap
	}
	return make([]T, 0, c)
}

// put recycles a slice after its single consumer finished with it. The
// used prefix is cleared so recycled backing arrays never keep dead tuple
// payloads (or their encode buffers) reachable.
func (p *batchPool[T]) put(s []T) {
	if cap(s) == 0 || cap(s) > poolMaxCap {
		return
	}
	clear(s)
	s = s[:0]
	p.pool.Put(&s)
}

// stats returns the pool's lifetime hit/miss counters.
func (p *batchPool[T]) stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// PoolStat is one batch pool's lifetime reuse counters, for telemetry.
type PoolStat struct {
	// Name identifies the pool: "msg", "ctl", "ack" or "enc".
	Name string
	// Hits counts gets served from recycled memory; Misses counts gets
	// that had to allocate.
	Hits   int64
	Misses int64
}

// PoolStats snapshots every batch pool's counters in fixed order.
func (eng *Engine) PoolStats() []PoolStat {
	out := make([]PoolStat, 0, 4)
	h, m := eng.msgPool.stats()
	out = append(out, PoolStat{Name: "msg", Hits: h, Misses: m})
	h, m = eng.ctlPool.stats()
	out = append(out, PoolStat{Name: "ctl", Hits: h, Misses: m})
	h, m = eng.ackPool.stats()
	out = append(out, PoolStat{Name: "ack", Hits: h, Misses: m})
	h, m = eng.encPool.stats()
	out = append(out, PoolStat{Name: "enc", Hits: h, Misses: m})
	return out
}
