package live

import (
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// seqSpout emits sequence-numbered tuples directly to its paired work task
// at a per-index rate (spout 0 twice as fast as spout 1, so the measured
// flows are strictly ordered and Algorithm 1's traffic sort is
// deterministic). IDs encode (spout index, sequence), so the sink can
// assert exactly-once delivery.
type seqSpout struct {
	idx   int
	rate  float64
	start time.Time
	seq   int64
}

func (s *seqSpout) Open(ctx *engine.Context) {
	s.idx = ctx.Index
	s.rate = 24000 / float64(1+s.idx)
}

func (s *seqSpout) NextTuple(em engine.SpoutEmitter) {
	if s.start.IsZero() {
		s.start = time.Now()
	}
	budget := int64(time.Since(s.start).Seconds() * s.rate)
	for n := 0; n < 64 && s.seq < budget; n++ {
		em.EmitDirect("work", s.idx, "", tuple.Values{int64(s.idx)<<32 | s.seq})
		s.seq++
	}
}
func (s *seqSpout) Ack(any)  {}
func (s *seqSpout) Fail(any) {}

// conserve records how many times each tuple ID reached a sink.
type conserve struct {
	mu   sync.Mutex
	seen map[int64]int
}

type sinkBolt struct{ c *conserve }

func (b *sinkBolt) Prepare(*engine.Context) {}
func (b *sinkBolt) Execute(in tuple.Tuple, _ engine.Emitter) {
	id := in.Values[0].(int64)
	b.c.mu.Lock()
	b.c.seen[id]++
	b.c.mu.Unlock()
}

// TestTStormRescheduleCutsLiveInterNodeTraffic is the end-to-end live
// pipeline: goroutine executors → wall-clock monitor → loaddb → unchanged
// Algorithm 1 → smoothed migration. The topology has two chatty
// spout→bolt pairs deliberately placed on opposite emulated nodes, so
// every transfer starts inter-node; after one forced T-Storm reschedule
// the pairs must be co-located, the measured inter-node fraction must
// collapse, and no tuple may be lost or duplicated across the migration.
func TestTStormRescheduleCutsLiveInterNodeTraffic(t *testing.T) {
	b := topology.NewBuilder("skew", 2)
	b.Spout("src", 2).Output("", "id")
	b.Bolt("work", 2).Direct("src")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cons := &conserve{seen: make(map[int64]int)}
	var spoutMu sync.Mutex
	var spouts []*seqSpout
	app := &engine.App{
		Topology: top,
		Spouts: map[string]func() engine.Spout{"src": func() engine.Spout {
			s := &seqSpout{}
			spoutMu.Lock()
			spouts = append(spouts, s)
			spoutMu.Unlock()
			return s
		}},
		Bolts:         map[string]func() engine.Bolt{"work": func() engine.Bolt { return &sinkBolt{c: cons} }},
		SpoutInterval: map[string]time.Duration{"src": time.Millisecond},
	}

	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := func(comp string, i int) topology.ExecutorID {
		return topology.ExecutorID{Topology: "skew", Component: comp, Index: i}
	}
	n1 := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	// Worst-case placement: each spout's only consumer is on the other node.
	initial := cluster.NewAssignment(0)
	initial.Assign(ex("src", 0), n1)
	initial.Assign(ex("work", 1), n1)
	initial.Assign(ex("src", 1), n2)
	initial.Assign(ex("work", 0), n2)

	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	db := loaddb.New(0.5)
	mon := StartMonitor(eng, db, 50*time.Millisecond)
	defer mon.Stop()
	// γ=1 spreads the four executors two per node — the paper's even
	// distribution — forcing the algorithm to pick which pairs share a node.
	gen, err := StartGenerator(eng, db, GeneratorConfig{
		Period:               time.Hour, // manual Reschedule only
		CapacityFraction:     0.9,
		ImprovementThreshold: 0.10,
	}, core.NewTrafficAware(1.0))
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Stop()

	waitFor(t, 15*time.Second, "monitor windows and initial traffic", func() bool {
		return mon.Samples() >= 3 && eng.Totals().SinkProcessed > 1000
	})
	before := eng.Totals()
	if f := before.InterNodeFraction(); f < 0.99 {
		t.Fatalf("initial inter-node fraction = %.3f, want ~1.0 (bad placement)", f)
	}

	if !gen.Reschedule() {
		t.Fatal("forced reschedule applied nothing")
	}
	cur, ok := eng.CurrentAssignment("skew")
	if !ok {
		t.Fatal("assignment vanished")
	}
	for i := 0; i < 2; i++ {
		ss, ws := cur.Executors[ex("src", i)], cur.Executors[ex("work", i)]
		if ss.Node != ws.Node {
			t.Fatalf("pair %d not co-located: src on %v, work on %v", i, ss, ws)
		}
	}
	tot := eng.Totals()
	if tot.Applies < 1 || tot.Migrations < 2 {
		t.Fatalf("applies/migrations = %d/%d, want ≥1/≥2", tot.Applies, tot.Migrations)
	}
	afterApply := tot

	waitFor(t, 15*time.Second, "post-migration traffic", func() bool {
		return eng.Totals().SinkProcessed-afterApply.SinkProcessed > 1000
	})

	// Drain completely: halt roots, let any in-flight emit cycle land, then
	// quiesce so the conservation count below is exact.
	eng.HaltSpouts()
	if !eng.Quiesce(2 * time.Second) {
		t.Fatal("engine did not quiesce")
	}
	time.Sleep(20 * time.Millisecond)
	if !eng.Quiesce(2 * time.Second) {
		t.Fatal("engine did not re-quiesce")
	}
	final := eng.Totals()

	phase2 := final.Sub(afterApply)
	if phase2.TuplesSent == 0 {
		t.Fatal("no traffic after migration")
	}
	if f := phase2.InterNodeFraction(); f > 0.05 {
		t.Errorf("post-reschedule inter-node fraction = %.3f, want < 0.05", f)
	}
	if eng.DrainLatency().Count() == 0 {
		t.Error("no end-to-end latency samples recorded")
	}

	eng.Stop()

	// Conservation across the migration: every emitted ID seen exactly once.
	var emitted int64
	spoutMu.Lock()
	for _, s := range spouts {
		emitted += s.seq
	}
	spoutMu.Unlock()
	if emitted == 0 {
		t.Fatal("spouts emitted nothing")
	}
	if final.RootsEmitted != emitted {
		t.Errorf("engine counted %d roots, spouts emitted %d", final.RootsEmitted, emitted)
	}
	cons.mu.Lock()
	defer cons.mu.Unlock()
	if int64(len(cons.seen)) != emitted {
		t.Errorf("sink saw %d distinct ids, spouts emitted %d (lost %d)",
			len(cons.seen), emitted, emitted-int64(len(cons.seen)))
	}
	for id, c := range cons.seen {
		if c != 1 {
			t.Fatalf("id %d delivered %d times, want exactly once", id, c)
		}
	}
}
