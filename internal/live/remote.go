package live

import (
	"encoding/binary"
	"fmt"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// This file is the live engine's process-boundary surface, used by the
// distributed backend (internal/dist): a worker process runs a restricted
// engine (Config.LocalSlots names the slots whose executors execute here;
// everything else is a routing proxy) and transfers that resolve to a
// non-local slot leave through Config.Remote as self-describing binary
// frames instead of a channel send. The frame body reuses the tuple codec
// (codec.go), so the serialization cost the in-process engine emulates is
// exactly the cost the distributed engine pays for real.
//
// Frames may arrive from an untrusted socket, so decodeFrame validates
// every length against the bytes that remain before allocating or slicing
// — malformed input returns an error (the dist layer logs it and closes
// the connection), never a panic.

// RemoteSink carries frames to the worker process owning a slot. Send
// reports false when the frame could not be handed to the peer (unknown
// address, dead connection); the caller counts the batch as dropped and
// anchored roots recover via timeout + replay.
type RemoteSink interface {
	Send(to cluster.SlotID, frame []byte) bool
}

// NotLocalError reports that an ingested frame's target executor lives in
// another worker process — the §IV-D generation-tagged dispatch case: the
// sender routed against a pre-reassignment placement, and the receiver
// answers with the slot it currently believes owns the executor so the
// dist layer can forward the frame (bounded by its hop budget).
type NotLocalError struct {
	Slot cluster.SlotID
}

func (e *NotLocalError) Error() string {
	return fmt.Sprintf("live: target executor is not local (now at %s)", e.Slot)
}

// Frame kinds.
const (
	frameData = 1 // data tuples for a bolt's input queue
	frameCtl  = 2 // init/ack control messages for an acker
	frameAck  = 3 // completion events for a spout's mailbox
	// frameDataT is a data frame carrying the tuple-tracing extension: a
	// flags byte after the header, then (for flagSpans) a parent-span ID
	// and hand-off instant appended to every message. Version gating is by
	// kind: a decoder predating tracing hits its unknown-frame-kind error
	// and drops the connection instead of misparsing, and senders only use
	// this kind for batches that actually contain a sampled tuple, so
	// tracing-off fleets never emit it.
	frameDataT = 4
)

// flagSpans marks a frameDataT whose messages carry span fields. Unknown
// flag bits are rejected at decode, reserving them for future extensions.
const flagSpans = 1

// maxFrameItems caps the per-frame item count a decoder will believe
// before the per-item length checks kick in, bounding the initial slice
// allocation for adversarial counts (each item costs many bytes, so real
// frames sit far below this).
const maxFrameItems = 1 << 20

func appendFrameString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// frameReader walks an untrusted frame with bounds-checked reads.
type frameReader struct {
	buf []byte
	pos int
	err error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("live: "+format, args...)
	}
}

func (r *frameReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Uvarint(r.buf[r.pos:])
	if w <= 0 {
		r.fail("truncated uvarint at %d", r.pos)
		return 0
	}
	r.pos += w
	return v
}

func (r *frameReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("truncated byte at %d", r.pos)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *frameReader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf)-r.pos < 8 {
		r.fail("truncated uint64 at %d", r.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// bytes returns a copy of a length-prefixed byte run. The length is
// validated against the remaining input before any conversion to int, so
// adversarial 64-bit lengths cannot wrap negative or over-allocate.
func (r *frameReader) bytes() []byte {
	l := r.uvarint()
	if r.err != nil {
		return nil
	}
	if l > uint64(len(r.buf)-r.pos) {
		r.fail("truncated %d-byte run at %d", l, r.pos)
		return nil
	}
	out := make([]byte, l)
	copy(out, r.buf[r.pos:r.pos+int(l)])
	r.pos += int(l)
	return out
}

func (r *frameReader) string() string {
	return string(r.bytes())
}

// count reads an item count and sanity-bounds it: each item occupies at
// least minItemBytes, so a count larger than remaining/minItemBytes is
// corrupt and rejected before anything is allocated from it.
func (r *frameReader) count(minItemBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > maxFrameItems || n > uint64((len(r.buf)-r.pos)/minItemBytes+1) {
		r.fail("frame claims %d items in %d bytes", n, len(r.buf)-r.pos)
		return 0
	}
	return int(n)
}

// wireFrame is one decoded inter-process frame.
type wireFrame struct {
	kind byte
	to   topology.ExecutorID
	data []liveMsg
	ctl  []ctlMsg
	acks []ackEvent
}

func appendFrameHeader(buf []byte, kind byte, to topology.ExecutorID) []byte {
	buf = append(buf, kind)
	buf = appendFrameString(buf, to.Topology)
	buf = appendFrameString(buf, to.Component)
	buf = binary.AppendUvarint(buf, uint64(to.Index))
	return buf
}

// encodeDataFrame serializes a routed batch for one remote executor.
// Messages whose payload holds by-reference extras cannot cross a process
// boundary and are skipped; the second return value counts them so the
// caller can account the drop. Messages still carrying in-memory values
// (a local-hop batch stranded by a migration) are encoded here. A batch
// containing at least one sampled tuple (non-zero sentAt) leaves as a
// frameDataT with span fields on every message; plain batches — all of
// them when tracing is off — keep the PR 6 frameData format byte for
// byte.
func encodeDataFrame(to topology.ExecutorID, msgs []liveMsg) (frame []byte, skipped int64) {
	traced := false
	for i := range msgs {
		if msgs[i].sentAt != 0 {
			traced = true
			break
		}
	}
	buf := make([]byte, 0, 64+64*len(msgs))
	if traced {
		buf = appendFrameHeader(buf, frameDataT, to)
		buf = append(buf, flagSpans)
	} else {
		buf = appendFrameHeader(buf, frameData, to)
	}
	countAt := len(buf)
	n := 0
	buf = append(buf, 0, 0, 0, 0) // fixed32 count patched below
	for i := range msgs {
		m := &msgs[i]
		enc, extras := m.enc, m.extras
		if enc == nil {
			enc, extras = encodeValues(m.tup.Values)
		}
		if len(extras) > 0 {
			skipped++
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.tup.Root))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.tup.Edge))
		buf = appendFrameString(buf, m.tup.Stream)
		buf = appendFrameString(buf, m.tup.SrcComponent)
		buf = binary.AppendUvarint(buf, uint64(m.tup.SrcTask))
		buf = binary.AppendUvarint(buf, uint64(m.tup.Size))
		var born int64
		if !m.bornAt.IsZero() {
			born = m.bornAt.UnixNano()
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(born))
		buf = binary.AppendUvarint(buf, uint64(m.from))
		if traced {
			buf = binary.LittleEndian.AppendUint64(buf, m.parentSpan)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(m.sentAt))
		}
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
		n++
	}
	binary.LittleEndian.PutUint32(buf[countAt:], uint32(n))
	return buf, skipped
}

func encodeCtlFrame(to topology.ExecutorID, msgs []ctlMsg) []byte {
	buf := make([]byte, 0, 64+32*len(msgs))
	buf = appendFrameHeader(buf, frameCtl, to)
	buf = binary.AppendUvarint(buf, uint64(len(msgs)))
	for _, m := range msgs {
		buf = append(buf, byte(m.kind))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.root))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.xor))
		buf = binary.AppendUvarint(buf, uint64(m.spoutDense))
		var at int64
		if !m.emitAt.IsZero() {
			at = m.emitAt.UnixNano()
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(at))
	}
	return buf
}

func encodeAckFrame(to topology.ExecutorID, evs []ackEvent) []byte {
	buf := make([]byte, 0, 32+17*len(evs))
	buf = appendFrameHeader(buf, frameAck, to)
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, ev := range evs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ev.root))
		late := byte(0)
		if ev.late {
			late = 1
		}
		buf = append(buf, late)
		var at int64
		if !ev.at.IsZero() {
			at = ev.at.UnixNano()
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(at))
	}
	return buf
}

// decodeDataMsgs parses the shared data-message body of frameData and
// frameDataT into f.data. spans selects the frameDataT/flagSpans layout,
// where each message carries its producer's span ID and hand-off instant
// between the from field and the payload.
func decodeDataMsgs(r *frameReader, f *wireFrame, spans bool) error {
	if len(r.buf)-r.pos < 4 {
		return fmt.Errorf("live: truncated data-frame count at %d", r.pos)
	}
	n := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	// Every data message occupies ≥ 21 bytes (two fixed u64s, a fixed
	// born instant minus overlap with varints); use a conservative floor.
	if n > maxFrameItems || n > uint32((len(r.buf)-r.pos)/21+1) {
		return fmt.Errorf("live: data frame claims %d messages in %d bytes", n, len(r.buf)-r.pos)
	}
	f.data = make([]liveMsg, 0, n)
	for i := uint32(0); i < n; i++ {
		var m liveMsg
		m.tup.Root = tuple.ID(r.uint64())
		m.tup.Edge = tuple.ID(r.uint64())
		m.tup.Stream = r.string()
		m.tup.SrcComponent = r.string()
		m.tup.SrcTask = int(r.uvarint())
		m.tup.Size = int(r.uvarint())
		if born := int64(r.uint64()); born != 0 {
			m.bornAt = time.Unix(0, born)
		}
		m.from = int(r.uvarint())
		if spans {
			m.parentSpan = r.uint64()
			m.sentAt = int64(r.uint64())
		}
		m.enc = r.bytes()
		if r.err != nil {
			return r.err
		}
		f.data = append(f.data, m)
	}
	return nil
}

// decodeFrame parses one inter-process frame from untrusted bytes.
func decodeFrame(buf []byte) (*wireFrame, error) {
	r := &frameReader{buf: buf}
	f := &wireFrame{kind: r.byte()}
	f.to.Topology = r.string()
	f.to.Component = r.string()
	f.to.Index = int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	switch f.kind {
	case frameData:
		if err := decodeDataMsgs(r, f, false); err != nil {
			return nil, err
		}
	case frameDataT:
		flags := r.byte()
		if r.err != nil {
			return nil, r.err
		}
		if flags&^byte(flagSpans) != 0 {
			return nil, fmt.Errorf("live: unknown data-frame flags %#x", flags)
		}
		if err := decodeDataMsgs(r, f, flags&flagSpans != 0); err != nil {
			return nil, err
		}
	case frameCtl:
		n := r.count(26)
		f.ctl = make([]ctlMsg, 0, n)
		for i := 0; i < n; i++ {
			var m ctlMsg
			m.kind = ctlKind(r.byte())
			if m.kind != ctlInit && m.kind != ctlAck {
				return nil, fmt.Errorf("live: unknown ctl kind %d", m.kind)
			}
			m.root = tuple.ID(r.uint64())
			m.xor = tuple.ID(r.uint64())
			m.spoutDense = int(r.uvarint())
			if at := int64(r.uint64()); at != 0 {
				m.emitAt = time.Unix(0, at)
			}
			if r.err != nil {
				return nil, r.err
			}
			f.ctl = append(f.ctl, m)
		}
	case frameAck:
		n := r.count(17)
		f.acks = make([]ackEvent, 0, n)
		for i := 0; i < n; i++ {
			var ev ackEvent
			ev.root = tuple.ID(r.uint64())
			ev.late = r.byte() == 1
			if at := int64(r.uint64()); at != 0 {
				ev.at = time.Unix(0, at)
			}
			if r.err != nil {
				return nil, r.err
			}
			f.acks = append(f.acks, ev)
		}
	default:
		return nil, fmt.Errorf("live: unknown frame kind %d", f.kind)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("live: %d trailing bytes after frame", len(r.buf)-r.pos)
	}
	return f, nil
}

// Ingest accepts one frame received from a peer worker process and
// dispatches it to the target executor's queue. A decode failure returns
// the error (the caller should drop the connection); a structurally valid
// frame whose target executor is not resident here returns a
// *NotLocalError naming the slot this engine currently routes the
// executor to, so the dist layer can forward it.
func (eng *Engine) Ingest(buf []byte) error {
	f, err := decodeFrame(buf)
	if err != nil {
		return err
	}
	rt := eng.routes.Load()
	le := rt.executor(f.to.Topology, f.to.Component, f.to.Index)
	if le == nil {
		return fmt.Errorf("live: frame for unknown executor %v", f.to)
	}
	if !rt.local[le.dense] {
		return &NotLocalError{Slot: rt.slotOf[le.dense]}
	}
	switch f.kind {
	case frameData, frameDataT:
		if le.in == nil {
			return fmt.Errorf("live: data frame for queueless executor %v", f.to)
		}
		n := int64(len(f.data))
		if n == 0 {
			return nil
		}
		if le.dead.Load() {
			eng.dropped.Add(n)
			return nil
		}
		eng.pending.Add(n)
		select {
		case le.in <- f.data:
		case <-eng.stopCh:
			eng.pending.Add(-n)
		}
	case frameCtl:
		if le.ctl == nil {
			return fmt.Errorf("live: ctl frame for non-acker executor %v", f.to)
		}
		if len(f.ctl) == 0 {
			return nil
		}
		if le.dead.Load() {
			eng.dropped.Add(int64(len(f.ctl)))
			return nil
		}
		select {
		case le.ctl <- f.ctl:
		case <-eng.stopCh:
		}
	case frameAck:
		if le.kind != spoutExec {
			return fmt.Errorf("live: ack frame for non-spout executor %v", f.to)
		}
		if len(f.acks) == 0 {
			return nil
		}
		le.ackMu.Lock()
		if le.ackEvents == nil {
			le.ackEvents = eng.ackPool.get()
		}
		le.ackEvents = append(le.ackEvents, f.acks...)
		le.ackMu.Unlock()
	}
	return nil
}

// remoteSend pushes an encoded frame toward the owner of a slot; a false
// return means the dist layer could not deliver it.
func (eng *Engine) remoteSend(to cluster.SlotID, frame []byte) bool {
	if eng.cfg.Remote == nil {
		return false
	}
	return eng.cfg.Remote.Send(to, frame)
}

// sendRemoteData ships one routed batch across the process boundary and
// accounts it exactly as deliver does for local enqueues (the sender owns
// all traffic counting, so per-edge statistics are consistent across the
// fleet). Undeliverable or unencodable messages count as dropped.
func (eng *Engine) sendRemoteData(rt *routeTable, d *delivery) bool {
	n := int64(len(d.msgs))
	from := d.msgs[0].from
	frame, skipped := encodeDataFrame(d.to.id, d.msgs)
	// The frame encode copied everything out; the batch and its pooled
	// encode buffers are recycled here whatever happens to the frame.
	eng.recycleBatch(d.msgs)
	d.msgs = nil
	if skipped > 0 {
		eng.dropped.Add(skipped)
		n -= skipped
	}
	if n <= 0 {
		return true
	}
	if !eng.remoteSend(rt.slotOf[d.to.dense], frame) {
		eng.dropped.Add(n)
		return true
	}
	eng.tuplesSent.Add(n)
	switch d.hop {
	case hopInterNode:
		eng.interNodeSent.Add(n)
	case hopInterProc:
		eng.interProcSent.Add(n)
	}
	if m := eng.edges.Load(); m != nil {
		m.counts[from*m.n+d.to.dense].byHop[d.hop].Add(n)
	}
	eng.traffic.Add(from, d.to.dense, float64(n))
	return true
}

// forwardStranded re-ships batches that landed in a non-resident
// executor's local queue — senders holding a pre-migration routing
// snapshot, or frames that arrived while the handoff was in flight — to
// the slot that owns the executor now. Runs on the remote pump goroutine.
func (eng *Engine) forwardStranded(le *liveExec, batch []liveMsg) {
	rt := eng.routes.Load()
	frame, skipped := encodeDataFrame(le.id, batch)
	n := int64(len(batch)) - skipped
	eng.recycleBatch(batch)
	if skipped > 0 {
		eng.dropped.Add(skipped)
	}
	if n <= 0 {
		return
	}
	if !rt.local[le.dense] && eng.remoteSend(rt.slotOf[le.dense], frame) {
		return
	}
	eng.dropped.Add(n)
}

func (eng *Engine) forwardStrandedCtl(le *liveExec, batch []ctlMsg) {
	rt := eng.routes.Load()
	sent := !rt.local[le.dense] && eng.remoteSend(rt.slotOf[le.dense], encodeCtlFrame(le.id, batch))
	if !sent {
		eng.dropped.Add(int64(len(batch)))
	}
	eng.ctlPool.put(batch)
}

// pumpRemote drains a non-resident executor's local queues for as long as
// it stays remote, forwarding strays to the current owner so migration
// conserves tuples even when an old routing snapshot (or an in-flight TCP
// frame) deposits into the departed executor's queue. Data batches leave
// eng.pending here; they re-enter it in the owning process.
func (le *liveExec) pumpRemote(stop <-chan struct{}, done chan<- struct{}) {
	eng := le.eng
	defer eng.wg.Done()
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-eng.stopCh:
			return
		case batch := <-le.in:
			eng.pending.Add(-int64(len(batch)))
			eng.forwardStranded(le, batch)
		case batch := <-le.ctl:
			eng.forwardStrandedCtl(le, batch)
		}
	}
}
