package live

import (
	"strings"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
)

// buildTracedEngine assembles a tiny spout→bolt topology on two nodes with
// a trace recorder attached, everything initially on node01.
func buildTracedEngine(t *testing.T) (*Engine, *trace.Recorder, *cluster.Assignment, *idSpout) {
	t.Helper()
	b := topology.NewBuilder("traced", 2)
	b.Spout("s", 1).Output("", "id")
	b.Bolt("work", 2).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	spout := &idSpout{}
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return spout }},
		Bolts:         map[string]func() engine.Bolt{"work": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
	}
	cfg := testConfig()
	cfg.Trace = trace.NewRecorder(128)
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	return eng, cfg.Trace, initial, spout
}

// TestApplyEmitsTraceTimeline checks that a live re-assignment records the
// §IV-D story in order: apply begins, spouts halt, queues drain, each
// executor migrates, the re-assignment completes, and spouts resume.
func TestApplyEmitsTraceTimeline(t *testing.T) {
	eng, rec, initial, _ := buildTracedEngine(t)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	next := initial.Clone()
	next.ID = 1
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	for i := 0; i < 2; i++ {
		next.Assign(topology.ExecutorID{Topology: "traced", Component: "work", Index: i}, n2)
	}
	moved, err := eng.Apply("traced", next)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 2 {
		t.Fatalf("moved %d executors, want 2", moved)
	}
	waitFor(t, 2*time.Second, "spouts-resumed event", func() bool {
		return len(rec.Filter(trace.SpoutsResumed)) > 0
	})

	var kinds []trace.Kind
	for _, ev := range rec.Events() {
		if ev.Wall.IsZero() {
			t.Fatalf("live event %v has no wall-clock stamp", ev)
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []trace.Kind{
		trace.AssignmentPublished,
		trace.SpoutsHalted,
		trace.QueuesDrained,
		trace.ExecutorMigrated,
		trace.ExecutorMigrated,
		trace.ReassignApplied,
		trace.SpoutsResumed,
	}
	// The timeline must contain `want` as a subsequence (the spout may be
	// mid-cycle, so unrelated events can interleave in principle).
	wi := 0
	for _, k := range kinds {
		if wi < len(want) && k == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		t.Fatalf("timeline %v missing %v (matched %d/%d)", kinds, want[wi], wi, len(want))
	}

	migs := rec.Filter(trace.ExecutorMigrated)
	for _, ev := range migs {
		if ev.Where != n2.String() || !strings.Contains(ev.Detail, "moved from node01:6700") {
			t.Errorf("migration event %v lacks slot detail", ev)
		}
	}
}

// TestExecutorAndEdgeStats runs traffic through the engine and checks the
// telemetry snapshots: per-executor processed counts and process-latency
// histograms, per-edge counters conserving against the engine totals, and
// the placement snapshot tracking Apply.
func TestExecutorAndEdgeStats(t *testing.T) {
	eng, _, initial, spout := buildTracedEngine(t)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor(t, 5*time.Second, "traffic processed", func() bool {
		return eng.Totals().Processed > 500
	})
	eng.HaltSpouts()
	if !eng.Quiesce(5 * time.Second) {
		t.Fatal("no quiesce")
	}
	eng.Stop()

	stats := eng.ExecutorStats()
	if len(stats) != 3 {
		t.Fatalf("got %d executor stats, want 3", len(stats))
	}
	var processed, emittedBySpout int64
	for _, st := range stats {
		switch st.Kind {
		case "bolt":
			processed += st.Processed
			if st.QueueCap == 0 {
				t.Errorf("bolt %v reports no queue capacity", st.ID)
			}
			if st.ProcLatency == nil {
				t.Fatalf("bolt %v has no process-latency histogram", st.ID)
			}
			if st.ProcLatency.Count() != st.Processed {
				t.Errorf("bolt %v latency samples %d != processed %d",
					st.ID, st.ProcLatency.Count(), st.Processed)
			}
		case "spout":
			emittedBySpout = st.Emitted
			if st.ProcLatency != nil {
				t.Errorf("spout has a process-latency histogram")
			}
		}
	}
	tot := eng.Totals()
	if processed != tot.Processed {
		t.Errorf("executor stats sum to %d processed, engine counted %d", processed, tot.Processed)
	}
	if emittedBySpout != spout.seq {
		t.Errorf("spout stat emitted %d, spout produced %d", emittedBySpout, spout.seq)
	}

	var edgeSum int64
	for _, es := range eng.EdgeStats() {
		if es.Boundary != "local" {
			t.Errorf("single-slot placement produced %q edge %v→%v", es.Boundary, es.From, es.To)
		}
		edgeSum += es.Tuples
	}
	if edgeSum != tot.TuplesSent {
		t.Errorf("edge counters sum to %d, engine sent %d", edgeSum, tot.TuplesSent)
	}

	place := eng.Placement()
	if len(place) != 3 {
		t.Fatalf("placement has %d entries", len(place))
	}
	for _, p := range place {
		if want := initial.Executors[p.Executor]; p.Slot != want {
			t.Errorf("placement %v on %v, want %v", p.Executor, p.Slot, want)
		}
	}
}

// TestMonitorGaugesAndSampleEvents checks the stalled-monitor gauges and
// the per-round trace event.
func TestMonitorGaugesAndSampleEvents(t *testing.T) {
	eng, rec, _, _ := buildTracedEngine(t)
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	db := loaddb.New(0.5)
	mon := StartMonitor(eng, db, 20*time.Millisecond)
	defer mon.Stop()

	waitFor(t, 5*time.Second, "three sampling rounds", func() bool { return mon.Samples() >= 3 })
	if age := mon.LastSampleAge(); age < 0 || age > 2*time.Second {
		t.Errorf("last-sample age %v implausible for a live monitor", age)
	}
	if d := mon.LastRoundDuration(); d < 0 || d > time.Second {
		t.Errorf("round duration %v implausible", d)
	}
	evs := rec.Filter(trace.MonitorSampled)
	if len(evs) < 3 {
		t.Fatalf("got %d monitor-sampled events, want >= 3", len(evs))
	}
	if !strings.Contains(evs[0].Detail, "executors") {
		t.Errorf("sample event detail %q", evs[0].Detail)
	}
	mon.Stop()
	// A stopped monitor is a stalled monitor: its age only grows.
	a1 := mon.LastSampleAge()
	time.Sleep(30 * time.Millisecond)
	if a2 := mon.LastSampleAge(); a2 <= a1 {
		t.Errorf("age did not grow after stop: %v then %v", a1, a2)
	}
}
