package live

import (
	"sync/atomic"
	"time"

	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// DefaultMonitorPeriod is the paper's load-monitoring period.
const DefaultMonitorPeriod = 20 * time.Second

// Monitor is the live-runtime load monitor (§IV-B over wall-clock time):
// every period it drains each executor's accumulated CPU time and the
// inter-executor tuple counts, converts them to instantaneous MHz and
// tuples/s, and folds the whole window into the load database — the same
// EWMA pipeline the simulated monitors feed, so the unchanged scheduling
// algorithms consume live measurements transparently.
type Monitor struct {
	eng    *Engine
	db     *loaddb.DB
	period time.Duration

	// knownFlows tracks pairs ever seen so silent pairs decay toward 0
	// instead of freezing at their last estimate.
	knownFlows map[loaddb.FlowKey]bool
	samples    atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// StartMonitor launches the sampling goroutine. The first sample is taken
// one full period after start.
func StartMonitor(eng *Engine, db *loaddb.DB, period time.Duration) *Monitor {
	if period <= 0 {
		period = DefaultMonitorPeriod
	}
	m := &Monitor{
		eng:        eng,
		db:         db,
		period:     period,
		knownFlows: make(map[loaddb.FlowKey]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go m.loop()
	return m
}

func (m *Monitor) loop() {
	defer close(m.done)
	tk := time.NewTicker(m.period)
	defer tk.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.eng.stopCh:
			return
		case <-tk.C:
			m.Sample()
		}
	}
}

// Stop halts sampling and waits for the goroutine to exit.
func (m *Monitor) Stop() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
}

// Samples reports how many sampling rounds have run.
func (m *Monitor) Samples() int { return int(m.samples.Load()) }

// Period returns the sampling period.
func (m *Monitor) Period() time.Duration { return m.period }

// Sample performs one sampling round: drain CPU counters and the traffic
// matrix, convert to MHz and tuples/s, and batch the window into the
// database.
func (m *Monitor) Sample() {
	m.samples.Add(1)
	secs := m.period.Seconds()
	eng := m.eng

	eng.mu.RLock()
	execs := make([]*liveExec, 0, len(eng.execs))
	for _, le := range eng.execs {
		execs = append(execs, le)
	}
	denseRev := eng.denseRev
	eng.mu.RUnlock()

	loads := make(map[topology.ExecutorID]float64, len(execs))
	for _, le := range execs {
		nanos := le.cpuNanos.Swap(0)
		loads[le.id] = float64(nanos) / 1e9 / secs * eng.cfg.RefMHz
	}

	flows := make(map[loaddb.FlowKey]float64)
	for p, count := range eng.traffic.Drain() {
		k := loaddb.FlowKey{From: denseRev[p.From], To: denseRev[p.To]}
		flows[k] = count / secs
		m.knownFlows[k] = true
	}
	for k := range m.knownFlows {
		if _, active := flows[k]; !active {
			flows[k] = 0
		}
	}
	m.db.ApplyWindow(loads, flows)
}
