package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
)

// DefaultMonitorPeriod is the paper's load-monitoring period.
const DefaultMonitorPeriod = 20 * time.Second

// monitorOverloadThreshold is the node-load fraction of capacity above
// which a sampling round reports an overload-detected trace event (the
// simulated generator reschedules at 0.5; the live monitor only reports,
// so it flags the more alarming level).
const monitorOverloadThreshold = 0.9

// LoadSink receives sampled monitor windows. The in-process runtime wires
// a *loaddb.DB directly; a distributed worker wires a proxy that ships
// each window over its control connection into the driver's database, so
// the unchanged loaddb/scheduler stack consumes fleet-wide measurements.
type LoadSink interface {
	ApplyWindow(loads map[topology.ExecutorID]float64, flows map[loaddb.FlowKey]float64)
	Forget(topo string)
}

var _ LoadSink = (*loaddb.DB)(nil)

// MemorySink is the optional memory-signal extension of LoadSink. It is
// a separate interface discovered by type assertion — not a new method on
// LoadSink — because ApplyWindow's shape is part of the distributed
// control-plane protocol (workers proxy windows over their control
// connection) and must not change under a wire-incompatible extension.
// Sinks that don't implement it simply never see memory samples, and
// demand derivation falls back to the model baseline.
type MemorySink interface {
	ApplyMemory(mem map[topology.ExecutorID]float64)
}

var _ MemorySink = (*loaddb.DB)(nil)

// Per-executor memory model of the live monitor: a fixed baseline (the
// executor's channels, routing scratch, and component state) plus a
// backlog share — input batches waiting in the bounded queue pin tuples
// in memory until drained, so a congested executor reports a larger
// footprint and memory-aware schedulers (rstorm) spread it away from
// already-full nodes.
const (
	execBaseMemMB       = 64.0
	execQueueShareMemMB = 192.0
)

// Monitor is the live-runtime load monitor (§IV-B over wall-clock time):
// every period it drains each executor's accumulated CPU time and the
// inter-executor tuple counts, converts them to instantaneous MHz and
// tuples/s, and folds the whole window into the load database — the same
// EWMA pipeline the simulated monitors feed, so the unchanged scheduling
// algorithms consume live measurements transparently.
type Monitor struct {
	eng    *Engine
	db     LoadSink
	period time.Duration

	// sampleMu serializes sampling rounds (the periodic loop against
	// manual Sample calls) and guards the fields below.
	sampleMu sync.Mutex
	// lastSample is when the counters were last drained; rates divide by
	// the measured elapsed time since then, not the configured period, so
	// ticker drift and off-cycle manual samples cannot skew the database.
	lastSample time.Time
	// knownFlows tracks pairs ever seen so silent pairs decay toward 0
	// instead of freezing at their last estimate.
	knownFlows map[loaddb.FlowKey]bool
	// forgotten lists topologies dropped via Forget: their executors are
	// skipped entirely so samples cannot resurrect keys the database has
	// deleted.
	forgotten map[string]bool

	samples atomic.Int64

	// lastSampleNanos (unix nanos of the last completed round) and
	// lastRoundNanos (how long that round took) are the stalled-monitor
	// gauges: a monitor that stops sampling — the silent failure mode of
	// §IV-B — shows up on /metrics as an ever-growing last-sample age.
	lastSampleNanos atomic.Int64
	lastRoundNanos  atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// StartMonitor launches the sampling goroutine. The first sample is taken
// one full period after start.
func StartMonitor(eng *Engine, db LoadSink, period time.Duration) *Monitor {
	if period <= 0 {
		period = DefaultMonitorPeriod
	}
	m := &Monitor{
		eng:        eng,
		db:         db,
		period:     period,
		lastSample: time.Now(),
		knownFlows: make(map[loaddb.FlowKey]bool),
		forgotten:  make(map[string]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	m.lastSampleNanos.Store(time.Now().UnixNano())
	go m.loop()
	return m
}

func (m *Monitor) loop() {
	defer close(m.done)
	tk := time.NewTicker(m.period)
	defer tk.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-m.eng.stopCh:
			return
		case <-tk.C:
			m.Sample()
		}
	}
}

// Stop halts sampling and waits for the goroutine to exit. It is safe to
// call from multiple goroutines, concurrently or repeatedly.
func (m *Monitor) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// Samples reports how many sampling rounds have run.
func (m *Monitor) Samples() int { return int(m.samples.Load()) }

// LastSampleAge reports how long ago the last sampling round completed
// (since StartMonitor if none has). A stalled monitor shows an age far
// beyond its period.
func (m *Monitor) LastSampleAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - m.lastSampleNanos.Load())
}

// LastRoundDuration reports how long the last sampling round took (0
// before the first round).
func (m *Monitor) LastRoundDuration() time.Duration {
	return time.Duration(m.lastRoundNanos.Load())
}

// Period returns the sampling period.
func (m *Monitor) Period() time.Duration { return m.period }

// Forget drops a topology from the monitor's memory and removes its
// records from the load database: knownFlows entries are pruned and later
// samples skip the topology's executors, so the zero-rate decay writes
// cannot resurrect keys DB.Forget deleted (which would also keep HasData
// true for a dead topology).
func (m *Monitor) Forget(topo string) {
	m.sampleMu.Lock()
	m.forgotten[topo] = true
	for k := range m.knownFlows {
		if k.From.Topology == topo || k.To.Topology == topo {
			delete(m.knownFlows, k)
		}
	}
	m.sampleMu.Unlock()
	m.db.Forget(topo)
}

// Forgotten reports whether Forget was called for the topology — the
// telemetry layer uses it to keep dead topologies out of the placement
// view (the engine itself has no topology-removal API).
func (m *Monitor) Forgotten(topo string) bool {
	m.sampleMu.Lock()
	defer m.sampleMu.Unlock()
	return m.forgotten[topo]
}

// Sample performs one sampling round: drain CPU counters and the traffic
// matrix, convert to MHz and tuples/s over the wall-clock time actually
// elapsed since the previous drain, and batch the window into the
// database.
func (m *Monitor) Sample() {
	m.sampleMu.Lock()
	defer m.sampleMu.Unlock()
	now := time.Now()
	secs := now.Sub(m.lastSample).Seconds()
	if secs <= 0 {
		secs = m.period.Seconds()
	}
	m.lastSample = now
	m.samples.Add(1)

	eng := m.eng
	rt := eng.routes.Load()

	loads := make(map[topology.ExecutorID]float64, len(rt.byDense))
	mems := make(map[topology.ExecutorID]float64, len(rt.byDense))
	nodeLoad := make(map[cluster.NodeID]float64)
	for _, le := range rt.byDense {
		nanos := le.cpuNanos.Swap(0) // drain even when skipped below
		if m.forgotten[le.id.Topology] {
			continue
		}
		if !rt.local[le.dense] {
			// Routing proxy: the executor runs (and is measured) in another
			// worker process; reporting it here as zero-load would corrupt
			// the shared EWMA the owner feeds.
			continue
		}
		if eng.NodeDown(rt.slotOf[le.dense].Node) {
			// Dead nodes are not reported: their executors vanish from the
			// load picture, so the next schedule (with the node fenced off
			// the candidate set) places them purely by where their flows
			// pull them — the paper's reschedule-around-failure behaviour.
			continue
		}
		mhz := float64(nanos) / 1e9 / secs * eng.cfg.RefMHz
		loads[le.id] = mhz
		nodeLoad[rt.slotOf[le.dense].Node] += mhz
		backlog := 0.0
		if c := cap(le.in); c > 0 {
			backlog = float64(len(le.in)) / float64(c)
		}
		mems[le.id] = execBaseMemMB + execQueueShareMemMB*backlog
	}

	flows := make(map[loaddb.FlowKey]float64)
	for p, count := range eng.traffic.Drain() {
		from, to := rt.denseRev[p.From], rt.denseRev[p.To]
		if m.forgotten[from.Topology] || m.forgotten[to.Topology] {
			continue
		}
		k := loaddb.FlowKey{From: from, To: to}
		flows[k] = count / secs
		m.knownFlows[k] = true
	}
	for k := range m.knownFlows {
		if _, active := flows[k]; active {
			continue
		}
		if fe := rt.executor(k.From.Topology, k.From.Component, k.From.Index); fe != nil && !rt.local[fe.dense] {
			// The producer migrated to another worker process: its flows are
			// someone else's to report now. Decaying them to zero here would
			// fight the new owner's real measurements window after window.
			delete(m.knownFlows, k)
			continue
		}
		flows[k] = 0
	}
	m.db.ApplyWindow(loads, flows)
	if ms, ok := m.db.(MemorySink); ok {
		ms.ApplyMemory(mems)
	}

	m.lastRoundNanos.Store(int64(time.Since(now)))
	m.lastSampleNanos.Store(time.Now().UnixNano())
	eng.emit(trace.MonitorSampled, "", "",
		fmt.Sprintf("%d executors, %d flows over %.3fs window", len(loads), len(flows), secs))
	for node, mhz := range nodeLoad {
		n, ok := eng.cl.Node(node)
		if !ok {
			continue
		}
		if capMHz := n.CapacityMHz(); capMHz > 0 && mhz > monitorOverloadThreshold*capMHz {
			eng.emit(trace.OverloadDetected, "", string(node),
				fmt.Sprintf("measured %.0f MHz > %.0f%% of %.0f MHz capacity",
					mhz, 100*monitorOverloadThreshold, capMHz))
		}
	}
}
