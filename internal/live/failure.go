package live

import (
	"fmt"
	"sort"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/trace"
)

// This file is the live runtime's fault-injection surface, mirroring the
// simulated engine's (internal/engine/failure.go) with real goroutines:
// CrashWorker kills a worker process's executor goroutines, FailNode takes
// a whole emulated node down, and the Supervisor (supervisor.go) restarts
// the casualties with exponential backoff — except on down nodes, which
// stay dark until the scheduler moves the work or RecoverNode runs.

// CrashWorker kills the worker process on the given slot: every executor
// goroutine resident there dies for real — mid-batch tails and everything
// still queued for them are dropped (anchored roots recover via timeout +
// replay) — and a drainer keeps their bounded queues from wedging senders
// until the supervisor restarts them with fresh user-code instances
// (executor state loss, exactly as a Storm worker JVM crash). It returns
// how many executors were killed (0 when the slot hosts none or they are
// already dead).
func (eng *Engine) CrashWorker(slot cluster.SlotID) int {
	eng.mu.RLock()
	targets := append([]*liveExec(nil), eng.groups[slot]...)
	eng.mu.RUnlock()
	killed := eng.kill(targets)
	if killed > 0 {
		eng.emit(trace.WorkerCrashed, "", slot.String(),
			fmt.Sprintf("%d executor goroutines killed", killed))
	}
	return killed
}

// FailNode takes a worker node down: every executor on its slots dies and
// the node is fenced — the monitor stops reporting it and the generator
// marks it occupied, so Algorithm 1 reschedules the orphaned executors
// onto live nodes; once Apply has moved them, the supervisor restarts
// them there. It reports whether a live node was found.
func (eng *Engine) FailNode(id cluster.NodeID) bool {
	if _, ok := eng.cl.Node(id); !ok {
		return false
	}
	eng.mu.Lock()
	if eng.downNodes[id] {
		eng.mu.Unlock()
		return false
	}
	eng.downNodes[id] = true
	var targets []*liveExec
	for slot, g := range eng.groups {
		if slot.Node == id {
			targets = append(targets, g...)
		}
	}
	eng.mu.Unlock()
	killed := eng.kill(targets)
	eng.emit(trace.NodeFailed, "", string(id),
		fmt.Sprintf("%d executor goroutines killed", killed))
	return true
}

// RecoverNode brings a failed node back: it becomes schedulable again and
// the supervisor restarts, in place, whatever is still assigned there.
func (eng *Engine) RecoverNode(id cluster.NodeID) bool {
	eng.mu.Lock()
	if !eng.downNodes[id] {
		eng.mu.Unlock()
		return false
	}
	delete(eng.downNodes, id)
	eng.mu.Unlock()
	eng.emit(trace.NodeRecovered, "", string(id), "")
	return true
}

// NodeDown reports whether a node is currently failed.
func (eng *Engine) NodeDown(id cluster.NodeID) bool {
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	return eng.downNodes[id]
}

// DownNodes lists currently failed nodes, sorted.
func (eng *Engine) DownNodes() []cluster.NodeID {
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	out := make([]cluster.NodeID, 0, len(eng.downNodes))
	for id := range eng.downNodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// kill takes a set of executors through alive → dying → dead: close their
// die channels, reap the goroutines, reclaim spout-side pending state,
// and start queue drainers. It returns how many were actually alive.
func (eng *Engine) kill(targets []*liveExec) int {
	if !eng.started.Load() {
		return 0 // no goroutines to kill yet
	}
	now := time.Now()
	var dying []*liveExec
	eng.mu.Lock()
	for _, le := range targets {
		if le.state != stateAlive {
			continue
		}
		le.state = stateDying
		le.crashedAt = now
		le.dead.Store(true) // routers start dropping immediately
		close(le.die)
		dying = append(dying, le)
	}
	eng.mu.Unlock()
	if len(dying) == 0 {
		return 0
	}
	// Reap outside the lock: dying goroutines always exit promptly (their
	// blocking points — queue sends, sleeps — all select on die), but user
	// code may take a moment to return.
	for _, le := range dying {
		<-le.gone
	}
	eng.mu.Lock()
	for _, le := range dying {
		// The goroutine is gone, so its spout-side state is safe to read:
		// surrender the outstanding-roots gauge (those roots are lost until
		// replay re-registers them on the next incarnation).
		if le.kind == spoutExec && le.anchored {
			lost := int64(0)
			for _, p := range le.pendingRoots {
				if !p.failed {
					lost++
				}
			}
			eng.pendingRoots.Add(-lost)
		}
		if le.in != nil || le.ctl != nil {
			le.drainStop = make(chan struct{})
			le.drainDone = make(chan struct{})
			eng.wg.Add(1)
			go le.drainWhileDead(le.drainStop, le.drainDone)
		}
		le.state = stateDead
		eng.workerCrashes.Add(1)
	}
	eng.mu.Unlock()
	return len(dying)
}

// drainWhileDead discards a dead executor's incoming batches so senders
// blocked on its bounded queue unwedge. Data batches leave eng.pending
// (they will never be processed); everything drained counts as dropped.
// The supervisor stops the drainer before handing the queue to a fresh
// incarnation, so the queue never has two consumers.
func (le *liveExec) drainWhileDead(stop <-chan struct{}, done chan<- struct{}) {
	eng := le.eng
	defer eng.wg.Done()
	defer close(done)
	// A nil queue arm (bolts have no ctl, ackers no in) never fires.
	for {
		select {
		case <-stop:
			return
		case <-eng.stopCh:
			return
		case batch := <-le.in:
			eng.pending.Add(-int64(len(batch)))
			eng.dropped.Add(int64(len(batch)))
			eng.recycleBatch(batch)
		case batch := <-le.ctl:
			eng.dropped.Add(int64(len(batch)))
			eng.ctlPool.put(batch)
		}
	}
}
