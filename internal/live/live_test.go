package live

import (
	"sync/atomic"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

func testConfig() Config {
	return Config{
		Seed:            1,
		QueueCapacity:   256,
		SpoutHaltDelay:  5 * time.Millisecond,
		DrainTimeout:    2 * time.Second,
		InterNodeCopies: 2,
		WireCost:        time.Microsecond,
		RefMHz:          2000,
	}
}

// recordBolt counts tuples per executor index into a shared array.
type recordBolt struct {
	counts *[2]atomic.Int64
	idx    int
}

func (b *recordBolt) Prepare(ctx *engine.Context)         { b.idx = ctx.Index }
func (b *recordBolt) Execute(tuple.Tuple, engine.Emitter) { b.counts[b.idx].Add(1) }

// groupWords drive the fields-grouping assertions.
var groupWords = []string{"alpha", "beta", "gamma", "delta"}

// finiteSpout emits exactly limit cycles — one default-stream tuple plus one
// direct tuple per cycle — then idles.
type finiteSpout struct{ limit, n int }

func (s *finiteSpout) Open(*engine.Context) {}
func (s *finiteSpout) NextTuple(em engine.SpoutEmitter) {
	if s.n >= s.limit {
		return
	}
	w := groupWords[s.n%len(groupWords)]
	em.Emit("", tuple.Values{w})
	em.EmitDirect("direct", s.n%2, "", tuple.Values{w})
	s.n++
}
func (s *finiteSpout) Ack(any)  {}
func (s *finiteSpout) Fail(any) {}

// TestGroupingsRouteLikeStorm runs all six groupings on one worker slot and
// checks exact per-task tuple counts.
func TestGroupingsRouteLikeStorm(t *testing.T) {
	const n = 200
	b := topology.NewBuilder("groupings", 1)
	b.Spout("src", 1).Output("", "word")
	b.Bolt("shuffle", 2).Shuffle("src")
	b.Bolt("byword", 2).Fields("src", "word")
	b.Bolt("bcast", 2).All("src")
	b.Bolt("solo", 2).Global("src")
	b.Bolt("direct", 2).Direct("src")
	b.Bolt("local", 2).LocalOrShuffle("src")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	counts := map[string]*[2]atomic.Int64{}
	bolts := map[string]func() engine.Bolt{}
	for _, name := range []string{"shuffle", "byword", "bcast", "solo", "direct", "local"} {
		c := new([2]atomic.Int64)
		counts[name] = c
		bolts[name] = func() engine.Bolt { return &recordBolt{counts: c} }
	}
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"src": func() engine.Spout { return &finiteSpout{limit: n} }},
		Bolts:         bolts,
		SpoutInterval: map[string]time.Duration{"src": time.Millisecond},
	}

	cl, err := cluster.Uniform(1, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	slot := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, slot)
	}

	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// 200 to shuffle, byword, solo, direct, local; 400 broadcast.
	const wantSink = 7 * n
	waitFor(t, 10*time.Second, "all tuples processed", func() bool {
		return eng.Totals().SinkProcessed >= wantSink
	})
	eng.HaltSpouts()
	if !eng.Quiesce(2 * time.Second) {
		t.Fatal("engine did not quiesce")
	}
	eng.Stop()

	get := func(name string, i int) int64 { return counts[name][i].Load() }
	// Shuffle from a single producer round-robins exactly.
	if get("shuffle", 0) != n/2 || get("shuffle", 1) != n/2 {
		t.Errorf("shuffle counts = [%d %d], want [%d %d]", get("shuffle", 0), get("shuffle", 1), n/2, n/2)
	}
	// Fields: each word lands on its hashed task, 50 occurrences each.
	var wantFields [2]int64
	for _, w := range groupWords {
		wantFields[tuple.HashKey(tuple.KeyString(w)+"\x1f", 2)] += n / int64(len(groupWords))
	}
	if get("byword", 0) != wantFields[0] || get("byword", 1) != wantFields[1] {
		t.Errorf("fields counts = [%d %d], want %v", get("byword", 0), get("byword", 1), wantFields)
	}
	// All: every task sees every tuple.
	if get("bcast", 0) != n || get("bcast", 1) != n {
		t.Errorf("all counts = [%d %d], want [%d %d]", get("bcast", 0), get("bcast", 1), n, n)
	}
	// Global: everything to task 0.
	if get("solo", 0) != n || get("solo", 1) != 0 {
		t.Errorf("global counts = [%d %d], want [%d 0]", get("solo", 0), get("solo", 1), n)
	}
	// Direct: the spout alternates target tasks explicitly.
	if get("direct", 0) != n/2 || get("direct", 1) != n/2 {
		t.Errorf("direct counts = [%d %d], want [%d %d]", get("direct", 0), get("direct", 1), n/2, n/2)
	}
	// Local-or-shuffle: both tasks are co-located, so it round-robins the
	// local set.
	if get("local", 0) != n/2 || get("local", 1) != n/2 {
		t.Errorf("local counts = [%d %d], want [%d %d]", get("local", 0), get("local", 1), n/2, n/2)
	}

	tot := eng.Totals()
	if tot.TuplesSent != wantSink || tot.Processed != wantSink {
		t.Errorf("sent/processed = %d/%d, want %d", tot.TuplesSent, tot.Processed, wantSink)
	}
	if tot.InterNodeSent != 0 || tot.InterProcessSent != 0 {
		t.Errorf("single-slot run crossed boundaries: interNode=%d interProc=%d", tot.InterNodeSent, tot.InterProcessSent)
	}
	if tot.RootsEmitted != 2*n {
		t.Errorf("roots = %d, want %d", tot.RootsEmitted, 2*n)
	}
	if c := eng.DrainLatency().Count(); c != wantSink {
		t.Errorf("latency samples = %d, want %d", c, wantSink)
	}
}

// tickSpout emits one reliable tuple per cycle forever and counts acks.
type tickSpout struct {
	n     int
	acked *atomic.Int64
}

func (s *tickSpout) Open(*engine.Context) {}
func (s *tickSpout) NextTuple(em engine.SpoutEmitter) {
	em.EmitWithID("", tuple.Values{s.n}, s.n)
	s.n++
}
func (s *tickSpout) Ack(any)  { s.acked.Add(1) }
func (s *tickSpout) Fail(any) {}

type devnullBolt struct{}

func (devnullBolt) Prepare(*engine.Context)             {}
func (devnullBolt) Execute(tuple.Tuple, engine.Emitter) {}

// TestApplyMigratesExecutors exercises the smoothed re-assignment path:
// executors move between worker groups, processing continues, and the
// unanchored runtime acks reliable emissions immediately.
func TestApplyMigratesExecutors(t *testing.T) {
	b := topology.NewBuilder("mig", 1)
	b.Spout("s", 1).Output("", "v")
	b.Bolt("b", 2).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	acked := new(atomic.Int64)
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &tickSpout{acked: acked} }},
		Bolts:         map[string]func() engine.Bolt{"b": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, n1)
	}

	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor(t, 5*time.Second, "initial traffic", func() bool {
		return eng.Totals().SinkProcessed > 100
	})
	if got := eng.Totals().InterNodeSent; got != 0 {
		t.Fatalf("pre-migration inter-node transfers = %d, want 0", got)
	}

	// Error paths first.
	if _, err := eng.Apply("nope", initial); err == nil {
		t.Error("Apply(unknown topology) should fail")
	}
	partial := cluster.NewAssignment(1)
	partial.Assign(topology.ExecutorID{Topology: "mig", Component: "s", Index: 0}, n1)
	if _, err := eng.Apply("mig", partial); err == nil {
		t.Error("Apply(partial assignment) should fail")
	}
	if moved, err := eng.Apply("mig", initial); err != nil || moved != 0 {
		t.Errorf("Apply(no-op) = %d, %v; want 0, nil", moved, err)
	}

	next := initial.Clone()
	next.ID = 1
	next.Assign(topology.ExecutorID{Topology: "mig", Component: "b", Index: 1}, n2)
	moved, err := eng.Apply("mig", next)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	cur, ok := eng.CurrentAssignment("mig")
	if !ok || !cur.Equal(next) {
		t.Fatal("current assignment does not match applied assignment")
	}

	// Shuffle alternates targets, so half the post-migration traffic now
	// crosses the emulated node boundary — and the spout keeps running.
	waitFor(t, 5*time.Second, "post-migration inter-node traffic", func() bool {
		return eng.Totals().InterNodeSent > 50
	})
	tot := eng.Totals()
	if tot.Applies != 1 || tot.Migrations != 1 {
		t.Errorf("applies/migrations = %d/%d, want 1/1", tot.Applies, tot.Migrations)
	}
	if acked.Load() == 0 {
		t.Error("reliable emissions were never acked (unanchored mode should ack immediately)")
	}
}
