package live

import (
	"tstorm/internal/metrics"
	"tstorm/internal/topology"
)

// Totals is a snapshot of the engine's lifetime counters. Subtracting two
// snapshots measures a window — benchmarks take one before and one after
// a measurement phase.
type Totals struct {
	// RootsEmitted counts spout root tuples.
	RootsEmitted int64
	// TuplesSent counts executor-to-executor transfers.
	TuplesSent int64
	// InterNodeSent counts transfers that crossed an emulated node
	// boundary (paying serialization + copy work).
	InterNodeSent int64
	// InterProcessSent counts transfers between slots on one node
	// (paying serialization only).
	InterProcessSent int64
	// Processed counts tuples processed by bolts.
	Processed int64
	// SinkProcessed counts tuples processed by terminal bolts.
	SinkProcessed int64
	// Migrations counts executors moved across all Apply calls.
	Migrations int64
	// Applies counts applied re-assignments.
	Applies int64
}

// Totals returns the current counter snapshot.
func (eng *Engine) Totals() Totals {
	return Totals{
		RootsEmitted:     eng.rootsEmitted.Load(),
		TuplesSent:       eng.tuplesSent.Load(),
		InterNodeSent:    eng.interNodeSent.Load(),
		InterProcessSent: eng.interProcSent.Load(),
		Processed:        eng.processed.Load(),
		SinkProcessed:    eng.sinkProcessed.Load(),
		Migrations:       eng.migrations.Load(),
		Applies:          eng.applies.Load(),
	}
}

// Sub returns the per-counter difference t - o.
func (t Totals) Sub(o Totals) Totals {
	return Totals{
		RootsEmitted:     t.RootsEmitted - o.RootsEmitted,
		TuplesSent:       t.TuplesSent - o.TuplesSent,
		InterNodeSent:    t.InterNodeSent - o.InterNodeSent,
		InterProcessSent: t.InterProcessSent - o.InterProcessSent,
		Processed:        t.Processed - o.Processed,
		SinkProcessed:    t.SinkProcessed - o.SinkProcessed,
		Migrations:       t.Migrations - o.Migrations,
		Applies:          t.Applies - o.Applies,
	}
}

// InterNodeFraction is the fraction of transfers that crossed node
// boundaries (0 when nothing was sent) — the live analogue of the paper's
// inter-node traffic objective.
func (t Totals) InterNodeFraction() float64 {
	if t.TuplesSent == 0 {
		return 0
	}
	return float64(t.InterNodeSent) / float64(t.TuplesSent)
}

// DrainLatency returns the end-to-end latency histogram accumulated since
// the last drain (spout emit → terminal bolt completion, milliseconds) and
// resets it for the next window.
func (eng *Engine) DrainLatency() *metrics.Histogram {
	return eng.latency.Drain()
}

// ExecutorProcessed reports one executor's lifetime processed-tuple count
// (0 for unknown executors and spouts). It reads the routing snapshot, so
// it never contends with Submit/Apply.
func (eng *Engine) ExecutorProcessed(e topology.ExecutorID) int64 {
	rt := eng.routes.Load()
	le := rt.executor(e.Topology, e.Component, e.Index)
	if le == nil {
		return 0
	}
	return le.processed.Load()
}
