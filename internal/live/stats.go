package live

import (
	"sort"

	"tstorm/internal/cluster"
	"tstorm/internal/metrics"
	"tstorm/internal/topology"
)

// Totals is a snapshot of the engine's lifetime counters. Subtracting two
// snapshots measures a window — benchmarks take one before and one after
// a measurement phase.
type Totals struct {
	// RootsEmitted counts spout root tuples.
	RootsEmitted int64
	// TuplesSent counts executor-to-executor transfers.
	TuplesSent int64
	// InterNodeSent counts transfers that crossed an emulated node
	// boundary (paying serialization + copy work).
	InterNodeSent int64
	// InterProcessSent counts transfers between slots on one node
	// (paying serialization only).
	InterProcessSent int64
	// Processed counts tuples processed by bolts.
	Processed int64
	// SinkProcessed counts tuples processed by terminal bolts.
	SinkProcessed int64
	// Migrations counts executors moved across all Apply calls.
	Migrations int64
	// Applies counts applied re-assignments.
	Applies int64
	// Acked counts anchored roots fully processed and acked to a spout.
	Acked int64
	// LateAcked counts, of those, completions arriving after a timeout.
	LateAcked int64
	// FailedRoots counts roots failed by a spout's timeout wheel.
	FailedRoots int64
	// Replayed counts re-emits of an already-pending spout msgID.
	Replayed int64
	// Dropped counts tuples dropped at (or drained from) dead executors.
	Dropped int64
	// WorkerCrashes counts executor goroutines killed by CrashWorker or
	// FailNode; WorkerRestarts counts supervisor restarts.
	WorkerCrashes  int64
	WorkerRestarts int64
	// CtlCombined counts XOR acks folded into an already-buffered ack for
	// the same root on the sender side, before reaching any channel.
	CtlCombined int64
	// PoolHits and PoolMisses sum the batch pools' reuse counters (pool.go):
	// hits served recycled memory, misses had to allocate.
	PoolHits   int64
	PoolMisses int64
	// TraceSampled counts sampled root registrations (replays included);
	// TraceSpanDropped counts spans lost to full executor rings.
	TraceSampled     int64
	TraceSpanDropped int64
}

// Totals returns the current counter snapshot.
func (eng *Engine) Totals() Totals {
	var poolHits, poolMisses int64
	for _, ps := range eng.PoolStats() {
		poolHits += ps.Hits
		poolMisses += ps.Misses
	}
	return Totals{
		RootsEmitted:     eng.rootsEmitted.Load(),
		TuplesSent:       eng.tuplesSent.Load(),
		InterNodeSent:    eng.interNodeSent.Load(),
		InterProcessSent: eng.interProcSent.Load(),
		Processed:        eng.processed.Load(),
		SinkProcessed:    eng.sinkProcessed.Load(),
		Migrations:       eng.migrations.Load(),
		Applies:          eng.applies.Load(),
		Acked:            eng.acked.Load(),
		LateAcked:        eng.lateAcked.Load(),
		FailedRoots:      eng.failedRoots.Load(),
		Replayed:         eng.replayed.Load(),
		Dropped:          eng.dropped.Load(),
		WorkerCrashes:    eng.workerCrashes.Load(),
		WorkerRestarts:   eng.workerRestarts.Load(),
		CtlCombined:      eng.ctlCombined.Load(),
		PoolHits:         poolHits,
		PoolMisses:       poolMisses,
		TraceSampled:     eng.tracedRoots.Load(),
		TraceSpanDropped: eng.traceSpanDropped(),
	}
}

// Sub returns the per-counter difference t - o.
func (t Totals) Sub(o Totals) Totals {
	return Totals{
		RootsEmitted:     t.RootsEmitted - o.RootsEmitted,
		TuplesSent:       t.TuplesSent - o.TuplesSent,
		InterNodeSent:    t.InterNodeSent - o.InterNodeSent,
		InterProcessSent: t.InterProcessSent - o.InterProcessSent,
		Processed:        t.Processed - o.Processed,
		SinkProcessed:    t.SinkProcessed - o.SinkProcessed,
		Migrations:       t.Migrations - o.Migrations,
		Applies:          t.Applies - o.Applies,
		Acked:            t.Acked - o.Acked,
		LateAcked:        t.LateAcked - o.LateAcked,
		FailedRoots:      t.FailedRoots - o.FailedRoots,
		Replayed:         t.Replayed - o.Replayed,
		Dropped:          t.Dropped - o.Dropped,
		WorkerCrashes:    t.WorkerCrashes - o.WorkerCrashes,
		WorkerRestarts:   t.WorkerRestarts - o.WorkerRestarts,
		CtlCombined:      t.CtlCombined - o.CtlCombined,
		PoolHits:         t.PoolHits - o.PoolHits,
		PoolMisses:       t.PoolMisses - o.PoolMisses,
		TraceSampled:     t.TraceSampled - o.TraceSampled,
		TraceSpanDropped: t.TraceSpanDropped - o.TraceSpanDropped,
	}
}

// InterNodeFraction is the fraction of transfers that crossed node
// boundaries (0 when nothing was sent) — the live analogue of the paper's
// inter-node traffic objective.
func (t Totals) InterNodeFraction() float64 {
	if t.TuplesSent == 0 {
		return 0
	}
	return float64(t.InterNodeSent) / float64(t.TuplesSent)
}

// PendingRoots reports how many anchored roots are outstanding right now
// (emitted, not yet acked or failed) across all spouts — the
// tuple-conservation gauge: with spouts done and failures replayed, it
// returns to 0 exactly when every root was accounted for.
func (eng *Engine) PendingRoots() int64 { return eng.pendingRoots.Load() }

// DrainLatency returns the end-to-end latency histogram accumulated since
// the last drain (spout emit → terminal bolt completion, milliseconds) and
// resets it for the next window.
func (eng *Engine) DrainLatency() *metrics.Histogram {
	return eng.latency.Drain()
}

// CompletionLatencySnapshot returns the cumulative root completion-latency
// histogram (first emit → ack, milliseconds; first-emit time survives
// replays). Anchored topologies only.
func (eng *Engine) CompletionLatencySnapshot() *metrics.Histogram {
	return eng.rootLat.Snapshot()
}

// DrainCompletionLatency returns the completion-latency histogram window
// since the last drain and resets it.
func (eng *Engine) DrainCompletionLatency() *metrics.Histogram {
	return eng.rootLat.Drain()
}

// LatencySnapshot returns the cumulative end-to-end latency histogram
// (never reset). Scrapers read this; DrainLatency's windowed resets are
// unaffected, so a concurrent scrape cannot lose benchmark samples.
func (eng *Engine) LatencySnapshot() *metrics.Histogram {
	return eng.latency.Snapshot()
}

// ExecutorProcessed reports one executor's lifetime processed-tuple count
// (0 for unknown executors and spouts). It reads the routing snapshot, so
// it never contends with Submit/Apply.
func (eng *Engine) ExecutorProcessed(e topology.ExecutorID) int64 {
	rt := eng.routes.Load()
	le := rt.executor(e.Topology, e.Component, e.Index)
	if le == nil {
		return 0
	}
	return le.processed.Load()
}

// ExecutorStat is one executor's telemetry snapshot.
type ExecutorStat struct {
	ID   topology.ExecutorID
	Slot cluster.SlotID
	// Kind is "spout", "bolt", or "acker".
	Kind string
	// QueueLen and QueueCap describe the input queue in delivery batches
	// (both 0 for spouts and ackers, which have no queue).
	QueueLen int
	QueueCap int
	// Processed and Emitted are lifetime tuple counts.
	Processed int64
	Emitted   int64
	// ProcLatency is a snapshot of the per-tuple process-time histogram
	// in milliseconds (nil for spouts and ackers).
	ProcLatency *metrics.Histogram
}

// ExecutorStats snapshots every executor's gauges and counters, sorted by
// executor identity. It reads the routing snapshot and per-executor
// atomics only — no engine lock.
func (eng *Engine) ExecutorStats() []ExecutorStat {
	rt := eng.routes.Load()
	out := make([]ExecutorStat, 0, len(rt.byDense))
	for dense, le := range rt.byDense {
		st := ExecutorStat{
			ID:        le.id,
			Slot:      rt.slotOf[dense],
			Processed: le.processed.Load(),
			Emitted:   le.emitted.Load(),
		}
		switch le.kind {
		case spoutExec:
			st.Kind = "spout"
		case boltExec:
			st.Kind = "bolt"
		default:
			st.Kind = "acker"
		}
		if le.in != nil {
			st.QueueLen = len(le.in)
			st.QueueCap = cap(le.in)
		}
		if le.procLat != nil {
			st.ProcLatency = le.procLat.Snapshot()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// MaxQueueDepth reports the deepest input queue across all executors right
// now (in delivery batches) — the backpressure gauge benchmarks poll for
// per-phase peaks.
func (eng *Engine) MaxQueueDepth() int {
	rt := eng.routes.Load()
	maxDepth := 0
	for _, le := range rt.byDense {
		if le.in != nil && len(le.in) > maxDepth {
			maxDepth = len(le.in)
		}
	}
	return maxDepth
}

// QueueSaturation reports the fraction of bounded input queues whose
// depth is at or above frac of capacity, plus the deepest queue depth —
// the backpressure signal health rules sample. Like MaxQueueDepth it
// reads the routing snapshot only, so it is cheap enough for a 1 s
// sampler and never contends with Submit/Apply.
func (eng *Engine) QueueSaturation(frac float64) (saturated float64, maxDepth int) {
	rt := eng.routes.Load()
	queues, hot := 0, 0
	for _, le := range rt.byDense {
		if le.in == nil {
			continue
		}
		queues++
		depth := len(le.in)
		if depth > maxDepth {
			maxDepth = depth
		}
		if c := cap(le.in); c > 0 && float64(depth) >= frac*float64(c) {
			hot++
		}
	}
	if queues == 0 {
		return 0, 0
	}
	return float64(hot) / float64(queues), maxDepth
}

// EdgeStat is one directed executor pair's lifetime transfer count over
// one boundary class.
type EdgeStat struct {
	From, To topology.ExecutorID
	// Boundary is "local", "inter-process", or "inter-node" — the class
	// of the hop when the tuples were sent (an edge that straddled an
	// Apply reports one EdgeStat per class).
	Boundary string
	Tuples   int64
}

// hopNames maps hopKind to its exposition label.
var hopNames = [3]string{hopLocal: "local", hopInterProc: "inter-process", hopInterNode: "inter-node"}

// EdgeStats snapshots the non-zero per-edge counters, sorted by (from, to,
// boundary). Counts are lifetime cumulative; the monitor's traffic-matrix
// drains do not affect them.
func (eng *Engine) EdgeStats() []EdgeStat {
	m := eng.edges.Load()
	if m == nil {
		return nil
	}
	rt := eng.routes.Load()
	var out []EdgeStat
	for from := 0; from < m.n; from++ {
		for to := 0; to < m.n; to++ {
			ec := &m.counts[from*m.n+to]
			for hop, name := range hopNames {
				if c := ec.byHop[hop].Load(); c > 0 {
					out = append(out, EdgeStat{
						From:     rt.denseRev[from],
						To:       rt.denseRev[to],
						Boundary: name,
						Tuples:   c,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.From != b.From {
			return a.From.Less(b.From)
		}
		if a.To != b.To {
			return a.To.Less(b.To)
		}
		return a.Boundary < b.Boundary
	})
	return out
}

// PlacementEntry is one executor's current slot, for /debug/placement.
type PlacementEntry struct {
	Executor topology.ExecutorID `json:"executor"`
	Slot     cluster.SlotID      `json:"slot"`
}

// Placement snapshots the current executor→slot mapping from the routing
// snapshot (so it reflects an Apply the instant the new routes publish),
// sorted by executor identity.
func (eng *Engine) Placement() []PlacementEntry {
	rt := eng.routes.Load()
	out := make([]PlacementEntry, 0, len(rt.byDense))
	for dense, le := range rt.byDense {
		out = append(out, PlacementEntry{Executor: le.id, Slot: rt.slotOf[dense]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Executor.Less(out[j].Executor) })
	return out
}
