package live

import (
	"fmt"
	"time"

	"tstorm/internal/tracing"
	"tstorm/internal/tuple"
)

// This file is the live engine's side of the sampled tuple tracing layer
// (internal/tracing): a spout root is sampled at registration time by one
// AND against a power-of-two mask on its random 64-bit root ID, sampled
// tuples carry the producer's span identity plus hand-off instant in two
// liveMsg value fields (and across the frame codec via frameDataT), and
// the three span shapes are recorded at their natural owners — the root
// span where flushAnchored registers the root, the execute span where
// process finishes a bolt's Execute, the ack span where drainAckEvents
// applies the completion. Spans land in per-executor lock-free rings; the
// in-process engine drains them into its own collector on a background
// loop, while a distributed worker engine (LocalSlots set) leaves the
// rings to the dist layer's heartbeat, which ships them to the driver's
// collector.
//
// Unsampled tuples — all of them, at the default 1/1024 rate, in any
// benchmark window that matters — pay exactly one predictable branch per
// hop and allocate nothing: ci.sh gates BenchmarkEmitTraced at ≤1
// alloc/op to keep it that way.

// spanRingCap bounds each executor's unread sampled spans; overflow drops
// the span (counted in Totals.TraceSpanDropped), never blocks.
const spanRingCap = 256

// spanDrainPeriod is the in-process collector's ring-drain cadence.
const spanDrainPeriod = 50 * time.Millisecond

// sampledRoot reports whether a root ID falls in the sampled subset. The
// zero root (unanchored emissions) never does.
func (eng *Engine) sampledRoot(root tuple.ID) bool {
	return eng.traceRate != 0 && tracing.Sampled(uint64(root), eng.traceMask)
}

// SetTraceSampling sets the 1-in-rate tuple-tree sampling rate (a power
// of two; 0 disables tracing). Must be called before Start: the mask is
// read lock-free on the emit path and the span rings are sized at Start.
func (eng *Engine) SetTraceSampling(rate int) error {
	if eng.started.Load() {
		return fmt.Errorf("live: SetTraceSampling after start")
	}
	if rate == 0 {
		eng.traceRate, eng.traceMask, eng.collector = 0, 0, nil
		eng.cfg.TraceSampling = 0
		return nil
	}
	mask, err := tracing.Mask(rate)
	if err != nil {
		return err
	}
	eng.traceRate, eng.traceMask = rate, mask
	eng.cfg.TraceSampling = rate
	if eng.localSlots == nil && eng.collector == nil {
		// In-process engine: own the collector. A distributed worker
		// (LocalSlots set) exports spans instead; the driver collects.
		eng.collector = tracing.NewCollector(tracing.Config{})
	}
	return nil
}

// TraceSampling returns the sampling rate (0 = tracing off).
func (eng *Engine) TraceSampling() int { return eng.traceRate }

// TraceCollector returns the engine's tuple-tree collector — nil when
// tracing is off or when this engine is a distributed worker exporting
// its spans to the driver.
func (eng *Engine) TraceCollector() *tracing.Collector { return eng.collector }

// DrainSpans empties every executor's span ring. Single consumer: the
// in-process engine's collect loop or the dist worker's heartbeat loop,
// never both (the collector is only created when LocalSlots is unset).
func (eng *Engine) DrainSpans() []tracing.Span {
	rt := eng.routes.Load()
	var out []tracing.Span
	for _, le := range rt.byDense {
		if le.spans != nil {
			out = le.spans.Drain(out)
		}
	}
	return out
}

// traceSpanDropped sums the rings' overflow counters.
func (eng *Engine) traceSpanDropped() int64 {
	rt := eng.routes.Load()
	var n int64
	for _, le := range rt.byDense {
		if le.spans != nil {
			n += le.spans.Dropped()
		}
	}
	return n
}

// collectSpans is the in-process engine's drain loop: rings → collector.
func (eng *Engine) collectSpans() {
	defer eng.wg.Done()
	tk := time.NewTicker(spanDrainPeriod)
	defer tk.Stop()
	for {
		select {
		case <-eng.stopCh:
			eng.collector.Add(eng.DrainSpans())
			return
		case <-tk.C:
			eng.collector.Add(eng.DrainSpans())
		}
	}
}

// recordRoot pushes the spout-side root span. emitAt is the FIRST emit
// instant (replays inherit it), so the tree's completion latency matches
// the engine's rootLat metric.
func (le *liveExec) recordRoot(root tuple.ID, emitAt time.Time) {
	le.eng.tracedRoots.Add(1)
	le.spans.Push(tracing.Span{
		Root: uint64(root), Self: uint64(root), Kind: tracing.KindRoot,
		Topology: le.id.Topology, Component: le.id.Component, Task: le.id.Index,
		EmitAt: emitAt.UnixNano(),
	})
}

// recordExecute pushes one bolt's execute span, classifying the inbound
// hop against the current route snapshot.
func (le *liveExec) recordExecute(m *liveMsg, t0 time.Time, busy time.Duration) {
	rt := le.eng.routes.Load()
	le.spans.Push(tracing.Span{
		Root: uint64(m.tup.Root), Self: uint64(m.tup.Edge), Parent: m.parentSpan,
		Kind:     tracing.KindExecute,
		Topology: le.id.Topology, Component: le.id.Component, Task: le.id.Index,
		Boundary: le.classifyHop(rt, m.from),
		SentAt:   m.sentAt, StartAt: t0.UnixNano(), EndAt: t0.Add(busy).UnixNano(),
	})
}

// recordAck pushes the spout-side completion span; at is the instant the
// acker observed the tree complete (carried with the ack event).
func (le *liveExec) recordAck(root tuple.ID, at time.Time) {
	le.spans.Push(tracing.Span{
		Root: uint64(root), Self: uint64(root), Kind: tracing.KindAck,
		Topology: le.id.Topology, Component: le.id.Component, Task: le.id.Index,
		AckAt: at.UnixNano(),
	})
}

// classifyHop labels the boundary a tuple crossed to reach this executor.
// In the in-process engine a cross-slot hop on one node is "inter-slot"
// (emulated serialization); in a distributed worker the producer's slot is
// non-local, so the same hop crossed a real process and is
// "inter-process". Cross-node hops are "inter-node" either way.
func (le *liveExec) classifyHop(rt *routeTable, from int) string {
	if from < 0 || from >= len(rt.slotOf) {
		return tracing.BoundaryLocal
	}
	src, dst := rt.slotOf[from], rt.slotOf[le.dense]
	switch {
	case src == dst:
		return tracing.BoundaryLocal
	case src.Node == dst.Node:
		if rt.local[from] {
			return tracing.BoundaryInterSlot
		}
		return tracing.BoundaryInterProcess
	default:
		return tracing.BoundaryInterNode
	}
}
