package live

import (
	"fmt"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/trace"
	"tstorm/internal/tuple"
)

// Apply migrates the named topology to the given assignment with the
// paper's smoothing (§IV-D), adapted to in-process workers:
//
//  1. spouts are halted, so no new roots enter the topology;
//  2. the engine quiesces — in-flight tuples drain through their bolts
//     (bounded by DrainTimeout; on timeout the move proceeds and each
//     executor's bounded input queue travels with it, so nothing is lost
//     either way);
//  3. executors whose slot changed are handed off between worker groups
//     and a freshly built routing snapshot is published with one atomic
//     store (emitters keep routing lock-free against the old snapshot
//     until the instant of the swap — see routes.go);
//  4. spouts resume after SpoutHaltDelay.
//
// Unlike Storm's abrupt re-assignment there is no worker restart and no
// executor state loss: migration changes which emulated node pays the
// executor's boundary costs. Apply returns the number of executors moved.
func (eng *Engine) Apply(name string, next *cluster.Assignment) (int, error) {
	eng.applyMu.Lock()
	defer eng.applyMu.Unlock()

	app, changed, err := eng.validateAssignment(name, next)
	if err != nil || !changed {
		return 0, err
	}

	applyStart := time.Now()
	eng.emit(trace.AssignmentPublished, name, "",
		"applying new assignment: halt spouts, drain, migrate")
	eng.HaltSpouts()
	defer eng.resumeSpoutsAfter(eng.cfg.SpoutHaltDelay)
	drainStart := time.Now()
	if eng.Quiesce(eng.cfg.DrainTimeout) {
		eng.emit(trace.QueuesDrained, name, "",
			fmt.Sprintf("in-flight tuples drained in %v", time.Since(drainStart).Round(time.Microsecond)))
	} else {
		eng.emit(trace.QueuesDrained, name, "",
			fmt.Sprintf("drain timeout after %v; queues travel with their executors", eng.cfg.DrainTimeout))
	}

	moved := eng.applyMoves(app, name, next)
	eng.emit(trace.ReassignApplied, name, "",
		fmt.Sprintf("moved %d executors in %v; spouts resume in %v",
			moved, time.Since(applyStart).Round(time.Microsecond), eng.cfg.SpoutHaltDelay))
	return moved, nil
}

// ApplyAssignment installs a new assignment without the halt/drain
// smoothing — the worker-process entry point of a distributed migration,
// where the driver has already halted spouts and quiesced the whole fleet
// before publishing the assignment. Executors arriving at this process
// are promoted from routing proxies to running incarnations (fresh user
// code); executors leaving are stopped and a pump forwards anything still
// (or subsequently) stranded in their local queues to the new owner.
func (eng *Engine) ApplyAssignment(name string, next *cluster.Assignment) (int, error) {
	eng.applyMu.Lock()
	defer eng.applyMu.Unlock()
	app, changed, err := eng.validateAssignment(name, next)
	if err != nil || !changed {
		return 0, err
	}
	moved := eng.applyMoves(app, name, next)
	eng.emit(trace.ReassignApplied, name, "",
		fmt.Sprintf("installed published assignment: %d executors moved", moved))
	return moved, nil
}

// validateAssignment checks an assignment covers the topology with known
// nodes; it reports whether the assignment differs from the live one.
func (eng *Engine) validateAssignment(name string, next *cluster.Assignment) (*engine.App, bool, error) {
	eng.mu.RLock()
	app, ok := eng.apps[name]
	cur := eng.assign[name]
	eng.mu.RUnlock()
	if !ok {
		return nil, false, fmt.Errorf("live: unknown topology %q", name)
	}
	for _, e := range app.Topology.Executors() {
		s, ok := next.Slot(e)
		if !ok {
			return nil, false, fmt.Errorf("live: executor %v missing from new assignment", e)
		}
		if _, ok := eng.cl.Node(s.Node); !ok {
			return nil, false, fmt.Errorf("live: executor %v assigned to unknown node %q", e, s.Node)
		}
	}
	return app, !cur.Equal(next), nil
}

// applyMoves re-homes every executor whose slot changed, publishes the new
// routing snapshot, and runs the local↔remote transitions. It returns the
// number of executors moved (counting fleet-wide moves, not just the ones
// touching this process, so counters agree across distributed workers).
func (eng *Engine) applyMoves(app *engine.App, name string, next *cluster.Assignment) int {
	// Trace emission happens after eng.mu is released: Emit runs
	// subscribers synchronously, and a subscriber reading engine state
	// must not deadlock against the migration.
	type move struct {
		exec     string
		from, to cluster.SlotID
		queued   int
	}
	var (
		moves    []move
		departed []*liveExec // local here, now placed on a non-local slot
		arrived  []*liveExec // proxy here, now placed on a local slot
	)
	eng.mu.Lock()
	for _, e := range app.Topology.Executors() {
		s := next.Executors[e]
		old := eng.placement[e]
		if old == s {
			continue
		}
		le := eng.execs[e]
		eng.groups[old] = removeFromGroup(eng.groups[old], le)
		if len(eng.groups[old]) == 0 {
			delete(eng.groups, old)
		}
		eng.groups[s] = append(eng.groups[s], le)
		eng.placement[e] = s
		wasLocal, isLocal := eng.isLocalSlot(old), eng.isLocalSlot(s)
		switch {
		case wasLocal && !isLocal:
			departed = append(departed, le)
		case !wasLocal && isLocal:
			arrived = append(arrived, le)
		}
		moves = append(moves, move{exec: e.String(), from: old, to: s, queued: queueLen(le)})
	}
	eng.assign[name] = next.Clone()
	eng.rebuildRoutesLocked()
	eng.mu.Unlock()

	// Transitions run against the already-published routes: senders on the
	// new snapshot route departures remotely (and arrivals locally) from
	// this instant; stragglers on the old snapshot land in the departed
	// executor's queue, which the pump forwards.
	for _, le := range departed {
		eng.demoteToRemote(le)
	}
	for _, le := range arrived {
		eng.promoteToLocal(le)
	}

	for _, mv := range moves {
		eng.emit(trace.ExecutorMigrated, name, mv.to.String(),
			fmt.Sprintf("%s moved from %s (queue handed off, %d batches)",
				mv.exec, mv.from, mv.queued))
	}
	eng.migrations.Add(int64(len(moves)))
	eng.applies.Add(1)
	return len(moves)
}

// demoteToRemote retires a local executor whose slot moved to another
// process: stop the incarnation (or its dead-state drainer), surrender
// spout reliability gauges (those roots replay from the new owner's
// incarnation), and start the stranded-queue pump for as long as the
// executor stays remote.
func (eng *Engine) demoteToRemote(le *liveExec) {
	for {
		eng.mu.Lock()
		switch le.state {
		case stateAlive:
			le.state = stateDying
			le.dead.Store(true)
			close(le.die)
			eng.mu.Unlock()
			<-le.gone
			eng.mu.Lock()
			if le.kind == spoutExec && le.anchored {
				lost := int64(0)
				for _, p := range le.pendingRoots {
					if !p.failed {
						lost++
					}
				}
				eng.pendingRoots.Add(-lost)
			}
		case stateDead:
			drainStop, drainDone := le.drainStop, le.drainDone
			le.drainStop, le.drainDone = nil, nil
			eng.mu.Unlock()
			if drainStop != nil {
				close(drainStop)
				<-drainDone
			}
			eng.mu.Lock()
		case stateRemote:
			eng.mu.Unlock()
			return
		default:
			// stateDying: a concurrent CrashWorker/FailNode is mid-kill; let
			// it settle into stateDead, then take the drainer over.
			eng.mu.Unlock()
			time.Sleep(100 * time.Microsecond)
			continue
		}
		break
	}
	if le.in != nil || le.ctl != nil {
		le.pumpStop = make(chan struct{})
		le.pumpDone = make(chan struct{})
		eng.wg.Add(1)
		go le.pumpRemote(le.pumpStop, le.pumpDone)
	}
	le.state = stateRemote
	le.dead.Store(false)
	le.crashedAt = time.Time{}
	eng.mu.Unlock()
	// Stale completion events belong to roots that died with this
	// incarnation; the new owner's incarnation knows nothing of them.
	le.ackMu.Lock()
	le.ackEvents = nil
	le.ackMu.Unlock()
}

// promoteToLocal turns a routing proxy into a running incarnation: stop
// the pump (if any), build fresh user code (executor state did not travel
// — exactly Storm's worker-reassignment semantics), and launch the
// goroutine. Before Engine.Start the promotion is bookkeeping only; Start
// opens and launches everything non-remote itself.
func (eng *Engine) promoteToLocal(le *liveExec) {
	eng.mu.Lock()
	if le.state != stateRemote {
		eng.mu.Unlock()
		return
	}
	pumpStop, pumpDone := le.pumpStop, le.pumpDone
	le.pumpStop, le.pumpDone = nil, nil
	if !eng.started.Load() {
		le.state = stateAlive
		eng.mu.Unlock()
		return
	}
	eng.mu.Unlock()
	if pumpStop != nil {
		close(pumpStop)
		<-pumpDone
	}

	var (
		spout engine.Spout
		bolt  engine.Bolt
	)
	switch le.kind {
	case spoutExec:
		spout = le.app.Spouts[le.id.Component]()
		spout.Open(le.ctx)
	case boltExec:
		bolt = le.app.Bolts[le.id.Component]()
		bolt.Prepare(le.ctx)
	}

	eng.mu.Lock()
	if spout != nil {
		le.spout = spout
	}
	if bolt != nil {
		le.bolt = bolt
	}
	if le.kind == spoutExec && le.anchored {
		le.pendingRoots = make(map[tuple.ID]*livePendingRoot)
		le.firstEmit = make(map[any]time.Time)
		le.outstanding = 0
		le.ackMu.Lock()
		le.ackEvents = nil
		le.ackMu.Unlock()
	}
	le.die = make(chan struct{})
	le.gone = make(chan struct{})
	le.state = stateAlive
	le.dead.Store(false)
	le.crashedAt = time.Time{}
	if !eng.stopped.Load() {
		eng.wg.Add(1)
		go le.run(le.die, le.gone)
	}
	eng.mu.Unlock()
	eng.emit(trace.ExecutorMigrated, le.id.Topology, "",
		fmt.Sprintf("%s promoted to local incarnation", le.id))
}

// queueLen reports an executor's current input-queue depth (0 for spouts).
func queueLen(le *liveExec) int {
	if le.in == nil {
		return 0
	}
	return len(le.in)
}

func removeFromGroup(g []*liveExec, le *liveExec) []*liveExec {
	for i, p := range g {
		if p == le {
			return append(g[:i], g[i+1:]...)
		}
	}
	return g
}
