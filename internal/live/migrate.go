package live

import (
	"fmt"

	"tstorm/internal/cluster"
)

// Apply migrates the named topology to the given assignment with the
// paper's smoothing (§IV-D), adapted to in-process workers:
//
//  1. spouts are halted, so no new roots enter the topology;
//  2. the engine quiesces — in-flight tuples drain through their bolts
//     (bounded by DrainTimeout; on timeout the move proceeds and each
//     executor's bounded input queue travels with it, so nothing is lost
//     either way);
//  3. executors whose slot changed are handed off between worker groups
//     and a freshly built routing snapshot is published with one atomic
//     store (emitters keep routing lock-free against the old snapshot
//     until the instant of the swap — see routes.go);
//  4. spouts resume after SpoutHaltDelay.
//
// Unlike Storm's abrupt re-assignment there is no worker restart and no
// executor state loss: migration changes which emulated node pays the
// executor's boundary costs. Apply returns the number of executors moved.
func (eng *Engine) Apply(name string, next *cluster.Assignment) (int, error) {
	eng.applyMu.Lock()
	defer eng.applyMu.Unlock()

	eng.mu.RLock()
	app, ok := eng.apps[name]
	cur := eng.assign[name]
	eng.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("live: unknown topology %q", name)
	}
	for _, e := range app.Topology.Executors() {
		s, ok := next.Slot(e)
		if !ok {
			return 0, fmt.Errorf("live: executor %v missing from new assignment", e)
		}
		if _, ok := eng.cl.Node(s.Node); !ok {
			return 0, fmt.Errorf("live: executor %v assigned to unknown node %q", e, s.Node)
		}
	}
	if cur.Equal(next) {
		return 0, nil
	}

	eng.HaltSpouts()
	defer eng.resumeSpoutsAfter(eng.cfg.SpoutHaltDelay)
	eng.Quiesce(eng.cfg.DrainTimeout)

	eng.mu.Lock()
	moved := 0
	for _, e := range app.Topology.Executors() {
		s := next.Executors[e]
		old := eng.placement[e]
		if old == s {
			continue
		}
		le := eng.execs[e]
		eng.groups[old] = removeFromGroup(eng.groups[old], le)
		if len(eng.groups[old]) == 0 {
			delete(eng.groups, old)
		}
		eng.groups[s] = append(eng.groups[s], le)
		eng.placement[e] = s
		moved++
	}
	eng.assign[name] = next.Clone()
	eng.rebuildRoutesLocked()
	eng.mu.Unlock()

	eng.migrations.Add(int64(moved))
	eng.applies.Add(1)
	return moved, nil
}

func removeFromGroup(g []*liveExec, le *liveExec) []*liveExec {
	for i, p := range g {
		if p == le {
			return append(g[:i], g[i+1:]...)
		}
	}
	return g
}
