package live

import (
	"fmt"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/trace"
)

// Apply migrates the named topology to the given assignment with the
// paper's smoothing (§IV-D), adapted to in-process workers:
//
//  1. spouts are halted, so no new roots enter the topology;
//  2. the engine quiesces — in-flight tuples drain through their bolts
//     (bounded by DrainTimeout; on timeout the move proceeds and each
//     executor's bounded input queue travels with it, so nothing is lost
//     either way);
//  3. executors whose slot changed are handed off between worker groups
//     and a freshly built routing snapshot is published with one atomic
//     store (emitters keep routing lock-free against the old snapshot
//     until the instant of the swap — see routes.go);
//  4. spouts resume after SpoutHaltDelay.
//
// Unlike Storm's abrupt re-assignment there is no worker restart and no
// executor state loss: migration changes which emulated node pays the
// executor's boundary costs. Apply returns the number of executors moved.
func (eng *Engine) Apply(name string, next *cluster.Assignment) (int, error) {
	eng.applyMu.Lock()
	defer eng.applyMu.Unlock()

	eng.mu.RLock()
	app, ok := eng.apps[name]
	cur := eng.assign[name]
	eng.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("live: unknown topology %q", name)
	}
	for _, e := range app.Topology.Executors() {
		s, ok := next.Slot(e)
		if !ok {
			return 0, fmt.Errorf("live: executor %v missing from new assignment", e)
		}
		if _, ok := eng.cl.Node(s.Node); !ok {
			return 0, fmt.Errorf("live: executor %v assigned to unknown node %q", e, s.Node)
		}
	}
	if cur.Equal(next) {
		return 0, nil
	}

	applyStart := time.Now()
	eng.emit(trace.AssignmentPublished, name, "",
		"applying new assignment: halt spouts, drain, migrate")
	eng.HaltSpouts()
	defer eng.resumeSpoutsAfter(eng.cfg.SpoutHaltDelay)
	drainStart := time.Now()
	if eng.Quiesce(eng.cfg.DrainTimeout) {
		eng.emit(trace.QueuesDrained, name, "",
			fmt.Sprintf("in-flight tuples drained in %v", time.Since(drainStart).Round(time.Microsecond)))
	} else {
		eng.emit(trace.QueuesDrained, name, "",
			fmt.Sprintf("drain timeout after %v; queues travel with their executors", eng.cfg.DrainTimeout))
	}

	// Trace emission happens after eng.mu is released: Emit runs
	// subscribers synchronously, and a subscriber reading engine state
	// must not deadlock against the migration.
	type move struct {
		exec     string
		from, to cluster.SlotID
		queued   int
	}
	var moves []move
	eng.mu.Lock()
	for _, e := range app.Topology.Executors() {
		s := next.Executors[e]
		old := eng.placement[e]
		if old == s {
			continue
		}
		le := eng.execs[e]
		eng.groups[old] = removeFromGroup(eng.groups[old], le)
		if len(eng.groups[old]) == 0 {
			delete(eng.groups, old)
		}
		eng.groups[s] = append(eng.groups[s], le)
		eng.placement[e] = s
		moves = append(moves, move{exec: e.String(), from: old, to: s, queued: queueLen(le)})
	}
	eng.assign[name] = next.Clone()
	eng.rebuildRoutesLocked()
	eng.mu.Unlock()
	moved := len(moves)
	for _, mv := range moves {
		eng.emit(trace.ExecutorMigrated, name, mv.to.String(),
			fmt.Sprintf("%s moved from %s (queue handed off, %d batches)",
				mv.exec, mv.from, mv.queued))
	}

	eng.migrations.Add(int64(moved))
	eng.applies.Add(1)
	eng.emit(trace.ReassignApplied, name, "",
		fmt.Sprintf("moved %d executors in %v; spouts resume in %v",
			moved, time.Since(applyStart).Round(time.Microsecond), eng.cfg.SpoutHaltDelay))
	return moved, nil
}

// queueLen reports an executor's current input-queue depth (0 for spouts).
func queueLen(le *liveExec) int {
	if le.in == nil {
		return 0
	}
	return len(le.in)
}

func removeFromGroup(g []*liveExec, le *liveExec) []*liveExec {
	for i, p := range g {
		if p == le {
			return append(g[:i], g[i+1:]...)
		}
	}
	return g
}
