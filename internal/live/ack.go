package live

import (
	"fmt"
	"reflect"
	"time"

	"tstorm/internal/acker"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tuple"
)

// This file ports the simulation's at-least-once machinery to wall clock:
// anchored spout emissions register with the topology's acker executors
// (reusing internal/acker's XOR Tracker), bolts ack every anchored input,
// completions flow back to the originating spout, and a per-spout timeout
// wheel fails roots whose acks stop arriving so reliable spouts replay.
//
// Threading: acker executors never block — completion notifications are
// appended to the spout's mutex-guarded event slice and drained on the
// spout's own goroutine — so the cycle "spout blocked on a full bolt
// queue → bolt blocked sending an ack → acker blocked notifying the
// spout" cannot close into a deadlock.

type ctlKind uint8

const (
	ctlInit ctlKind = iota + 1
	ctlAck
)

// ctlMsg is one control-plane message to an acker executor: a spout's
// root registration (init) or a bolt's XOR ack.
type ctlMsg struct {
	kind       ctlKind
	root       tuple.ID
	xor        tuple.ID
	spoutDense int       // init only: the originating spout
	emitAt     time.Time // init only: the root's (first-)emit instant
}

// ackEvent is a completion notification travelling acker → spout. Failures
// carry no event: the spout's own timeout wheel is the failure authority,
// so acker crashes cannot lose timeouts.
type ackEvent struct {
	root tuple.ID
	late bool
}

// livePendingRoot is a spout's record of one outstanding anchored root.
// emitAt is the msgID's FIRST emit instant — replays inherit it, so the
// completion latency of a root that timed out and replayed spans the whole
// ordeal, matching the simulation's metric.
type livePendingRoot struct {
	msgID  any
	emitAt time.Time
	failed bool
}

// liveRootEmit is one anchored spout emission buffered during NextTuple,
// registered and init-sent after the cycle's data deliveries flush.
type liveRootEmit struct {
	root    tuple.ID
	initXor tuple.ID
	msgID   any
}

// liveZombieRetention bounds how long failed pending entries are kept for
// late-completion measurement before being swept.
const liveZombieRetention = 5 * time.Minute

// ackerFor returns the acker executor responsible for a root (nil when the
// topology has none).
func (le *liveExec) ackerFor(rt *routeTable, root tuple.ID) *liveExec {
	tasks := rt.byComp[compKey{topo: le.id.Topology, comp: topology.AckerComponent}]
	if len(tasks) == 0 {
		return nil
	}
	return tasks[int(uint64(root)%uint64(len(tasks)))]
}

// sendCtl enqueues a control batch at an acker, blocking on a full queue
// with stop/die escapes. Control messages are counted as real traffic —
// acker placement generates network load exactly as in Storm — but, being
// tiny, pay no serialization or wire cost. Batches to dead ackers are
// dropped; the spout wheel recovers the affected roots.
func (eng *Engine) sendCtl(from *liveExec, to *liveExec, msgs []ctlMsg, die <-chan struct{}) bool {
	if to == nil || len(msgs) == 0 {
		return true
	}
	n := int64(len(msgs))
	rt := eng.routes.Load()
	if !rt.local[to.dense] {
		// Acker in another worker process: ship the batch as a ctl frame
		// (counted as traffic below, like the channel path — the sender
		// owns all counting).
		if !eng.remoteSend(rt.slotOf[to.dense], encodeCtlFrame(to.id, msgs)) {
			eng.dropped.Add(n)
			return true
		}
	} else {
		if to.dead.Load() {
			eng.dropped.Add(n)
			return true
		}
		select {
		case to.ctl <- msgs:
		case <-eng.stopCh:
			return false
		case <-die:
			return false
		}
	}
	srcSlot, dstSlot := rt.slotOf[from.dense], rt.slotOf[to.dense]
	hop := hopLocal
	switch {
	case srcSlot == dstSlot:
	case srcSlot.Node == dstSlot.Node:
		hop = hopInterProc
		eng.interProcSent.Add(n)
	default:
		hop = hopInterNode
		eng.interNodeSent.Add(n)
	}
	eng.tuplesSent.Add(n)
	if m := eng.edges.Load(); m != nil {
		m.counts[from.dense*m.n+to.dense].byHop[hop].Add(n)
	}
	eng.traffic.Add(from.dense, to.dense, float64(n))
	return true
}

// ctlAcc accumulates one executor's control messages per acker target
// within one batch/cycle, so a batch costs one channel send per acker.
type ctlAcc struct {
	to   *liveExec
	msgs []ctlMsg
}

func appendCtl(accs *[]ctlAcc, to *liveExec, m ctlMsg) {
	for i := range *accs {
		if (*accs)[i].to == to {
			(*accs)[i].msgs = append((*accs)[i].msgs, m)
			return
		}
	}
	*accs = append(*accs, ctlAcc{to: to, msgs: []ctlMsg{m}})
}

// ---- acker executor ----

// runAcker drives one acker executor incarnation: fold init/ack batches
// into a fresh Tracker (tracker state dies with the incarnation, as a
// Storm acker's does) and notify spouts of completions. A slow hygiene
// tick expires roots whose acks stopped arriving — e.g. dropped on a
// crashed worker — and sweeps zombies, bounding the tracker's memory; the
// expiries themselves are discarded because the spout wheel is the
// failure authority.
func (le *liveExec) runAcker(die <-chan struct{}) {
	eng := le.eng
	tracker := acker.NewTracker()
	timeout := eng.AckTimeout()
	hygiene := timeout / 4
	if hygiene < 5*time.Millisecond {
		hygiene = 5 * time.Millisecond
	}
	tk := time.NewTicker(hygiene)
	defer tk.Stop()
	for {
		select {
		case <-eng.stopCh:
			return
		case <-die:
			return
		case batch := <-le.ctl:
			t0 := time.Now()
			now := eng.simNow(t0)
			for _, m := range batch {
				var (
					c    acker.Completion
					done bool
				)
				switch m.kind {
				case ctlInit:
					c, done = tracker.Init(m.root, m.xor, m.spoutDense, eng.simNow(m.emitAt))
				case ctlAck:
					c, done = tracker.Ack(m.root, m.xor, now)
				}
				if done {
					le.notifyComplete(c)
				}
			}
			le.processed.Add(int64(len(batch)))
			le.cpuNanos.Add(int64(time.Since(t0)))
		case <-tk.C:
			t0 := time.Now()
			now := eng.simNow(t0)
			tracker.ExpireBefore(now.Add(-timeout))
			tracker.Sweep(now, timeout+liveZombieRetention)
			le.cpuNanos.Add(int64(time.Since(t0)))
		}
	}
}

// notifyComplete hands a finished root to its spout's event slice. The
// append never blocks, so the acker always drains regardless of what the
// spout is doing; a completion for a crashed spout's dense index lands in
// the slice and is discarded by the next incarnation's drain.
func (le *liveExec) notifyComplete(c acker.Completion) {
	rt := le.eng.routes.Load()
	if c.SpoutExec < 0 || c.SpoutExec >= len(rt.byDense) {
		return
	}
	sp := rt.byDense[c.SpoutExec]
	if sp.kind != spoutExec {
		return
	}
	if !rt.local[sp.dense] {
		// Spout in another worker process: ship the completion as an ack
		// frame; an undeliverable event recovers via the spout's wheel.
		le.eng.remoteSend(rt.slotOf[sp.dense],
			encodeAckFrame(sp.id, []ackEvent{{root: c.Root, late: c.Late}}))
		return
	}
	sp.ackMu.Lock()
	sp.ackEvents = append(sp.ackEvents, ackEvent{root: c.Root, late: c.Late})
	sp.ackMu.Unlock()
}

// ---- spout side ----

// comparableMsgID reports whether msgID can key the first-emit map.
func comparableMsgID(msgID any) bool {
	return msgID != nil && reflect.TypeOf(msgID).Comparable()
}

// effMaxPending resolves a spout's pending cap: its App's per-spout value
// wins, else the engine-level default. 0 = unlimited.
func (le *liveExec) effMaxPending() int {
	if mp, ok := le.app.MaxPending[le.id.Component]; ok && mp > 0 {
		return mp
	}
	return le.eng.MaxPending()
}

// drainAckEvents applies queued completion notifications: cancel the
// wheel, retire the pending entry, record completion latency from the
// first emit, and call the user spout's Ack. Runs on the spout goroutine.
func (le *liveExec) drainAckEvents() {
	le.ackMu.Lock()
	events := le.ackEvents
	le.ackEvents = nil
	le.ackMu.Unlock()
	if len(events) == 0 {
		return
	}
	eng := le.eng
	t0 := time.Now()
	for _, ev := range events {
		p := le.pendingRoots[ev.root]
		if p == nil {
			continue // completed root of a previous incarnation
		}
		le.wheel.cancel(ev.root)
		delete(le.pendingRoots, ev.root)
		if !p.failed {
			le.outstanding--
			eng.pendingRoots.Add(-1)
		}
		eng.acked.Add(1)
		if p.failed || ev.late {
			eng.lateAcked.Add(1)
		}
		eng.rootLat.Add(t0.Sub(p.emitAt).Seconds() * 1e3)
		if comparableMsgID(p.msgID) {
			delete(le.firstEmit, p.msgID)
		}
		le.spout.Ack(p.msgID)
	}
	le.cpuNanos.Add(int64(time.Since(t0)))
}

// expireDueRoots advances the timeout wheel and fails every root whose
// deadline passed: the entry stays as a zombie (a late completion is still
// measured, as in the sim), outstanding drops so MaxPending frees a slot,
// and the user spout's Fail triggers the replay.
func (le *liveExec) expireDueRoots(now time.Time) {
	due := le.wheel.expire(now)
	if len(due) == 0 {
		return
	}
	eng := le.eng
	for _, root := range due {
		p := le.pendingRoots[root]
		if p == nil || p.failed {
			continue
		}
		p.failed = true
		le.outstanding--
		eng.pendingRoots.Add(-1)
		eng.failedRoots.Add(1)
		le.spout.Fail(p.msgID)
	}
}

// sweepSpoutZombies drops failed pending entries whose late completion
// never arrived within the retention window.
func (le *liveExec) sweepSpoutZombies(now time.Time) {
	cutoff := le.eng.AckTimeout() + liveZombieRetention
	for root, p := range le.pendingRoots {
		if p.failed && now.Sub(p.emitAt) > cutoff {
			delete(le.pendingRoots, root)
		}
	}
}

// flushAnchored registers the cycle's anchored roots and sends their init
// messages, after the data deliveries were enqueued. Re-emits of an
// already-pending msgID are replays: they inherit the first-emit time and
// are counted (and traced) as such.
func (le *liveExec) flushAnchored(em *spoutEmitter, die <-chan struct{}) bool {
	if len(em.rootEmits) == 0 {
		return true
	}
	eng := le.eng
	rt := eng.routes.Load()
	now := time.Now()
	timeout := eng.AckTimeout()
	var accs []ctlAcc
	for _, re := range em.rootEmits {
		emitAt := now
		if comparableMsgID(re.msgID) {
			if first, ok := le.firstEmit[re.msgID]; ok {
				emitAt = first
				eng.replayed.Add(1)
				if eng.cfg.Trace != nil {
					eng.emit(trace.TupleReplayed, le.id.Topology, "",
						fmt.Sprintf("%s re-emitted msgID %v as root %x",
							le.id, re.msgID, uint64(re.root)))
				}
			} else {
				le.firstEmit[re.msgID] = now
			}
		}
		le.pendingRoots[re.root] = &livePendingRoot{msgID: re.msgID, emitAt: emitAt}
		le.outstanding++
		eng.pendingRoots.Add(1)
		le.wheel.add(re.root, timeout, now)
		appendCtl(&accs, le.ackerFor(rt, re.root), ctlMsg{
			kind: ctlInit, root: re.root, xor: re.initXor,
			spoutDense: le.dense, emitAt: emitAt,
		})
	}
	for i := range accs {
		if !eng.sendCtl(le, accs[i].to, accs[i].msgs, die) {
			return false
		}
	}
	return true
}
