package live

import (
	"fmt"
	"reflect"
	"time"

	"tstorm/internal/acker"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tuple"
)

// This file ports the simulation's at-least-once machinery to wall clock:
// anchored spout emissions register with the topology's acker executors
// (reusing internal/acker's XOR Tracker), bolts ack every anchored input,
// completions flow back to the originating spout, and a per-spout timeout
// wheel fails roots whose acks stop arriving so reliable spouts replay.
//
// Threading: acker executors never block — completion notifications are
// appended to the spout's mutex-guarded event slice and drained on the
// spout's own goroutine — so the cycle "spout blocked on a full bolt
// queue → bolt blocked sending an ack → acker blocked notifying the
// spout" cannot close into a deadlock.
//
// Sharding: roots hash across the topology's acker tasks (power-of-two
// counts use a mask), and senders pre-combine — successive XOR acks to
// the same root fold into one ctl message inside the sender's ctlSink
// before they ever hit a channel, which is sound because XOR folding is
// exactly what the acker would do with them anyway.

type ctlKind uint8

const (
	ctlInit ctlKind = iota + 1
	ctlAck
)

// ctlMsg is one control-plane message to an acker executor: a spout's
// root registration (init) or a bolt's XOR ack.
type ctlMsg struct {
	kind       ctlKind
	root       tuple.ID
	xor        tuple.ID
	spoutDense int       // init only: the originating spout
	emitAt     time.Time // init only: the root's (first-)emit instant
}

// ackEvent is a completion notification travelling acker → spout. at is
// the instant the acker observed the tree complete, carried with the
// event so the spout's completion-latency metric measures the protocol,
// not the spout's drain cadence. Failures carry no event: the spout's own
// timeout wheel is the failure authority, so acker crashes cannot lose
// timeouts.
type ackEvent struct {
	root tuple.ID
	late bool
	at   time.Time
}

// livePendingRoot is a spout's record of one outstanding anchored root.
// emitAt is the msgID's FIRST emit instant — replays inherit it, so the
// completion latency of a root that timed out and replayed spans the whole
// ordeal, matching the simulation's metric.
type livePendingRoot struct {
	msgID  any
	emitAt time.Time
	failed bool
}

// liveRootEmit is one anchored spout emission buffered during NextTuple,
// registered and init-sent after the cycle's data deliveries flush.
type liveRootEmit struct {
	root    tuple.ID
	initXor tuple.ID
	msgID   any
}

// liveZombieRetention bounds how long failed pending entries are kept for
// late-completion measurement before being swept.
const liveZombieRetention = 5 * time.Minute

// ackerIndex maps a root to its acker shard. The executor set is fixed
// after Submit, so le.ackers (cached at Start) is the authoritative task
// list; power-of-two shard counts — the common configuration — use a mask
// instead of the modulo.
func (le *liveExec) ackerIndex(root tuple.ID) int {
	n := len(le.ackers)
	if n&(n-1) == 0 {
		return int(uint64(root) & uint64(n-1))
	}
	return int(uint64(root) % uint64(n))
}

// ctlSink accumulates one executor's outgoing control messages between
// flushes, dense by acker shard index. rootPos remembers where each
// root's ack landed so later acks to the same root XOR-fold in place
// (sender-side combining); touched lists the shards with pending batches
// in first-touch order. Replaces the old per-message linear scan over
// accumulators, which taxed every ack O(distinct ackers).
type ctlSink struct {
	msgs    [][]ctlMsg       // per shard; nil = no pending batch
	touched []int            // shard indexes with pending batches
	rootPos map[tuple.ID]int // root → position in its shard's batch (acks only)
}

// ensure sizes the dense shard bank (idempotent; shard count is fixed).
func (s *ctlSink) ensure(n int) {
	if len(s.msgs) < n {
		s.msgs = make([][]ctlMsg, n)
	}
	if s.rootPos == nil {
		s.rootPos = make(map[tuple.ID]int)
	}
}

// addAck buffers one XOR ack, folding it into an already-buffered ack for
// the same root when possible. Callers guarantee len(le.ackers) > 0.
func (le *liveExec) addAck(root, xor tuple.ID) {
	s := &le.ctlSink
	s.ensure(len(le.ackers))
	if pos, ok := s.rootPos[root]; ok {
		ai := le.ackerIndex(root)
		s.msgs[ai][pos].xor ^= xor
		le.eng.ctlCombined.Add(1)
		return
	}
	ai := le.ackerIndex(root)
	if s.msgs[ai] == nil {
		s.msgs[ai] = le.eng.ctlPool.get()
		s.touched = append(s.touched, ai)
	}
	s.rootPos[root] = len(s.msgs[ai])
	s.msgs[ai] = append(s.msgs[ai], ctlMsg{kind: ctlAck, root: root, xor: xor})
}

// addInit buffers one root registration. Inits are never folded (each
// root registers exactly once per emission) and never share roots with
// buffered acks on the spout, so rootPos is left alone.
func (le *liveExec) addInit(root, xor tuple.ID, spoutDense int, emitAt time.Time) {
	s := &le.ctlSink
	s.ensure(len(le.ackers))
	ai := le.ackerIndex(root)
	if s.msgs[ai] == nil {
		s.msgs[ai] = le.eng.ctlPool.get()
		s.touched = append(s.touched, ai)
	}
	s.msgs[ai] = append(s.msgs[ai], ctlMsg{
		kind: ctlInit, root: root, xor: xor, spoutDense: spoutDense, emitAt: emitAt,
	})
}

// flushCtl ships every buffered control batch to its acker shard. Each
// entry is detached from the sink before sendCtl takes ownership, so an
// abort mid-flush can never double-release a batch; remaining batches
// after an abort are recycled unsent (their roots replay via the wheel).
func (le *liveExec) flushCtl(die <-chan struct{}) bool {
	s := &le.ctlSink
	if len(s.touched) == 0 {
		return true
	}
	ok := true
	for _, ai := range s.touched {
		msgs := s.msgs[ai]
		s.msgs[ai] = nil
		if msgs == nil {
			continue
		}
		if !ok {
			le.eng.ctlPool.put(msgs)
			continue
		}
		if !le.eng.sendCtl(le, le.ackers[ai], msgs, die) {
			ok = false
		}
	}
	s.touched = s.touched[:0]
	if len(s.rootPos) > 0 {
		clear(s.rootPos)
	}
	return ok
}

// dropCtl discards every buffered control batch without sending — the
// dying-bolt path: acking inputs whose downstream emissions were dropped
// would falsely complete their roots.
func (le *liveExec) dropCtl() {
	s := &le.ctlSink
	for _, ai := range s.touched {
		if m := s.msgs[ai]; m != nil {
			le.eng.ctlPool.put(m)
			s.msgs[ai] = nil
		}
	}
	s.touched = s.touched[:0]
	if len(s.rootPos) > 0 {
		clear(s.rootPos)
	}
}

// sendCtl enqueues a control batch at an acker, blocking on a full queue
// with stop/die escapes. Control messages are counted as real traffic —
// acker placement generates network load exactly as in Storm — but, being
// tiny, pay no serialization or wire cost. Batches to dead ackers are
// dropped; the spout wheel recovers the affected roots. sendCtl owns msgs
// on every outcome: a successful channel send hands it to the acker,
// every other path (remote encode, drop, abort) recycles it.
func (eng *Engine) sendCtl(from *liveExec, to *liveExec, msgs []ctlMsg, die <-chan struct{}) bool {
	if to == nil || len(msgs) == 0 {
		eng.ctlPool.put(msgs)
		return true
	}
	n := int64(len(msgs))
	rt := eng.routes.Load()
	if !rt.local[to.dense] {
		// Acker in another worker process: ship the batch as a ctl frame
		// (counted as traffic below, like the channel path — the sender
		// owns all counting). The encode copies the batch out, so it is
		// recycled here either way.
		sent := eng.remoteSend(rt.slotOf[to.dense], encodeCtlFrame(to.id, msgs))
		eng.ctlPool.put(msgs)
		if !sent {
			eng.dropped.Add(n)
			return true
		}
	} else {
		if to.dead.Load() {
			eng.dropped.Add(n)
			eng.ctlPool.put(msgs)
			return true
		}
		select {
		case to.ctl <- msgs:
		case <-eng.stopCh:
			eng.ctlPool.put(msgs)
			return false
		case <-die:
			eng.ctlPool.put(msgs)
			return false
		}
	}
	srcSlot, dstSlot := rt.slotOf[from.dense], rt.slotOf[to.dense]
	hop := hopLocal
	switch {
	case srcSlot == dstSlot:
	case srcSlot.Node == dstSlot.Node:
		hop = hopInterProc
		eng.interProcSent.Add(n)
	default:
		hop = hopInterNode
		eng.interNodeSent.Add(n)
	}
	eng.tuplesSent.Add(n)
	if m := eng.edges.Load(); m != nil {
		m.counts[from.dense*m.n+to.dense].byHop[hop].Add(n)
	}
	eng.traffic.Add(from.dense, to.dense, float64(n))
	return true
}

// ---- acker executor ----

// ackAcc batches one drain's completion events for one destination spout,
// so a drain costs one mailbox append (or one ack frame) per spout
// instead of one per completion.
type ackAcc struct {
	sp  *liveExec
	evs []ackEvent
}

// runAcker drives one acker executor incarnation: fold init/ack batches
// into a fresh Tracker (tracker state dies with the incarnation, as a
// Storm acker's does) and notify spouts of completions, batched per spout
// per drain. A slow hygiene tick expires roots whose acks stopped
// arriving — e.g. dropped on a crashed worker — and sweeps zombies,
// bounding the tracker's memory; the expiries themselves are discarded
// because the spout wheel is the failure authority.
func (le *liveExec) runAcker(die <-chan struct{}) {
	eng := le.eng
	tracker := acker.NewTracker()
	timeout := eng.AckTimeout()
	hygiene := timeout / 4
	if hygiene < 5*time.Millisecond {
		hygiene = 5 * time.Millisecond
	}
	tk := time.NewTicker(hygiene)
	defer tk.Stop()
	for {
		select {
		case <-eng.stopCh:
			return
		case <-die:
			return
		case batch := <-le.ctl:
			t0 := time.Now()
			now := eng.simNow(t0)
			rt := eng.routes.Load()
			for _, m := range batch {
				var (
					c    acker.Completion
					done bool
				)
				switch m.kind {
				case ctlInit:
					c, done = tracker.Init(m.root, m.xor, m.spoutDense, eng.simNow(m.emitAt))
				case ctlAck:
					c, done = tracker.Ack(m.root, m.xor, now)
				}
				if done {
					le.stashCompletion(rt, c, t0)
				}
			}
			le.flushCompletions(rt)
			le.processed.Add(int64(len(batch)))
			eng.ctlPool.put(batch)
			le.cpuNanos.Add(int64(time.Since(t0)))
		case <-tk.C:
			t0 := time.Now()
			now := eng.simNow(t0)
			tracker.ExpireBefore(now.Add(-timeout))
			tracker.Sweep(now, timeout+liveZombieRetention)
			le.cpuNanos.Add(int64(time.Since(t0)))
		}
	}
}

// stashCompletion records a finished root in the drain's per-spout
// accumulator, stamped with the completion instant. A completion for a
// stale dense index is discarded.
func (le *liveExec) stashCompletion(rt *routeTable, c acker.Completion, at time.Time) {
	if c.SpoutExec < 0 || c.SpoutExec >= len(rt.byDense) {
		return
	}
	sp := rt.byDense[c.SpoutExec]
	if sp.kind != spoutExec {
		return
	}
	ev := ackEvent{root: c.Root, late: c.Late, at: at}
	for i := range le.ackAccs {
		if le.ackAccs[i].sp == sp {
			le.ackAccs[i].evs = append(le.ackAccs[i].evs, ev)
			return
		}
	}
	le.ackAccs = append(le.ackAccs, ackAcc{sp: sp, evs: append(le.eng.ackPool.get(), ev)})
}

// flushCompletions hands the drain's accumulated completions to their
// spouts: one mailbox append per local spout, one ack frame per remote
// one (this used to be one TCP frame per completion). The appends never
// block, so the acker always drains regardless of what spouts are doing;
// events for a crashed spout land in its mailbox and are discarded by the
// next incarnation's drain.
func (le *liveExec) flushCompletions(rt *routeTable) {
	if len(le.ackAccs) == 0 {
		return
	}
	eng := le.eng
	for i := range le.ackAccs {
		sp, evs := le.ackAccs[i].sp, le.ackAccs[i].evs
		le.ackAccs[i] = ackAcc{}
		if !rt.local[sp.dense] {
			// Spout in another worker process: an undeliverable frame
			// recovers via the spout's wheel.
			eng.remoteSend(rt.slotOf[sp.dense], encodeAckFrame(sp.id, evs))
		} else {
			sp.ackMu.Lock()
			if sp.ackEvents == nil {
				sp.ackEvents = eng.ackPool.get()
			}
			sp.ackEvents = append(sp.ackEvents, evs...)
			sp.ackMu.Unlock()
		}
		eng.ackPool.put(evs)
	}
	le.ackAccs = le.ackAccs[:0]
}

// ---- spout side ----

// comparableMsgID reports whether msgID can key the first-emit map.
func comparableMsgID(msgID any) bool {
	return msgID != nil && reflect.TypeOf(msgID).Comparable()
}

// effMaxPending resolves a spout's pending cap: its App's per-spout value
// wins, else the engine-level default. 0 = unlimited.
func (le *liveExec) effMaxPending() int {
	if mp, ok := le.app.MaxPending[le.id.Component]; ok && mp > 0 {
		return mp
	}
	return le.eng.MaxPending()
}

// drainAckEvents applies queued completion notifications: cancel the
// wheel, retire the pending entry, record completion latency from the
// first emit to the instant the acker observed the tree complete, and
// call the user spout's Ack. Runs on the spout goroutine.
func (le *liveExec) drainAckEvents() {
	le.ackMu.Lock()
	events := le.ackEvents
	le.ackEvents = nil
	le.ackMu.Unlock()
	if len(events) == 0 {
		return
	}
	eng := le.eng
	t0 := time.Now()
	for _, ev := range events {
		p := le.pendingRoots[ev.root]
		if p == nil {
			continue // completed root of a previous incarnation
		}
		le.wheel.cancel(ev.root)
		delete(le.pendingRoots, ev.root)
		if !p.failed {
			le.outstanding--
			eng.pendingRoots.Add(-1)
		}
		eng.acked.Add(1)
		if p.failed || ev.late {
			eng.lateAcked.Add(1)
		}
		// The completion instant travels with the event; the drain instant
		// would fold the spout's drain cadence into the protocol's latency.
		at := ev.at
		if at.IsZero() {
			at = t0
		}
		eng.rootLat.Add(at.Sub(p.emitAt).Seconds() * 1e3)
		if le.spans != nil && eng.sampledRoot(ev.root) {
			le.recordAck(ev.root, at)
		}
		if comparableMsgID(p.msgID) {
			delete(le.firstEmit, p.msgID)
		}
		le.spout.Ack(p.msgID)
	}
	eng.ackPool.put(events)
	le.cpuNanos.Add(int64(time.Since(t0)))
}

// expireDueRoots advances the timeout wheel and fails every root whose
// deadline passed: the entry stays as a zombie (a late completion is still
// measured, as in the sim), outstanding drops so MaxPending frees a slot,
// and the user spout's Fail triggers the replay.
func (le *liveExec) expireDueRoots(now time.Time) {
	due := le.wheel.expire(now)
	if len(due) == 0 {
		return
	}
	eng := le.eng
	for _, root := range due {
		p := le.pendingRoots[root]
		if p == nil || p.failed {
			continue
		}
		p.failed = true
		le.outstanding--
		eng.pendingRoots.Add(-1)
		eng.failedRoots.Add(1)
		le.spout.Fail(p.msgID)
	}
}

// sweepSpoutZombies drops failed pending entries whose late completion
// never arrived within the retention window.
func (le *liveExec) sweepSpoutZombies(now time.Time) {
	cutoff := le.eng.AckTimeout() + liveZombieRetention
	for root, p := range le.pendingRoots {
		if p.failed && now.Sub(p.emitAt) > cutoff {
			delete(le.pendingRoots, root)
		}
	}
}

// flushAnchored registers the flush's anchored roots and sends their init
// messages, after the data deliveries were enqueued. Re-emits of an
// already-pending msgID are replays: they inherit the first-emit time and
// are counted (and traced) as such.
func (le *liveExec) flushAnchored(em *spoutEmitter, die <-chan struct{}) bool {
	if len(em.rootEmits) == 0 {
		return true
	}
	eng := le.eng
	now := time.Now()
	timeout := eng.AckTimeout()
	for _, re := range em.rootEmits {
		emitAt := now
		if comparableMsgID(re.msgID) {
			if first, ok := le.firstEmit[re.msgID]; ok {
				emitAt = first
				eng.replayed.Add(1)
				if eng.cfg.Trace != nil {
					eng.emit(trace.TupleReplayed, le.id.Topology, "",
						fmt.Sprintf("%s re-emitted msgID %v as root %x",
							le.id, re.msgID, uint64(re.root)))
				}
			} else {
				le.firstEmit[re.msgID] = now
			}
		}
		le.pendingRoots[re.root] = &livePendingRoot{msgID: re.msgID, emitAt: emitAt}
		le.outstanding++
		eng.pendingRoots.Add(1)
		le.wheel.add(re.root, timeout, now)
		if len(le.ackers) > 0 {
			le.addInit(re.root, re.initXor, le.dense, emitAt)
		}
		if le.spans != nil && eng.sampledRoot(re.root) {
			le.recordRoot(re.root, emitAt)
		}
	}
	return le.flushCtl(die)
}

// ackerFor returns the acker executor responsible for a root (nil when
// the topology has none). Retained for tests and tooling; the hot path
// uses the cached le.ackers + ackerIndex instead.
func (le *liveExec) ackerFor(rt *routeTable, root tuple.ID) *liveExec {
	tasks := rt.byComp[compKey{topo: le.id.Topology, comp: topology.AckerComponent}]
	if len(tasks) == 0 {
		return nil
	}
	return tasks[int(uint64(root)%uint64(len(tasks)))]
}
