package live

import (
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// monitorFixture builds a submitted (but not started) engine: the monitor
// samples counters the test sets by hand, so rates are deterministic.
func monitorFixture(t *testing.T) (*Engine, topology.ExecutorID, topology.ExecutorID) {
	t.Helper()
	b := topology.NewBuilder("mon", 1)
	b.Spout("s", 1).Output("", "v")
	b.Bolt("b", 1).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &engine.App{
		Topology: top,
		Spouts:   map[string]func() engine.Spout{"s": func() engine.Spout { return &idSpout{} }},
		Bolts:    map[string]func() engine.Bolt{"b": func() engine.Bolt { return devnullBolt{} }},
	}
	cl, err := cluster.Uniform(1, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	slot := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, slot)
	}
	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	src := topology.ExecutorID{Topology: "mon", Component: "s", Index: 0}
	dst := topology.ExecutorID{Topology: "mon", Component: "b", Index: 0}
	return eng, src, dst
}

// TestMonitorStopConcurrent is the regression test for the double-close
// race: two goroutines calling Stop simultaneously (plus a third call
// afterwards) must neither panic nor deadlock.
func TestMonitorStopConcurrent(t *testing.T) {
	eng, _, _ := monitorFixture(t)
	m := StartMonitor(eng, loaddb.New(0.5), time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Stop()
		}()
	}
	wg.Wait()
	m.Stop() // repeated Stop stays a no-op
}

// TestMonitorSampleUsesElapsedTime asserts the rate-skew fix: an
// off-cycle manual Sample must divide drained counters by the wall-clock
// time actually elapsed, not by the configured period. The period here is
// an hour; dividing by it would shrink every rate by four to five orders
// of magnitude.
func TestMonitorSampleUsesElapsedTime(t *testing.T) {
	eng, src, dst := monitorFixture(t)
	db := loaddb.New(0.5)
	m := StartMonitor(eng, db, time.Hour)
	defer m.Stop()

	const elapsed = 100 * time.Millisecond
	time.Sleep(elapsed)
	srcExec := eng.execs[src]
	srcExec.cpuNanos.Store(int64(20 * time.Millisecond)) // ~20% busy
	eng.traffic.Add(srcExec.dense, eng.execs[dst].dense, 1000)
	m.Sample()

	// EWMA from zero with α=0.5 halves the instantaneous sample.
	// Elapsed-based: ~1000/0.1s/2 = ~5000 tuples/s (the sleep only ever
	// overshoots, so use generous lower bounds); period-based would be
	// 1000/3600/2 ≈ 0.14.
	if rate := db.Traffic(src, dst); rate < 500 {
		t.Errorf("flow rate = %.3f tuples/s, want elapsed-based (≫ 1); period-based division detected", rate)
	}
	// Elapsed-based load: 0.02s/0.1s × 2000 MHz / 2 = ~200 MHz.
	if load := db.ExecutorLoad(src); load < 20 {
		t.Errorf("executor load = %.3f MHz, want elapsed-based (≫ 1); period-based division detected", load)
	}
}

// TestMonitorForgetRoundTrip asserts the monitor/DB.Forget interaction:
// after Forget, later samples must not resurrect the dead topology's keys
// through knownFlows zero-decay or load writes — the snapshot stays clean
// and HasData reports false.
func TestMonitorForgetRoundTrip(t *testing.T) {
	eng, src, dst := monitorFixture(t)
	db := loaddb.New(0.5)
	m := StartMonitor(eng, db, time.Hour)
	defer m.Stop()

	eng.traffic.Add(eng.execs[src].dense, eng.execs[dst].dense, 500)
	m.Sample()
	if !db.HasData() {
		t.Fatal("no data after first sample")
	}
	if len(db.Snapshot().Flows) == 0 {
		t.Fatal("no flows recorded")
	}

	m.Forget("mon")
	if db.HasData() {
		t.Fatal("HasData still true right after Forget")
	}

	// Two more rounds, one with fresh counter residue: nothing may come back.
	m.Sample()
	eng.execs[src].cpuNanos.Store(int64(time.Millisecond))
	eng.traffic.Add(eng.execs[src].dense, eng.execs[dst].dense, 50)
	m.Sample()
	if db.HasData() {
		t.Fatal("sampling after Forget resurrected database entries")
	}
	snap := db.Snapshot()
	if len(snap.ExecLoad) != 0 || len(snap.Flows) != 0 {
		t.Fatalf("snapshot not clean after Forget: %d loads, %d flows", len(snap.ExecLoad), len(snap.Flows))
	}
}
