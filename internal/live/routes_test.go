package live

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// checkRouteTable asserts a snapshot's internal consistency: every
// executor in a slot's group is placed on that slot, and the groups
// partition exactly the dense executor set. A violated invariant means a
// reader could observe a torn placement.
func checkRouteTable(rt *routeTable) error {
	total := 0
	for s, g := range rt.groups {
		for _, le := range g {
			total++
			if got := rt.slotOf[le.dense]; got != s {
				return fmt.Errorf("executor %v grouped on %v but placed on %v", le.id, s, got)
			}
		}
	}
	if total != len(rt.byDense) {
		return fmt.Errorf("groups hold %d executors, dense index holds %d", total, len(rt.byDense))
	}
	return nil
}

// idSpout emits bursts of sequence-numbered tuples; seq is read only
// after Engine.Stop (which waits for the goroutine).
type idSpout struct{ seq int64 }

func (s *idSpout) Open(*engine.Context) {}
func (s *idSpout) NextTuple(em engine.SpoutEmitter) {
	for i := 0; i < 32; i++ {
		em.Emit("", tuple.Values{s.seq})
		s.seq++
	}
}
func (s *idSpout) Ack(any)  {}
func (s *idSpout) Fail(any) {}

// TestRoutingSnapshotStress races full-tilt emissions against repeated
// Apply re-assignments under the race detector: the routing snapshot must
// stay internally consistent at every observable instant, and no tuple
// may be lost or duplicated across any number of placement swaps.
func TestRoutingSnapshotStress(t *testing.T) {
	b := topology.NewBuilder("stress", 2)
	b.Spout("s", 1).Output("", "id")
	b.Bolt("work", 2).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cons := &conserve{seen: make(map[int64]int)}
	spout := &idSpout{}
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return spout }},
		Bolts:         map[string]func() engine.Bolt{"work": func() engine.Bolt { return &sinkBolt{c: cons} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, n1)
	}

	cfg := testConfig()
	cfg.SpoutHaltDelay = 2 * time.Millisecond
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// Concurrent snapshot validator: loads the published table as fast as
	// it can while Apply churns underneath.
	stopCheck := make(chan struct{})
	var checkErr atomic.Pointer[string]
	var checkWG sync.WaitGroup
	checkWG.Add(1)
	go func() {
		defer checkWG.Done()
		for {
			select {
			case <-stopCheck:
				return
			default:
			}
			if err := checkRouteTable(eng.routes.Load()); err != nil {
				s := err.Error()
				checkErr.Store(&s)
				return
			}
			runtime.Gosched()
		}
	}()

	// Churn placements: move both work tasks (and on odd rounds the spout
	// too) back and forth across the emulated node boundary.
	workEx := func(i int) topology.ExecutorID {
		return topology.ExecutorID{Topology: "stress", Component: "work", Index: i}
	}
	spoutEx := topology.ExecutorID{Topology: "stress", Component: "s", Index: 0}
	for round := 0; round < 12; round++ {
		next := initial.Clone()
		next.ID = int64(round + 1)
		if round%2 == 0 {
			next.Assign(workEx(0), n2)
			next.Assign(workEx(1), n2)
		}
		if round%4 == 1 {
			next.Assign(spoutEx, n2)
		}
		if _, err := eng.Apply("stress", next); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // let traffic flow between swaps
	}
	close(stopCheck)
	checkWG.Wait()
	if s := checkErr.Load(); s != nil {
		t.Fatalf("inconsistent routing snapshot observed during churn: %s", *s)
	}

	eng.HaltSpouts()
	if !eng.Quiesce(5 * time.Second) {
		t.Fatal("engine did not quiesce")
	}
	time.Sleep(10 * time.Millisecond)
	if !eng.Quiesce(5 * time.Second) {
		t.Fatal("engine did not re-quiesce")
	}
	eng.Stop()

	emitted := spout.seq
	if emitted == 0 {
		t.Fatal("spout emitted nothing")
	}
	tot := eng.Totals()
	if tot.RootsEmitted != emitted {
		t.Errorf("engine counted %d roots, spout emitted %d", tot.RootsEmitted, emitted)
	}
	cons.mu.Lock()
	defer cons.mu.Unlock()
	if int64(len(cons.seen)) != emitted {
		t.Errorf("sink saw %d distinct ids, spout emitted %d (lost %d)",
			len(cons.seen), emitted, emitted-int64(len(cons.seen)))
	}
	for id, c := range cons.seen {
		if c != 1 {
			t.Fatalf("id %d delivered %d times, want exactly once", id, c)
		}
	}
}

// TestRouteObservesSinglePlacement drives route() by hand while Apply
// flips both broadcast targets between nodes: because the two targets
// always move together, every single emission must classify both hops
// identically — one emission never mixes the old and new placement.
func TestRouteObservesSinglePlacement(t *testing.T) {
	b := topology.NewBuilder("torn", 1)
	b.Spout("s", 1).Output("", "v")
	b.Bolt("bcast", 2).All("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &engine.App{
		Topology: top,
		Spouts:   map[string]func() engine.Spout{"s": func() engine.Spout { return &idSpout{} }},
		Bolts:    map[string]func() engine.Bolt{"bcast": func() engine.Bolt { return devnullBolt{} }},
	}
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	bc := func(i int) topology.ExecutorID {
		return topology.ExecutorID{Topology: "torn", Component: "bcast", Index: i}
	}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, n1)
	}

	cfg := testConfig()
	cfg.SpoutHaltDelay = time.Millisecond
	cfg.DrainTimeout = 10 * time.Millisecond
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	// The engine is never started: route() is exercised directly on the
	// spout executor while Apply republishes snapshots underneath.
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	le := eng.execs[topology.ExecutorID{Topology: "torn", Component: "s", Index: 0}]

	done := make(chan struct{})
	var applyWG sync.WaitGroup
	applyWG.Add(1)
	go func() {
		defer applyWG.Done()
		for round := 0; ; round++ {
			select {
			case <-done:
				return
			default:
			}
			next := initial.Clone()
			next.ID = int64(round + 1)
			if round%2 == 0 {
				next.Assign(bc(0), n2)
				next.Assign(bc(1), n2)
			}
			if _, err := eng.Apply("torn", next); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	vals := tuple.Values{int64(7)}
	for i := 0; i < 5000; i++ {
		var out []delivery
		if n, _ := le.route(&out, "", vals, time.Time{}, 0); n != 2 {
			t.Fatalf("route delivered %d transfers, want 2", n)
		}
		for _, d := range out {
			if d.hop != out[0].hop {
				t.Fatalf("emission %d mixed placements: hops %v and %v in one routing pass",
					i, out[0].hop, d.hop)
			}
		}
	}
	close(done)
	applyWG.Wait()
	eng.Stop()
}

// TestEmissionsFlowWhileEngineLockHeld pins the no-lock property of the
// emission hot path directly: with eng.mu held exclusively for the whole
// window, spouts and bolts must keep moving tuples, because routing reads
// only the atomic snapshot.
func TestEmissionsFlowWhileEngineLockHeld(t *testing.T) {
	b := topology.NewBuilder("locked", 1)
	b.Spout("s", 1).Output("", "v")
	b.Bolt("b", 2).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	acked := new(atomic.Int64)
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &tickSpout{acked: acked} }},
		Bolts:         map[string]func() engine.Bolt{"b": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, n1)
	}
	// One bolt remote, so the costed inter-node path runs lock-free too.
	initial.Assign(topology.ExecutorID{Topology: "locked", Component: "b", Index: 1}, n2)

	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor(t, 5*time.Second, "initial traffic", func() bool {
		return eng.Totals().SinkProcessed > 100
	})

	eng.mu.Lock()
	before := eng.Totals().SinkProcessed
	time.Sleep(150 * time.Millisecond)
	during := eng.Totals().SinkProcessed - before
	eng.mu.Unlock()
	if during == 0 {
		t.Fatal("no tuples flowed while the engine lock was held: emission path still acquires eng.mu")
	}
}

// TestExecutorByDenseOutOfRange asserts the dense-index guard: unknown
// indexes return the zero identity instead of panicking.
func TestExecutorByDenseOutOfRange(t *testing.T) {
	cl, err := cluster.Uniform(1, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, 0, 99} {
		if got := eng.ExecutorByDense(i); got != (topology.ExecutorID{}) {
			t.Errorf("ExecutorByDense(%d) = %v, want zero", i, got)
		}
	}
}

// TestStopCancelsPendingResume asserts Engine.Stop cancels the retained
// spout-resume timer: after Stop, a pending resumeSpoutsAfter must never
// fire.
func TestStopCancelsPendingResume(t *testing.T) {
	b := topology.NewBuilder("timer", 1)
	b.Spout("s", 1).Output("", "v")
	b.Bolt("b", 1).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &idSpout{} }},
		Bolts:         map[string]func() engine.Bolt{"b": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	cl, err := cluster.Uniform(1, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	slot := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, slot)
	}
	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}

	eng.HaltSpouts()
	eng.resumeSpoutsAfter(30 * time.Millisecond)
	eng.Stop()
	time.Sleep(80 * time.Millisecond)
	if !eng.spoutsHalted.Load() {
		t.Fatal("resume timer fired after Stop: timer leaked past engine shutdown")
	}
}
