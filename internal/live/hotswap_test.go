package live

import (
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// TestHotSwapMidRunReschedulesCleanly swaps the scheduling algorithm by
// name between reschedule rounds on a running live engine — tstorm, then
// rstorm, then the default round-robin — and checks each swapped-in
// contender produces a clean full reschedule (every executor placed,
// apply counted) with tuple conservation intact across all migrations.
// The registry seeding (RegisterBuiltins in StartGenerator) is what makes
// the by-name swap possible without constructing algorithm instances.
func TestHotSwapMidRunReschedulesCleanly(t *testing.T) {
	b := topology.NewBuilder("swap", 2)
	b.Spout("src", 2).Output("", "id")
	b.Bolt("work", 2).Direct("src")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cons := &conserve{seen: make(map[int64]int)}
	var spoutMu sync.Mutex
	var spouts []*seqSpout
	app := &engine.App{
		Topology: top,
		Spouts: map[string]func() engine.Spout{"src": func() engine.Spout {
			s := &seqSpout{}
			spoutMu.Lock()
			spouts = append(spouts, s)
			spoutMu.Unlock()
			return s
		}},
		Bolts:         map[string]func() engine.Bolt{"work": func() engine.Bolt { return &sinkBolt{c: cons} }},
		SpoutInterval: map[string]time.Duration{"src": time.Millisecond},
	}

	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := func(comp string, i int) topology.ExecutorID {
		return topology.ExecutorID{Topology: "swap", Component: comp, Index: i}
	}
	n1 := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	// Worst-case placement, as in the integration test: each spout's only
	// consumer sits on the other node, so every contender has something
	// to improve.
	initial := cluster.NewAssignment(0)
	initial.Assign(ex("src", 0), n1)
	initial.Assign(ex("work", 1), n1)
	initial.Assign(ex("src", 1), n2)
	initial.Assign(ex("work", 0), n2)

	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	db := loaddb.New(0.5)
	mon := StartMonitor(eng, db, 50*time.Millisecond)
	defer mon.Stop()
	gen, err := StartGenerator(eng, db, GeneratorConfig{
		Period:               time.Hour, // manual Reschedule only
		CapacityFraction:     0.9,
		ImprovementThreshold: 0.10,
	}, core.NewTrafficAware(1.0))
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Stop()

	if err := gen.SwapTo("no-such-algorithm"); err == nil {
		t.Fatal("SwapTo accepted an unregistered name")
	}

	waitFor(t, 15*time.Second, "monitor windows and initial traffic", func() bool {
		return mon.Samples() >= 3 && eng.Totals().SinkProcessed > 1000
	})

	// Three reschedule rounds, each under a different algorithm swapped in
	// by name mid-run. Round-robin is guaranteed to differ from tstorm's
	// co-located schedule, so every round applies.
	checkComplete := func(round string) {
		t.Helper()
		cur, ok := eng.CurrentAssignment("swap")
		if !ok {
			t.Fatalf("%s: assignment vanished", round)
		}
		if len(cur.Executors) != top.NumExecutors() {
			t.Fatalf("%s: %d of %d executors placed", round, len(cur.Executors), top.NumExecutors())
		}
	}
	gen.Reschedule() // round 1: tstorm (the initial algorithm)
	checkComplete("tstorm round")

	for _, name := range []string{"rstorm", "default"} {
		if err := gen.SwapTo(name); err != nil {
			t.Fatalf("SwapTo(%q): %v", name, err)
		}
		if got := gen.Algorithm().Name(); got != name {
			t.Fatalf("active algorithm %q after SwapTo(%q)", got, name)
		}
		// Let fresh load windows land between rounds, as in production.
		pre := mon.Samples()
		waitFor(t, 15*time.Second, "a monitor window after the swap", func() bool {
			return mon.Samples() > pre
		})
		gen.Reschedule()
		checkComplete(name + " round")
	}
	tot := eng.Totals()
	if tot.Applies < 2 {
		t.Fatalf("applies = %d across three contender rounds, want ≥2", tot.Applies)
	}

	waitFor(t, 15*time.Second, "post-swap traffic", func() bool {
		return eng.Totals().SinkProcessed > tot.SinkProcessed+1000
	})

	// Drain completely so the conservation count is exact.
	eng.HaltSpouts()
	if !eng.Quiesce(2 * time.Second) {
		t.Fatal("engine did not quiesce")
	}
	time.Sleep(20 * time.Millisecond)
	if !eng.Quiesce(2 * time.Second) {
		t.Fatal("engine did not re-quiesce")
	}
	final := eng.Totals()
	eng.Stop()

	// Conservation across every swap-triggered migration: each emitted ID
	// reached the sink exactly once.
	var emitted int64
	spoutMu.Lock()
	for _, s := range spouts {
		emitted += s.seq
	}
	spoutMu.Unlock()
	if emitted == 0 {
		t.Fatal("spouts emitted nothing")
	}
	if final.RootsEmitted != emitted {
		t.Errorf("engine counted %d roots, spouts emitted %d", final.RootsEmitted, emitted)
	}
	cons.mu.Lock()
	defer cons.mu.Unlock()
	if int64(len(cons.seen)) != emitted {
		t.Errorf("sink saw %d distinct ids, spouts emitted %d (lost %d)",
			len(cons.seen), emitted, emitted-int64(len(cons.seen)))
	}
	for id, c := range cons.seen {
		if c != 1 {
			t.Fatalf("id %d delivered %d times, want exactly once", id, c)
		}
	}
}
