// Package live is the wall-clock execution backend: it runs a
// topology.Topology on real goroutines — one goroutine per executor with a
// bounded-channel input queue — grouped into worker processes that map to
// cluster.SlotIDs on emulated nodes, all inside one OS process.
//
// The point of the package is that the *unchanged* scheduling brain
// (internal/scheduler algorithms, internal/core's Algorithm 1) schedules
// real concurrent work: a live Monitor samples per-executor CPU time and
// tuple counts over real wall-clock windows into the same
// internal/loaddb EWMA database the simulated monitors use, a live
// Generator feeds snapshots to any scheduler.Algorithm through the shared
// scheduler.NewInput path, and Engine.Apply migrates executors between
// worker groups with the paper's smoothing (spout halt + drain, §IV-D).
//
// Node boundaries are emulated by cost, not by address spaces: a tuple
// moving between two executors of the same worker (slot) is passed by
// reference; between different slots it is serialized and deserialized
// (real CPU work, as between Storm worker JVMs); between different nodes
// it additionally pays per-byte copy work standing in for the kernel/NIC
// path. Traffic-aware placement therefore measurably raises real
// tuples/s: every co-located chatty pair is serialization work removed.
//
// Topologies built with SetAckers(n > 0) run anchored, wall-clock
// at-least-once: EmitWithID stamps a root ID, every hop carries an XOR
// edge ID to the topology's acker executors (reusing internal/acker's
// Tracker), completions call the spout's Ack, and a per-spout timeout
// wheel fails roots whose acks stop arriving — reliable spouts then
// replay, and the engine keeps the first-emit time across replays so
// completion latency matches the simulation's metric. MaxPending bounds a
// spout's outstanding roots so replay storms backpressure instead of
// overflowing queues. Topologies without ackers keep the old unanchored
// behaviour: Ack immediately after the emit cycle flushes, no replay.
//
// The engine also injects and survives failures: CrashWorker/FailNode
// kill executor goroutines for real and drop their queued batches, a
// Supervisor restarts crashed workers with exponential backoff, and the
// Monitor stops reporting nodes that are down so Algorithm 1 reschedules
// around them — in-flight roots lost in the crash time out and replay
// through the new placement.
package live

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/acker"
	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/logx"
	"tstorm/internal/metrics"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tracing"
	"tstorm/internal/tuple"
)

// Config holds the live engine's knobs. Durations shrink freely for tests.
type Config struct {
	// Seed drives the per-executor random sources.
	Seed uint64
	// QueueCapacity bounds each executor's input queue (default 1024).
	// The queue holds per-cycle delivery batches (all tuples one emit
	// cycle routed to that executor), so capacity is in batches, not
	// tuples. Senders block when a queue is full — the backpressure path.
	QueueCapacity int
	// SpoutHaltDelay is how long spouts stay halted after a re-assignment
	// is applied, so queues settle before new roots flow (paper: 10 s;
	// default here 250 ms — live migration needs no worker restarts).
	SpoutHaltDelay time.Duration
	// DrainTimeout bounds how long Apply waits for in-flight tuples to
	// drain before moving executors anyway (their queues move with them).
	DrainTimeout time.Duration
	// InterNodeCopies is how many extra passes over the serialized bytes
	// an inter-node hop costs, standing in for kernel/NIC copies and
	// framing (default 4). Same-node inter-slot hops pay serialization
	// only.
	InterNodeCopies int
	// WireCost is the fixed busy-CPU time an inter-node hop additionally
	// charges the sending executor per tuple — the per-message kernel/
	// network-stack path (syscall, TCP/IP, interrupts) that co-location
	// eliminates (default 3µs; negative disables it). It burns real time
	// on the sender's goroutine, so it reduces that executor's serial
	// capacity exactly as the real cost would.
	WireCost time.Duration
	// RefMHz expresses measured CPU seconds as the load database's MHz
	// unit: load = cpuSeconds/window × RefMHz (default 2000, the paper's
	// core speed).
	RefMHz float64
	// AckTimeout is how long an anchored root may stay un-acked before the
	// spout's timeout wheel fails it (default acker.DefaultTimeout, Storm's
	// 30 s). Ignored by topologies without ackers.
	AckTimeout time.Duration
	// MaxPending caps each spout's outstanding (un-acked) roots when the
	// spout's App does not set its own App.MaxPending entry; 0 = unlimited.
	// Only anchored spouts are gated.
	MaxPending int
	// Trace, when non-nil, receives wall-clock runtime events (apply,
	// spout halt/resume, per-executor migration, drain outcomes); the
	// monitor additionally reports sampling rounds and overload
	// detections through it. Nil disables tracing.
	Trace *trace.Recorder
	// TraceSampling samples 1-in-rate anchored tuple trees for span-level
	// tracing (tracing.go); must be a power of two, 0 disables. The
	// check is one AND against the root ID, so unsampled tuples stay on
	// the zero-alloc emit path.
	TraceSampling int
	// LocalSlots, when non-empty, restricts execution to executors placed
	// on the named slots: everything else becomes a routing proxy whose
	// transfers leave through Remote as encoded frames. This is how a
	// distributed worker process runs its share of a topology with the
	// full engine — all processes submit identical topologies in identical
	// order, so dense executor indexes agree fleet-wide. Empty (the
	// default) means every slot is local: the classic in-process engine.
	LocalSlots []cluster.SlotID
	// Remote carries frames to the worker processes owning non-local
	// slots. Required when LocalSlots is set.
	Remote RemoteSink
	// Log receives structured operational lines (supervisor restarts,
	// crash handling). Nil keeps the engine silent — trace events remain
	// the primary record; set a logx logger to mirror them onto stderr
	// in the same machine-parseable shape dist workers use.
	Log *logx.Logger
}

// DefaultConfig returns the default live configuration.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		QueueCapacity:   1024,
		SpoutHaltDelay:  250 * time.Millisecond,
		DrainTimeout:    5 * time.Second,
		InterNodeCopies: 4,
		WireCost:        3 * time.Microsecond,
		RefMHz:          2000,
		AckTimeout:      acker.DefaultTimeout,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = d.QueueCapacity
	}
	if c.SpoutHaltDelay <= 0 {
		c.SpoutHaltDelay = d.SpoutHaltDelay
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	if c.InterNodeCopies < 0 {
		c.InterNodeCopies = d.InterNodeCopies
	}
	if c.WireCost == 0 {
		c.WireCost = d.WireCost
	} else if c.WireCost < 0 {
		c.WireCost = 0
	}
	if c.RefMHz <= 0 {
		c.RefMHz = d.RefMHz
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = d.AckTimeout
	}
	if c.MaxPending < 0 {
		c.MaxPending = 0
	}
}

// Engine executes submitted topologies on goroutines, wall-clock.
type Engine struct {
	cfg Config
	cl  *cluster.Cluster

	mu     sync.RWMutex // guards apps, assign, placement, groups
	apps   map[string]*engine.App
	assign map[string]*cluster.Assignment
	execs  map[topology.ExecutorID]*liveExec
	// placement mirrors assign flattened across topologies — the
	// authoritative copy Submit/Apply mutate under mu. The router never
	// reads it: emitters resolve targets from the routes snapshot below.
	placement map[topology.ExecutorID]cluster.SlotID
	// groups lists the executors resident in each active slot (worker
	// process) — the locality set of LocalOrShuffleGrouping. Like
	// placement, it is bookkeeping; routing reads the snapshot's copy.
	groups map[cluster.SlotID][]*liveExec
	// downNodes marks nodes taken out by FailNode (guarded by mu). Dead
	// executors placed there are not restarted in place; the monitor stops
	// reporting the node and the generator fences it off Algorithm 1's
	// candidate set until RecoverNode.
	downNodes map[cluster.NodeID]bool
	// localSlots restricts execution to the named slots (nil = all local);
	// see Config.LocalSlots.
	localSlots map[cluster.SlotID]bool

	denseRev []topology.ExecutorID

	// routes is the published copy-on-write routing snapshot: rebuilt by
	// Submit/Apply via rebuildRoutesLocked, read lock-free on every
	// emission. See routes.go.
	routes atomic.Pointer[routeTable]

	started atomic.Bool
	stopped atomic.Bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	// epoch is the wall-clock instant Start ran; the acker Trackers keep
	// sim.Time internally, so wall instants convert as now.Sub(epoch).
	epoch time.Time

	// ackTimeout (nanoseconds) and maxPending hold the effective reliability
	// knobs. They start from Config but live in atomics so the facade's
	// options can adjust them even around Start without racing readers.
	ackTimeout atomic.Int64
	maxPending atomic.Int64

	// Spout halting (§IV-D smoothing). haltGen invalidates stale resume
	// timers when re-assignments overlap; resumeTimer retains the latest
	// pending resume so Stop can cancel it instead of leaking it.
	spoutsHalted atomic.Bool
	haltGen      atomic.Int64
	timerMu      sync.Mutex
	resumeTimer  *time.Timer

	// applyMu serializes re-assignments.
	applyMu sync.Mutex

	// pending counts tuples enqueued but not yet fully processed
	// (including their downstream emissions); 0 with halted spouts means
	// the topology is quiescent.
	pending atomic.Int64

	traffic *metrics.SyncTrafficMatrix
	latency *metrics.SyncHistogram

	// edges holds one lifetime tuple counter per (from, to, boundary
	// class) triple. Dense indexes are fixed once Start allocates the
	// matrix (Submit must precede Start), so deliver bumps a counter with
	// one atomic add and no lock — the per-edge metrics the exposition
	// endpoint serves. Published atomically so scrapers may read before
	// Start.
	edges atomic.Pointer[edgeMatrix]

	// Lifetime counters.
	rootsEmitted  atomic.Int64 // spout emit cycles' root tuples
	tuplesSent    atomic.Int64 // executor-to-executor transfers
	interNodeSent atomic.Int64 // transfers crossing an emulated node boundary
	interProcSent atomic.Int64 // transfers crossing slots on one node
	processed     atomic.Int64 // tuples processed by bolts
	sinkProcessed atomic.Int64 // tuples processed by terminal bolts
	migrations    atomic.Int64 // executors moved by Apply
	applies       atomic.Int64 // re-assignments applied

	// Reliability counters (anchored topologies only).
	acked          atomic.Int64 // roots fully processed and acked to their spout
	lateAcked      atomic.Int64 // of those, completions that arrived after a timeout
	failedRoots    atomic.Int64 // roots failed by a spout's timeout wheel
	replayed       atomic.Int64 // re-emits of an already-seen spout msgID
	pendingRoots   atomic.Int64 // outstanding (un-acked, un-failed) roots right now
	dropped        atomic.Int64 // tuples dropped at or drained from dead executors
	workerCrashes  atomic.Int64 // executor goroutines killed by CrashWorker/FailNode
	workerRestarts atomic.Int64 // supervisor restarts

	// rootLat is the root completion-latency histogram (first emit → ack,
	// milliseconds) — the live analogue of the sim's completion metric.
	// First-emit time survives replays, so a root that timed out, replayed
	// and then completed reports its full latency, as in Fig. 3.
	rootLat *metrics.SyncHistogram

	// ctlCombined counts XOR acks folded into an already-buffered ack for
	// the same root before reaching a channel (sender-side combining).
	ctlCombined atomic.Int64

	// Tuple tracing (tracing.go). traceRate/traceMask are set before Start
	// and immutable after; collector assembles sampled trees in-process
	// (nil for distributed workers, which export spans via DrainSpans);
	// tracedRoots counts sampled root registrations, replays included.
	traceRate   int
	traceMask   uint64
	collector   *tracing.Collector
	tracedRoots atomic.Int64

	// Batch pools for the zero-alloc emission path (pool.go): delivery
	// batches, acker control batches, completion-event batches, and codec
	// encode buffers.
	msgPool batchPool[liveMsg]
	ctlPool batchPool[ctlMsg]
	ackPool batchPool[ackEvent]
	encPool batchPool[byte]
}

// NewEngine returns a live engine over the given emulated cluster.
func NewEngine(cfg Config, cl *cluster.Cluster) (*Engine, error) {
	if cl == nil {
		return nil, fmt.Errorf("live: nil cluster")
	}
	cfg.fillDefaults()
	eng := &Engine{
		cfg:       cfg,
		cl:        cl,
		apps:      make(map[string]*engine.App),
		assign:    make(map[string]*cluster.Assignment),
		execs:     make(map[topology.ExecutorID]*liveExec),
		placement: make(map[topology.ExecutorID]cluster.SlotID),
		groups:    make(map[cluster.SlotID][]*liveExec),
		downNodes: make(map[cluster.NodeID]bool),
		stopCh:    make(chan struct{}),
		traffic:   metrics.NewSyncTrafficMatrix(),
		latency:   metrics.NewSyncLatencyHistogram(),
		rootLat:   metrics.NewSyncLatencyHistogram(),
	}
	eng.encPool.newCap = encBufCap
	if len(cfg.LocalSlots) > 0 {
		if cfg.Remote == nil {
			return nil, fmt.Errorf("live: LocalSlots requires a Remote sink")
		}
		eng.localSlots = make(map[cluster.SlotID]bool, len(cfg.LocalSlots))
		for _, s := range cfg.LocalSlots {
			if _, ok := cl.Node(s.Node); !ok {
				return nil, fmt.Errorf("live: local slot %s on unknown node", s)
			}
			eng.localSlots[s] = true
		}
	}
	eng.ackTimeout.Store(int64(cfg.AckTimeout))
	eng.maxPending.Store(int64(cfg.MaxPending))
	eng.routes.Store(emptyRouteTable())
	if cfg.TraceSampling != 0 {
		if err := eng.SetTraceSampling(cfg.TraceSampling); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// isLocalSlot reports whether executors on the slot execute in this
// process (always true for the classic in-process engine).
func (eng *Engine) isLocalSlot(s cluster.SlotID) bool {
	return eng.localSlots == nil || eng.localSlots[s]
}

// Local reports whether an executor currently executes in this process.
func (eng *Engine) Local(e topology.ExecutorID) bool {
	rt := eng.routes.Load()
	le := rt.executor(e.Topology, e.Component, e.Index)
	return le != nil && rt.local[le.dense]
}

// AckTimeout returns the effective root timeout.
func (eng *Engine) AckTimeout() time.Duration {
	return time.Duration(eng.ackTimeout.Load())
}

// SetAckTimeout adjusts the root timeout. Roots already registered with
// the old deadline keep it; new roots use the new value.
func (eng *Engine) SetAckTimeout(d time.Duration) {
	if d > 0 {
		eng.ackTimeout.Store(int64(d))
	}
}

// MaxPending returns the engine-level default spout pending cap.
func (eng *Engine) MaxPending() int { return int(eng.maxPending.Load()) }

// SetMaxPending adjusts the engine-level default spout pending cap
// (per-spout App.MaxPending entries still win). 0 = unlimited.
func (eng *Engine) SetMaxPending(n int) {
	if n >= 0 {
		eng.maxPending.Store(int64(n))
	}
}

// Config returns the engine's configuration.
func (eng *Engine) Config() Config { return eng.cfg }

// Cluster returns the emulated cluster.
func (eng *Engine) Cluster() *cluster.Cluster { return eng.cl }

// Submit registers an app with its initial assignment. All executors of
// the topology must be placed on existing slots. Submit must precede
// Start.
func (eng *Engine) Submit(app *engine.App, initial *cluster.Assignment) error {
	if eng.started.Load() {
		return fmt.Errorf("live: submit after start")
	}
	if err := app.Validate(); err != nil {
		return err
	}
	if initial == nil {
		return fmt.Errorf("live: nil initial assignment")
	}
	name := app.Topology.Name()
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if _, dup := eng.apps[name]; dup {
		return fmt.Errorf("live: topology %q already submitted", name)
	}
	execs := app.Topology.Executors()
	for _, e := range execs {
		s, ok := initial.Slot(e)
		if !ok {
			return fmt.Errorf("live: executor %v has no slot in initial assignment", e)
		}
		if _, ok := eng.cl.Node(s.Node); !ok {
			return fmt.Errorf("live: executor %v assigned to unknown node %q", e, s.Node)
		}
	}
	eng.apps[name] = app
	eng.assign[name] = initial.Clone()
	for _, e := range execs {
		le := eng.newExec(app, e)
		eng.execs[e] = le
		s := initial.Executors[e]
		eng.placement[e] = s
		eng.groups[s] = append(eng.groups[s], le)
		if !eng.isLocalSlot(s) {
			le.state = stateRemote
		}
	}
	eng.rebuildRoutesLocked()
	return nil
}

// newExec builds one executor (goroutine not yet started). Caller holds
// eng.mu.
func (eng *Engine) newExec(app *engine.App, id topology.ExecutorID) *liveExec {
	comp, _ := app.Topology.Component(id.Component)
	le := &liveExec{
		eng:        eng,
		id:         id,
		dense:      len(eng.denseRev),
		comp:       comp,
		app:        app,
		outStreams: buildOutStreams(app.Topology, comp),
		rand: rand.New(rand.NewPCG(eng.cfg.Seed,
			uint64(len(eng.denseRev))+1)),
	}
	eng.denseRev = append(eng.denseRev, id)
	le.die = make(chan struct{})
	le.gone = make(chan struct{})
	switch {
	case comp.Kind == topology.SpoutKind:
		le.kind = spoutExec
		le.spout = app.Spouts[id.Component]()
		le.interval = spoutIntervalFor(app, id.Component)
		if app.Topology.Ackers() > 0 {
			le.anchored = true
			le.pendingRoots = make(map[tuple.ID]*livePendingRoot)
			le.firstEmit = make(map[any]time.Time)
		}
	case id.Component == topology.AckerComponent:
		le.kind = ackerExec
		le.ctl = make(chan []ctlMsg, eng.cfg.QueueCapacity)
	default:
		le.kind = boltExec
		le.bolt = app.Bolts[id.Component]()
		le.in = make(chan []liveMsg, eng.cfg.QueueCapacity)
		le.terminal = isTerminal(app.Topology, comp)
		le.procLat = metrics.NewProcLatencyHistogram()
	}
	return le
}

func spoutIntervalFor(app *engine.App, component string) time.Duration {
	if d, ok := app.SpoutInterval[component]; ok && d > 0 {
		return d
	}
	return engine.DefaultSpoutInterval
}

// isTerminal reports whether a component is a sink: it declares no output
// streams, or no bolt subscribes to any of them. Terminal bolts record
// end-to-end latency.
func isTerminal(top *topology.Topology, c *topology.Component) bool {
	for stream := range c.Outputs {
		if len(top.Consumers(c.Name, stream)) > 0 {
			return false
		}
	}
	return true
}

// Start launches every executor goroutine. Spouts begin emitting
// immediately.
func (eng *Engine) Start() error {
	if !eng.started.CompareAndSwap(false, true) {
		return fmt.Errorf("live: already started")
	}
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	if len(eng.apps) == 0 {
		eng.started.Store(false)
		return fmt.Errorf("live: nothing submitted")
	}
	rt := eng.routes.Load()
	for _, le := range eng.execs {
		// Cache the topology's acker task list: the executor set never
		// changes after Submit, so these pointers are stable for the
		// engine's lifetime and the ack path never walks byComp again.
		le.ackers = rt.byComp[compKey{topo: le.id.Topology, comp: topology.AckerComponent}]
		le.ctx = &engine.Context{
			Topology:    le.id.Topology,
			Component:   le.id.Component,
			Index:       le.id.Index,
			Parallelism: le.comp.Parallelism,
			Rand:        le.rand,
		}
		if le.state == stateRemote {
			// Routing proxy: context built (a later migration may promote it
			// to local), user code neither instantiated nor opened here.
			continue
		}
		switch le.kind {
		case spoutExec:
			le.spout.Open(le.ctx)
		case boltExec:
			le.bolt.Prepare(le.ctx)
		}
	}
	n := len(eng.denseRev)
	eng.edges.Store(&edgeMatrix{n: n, counts: make([]edgeCounter, n*n)})
	eng.epoch = time.Now()
	if eng.traceRate != 0 {
		// Every spout and bolt gets a ring — including remote proxies,
		// which a later migration may promote to local execution.
		for _, le := range eng.execs {
			if le.kind != ackerExec {
				le.spans = tracing.NewRing(spanRingCap)
			}
		}
		if eng.collector != nil {
			eng.wg.Add(1)
			go eng.collectSpans()
		}
	}
	for _, le := range eng.execs {
		if le.state == stateRemote {
			continue
		}
		eng.wg.Add(1)
		go le.run(le.die, le.gone)
	}
	return nil
}

// Pending reports how many tuples are queued or being processed in this
// process right now — the distributed driver polls every worker's value
// to quiesce the fleet before a migration.
func (eng *Engine) Pending() int64 { return eng.pending.Load() }

// Done is closed when the engine stops; the generator and monitor loops
// (and the dist layer's pollers) select on it.
func (eng *Engine) Done() <-chan struct{} { return eng.stopCh }

// simNow converts a wall instant to the engine's sim.Time axis (the unit
// the acker Trackers keep internally).
func (eng *Engine) simNow(t time.Time) sim.Time {
	return sim.Time(t.Sub(eng.epoch))
}

// edgeMatrix is the engine's dense per-edge counter matrix, indexed
// from×n+to.
type edgeMatrix struct {
	n      int
	counts []edgeCounter
}

// edgeCounter is one directed executor pair's lifetime tuple counts, split
// by the boundary class each transfer crossed.
type edgeCounter struct {
	byHop [3]atomic.Int64 // indexed by hopKind
}

// Trace returns the engine's trace recorder (nil when tracing is off).
func (eng *Engine) Trace() *trace.Recorder { return eng.cfg.Trace }

// emit records a wall-clock trace event if a recorder is attached.
func (eng *Engine) emit(kind trace.Kind, topo, where, detail string) {
	if eng.cfg.Trace == nil {
		return
	}
	eng.cfg.Trace.Emit(trace.WallEvent(kind, topo, where, detail))
}

// Stop halts all executor goroutines and waits for them to exit. It is
// idempotent.
func (eng *Engine) Stop() {
	if !eng.stopped.CompareAndSwap(false, true) {
		return
	}
	close(eng.stopCh)
	eng.wg.Wait()
	// Cancel any pending spout-resume timer so short-lived engines do not
	// leak its goroutine past Stop.
	eng.timerMu.Lock()
	if eng.resumeTimer != nil {
		eng.resumeTimer.Stop()
		eng.resumeTimer = nil
	}
	eng.timerMu.Unlock()
}

// HaltSpouts stops spouts from emitting new roots until ResumeSpouts.
func (eng *Engine) HaltSpouts() {
	eng.haltGen.Add(1)
	eng.spoutsHalted.Store(true)
	eng.emit(trace.SpoutsHalted, "", "", "no new roots until resume")
}

// ResumeSpouts lets spouts emit again.
func (eng *Engine) ResumeSpouts() {
	eng.haltGen.Add(1)
	eng.spoutsHalted.Store(false)
	eng.emit(trace.SpoutsResumed, "", "", "")
}

// resumeSpoutsAfter re-enables spouts after d unless another halt happened
// in between. The timer is retained (replacing, and stopping, any earlier
// pending resume — made stale by the haltGen bump anyway) so Engine.Stop
// can cancel it.
func (eng *Engine) resumeSpoutsAfter(d time.Duration) {
	gen := eng.haltGen.Load()
	t := time.AfterFunc(d, func() {
		if eng.haltGen.Load() == gen {
			eng.spoutsHalted.Store(false)
			eng.emit(trace.SpoutsResumed, "", "",
				fmt.Sprintf("after %v halt delay", d))
		}
	})
	eng.timerMu.Lock()
	if eng.resumeTimer != nil {
		eng.resumeTimer.Stop()
	}
	eng.resumeTimer = t
	eng.timerMu.Unlock()
}

// Quiesce waits until no tuple is queued or being processed (spouts
// should be halted first, or the topology may never drain). It returns
// true when fully drained, false on timeout.
func (eng *Engine) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if eng.pending.Load() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Topologies lists submitted topology names, sorted.
func (eng *Engine) Topologies() []string {
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	out := make([]string, 0, len(eng.apps))
	for n := range eng.apps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// App returns a submitted app by topology name.
func (eng *Engine) App(name string) (*engine.App, bool) {
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	a, ok := eng.apps[name]
	return a, ok
}

// CurrentAssignment returns a copy of the topology's live assignment.
func (eng *Engine) CurrentAssignment(name string) (*cluster.Assignment, bool) {
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	a, ok := eng.assign[name]
	if !ok {
		return nil, false
	}
	return a.Clone(), true
}

// ExecutorByDense maps a dense executor index back to its identity (used
// by the monitor when draining the traffic matrix). Out-of-range indexes
// return the zero ExecutorID rather than panicking.
func (eng *Engine) ExecutorByDense(i int) topology.ExecutorID {
	rt := eng.routes.Load()
	if i < 0 || i >= len(rt.denseRev) {
		return topology.ExecutorID{}
	}
	return rt.denseRev[i]
}

// slotOf reads an executor's current slot from the routing snapshot (the
// zero SlotID for unknown executors).
func (eng *Engine) slotOf(e topology.ExecutorID) cluster.SlotID {
	rt := eng.routes.Load()
	if le := rt.executor(e.Topology, e.Component, e.Index); le != nil {
		return rt.slotOf[le.dense]
	}
	return cluster.SlotID{}
}
