package live

import (
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// benchEngine builds (without starting) a word-count-shaped topology whose
// split bolt fans out to counters on both nodes, so BenchmarkEmit exercises
// the local, inter-process and inter-node emission paths together.
func benchEngine(b *testing.B) (*Engine, *liveExec) {
	b.Helper()
	tb := topology.NewBuilder("bench", 2)
	tb.Spout("src", 1).Output("", "line")
	tb.Bolt("split", 1).Shuffle("src").Output("", "word")
	tb.Bolt("count", 4).Fields("split", "word")
	top, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	app := &engine.App{
		Topology: top,
		Spouts:   map[string]func() engine.Spout{"src": func() engine.Spout { return nil }},
		Bolts: map[string]func() engine.Bolt{
			"split": func() engine.Bolt { return nil },
			"count": func() engine.Bolt { return nil },
		},
	}
	cl, err := cluster.Uniform(2, 2, 2000, 2)
	if err != nil {
		b.Fatal(err)
	}
	initial := cluster.NewAssignment(0)
	slots := []cluster.SlotID{
		{Node: "node01", Port: cluster.BasePort},
		{Node: "node01", Port: cluster.BasePort + 1},
		{Node: "node02", Port: cluster.BasePort},
		{Node: "node02", Port: cluster.BasePort + 1},
	}
	i := 0
	for _, e := range top.Executors() {
		initial.Assign(e, slots[i%len(slots)])
		i++
	}
	cfg := testConfig()
	cfg.WireCost = -1 // isolate allocation cost from the emulated wire burn
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		b.Fatal(err)
	}
	// Skip app.Validate (nil factories): wire the executors directly.
	eng.mu.Lock()
	eng.apps["bench"] = app
	eng.assign["bench"] = initial.Clone()
	for _, e := range top.Executors() {
		le := eng.newExec(app, e)
		eng.execs[e] = le
		s := initial.Executors[e]
		eng.placement[e] = s
		eng.groups[s] = append(eng.groups[s], le)
	}
	eng.rebuildRoutesLocked()
	eng.mu.Unlock()
	split := eng.execs[topology.ExecutorID{Topology: "bench", Component: "split", Index: 0}]
	return eng, split
}

// BenchmarkEmit measures allocations on the emit hot path: one op routes
// one anchored word tuple from the split bolt to its fields-grouped
// counters (local and remote hops alike), flushing the accumulated batch
// every 64 tuples the way the executor loop does. ci.sh gates on its
// allocs/op.
func BenchmarkEmit(b *testing.B) {
	eng, split := benchEngine(b)
	words := []tuple.Values{
		{"alpha", 1}, {"beta", 2}, {"gamma", 3}, {"delta", 4},
	}
	bornAt := time.Now()
	em := boltEmitter{le: split, bornAt: bornAt, root: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Emit("", words[i%len(words)])
		if (i+1)%64 == 0 {
			// Recycle the way flushBolt's drop path does, so the pools
			// cycle exactly as in production.
			for j := range em.deliveries {
				eng.recycleBatch(em.deliveries[j].msgs)
			}
			em.deliveries = em.deliveries[:0]
		}
	}
}

// BenchmarkEmitTraced is BenchmarkEmit with tuple tracing enabled at the
// default 1/1024 sampling rate and an UNSAMPLED root (42 & 1023 != 0):
// the tracing branch is taken and rejected on every hop, which must cost
// one mask check and zero allocations. ci.sh gates every BenchmarkEmit*
// line at ≤1 alloc/op, so a regression that makes unsampled tuples pay
// for the sampled path fails CI.
func BenchmarkEmitTraced(b *testing.B) {
	eng, split := benchEngine(b)
	if err := eng.SetTraceSampling(1024); err != nil {
		b.Fatal(err)
	}
	if eng.sampledRoot(42) {
		b.Fatal("root 42 unexpectedly sampled at rate 1024")
	}
	words := []tuple.Values{
		{"alpha", 1}, {"beta", 2}, {"gamma", 3}, {"delta", 4},
	}
	bornAt := time.Now()
	em := boltEmitter{le: split, bornAt: bornAt, root: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Emit("", words[i%len(words)])
		if (i+1)%64 == 0 {
			for j := range em.deliveries {
				eng.recycleBatch(em.deliveries[j].msgs)
			}
			em.deliveries = em.deliveries[:0]
		}
	}
}
