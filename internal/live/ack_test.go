package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// reliableSpout emits limit anchored tuples (msgID = sequence number) and
// replays any failed ones until everything acks. Ack bookkeeping lives in
// the shared ackLedger so it survives spout restarts.
type reliableSpout struct {
	ledger *ackLedger
	next   int
	limit  int
}

// ackLedger is the cross-incarnation record of what a reliable spout's
// tuples did — the test oracle for at-least-once conservation.
type ackLedger struct {
	mu      sync.Mutex
	acked   map[int]int // seq → ack count
	replays []int       // failed seqs awaiting re-emit
	emits   map[int]int // seq → emit count
	opens   int
}

func newAckLedger() *ackLedger {
	return &ackLedger{acked: make(map[int]int), emits: make(map[int]int)}
}

func (l *ackLedger) ackedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.acked)
}

// lost returns seqs that were never acked; dupAcked returns seqs acked
// more than once (allowed by at-least-once but worth surfacing).
func (l *ackLedger) lost(limit int) (lost, dupAcked []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := 0; s < limit; s++ {
		switch {
		case l.acked[s] == 0:
			lost = append(lost, s)
		case l.acked[s] > 1:
			dupAcked = append(dupAcked, s)
		}
	}
	return lost, dupAcked
}

func (s *reliableSpout) Open(*engine.Context) {
	s.ledger.mu.Lock()
	s.ledger.opens++
	s.ledger.mu.Unlock()
}

func (s *reliableSpout) NextTuple(em engine.SpoutEmitter) {
	l := s.ledger
	l.mu.Lock()
	var seq int
	switch {
	case len(l.replays) > 0:
		seq = l.replays[0]
		l.replays = l.replays[1:]
	case s.next < s.limit:
		seq = s.next
		s.next++
	default:
		l.mu.Unlock()
		return
	}
	l.emits[seq]++
	l.mu.Unlock()
	em.EmitWithID("", tuple.Values{int64(seq)}, seq)
}

func (s *reliableSpout) Ack(id any) {
	seq := id.(int)
	s.ledger.mu.Lock()
	s.ledger.acked[seq]++
	s.ledger.mu.Unlock()
}

func (s *reliableSpout) Fail(id any) {
	seq := id.(int)
	s.ledger.mu.Lock()
	s.ledger.replays = append(s.ledger.replays, seq)
	s.ledger.mu.Unlock()
}

// slowFirstBolt stalls past the ack timeout the first time it sees each
// seq, forcing a spout-side timeout + replay; replays pass through fast.
type slowFirstBolt struct {
	mu    sync.Mutex
	seen  map[int64]bool
	stall time.Duration
}

func (b *slowFirstBolt) Prepare(*engine.Context) {}
func (b *slowFirstBolt) Execute(tp tuple.Tuple, em engine.Emitter) {
	seq := tp.Values[0].(int64)
	b.mu.Lock()
	first := !b.seen[seq]
	b.seen[seq] = true
	b.mu.Unlock()
	if first {
		time.Sleep(b.stall)
	}
	em.Emit("", tp.Values)
}

// ackTestApp wires a reliable spout through chain bolts into a sink on one
// topology with one acker.
func ackTestApp(t *testing.T, ledger *ackLedger, limit int, mid func() engine.Bolt, maxPending int) (*engine.App, *cluster.Cluster, *cluster.Assignment) {
	t.Helper()
	b := topology.NewBuilder("rel", 2)
	b.SetAckers(1)
	b.Spout("s", 1).Output("", "seq")
	b.Bolt("mid", 1).Shuffle("s").Output("", "seq")
	b.Bolt("sink", 2).Shuffle("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &reliableSpout{ledger: ledger, limit: limit} }},
		Bolts:         map[string]func() engine.Bolt{"mid": mid, "sink": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	if maxPending > 0 {
		app.MaxPending = map[string]int{"s": maxPending}
	}
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	n1 := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, n1)
	}
	// Put the sink cross-node so acks traverse a serialized boundary too.
	initial.Assign(topology.ExecutorID{Topology: "rel", Component: "sink", Index: 1}, n2)
	return app, cl, initial
}

// TestAnchoredAckingEndToEnd runs a three-stage anchored topology to
// completion: every root acked exactly once, zero failures, zero pending,
// and the completion-latency histogram saw every root.
func TestAnchoredAckingEndToEnd(t *testing.T) {
	const n = 300
	ledger := newAckLedger()
	app, cl, initial := ackTestApp(t, ledger, n,
		func() engine.Bolt { return devnullBolt{} }, 0)

	cfg := testConfig()
	cfg.AckTimeout = 2 * time.Second
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor(t, 10*time.Second, "all roots acked", func() bool {
		return ledger.ackedCount() >= n
	})
	waitFor(t, 5*time.Second, "pending roots drained", func() bool {
		return eng.PendingRoots() == 0
	})
	eng.HaltSpouts()
	eng.Stop()

	lost, dup := ledger.lost(n)
	if len(lost) != 0 {
		t.Errorf("lost roots: %v", lost)
	}
	if len(dup) != 0 {
		t.Errorf("roots acked more than once without replays: %v", dup)
	}
	tot := eng.Totals()
	if tot.Acked != n {
		t.Errorf("Acked = %d, want %d", tot.Acked, n)
	}
	if tot.FailedRoots != 0 || tot.Replayed != 0 {
		t.Errorf("failed/replayed = %d/%d, want 0/0", tot.FailedRoots, tot.Replayed)
	}
	if c := eng.CompletionLatencySnapshot().Count(); c != n {
		t.Errorf("completion-latency samples = %d, want %d", c, n)
	}
}

// TestAnchoredTimeoutReplay forces timeouts with a bolt that stalls past
// the ack timeout on first sight of each tuple: every root must fail once,
// replay, and complete — at-least-once with zero loss.
func TestAnchoredTimeoutReplay(t *testing.T) {
	const n = 20
	ledger := newAckLedger()
	app, cl, initial := ackTestApp(t, ledger, n,
		func() engine.Bolt { return &slowFirstBolt{seen: make(map[int64]bool), stall: 150 * time.Millisecond} }, 4)

	cfg := testConfig()
	cfg.AckTimeout = 50 * time.Millisecond
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor(t, 30*time.Second, "all roots acked after replay", func() bool {
		return ledger.ackedCount() >= n
	})
	waitFor(t, 5*time.Second, "pending roots drained", func() bool {
		return eng.PendingRoots() == 0
	})
	eng.HaltSpouts()
	eng.Stop()

	lost, _ := ledger.lost(n)
	if len(lost) != 0 {
		t.Errorf("lost roots: %v", lost)
	}
	tot := eng.Totals()
	if tot.FailedRoots == 0 {
		t.Error("no roots failed despite stalling bolt — timeout wheel never fired")
	}
	if tot.Replayed == 0 {
		t.Error("no replays detected despite re-emitted msgIDs")
	}
	if tot.Acked < n {
		t.Errorf("Acked = %d, want >= %d", tot.Acked, n)
	}
}

// TestMaxPendingBackpressure runs with a tiny max-pending against a slow
// sink and samples the in-flight gauge: it must never exceed the cap.
func TestMaxPendingBackpressure(t *testing.T) {
	const n, maxPending = 100, 3
	ledger := newAckLedger()
	app, cl, initial := ackTestApp(t, ledger, n,
		func() engine.Bolt { return &sleepBolt{d: 2 * time.Millisecond} }, maxPending)

	cfg := testConfig()
	cfg.AckTimeout = 5 * time.Second
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	peak := int64(0)
	waitFor(t, 30*time.Second, "all roots acked", func() bool {
		if p := eng.PendingRoots(); p > peak {
			peak = p
		}
		return ledger.ackedCount() >= n
	})
	eng.HaltSpouts()
	eng.Stop()

	if peak > maxPending {
		t.Errorf("pending roots peaked at %d, above MaxPending %d", peak, maxPending)
	}
	if tot := eng.Totals(); tot.Acked != n {
		t.Errorf("Acked = %d, want %d", tot.Acked, n)
	}
}

// sleepBolt delays each tuple a fixed time before forwarding.
type sleepBolt struct{ d time.Duration }

func (b *sleepBolt) Prepare(*engine.Context) {}
func (b *sleepBolt) Execute(tp tuple.Tuple, em engine.Emitter) {
	time.Sleep(b.d)
	em.Emit("", tp.Values)
}

// TestUnanchoredSkipsAckers checks a topology without ackers still acks
// EmitWithID immediately and tracks nothing.
func TestUnanchoredSkipsAckers(t *testing.T) {
	b := topology.NewBuilder("noack", 1)
	b.Spout("s", 1).Output("", "v")
	b.Bolt("sink", 1).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	acked := new(atomic.Int64)
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &tickSpout{acked: acked} }},
		Bolts:         map[string]func() engine.Bolt{"sink": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	cl, err := cluster.Uniform(1, 2, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	slot := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, slot)
	}
	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor(t, 5*time.Second, "immediate acks", func() bool { return acked.Load() > 50 })
	eng.Stop()
	if p := eng.PendingRoots(); p != 0 {
		t.Errorf("unanchored run tracked %d pending roots, want 0", p)
	}
	if tot := eng.Totals(); tot.Acked != 0 {
		t.Errorf("unanchored run counted %d anchored acks, want 0", tot.Acked)
	}
}
