package live

import (
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// hopKind classifies a transfer by the boundary it crosses.
type hopKind int

const (
	hopLocal     hopKind = iota // same worker process: pass by reference
	hopInterProc                // different slots, same node: serialize
	hopInterNode                // different nodes: serialize + copy work
)

// delivery is one routed, costed transfer awaiting enqueue.
type delivery struct {
	to  *liveExec
	msg liveMsg
	hop hopKind
}

// route resolves one logical emission to per-target deliveries, paying the
// sender-side boundary costs (serialization for remote hops, copy passes
// for inter-node hops). It returns the number of deliveries appended, or
// -1 if the stream is undeclared. Direct-grouping subscribers are skipped,
// as in the simulated engine.
func (le *liveExec) route(out *[]delivery, stream string, vals tuple.Values, bornAt time.Time) int {
	if stream == "" {
		stream = topology.DefaultStream
	}
	schema, ok := le.comp.Outputs[stream]
	if !ok {
		return -1
	}
	eng := le.eng
	top := le.app.Topology
	size := tuple.SizeOf(vals)
	n := 0

	eng.mu.RLock()
	srcSlot := eng.placement[le.id]
	for _, edge := range top.Consumers(le.comp.Name, stream) {
		if edge.Grouping.Type == topology.DirectGrouping {
			continue
		}
		cons, _ := top.Component(edge.Consumer)
		for _, idx := range le.chooseTargetsLocked(edge, cons.Parallelism, schema, vals, srcSlot) {
			tgt := eng.execs[topology.ExecutorID{Topology: le.id.Topology, Component: edge.Consumer, Index: idx}]
			if tgt == nil || tgt.in == nil {
				continue
			}
			*out = append(*out, le.makeDelivery(tgt, srcSlot, eng.placement[tgt.id], stream, vals, size, bornAt))
			n++
		}
	}
	eng.mu.RUnlock()
	return n
}

// routeDirect resolves an EmitDirect call; it reports whether a delivery
// was appended.
func (le *liveExec) routeDirect(out *[]delivery, consumer string, taskIndex int, stream string, vals tuple.Values, bornAt time.Time) bool {
	if stream == "" {
		stream = topology.DefaultStream
	}
	if _, ok := le.comp.Outputs[stream]; !ok {
		return false
	}
	top := le.app.Topology
	cons, ok := top.Component(consumer)
	if !ok || taskIndex < 0 || taskIndex >= cons.Parallelism {
		return false
	}
	eng := le.eng
	eng.mu.RLock()
	defer eng.mu.RUnlock()
	tgt := eng.execs[topology.ExecutorID{Topology: le.id.Topology, Component: consumer, Index: taskIndex}]
	if tgt == nil || tgt.in == nil {
		return false
	}
	srcSlot := eng.placement[le.id]
	*out = append(*out, le.makeDelivery(tgt, srcSlot, eng.placement[tgt.id], stream, vals,
		tuple.SizeOf(vals), bornAt))
	return true
}

// makeDelivery builds one transfer, paying the sender-side cost of the
// boundary it crosses. Local deliveries share the Values slice (tuples are
// immutable by contract); remote deliveries carry the encoded payload and
// the receiver decodes it.
func (le *liveExec) makeDelivery(tgt *liveExec, srcSlot, dstSlot cluster.SlotID, stream string, vals tuple.Values, size int, bornAt time.Time) delivery {
	tup := tuple.Tuple{
		Stream:       stream,
		SrcComponent: le.comp.Name,
		SrcTask:      le.id.Index,
		Size:         size,
	}
	d := delivery{to: tgt, msg: liveMsg{tup: tup, bornAt: bornAt, from: le.dense}}
	switch {
	case srcSlot == dstSlot:
		d.hop = hopLocal
		d.msg.tup.Values = vals
	case srcSlot.Node == dstSlot.Node:
		d.hop = hopInterProc
		d.msg.enc, d.msg.extras = encodeValues(vals)
	default:
		d.hop = hopInterNode
		d.msg.enc, d.msg.extras = encodeValues(vals)
		// Kernel/NIC copy work: extra passes over the wire bytes.
		for i := 0; i < le.eng.cfg.InterNodeCopies; i++ {
			for _, b := range d.msg.enc {
				le.scratch ^= b
			}
		}
		// Per-message network-stack cost, burned on the sender's goroutine.
		// Emitters run inside the executor's timed NextTuple/Execute window,
		// so this also shows up in the monitor's load measurements.
		if wc := le.eng.cfg.WireCost; wc > 0 {
			for t0 := time.Now(); time.Since(t0) < wc; { //nolint:staticcheck // busy-wait is the point
			}
		}
	}
	return d
}

// chooseTargetsLocked picks the receiving task indexes for one consumer
// edge. Caller holds eng.mu (read): LocalOrShuffleGrouping inspects the
// sender's worker group. The logic mirrors the simulated engine's
// chooseTargets so both backends route identically.
func (le *liveExec) chooseTargetsLocked(edge topology.ConsumerEdge, parallelism int, schema tuple.Fields, vals tuple.Values, srcSlot cluster.SlotID) []int {
	switch edge.Grouping.Type {
	case topology.ShuffleGrouping:
		key := edge.Consumer + "\x00" + edge.Grouping.SourceStream
		i := le.shuffleCtr[key]
		le.shuffleCtr[key] = i + 1
		return []int{(i + le.id.Index) % parallelism}
	case topology.LocalOrShuffleGrouping:
		var local []int
		for _, peer := range le.eng.groups[srcSlot] {
			if peer.id.Component == edge.Consumer {
				local = append(local, peer.id.Index)
			}
		}
		key := edge.Consumer + "\x00local\x00" + edge.Grouping.SourceStream
		i := le.shuffleCtr[key]
		le.shuffleCtr[key] = i + 1
		if len(local) > 0 {
			return []int{local[(i+le.id.Index)%len(local)]}
		}
		return []int{(i + le.id.Index) % parallelism}
	case topology.FieldsGrouping:
		key := ""
		for _, fn := range edge.Grouping.FieldNames {
			idx, ok := schema.Index(fn)
			if !ok || idx >= len(vals) {
				continue
			}
			key += tuple.KeyString(vals[idx]) + "\x1f"
		}
		return []int{tuple.HashKey(key, parallelism)}
	case topology.AllGrouping:
		out := make([]int, parallelism)
		for i := range out {
			out[i] = i
		}
		return out
	case topology.GlobalGrouping:
		return []int{0}
	default:
		return nil
	}
}

// deliver enqueues one routed transfer, blocking while the target queue is
// full (backpressure). It reports false when the engine is stopping. The
// transfer is counted only once enqueued, so the statistics match what
// receivers will actually observe.
func (eng *Engine) deliver(d *delivery) bool {
	eng.pending.Add(1)
	select {
	case d.to.in <- d.msg:
	case <-eng.stopCh:
		eng.pending.Add(-1)
		return false
	}
	eng.tuplesSent.Add(1)
	switch d.hop {
	case hopInterNode:
		eng.interNodeSent.Add(1)
	case hopInterProc:
		eng.interProcSent.Add(1)
	}
	eng.traffic.Add(d.msg.from, d.to.dense, 1)
	return true
}
