package live

import (
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// hopKind classifies a transfer by the boundary it crosses.
type hopKind int

const (
	hopLocal     hopKind = iota // same worker process: pass by reference
	hopInterProc                // different slots, same node: serialize
	hopInterNode                // different nodes: serialize + copy work
)

// delivery is one routed, costed batch of transfers to a single target
// queue awaiting enqueue. Tuples routed to the same executor within one
// emit cycle are appended here and later enqueued with a single channel
// operation, so a cycle pays one send per distinct target instead of one
// per tuple. The msgs slice comes from the engine's batch pool; ownership
// transfers to the receiver on a successful enqueue (see pool.go).
type delivery struct {
	to   *liveExec
	hop  hopKind
	msgs []liveMsg
}

// outEdge is one cached consumer edge of an output stream with its
// grouping state: the consumer's parallelism, pre-resolved field indexes
// for fields grouping, and the round-robin counter shuffle groupings
// advance. Resolving all of this once at executor construction keeps the
// per-emission path free of topology map lookups, string-key hashing and
// the slice allocations the old per-call Consumers() walk paid.
type outEdge struct {
	edge     topology.ConsumerEdge
	par      int   // consumer parallelism
	fieldIdx []int // FieldsGrouping: schema indexes of the grouping fields
	ctr      int   // shuffle / local-or-shuffle round-robin position
}

// outStream caches one output stream's schema and its non-direct consumer
// edges. Touched only by the owning executor goroutine.
type outStream struct {
	schema tuple.Fields
	edges  []outEdge
}

// buildOutStreams precomputes every output stream's routing state for one
// executor. Direct-grouping subscribers are excluded (EmitDirect resolves
// them explicitly), mirroring route's old skip.
func buildOutStreams(top *topology.Topology, comp *topology.Component) map[string]*outStream {
	out := make(map[string]*outStream, len(comp.Outputs))
	for stream, schema := range comp.Outputs {
		os := &outStream{schema: schema}
		for _, edge := range top.Consumers(comp.Name, stream) {
			if edge.Grouping.Type == topology.DirectGrouping {
				continue
			}
			cons, _ := top.Component(edge.Consumer)
			oe := outEdge{edge: edge, par: cons.Parallelism}
			if edge.Grouping.Type == topology.FieldsGrouping {
				for _, fn := range edge.Grouping.FieldNames {
					if idx, ok := schema.Index(fn); ok {
						oe.fieldIdx = append(oe.fieldIdx, idx)
					}
				}
			}
			os.edges = append(os.edges, oe)
		}
		out[stream] = os
	}
	return out
}

// route resolves one logical emission to per-target deliveries, paying the
// sender-side boundary costs (serialization for remote hops, copy passes
// for inter-node hops). It returns the number of transfers appended (-1 if
// the stream is undeclared) and, for anchored emissions (root != 0), the
// XOR of the fresh edge IDs stamped on them — the ack protocol's
// contribution of this emission. Direct-grouping subscribers are skipped,
// as in the simulated engine.
//
// The routing snapshot is loaded once per emission and never mutated, so
// no engine lock is taken anywhere on this path and every target of one
// emission is resolved against a single consistent placement.
func (le *liveExec) route(out *[]delivery, stream string, vals tuple.Values, bornAt time.Time, root tuple.ID) (int, tuple.ID) {
	if stream == "" {
		stream = topology.DefaultStream
	}
	os := le.outStreams[stream]
	if os == nil {
		return -1, 0
	}
	rt := le.eng.routes.Load()
	srcSlot := rt.slotOf[le.dense]
	size := tuple.SizeOf(vals)
	n := 0
	var xorAcc tuple.ID

	for ei := range os.edges {
		e := &os.edges[ei]
		for _, idx := range le.chooseTargets(rt, e, vals, srcSlot) {
			tgt := rt.executor(le.id.Topology, e.edge.Consumer, idx)
			if tgt == nil || tgt.in == nil {
				continue
			}
			var eid tuple.ID
			if root != 0 {
				eid = le.newEdgeID()
				xorAcc ^= eid
			}
			le.appendDelivery(out, rt, tgt, srcSlot, stream, vals, size, bornAt, root, eid)
			n++
		}
	}
	return n, xorAcc
}

// routeDirect resolves an EmitDirect call; it returns the transfer's fresh
// edge ID (0 when unanchored) and whether a transfer was appended.
func (le *liveExec) routeDirect(out *[]delivery, consumer string, taskIndex int, stream string, vals tuple.Values, bornAt time.Time, root tuple.ID) (tuple.ID, bool) {
	if stream == "" {
		stream = topology.DefaultStream
	}
	if le.outStreams[stream] == nil {
		return 0, false
	}
	top := le.app.Topology
	cons, ok := top.Component(consumer)
	if !ok || taskIndex < 0 || taskIndex >= cons.Parallelism {
		return 0, false
	}
	rt := le.eng.routes.Load()
	tgt := rt.executor(le.id.Topology, consumer, taskIndex)
	if tgt == nil || tgt.in == nil {
		return 0, false
	}
	var eid tuple.ID
	if root != 0 {
		eid = le.newEdgeID()
	}
	le.appendDelivery(out, rt, tgt, rt.slotOf[le.dense], stream, vals, tuple.SizeOf(vals), bornAt, root, eid)
	return eid, true
}

// appendDelivery builds one transfer, paying the sender-side cost of the
// boundary it crosses, and appends it to the target's batch (opening a
// new pooled batch for a target not yet seen since the last flush). Local
// transfers share the Values slice (tuples are immutable by contract);
// remote transfers carry the payload encoded into a pooled buffer and the
// receiver decodes (and then recycles) it.
func (le *liveExec) appendDelivery(out *[]delivery, rt *routeTable, tgt *liveExec, srcSlot cluster.SlotID, stream string, vals tuple.Values, size int, bornAt time.Time, root, edge tuple.ID) {
	dstSlot := rt.slotOf[tgt.dense]
	msg := liveMsg{
		tup: tuple.Tuple{
			Root:         root,
			Edge:         edge,
			Stream:       stream,
			SrcComponent: le.comp.Name,
			SrcTask:      le.id.Index,
			Size:         size,
		},
		bornAt: bornAt,
		from:   le.dense,
	}
	if le.eng.sampledRoot(root) {
		// Sampled tuple: thread the producer's span identity and the
		// hand-off instant through the anchor chain (tracing.go). The
		// unsampled path pays one predictable branch and nothing else.
		msg.parentSpan = le.curParent
		msg.sentAt = time.Now().UnixNano()
	}
	var hop hopKind
	switch {
	case srcSlot == dstSlot:
		hop = hopLocal
		msg.tup.Values = vals
	case srcSlot.Node == dstSlot.Node:
		hop = hopInterProc
		msg.enc, msg.extras = encodeValuesInto(le.eng.encPool.get(), vals)
	default:
		hop = hopInterNode
		msg.enc, msg.extras = encodeValuesInto(le.eng.encPool.get(), vals)
		// Kernel/NIC copy work: extra passes over the wire bytes.
		for i := 0; i < le.eng.cfg.InterNodeCopies; i++ {
			for _, b := range msg.enc {
				le.scratch ^= b
			}
		}
		// Per-message network-stack cost, burned on the sender's goroutine.
		// Emitters run inside the executor's timed NextTuple/Execute window,
		// so this also shows up in the monitor's load measurements.
		if wc := le.eng.cfg.WireCost; wc > 0 {
			for t0 := time.Now(); time.Since(t0) < wc; { //nolint:staticcheck // busy-wait is the point
			}
		}
	}
	// Batch with an existing delivery to the same queue. Hop kinds are
	// matched too: two emissions of one cycle may straddle an Apply and
	// classify the same target differently.
	for i := range *out {
		if b := &(*out)[i]; b.to == tgt && b.hop == hop {
			b.msgs = append(b.msgs, msg)
			return
		}
	}
	*out = append(*out, delivery{to: tgt, hop: hop, msgs: append(le.eng.msgPool.get(), msg)})
}

// chooseTargets picks the receiving task indexes for one consumer edge
// into the executor's scratch slice, resolving LocalOrShuffleGrouping's
// locality set from the routing snapshot. The logic (and the round-robin
// and hash sequences) mirrors the simulated engine's chooseTargets so
// both backends route identically; fields keys are built into a reused
// buffer and hashed without the intermediate string.
func (le *liveExec) chooseTargets(rt *routeTable, e *outEdge, vals tuple.Values, srcSlot cluster.SlotID) []int {
	out := le.targetScratch[:0]
	switch e.edge.Grouping.Type {
	case topology.ShuffleGrouping:
		i := e.ctr
		e.ctr++
		out = append(out, (i+le.id.Index)%e.par)
	case topology.LocalOrShuffleGrouping:
		local := le.localScratch[:0]
		for _, peer := range rt.groups[srcSlot] {
			if peer.id.Component == e.edge.Consumer {
				local = append(local, peer.id.Index)
			}
		}
		le.localScratch = local
		i := e.ctr
		e.ctr++
		if len(local) > 0 {
			out = append(out, local[(i+le.id.Index)%len(local)])
		} else {
			out = append(out, (i+le.id.Index)%e.par)
		}
	case topology.FieldsGrouping:
		key := le.keyScratch[:0]
		for _, idx := range e.fieldIdx {
			if idx >= len(vals) {
				continue
			}
			key = tuple.AppendKey(key, vals[idx])
			key = append(key, '\x1f')
		}
		le.keyScratch = key
		out = append(out, tuple.HashKeyBytes(key, e.par))
	case topology.AllGrouping:
		for i := 0; i < e.par; i++ {
			out = append(out, i)
		}
	case topology.GlobalGrouping:
		out = append(out, 0)
	}
	le.targetScratch = out
	return out
}

// recycleBatch returns an un-enqueued delivery batch and its encode
// buffers to the pools — the drop paths' side of the ownership contract.
func (eng *Engine) recycleBatch(msgs []liveMsg) {
	for i := range msgs {
		if msgs[i].enc != nil {
			eng.encPool.put(msgs[i].enc)
		}
	}
	eng.msgPool.put(msgs)
}

// deliver enqueues one routed batch, blocking while the target queue is
// full (backpressure). It reports false when the engine is stopping or the
// sending incarnation was killed (die). Batches for a dead executor are
// dropped on the floor — anchored roots recover via timeout + replay — so
// senders never wedge on a crashed worker's full queue. The transfers are
// counted only once enqueued, so the statistics match what receivers will
// actually observe. deliver owns d.msgs on every outcome: a successful
// channel send hands it to the receiver, every other path recycles it.
func (eng *Engine) deliver(d *delivery, die <-chan struct{}) bool {
	n := int64(len(d.msgs))
	if n == 0 {
		return true
	}
	if rt := eng.routes.Load(); !rt.local[d.to.dense] {
		// The target executes in another worker process: the batch leaves
		// as an encoded frame instead of a channel send (remote.go).
		return eng.sendRemoteData(rt, d)
	}
	if d.to.dead.Load() {
		eng.dropped.Add(n)
		eng.recycleBatch(d.msgs)
		return true
	}
	from := d.msgs[0].from
	eng.pending.Add(n)
	select {
	case d.to.in <- d.msgs:
	case <-eng.stopCh:
		eng.pending.Add(-n)
		eng.recycleBatch(d.msgs)
		return false
	case <-die:
		eng.pending.Add(-n)
		eng.recycleBatch(d.msgs)
		return false
	}
	eng.tuplesSent.Add(n)
	switch d.hop {
	case hopInterNode:
		eng.interNodeSent.Add(n)
	case hopInterProc:
		eng.interProcSent.Add(n)
	}
	if m := eng.edges.Load(); m != nil {
		m.counts[from*m.n+d.to.dense].byHop[d.hop].Add(n)
	}
	eng.traffic.Add(from, d.to.dense, float64(n))
	return true
}
