package live

import (
	"testing"
	"time"

	"tstorm/internal/tuple"
)

// wheelBase is an arbitrary fixed instant so wheel tests are deterministic.
var wheelBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestWheelFiresLateNeverEarly registers one root and sweeps expire over
// the whole timeout window: the root must stay registered until its full
// timeout elapsed and fire within the wheel's two-tick slack after it.
func TestWheelFiresLateNeverEarly(t *testing.T) {
	const timeout = 320 * time.Millisecond
	w := newTimeoutWheel(timeout, wheelBase)
	if w.tick != 10*time.Millisecond {
		t.Fatalf("tick = %v, want 10ms", w.tick)
	}
	w.add(1, timeout, wheelBase)
	if w.pendingLen() != 1 {
		t.Fatalf("pendingLen = %d, want 1", w.pendingLen())
	}
	fired := time.Duration(-1)
	for d := time.Duration(0); d <= timeout+4*w.tick; d += w.tick {
		if due := w.expire(wheelBase.Add(d)); len(due) > 0 {
			if due[0] != 1 {
				t.Fatalf("expired root %d, want 1", due[0])
			}
			fired = d
			break
		}
	}
	if fired < timeout {
		t.Fatalf("root fired at +%v, before its %v timeout", fired, timeout)
	}
	if fired > timeout+2*w.tick {
		t.Fatalf("root fired at +%v, more than two ticks past %v", fired, timeout)
	}
	if w.pendingLen() != 0 {
		t.Fatalf("pendingLen = %d after fire, want 0", w.pendingLen())
	}
}

// TestWheelCancel acks a root before its deadline: it must never fire, and
// a second cancel reports absence.
func TestWheelCancel(t *testing.T) {
	const timeout = 100 * time.Millisecond
	w := newTimeoutWheel(timeout, wheelBase)
	w.add(7, timeout, wheelBase)
	if !w.cancel(7) {
		t.Fatal("cancel of registered root reported absent")
	}
	if w.cancel(7) {
		t.Fatal("second cancel reported present")
	}
	if due := w.expire(wheelBase.Add(10 * timeout)); len(due) != 0 {
		t.Fatalf("cancelled root expired: %v", due)
	}
}

// TestWheelReAddRearms re-registers a root mid-flight (a replay) and checks
// it fires once, at the new deadline, not the old one.
func TestWheelReAddRearms(t *testing.T) {
	const timeout = 320 * time.Millisecond
	w := newTimeoutWheel(timeout, wheelBase)
	w.add(3, timeout, wheelBase)

	// Advance half a timeout, then re-arm.
	half := wheelBase.Add(timeout / 2)
	if due := w.expire(half); len(due) != 0 {
		t.Fatalf("root expired early: %v", due)
	}
	w.add(3, timeout, half)
	if w.pendingLen() != 1 {
		t.Fatalf("pendingLen = %d after re-add, want 1", w.pendingLen())
	}

	// The old deadline passes without a fire...
	if due := w.expire(wheelBase.Add(timeout + 2*w.tick)); len(due) != 0 {
		t.Fatalf("root fired at the stale deadline: %v", due)
	}
	// ...and the re-armed one fires.
	due := w.expire(half.Add(timeout + 2*w.tick))
	if len(due) != 1 || due[0] != 3 {
		t.Fatalf("re-armed root did not fire: %v", due)
	}
}

// TestWheelGrowsOnStall stalls the wheel (no expire calls) far past its
// span, then registers a new root: the ring must grow so the root still
// waits its full timeout, and the stalled root fires exactly once.
func TestWheelGrowsOnStall(t *testing.T) {
	const timeout = 100 * time.Millisecond
	w := newTimeoutWheel(timeout, wheelBase)
	w.add(1, timeout, wheelBase)

	// Spout stalls ten timeouts; on wake it emits a fresh root before any
	// expire ran. Without growth this deadline would alias onto a near slot
	// and fire early.
	stall := wheelBase.Add(10 * timeout)
	w.add(2, timeout, stall)
	if len(w.buckets) <= wheelCapacity {
		t.Fatalf("ring did not grow: %d buckets", len(w.buckets))
	}

	// Catching up to the stall instant fires only the old root.
	due := w.expire(stall)
	if len(due) != 1 || due[0] != 1 {
		t.Fatalf("catch-up expired %v, want just root 1", due)
	}
	// The fresh root still waits its full timeout from the stall instant.
	if due := w.expire(stall.Add(timeout - w.tick)); len(due) != 0 {
		t.Fatalf("fresh root fired early after growth: %v", due)
	}
	due = w.expire(stall.Add(timeout + 2*w.tick))
	if len(due) != 1 || due[0] != 2 {
		t.Fatalf("fresh root did not fire after growth: %v", due)
	}
	if w.pendingLen() != 0 {
		t.Fatalf("pendingLen = %d, want 0", w.pendingLen())
	}
}

// TestWheelManyRoots hammers the wheel with interleaved adds, cancels and
// expires and checks conservation: every root either cancelled or expired,
// exactly once.
func TestWheelManyRoots(t *testing.T) {
	const timeout = 64 * time.Millisecond
	w := newTimeoutWheel(timeout, wheelBase)
	expired := make(map[tuple.ID]int)
	cancelled := 0
	now := wheelBase
	const n = 500
	for i := 1; i <= n; i++ {
		w.add(tuple.ID(i), timeout, now)
		if i%3 == 0 {
			if w.cancel(tuple.ID(i)) {
				cancelled++
			}
		}
		now = now.Add(w.tick / 2)
		for _, r := range w.expire(now) {
			expired[r]++
		}
	}
	for _, r := range w.expire(now.Add(2 * timeout)) {
		expired[r]++
	}
	for r, c := range expired {
		if c != 1 {
			t.Fatalf("root %d expired %d times", r, c)
		}
	}
	if got := len(expired) + cancelled; got != n {
		t.Fatalf("accounted %d roots (%d expired + %d cancelled), want %d",
			got, len(expired), cancelled, n)
	}
	if w.pendingLen() != 0 {
		t.Fatalf("pendingLen = %d, want 0", w.pendingLen())
	}
}
