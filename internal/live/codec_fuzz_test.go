package live

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// The codec and the frame decoder read bytes straight off sockets in the
// distributed runtime, so they must tolerate arbitrary input: any byte
// string either decodes or returns an error — never a panic, and never an
// allocation larger than the input. These fuzz targets (run for 30s in
// ci.sh) plus the deterministic adversarial cases below enforce that.

// codecSeedValues are payloads covering every tag the codec knows.
func codecSeedValues() []tuple.Values {
	return []tuple.Values{
		{},
		{nil},
		{"the quick brown fox", int(42), true},
		{[]byte{0, 1, 2, 255}, int8(-8), int16(-16), int32(-32), int64(-64)},
		{uint(1), uint8(2), uint16(3), uint32(4), uint64(1 << 60)},
		{float32(3.14), float64(-2.718), "", []byte{}},
		{"word", int64(9000), "word", int64(9000)},
	}
}

func FuzzDecodeValues(f *testing.F) {
	for _, vals := range codecSeedValues() {
		enc, _ := EncodeValues(vals)
		f.Add(enc)
		if len(enc) > 1 {
			f.Add(enc[:len(enc)/2]) // truncation seeds
		}
	}
	// Adversarial-length seeds: huge claimed counts and byte lengths.
	f.Add(binary.AppendUvarint(nil, 1<<62))
	f.Add(append(binary.AppendUvarint(nil, 1), tagString, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeValues(data, nil)
		if err != nil {
			return
		}
		// A successful decode must re-encode and decode to the same values
		// (extras cannot appear: nil extras would have failed the decode).
		enc, extras := EncodeValues(vals)
		if len(extras) != 0 {
			t.Fatalf("decoded values produced extras: %v", extras)
		}
		back, err := DecodeValues(enc, nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back) != len(vals) {
			t.Fatalf("round trip changed arity: %d != %d", len(back), len(vals))
		}
	})
}

func FuzzDecodeFrame(f *testing.F) {
	to := topology.ExecutorID{Topology: "wc", Component: "split", Index: 1}
	enc, _ := encodeValues(tuple.Values{"hello world", int(7)})
	dataFrame, _ := encodeDataFrame(to, []liveMsg{{
		tup: tuple.Tuple{
			Root: 0xdeadbeef, Edge: 0xfeed, Stream: "default",
			SrcComponent: "reader", SrcTask: 0, Size: 16,
		},
		enc:    enc,
		bornAt: time.Unix(0, 1_700_000_000_000_000_000),
		from:   3,
	}})
	f.Add(dataFrame)
	f.Add(encodeCtlFrame(to, []ctlMsg{
		{kind: ctlInit, root: 1, xor: 2, spoutDense: 0, emitAt: time.Unix(0, 12345)},
		{kind: ctlAck, root: 1, xor: 2},
	}))
	f.Add(encodeAckFrame(to, []ackEvent{{root: 99, late: true}}))
	// Tracing extension seeds: a sampled batch (frameDataT + span fields),
	// its truncation, and a flags byte with undefined bits set.
	tracedFrame, _ := encodeDataFrame(to, []liveMsg{{
		tup: tuple.Tuple{
			Root: 0x400, Edge: 0xfeed, Stream: "default",
			SrcComponent: "reader", SrcTask: 0, Size: 16,
		},
		enc:        enc,
		from:       3,
		parentSpan: 0x400,
		sentAt:     1_700_000_000_000_000_500,
	}})
	f.Add(tracedFrame)
	f.Add(tracedFrame[:len(tracedFrame)-9])
	f.Add([]byte{frameDataT, 0, 0, 0, 0xff})
	for _, seed := range [][]byte{dataFrame[:len(dataFrame)/2], {frameData}, {frameCtl, 0}, {0xff}} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := decodeFrame(data)
		if err != nil {
			return
		}
		// Decoded frames must hold exactly one kind of content.
		n := 0
		if len(frame.data) > 0 {
			n++
		}
		if len(frame.ctl) > 0 {
			n++
		}
		if len(frame.acks) > 0 {
			n++
		}
		if n > 1 {
			t.Fatalf("frame decoded to multiple kinds: %+v", frame)
		}
	})
}

func TestDecodeValuesAdversarial(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"huge count":      binary.AppendUvarint(nil, 1<<62),
		"count overflows": {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"huge string len": append(binary.AppendUvarint(nil, 1),
			append([]byte{tagString}, binary.AppendUvarint(nil, 1<<63)...)...),
		"string len wraps int": append(binary.AppendUvarint(nil, 1),
			append([]byte{tagBytes}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)...),
		"truncated float": append(binary.AppendUvarint(nil, 1), tagFloat64, 1, 2),
		"bad tag":         append(binary.AppendUvarint(nil, 1), 0x7f),
		"extra oob":       append(binary.AppendUvarint(nil, 1), tagExtra, 5),
	}
	for name, data := range cases {
		if _, err := DecodeValues(data, nil); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestDecodeValuesRoundTrip(t *testing.T) {
	for _, vals := range codecSeedValues() {
		enc, extras := EncodeValues(vals)
		got, err := DecodeValues(enc, extras)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(vals) {
			t.Fatalf("arity %d != %d", len(got), len(vals))
		}
		for i := range vals {
			switch want := vals[i].(type) {
			case []byte:
				if !bytes.Equal(want, got[i].([]byte)) {
					t.Fatalf("value %d: %v != %v", i, got[i], want)
				}
			default:
				if got[i] != vals[i] {
					t.Fatalf("value %d: %#v != %#v", i, got[i], vals[i])
				}
			}
		}
	}
}

func TestDecodeFrameAdversarial(t *testing.T) {
	to := topology.ExecutorID{Topology: "wc", Component: "split", Index: 0}
	good := encodeCtlFrame(to, []ctlMsg{{kind: ctlAck, root: 7, xor: 9}})
	cases := map[string][]byte{
		"empty":         {},
		"unknown kind":  {0x42},
		"trailing junk": append(append([]byte(nil), good...), 0xee),
		"huge ctl count": append(appendFrameHeader(nil, frameCtl, to),
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
		"truncated header": good[:3],
		"data bad count": append(appendFrameHeader(nil, frameData, to),
			0xff, 0xff, 0xff, 0xff),
	}
	for name, data := range cases {
		if _, err := decodeFrame(data); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
	if f, err := decodeFrame(good); err != nil || len(f.ctl) != 1 {
		t.Fatalf("good frame failed: %v %+v", err, f)
	}
}
