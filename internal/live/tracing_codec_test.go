package live

import (
	"testing"
	"time"

	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// Forward-compatibility contract for the tuple-tracing frame extension
// (frameDataT): traced batches round-trip their span fields, plain batches
// stay byte-identical to the pre-extension format so tracing-off fleets
// never emit the new kind, and decoders reject frames with flag bits they
// do not understand instead of misparsing them.

func tracedBatch() []liveMsg {
	enc1, _ := encodeValues(tuple.Values{"hello", int(7)})
	enc2, _ := encodeValues(tuple.Values{"world"})
	return []liveMsg{
		{
			tup: tuple.Tuple{
				Root: 0x400, Edge: 0xfeed, Stream: "default",
				SrcComponent: "reader", SrcTask: 1, Size: 12,
			},
			enc: enc1, bornAt: time.Unix(0, 1_700_000_000_000_000_000),
			from: 3, parentSpan: 0x400, sentAt: 1_700_000_000_000_000_500,
		},
		{
			// Unsampled neighbor in the same batch: span fields zero.
			tup: tuple.Tuple{
				Root: 0x401, Edge: 0xbeef, Stream: "default",
				SrcComponent: "reader", SrcTask: 1, Size: 5,
			},
			enc: enc2, from: 3,
		},
	}
}

func TestTracedFrameRoundTrip(t *testing.T) {
	to := topology.ExecutorID{Topology: "wc", Component: "split", Index: 2}
	msgs := tracedBatch()
	frame, skipped := encodeDataFrame(to, msgs)
	if skipped != 0 {
		t.Fatalf("skipped %d messages", skipped)
	}
	if frame[0] != frameDataT {
		t.Fatalf("traced batch encoded as kind %d, want frameDataT", frame[0])
	}
	f, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.to != to {
		t.Fatalf("target %+v != %+v", f.to, to)
	}
	if len(f.data) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(f.data), len(msgs))
	}
	for i, m := range f.data {
		want := msgs[i]
		if m.tup.Root != want.tup.Root || m.tup.Edge != want.tup.Edge {
			t.Fatalf("msg %d identity %v/%v != %v/%v", i, m.tup.Root, m.tup.Edge, want.tup.Root, want.tup.Edge)
		}
		if m.parentSpan != want.parentSpan || m.sentAt != want.sentAt {
			t.Fatalf("msg %d span fields (%#x, %d) != (%#x, %d)",
				i, m.parentSpan, m.sentAt, want.parentSpan, want.sentAt)
		}
		if m.from != want.from {
			t.Fatalf("msg %d from %d != %d", i, m.from, want.from)
		}
	}
}

func TestPlainFrameFormatUnchanged(t *testing.T) {
	// A batch with no sampled tuple must keep the original frameData kind
	// byte and layout — an old decoder without the tracing extension only
	// ever sees frames it understands.
	to := topology.ExecutorID{Topology: "wc", Component: "split", Index: 0}
	msgs := tracedBatch()
	for i := range msgs {
		msgs[i].parentSpan, msgs[i].sentAt = 0, 0
	}
	frame, _ := encodeDataFrame(to, msgs)
	if frame[0] != frameData {
		t.Fatalf("plain batch encoded as kind %d, want frameData", frame[0])
	}
	f, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, m := range f.data {
		if m.parentSpan != 0 || m.sentAt != 0 {
			t.Fatalf("msg %d grew span fields from a plain frame: (%#x, %d)", i, m.parentSpan, m.sentAt)
		}
	}
}

func TestTracedFrameUnknownFlagRejected(t *testing.T) {
	to := topology.ExecutorID{Topology: "wc", Component: "split", Index: 2}
	frame, _ := encodeDataFrame(to, tracedBatch())
	if frame[0] != frameDataT {
		t.Fatalf("traced batch encoded as kind %d, want frameDataT", frame[0])
	}
	// The flags byte sits right after the header; locate it by re-encoding
	// the header alone.
	flagsAt := len(appendFrameHeader(nil, frameDataT, to))
	if frame[flagsAt] != flagSpans {
		t.Fatalf("flags byte %#x at %d, want flagSpans", frame[flagsAt], flagsAt)
	}
	bad := append([]byte(nil), frame...)
	bad[flagsAt] |= 0x80 // a bit this decoder does not define
	if _, err := decodeFrame(bad); err == nil {
		t.Fatal("frame with unknown flag bit decoded cleanly; want rejection")
	}
	// Truncating the span fields must error, not misparse.
	if _, err := decodeFrame(frame[:len(frame)-9]); err == nil {
		t.Fatal("truncated traced frame decoded cleanly; want rejection")
	}
}
