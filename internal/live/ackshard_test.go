package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// fanoutBolt re-emits each input k times (anchored), so one root fans to
// k sink tuples — the sink then acks k same-root tuples per batch, which
// is exactly the shape sender-side XOR combining folds.
type fanoutBolt struct{ k int }

func (fanoutBolt) Prepare(*engine.Context) {}
func (b fanoutBolt) Execute(tup tuple.Tuple, em engine.Emitter) {
	for i := 0; i < b.k; i++ {
		em.Emit("", tuple.Values{tup.Values[0]})
	}
}

// startShardedChaos is startChaos's sibling with the acker parallelism
// cranked to two and both acker shards isolated on their own slot, so a
// test can kill exactly (and only) the acker tasks mid-stream.
type shardedChaosHarness struct {
	eng      *Engine
	ledger   *chaosLedger
	sup      *Supervisor
	slotAck  cluster.SlotID
	ackExecs []topology.ExecutorID
}

func startShardedChaos(t *testing.T, limit int, ackTimeout time.Duration) *shardedChaosHarness {
	t.Helper()
	b := topology.NewBuilder("chaos-shard", 2)
	b.SetAckers(2)
	b.Spout("s", 1).Output("", "seq")
	b.Bolt("mid", 2).Shuffle("s").Output("", "seq")
	b.Bolt("sink", 1).Shuffle("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ledger := newChaosLedger(limit)
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &chaosSpout{l: ledger} }},
		Bolts:         map[string]func() engine.Bolt{"mid": func() engine.Bolt { return fanoutBolt{k: 4} }, "sink": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
		MaxPending:    map[string]int{"s": 32},
	}
	cl, err := cluster.Uniform(3, 4, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	slotSpout := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	slotMid := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	slotAck := cluster.SlotID{Node: "node03", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	var ackExecs []topology.ExecutorID
	for _, e := range top.Executors() {
		switch e.Component {
		case "mid":
			initial.Assign(e, slotMid)
		case topology.AckerComponent:
			initial.Assign(e, slotAck)
			ackExecs = append(ackExecs, e)
		default:
			initial.Assign(e, slotSpout)
		}
	}
	if len(ackExecs) != 2 {
		t.Fatalf("topology has %d acker executors, want 2", len(ackExecs))
	}
	cfg := testConfig()
	cfg.AckTimeout = ackTimeout
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	sup := StartSupervisor(eng, 5*time.Millisecond)
	t.Cleanup(func() {
		sup.Stop()
		eng.Stop()
	})
	return &shardedChaosHarness{eng: eng, ledger: ledger, sup: sup, slotAck: slotAck, ackExecs: ackExecs}
}

// TestChaosCrashAckerShard kills both acker shards mid-stream. Every
// partial XOR those shards held dies with them, so the affected roots can
// only come back through the spout's timeout wheel — the test asserts the
// wheel recovers every root (nothing lost, nothing stuck) and that the
// in-flight gauge drains exactly to zero (a double-completion would drive
// it negative and trip the conservation wait).
func TestChaosCrashAckerShard(t *testing.T) {
	h := startShardedChaos(t, 400, 60*time.Millisecond)
	waitFor(t, 10*time.Second, "steady-state acks", func() bool {
		return h.ledger.ackedCount() > 50
	})

	// Both shards must be carrying traffic before the crash: roots hash
	// root&1 across the two ackers, so each should have processed acks.
	for _, e := range h.ackExecs {
		if got := h.eng.ExecutorProcessed(e); got == 0 {
			t.Fatalf("acker shard %v processed no acks before crash", e)
		}
	}

	if killed := h.eng.CrashWorker(h.slotAck); killed != 2 {
		t.Fatalf("CrashWorker killed %d executors, want the 2 acker shards", killed)
	}

	waitFor(t, 15*time.Second, "every root acked after shard crash", func() bool {
		return h.ledger.ackedCount() >= h.ledger.limit
	})
	waitFor(t, 5*time.Second, "pending roots drained", func() bool {
		return h.eng.PendingRoots() == 0
	})
	if lost := h.ledger.lost(); len(lost) != 0 {
		t.Fatalf("lost roots after acker shard crash: %v", lost)
	}
	if pr := h.eng.PendingRoots(); pr != 0 {
		t.Fatalf("PendingRoots = %d after drain, want 0 (negative means double-ack)", pr)
	}

	tot := h.eng.Totals()
	if tot.WorkerCrashes < 2 {
		t.Errorf("WorkerCrashes = %d, want >= 2", tot.WorkerCrashes)
	}
	if tot.WorkerRestarts < 2 {
		t.Errorf("WorkerRestarts = %d, want >= 2", tot.WorkerRestarts)
	}
	if tot.CtlCombined == 0 {
		t.Error("CtlCombined = 0: sender-side ack combining never fired")
	}
}

// retainBolt keeps a reference to every tuple it receives — values and
// all — long after Execute returns, exactly what the pool ownership
// contract must make safe: batches and encode buffers recycle behind the
// receiver, so nothing a bolt was handed may ever alias pooled memory.
type retainBolt struct {
	mu   *sync.Mutex
	kept *[]tuple.Values
}

func (b *retainBolt) Prepare(*engine.Context) {}
func (b *retainBolt) Execute(tup tuple.Tuple, _ engine.Emitter) {
	b.mu.Lock()
	*b.kept = append(*b.kept, tup.Values)
	b.mu.Unlock()
}

// TestPoolRecycleNoAliasing hammers tuples across an inter-node boundary
// (so encode buffers and message batches churn through the pools) into a
// bolt that retains every Values slice it sees. After the run it checks
// each retained tuple still carries its original payload: if a recycled
// batch or codec buffer aliased a live tuple, the contents would have
// been cleared or overwritten by later traffic (and -race would flag the
// concurrent write).
func TestPoolRecycleNoAliasing(t *testing.T) {
	const n = 50000
	b := topology.NewBuilder("pool-alias", 2)
	b.Spout("s", 1).Output("", "seq", "payload")
	b.Bolt("keep", 1).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var kept []tuple.Values
	app := &engine.App{
		Topology: top,
		Spouts: map[string]func() engine.Spout{"s": func() engine.Spout {
			return &seqPayloadSpout{limit: n}
		}},
		Bolts: map[string]func() engine.Bolt{"keep": func() engine.Bolt {
			return &retainBolt{mu: &mu, kept: &kept}
		}},
	}
	cl, err := cluster.Uniform(2, 2, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Spout on node01, bolt on node02: every hop serializes.
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		if e.Component == "s" {
			initial.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
		} else {
			initial.Assign(e, cluster.SlotID{Node: "node02", Port: cluster.BasePort})
		}
	}
	eng, err := NewEngine(testConfig(), cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	waitFor(t, 20*time.Second, "all payloads delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(kept) >= n
	})
	eng.Stop()

	// Pools must have actually recycled for the test to mean anything.
	var hits int64
	for _, ps := range eng.PoolStats() {
		hits += ps.Hits
	}
	if hits == 0 {
		t.Fatal("pool hits = 0: nothing was recycled, test exercised nothing")
	}

	mu.Lock()
	defer mu.Unlock()
	seen := make(map[int64]bool, n)
	for i, vals := range kept {
		if len(vals) != 2 {
			t.Fatalf("kept[%d] has %d values, want 2 (recycled batch clobbered it?)", i, len(vals))
		}
		seq, ok := vals[0].(int64)
		if !ok {
			t.Fatalf("kept[%d][0] = %T, want int64", i, vals[0])
		}
		want := fmt.Sprintf("payload-%d", seq)
		if got, _ := vals[1].(string); got != want {
			t.Fatalf("kept[%d] payload = %q, want %q: pooled memory aliased a live tuple", i, vals[1], want)
		}
		seen[seq] = true
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct sequences, want %d", len(seen), n)
	}
}

// seqPayloadSpout emits (seq, "payload-<seq>") pairs up to limit, then
// idles.
type seqPayloadSpout struct {
	limit int
	seq   int
}

func (s *seqPayloadSpout) Open(*engine.Context) {}
func (s *seqPayloadSpout) NextTuple(em engine.SpoutEmitter) {
	if s.seq >= s.limit {
		return
	}
	em.Emit("", tuple.Values{int64(s.seq), fmt.Sprintf("payload-%d", s.seq)})
	s.seq++
}
func (s *seqPayloadSpout) Ack(any)  {}
func (s *seqPayloadSpout) Fail(any) {}
