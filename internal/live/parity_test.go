package live

import (
	"reflect"
	"testing"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

// TestLiveSimSchedulingParity feeds identical measurement windows through
// both ingestion paths — the simulated monitors' per-sample
// UpdateExecutorLoad/UpdateTraffic calls and the live monitor's batched
// ApplyWindow — and asserts the load database converges to the same
// snapshot and, therefore, that the unchanged Algorithm 1 produces the
// identical assignment regardless of which backend produced the
// measurements.
func TestLiveSimSchedulingParity(t *testing.T) {
	b := topology.NewBuilder("wc", 3)
	b.Spout("src", 2).Output("", "line")
	b.Bolt("split", 2).Shuffle("src").Output("", "word")
	b.Bolt("count", 3).Fields("split", "word")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Uniform(3, 4, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	ex := func(comp string, i int) topology.ExecutorID {
		return topology.ExecutorID{Topology: "wc", Component: comp, Index: i}
	}

	// Three deterministic monitoring windows with skewed, drifting rates.
	type window struct {
		loads map[topology.ExecutorID]float64
		flows map[loaddb.FlowKey]float64
	}
	var windows []window
	for w := 0; w < 3; w++ {
		drift := float64(w) * 7.5
		loads := make(map[topology.ExecutorID]float64)
		flows := make(map[loaddb.FlowKey]float64)
		for i := 0; i < 2; i++ {
			loads[ex("src", i)] = 120 + 40*float64(i) + drift
			loads[ex("split", i)] = 200 - 35*float64(i) + drift
		}
		for i := 0; i < 3; i++ {
			loads[ex("count", i)] = 90 + 25*float64(i) - drift
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				flows[loaddb.FlowKey{From: ex("src", i), To: ex("split", j)}] =
					900 + 300*float64(i) - 150*float64(j) + drift
			}
			for j := 0; j < 3; j++ {
				flows[loaddb.FlowKey{From: ex("split", i), To: ex("count", j)}] =
					500 + 120*float64(j) - 90*float64(i) - drift
			}
		}
		windows = append(windows, window{loads: loads, flows: flows})
	}

	dbSim := loaddb.New(0.5)
	dbLive := loaddb.New(0.5)
	for _, w := range windows {
		for e, mhz := range w.loads {
			dbSim.UpdateExecutorLoad(e, mhz)
		}
		for k, r := range w.flows {
			dbSim.UpdateTraffic(k.From, k.To, r)
		}
		dbLive.ApplyWindow(w.loads, w.flows)
	}

	snapSim, snapLive := dbSim.Snapshot(), dbLive.Snapshot()
	if !reflect.DeepEqual(snapSim, snapLive) {
		t.Fatalf("snapshots diverge:\n sim  %+v\n live %+v", snapSim, snapLive)
	}

	algo := core.NewTrafficAware(1.5)
	tops := []*topology.Topology{top}
	aSim, err := algo.Schedule(scheduler.NewInput(tops, cl, snapSim, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	aLive, err := algo.Schedule(scheduler.NewInput(tops, cl, snapLive, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if !aSim.Equal(aLive) {
		t.Fatalf("assignments diverge:\n sim  %v\n live %v", aSim.Executors, aLive.Executors)
	}
	// The schedule must cover every executor.
	for _, e := range top.Executors() {
		if _, ok := aSim.Slot(e); !ok {
			t.Errorf("executor %v unplaced", e)
		}
	}
}
