package live

import (
	"time"

	"tstorm/internal/tuple"
)

// timeoutWheel is a coarse-tick hashed timing wheel tracking when each
// outstanding root times out. Unlike the simulation — which affords one
// exact sim.Timer per root — the live runtime amortizes timeouts into
// buckets a fixed tick apart: registering, cancelling and advancing are
// all O(1) amortized, and a root fires at most one tick late, which is
// noise against a 30 s (or even a 50 ms test) timeout.
//
// A wheel belongs to one spout executor and is driven entirely by that
// spout's goroutine (register on emit, cancel on ack, advance once per
// emit cycle), so it needs no locks.
type timeoutWheel struct {
	tick    time.Duration
	buckets []map[tuple.ID]struct{}
	slot    map[tuple.ID]int // root → bucket holding it
	pos     int              // bucket whose deadline is next
	last    time.Time        // wall time pos last advanced
}

// wheelTicks is how many ticks one timeout spans: the firing error is
// timeout/wheelTicks (floored at wheelMinTick).
const (
	wheelTicks    = 32
	wheelMinTick  = time.Millisecond
	wheelCapacity = wheelTicks + 2 // timeout span + insert slack + in-progress tick
)

// newTimeoutWheel sizes a wheel for the given timeout, starting at now.
func newTimeoutWheel(timeout time.Duration, now time.Time) *timeoutWheel {
	tick := timeout / wheelTicks
	if tick < wheelMinTick {
		tick = wheelMinTick
	}
	w := &timeoutWheel{
		tick:    tick,
		buckets: make([]map[tuple.ID]struct{}, wheelCapacity),
		slot:    make(map[tuple.ID]int),
		last:    now,
	}
	for i := range w.buckets {
		w.buckets[i] = make(map[tuple.ID]struct{})
	}
	return w
}

// add registers a root due after the given timeout. A root already
// registered is moved to the new deadline (replays re-arm the clock).
// Deadlines are measured against the wheel's own clock (last), which may
// lag now if the spout stalled; measuring against it — and growing the
// ring when the lag would not fit — guarantees a root never fires early.
func (w *timeoutWheel) add(root tuple.ID, timeout time.Duration, now time.Time) {
	if b, ok := w.slot[root]; ok {
		delete(w.buckets[b], root)
	}
	// +1 rounds up so a root never fires before its deadline.
	ticks := int((now.Sub(w.last)+timeout)/w.tick) + 1
	if ticks >= len(w.buckets) {
		w.grow(ticks + 1)
	}
	b := (w.pos + ticks) % len(w.buckets)
	w.buckets[b][root] = struct{}{}
	w.slot[root] = b
}

// grow rebuilds the ring with at least minLen buckets, preserving every
// root's remaining offset from pos. Rare: only a spout stalled longer than
// the timeout span needs it.
func (w *timeoutWheel) grow(minLen int) {
	old := w.buckets
	oldPos := w.pos
	buckets := make([]map[tuple.ID]struct{}, minLen)
	for i := range buckets {
		buckets[i] = make(map[tuple.ID]struct{})
	}
	for root, b := range w.slot {
		off := (b - oldPos + len(old)) % len(old)
		buckets[off][root] = struct{}{}
		w.slot[root] = off
	}
	w.buckets = buckets
	w.pos = 0
}

// cancel removes a root (acked before its deadline); it reports whether
// the root was present.
func (w *timeoutWheel) cancel(root tuple.ID) bool {
	b, ok := w.slot[root]
	if !ok {
		return false
	}
	delete(w.buckets[b], root)
	delete(w.slot, root)
	return true
}

// expire advances the wheel to now and returns every root whose deadline
// passed. The append-to-nil pattern keeps the common empty case
// allocation-free.
func (w *timeoutWheel) expire(now time.Time) []tuple.ID {
	var due []tuple.ID
	for now.Sub(w.last) >= w.tick {
		w.last = w.last.Add(w.tick)
		w.pos = (w.pos + 1) % len(w.buckets)
		b := w.buckets[w.pos]
		for root := range b {
			due = append(due, root)
			delete(w.slot, root)
		}
		if len(b) > 0 {
			w.buckets[w.pos] = make(map[tuple.ID]struct{})
		}
	}
	return due
}

// pendingLen reports how many roots are registered (test hook).
func (w *timeoutWheel) pendingLen() int { return len(w.slot) }
