package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/logx"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tuple"
)

// RestartRecord documents one supervised restart: which executor came
// back, its 1-based attempt number, the backoff the schedule imposed
// before this attempt, and the wait actually observed (crash → restart;
// always ≥ Backoff, plus scan-period jitter). Tests assert the schedule
// is genuinely exponential from these records, not merely that restarts
// happened.
type RestartRecord struct {
	Executor topology.ExecutorID
	Attempt  int
	Backoff  time.Duration
	Waited   time.Duration
	At       time.Time
}

// Supervisor restart pacing: a freshly crashed executor waits BackoffBase,
// doubling per consecutive restart up to BackoffCap — Storm's supervisor
// keeps relaunching a crashing worker, but ever more slowly.
const (
	DefaultSupervisorPeriod = 50 * time.Millisecond
	DefaultBackoffBase      = 100 * time.Millisecond
	DefaultBackoffCap       = 10 * time.Second
)

// Supervisor scans for dead executors and restarts them with fresh
// user-code instances — the live analogue of a Storm supervisor daemon
// relaunching crashed worker JVMs. Executors whose current slot sits on a
// down node are left dead: the scheduling layer must first move them (the
// monitor hides the node and the generator fences it, so Algorithm 1's
// next schedule does), or RecoverNode must bring the node back.
type Supervisor struct {
	eng    *Engine
	period time.Duration
	base   time.Duration
	cap    time.Duration
	log    *logx.Logger

	restarts atomic.Int64

	// histMu guards history, the append-only restart log.
	histMu  sync.Mutex
	history []RestartRecord

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// StartSupervisor launches the restart scan loop. period <= 0 uses the
// default 50 ms scan cadence.
func StartSupervisor(eng *Engine, period time.Duration) *Supervisor {
	if period <= 0 {
		period = DefaultSupervisorPeriod
	}
	log := eng.cfg.Log
	if log == nil {
		log = logx.Nop()
	}
	s := &Supervisor{
		eng:    eng,
		period: period,
		base:   DefaultBackoffBase,
		cap:    DefaultBackoffCap,
		log:    log,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Supervisor) loop() {
	defer close(s.done)
	tk := time.NewTicker(s.period)
	defer tk.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.eng.stopCh:
			return
		case <-tk.C:
			s.Scan()
		}
	}
}

// Stop halts the supervisor and waits for its goroutine to exit. Safe to
// call repeatedly.
func (s *Supervisor) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

// Restarts reports how many executor restarts this supervisor performed.
func (s *Supervisor) Restarts() int { return int(s.restarts.Load()) }

// History returns a copy of the restart log in restart order.
func (s *Supervisor) History() []RestartRecord {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return append([]RestartRecord(nil), s.history...)
}

// Backoff exposes the schedule: the wait imposed before restart attempt
// n (0-based), doubling from the base up to the cap.
func (s *Supervisor) Backoff(n int) time.Duration { return s.backoff(n) }

// backoff returns the wait before restart number n (0-based).
func (s *Supervisor) backoff(n int) time.Duration {
	d := s.base
	for i := 0; i < n && d < s.cap; i++ {
		d *= 2
	}
	if d > s.cap {
		d = s.cap
	}
	return d
}

// Scan restarts every dead executor whose backoff elapsed and whose node
// is up. It returns how many were restarted this pass (benchmarks and
// tests call it directly for deterministic recovery).
func (s *Supervisor) Scan() int {
	eng := s.eng
	if eng.stopped.Load() {
		return 0
	}
	now := time.Now()
	var due []*liveExec
	eng.mu.RLock()
	for _, le := range eng.execs {
		if le.state != stateDead {
			continue
		}
		if eng.downNodes[eng.placement[le.id].Node] {
			continue
		}
		if now.Sub(le.crashedAt) < s.backoff(le.restarts) {
			continue
		}
		due = append(due, le)
	}
	eng.mu.RUnlock()
	n := 0
	for _, le := range due {
		if s.restartExec(le) {
			n++
		}
	}
	return n
}

// restartExec brings one dead executor back as a fresh incarnation:
// drainer stopped, fresh user-code instance opened (state loss, as in
// Storm), spout-side reliability state reset, new die/gone channels, new
// goroutine. It reports whether a restart happened (false if the executor
// was not dead anymore or the engine is stopping).
func (s *Supervisor) restartExec(le *liveExec) bool {
	eng := s.eng
	eng.mu.Lock()
	if le.state != stateDead || eng.stopped.Load() {
		eng.mu.Unlock()
		return false
	}
	// Claim the executor so a concurrent caller cannot double-restart.
	le.state = stateDying
	drainStop, drainDone := le.drainStop, le.drainDone
	rec := RestartRecord{
		Executor: le.id,
		Attempt:  le.restarts + 1,
		Backoff:  s.backoff(le.restarts),
		Waited:   time.Since(le.crashedAt),
		At:       time.Now(),
	}
	eng.mu.Unlock()

	// Stop the drainer and wait it out: the queue must never see two
	// consumers, and the new incarnation is the next one.
	if drainStop != nil {
		close(drainStop)
		<-drainDone
	}

	// Fresh user-code instances — executor state does not survive a crash,
	// exactly as in Storm. (Factories run outside eng.mu so user code can
	// never deadlock against engine internals.)
	var (
		spout = le.spout
		bolt  = le.bolt
	)
	switch le.kind {
	case spoutExec:
		spout = le.app.Spouts[le.id.Component]()
		spout.Open(le.ctx)
	case boltExec:
		bolt = le.app.Bolts[le.id.Component]()
		bolt.Prepare(le.ctx)
	}

	eng.mu.Lock()
	le.spout, le.bolt = spout, bolt
	if le.kind == spoutExec && le.anchored {
		// The previous incarnation's in-flight roots are gone; replays of
		// their msgIDs arrive as brand-new roots. Stale completion events
		// for old roots are discarded by the drain (unknown root).
		le.pendingRoots = make(map[tuple.ID]*livePendingRoot)
		le.firstEmit = make(map[any]time.Time)
		le.outstanding = 0
		le.ackMu.Lock()
		le.ackEvents = nil
		le.ackMu.Unlock()
	}
	le.die = make(chan struct{})
	le.gone = make(chan struct{})
	le.drainStop, le.drainDone = nil, nil
	le.restarts++
	le.crashedAt = time.Time{}
	le.state = stateAlive
	le.dead.Store(false)
	eng.wg.Add(1)
	go le.run(le.die, le.gone)
	eng.mu.Unlock()

	s.restarts.Add(1)
	s.histMu.Lock()
	s.history = append(s.history, rec)
	s.histMu.Unlock()
	eng.workerRestarts.Add(1)
	eng.emit(trace.WorkerRestarted, le.id.Topology, "",
		fmt.Sprintf("%s restarted (attempt %d)", le.id, le.restarts))
	s.log.With("executor", le.id.String()).Infof("restarted attempt=%d waited=%s",
		rec.Attempt, rec.Waited.Round(time.Millisecond))
	return true
}
