package live

import (
	"reflect"
	"testing"

	"tstorm/internal/tuple"
)

type opaque struct{ s string }

func TestCodecRoundTripPreservesTypes(t *testing.T) {
	in := tuple.Values{
		nil,
		"hello",
		[]byte{1, 2, 3},
		true,
		false,
		int(-42),
		int8(-8),
		int16(-16),
		int32(-32),
		int64(-64),
		uint(42),
		uint8(8),
		uint16(16),
		uint32(32),
		uint64(64),
		float32(2.5),
		float64(-3.75),
		opaque{s: "by-reference"},
	}
	enc, extras := encodeValues(in)
	if len(extras) != 1 {
		t.Fatalf("extras = %d, want 1", len(extras))
	}
	out, err := decodeValues(enc, extras)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tuple.Values(out), in) {
		t.Fatalf("round trip mismatch:\n in  %#v\n out %#v", in, out)
	}
	for i := range in {
		if in[i] == nil {
			continue
		}
		if reflect.TypeOf(out[i]) != reflect.TypeOf(in[i]) {
			t.Fatalf("value %d: type %T became %T", i, in[i], out[i])
		}
	}
}

func TestCodecEmptyAndErrors(t *testing.T) {
	enc, extras := encodeValues(nil)
	out, err := decodeValues(enc, extras)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round trip: %v, %v", out, err)
	}
	if _, err := decodeValues([]byte{}, nil); err == nil {
		t.Fatal("empty buffer should fail")
	}
	// Truncated payload: claim one value, provide none.
	if _, err := decodeValues([]byte{1}, nil); err == nil {
		t.Fatal("truncated buffer should fail")
	}
	// Unknown tag.
	if _, err := decodeValues([]byte{1, 200}, nil); err == nil {
		t.Fatal("unknown tag should fail")
	}
	// Extra index out of range.
	enc2, _ := encodeValues(tuple.Values{opaque{}})
	if _, err := decodeValues(enc2, nil); err == nil {
		t.Fatal("missing extras should fail")
	}
}
