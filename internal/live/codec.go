package live

import (
	"encoding/binary"
	"fmt"
	"math"

	"tstorm/internal/tuple"
)

// The live runtime's wire codec: a compact, type-preserving binary
// encoding of tuple payloads, applied on every transfer that crosses a
// worker-process boundary. It exists to make remote hops cost real CPU
// (and local hops none), so the serialization work Algorithm 1 removes by
// co-locating chatty executors is real work — but it is also a faithful
// round-trip: every common payload type decodes back to the exact Go type
// that was encoded. Values outside the supported set are passed by
// reference in a side list and charged only a tag byte, keeping the
// engine total over arbitrary payloads.

const (
	tagNil = iota
	tagString
	tagBytes
	tagBool
	tagInt
	tagInt8
	tagInt16
	tagInt32
	tagInt64
	tagUint
	tagUint8
	tagUint16
	tagUint32
	tagUint64
	tagFloat32
	tagFloat64
	tagExtra // passed by reference via the extras list
)

// encodeValues serializes a payload. Unsupported values land in extras in
// order of appearance.
func encodeValues(vals tuple.Values) ([]byte, []any) {
	return encodeValuesInto(make([]byte, 0, 16+8*len(vals)), vals)
}

// encodeValuesInto serializes a payload appending to buf — the hot remote
// emission path hands in a pooled buffer so steady-state encoding
// allocates nothing.
func encodeValuesInto(buf []byte, vals tuple.Values) ([]byte, []any) {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	var extras []any
	for _, v := range vals {
		switch x := v.(type) {
		case nil:
			buf = append(buf, tagNil)
		case string:
			buf = append(buf, tagString)
			buf = binary.AppendUvarint(buf, uint64(len(x)))
			buf = append(buf, x...)
		case []byte:
			buf = append(buf, tagBytes)
			buf = binary.AppendUvarint(buf, uint64(len(x)))
			buf = append(buf, x...)
		case bool:
			b := byte(0)
			if x {
				b = 1
			}
			buf = append(buf, tagBool, b)
		case int:
			buf = append(buf, tagInt)
			buf = binary.AppendVarint(buf, int64(x))
		case int8:
			buf = append(buf, tagInt8)
			buf = binary.AppendVarint(buf, int64(x))
		case int16:
			buf = append(buf, tagInt16)
			buf = binary.AppendVarint(buf, int64(x))
		case int32:
			buf = append(buf, tagInt32)
			buf = binary.AppendVarint(buf, int64(x))
		case int64:
			buf = append(buf, tagInt64)
			buf = binary.AppendVarint(buf, x)
		case uint:
			buf = append(buf, tagUint)
			buf = binary.AppendUvarint(buf, uint64(x))
		case uint8:
			buf = append(buf, tagUint8)
			buf = binary.AppendUvarint(buf, uint64(x))
		case uint16:
			buf = append(buf, tagUint16)
			buf = binary.AppendUvarint(buf, uint64(x))
		case uint32:
			buf = append(buf, tagUint32)
			buf = binary.AppendUvarint(buf, uint64(x))
		case uint64:
			buf = append(buf, tagUint64)
			buf = binary.AppendUvarint(buf, x)
		case float32:
			buf = append(buf, tagFloat32)
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
		case float64:
			buf = append(buf, tagFloat64)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		default:
			buf = append(buf, tagExtra)
			buf = binary.AppendUvarint(buf, uint64(len(extras)))
			extras = append(extras, v)
		}
	}
	return buf, extras
}

// EncodeValues serializes a tuple payload with the live wire codec.
// Values outside the supported scalar set are returned in extras (passed
// by reference, in order of appearance); a payload with a non-empty extras
// list cannot cross a process boundary.
func EncodeValues(vals tuple.Values) (buf []byte, extras []any) {
	return encodeValues(vals)
}

// DecodeValues reverses EncodeValues. It is safe on untrusted input:
// truncated, corrupt, or adversarial-length payloads return an error —
// never a panic, and never an allocation larger than the input itself.
func DecodeValues(buf []byte, extras []any) (tuple.Values, error) {
	return decodeValues(buf, extras)
}

// decodeValues reverses encodeValues. The input may come off a socket, so
// every length read from the buffer is validated against the bytes that
// actually remain before it is used for allocation or slicing: a value
// count or byte length can claim at most what the frame physically holds
// (each value costs at least its tag byte), which bounds allocations by
// the input size and keeps a huge uint64 length from sneaking through an
// int conversion as a negative number.
func decodeValues(buf []byte, extras []any) (tuple.Values, error) {
	n, off := binary.Uvarint(buf)
	if off <= 0 {
		return nil, fmt.Errorf("live: bad payload header")
	}
	if n > uint64(len(buf)-off) {
		return nil, fmt.Errorf("live: payload claims %d values in %d bytes", n, len(buf)-off)
	}
	pos := off
	vals := make(tuple.Values, 0, n)
	readUvarint := func() (uint64, error) {
		v, w := binary.Uvarint(buf[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("live: truncated uvarint at %d", pos)
		}
		pos += w
		return v, nil
	}
	readVarint := func() (int64, error) {
		v, w := binary.Varint(buf[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("live: truncated varint at %d", pos)
		}
		pos += w
		return v, nil
	}
	for i := uint64(0); i < n; i++ {
		if pos >= len(buf) {
			return nil, fmt.Errorf("live: truncated payload at value %d", i)
		}
		tag := buf[pos]
		pos++
		switch tag {
		case tagNil:
			vals = append(vals, nil)
		case tagString, tagBytes:
			l, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if l > uint64(len(buf)-pos) {
				return nil, fmt.Errorf("live: truncated %d-byte value at %d", l, pos)
			}
			raw := buf[pos : pos+int(l)]
			pos += int(l)
			if tag == tagString {
				vals = append(vals, string(raw))
			} else {
				cp := make([]byte, l)
				copy(cp, raw)
				vals = append(vals, cp)
			}
		case tagBool:
			if pos >= len(buf) {
				return nil, fmt.Errorf("live: truncated bool at %d", pos)
			}
			vals = append(vals, buf[pos] == 1)
			pos++
		case tagInt, tagInt8, tagInt16, tagInt32, tagInt64:
			v, err := readVarint()
			if err != nil {
				return nil, err
			}
			switch tag {
			case tagInt:
				vals = append(vals, int(v))
			case tagInt8:
				vals = append(vals, int8(v))
			case tagInt16:
				vals = append(vals, int16(v))
			case tagInt32:
				vals = append(vals, int32(v))
			default:
				vals = append(vals, v)
			}
		case tagUint, tagUint8, tagUint16, tagUint32, tagUint64:
			v, err := readUvarint()
			if err != nil {
				return nil, err
			}
			switch tag {
			case tagUint:
				vals = append(vals, uint(v))
			case tagUint8:
				vals = append(vals, uint8(v))
			case tagUint16:
				vals = append(vals, uint16(v))
			case tagUint32:
				vals = append(vals, uint32(v))
			default:
				vals = append(vals, v)
			}
		case tagFloat32:
			if pos+4 > len(buf) {
				return nil, fmt.Errorf("live: truncated float32 at %d", pos)
			}
			vals = append(vals, math.Float32frombits(binary.LittleEndian.Uint32(buf[pos:])))
			pos += 4
		case tagFloat64:
			if pos+8 > len(buf) {
				return nil, fmt.Errorf("live: truncated float64 at %d", pos)
			}
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case tagExtra:
			idx, err := readUvarint()
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(extras)) {
				return nil, fmt.Errorf("live: extra index %d out of range", idx)
			}
			vals = append(vals, extras[idx])
		default:
			return nil, fmt.Errorf("live: unknown payload tag %d", tag)
		}
	}
	return vals, nil
}
