package live

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/decision"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

// SchedulerTarget is the engine surface the generator schedules against.
// The in-process *Engine implements it directly; the distributed engine
// (internal/dist) implements it over its worker fleet, so the identical
// generator — and the identical Algorithm 1 — drives both backends.
type SchedulerTarget interface {
	Topologies() []string
	App(name string) (*engine.App, bool)
	Cluster() *cluster.Cluster
	CurrentAssignment(name string) (*cluster.Assignment, bool)
	DownNodes() []cluster.NodeID
	Apply(name string, next *cluster.Assignment) (int, error)
	Totals() Totals
	Done() <-chan struct{}
}

var _ SchedulerTarget = (*Engine)(nil)

// GeneratorConfig holds the live schedule generator's knobs.
type GeneratorConfig struct {
	// Period is the regular scheduling interval (paper: 300 s).
	Period time.Duration
	// CapacityFraction sets C_k as a fraction of nominal node capacity.
	CapacityFraction float64
	// ImprovementThreshold is the minimum relative inter-node traffic gain
	// a new schedule must offer (when it does not reduce node count) to be
	// worth the migration (default 0.10, as in the simulated generator).
	ImprovementThreshold float64
	// History, when non-nil, receives a decision report and a
	// traffic-matrix snapshot for every generation, and — after each
	// apply — the prediction baseline the telemetry layer reconciles
	// against the engine's observed inter-node counters.
	History *decision.History
}

// DefaultGeneratorConfig matches the paper's settings.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Period:               300 * time.Second,
		CapacityFraction:     0.9,
		ImprovementThreshold: 0.10,
	}
}

// Generator is the live runtime's schedule generator: the same role as the
// simulated internal/core daemon, re-timed to wall clock. It reads load
// snapshots, runs the active algorithm over the shared scheduler.NewInput
// path, and applies improving schedules through Engine.Apply. Algorithms
// hot-swap exactly as in the simulated stack.
type Generator struct {
	eng SchedulerTarget
	db  *loaddb.DB
	cfg GeneratorConfig

	registry *scheduler.Registry
	algoMu   sync.Mutex
	algo     scheduler.Algorithm

	generations atomic.Int64
	applied     atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// StartGenerator launches the periodic generation goroutine. algo is the
// initial algorithm; the registry is pre-populated with every built-in
// scheduler so any of them can be hot-swapped in by name, and algo is
// registered last so the running instance wins a name clash.
func StartGenerator(eng SchedulerTarget, db *loaddb.DB, cfg GeneratorConfig, algo scheduler.Algorithm) (*Generator, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("live: non-positive generator period")
	}
	if cfg.CapacityFraction <= 0 || cfg.CapacityFraction > 1 {
		return nil, fmt.Errorf("live: capacity fraction %v out of (0,1]", cfg.CapacityFraction)
	}
	if cfg.ImprovementThreshold < 0 || cfg.ImprovementThreshold >= 1 {
		return nil, fmt.Errorf("live: improvement threshold %v out of [0,1)", cfg.ImprovementThreshold)
	}
	g := &Generator{
		eng:      eng,
		db:       db,
		cfg:      cfg,
		registry: scheduler.NewRegistry(),
		algo:     algo,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	scheduler.RegisterBuiltins(g.registry)
	g.registry.Register(algo)
	go g.loop()
	return g, nil
}

func (g *Generator) loop() {
	defer close(g.done)
	tk := time.NewTicker(g.cfg.Period)
	defer tk.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-g.eng.Done():
			return
		case <-tk.C:
			g.Generate()
		}
	}
}

// Stop halts periodic generation and waits for the goroutine to exit.
func (g *Generator) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	<-g.done
}

// Registry exposes the generator's algorithm registry.
func (g *Generator) Registry() *scheduler.Registry { return g.registry }

// Algorithm returns the active algorithm.
func (g *Generator) Algorithm() scheduler.Algorithm {
	g.algoMu.Lock()
	defer g.algoMu.Unlock()
	return g.algo
}

// SetAlgorithm hot-swaps the scheduling algorithm; the next generation
// uses it. Nothing in the engine is stopped or reconfigured.
func (g *Generator) SetAlgorithm(a scheduler.Algorithm) {
	g.registry.Register(a)
	g.algoMu.Lock()
	g.algo = a
	g.algoMu.Unlock()
}

// SwapTo hot-swaps to a previously registered algorithm by name.
func (g *Generator) SwapTo(name string) error {
	a, ok := g.registry.Get(name)
	if !ok {
		return fmt.Errorf("live: algorithm %q not registered", name)
	}
	g.algoMu.Lock()
	g.algo = a
	g.algoMu.Unlock()
	return nil
}

// Generations reports how many scheduling runs completed.
func (g *Generator) Generations() int { return int(g.generations.Load()) }

// Applied reports how many re-assignments were applied.
func (g *Generator) Applied() int { return int(g.applied.Load()) }

// Generate runs the active algorithm over the current load snapshot and
// applies any schedule that meaningfully improves on the live assignment
// (fewer nodes, or enough less inter-node traffic). It is a no-op until
// the monitor has stored load data.
func (g *Generator) Generate() bool { return g.generate(false) }

// Reschedule forces a generation that applies any differing schedule,
// bypassing the improvement threshold — the overload path, and what
// benchmarks use for a deterministic re-assignment instant.
func (g *Generator) Reschedule() bool { return g.generate(true) }

func (g *Generator) generate(force bool) bool {
	if !g.db.HasData() {
		return false
	}
	names := g.eng.Topologies()
	if len(names) == 0 {
		return false
	}
	var tops []*topology.Topology
	for _, name := range names {
		app, _ := g.eng.App(name)
		tops = append(tops, app.Topology)
	}
	snap := g.db.Snapshot()
	in := scheduler.NewInput(tops, g.eng.Cluster(), snap, g.cfg.CapacityFraction)
	// Fence failed nodes off the candidate set so Algorithm 1 reschedules
	// the dead executors around them.
	for _, down := range g.eng.DownNodes() {
		in.OccupyNode(down)
	}
	if g.cfg.History != nil {
		in.Probe = decision.NewBuilder()
	}
	incumbent := cluster.NewAssignment(0)
	for _, name := range names {
		if a, ok := g.eng.CurrentAssignment(name); ok {
			for e, s := range a.Executors {
				incumbent.Assign(e, s)
			}
		}
	}
	global, err := g.Algorithm().Schedule(in)
	if err != nil {
		return false
	}
	g.generations.Add(1)
	changed := false
	for i, name := range names {
		part := cluster.NewAssignment(0)
		for _, e := range tops[i].Executors() {
			if s, ok := global.Slot(e); ok {
				part.Assign(e, s)
			}
		}
		cur, ok := g.eng.CurrentAssignment(name)
		if !ok || cur.Equal(part) {
			continue
		}
		if !force && !g.worthApplying(part, cur, snap) {
			continue
		}
		if _, err := g.eng.Apply(name, part); err == nil {
			g.applied.Add(1)
			changed = true
		}
	}
	if h := g.cfg.History; h != nil && in.Probe != nil {
		rep := in.Probe.Report()
		if len(incumbent.Executors) > 0 {
			rep.PredictedBefore = decision.InterNodeRate(incumbent, snap)
		}
		rep.Moved = decision.MovedExecutors(global, incumbent)
		rep.Applied = changed
		h.Add(rep)
		h.RecordTraffic(time.Now(), snap)
		// Anchor the reconciliation on whatever schedule is now live: the
		// generated one after an apply, the unchanged incumbent otherwise.
		predicted := rep.PredictedAfter
		if !changed && rep.Moved != 0 && rep.PredictedBefore >= 0 {
			predicted = rep.PredictedBefore
		}
		h.SetBaseline(predicted, g.eng.Totals().InterNodeSent, time.Now())
	}
	return changed
}

// worthApplying mirrors the simulated generator's disruption gate: the new
// schedule must use fewer worker nodes, or cut inter-node traffic by at
// least the improvement threshold.
func (g *Generator) worthApplying(next, cur *cluster.Assignment, load *loaddb.Snapshot) bool {
	if next.NumUsedNodes() < cur.NumUsedNodes() {
		return true
	}
	curT := core.InterNodeTraffic(cur, load)
	nextT := core.InterNodeTraffic(next, load)
	return nextT < curT*(1-g.cfg.ImprovementThreshold)
}
