package live

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/engine"
	"tstorm/internal/metrics"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

type execKind int

const (
	spoutExec execKind = iota + 1
	boltExec
	ackerExec
)

// execState is an executor's supervision state, guarded by eng.mu.
type execState int

const (
	stateAlive execState = iota
	// stateDying: die closed, goroutine may still be winding down.
	stateDying
	// stateDead: goroutine reaped, drainer (if any) discarding its queue;
	// the supervisor may restart it.
	stateDead
	// stateRemote: the executor runs in another worker process; this
	// liveExec is a routing proxy (no goroutine, no user code). A
	// migration may promote it to stateAlive — or demote a local executor
	// here, starting a pump that forwards stranded queue contents.
	stateRemote
)

// liveMsg is one tuple in flight between two executors. For remote hops
// (different slots) the payload travels serialized in enc (+extras for
// values the codec passes by reference) and tup.Values is nil until the
// receiver decodes it — the receiver pays deserialization CPU, as a Storm
// worker would.
type liveMsg struct {
	tup    tuple.Tuple
	enc    []byte
	extras []any
	// bornAt is the wall-clock instant the root tuple left its spout,
	// propagated downstream for end-to-end latency at terminal bolts.
	bornAt time.Time
	from   int // producer's dense index
}

// liveExec is one executor: a goroutine with (for bolts) a bounded input
// queue of delivery batches. The queue is part of the executor and
// travels with it across re-assignments — the per-executor queue handoff
// of smooth migration. The goroutine is an *incarnation*: CrashWorker
// kills it and the supervisor starts a fresh one with fresh user-code
// instances (state loss, as in a real Storm worker crash); the queue and
// the identity persist across incarnations.
type liveExec struct {
	eng   *Engine
	id    topology.ExecutorID
	dense int
	comp  *topology.Component
	app   *engine.App
	kind  execKind

	spout engine.Spout
	bolt  engine.Bolt
	ctx   *engine.Context
	rand  *rand.Rand

	in       chan []liveMsg
	ctl      chan []ctlMsg // acker input (nil otherwise)
	interval time.Duration
	terminal bool
	anchored bool // spout of an acker-enabled topology

	// shuffleCtr and scratch are touched only by the owning goroutine.
	shuffleCtr map[string]int
	scratch    byte

	// Spout-side reliability state, owned by the spout goroutine of the
	// current incarnation (the supervisor resets it between incarnations,
	// when no goroutine runs).
	pendingRoots map[tuple.ID]*livePendingRoot
	firstEmit    map[any]time.Time // msgID → first emit, survives replays
	outstanding  int
	wheel        *timeoutWheel
	nextSweep    time.Time

	// ackEvents is the acker→spout completion mailbox: appended under
	// ackMu by acker goroutines (never blocking), drained by the spout.
	ackMu     sync.Mutex
	ackEvents []ackEvent

	// Supervision. dead is the router's lock-free drop check; die is
	// closed to kill the current incarnation (each goroutine holds its own
	// copy); gone is closed by the incarnation on exit. state, restarts,
	// crashedAt, drainStop and drainDone are guarded by eng.mu.
	dead      atomic.Bool
	die       chan struct{}
	gone      chan struct{}
	state     execState
	restarts  int
	crashedAt time.Time
	drainStop chan struct{}
	drainDone chan struct{}
	// pumpStop/pumpDone control the stranded-queue forwarder that runs
	// while the executor is stateRemote after a migration away from this
	// process (guarded by eng.mu, like the drainer pair).
	pumpStop chan struct{}
	pumpDone chan struct{}

	cpuNanos  atomic.Int64 // busy time since last monitor drain
	processed atomic.Int64 // lifetime tuples processed
	emitted   atomic.Int64 // lifetime emit calls

	// procLat records per-tuple process time (decode + Execute,
	// milliseconds) for bolts; atomic increments only, so the scraper can
	// read it while the executor's goroutine keeps writing. Nil for
	// spouts and ackers.
	procLat *metrics.AtomicHistogram
}

// run drives one incarnation. die and gone are this incarnation's own
// channels, passed in (not read from the struct) so a crash/restart never
// races the goroutine's view of them.
func (le *liveExec) run(die <-chan struct{}, gone chan<- struct{}) {
	defer le.eng.wg.Done()
	defer close(gone)
	switch le.kind {
	case spoutExec:
		le.runSpout(die)
	case boltExec:
		le.runBolt(die)
	default:
		le.runAcker(die)
	}
}

// haltPollInterval is how often a halted (or pending-capped) spout
// re-checks its gate.
const haltPollInterval = 500 * time.Microsecond

// runSpout drives emit cycles. As in Storm's spout executor, NextTuple is
// called in a tight loop and the configured interval is slept only after
// an empty cycle (idle backoff); when the topology is saturated the
// bounded downstream queues provide the rate control. Anchored spouts
// additionally drain completion events, advance their timeout wheel, and
// gate on MaxPending before each cycle.
func (le *liveExec) runSpout(die <-chan struct{}) {
	eng := le.eng
	idleSleep := le.interval
	if le.anchored {
		now := time.Now()
		le.wheel = newTimeoutWheel(eng.AckTimeout(), now)
		le.nextSweep = now.Add(liveZombieRetention)
	}
	for {
		select {
		case <-eng.stopCh:
			return
		case <-die:
			return
		default:
		}
		if le.anchored {
			now := time.Now()
			le.drainAckEvents()
			le.expireDueRoots(now)
			if now.After(le.nextSweep) {
				le.sweepSpoutZombies(now)
				le.nextSweep = now.Add(time.Minute)
			}
		}
		if eng.spoutsHalted.Load() {
			if !le.sleep(haltPollInterval, die) {
				return
			}
			continue
		}
		if le.anchored {
			if mp := le.effMaxPending(); mp > 0 && le.outstanding >= mp {
				if !le.sleep(haltPollInterval, die) {
					return
				}
				continue
			}
		}
		t0 := time.Now()
		em := spoutEmitter{le: le}
		le.spout.NextTuple(&em)
		le.cpuNanos.Add(int64(time.Since(t0)))
		if em.roots > 0 {
			le.emitted.Add(int64(em.roots))
			eng.rootsEmitted.Add(int64(em.roots))
		}
		delivered := true
		for i := range em.deliveries {
			if !eng.deliver(&em.deliveries[i], die) {
				delivered = false
				break
			}
		}
		if !delivered {
			return // engine stopping or incarnation killed
		}
		if le.anchored {
			if !le.flushAnchored(&em, die) {
				return
			}
		}
		// Acknowledge immediately: for unanchored topologies this is every
		// reliable emission (no ack protocol runs); for anchored ones only
		// roots that reached no consumer (complete by definition).
		if len(em.acks) > 0 {
			t1 := time.Now()
			for _, id := range em.acks {
				if le.anchored {
					eng.acked.Add(1)
					eng.rootLat.Add(0)
				}
				le.spout.Ack(id)
			}
			le.cpuNanos.Add(int64(time.Since(t1)))
		}
		if em.roots == 0 {
			if !le.sleep(idleSleep, die) {
				return
			}
		}
	}
}

// sleep waits d or until the engine stops or the incarnation is killed;
// it reports false when the executor should exit.
func (le *liveExec) sleep(d time.Duration, die <-chan struct{}) bool {
	select {
	case <-le.eng.stopCh:
		return false
	case <-die:
		return false
	case <-time.After(d):
		return true
	}
}

func (le *liveExec) runBolt(die <-chan struct{}) {
	eng := le.eng
	for {
		select {
		case <-eng.stopCh:
			return
		case <-die:
			le.dropRemaining(nil, 0)
			return
		case batch := <-le.in:
			var acks []ctlAcc
			for i := range batch {
				select {
				case <-die:
					// Crashed mid-batch: the unprocessed tail is dropped
					// (its roots replay); processed heads were acked.
					le.dropRemaining(batch, i)
					le.flushAcks(acks, die)
					return
				default:
				}
				if !le.process(batch[i], &acks, die) {
					le.dropRemaining(batch, i+1)
					return
				}
			}
			if !le.flushAcks(acks, die) {
				return
			}
		}
	}
}

// dropRemaining accounts for a batch tail abandoned by a dying bolt.
func (le *liveExec) dropRemaining(batch []liveMsg, from int) {
	if n := int64(len(batch) - from); n > 0 {
		le.eng.pending.Add(-n)
		le.eng.dropped.Add(n)
	}
}

// flushAcks sends the batch's accumulated XOR acks to their ackers.
func (le *liveExec) flushAcks(acks []ctlAcc, die <-chan struct{}) bool {
	for i := range acks {
		if !le.eng.sendCtl(le, acks[i].to, acks[i].msgs, die) {
			return false
		}
	}
	return true
}

// process runs the bolt on one input tuple and forwards its emissions.
// Anchored inputs contribute one XOR ack (input edge ^ new edges) to the
// cycle's per-acker accumulators. The matching eng.pending decrement
// happens only after every downstream emission is enqueued, so Quiesce
// cannot observe a momentarily-empty system with work still materializing.
func (le *liveExec) process(m liveMsg, acks *[]ctlAcc, die <-chan struct{}) bool {
	eng := le.eng
	t0 := time.Now()
	if m.enc != nil {
		vals, err := decodeValues(m.enc, m.extras)
		if err != nil {
			// Corrupt payload: drop the tuple (cannot happen with the
			// symmetric codec; defensive).
			le.cpuNanos.Add(int64(time.Since(t0)))
			eng.pending.Add(-1)
			return true
		}
		m.tup.Values = vals
	}
	em := boltEmitter{le: le, bornAt: m.bornAt, root: m.tup.Root}
	le.bolt.Execute(m.tup, &em)
	busy := time.Since(t0)
	le.cpuNanos.Add(int64(busy))
	le.procLat.Add(float64(busy) / 1e6)
	le.processed.Add(1)
	eng.processed.Add(1)
	if le.terminal {
		eng.sinkProcessed.Add(1)
		if !m.bornAt.IsZero() {
			eng.latency.Add(time.Since(m.bornAt).Seconds() * 1e3)
		}
	}
	var sent int64
	for i := range em.deliveries {
		sent += int64(len(em.deliveries[i].msgs))
	}
	le.emitted.Add(sent)
	ok := true
	for i := range em.deliveries {
		if !eng.deliver(&em.deliveries[i], die) {
			ok = false
			break
		}
	}
	if ok && m.tup.Root != 0 {
		if ak := le.ackerFor(eng.routes.Load(), m.tup.Root); ak != nil {
			appendCtl(acks, ak, ctlMsg{
				kind: ctlAck, root: m.tup.Root, xor: m.tup.Edge ^ em.xorAcc,
			})
		}
	}
	eng.pending.Add(-1)
	return ok
}

// newEdgeID draws a non-zero random tuple ID on the owning goroutine.
func (le *liveExec) newEdgeID() tuple.ID {
	for {
		if id := tuple.ID(le.rand.Uint64()); id != 0 {
			return id
		}
	}
}

// ---- emitters ----

type spoutEmitter struct {
	le         *liveExec
	deliveries []delivery
	acks       []any
	rootEmits  []liveRootEmit
	roots      int
}

var _ engine.SpoutEmitter = (*spoutEmitter)(nil)

func (e *spoutEmitter) Emit(stream string, vals tuple.Values) {
	n, _ := e.le.route(&e.deliveries, stream, vals, time.Now(), 0)
	if n >= 0 {
		e.roots++
	}
}

func (e *spoutEmitter) EmitWithID(stream string, vals tuple.Values, msgID any) {
	if !e.le.anchored {
		// Unanchored topology: behaves like Emit, acked after the flush.
		n, _ := e.le.route(&e.deliveries, stream, vals, time.Now(), 0)
		if n >= 0 {
			e.roots++
			e.acks = append(e.acks, msgID)
		}
		return
	}
	root := e.le.newEdgeID()
	n, xorAcc := e.le.route(&e.deliveries, stream, vals, time.Now(), root)
	if n < 0 {
		return // undeclared stream
	}
	e.roots++
	if n == 0 {
		// No consumers: the tree is complete the moment it is emitted.
		e.acks = append(e.acks, msgID)
		return
	}
	e.rootEmits = append(e.rootEmits, liveRootEmit{root: root, initXor: xorAcc, msgID: msgID})
}

func (e *spoutEmitter) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	if _, ok := e.le.routeDirect(&e.deliveries, consumer, taskIndex, stream, vals, time.Now(), 0); ok {
		e.roots++
	}
}

type boltEmitter struct {
	le         *liveExec
	bornAt     time.Time
	root       tuple.ID // anchor inherited from the input tuple (0 = unanchored)
	xorAcc     tuple.ID // XOR of the edge IDs this Execute emitted
	deliveries []delivery
}

var _ engine.Emitter = (*boltEmitter)(nil)

func (e *boltEmitter) Emit(stream string, vals tuple.Values) {
	_, xor := e.le.route(&e.deliveries, stream, vals, e.bornAt, e.root)
	e.xorAcc ^= xor
}

func (e *boltEmitter) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	eid, _ := e.le.routeDirect(&e.deliveries, consumer, taskIndex, stream, vals, e.bornAt, e.root)
	e.xorAcc ^= eid
}
