package live

import (
	"math/rand/v2"
	"sync/atomic"
	"time"

	"tstorm/internal/engine"
	"tstorm/internal/metrics"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

type execKind int

const (
	spoutExec execKind = iota + 1
	boltExec
	ackerExec
)

// liveMsg is one tuple in flight between two executors. For remote hops
// (different slots) the payload travels serialized in enc (+extras for
// values the codec passes by reference) and tup.Values is nil until the
// receiver decodes it — the receiver pays deserialization CPU, as a Storm
// worker would.
type liveMsg struct {
	tup    tuple.Tuple
	enc    []byte
	extras []any
	// bornAt is the wall-clock instant the root tuple left its spout,
	// propagated downstream for end-to-end latency at terminal bolts.
	bornAt time.Time
	from   int // producer's dense index
}

// liveExec is one executor: a goroutine with (for bolts) a bounded input
// queue of delivery batches. The queue is part of the executor and
// travels with it across re-assignments — the per-executor queue handoff
// of smooth migration.
type liveExec struct {
	eng   *Engine
	id    topology.ExecutorID
	dense int
	comp  *topology.Component
	app   *engine.App
	kind  execKind

	spout engine.Spout
	bolt  engine.Bolt
	ctx   *engine.Context
	rand  *rand.Rand

	in       chan []liveMsg
	interval time.Duration
	terminal bool

	// shuffleCtr and scratch are touched only by the owning goroutine.
	shuffleCtr map[string]int
	scratch    byte

	cpuNanos  atomic.Int64 // busy time since last monitor drain
	processed atomic.Int64 // lifetime tuples processed
	emitted   atomic.Int64 // lifetime emit calls

	// procLat records per-tuple process time (decode + Execute,
	// milliseconds) for bolts; atomic increments only, so the scraper can
	// read it while the executor's goroutine keeps writing. Nil for
	// spouts and ackers.
	procLat *metrics.AtomicHistogram
}

func (le *liveExec) run() {
	defer le.eng.wg.Done()
	switch le.kind {
	case spoutExec:
		le.runSpout()
	case boltExec:
		le.runBolt()
	default:
		// Acker executors are scheduled (they occupy assignment entries)
		// but take no traffic: the live backend runs unanchored.
		<-le.eng.stopCh
	}
}

// haltPollInterval is how often a halted spout re-checks the halt flag.
const haltPollInterval = 500 * time.Microsecond

// runSpout drives emit cycles. As in Storm's spout executor, NextTuple is
// called in a tight loop and the configured interval is slept only after
// an empty cycle (idle backoff); when the topology is saturated the
// bounded downstream queues provide the rate control.
func (le *liveExec) runSpout() {
	eng := le.eng
	idleSleep := le.interval
	for {
		select {
		case <-eng.stopCh:
			return
		default:
		}
		if eng.spoutsHalted.Load() {
			if !le.sleep(haltPollInterval) {
				return
			}
			continue
		}
		t0 := time.Now()
		em := spoutEmitter{le: le}
		le.spout.NextTuple(&em)
		le.cpuNanos.Add(int64(time.Since(t0)))
		if em.roots > 0 {
			le.emitted.Add(int64(em.roots))
			eng.rootsEmitted.Add(int64(em.roots))
		}
		delivered := true
		for i := range em.deliveries {
			if !eng.deliver(&em.deliveries[i]) {
				delivered = false
				break
			}
		}
		if !delivered {
			return // engine stopping
		}
		// Live mode runs unanchored: acknowledge reliable emissions
		// immediately so spouts retire their in-flight state.
		t1 := time.Now()
		for _, id := range em.acks {
			le.spout.Ack(id)
		}
		le.cpuNanos.Add(int64(time.Since(t1)))
		if em.roots == 0 {
			if !le.sleep(idleSleep) {
				return
			}
		}
	}
}

// sleep waits d or until the engine stops; it reports false on stop.
func (le *liveExec) sleep(d time.Duration) bool {
	select {
	case <-le.eng.stopCh:
		return false
	case <-time.After(d):
		return true
	}
}

func (le *liveExec) runBolt() {
	eng := le.eng
	for {
		select {
		case <-eng.stopCh:
			return
		case batch := <-le.in:
			for i := range batch {
				if !le.process(batch[i]) {
					return
				}
			}
		}
	}
}

// process runs the bolt on one input tuple and forwards its emissions.
// The matching eng.pending decrement happens only after every downstream
// emission is enqueued, so Quiesce cannot observe a momentarily-empty
// system with work still materializing.
func (le *liveExec) process(m liveMsg) bool {
	eng := le.eng
	t0 := time.Now()
	if m.enc != nil {
		vals, err := decodeValues(m.enc, m.extras)
		if err != nil {
			// Corrupt payload: drop the tuple (cannot happen with the
			// symmetric codec; defensive).
			le.cpuNanos.Add(int64(time.Since(t0)))
			eng.pending.Add(-1)
			return true
		}
		m.tup.Values = vals
	}
	em := boltEmitter{le: le, bornAt: m.bornAt}
	le.bolt.Execute(m.tup, &em)
	busy := time.Since(t0)
	le.cpuNanos.Add(int64(busy))
	le.procLat.Add(float64(busy) / 1e6)
	le.processed.Add(1)
	eng.processed.Add(1)
	if le.terminal {
		eng.sinkProcessed.Add(1)
		if !m.bornAt.IsZero() {
			eng.latency.Add(time.Since(m.bornAt).Seconds() * 1e3)
		}
	}
	var sent int64
	for i := range em.deliveries {
		sent += int64(len(em.deliveries[i].msgs))
	}
	le.emitted.Add(sent)
	ok := true
	for i := range em.deliveries {
		if !eng.deliver(&em.deliveries[i]) {
			ok = false
			break
		}
	}
	eng.pending.Add(-1)
	return ok
}

// ---- emitters ----

type spoutEmitter struct {
	le         *liveExec
	deliveries []delivery
	acks       []any
	roots      int
}

var _ engine.SpoutEmitter = (*spoutEmitter)(nil)

func (e *spoutEmitter) Emit(stream string, vals tuple.Values) {
	n := e.le.route(&e.deliveries, stream, vals, time.Now())
	if n >= 0 {
		e.roots++
	}
}

func (e *spoutEmitter) EmitWithID(stream string, vals tuple.Values, msgID any) {
	n := e.le.route(&e.deliveries, stream, vals, time.Now())
	if n >= 0 {
		e.roots++
		e.acks = append(e.acks, msgID)
	}
}

func (e *spoutEmitter) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	if e.le.routeDirect(&e.deliveries, consumer, taskIndex, stream, vals, time.Now()) {
		e.roots++
	}
}

type boltEmitter struct {
	le         *liveExec
	bornAt     time.Time
	deliveries []delivery
}

var _ engine.Emitter = (*boltEmitter)(nil)

func (e *boltEmitter) Emit(stream string, vals tuple.Values) {
	e.le.route(&e.deliveries, stream, vals, e.bornAt)
}

func (e *boltEmitter) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	e.le.routeDirect(&e.deliveries, consumer, taskIndex, stream, vals, e.bornAt)
}
