package live

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"tstorm/internal/engine"
	"tstorm/internal/metrics"
	"tstorm/internal/topology"
	"tstorm/internal/tracing"
	"tstorm/internal/tuple"
)

type execKind int

const (
	spoutExec execKind = iota + 1
	boltExec
	ackerExec
)

// execState is an executor's supervision state, guarded by eng.mu.
type execState int

const (
	stateAlive execState = iota
	// stateDying: die closed, goroutine may still be winding down.
	stateDying
	// stateDead: goroutine reaped, drainer (if any) discarding its queue;
	// the supervisor may restart it.
	stateDead
	// stateRemote: the executor runs in another worker process; this
	// liveExec is a routing proxy (no goroutine, no user code). A
	// migration may promote it to stateAlive — or demote a local executor
	// here, starting a pump that forwards stranded queue contents.
	stateRemote
)

// liveMsg is one tuple in flight between two executors. For remote hops
// (different slots) the payload travels serialized in enc (+extras for
// values the codec passes by reference) and tup.Values is nil until the
// receiver decodes it — the receiver pays deserialization CPU, as a Storm
// worker would.
type liveMsg struct {
	tup    tuple.Tuple
	enc    []byte
	extras []any
	// bornAt is the wall-clock instant the root tuple left its spout,
	// propagated downstream for end-to-end latency at terminal bolts.
	bornAt time.Time
	from   int // producer's dense index
	// parentSpan and sentAt carry the tracing anchor chain for sampled
	// roots only (tracing.go): the producer's own span identity (its input
	// edge, or the root for spout emissions) and the hand-off instant.
	// Zero — and never written — for unsampled tuples, so the zero-alloc
	// hot path is untouched.
	parentSpan uint64
	sentAt     int64
}

// liveExec is one executor: a goroutine with (for bolts) a bounded input
// queue of delivery batches. The queue is part of the executor and
// travels with it across re-assignments — the per-executor queue handoff
// of smooth migration. The goroutine is an *incarnation*: CrashWorker
// kills it and the supervisor starts a fresh one with fresh user-code
// instances (state loss, as in a real Storm worker crash); the queue and
// the identity persist across incarnations.
type liveExec struct {
	eng   *Engine
	id    topology.ExecutorID
	dense int
	comp  *topology.Component
	app   *engine.App
	kind  execKind

	spout engine.Spout
	bolt  engine.Bolt
	ctx   *engine.Context
	rand  *rand.Rand

	in       chan []liveMsg
	ctl      chan []ctlMsg // acker input (nil otherwise)
	interval time.Duration
	terminal bool
	anchored bool // spout of an acker-enabled topology

	// Routing state touched only by the owning goroutine: the precomputed
	// output-stream edges (with their per-edge round-robin counters) and
	// the scratch buffers chooseTargets reuses across emissions.
	outStreams    map[string]*outStream
	targetScratch []int
	localScratch  []int
	keyScratch    []byte
	scratch       byte

	// ackers is the topology's acker task list, cached once at Start (the
	// executor set never changes after Submit, so the pointers are stable
	// for the engine's lifetime). ctlSink accumulates outgoing control
	// messages between flushes; both are owned by the executor goroutine.
	ackers  []*liveExec
	ctlSink ctlSink
	// ackAccs batches an acker's completion notifications per destination
	// spout within one drain (owned by the acker goroutine).
	ackAccs []ackAcc

	// batchTarget is the spout's adaptive cross-cycle accumulation target
	// (1..spoutBatchMax), owned by the spout goroutine.
	batchTarget int

	// Persistent emitters, reset at the start of each incarnation so their
	// slices are reused across cycles instead of reallocated.
	sem spoutEmitter
	bem boltEmitter

	// Spout-side reliability state, owned by the spout goroutine of the
	// current incarnation (the supervisor resets it between incarnations,
	// when no goroutine runs).
	pendingRoots map[tuple.ID]*livePendingRoot
	firstEmit    map[any]time.Time // msgID → first emit, survives replays
	outstanding  int
	wheel        *timeoutWheel
	nextSweep    time.Time

	// ackEvents is the acker→spout completion mailbox: appended under
	// ackMu by acker goroutines (never blocking), drained by the spout.
	ackMu     sync.Mutex
	ackEvents []ackEvent

	// Supervision. dead is the router's lock-free drop check; die is
	// closed to kill the current incarnation (each goroutine holds its own
	// copy); gone is closed by the incarnation on exit. state, restarts,
	// crashedAt, drainStop and drainDone are guarded by eng.mu.
	dead      atomic.Bool
	die       chan struct{}
	gone      chan struct{}
	state     execState
	restarts  int
	crashedAt time.Time
	drainStop chan struct{}
	drainDone chan struct{}
	// pumpStop/pumpDone control the stranded-queue forwarder that runs
	// while the executor is stateRemote after a migration away from this
	// process (guarded by eng.mu, like the drainer pair).
	pumpStop chan struct{}
	pumpDone chan struct{}

	cpuNanos  atomic.Int64 // busy time since last monitor drain
	processed atomic.Int64 // lifetime tuples processed
	emitted   atomic.Int64 // lifetime emit calls

	// spans is the executor's tracing ring (nil when sampling is off);
	// curParent is the span identity the next emission inherits — the
	// input tuple's edge for bolts, the fresh root for anchored spout
	// emissions. Both touched only on the owning goroutine's sampled path.
	spans     *tracing.Ring
	curParent uint64

	// procLat records per-tuple process time (decode + Execute,
	// milliseconds) for bolts; atomic increments only, so the scraper can
	// read it while the executor's goroutine keeps writing. Nil for
	// spouts and ackers.
	procLat *metrics.AtomicHistogram
}

// run drives one incarnation. die and gone are this incarnation's own
// channels, passed in (not read from the struct) so a crash/restart never
// races the goroutine's view of them.
func (le *liveExec) run(die <-chan struct{}, gone chan<- struct{}) {
	defer le.eng.wg.Done()
	defer close(gone)
	switch le.kind {
	case spoutExec:
		le.runSpout(die)
	case boltExec:
		le.runBolt(die)
	default:
		le.runAcker(die)
	}
}

// haltPollInterval is how often a halted (or pending-capped) spout
// re-checks its gate.
const haltPollInterval = 500 * time.Microsecond

// spoutBatchMax bounds how many downstream transfers a spout accumulates
// across cycles before flushing. The adaptive target ramps toward it
// while consecutive cycles keep producing and collapses to 1 on the first
// idle cycle, so saturated spouts amortize channel sends across many
// cycles while trickle sources stay prompt.
const spoutBatchMax = 64

// boltBatchMax bounds a bolt's buffered transfers within one input batch;
// a high-fan-out Execute flushes mid-batch past it.
const boltBatchMax = 256

// runSpout drives emit cycles. As in Storm's spout executor, NextTuple is
// called in a tight loop and the configured interval is slept only after
// an empty cycle (idle backoff); when the topology is saturated the
// bounded downstream queues provide the rate control. Anchored spouts
// additionally drain completion events, advance their timeout wheel, and
// gate on MaxPending before each cycle.
//
// Emissions accumulate across cycles (cross-cycle batching): a producing
// cycle doubles the accumulation target up to spoutBatchMax, an idle one
// resets it, and buffered work always flushes before the spout parks on a
// halt or MaxPending gate so Quiesce and migration drains never wait on
// tuples sitting in an emitter.
func (le *liveExec) runSpout(die <-chan struct{}) {
	eng := le.eng
	idleSleep := le.interval
	if le.anchored {
		now := time.Now()
		le.wheel = newTimeoutWheel(eng.AckTimeout(), now)
		le.nextSweep = now.Add(liveZombieRetention)
	}
	em := &le.sem
	*em = spoutEmitter{le: le} // drop any state a crashed incarnation left
	le.dropCtl()
	le.batchTarget = 1
	for {
		select {
		case <-eng.stopCh:
			return
		case <-die:
			return
		default:
		}
		if le.anchored {
			now := time.Now()
			le.drainAckEvents()
			le.expireDueRoots(now)
			if now.After(le.nextSweep) {
				le.sweepSpoutZombies(now)
				le.nextSweep = now.Add(time.Minute)
			}
		}
		if eng.spoutsHalted.Load() {
			if !le.flushSpout(em, die) {
				return
			}
			if !le.sleep(haltPollInterval, die) {
				return
			}
			continue
		}
		if le.anchored {
			// Buffered anchored roots count against the cap: they become
			// outstanding at the flush this gate forces.
			if mp := le.effMaxPending(); mp > 0 && le.outstanding+len(em.rootEmits) >= mp {
				if !le.flushSpout(em, die) {
					return
				}
				if !le.sleep(haltPollInterval, die) {
					return
				}
				continue
			}
		}
		t0 := time.Now()
		rootsBefore := em.roots
		le.spout.NextTuple(em)
		le.cpuNanos.Add(int64(time.Since(t0)))
		cycleRoots := em.roots - rootsBefore
		if cycleRoots > 0 {
			le.emitted.Add(int64(cycleRoots))
			eng.rootsEmitted.Add(int64(cycleRoots))
			if le.batchTarget < spoutBatchMax {
				le.batchTarget *= 2
			}
		} else {
			le.batchTarget = 1
		}
		if em.buffered >= le.batchTarget || cycleRoots == 0 || len(em.acks) > 0 {
			if !le.flushSpout(em, die) {
				return
			}
		}
		if cycleRoots == 0 {
			if !le.sleep(idleSleep, die) {
				return
			}
		}
	}
}

// flushSpout pushes everything the emitter accumulated — data deliveries,
// anchored root registrations with their init messages, and deferred
// immediate acks — downstream, in that order (inits only after the data
// is enqueued, so an acker can never complete a root whose tuples were
// not yet sent). It reports false when the engine is stopping or the
// incarnation was killed.
func (le *liveExec) flushSpout(em *spoutEmitter, die <-chan struct{}) bool {
	eng := le.eng
	for i := range em.deliveries {
		if !eng.deliver(&em.deliveries[i], die) {
			return false
		}
	}
	em.deliveries = em.deliveries[:0]
	em.buffered = 0
	if le.anchored {
		if !le.flushAnchored(em, die) {
			return false
		}
	}
	em.rootEmits = em.rootEmits[:0]
	// Acknowledge immediately: for unanchored topologies this is every
	// reliable emission (no ack protocol runs); for anchored ones only
	// roots that reached no consumer (complete by definition).
	if len(em.acks) > 0 {
		t1 := time.Now()
		for _, id := range em.acks {
			if le.anchored {
				eng.acked.Add(1)
				eng.rootLat.Add(0)
			}
			le.spout.Ack(id)
		}
		le.cpuNanos.Add(int64(time.Since(t1)))
		em.acks = em.acks[:0]
	}
	em.roots = 0
	return true
}

// sleep waits d or until the engine stops or the incarnation is killed;
// it reports false when the executor should exit.
func (le *liveExec) sleep(d time.Duration, die <-chan struct{}) bool {
	select {
	case <-le.eng.stopCh:
		return false
	case <-die:
		return false
	case <-time.After(d):
		return true
	}
}

func (le *liveExec) runBolt(die <-chan struct{}) {
	eng := le.eng
	em := &le.bem
	*em = boltEmitter{le: le} // drop any state a crashed incarnation left
	le.dropCtl()
	for {
		select {
		case <-eng.stopCh:
			return
		case <-die:
			le.dropRemaining(nil, 0)
			return
		case batch := <-le.in:
			for i := range batch {
				select {
				case <-die:
					// Crashed mid-batch: the unprocessed tail AND everything
					// buffered since the last flush — downstream emissions
					// and their XOR acks alike — are dropped, so no root can
					// complete while its subtree was never delivered; the
					// spout wheel replays all of it.
					le.abortBolt(em)
					le.dropRemaining(batch, i)
					return
				default:
				}
				le.process(batch[i], em)
				if em.buffered >= boltBatchMax {
					if !le.flushBolt(em, die) {
						le.dropRemaining(batch, i+1)
						return
					}
				}
			}
			if !le.flushBolt(em, die) {
				return
			}
			eng.msgPool.put(batch)
		}
	}
}

// dropRemaining accounts for a batch tail abandoned by a dying bolt.
func (le *liveExec) dropRemaining(batch []liveMsg, from int) {
	if n := int64(len(batch) - from); n > 0 {
		le.eng.pending.Add(-n)
		le.eng.dropped.Add(n)
	}
}

// flushBolt delivers the emitter's buffered downstream batches, then the
// accumulated XOR acks, then releases the pending credits of the inputs
// processed since the last flush — in that order, so Quiesce cannot
// observe an empty system with work still materializing and an acker can
// never complete a root whose emissions were not yet enqueued. On abort
// (stop/die) the undelivered batches are recycled and the pending acks
// dropped: acking an input whose emissions never shipped would falsely
// complete its root.
func (le *liveExec) flushBolt(em *boltEmitter, die <-chan struct{}) bool {
	eng := le.eng
	ok := true
	for i := range em.deliveries {
		if ok {
			ok = eng.deliver(&em.deliveries[i], die)
		} else {
			eng.dropped.Add(int64(len(em.deliveries[i].msgs)))
			eng.recycleBatch(em.deliveries[i].msgs)
		}
	}
	em.deliveries = em.deliveries[:0]
	em.buffered = 0
	if ok {
		ok = le.flushCtl(die)
	} else {
		le.dropCtl()
	}
	eng.pending.Add(-int64(em.done))
	em.done = 0
	return ok
}

// abortBolt discards everything a dying bolt buffered since its last
// flush: un-enqueued downstream batches, their XOR acks, and the pending
// credits of the already-processed inputs (their roots replay via the
// spout wheel).
func (le *liveExec) abortBolt(em *boltEmitter) {
	eng := le.eng
	for i := range em.deliveries {
		eng.dropped.Add(int64(len(em.deliveries[i].msgs)))
		eng.recycleBatch(em.deliveries[i].msgs)
	}
	em.deliveries = em.deliveries[:0]
	em.buffered = 0
	le.dropCtl()
	eng.pending.Add(-int64(em.done))
	em.done = 0
}

// process runs the bolt on one input tuple, buffering its emissions and
// its XOR ack (input edge ^ new edges) in the persistent emitter; the
// batch-level flush ships both and releases the pending credits. Remote
// inputs are decoded here — and their pooled encode buffer recycled the
// moment decode returns, since decodeValues copies every payload out.
func (le *liveExec) process(m liveMsg, em *boltEmitter) {
	eng := le.eng
	t0 := time.Now()
	if m.enc != nil {
		vals, err := decodeValues(m.enc, m.extras)
		eng.encPool.put(m.enc)
		if err != nil {
			// Corrupt payload: drop the tuple (cannot happen with the
			// symmetric codec; defensive).
			le.cpuNanos.Add(int64(time.Since(t0)))
			eng.pending.Add(-1)
			return
		}
		m.tup.Values = vals
	}
	em.bornAt = m.bornAt
	em.root = m.tup.Root
	em.xorAcc = 0
	le.curParent = uint64(m.tup.Edge)
	le.bolt.Execute(m.tup, em)
	busy := time.Since(t0)
	if le.spans != nil && eng.sampledRoot(m.tup.Root) {
		le.recordExecute(&m, t0, busy)
	}
	le.cpuNanos.Add(int64(busy))
	le.procLat.Add(float64(busy) / 1e6)
	le.processed.Add(1)
	eng.processed.Add(1)
	if le.terminal {
		eng.sinkProcessed.Add(1)
		if !m.bornAt.IsZero() {
			eng.latency.Add(time.Since(m.bornAt).Seconds() * 1e3)
		}
	}
	if m.tup.Root != 0 && len(le.ackers) > 0 {
		le.addAck(m.tup.Root, m.tup.Edge^em.xorAcc)
	}
	em.done++
}

// newEdgeID draws a non-zero random tuple ID on the owning goroutine.
func (le *liveExec) newEdgeID() tuple.ID {
	for {
		if id := tuple.ID(le.rand.Uint64()); id != 0 {
			return id
		}
	}
}

// ---- emitters ----

type spoutEmitter struct {
	le         *liveExec
	deliveries []delivery
	acks       []any
	rootEmits  []liveRootEmit
	roots      int // roots emitted since the last flush
	buffered   int // transfers buffered since the last flush
}

var _ engine.SpoutEmitter = (*spoutEmitter)(nil)

func (e *spoutEmitter) Emit(stream string, vals tuple.Values) {
	n, _ := e.le.route(&e.deliveries, stream, vals, time.Now(), 0)
	if n >= 0 {
		e.roots++
		e.buffered += n
	}
}

func (e *spoutEmitter) EmitWithID(stream string, vals tuple.Values, msgID any) {
	if !e.le.anchored {
		// Unanchored topology: behaves like Emit, acked after the flush.
		n, _ := e.le.route(&e.deliveries, stream, vals, time.Now(), 0)
		if n >= 0 {
			e.roots++
			e.buffered += n
			e.acks = append(e.acks, msgID)
		}
		return
	}
	root := e.le.newEdgeID()
	e.le.curParent = uint64(root) // the root span parents the first hop
	n, xorAcc := e.le.route(&e.deliveries, stream, vals, time.Now(), root)
	if n < 0 {
		return // undeclared stream
	}
	e.roots++
	e.buffered += n
	if n == 0 {
		// No consumers: the tree is complete the moment it is emitted.
		e.acks = append(e.acks, msgID)
		return
	}
	e.rootEmits = append(e.rootEmits, liveRootEmit{root: root, initXor: xorAcc, msgID: msgID})
}

func (e *spoutEmitter) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	if _, ok := e.le.routeDirect(&e.deliveries, consumer, taskIndex, stream, vals, time.Now(), 0); ok {
		e.roots++
		e.buffered++
	}
}

type boltEmitter struct {
	le         *liveExec
	bornAt     time.Time
	root       tuple.ID // anchor inherited from the input tuple (0 = unanchored)
	xorAcc     tuple.ID // XOR of the edge IDs this Execute emitted
	deliveries []delivery
	buffered   int // transfers buffered since the last flush
	done       int // inputs processed since the last flush (pending credits)
}

var _ engine.Emitter = (*boltEmitter)(nil)

func (e *boltEmitter) Emit(stream string, vals tuple.Values) {
	n, xor := e.le.route(&e.deliveries, stream, vals, e.bornAt, e.root)
	e.xorAcc ^= xor
	if n > 0 {
		e.buffered += n
		e.le.emitted.Add(int64(n))
	}
}

func (e *boltEmitter) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	eid, ok := e.le.routeDirect(&e.deliveries, consumer, taskIndex, stream, vals, e.bornAt, e.root)
	e.xorAcc ^= eid
	if ok {
		e.buffered++
		e.le.emitted.Add(1)
	}
}
