package live

import (
	"tstorm/internal/cluster"
	"tstorm/internal/topology"
)

// compKey identifies one component of one topology in the routing
// snapshot's dense component index.
type compKey struct {
	topo string
	comp string
}

// routeTable is the immutable routing snapshot of the copy-on-write
// scheme that keeps eng.mu off the per-emission hot path. Submit and
// Apply rebuild a fresh table under the engine lock and publish it with
// one atomic store; emitters load it once per emission and resolve every
// target from it lock-free. Because a table is never mutated after
// publication, a single emission always observes one placement — either
// the pre-Apply or the post-Apply world, never a mix — and all costed
// work (value encoding, inter-node copy passes, the WireCost burn)
// happens with no lock held at all.
type routeTable struct {
	// byDense maps an executor's dense index to the executor itself; it
	// doubles as the monitor's iteration order when draining counters.
	byDense []*liveExec
	// denseRev maps a dense index back to the executor's identity.
	denseRev []topology.ExecutorID
	// slotOf maps a dense index to the executor's current worker slot —
	// the placement the router classifies every hop against.
	slotOf []cluster.SlotID
	// local marks executors that execute in this process; a false entry is
	// a routing proxy whose transfers leave through the engine's Remote
	// sink (all true in the classic in-process engine).
	local []bool
	// byComp maps (topology, component) to that component's executors
	// ordered by task index, so grouping target resolution is one map
	// lookup plus a slice index.
	byComp map[compKey][]*liveExec
	// groups lists the executors resident in each active slot — the
	// locality set LocalOrShuffleGrouping inspects.
	groups map[cluster.SlotID][]*liveExec
}

// emptyRouteTable is what an engine routes with before anything is
// submitted.
func emptyRouteTable() *routeTable {
	return &routeTable{
		byComp: make(map[compKey][]*liveExec),
		groups: make(map[cluster.SlotID][]*liveExec),
	}
}

// rebuildRoutesLocked derives a fresh routing snapshot from the engine's
// authoritative state and publishes it. Caller holds eng.mu (write); the
// new table shares no mutable structure with the engine — maps and
// slices are deep-copied — so readers of the previous table are never
// disturbed and the engine may keep mutating its own bookkeeping freely.
func (eng *Engine) rebuildRoutesLocked() {
	rt := &routeTable{
		byDense:  make([]*liveExec, len(eng.denseRev)),
		denseRev: append([]topology.ExecutorID(nil), eng.denseRev...),
		slotOf:   make([]cluster.SlotID, len(eng.denseRev)),
		local:    make([]bool, len(eng.denseRev)),
		byComp:   make(map[compKey][]*liveExec),
		groups:   make(map[cluster.SlotID][]*liveExec, len(eng.groups)),
	}
	for id, le := range eng.execs {
		rt.byDense[le.dense] = le
		rt.slotOf[le.dense] = eng.placement[id]
		rt.local[le.dense] = eng.isLocalSlot(eng.placement[id])
		k := compKey{topo: id.Topology, comp: id.Component}
		tasks := rt.byComp[k]
		if tasks == nil {
			tasks = make([]*liveExec, le.comp.Parallelism)
			rt.byComp[k] = tasks
		}
		tasks[id.Index] = le
	}
	for s, g := range eng.groups {
		rt.groups[s] = append([]*liveExec(nil), g...)
	}
	eng.routes.Store(rt)
}

// executor resolves one task of one component, nil when unknown.
func (rt *routeTable) executor(topo, comp string, index int) *liveExec {
	tasks := rt.byComp[compKey{topo: topo, comp: comp}]
	if index < 0 || index >= len(tasks) {
		return nil
	}
	return tasks[index]
}
