package live

import (
	"sort"
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// chaosLedger is the restart-safe source of truth a chaosSpout works from:
// it survives crashes (the engine builds fresh spout instances around it)
// and records, per sequence number, whether the tuple was issued, acked,
// or needs a replay. It doubles as the conservation oracle: a run is clean
// when every sequence below limit acked at least once and nothing is in
// flight.
type chaosLedger struct {
	mu       sync.Mutex
	limit    int
	next     int
	inflight map[int]bool
	acked    map[int]int
	replays  []int
	opens    int
}

func newChaosLedger(limit int) *chaosLedger {
	return &chaosLedger{limit: limit, inflight: make(map[int]bool), acked: make(map[int]int)}
}

func (l *chaosLedger) ackedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.acked)
}

func (l *chaosLedger) opensCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.opens
}

// lost lists sequences that never acked — must be empty after recovery.
func (l *chaosLedger) lost() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var lost []int
	for s := 0; s < l.limit; s++ {
		if l.acked[s] == 0 {
			lost = append(lost, s)
		}
	}
	return lost
}

// chaosSpout replays the ledger: like a real reliable source (a queue, a
// log), a fresh incarnation re-issues everything issued-but-unacked, since
// the crashed incarnation's in-flight roots died with it.
type chaosSpout struct{ l *chaosLedger }

func (s *chaosSpout) Open(*engine.Context) {
	l := s.l
	l.mu.Lock()
	l.opens++
	if l.opens > 1 {
		l.replays = l.replays[:0]
		for seq := range l.inflight {
			l.replays = append(l.replays, seq)
		}
		sort.Ints(l.replays)
	}
	l.mu.Unlock()
}

func (s *chaosSpout) NextTuple(em engine.SpoutEmitter) {
	l := s.l
	l.mu.Lock()
	var seq int
	switch {
	case len(l.replays) > 0:
		seq = l.replays[0]
		l.replays = l.replays[1:]
	case l.next < l.limit:
		seq = l.next
		l.next++
	default:
		l.mu.Unlock()
		return
	}
	l.inflight[seq] = true
	l.mu.Unlock()
	em.EmitWithID("", tuple.Values{int64(seq)}, seq)
}

func (s *chaosSpout) Ack(id any) {
	seq := id.(int)
	s.l.mu.Lock()
	s.l.acked[seq]++
	delete(s.l.inflight, seq)
	s.l.mu.Unlock()
}

func (s *chaosSpout) Fail(id any) {
	seq := id.(int)
	s.l.mu.Lock()
	if s.l.inflight[seq] {
		s.l.replays = append(s.l.replays, seq)
	}
	s.l.mu.Unlock()
}

// chaosHarness is one running anchored topology with a known placement:
// spout + acker + sink on node01's first slot, the two mid bolts on
// node02's first slot — so crashing slotMid kills only bolts and crashing
// slotSpout kills the spout, acker and sink together.
type chaosHarness struct {
	eng       *Engine
	ledger    *chaosLedger
	sup       *Supervisor
	slotSpout cluster.SlotID
	slotMid   cluster.SlotID
	initial   *cluster.Assignment
	top       *topology.Topology
}

func startChaos(t *testing.T, limit int, ackTimeout time.Duration) *chaosHarness {
	t.Helper()
	b := topology.NewBuilder("chaos", 2)
	b.SetAckers(1)
	b.Spout("s", 1).Output("", "seq")
	b.Bolt("mid", 2).Shuffle("s").Output("", "seq")
	b.Bolt("sink", 1).Shuffle("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ledger := newChaosLedger(limit)
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &chaosSpout{l: ledger} }},
		Bolts:         map[string]func() engine.Bolt{"mid": func() engine.Bolt { return devnullBolt{} }, "sink": func() engine.Bolt { return devnullBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
		MaxPending:    map[string]int{"s": 32},
	}
	cl, err := cluster.Uniform(3, 4, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	slotSpout := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	slotMid := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		if e.Component == "mid" {
			initial.Assign(e, slotMid)
		} else {
			initial.Assign(e, slotSpout)
		}
	}
	cfg := testConfig()
	cfg.AckTimeout = ackTimeout
	eng, err := NewEngine(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	sup := StartSupervisor(eng, 5*time.Millisecond)
	t.Cleanup(func() {
		sup.Stop()
		eng.Stop()
	})
	return &chaosHarness{
		eng: eng, ledger: ledger, sup: sup,
		slotSpout: slotSpout, slotMid: slotMid, initial: initial, top: top,
	}
}

// assertConservation waits for every root to ack and the in-flight gauge
// to drain — the at-least-once contract after any amount of chaos.
func (h *chaosHarness) assertConservation(t *testing.T, within time.Duration) {
	t.Helper()
	waitFor(t, within, "every root acked", func() bool {
		return h.ledger.ackedCount() >= h.ledger.limit
	})
	waitFor(t, 5*time.Second, "pending roots drained", func() bool {
		return h.eng.PendingRoots() == 0
	})
	if lost := h.ledger.lost(); len(lost) != 0 {
		t.Fatalf("lost roots after recovery: %v", lost)
	}
}

// TestChaosCrashBoltWorkerSteadyState kills the bolt worker mid-run: the
// supervisor must restart it and the spout's timeout wheel must replay
// whatever died in flight — zero lost roots.
func TestChaosCrashBoltWorkerSteadyState(t *testing.T) {
	h := startChaos(t, 400, 60*time.Millisecond)
	waitFor(t, 10*time.Second, "steady-state acks", func() bool {
		return h.ledger.ackedCount() > 50
	})
	if killed := h.eng.CrashWorker(h.slotMid); killed != 2 {
		t.Fatalf("CrashWorker killed %d executors, want 2", killed)
	}
	h.assertConservation(t, 30*time.Second)

	tot := h.eng.Totals()
	if tot.WorkerCrashes < 2 {
		t.Errorf("WorkerCrashes = %d, want >= 2", tot.WorkerCrashes)
	}
	if tot.WorkerRestarts < 2 {
		t.Errorf("WorkerRestarts = %d, want >= 2", tot.WorkerRestarts)
	}
	if h.sup.Restarts() < 2 {
		t.Errorf("supervisor restarts = %d, want >= 2", h.sup.Restarts())
	}
	// A second crash on the same (restarted) slot works too.
	if killed := h.eng.CrashWorker(h.slotMid); killed != 2 {
		t.Errorf("second CrashWorker killed %d executors, want 2", killed)
	}
}

// TestChaosSupervisorBackoffExponential crashes the same bolt worker
// repeatedly and asserts — from the supervisor's restart log, not just
// the restart count — that the imposed backoff genuinely doubles per
// consecutive restart and that the observed crash→restart wait honored
// it every time.
func TestChaosSupervisorBackoffExponential(t *testing.T) {
	h := startChaos(t, 6000, 60*time.Millisecond)
	waitFor(t, 10*time.Second, "steady-state acks", func() bool {
		return h.ledger.ackedCount() > 30
	})

	const rounds = 3
	for i := 0; i < rounds; i++ {
		if killed := h.eng.CrashWorker(h.slotMid); killed != 2 {
			t.Fatalf("round %d: CrashWorker killed %d executors, want 2", i+1, killed)
		}
		want := 2 * (i + 1)
		waitFor(t, 15*time.Second, "restarts after crash round", func() bool {
			return h.sup.Restarts() >= want
		})
	}

	perExec := map[topology.ExecutorID][]RestartRecord{}
	for _, rec := range h.sup.History() {
		perExec[rec.Executor] = append(perExec[rec.Executor], rec)
	}
	if len(perExec) != 2 {
		t.Fatalf("history covers %d executors, want the 2 mid bolts", len(perExec))
	}
	for exec, recs := range perExec {
		if len(recs) != rounds {
			t.Fatalf("%s has %d restart records, want %d", exec, len(recs), rounds)
		}
		for i, rec := range recs {
			if rec.Attempt != i+1 {
				t.Errorf("%s record %d: attempt %d, want %d", exec, i, rec.Attempt, i+1)
			}
			if want := h.sup.Backoff(i); rec.Backoff != want {
				t.Errorf("%s attempt %d: imposed backoff %s, want %s", exec, i+1, rec.Backoff, want)
			}
			if i > 0 && rec.Backoff != 2*recs[i-1].Backoff {
				t.Errorf("%s attempt %d: backoff %s is not double the previous %s — schedule not exponential",
					exec, i+1, rec.Backoff, recs[i-1].Backoff)
			}
			if rec.Waited < rec.Backoff {
				t.Errorf("%s attempt %d: waited %s, less than the imposed backoff %s",
					exec, i+1, rec.Waited, rec.Backoff)
			}
		}
	}
}

// TestChaosCrashSpoutWorker kills the slot hosting the spout, acker and
// sink together: the fresh spout incarnation must re-issue everything the
// dead one had in flight (its wheel and the acker's tracking died too).
func TestChaosCrashSpoutWorker(t *testing.T) {
	h := startChaos(t, 300, 60*time.Millisecond)
	waitFor(t, 10*time.Second, "steady-state acks", func() bool {
		return h.ledger.ackedCount() > 30
	})
	if killed := h.eng.CrashWorker(h.slotSpout); killed != 3 {
		t.Fatalf("CrashWorker killed %d executors, want 3 (spout+acker+sink)", killed)
	}
	h.assertConservation(t, 30*time.Second)
	if opens := h.ledger.opensCount(); opens < 2 {
		t.Errorf("spout opened %d times, want >= 2 (restart)", opens)
	}
}

// TestChaosCrashDuringMigration races CrashWorker against Apply: executors
// are moved between slots while their goroutines are being killed and
// restarted. Conservation must hold regardless of interleaving.
func TestChaosCrashDuringMigration(t *testing.T) {
	h := startChaos(t, 400, 60*time.Millisecond)
	waitFor(t, 10*time.Second, "steady-state acks", func() bool {
		return h.ledger.ackedCount() > 30
	})

	slotAlt := cluster.SlotID{Node: "node03", Port: cluster.BasePort}
	moveMid := func(to cluster.SlotID, id int64) *cluster.Assignment {
		a := h.initial.Clone()
		a.ID = id
		for _, e := range h.top.Executors() {
			if e.Component == "mid" {
				a.Assign(e, to)
			}
		}
		return a
	}

	targets := []*cluster.Assignment{
		moveMid(slotAlt, 1), moveMid(h.slotMid, 2),
		moveMid(slotAlt, 3), moveMid(h.slotMid, 4),
	}
	for i, next := range targets {
		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := h.eng.Apply("chaos", next); err != nil {
				t.Errorf("Apply %d: %v", i, err)
			}
		}()
		// Crash whichever slot hosts the mid bolts while the migration is
		// in progress; either side of the hand-off may take the hit.
		time.Sleep(2 * time.Millisecond)
		h.eng.CrashWorker(h.slotMid)
		h.eng.CrashWorker(slotAlt)
		<-done
	}
	h.assertConservation(t, 30*time.Second)
}

// TestChaosNodeFailReschedule takes the bolt node down entirely: the
// supervisor must NOT restart in place (the node is fenced); instead the
// generator — whose input marks the node occupied — reschedules the
// orphans onto live nodes, and only then do they restart. Zero lost roots
// across the whole outage.
func TestChaosNodeFailReschedule(t *testing.T) {
	h := startChaos(t, 4000, 60*time.Millisecond)

	db := loaddb.New(0.5)
	mon := StartMonitor(h.eng, db, 20*time.Millisecond)
	defer mon.Stop()
	gen, err := StartGenerator(h.eng, db, GeneratorConfig{
		Period: time.Hour, CapacityFraction: 0.9, ImprovementThreshold: 0.1,
	}, core.NewTrafficAware(1.5))
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Stop()
	waitFor(t, 10*time.Second, "steady-state acks with load data", func() bool {
		return h.ledger.ackedCount() > 30 && db.HasData()
	})

	if !h.eng.FailNode("node02") {
		t.Fatal("FailNode(node02) reported no live node")
	}
	if !h.eng.NodeDown("node02") {
		t.Fatal("node02 not marked down")
	}
	if down := h.eng.DownNodes(); len(down) != 1 || down[0] != "node02" {
		t.Fatalf("DownNodes = %v, want [node02]", down)
	}

	// The supervisor must leave the orphans dead while their slot is on the
	// failed node: a forced reschedule (fencing node02) moves them, and
	// only then do restarts happen.
	if !gen.Reschedule() {
		t.Fatal("Reschedule applied nothing after node failure")
	}
	cur, ok := h.eng.CurrentAssignment("chaos")
	if !ok {
		t.Fatal("no current assignment")
	}
	for e, s := range cur.Executors {
		if s.Node == "node02" {
			t.Fatalf("executor %v still scheduled on the failed node", e)
		}
	}

	// Once moved off the dead node, the supervisor restarts the orphans
	// (after its backoff) and traffic resumes.
	waitFor(t, 10*time.Second, "mids restarted off-node", func() bool {
		return h.eng.Totals().WorkerRestarts >= 2
	})
	h.assertConservation(t, 30*time.Second)

	// Recovery makes the node schedulable again.
	if !h.eng.RecoverNode("node02") {
		t.Fatal("RecoverNode(node02) failed")
	}
	if h.eng.NodeDown("node02") {
		t.Fatal("node02 still down after recovery")
	}
}

// TestReliabilityParityShape runs the same anchored app shape on both
// backends in light load and in overload, and asserts the failed-tuple
// shape matches: zero failures when the sink keeps up, non-zero when it
// cannot (the Fig. 3 overload signature), on simulation and live alike.
func TestReliabilityParityShape(t *testing.T) {
	// --- Simulated backend ---
	simRun := func(overload bool) int64 {
		b := topology.NewBuilder("par", 1)
		b.SetAckers(1)
		b.Spout("s", 1).Output("", "seq")
		b.Bolt("sink", 1).Shuffle("s")
		top, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.Uniform(1, 4, 2000, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := engine.DefaultConfig()
		cfg.MessageTimeout = 2 * time.Second
		rt, err := engine.NewRuntime(cfg, cl)
		if err != nil {
			t.Fatal(err)
		}
		ledger := newChaosLedger(40)
		app := &engine.App{
			Topology: top,
			Spouts:   map[string]func() engine.Spout{"s": func() engine.Spout { return &chaosSpout{l: ledger} }},
			Bolts:    map[string]func() engine.Bolt{"sink": func() engine.Bolt { return devnullBolt{} }},
		}
		if overload {
			// 500 ms of CPU per tuple at 2 GHz: service rate far below the
			// spout's arrival rate, so roots time out.
			app.Costs = map[string]engine.CostFn{
				"sink": engine.ConstCost(engine.Cycles(500*time.Millisecond, 2000)),
			}
		}
		initial := cluster.NewAssignment(0)
		for _, e := range top.Executors() {
			initial.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
		}
		if err := rt.Submit(app, initial); err != nil {
			t.Fatal(err)
		}
		if err := rt.RunFor(60 * time.Second); err != nil {
			t.Fatal(err)
		}
		return rt.Metrics("par").Failed
	}

	// --- Live backend ---
	liveRun := func(overload bool) int64 {
		b := topology.NewBuilder("par", 1)
		b.SetAckers(1)
		b.Spout("s", 1).Output("", "seq")
		b.Bolt("sink", 1).Shuffle("s")
		top, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cl, err := cluster.Uniform(1, 4, 2000, 1)
		if err != nil {
			t.Fatal(err)
		}
		ledger := newChaosLedger(40)
		mkSink := func() engine.Bolt { return devnullBolt{} }
		if overload {
			// Stall past the ack timeout on first sight: the root fails and
			// replays, exactly the sim's overload signature.
			mkSink = func() engine.Bolt {
				return &slowFirstBolt{seen: make(map[int64]bool), stall: 120 * time.Millisecond}
			}
		}
		app := &engine.App{
			Topology:      top,
			Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &chaosSpout{l: ledger} }},
			Bolts:         map[string]func() engine.Bolt{"sink": mkSink},
			SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
			MaxPending:    map[string]int{"s": 4},
		}
		initial := cluster.NewAssignment(0)
		for _, e := range top.Executors() {
			initial.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
		}
		cfg := testConfig()
		cfg.AckTimeout = 50 * time.Millisecond
		eng, err := NewEngine(cfg, cl)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Submit(app, initial); err != nil {
			t.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		defer eng.Stop()
		waitFor(t, 30*time.Second, "parity run acked", func() bool {
			return ledger.ackedCount() >= ledger.limit
		})
		eng.Stop()
		return eng.Totals().FailedRoots
	}

	if failed := simRun(false); failed != 0 {
		t.Errorf("sim light load failed %d roots, want 0", failed)
	}
	if failed := simRun(true); failed == 0 {
		t.Error("sim overload failed 0 roots, want > 0")
	}
	if failed := liveRun(false); failed != 0 {
		t.Errorf("live light load failed %d roots, want 0", failed)
	}
	if failed := liveRun(true); failed == 0 {
		t.Error("live overload failed 0 roots, want > 0")
	}
}
