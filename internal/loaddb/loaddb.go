// Package loaddb is the load-information database of the paper's
// architecture (§IV-B): load monitors write EWMA-smoothed executor
// workloads (CPU MHz) and inter-executor traffic rates (tuples/s) into it
// every sampling period, and the schedule generator reads consistent
// snapshots out of it as the input to the scheduling algorithm.
package loaddb

import (
	"sort"
	"sync"

	"tstorm/internal/predictor"
	"tstorm/internal/topology"
)

// FlowKey identifies a directed executor pair.
type FlowKey struct {
	From, To topology.ExecutorID
}

// Flow is one smoothed traffic entry.
type Flow struct {
	From, To topology.ExecutorID
	// Rate is tuples per second, EWMA-smoothed.
	Rate float64
}

// Snapshot is a consistent read of the database.
type Snapshot struct {
	// ExecLoad maps executor to its smoothed CPU usage in MHz.
	ExecLoad map[topology.ExecutorID]float64
	// ExecMem maps executor to its smoothed memory footprint in MB. Nil
	// or missing entries mean no monitor has reported memory for the
	// executor; demand derivation falls back to a model baseline.
	ExecMem map[topology.ExecutorID]float64
	// Flows lists smoothed traffic rates, sorted deterministically
	// (by From, then To).
	Flows []Flow
}

// TotalTraffic returns each executor's total (incoming + outgoing) rate —
// the sort key of Algorithm 1.
func (s *Snapshot) TotalTraffic() map[topology.ExecutorID]float64 {
	out := make(map[topology.ExecutorID]float64, len(s.ExecLoad))
	for _, f := range s.Flows {
		out[f.From] += f.Rate
		out[f.To] += f.Rate
	}
	return out
}

// DB is the load database. It is safe for concurrent use.
type DB struct {
	mu      sync.Mutex
	alpha   float64
	factory predictor.Factory
	load    map[topology.ExecutorID]predictor.Estimator
	mem     map[topology.ExecutorID]predictor.Estimator
	flows   map[FlowKey]predictor.Estimator
}

// New returns an empty database using the paper's EWMA estimator with
// coefficient alpha (the paper uses α = 0.5).
func New(alpha float64) *DB {
	db := NewWithEstimator(predictor.EWMAFactory(alpha))
	db.alpha = alpha
	return db
}

// NewWithEstimator returns an empty database whose per-signal estimates
// come from the given estimator factory — the paper's "other estimation/
// prediction methods can be easily integrated" extension point (§IV-B).
func NewWithEstimator(factory predictor.Factory) *DB {
	return &DB{
		factory: factory,
		load:    make(map[topology.ExecutorID]predictor.Estimator),
		mem:     make(map[topology.ExecutorID]predictor.Estimator),
		flows:   make(map[FlowKey]predictor.Estimator),
	}
}

// Alpha returns the EWMA coefficient (0 when a custom estimator is used).
func (db *DB) Alpha() float64 { return db.alpha }

// UpdateExecutorLoad folds one instantaneous workload sample (MHz) into
// the executor's estimate.
func (db *DB) UpdateExecutorLoad(e topology.ExecutorID, mhz float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	est := db.load[e]
	if est == nil {
		est = db.factory()
		db.load[e] = est
	}
	est.Update(mhz)
}

// UpdateExecutorMemory folds one instantaneous memory footprint sample
// (MB) into the executor's estimate. Memory is a separate signal from the
// CPU workload: not every monitor reports it, and the scheduler falls
// back to a model baseline for executors it has never seen.
func (db *DB) UpdateExecutorMemory(e topology.ExecutorID, mb float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	est := db.mem[e]
	if est == nil {
		est = db.factory()
		db.mem[e] = est
	}
	est.Update(mb)
}

// UpdateTraffic folds one instantaneous rate sample (tuples/s) into the
// pair's estimate.
func (db *DB) UpdateTraffic(from, to topology.ExecutorID, rate float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := FlowKey{From: from, To: to}
	est := db.flows[k]
	if est == nil {
		est = db.factory()
		db.flows[k] = est
	}
	est.Update(rate)
}

// ApplyWindow folds one whole monitoring window into the database under a
// single lock acquisition: every executor's instantaneous workload (MHz)
// and every pair's instantaneous rate (tuples/s). The live runtime's
// monitor uses it so a window of dozens of samples costs one lock
// round-trip instead of one per signal; the result is identical to calling
// UpdateExecutorLoad / UpdateTraffic per entry.
func (db *DB) ApplyWindow(loads map[topology.ExecutorID]float64, flows map[FlowKey]float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for e, mhz := range loads {
		est := db.load[e]
		if est == nil {
			est = db.factory()
			db.load[e] = est
		}
		est.Update(mhz)
	}
	for k, rate := range flows {
		est := db.flows[k]
		if est == nil {
			est = db.factory()
			db.flows[k] = est
		}
		est.Update(rate)
	}
}

// ApplyMemory folds one monitoring window of per-executor memory samples
// (MB) under a single lock acquisition. It is deliberately a separate
// method from ApplyWindow: ApplyWindow's signature is part of the
// LoadSink interface the distributed control plane ships over the wire,
// and memory is an optional signal discovered by type assertion.
func (db *DB) ApplyMemory(mem map[topology.ExecutorID]float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for e, mb := range mem {
		est := db.mem[e]
		if est == nil {
			est = db.factory()
			db.mem[e] = est
		}
		est.Update(mb)
	}
}

// ExecutorLoad reads one executor's current estimate (0 if unknown).
func (db *DB) ExecutorLoad(e topology.ExecutorID) float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if est := db.load[e]; est != nil {
		return est.Value()
	}
	return 0
}

// ExecutorMemory reads one executor's current memory estimate in MB
// (0 if no monitor has reported memory for it).
func (db *DB) ExecutorMemory(e topology.ExecutorID) float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if est := db.mem[e]; est != nil {
		return est.Value()
	}
	return 0
}

// Traffic reads one pair's current estimate (0 if unknown).
func (db *DB) Traffic(from, to topology.ExecutorID) float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if est := db.flows[FlowKey{From: from, To: to}]; est != nil {
		return est.Value()
	}
	return 0
}

// HasData reports whether any sample has ever been written — the schedule
// generator refuses to run the traffic-aware algorithm before monitors
// have reported.
func (db *DB) HasData() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.load) > 0
}

// Forget removes all records of the given topology's executors, e.g. when
// a topology is killed.
func (db *DB) Forget(topo string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for e := range db.load {
		if e.Topology == topo {
			delete(db.load, e)
		}
	}
	for e := range db.mem {
		if e.Topology == topo {
			delete(db.mem, e)
		}
	}
	for k := range db.flows {
		if k.From.Topology == topo || k.To.Topology == topo {
			delete(db.flows, k)
		}
	}
}

// Snapshot returns a consistent copy of all estimates.
func (db *DB) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := &Snapshot{ExecLoad: make(map[topology.ExecutorID]float64, len(db.load))}
	for e, est := range db.load {
		s.ExecLoad[e] = est.Value()
	}
	if len(db.mem) > 0 {
		s.ExecMem = make(map[topology.ExecutorID]float64, len(db.mem))
		for e, est := range db.mem {
			s.ExecMem[e] = est.Value()
		}
	}
	s.Flows = make([]Flow, 0, len(db.flows))
	for k, est := range db.flows {
		s.Flows = append(s.Flows, Flow{From: k.From, To: k.To, Rate: est.Value()})
	}
	sort.Slice(s.Flows, func(i, j int) bool {
		if s.Flows[i].From != s.Flows[j].From {
			return s.Flows[i].From.Less(s.Flows[j].From)
		}
		return s.Flows[i].To.Less(s.Flows[j].To)
	})
	return s
}
