package loaddb

import (
	"sort"
	"testing"
	"testing/quick"

	"tstorm/internal/predictor"
	"tstorm/internal/topology"
)

func exec(topo, comp string, i int) topology.ExecutorID {
	return topology.ExecutorID{Topology: topo, Component: comp, Index: i}
}

func TestExecutorLoadEWMA(t *testing.T) {
	db := New(0.5)
	e := exec("t", "bolt", 0)
	if db.ExecutorLoad(e) != 0 {
		t.Fatal("unknown executor load not 0")
	}
	db.UpdateExecutorLoad(e, 100)
	db.UpdateExecutorLoad(e, 200)
	if got := db.ExecutorLoad(e); got != 150 {
		t.Fatalf("load = %v, want 150 (EWMA α=0.5)", got)
	}
	if db.Alpha() != 0.5 {
		t.Fatal("Alpha accessor wrong")
	}
}

func TestTrafficEWMA(t *testing.T) {
	db := New(0.5)
	a, b := exec("t", "s", 0), exec("t", "b", 0)
	if db.Traffic(a, b) != 0 {
		t.Fatal("unknown traffic not 0")
	}
	db.UpdateTraffic(a, b, 10)
	db.UpdateTraffic(a, b, 0) // pair went quiet: estimate decays
	if got := db.Traffic(a, b); got != 5 {
		t.Fatalf("traffic = %v, want 5", got)
	}
	// Directionality.
	if db.Traffic(b, a) != 0 {
		t.Fatal("reverse direction contaminated")
	}
}

func TestHasData(t *testing.T) {
	db := New(0.5)
	if db.HasData() {
		t.Fatal("fresh DB has data")
	}
	db.UpdateExecutorLoad(exec("t", "s", 0), 1)
	if !db.HasData() {
		t.Fatal("DB with samples reports no data")
	}
}

func TestSnapshotSortedAndIsolated(t *testing.T) {
	db := New(0.5)
	a, b, c := exec("t", "a", 0), exec("t", "b", 0), exec("t", "c", 0)
	db.UpdateTraffic(c, a, 3)
	db.UpdateTraffic(a, b, 1)
	db.UpdateTraffic(b, c, 2)
	db.UpdateExecutorLoad(a, 50)
	s := db.Snapshot()
	if len(s.Flows) != 3 || len(s.ExecLoad) != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if !sort.SliceIsSorted(s.Flows, func(i, j int) bool {
		if s.Flows[i].From != s.Flows[j].From {
			return s.Flows[i].From.Less(s.Flows[j].From)
		}
		return s.Flows[i].To.Less(s.Flows[j].To)
	}) {
		t.Fatalf("flows not sorted: %+v", s.Flows)
	}
	// Mutating the snapshot does not affect the DB.
	s.ExecLoad[a] = 999
	if db.ExecutorLoad(a) != 50 {
		t.Fatal("snapshot aliases DB")
	}
}

func TestTotalTraffic(t *testing.T) {
	db := New(1.0) // α=1: estimates stay at first sample
	a, b, c := exec("t", "a", 0), exec("t", "b", 0), exec("t", "c", 0)
	db.UpdateTraffic(a, b, 10)
	db.UpdateTraffic(b, c, 4)
	tot := db.Snapshot().TotalTraffic()
	if tot[a] != 10 || tot[b] != 14 || tot[c] != 4 {
		t.Fatalf("TotalTraffic = %v", tot)
	}
}

func TestForget(t *testing.T) {
	db := New(0.5)
	db.UpdateExecutorLoad(exec("keep", "s", 0), 1)
	db.UpdateExecutorLoad(exec("drop", "s", 0), 1)
	db.UpdateTraffic(exec("drop", "s", 0), exec("keep", "s", 0), 1)
	db.UpdateTraffic(exec("keep", "s", 0), exec("keep", "b", 0), 1)
	db.Forget("drop")
	s := db.Snapshot()
	if len(s.ExecLoad) != 1 || len(s.Flows) != 1 {
		t.Fatalf("after Forget: %+v", s)
	}
	if db.ExecutorLoad(exec("drop", "s", 0)) != 0 {
		t.Fatal("forgotten executor still has load")
	}
}

// Property: estimates always lie within [min, max] of the samples seen.
func TestPropertyEstimateBounded(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		db := New(0.5)
		e := exec("t", "x", 0)
		lo, hi := float64(samples[0]), float64(samples[0])
		for _, s := range samples {
			v := float64(s)
			db.UpdateExecutorLoad(e, v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		got := db.ExecutorLoad(e)
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCustomEstimatorIsUsed(t *testing.T) {
	// A Holt-based DB extrapolates a ramp past its last sample; the EWMA
	// DB lags it — the §IV-B pluggable-estimator extension point.
	holt := NewWithEstimator(predictor.HoltFactory(0.8, 0.5))
	ewma := New(0.5)
	e := exec("t", "s", 0)
	for v := 100.0; v <= 500; v += 100 {
		holt.UpdateExecutorLoad(e, v)
		ewma.UpdateExecutorLoad(e, v)
	}
	if holt.ExecutorLoad(e) <= 500 {
		t.Fatalf("Holt DB = %v, want forecast beyond 500", holt.ExecutorLoad(e))
	}
	if ewma.ExecutorLoad(e) >= 500 {
		t.Fatalf("EWMA DB = %v, want lag below 500", ewma.ExecutorLoad(e))
	}
	if holt.Alpha() != 0 {
		t.Fatalf("custom DB Alpha = %v, want 0", holt.Alpha())
	}
}

func TestApplyWindowMatchesPerSampleUpdates(t *testing.T) {
	// Two windows fed in batch must leave the DB in exactly the state the
	// per-sample update path produces — the live monitor depends on it.
	batch := New(0.5)
	single := New(0.5)
	windows := []struct {
		loads map[topology.ExecutorID]float64
		flows map[FlowKey]float64
	}{
		{
			loads: map[topology.ExecutorID]float64{exec("t", "s", 0): 100, exec("t", "b", 0): 240},
			flows: map[FlowKey]float64{{From: exec("t", "s", 0), To: exec("t", "b", 0)}: 500},
		},
		{
			loads: map[topology.ExecutorID]float64{exec("t", "s", 0): 200, exec("t", "b", 1): 80},
			flows: map[FlowKey]float64{
				{From: exec("t", "s", 0), To: exec("t", "b", 0)}: 300,
				{From: exec("t", "s", 0), To: exec("t", "b", 1)}: 100,
			},
		},
	}
	for _, w := range windows {
		batch.ApplyWindow(w.loads, w.flows)
		for e, v := range w.loads {
			single.UpdateExecutorLoad(e, v)
		}
		for k, v := range w.flows {
			single.UpdateTraffic(k.From, k.To, v)
		}
	}
	a, b := batch.Snapshot(), single.Snapshot()
	if len(a.ExecLoad) != len(b.ExecLoad) || len(a.Flows) != len(b.Flows) {
		t.Fatalf("snapshot shapes differ: %d/%d loads, %d/%d flows",
			len(a.ExecLoad), len(b.ExecLoad), len(a.Flows), len(b.Flows))
	}
	for e, v := range b.ExecLoad {
		if a.ExecLoad[e] != v {
			t.Fatalf("load %v: batch %v, single %v", e, a.ExecLoad[e], v)
		}
	}
	for i, f := range b.Flows {
		if a.Flows[i] != f {
			t.Fatalf("flow %d: batch %+v, single %+v", i, a.Flows[i], f)
		}
	}
}
