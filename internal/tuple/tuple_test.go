package tuple

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFieldsIndex(t *testing.T) {
	f := Fields{"word", "count"}
	tests := []struct {
		name   string
		want   int
		wantOK bool
	}{
		{"word", 0, true},
		{"count", 1, true},
		{"missing", 0, false},
	}
	for _, tt := range tests {
		got, ok := f.Index(tt.name)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("Index(%q) = (%d, %v), want (%d, %v)", tt.name, got, ok, tt.want, tt.wantOK)
		}
	}
	if !f.Contains("word") || f.Contains("nope") {
		t.Error("Contains misbehaves")
	}
}

func TestValueSize(t *testing.T) {
	tests := []struct {
		v    any
		want int
	}{
		{nil, 4},
		{"hello", 9},
		{[]byte{1, 2, 3}, 7},
		{true, 5},
		{int8(1), 5},
		{uint16(1), 6},
		{int32(1), 8},
		{float32(1), 8},
		{int(1), 12},
		{int64(1), 12},
		{uint64(1), 12},
		{float64(1), 12},
		{struct{}{}, 20},
	}
	for _, tt := range tests {
		if got := ValueSize(tt.v); got != tt.want {
			t.Errorf("ValueSize(%T) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestSizeOfIncludesHeader(t *testing.T) {
	if got := SizeOf(nil); got != 20 {
		t.Fatalf("SizeOf(nil) = %d, want header 20", got)
	}
	if got := SizeOf(Values{"ab"}); got != 20+6 {
		t.Fatalf("SizeOf = %d, want 26", got)
	}
}

func TestKeyStringStability(t *testing.T) {
	tests := []struct {
		v    any
		want string
	}{
		{"x", "x"},
		{[]byte("y"), "y"},
		{42, "42"},
		{int64(-7), "-7"},
		{uint64(9), "9"},
		{true, "true"},
		{false, "false"},
		{1.5, "1.5"},
	}
	for _, tt := range tests {
		if got := KeyString(tt.v); got != tt.want {
			t.Errorf("KeyString(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestHashKeyRange(t *testing.T) {
	for _, key := range []string{"a", "b", "the", "rabbit", "queen"} {
		got := HashKey(key, 7)
		if got < 0 || got >= 7 {
			t.Errorf("HashKey(%q, 7) = %d out of range", key, got)
		}
	}
}

func TestHashKeyDeterministicAcrossRepresentations(t *testing.T) {
	// Equal keys must land in the same bucket — the fields-grouping contract.
	if HashKey("word", 13) != HashKey([]byte("word"), 13) {
		t.Fatal("string and []byte of same key hash differently")
	}
}

func TestPropertyHashKeyInRangeAndStable(t *testing.T) {
	f := func(s string, n uint8) bool {
		buckets := int(n%32) + 1
		a := HashKey(s, buckets)
		b := HashKey(s, buckets)
		return a == b && a >= 0 && a < buckets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySizeOfMonotonicInPayload(t *testing.T) {
	f := func(s string) bool {
		base := SizeOf(Values{s})
		more := SizeOf(Values{s, s})
		return more > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{Root: 0xab, Stream: "default", SrcComponent: "spout", SrcTask: 3,
		Values: Values{"x"}, Size: 26}
	s := tp.String()
	for _, want := range []string{"spout", "default", "task=3", "root=ab", "26B"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestAppendKeyMatchesKeyString(t *testing.T) {
	vals := []any{
		"word", "", []byte("raw"), []byte{},
		0, -7, 1 << 40, int64(-1 << 50), uint64(1<<64 - 1),
		true, false,
		0.0, -2.5, 1e300, 3.14159,
		struct{ A int }{7}, // default path falls back to KeyString
	}
	for _, v := range vals {
		want := KeyString(v)
		if got := string(AppendKey(nil, v)); got != want {
			t.Errorf("AppendKey(nil, %#v) = %q, want %q", v, got, want)
		}
		// Appending must preserve the prefix.
		if got := string(AppendKey([]byte("pre|"), v)); got != "pre|"+want {
			t.Errorf("AppendKey(pre, %#v) = %q, want %q", v, got, "pre|"+want)
		}
	}
}

func TestHashKeyBytesMatchesHashKey(t *testing.T) {
	vals := []any{"word", "", []byte("raw"), 42, int64(-9), uint64(7), true, false, 2.5}
	for _, v := range vals {
		for _, n := range []int{1, 2, 3, 4, 7, 8, 64, 1000} {
			want := HashKey(v, n)
			if got := HashKeyBytes(AppendKey(nil, v), n); got != want {
				t.Errorf("HashKeyBytes(%#v, %d) = %d, want %d", v, n, got, want)
			}
		}
	}
	// Composite keys (multi-field grouping) hash like their concatenation.
	key := AppendKey(nil, "alpha")
	key = append(key, '\x1f')
	key = AppendKey(key, 42)
	if got, want := HashKeyBytes(key, 16), HashKey("alpha\x1f42", 16); got != want {
		t.Errorf("composite HashKeyBytes = %d, want %d", got, want)
	}
}
