// Package tuple defines the unit of data flowing through a topology: the
// Tuple, its Values payload, per-stream field schemas used by fields
// grouping, and the 64-bit message IDs used by the XOR ack protocol.
package tuple

import (
	"fmt"
	"hash/fnv"
	"strconv"
)

// ID is a Storm-style 64-bit message identifier. Spout tuples get a random
// non-zero root ID; every emitted edge gets its own random edge ID, and the
// acker tracks the XOR of all edge IDs per root.
type ID uint64

// Values is the payload of a tuple: a positional list of values whose
// meaning is given by the producing stream's Fields schema.
type Values []any

// Fields is the schema of a stream: ordered field names.
type Fields []string

// Index returns the position of the named field.
func (f Fields) Index(name string) (int, bool) {
	for i, n := range f {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Contains reports whether the schema has the named field.
func (f Fields) Contains(name string) bool {
	_, ok := f.Index(name)
	return ok
}

// Tuple is one message travelling between two executors. Tuples are
// immutable once emitted; bolts produce new tuples rather than mutating
// received ones.
type Tuple struct {
	// Root is the spout-tuple ID this tuple is anchored to, or 0 for an
	// unanchored (unreliable) tuple.
	Root ID
	// Edge is this tuple's own XOR-tracking ID (0 for unanchored tuples).
	Edge ID
	// Stream names the stream this tuple was emitted on.
	Stream string
	// SrcComponent and SrcTask identify the producer.
	SrcComponent string
	SrcTask      int
	// Values is the payload.
	Values Values
	// Size is the estimated serialized size in bytes, used by the network
	// model and the traffic statistics.
	Size int
}

// String renders a short debug form.
func (t Tuple) String() string {
	return fmt.Sprintf("tuple{%s/%s task=%d root=%x vals=%d size=%dB}",
		t.SrcComponent, t.Stream, t.SrcTask, uint64(t.Root), len(t.Values), t.Size)
}

// ValueSize estimates the serialized size in bytes of one payload value.
// It is intentionally cheap and deterministic: strings and byte slices
// count their length, fixed-width scalars their width, and anything else a
// small constant. A few bytes of framing are added per value.
func ValueSize(v any) int {
	const framing = 4
	switch x := v.(type) {
	case nil:
		return framing
	case string:
		return framing + len(x)
	case []byte:
		return framing + len(x)
	case bool:
		return framing + 1
	case int8, uint8:
		return framing + 1
	case int16, uint16:
		return framing + 2
	case int32, uint32, float32:
		return framing + 4
	case int, int64, uint, uint64, float64:
		return framing + 8
	default:
		return framing + 16
	}
}

// SizeOf estimates the serialized size of a whole payload, including a
// fixed per-tuple header (stream id, task ids, message id).
func SizeOf(vals Values) int {
	const header = 20
	n := header
	for _, v := range vals {
		n += ValueSize(v)
	}
	return n
}

// KeyString renders a payload value as a grouping key. It must be stable:
// equal values always produce equal strings.
func KeyString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case []byte:
		return string(x)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// HashKey hashes a grouping key to a bucket in [0, n). n must be positive.
func HashKey(v any, n int) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(KeyString(v)))
	return int(h.Sum64() % uint64(n))
}

// AppendKey appends KeyString(v) to dst without allocating for the common
// payload types, so hot routing paths can build composite grouping keys
// into a reused buffer. For any value, string(AppendKey(nil, v)) ==
// KeyString(v).
func AppendKey(dst []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return append(dst, x...)
	case []byte:
		return append(dst, x...)
	case int:
		return strconv.AppendInt(dst, int64(x), 10)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case uint64:
		return strconv.AppendUint(dst, x, 10)
	case bool:
		if x {
			return append(dst, "true"...)
		}
		return append(dst, "false"...)
	case float64:
		return strconv.AppendFloat(dst, x, 'g', -1, 64)
	default:
		return append(dst, KeyString(v)...)
	}
}

// FNV-1a constants, matching hash/fnv's 64-bit variant.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashKeyBytes hashes a pre-built grouping key to a bucket in [0, n),
// producing exactly HashKey(string(key), n) without the intermediate
// string. n must be positive.
func HashKeyBytes(key []byte, n int) int {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}
