package telemetry

// Tests for the observability layer's HTTP surface: the health-off
// byte-identity guarantee on /metrics, the /debug/timeseries and
// /debug/health endpoints with their uniform JSON 400 validation, and
// the health-under-churn stress run ci.sh drives under -race.

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/health"
	"tstorm/internal/live"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tsdb"
)

// buildHealth assembles the observability layer over a live engine the
// way the facade does: ring-buffer tsdb, collector over the engine taps,
// and the standard rule set.
func buildHealth(eng *live.Engine, rec *trace.Recorder) (*tsdb.DB, *health.Collector, *health.Engine) {
	db := tsdb.NewDB(0)
	col := health.NewCollector(db, health.Sources{
		Totals:            eng.Totals,
		PendingRoots:      eng.PendingRoots,
		QueueSaturation:   func() (float64, int) { return eng.QueueSaturation(0.8) },
		CompletionLatency: eng.CompletionLatencySnapshot,
	})
	return db, col, health.New(health.StandardRules(db, health.RuleOptions{}), rec)
}

// TestHealthOffScrapeByteIdentical pins the gating guarantee: a scrape
// with the health layer wired is the health-off document plus a trailing
// tstorm_health_* block — nothing inside the shared prefix moves.
func TestHealthOffScrapeByteIdentical(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	off, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	db, col, heng := buildHealth(eng, nil)
	now := time.Now()
	for i := 0; i < 3; i++ {
		col.Collect(now.Add(time.Duration(i) * time.Second))
		heng.Evaluate(now.Add(time.Duration(i) * time.Second))
	}
	on, err := NewServer(Config{Engine: eng, TSDB: db, Health: heng})
	if err != nil {
		t.Fatal(err)
	}

	_, offDoc := scrape(t, off.Handler(), "/metrics")
	_, onDoc := scrape(t, on.Handler(), "/metrics")
	if strings.Contains(offDoc, "tstorm_health") {
		t.Fatal("health families leaked into a health-off scrape")
	}
	if !strings.HasPrefix(onDoc, offDoc) {
		t.Fatal("health-on scrape does not extend the health-off document byte-for-byte")
	}
	tail := strings.TrimPrefix(onDoc, offDoc)
	if !strings.HasPrefix(tail, "# HELP tstorm_health_level ") {
		t.Errorf("trailing block starts %q, want the tstorm_health_level family", tail[:min(len(tail), 60)])
	}
	for _, family := range []string{
		"tstorm_health_level", "tstorm_health_rule_level",
		"tstorm_health_evals_total", "tstorm_health_transitions_total",
	} {
		if !strings.Contains(tail, "# HELP "+family+" ") {
			t.Errorf("health block missing %s", family)
		}
	}
	// Every standard rule exports a labelled level sample (rules whose
	// series have no source still report, as "no data" holding ok).
	if got := strings.Count(tail, "tstorm_health_rule_level{"); got != 7 {
		t.Errorf("rule_level samples = %d, want 7 (the full standard rule set)", got)
	}
}

// TestTimeseriesEndpoint exercises /debug/timeseries: the full dump, the
// ?family= filter, the ?window= cut, and the 404 without a tsdb.
func TestTimeseriesEndpoint(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	db := tsdb.NewDB(8)
	sr := db.Register("demo_total", tsdb.Counter)
	base := time.Now().Add(-10 * time.Second)
	for i := 0; i < 5; i++ {
		sr.Append(base.Add(time.Duration(i)*time.Second).UnixNano(), float64(i*100))
	}
	srv, err := NewServer(Config{Engine: eng, TSDB: db})
	if err != nil {
		t.Fatal(err)
	}

	code, body := scrape(t, srv.Handler(), "/debug/timeseries")
	if code != http.StatusOK {
		t.Fatalf("/debug/timeseries status %d", code)
	}
	var doc struct {
		Series []struct {
			Name   string `json:"name"`
			Kind   string `json:"kind"`
			Points []struct {
				T int64   `json:"t"`
				V float64 `json:"v"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Name != "demo_total" || doc.Series[0].Kind != "counter" {
		t.Fatalf("series = %+v", doc.Series)
	}
	if len(doc.Series[0].Points) != 5 {
		t.Errorf("points = %d, want 5", len(doc.Series[0].Points))
	}

	code, _ = scrape(t, srv.Handler(), "/debug/timeseries?family=demo_total")
	if code != http.StatusOK {
		t.Errorf("?family=demo_total status %d", code)
	}
	// The window cut keeps only recent points (the oldest is ~10 s old).
	code, body = scrape(t, srv.Handler(), "/debug/timeseries?family=demo_total&window=7s")
	if code != http.StatusOK {
		t.Fatalf("windowed status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if got := len(doc.Series[0].Points); got >= 5 || got == 0 {
		t.Errorf("windowed points = %d, want a strict recent subset", got)
	}

	// No tsdb → 404.
	bare, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := scrape(t, bare.Handler(), "/debug/timeseries"); code != http.StatusNotFound {
		t.Errorf("no-tsdb status %d, want 404", code)
	}
}

// TestHealthEndpoint exercises /debug/health in both formats plus the
// 404 without an engine.
func TestHealthEndpoint(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	db, col, heng := buildHealth(eng, nil)
	_ = db
	now := time.Now()
	col.Collect(now)
	heng.Evaluate(now)
	srv, err := NewServer(Config{Engine: eng, TSDB: db, Health: heng})
	if err != nil {
		t.Fatal(err)
	}

	code, body := scrape(t, srv.Handler(), "/debug/health")
	if code != http.StatusOK {
		t.Fatalf("/debug/health status %d", code)
	}
	var st struct {
		Overall string `json:"overall"`
		Evals   int64  `json:"evals"`
		Rules   []struct {
			Rule  string `json:"rule"`
			Level string `json:"level"`
		} `json:"rules"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if st.Overall != "ok" || st.Evals != 1 || len(st.Rules) == 0 {
		t.Errorf("status = %+v", st)
	}

	code, body = scrape(t, srv.Handler(), "/debug/health?format=text")
	if code != http.StatusOK {
		t.Fatalf("text format status %d", code)
	}
	if !strings.HasPrefix(body, "overall ok") || !strings.Contains(body, "throughput-floor") {
		t.Errorf("text panel:\n%s", body)
	}

	bare, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := scrape(t, bare.Handler(), "/debug/health"); code != http.StatusNotFound {
		t.Errorf("no-health status %d, want 404", code)
	}
}

// TestDebugValidationJSONBody pins the uniform 400 contract: malformed
// ?n=, ?window=, and ?family= parameters answer with a JSON
// {"error": ...} body on every endpoint that accepts them.
func TestDebugValidationJSONBody(t *testing.T) {
	rec := trace.NewRecorder(8)
	eng, _ := buildEngine(t, rec)
	db, _, heng := buildHealth(eng, nil)
	srv, err := NewServer(Config{Engine: eng, Trace: rec, TSDB: db, Health: heng})
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"/debug/trace?n=abc",
		"/debug/trace?n=0",
		"/debug/trace?n=-3",
		"/debug/timeseries?window=abc",
		"/debug/timeseries?window=-5s",
		"/debug/timeseries?window=0s",
		"/debug/timeseries?family=no_such_series",
	}
	for _, path := range cases {
		code, body := scrape(t, srv.Handler(), path)
		if code != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", path, code)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s body %q: want a JSON {\"error\": ...} document", path, body)
		}
	}
	// The unknown-family rejection names the known series.
	_, body := scrape(t, srv.Handler(), "/debug/timeseries?family=no_such_series")
	if !strings.Contains(body, "sink_processed_total") {
		t.Errorf("unknown-family error does not list known series: %q", body)
	}
}

// TestHealthUnderChurnStress hammers /metrics, /debug/timeseries, and
// /debug/health while the engine runs full-tilt, Apply flips the
// placement, and a fast sampler feeds the tsdb and health engine — the
// single-writer ring and lock-free reader claims, checked under -race.
// Run explicitly by ci.sh.
func TestHealthUnderChurnStress(t *testing.T) {
	rec := trace.NewRecorder(64)
	eng, initial := buildEngine(t, rec)
	db, col, heng := buildHealth(eng, rec)
	smp := tsdb.NewSampler(2*time.Millisecond, func(now time.Time) {
		col.Collect(now)
		heng.Evaluate(now)
	})
	srv, err := NewServer(Config{Engine: eng, Trace: rec, TSDB: db, Health: heng})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	smp.Start()
	defer smp.Stop()

	flipped := initial.Clone()
	flipped.ID = 1
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	for i := 0; i < 2; i++ {
		flipped.Assign(topology.ExecutorID{Topology: "expo", Component: "work", Index: i}, n2)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/debug/timeseries", "/debug/health", "/debug/timeseries?window=1s"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if code, _ := scrape(t, srv.Handler(), path); code != http.StatusOK {
						t.Errorf("%s status %d under churn", path, code)
						return
					}
				}
			}
		}(path)
	}

	for i := 0; i < 8; i++ {
		next := flipped.Clone()
		if i%2 == 1 {
			next = initial.Clone()
		}
		next.ID = int64(i + 1)
		if _, err := eng.Apply("expo", next); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if smp.Ticks() == 0 {
		t.Error("sampler never ticked under churn")
	}
	if sr := db.Lookup(health.SeriesSinkProcessed); sr == nil || sr.Len() == 0 {
		t.Error("no retained sink_processed_total samples after churn")
	}
}
