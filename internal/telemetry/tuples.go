package telemetry

import (
	"fmt"
	"net/http"
	"sort"

	"tstorm/internal/live"
	"tstorm/internal/tracing"
)

// /debug/tuples: the sampled tuple-tracing view. The collector assembles
// per-tuple-tree spans (internal/tracing) into completed trees with a
// critical-path decomposition; this endpoint exposes the newest trees as
// JSON, or as a plain-text flame timeline with ?format=text, and the
// tstorm_trace_* families on /metrics aggregate the same state.

// defaultTupleLimit caps /debug/tuples trees per request.
const defaultTupleLimit = 32

// tuplesDoc is the /debug/tuples response body.
type tuplesDoc struct {
	// SampledRoots and SpanDropped are the engine counters: roots entering
	// the sampled subset, and spans lost to full executor rings.
	SampledRoots int64 `json:"sampled_roots"`
	SpanDropped  int64 `json:"span_dropped"`
	// Completed/Evicted/OrphanSpans/Pending are collector lifetime stats.
	Completed   int64 `json:"completed"`
	Evicted     int64 `json:"evicted"`
	OrphanSpans int64 `json:"orphan_spans"`
	Pending     int   `json:"pending"`
	// ShareByClass is the fraction of sampled critical-path time spent in
	// each boundary class (plus "execute" and "ack"), over retained trees.
	ShareByClass map[string]float64 `json:"share_by_class,omitempty"`
	// Trees are the newest completed tuple trees, newest first.
	Trees []tracing.Tree `json:"trees"`
}

// handleTuples serves the sampled tuple trees (404 when tracing is off).
func (s *Server) handleTuples(w http.ResponseWriter, r *http.Request) {
	c := s.cfg.Tuples
	if c == nil {
		http.Error(w, "tuple tracing not enabled", http.StatusNotFound)
		return
	}
	limit, ok := requestLimit(w, r, defaultTupleLimit)
	if !ok {
		return
	}
	trees := c.Trees(limit)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, tr := range trees {
			writeTupleTimeline(w, &tr)
		}
		return
	}
	t := s.totals()
	st := c.Stats()
	doc := tuplesDoc{
		SampledRoots: t.TraceSampled,
		SpanDropped:  t.TraceSpanDropped,
		Completed:    st.Completed,
		Evicted:      st.Evicted,
		OrphanSpans:  st.OrphanSpans,
		Pending:      st.Pending,
		ShareByClass: c.ShareByClass(),
		Trees:        trees,
	}
	if doc.Trees == nil {
		doc.Trees = []tracing.Tree{}
	}
	writeJSON(w, doc)
}

// writeTupleTimeline renders one tree as a flame timeline: the root emit,
// then each critical-path hop's wait (attributed to its boundary class)
// and execute time, then the final ack wait — indentation deepens along
// the path so the chain reads like a flame graph turned sideways.
func writeTupleTimeline(w http.ResponseWriter, tr *tracing.Tree) {
	fmt.Fprintf(w, "tree %016x %s completion %.3fms spans %d\n",
		tr.Root, tr.Topology, tr.CompletionMs, len(tr.Spans))
	indent := "  "
	for _, sp := range tr.Spans {
		if sp.Kind == tracing.KindRoot {
			fmt.Fprintf(w, "%s%s/%d emit\n", indent, sp.Component, sp.Task)
			break
		}
	}
	for _, step := range tr.Path {
		indent += "  "
		fmt.Fprintf(w, "%s+%.3fms [%s] %s/%d exec %.3fms\n",
			indent, step.WaitMs, step.Boundary, step.Component, step.Task, step.ExecMs)
	}
	if ack, ok := tr.Shares[tracing.ShareAck]; ok {
		fmt.Fprintf(w, "%s  +%.3fms ack\n", indent, ack)
	}
}

// traceFamilies appends the tuple-tracing metric families. Gated on the
// collector's presence so scrapes of a tracing-free stack stay
// byte-identical to earlier releases.
func (s *Server) traceFamilies(e *expo, t live.Totals) {
	c := s.cfg.Tuples
	if c == nil {
		return
	}
	e.family("tstorm_trace_sampled_roots_total", "Spout roots sampled for tuple tracing (replays included).", "counter")
	e.sample("tstorm_trace_sampled_roots_total", nil, float64(t.TraceSampled))
	e.family("tstorm_trace_span_dropped_total", "Sampled spans lost to full executor rings.", "counter")
	e.sample("tstorm_trace_span_dropped_total", nil, float64(t.TraceSpanDropped))

	st := c.Stats()
	e.family("tstorm_trace_trees_completed_total", "Sampled tuple trees fully assembled.", "counter")
	e.sample("tstorm_trace_trees_completed_total", nil, float64(st.Completed))
	e.family("tstorm_trace_trees_evicted_total", "Incomplete sampled trees evicted after the assembly TTL.", "counter")
	e.sample("tstorm_trace_trees_evicted_total", nil, float64(st.Evicted))
	e.family("tstorm_trace_orphan_spans_total", "Spans discarded with their evicted trees.", "counter")
	e.sample("tstorm_trace_orphan_spans_total", nil, float64(st.OrphanSpans))
	e.family("tstorm_trace_trees_pending", "Sampled trees currently awaiting spans.", "gauge")
	e.sample("tstorm_trace_trees_pending", nil, float64(st.Pending))

	shares := c.ShareByClass()
	classes := make([]string, 0, len(shares))
	for class := range shares {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	e.family("tstorm_trace_critical_path_share", "Fraction of sampled critical-path time per boundary class (plus execute and ack), over retained trees.", "gauge")
	for _, class := range classes {
		e.sample("tstorm_trace_critical_path_share", []label{{"class", class}}, shares[class])
	}
}
