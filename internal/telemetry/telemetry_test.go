package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/engine"
	"tstorm/internal/live"
	"tstorm/internal/metrics"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tuple"
)

// burstSpout emits bursts of sequence-numbered tuples.
type burstSpout struct{ seq int64 }

func (s *burstSpout) Open(*engine.Context) {}
func (s *burstSpout) NextTuple(em engine.SpoutEmitter) {
	for i := 0; i < 8; i++ {
		em.Emit("", tuple.Values{s.seq})
		s.seq++
	}
}
func (s *burstSpout) Ack(any)  {}
func (s *burstSpout) Fail(any) {}

type sinkBolt struct{}

func (sinkBolt) Prepare(*engine.Context)             {}
func (sinkBolt) Execute(tuple.Tuple, engine.Emitter) {}

// buildEngine submits a spout→bolt topology on two single-slot nodes,
// everything initially on node01. The engine is NOT started, so repeated
// scrapes see frozen state.
func buildEngine(t *testing.T, rec *trace.Recorder) (*live.Engine, *cluster.Assignment) {
	t.Helper()
	b := topology.NewBuilder("expo", 2)
	b.Spout("s", 1).Output("", "id")
	b.Bolt("work", 2).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &engine.App{
		Topology:      top,
		Spouts:        map[string]func() engine.Spout{"s": func() engine.Spout { return &burstSpout{} }},
		Bolts:         map[string]func() engine.Bolt{"work": func() engine.Bolt { return sinkBolt{} }},
		SpoutInterval: map[string]time.Duration{"s": time.Millisecond},
	}
	cl, err := cluster.Uniform(2, 4, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	initial := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		initial.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
	}
	lcfg := live.Config{QueueCapacity: 64, SpoutHaltDelay: 5 * time.Millisecond,
		DrainTimeout: 2 * time.Second, Trace: rec}
	eng, err := live.NewEngine(lcfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	return eng, initial
}

func scrape(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

// TestMetricsDeterministicAndComplete scrapes an idle engine twice: both
// documents must be byte-identical (fixed family order, pre-sorted
// samples) and structurally complete — every family present with help and
// type, and the never-written latency histogram still exposing its full
// +Inf/sum/count series.
func TestMetricsDeterministicAndComplete(t *testing.T) {
	eng, _ := buildEngine(t, trace.NewRecorder(8))
	srv, err := NewServer(Config{Engine: eng, Trace: trace.NewRecorder(8)})
	if err != nil {
		t.Fatal(err)
	}
	code, first := scrape(t, srv.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	_, second := scrape(t, srv.Handler(), "/metrics")
	if first != second {
		t.Fatal("two scrapes of identical state differ byte-for-byte")
	}

	for _, family := range []string{
		"tstorm_engine_roots_emitted_total",
		"tstorm_engine_tuples_sent_total",
		"tstorm_engine_inter_node_sent_total",
		"tstorm_engine_inter_process_sent_total",
		"tstorm_engine_processed_total",
		"tstorm_engine_sink_processed_total",
		"tstorm_engine_migrations_total",
		"tstorm_engine_applies_total",
		"tstorm_ack_acked_total",
		"tstorm_ack_late_total",
		"tstorm_ack_failed_total",
		"tstorm_ack_replayed_total",
		"tstorm_ack_combined_total",
		"tstorm_engine_dropped_total",
		"tstorm_worker_crashes_total",
		"tstorm_worker_restarts_total",
		"tstorm_pool_hits_total",
		"tstorm_pool_misses_total",
		"tstorm_ack_pending",
		"tstorm_latency_ms",
		"tstorm_completion_latency_ms",
		"tstorm_executor_queue_depth",
		"tstorm_executor_queue_capacity",
		"tstorm_executor_processed_total",
		"tstorm_executor_emitted_total",
		"tstorm_executor_process_latency_ms",
		"tstorm_edge_tuples_total",
		"tstorm_trace_dropped_total",
	} {
		if !strings.Contains(first, "# HELP "+family+" ") {
			t.Errorf("missing HELP for %s", family)
		}
		if !strings.Contains(first, "# TYPE "+family+" ") {
			t.Errorf("missing TYPE for %s", family)
		}
	}
	// The engine never ran: the latency histogram is empty but its series
	// is complete, and executor gauges cover both bolts.
	for _, line := range []string{
		`tstorm_latency_ms_bucket{le="+Inf"} 0`,
		"tstorm_latency_ms_sum 0",
		"tstorm_latency_ms_count 0",
		`tstorm_executor_queue_capacity{topology="expo",component="work",index="0"} 64`,
		`tstorm_executor_queue_capacity{topology="expo",component="work",index="1"} 64`,
		`tstorm_executor_processed_total{topology="expo",component="s",index="0"} 0`,
		`tstorm_executor_process_latency_ms_count{topology="expo",component="work",index="0"} 0`,
		"tstorm_engine_tuples_sent_total 0",
		"tstorm_trace_dropped_total 0",
		"tstorm_ack_acked_total 0",
		"tstorm_ack_pending 0",
		`tstorm_completion_latency_ms_bucket{le="+Inf"} 0`,
		"tstorm_completion_latency_ms_count 0",
	} {
		if !strings.Contains(first, line+"\n") {
			t.Errorf("scrape missing line %q", line)
		}
	}
	// No monitor was configured, so its families must be absent.
	if strings.Contains(first, "tstorm_monitor_") {
		t.Error("monitor families present without a monitor")
	}
}

// TestEscapeLabel pins the exposition escaping rules.
func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"all\\\"\n", `all\\\"\n`},
		{"", ""},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestFormatValue pins the sample-value rendering.
func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{42, "42"},
		{-3, "-3"},
		{0.5, "0.5"},
		{1e20, "1e+20"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestHistogramExposition checks the cumulative-bucket invariants on a
// small hand-filled histogram, and the complete zero series for an empty
// one.
func TestHistogramExposition(t *testing.T) {
	h := metrics.NewHistogram(1e-4, 1e4, 10)
	for _, v := range []float64{1, 1, 10, 100} {
		h.Add(v)
	}
	var e expo
	e.histogram("m", []label{{"x", "y"}}, h)
	lines := strings.Split(strings.TrimSpace(e.b.String()), "\n")
	// 3 non-empty bins + +Inf + sum + count.
	if len(lines) != 6 {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	if !strings.HasSuffix(lines[0], " 2") || !strings.HasSuffix(lines[1], " 3") ||
		!strings.HasSuffix(lines[2], " 4") {
		t.Errorf("buckets are not cumulative: %q", lines[:3])
	}
	if want := `m_bucket{x="y",le="+Inf"} 4`; lines[3] != want {
		t.Errorf("inf bucket %q, want %q", lines[3], want)
	}
	if want := `m_sum{x="y"} 112`; lines[4] != want {
		t.Errorf("sum %q, want %q", lines[4], want)
	}
	if want := `m_count{x="y"} 4`; lines[5] != want {
		t.Errorf("count %q, want %q", lines[5], want)
	}

	var empty expo
	empty.histogram("m", nil, metrics.NewHistogram(1e-4, 1e4, 10))
	want := "m_bucket{le=\"+Inf\"} 0\nm_sum 0\nm_count 0\n"
	if got := empty.b.String(); got != want {
		t.Errorf("empty histogram series %q, want %q", got, want)
	}
}

// TestPlacementReflectsApply starts the engine, applies a new assignment,
// and checks /debug/placement reports the moved executor and the bumped
// applies counter immediately after Apply returns.
func TestPlacementReflectsApply(t *testing.T) {
	eng, initial := buildEngine(t, nil)
	srv, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	next := initial.Clone()
	next.ID = 1
	moved := topology.ExecutorID{Topology: "expo", Component: "work", Index: 1}
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	next.Assign(moved, n2)
	if _, err := eng.Apply("expo", next); err != nil {
		t.Fatal(err)
	}

	code, body := scrape(t, srv.Handler(), "/debug/placement")
	if code != http.StatusOK {
		t.Fatalf("/debug/placement status %d", code)
	}
	var doc struct {
		Applies    int64 `json:"applies"`
		Migrations int64 `json:"migrations"`
		Placements []struct {
			Executor topology.ExecutorID `json:"executor"`
			Slot     cluster.SlotID      `json:"slot"`
		} `json:"placements"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("placement is not JSON: %v\n%s", err, body)
	}
	if doc.Applies != 1 || doc.Migrations != 1 {
		t.Errorf("applies/migrations = %d/%d, want 1/1", doc.Applies, doc.Migrations)
	}
	if len(doc.Placements) != 3 {
		t.Fatalf("%d placements, want 3", len(doc.Placements))
	}
	found := false
	for _, p := range doc.Placements {
		if p.Executor == moved {
			found = true
			if p.Slot != n2 {
				t.Errorf("moved executor reported on %v, want %v", p.Slot, n2)
			}
		}
	}
	if !found {
		t.Error("moved executor missing from placement")
	}
}

// TestTraceEndpoint checks the JSON and text renderings, the ?n= limit,
// and the 404 when no recorder is attached.
func TestTraceEndpoint(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	rec := trace.NewRecorder(16)
	rec.Emit(trace.Event{At: sim.Time(2500 * time.Millisecond), Kind: trace.WorkerStarted, Where: "node01"})
	rec.Emit(trace.WallEvent(trace.SpoutsHalted, "expo", "", "reassign"))
	rec.Emit(trace.WallEvent(trace.SpoutsResumed, "expo", "", ""))
	srv, err := NewServer(Config{Engine: eng, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}

	code, body := scrape(t, srv.Handler(), "/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	var docs []map[string]any
	if err := json.Unmarshal([]byte(body), &docs); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	if len(docs) != 3 {
		t.Fatalf("%d events, want 3", len(docs))
	}
	if docs[0]["sim_seconds"] != 2.5 || docs[0]["time"] != nil {
		t.Errorf("sim event rendered %v", docs[0])
	}
	if docs[1]["time"] == nil || docs[1]["sim_seconds"] != nil {
		t.Errorf("wall event rendered %v", docs[1])
	}
	if docs[1]["kind"] != "spouts-halted" || docs[1]["detail"] != "reassign" {
		t.Errorf("wall event fields %v", docs[1])
	}

	_, limited := scrape(t, srv.Handler(), "/debug/trace?n=1")
	docs = nil
	if err := json.Unmarshal([]byte(limited), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0]["kind"] != "spouts-resumed" {
		t.Errorf("?n=1 returned %v, want the newest event", docs)
	}

	_, text := scrape(t, srv.Handler(), "/debug/trace?format=text")
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "t=2.5s worker-started") {
		t.Errorf("text timeline %q", lines)
	}

	bare, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := scrape(t, bare.Handler(), "/debug/trace"); code != http.StatusNotFound {
		t.Errorf("traceless /debug/trace status %d, want 404", code)
	}
}

// TestServerStartServesHTTP exercises the real listener path once.
func TestServerStartServesHTTP(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	srv, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("content type %q", got)
	}
	if err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start should fail")
	}
}

// TestScrapeUnderChurnStress hammers every endpoint while the engine runs
// full-tilt and Apply flips the placement back and forth — the lock-free
// snapshot claim, checked under -race. Run explicitly by ci.sh.
func TestScrapeUnderChurnStress(t *testing.T) {
	rec := trace.NewRecorder(64)
	eng, initial := buildEngine(t, rec)
	srv, err := NewServer(Config{Engine: eng, Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	flipped := initial.Clone()
	flipped.ID = 1
	n2 := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	for i := 0; i < 2; i++ {
		flipped.Assign(topology.ExecutorID{Topology: "expo", Component: "work", Index: i}, n2)
	}

	const applies = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if code, _ := scrape(t, srv.Handler(), path); code != http.StatusOK {
						t.Errorf("%s status %d under churn", path, code)
						return
					}
				}
			}
		}([]string{"/metrics", "/debug/placement", "/debug/trace"}[i])
	}

	cur := initial
	for i := 0; i < applies; i++ {
		next := flipped.Clone()
		if i%2 == 1 {
			next = initial.Clone()
		}
		next.ID = int64(i + 1)
		if _, err := eng.Apply("expo", next); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		cur = next
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// After the churn the scrape still reflects a consistent engine: the
	// applies counter matches and the placement equals the last assignment.
	_, body := scrape(t, srv.Handler(), "/metrics")
	if !strings.Contains(body, fmt.Sprintf("tstorm_engine_applies_total %d\n", applies)) {
		t.Error("applies counter missing or wrong after churn")
	}
	got, ok := eng.CurrentAssignment("expo")
	if !ok || !got.Equal(cur) {
		t.Error("assignment diverged under churn")
	}
}
