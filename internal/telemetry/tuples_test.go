package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tstorm/internal/live"
	"tstorm/internal/tracing"
)

// fedCollector returns a collector holding one completed tree: root 0x64
// emitted at t=0ms, split(task 1) reached over an inter-node hop and
// executing 1ms→4ms→6ms, count(task 2) over a local hop executing
// 6ms→7ms→10ms, acked at 12ms.
func fedCollector(t *testing.T) *tracing.Collector {
	t.Helper()
	c := tracing.NewCollector(tracing.Config{Settle: time.Millisecond})
	ms := func(v float64) int64 { return int64(v * 1e6) }
	c.Add([]tracing.Span{
		{Root: 0x64, Self: 0x64, Kind: tracing.KindRoot, Topology: "wc", Component: "reader", Task: 0, EmitAt: ms(0)},
		{Root: 0x64, Self: 7, Parent: 0x64, Kind: tracing.KindExecute, Topology: "wc", Component: "split", Task: 1,
			Boundary: tracing.BoundaryInterNode, SentAt: ms(0.5), StartAt: ms(4), EndAt: ms(6)},
		{Root: 0x64, Self: 8, Parent: 7, Kind: tracing.KindExecute, Topology: "wc", Component: "count", Task: 2,
			Boundary: tracing.BoundaryLocal, SentAt: ms(6), StartAt: ms(7), EndAt: ms(10)},
		{Root: 0x64, Self: 0x64, Kind: tracing.KindAck, Topology: "wc", Component: "reader", Task: 0, AckAt: ms(12)},
	})
	time.Sleep(5 * time.Millisecond)
	// The sweep runs inside Add; an unrelated root triggers finalization.
	c.Add([]tracing.Span{{Root: 0x999, Self: 0x999, Kind: tracing.KindRoot, EmitAt: ms(20)}})
	if st := c.Stats(); st.Completed != 1 {
		t.Fatalf("fixture tree did not finalize: %+v", st)
	}
	return c
}

func tupleServer(t *testing.T, c *tracing.Collector, pprofOn bool) *Server {
	t.Helper()
	srv, err := NewServer(Config{
		Totals: func() live.Totals { return live.Totals{TraceSampled: 3, TraceSpanDropped: 1} },
		Tuples: c,
		Pprof:  pprofOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestDebugTuplesJSON(t *testing.T) {
	srv := tupleServer(t, fedCollector(t), false)
	code, body := scrape(t, srv.Handler(), "/debug/tuples")
	if code != http.StatusOK {
		t.Fatalf("/debug/tuples status %d: %s", code, body)
	}
	var doc tuplesDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.SampledRoots != 3 || doc.SpanDropped != 1 {
		t.Errorf("counters = %d/%d, want 3/1", doc.SampledRoots, doc.SpanDropped)
	}
	if doc.Completed != 1 || doc.Pending != 1 || len(doc.Trees) != 1 {
		t.Fatalf("doc = completed %d pending %d trees %d, want 1/1/1", doc.Completed, doc.Pending, len(doc.Trees))
	}
	tr := doc.Trees[0]
	if tr.CompletionMs != 12 || len(tr.Path) != 2 {
		t.Fatalf("tree = completion %.1fms, %d path steps; want 12ms, 2", tr.CompletionMs, len(tr.Path))
	}
	// The acceptance invariant: boundary-class shares sum to the
	// completion latency (within 1%; here exactly by construction).
	var sum float64
	for _, v := range tr.Shares {
		sum += v
	}
	if diff := sum - tr.CompletionMs; diff > 0.01*tr.CompletionMs || diff < -0.01*tr.CompletionMs {
		t.Errorf("shares sum %.4f vs completion %.4f", sum, tr.CompletionMs)
	}
	if tr.Shares[tracing.BoundaryInterNode] != 4 || tr.Shares[tracing.BoundaryLocal] != 1 ||
		tr.Shares[tracing.ShareExecute] != 5 || tr.Shares[tracing.ShareAck] != 2 {
		t.Errorf("share decomposition wrong: %v", tr.Shares)
	}
}

func TestDebugTuplesText(t *testing.T) {
	srv := tupleServer(t, fedCollector(t), false)
	req := httptest.NewRequest(http.MethodGet, "/debug/tuples?format=text", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"tree 0000000000000064 wc completion 12.000ms spans 4",
		"reader/0 emit",
		"[inter-node] split/1 exec 2.000ms",
		"[local] count/2 exec 3.000ms",
		"+2.000ms ack",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("timeline missing %q in:\n%s", want, body)
		}
	}
}

func TestDebugTuplesDisabled(t *testing.T) {
	srv, err := NewServer(Config{Totals: func() live.Totals { return live.Totals{} }})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := scrape(t, srv.Handler(), "/debug/tuples"); code != http.StatusNotFound {
		t.Fatalf("/debug/tuples without a collector: status %d, want 404", code)
	}
}

// TestTraceMetricFamiliesGated: with a collector the tstorm_trace_* tuple
// families appear with correct values; without one the document carries no
// tuple-tracing family (the event-recorder's tstorm_trace_dropped_total is
// a different, pre-existing family and must not match).
func TestTraceMetricFamiliesGated(t *testing.T) {
	srv := tupleServer(t, fedCollector(t), false)
	_, body := scrape(t, srv.Handler(), "/metrics")
	for _, want := range []string{
		"tstorm_trace_sampled_roots_total 3",
		"tstorm_trace_span_dropped_total 1",
		"tstorm_trace_trees_completed_total 1",
		"tstorm_trace_trees_evicted_total 0",
		"tstorm_trace_orphan_spans_total 0",
		"tstorm_trace_trees_pending 1",
		`tstorm_trace_critical_path_share{class="ack"}`,
		`tstorm_trace_critical_path_share{class="execute"}`,
		`tstorm_trace_critical_path_share{class="inter-node"}`,
		`tstorm_trace_critical_path_share{class="local"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	bare, err := NewServer(Config{Totals: func() live.Totals { return live.Totals{TraceSampled: 3} }})
	if err != nil {
		t.Fatal(err)
	}
	_, body = scrape(t, bare.Handler(), "/metrics")
	for _, stray := range []string{
		"tstorm_trace_sampled_roots_total",
		"tstorm_trace_span_dropped_total",
		"tstorm_trace_trees_completed_total",
		"tstorm_trace_critical_path_share",
	} {
		if strings.Contains(body, stray) {
			t.Errorf("/metrics leaks %q without a collector", stray)
		}
	}
}

// TestReadOnlyEndpoints: every telemetry endpoint answers non-GET/HEAD
// methods with 405 and an Allow header.
func TestReadOnlyEndpoints(t *testing.T) {
	srv := tupleServer(t, fedCollector(t), false)
	paths := []string{
		"/metrics", "/debug/placement", "/debug/trace", "/debug/scheduler",
		"/debug/traffic", "/debug/workers", "/debug/tuples",
	}
	for _, path := range paths {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req := httptest.NewRequest(method, path, strings.NewReader("x"))
			w := httptest.NewRecorder()
			srv.Handler().ServeHTTP(w, req)
			if w.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, w.Code)
			}
			if allow := w.Header().Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow = %q", method, path, allow)
			}
		}
		// HEAD must pass the guard (handlers may still 404 on state).
		req := httptest.NewRequest(http.MethodHead, path, nil)
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		if w.Code == http.StatusMethodNotAllowed {
			t.Errorf("HEAD %s: rejected with 405", path)
		}
	}
}

func TestPprofGated(t *testing.T) {
	on := tupleServer(t, nil, true)
	if code, body := scrape(t, on.Handler(), "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ with Pprof on: status %d", code)
	}
	if code, _ := scrape(t, on.Handler(), "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}
	off := tupleServer(t, nil, false)
	if code, _ := scrape(t, off.Handler(), "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ with Pprof off: status %d, want 404", code)
	}
}
