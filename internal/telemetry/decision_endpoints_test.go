package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/decision"
	"tstorm/internal/docstore"
	"tstorm/internal/live"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/workloads"
)

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRequestLimitValidation pins the ?n= contract on /debug/trace: absent
// keeps the default, larger values clamp to the configured cap, and
// non-numeric or non-positive input is rejected with a 400.
func TestRequestLimitValidation(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	rec := trace.NewRecorder(16)
	for i := 0; i < 3; i++ {
		rec.Emit(trace.WallEvent(trace.WorkerStarted, "expo", "node01", strconv.Itoa(i)))
	}
	srv, err := NewServer(Config{Engine: eng, Trace: rec, TraceLimit: 2})
	if err != nil {
		t.Fatal(err)
	}

	count := func(path string) int {
		t.Helper()
		code, body := scrape(t, srv.Handler(), path)
		if code != http.StatusOK {
			t.Fatalf("%s status %d", path, code)
		}
		var docs []map[string]any
		if err := json.Unmarshal([]byte(body), &docs); err != nil {
			t.Fatalf("%s not JSON: %v", path, err)
		}
		return len(docs)
	}
	// Default and over-limit requests clamp to TraceLimit=2.
	if got := count("/debug/trace"); got != 2 {
		t.Errorf("default limit returned %d events, want 2", got)
	}
	if got := count("/debug/trace?n=99"); got != 2 {
		t.Errorf("?n=99 returned %d events, want clamp to 2", got)
	}
	if got := count("/debug/trace?n=1"); got != 1 {
		t.Errorf("?n=1 returned %d events, want 1", got)
	}
	for _, q := range []string{"abc", "0", "-3", "1.5"} {
		code, body := scrape(t, srv.Handler(), "/debug/trace?n="+q)
		if code != http.StatusBadRequest {
			t.Errorf("?n=%s status %d, want 400", q, code)
		}
		if !strings.Contains(body, "invalid n=") {
			t.Errorf("?n=%s error body %q", q, body)
		}
	}
}

// TestServerCloseIdempotent checks Close is safe before Start and when
// called repeatedly after it.
func TestServerCloseIdempotent(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	srv, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close before Start: %v", err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSchedulerEndpoint drives /debug/scheduler from a hand-filled
// history: JSON counters and reports, the text timeline, ?n= limiting,
// and the 404 without a history.
func TestSchedulerEndpoint(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	h := decision.NewHistory(8)
	h.Add(&decision.Report{
		Algorithm: "tstorm", Executors: 3, Nodes: 2, NodesUsed: 2,
		PredictedBefore: -1, PredictedAfter: 120, Moved: 3, Applied: true,
		Duration: 2 * time.Millisecond,
	})
	h.Add(&decision.Report{
		Algorithm: "tstorm", Executors: 3, Nodes: 2, NodesUsed: 2,
		PredictedBefore: 120, PredictedAfter: 90, Moved: 1, Applied: false,
		Relaxations: 1, Duration: time.Millisecond,
	})
	srv, err := NewServer(Config{Engine: eng, History: h})
	if err != nil {
		t.Fatal(err)
	}

	code, body := scrape(t, srv.Handler(), "/debug/scheduler")
	if code != http.StatusOK {
		t.Fatalf("/debug/scheduler status %d", code)
	}
	var doc struct {
		Rounds      int64             `json:"rounds"`
		Moves       int64             `json:"moves"`
		Relaxations int64             `json:"relaxations"`
		Ratio       *float64          `json:"predicted_vs_observed_ratio"`
		Reports     []decision.Report `json:"reports"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("scheduler not JSON: %v\n%s", err, body)
	}
	if doc.Rounds != 2 || doc.Moves != 3 || doc.Relaxations != 1 {
		t.Errorf("counters = %d/%d/%d, want 2/3/1", doc.Rounds, doc.Moves, doc.Relaxations)
	}
	if doc.Ratio != nil {
		t.Errorf("ratio %v without a baseline, want omitted", *doc.Ratio)
	}
	if len(doc.Reports) != 2 || doc.Reports[0].Round != 1 || doc.Reports[1].Round != 2 {
		t.Fatalf("reports = %+v", doc.Reports)
	}

	_, limited := scrape(t, srv.Handler(), "/debug/scheduler?n=1")
	doc.Reports = nil
	if err := json.Unmarshal([]byte(limited), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Reports) != 1 || doc.Reports[0].Round != 2 {
		t.Errorf("?n=1 returned %+v, want only the newest round", doc.Reports)
	}

	_, text := scrape(t, srv.Handler(), "/debug/scheduler?format=text")
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 2 {
		t.Fatalf("text timeline has %d lines: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "round 1") || !strings.Contains(lines[0], "inter-node n/a -> 120") ||
		!strings.Contains(lines[0], "[applied]") {
		t.Errorf("first line %q", lines[0])
	}
	if !strings.Contains(lines[1], "inter-node 120 -> 90") || !strings.Contains(lines[1], "[skipped]") {
		t.Errorf("second line %q", lines[1])
	}

	bare, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := scrape(t, bare.Handler(), "/debug/scheduler"); code != http.StatusNotFound {
		t.Errorf("historyless /debug/scheduler status %d, want 404", code)
	}
}

// TestTrafficEndpoint checks /debug/traffic serves the live matrix and the
// recorded ring, and 404s when neither source exists.
func TestTrafficEndpoint(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	e0 := topology.ExecutorID{Topology: "expo", Component: "s", Index: 0}
	e1 := topology.ExecutorID{Topology: "expo", Component: "work", Index: 0}
	db := loaddb.New(1)
	db.UpdateExecutorLoad(e0, 100)
	db.UpdateTraffic(e0, e1, 42)
	h := decision.NewHistory(2)
	for i := 0; i < 3; i++ {
		h.RecordTraffic(time.Now(), db.Snapshot())
	}
	srv, err := NewServer(Config{Engine: eng, History: h, DB: db})
	if err != nil {
		t.Fatal(err)
	}

	code, body := scrape(t, srv.Handler(), "/debug/traffic")
	if code != http.StatusOK {
		t.Fatalf("/debug/traffic status %d", code)
	}
	var doc struct {
		Current *decision.TrafficSnapshot  `json:"current"`
		History []decision.TrafficSnapshot `json:"history"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("traffic not JSON: %v\n%s", err, body)
	}
	if doc.Current == nil || len(doc.Current.Flows) != 1 || doc.Current.Flows[0].Rate != 42 {
		t.Fatalf("current snapshot = %+v", doc.Current)
	}
	if doc.Current.ExecLoad[0].MHz != 100 {
		t.Errorf("current exec load = %+v", doc.Current.ExecLoad)
	}
	if len(doc.History) != 2 {
		t.Errorf("history length %d, want ring capacity 2", len(doc.History))
	}

	doc.Current = nil
	_, limited := scrape(t, srv.Handler(), "/debug/traffic?n=1")
	doc.History = nil
	if err := json.Unmarshal([]byte(limited), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.History) != 1 {
		t.Errorf("?n=1 history length %d, want 1", len(doc.History))
	}

	bare, err := NewServer(Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := scrape(t, bare.Handler(), "/debug/traffic"); code != http.StatusNotFound {
		t.Errorf("sourceless /debug/traffic status %d, want 404", code)
	}
}

// TestPlacementOmitsForgottenTopology checks /debug/placement stops
// listing a topology's executors after the monitor Forgets it.
func TestPlacementOmitsForgottenTopology(t *testing.T) {
	eng, _ := buildEngine(t, nil)
	db := loaddb.New(0.5)
	mon := live.StartMonitor(eng, db, time.Hour)
	defer mon.Stop()
	srv, err := NewServer(Config{Engine: eng, Monitor: mon})
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Placements []live.PlacementEntry `json:"placements"`
	}
	_, body := scrape(t, srv.Handler(), "/debug/placement")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Placements) != 3 {
		t.Fatalf("placement lists %d executors before Forget, want 3", len(doc.Placements))
	}

	mon.Forget("expo")
	doc.Placements = nil
	_, body = scrape(t, srv.Handler(), "/debug/placement")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	for _, p := range doc.Placements {
		if p.Executor.Topology == "expo" {
			t.Fatalf("forgotten topology still listed: %+v", p)
		}
	}
	if len(doc.Placements) != 0 {
		t.Fatalf("placement lists %d executors after Forget, want 0", len(doc.Placements))
	}
}

// TestPredictedVsObservedRatioLive is the end-to-end reconciliation check:
// a self-fed Word Count runs on four emulated nodes, the monitor feeds the
// EWMA database, and after a forced reschedule plus a converged re-baseline
// the ratio gauge on /metrics must sit within a factor of two of reality.
func TestPredictedVsObservedRatioLive(t *testing.T) {
	cl, err := cluster.Uniform(4, 4, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workloads.DefaultSelfFedWordCountConfig()
	wcfg.Sink = docstore.NewStore()
	app, err := workloads.NewSelfFedWordCount(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Worst-case start: everything on one slot, so the reschedule must
	// spread the topology and make real inter-node traffic to reconcile.
	initial := cluster.NewAssignment(0)
	for _, e := range app.Topology.Executors() {
		initial.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
	}
	eng, err := live.NewEngine(live.Config{QueueCapacity: 256,
		SpoutHaltDelay: 5 * time.Millisecond, DrainTimeout: 2 * time.Second}, cl)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	const period = 100 * time.Millisecond
	db := loaddb.New(0.5)
	mon := live.StartMonitor(eng, db, period)
	defer mon.Stop()
	hist := decision.NewHistory(8)
	gen, err := live.StartGenerator(eng, db, live.GeneratorConfig{
		Period:               time.Hour, // manual rounds only
		CapacityFraction:     0.9,
		ImprovementThreshold: 0.10,
		History:              hist,
	}, core.NewTrafficAware(1.5))
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Stop()
	srv, err := NewServer(Config{Engine: eng, Monitor: mon, History: hist, DB: db})
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, 20*time.Second, "warm-up windows", func() bool {
		return mon.Samples() >= 4 && eng.Totals().SinkProcessed > 2000
	})
	if !gen.Reschedule() {
		t.Fatal("forced reschedule applied nothing")
	}
	// Let the EWMA converge to post-migration rates, then take a second
	// round so the baseline prediction reflects the placement that is
	// actually live.
	samplesAfter := mon.Samples()
	waitFor(t, 20*time.Second, "post-migration windows", func() bool {
		return mon.Samples() >= samplesAfter+5
	})
	gen.Generate()
	time.Sleep(6 * period)

	_, body := scrape(t, srv.Handler(), "/metrics")
	var ratio float64
	found := false
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, "tstorm_scheduler_predicted_vs_observed_ratio "); ok {
			ratio, err = strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("unparseable ratio %q: %v", v, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("ratio gauge missing from scrape:\n%s", body)
	}
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("predicted/observed ratio = %.3f, want within [0.5, 2.0]", ratio)
	}
	if !strings.Contains(body, "tstorm_scheduler_rounds_total 2\n") {
		t.Error("rounds counter missing or wrong")
	}
	if !strings.Contains(body, "tstorm_scheduler_decision_duration_ms_count 2\n") {
		t.Error("decision duration histogram missing or wrong")
	}

	// The last report must explain its placements: the tstorm algorithm
	// records every candidate slot with gain or rejection constraint.
	last, ok := hist.Last()
	if !ok || last.Algorithm != "tstorm" {
		t.Fatalf("last report = %+v ok=%v", last, ok)
	}
	if len(last.Placements) != app.Topology.NumExecutors() {
		t.Fatalf("last report has %d placements, want %d", len(last.Placements), app.Topology.NumExecutors())
	}
	for _, p := range last.Placements {
		if len(p.Options) == 0 {
			t.Fatalf("placement %v has no candidate options", p.Executor)
		}
	}
	// Applying a schedule must have moved executors off the packed node.
	if first, ok := hist.Reports()[0], true; !ok || !first.Applied || first.Moved == 0 {
		t.Errorf("first round = %+v, want an applied round with moves", first)
	}
}
