package telemetry

import (
	"math"
	"strconv"
	"strings"

	"tstorm/internal/metrics"
)

// expo accumulates Prometheus text-format (version 0.0.4) output. Callers
// write families in a fixed order and pre-sorted sample sets, so two
// scrapes of identical state produce byte-identical documents — the
// determinism the format tests pin down.
type expo struct {
	b strings.Builder
}

// label is one key="value" pair. Keys must be valid metric label names;
// values are escaped on write.
type label struct {
	k, v string
}

// family writes the # HELP / # TYPE preamble for a metric family. typ is
// "counter", "gauge", or "histogram".
func (e *expo) family(name, help, typ string) {
	e.b.WriteString("# HELP ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(help)
	e.b.WriteString("\n# TYPE ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(typ)
	e.b.WriteByte('\n')
}

// sample writes one sample line: name{labels} value.
func (e *expo) sample(name string, labels []label, v float64) {
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.b.WriteByte(',')
			}
			e.b.WriteString(l.k)
			e.b.WriteString(`="`)
			e.b.WriteString(escapeLabel(l.v))
			e.b.WriteByte('"')
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatValue(v))
	e.b.WriteByte('\n')
}

// histogram writes one histogram series: cumulative _bucket lines over the
// snapshot's non-empty bins, the mandatory le="+Inf" bucket, then _sum and
// _count. An empty histogram still yields the +Inf bucket and zero
// sum/count, so scrapers always see a complete series.
func (e *expo) histogram(name string, labels []label, h *metrics.Histogram) {
	var cum int64
	for _, b := range h.Buckets() {
		cum += b.Count
		e.sample(name+"_bucket", append(append([]label(nil), labels...),
			label{"le", formatValue(b.UpperBound)}), float64(cum))
	}
	e.sample(name+"_bucket", append(append([]label(nil), labels...),
		label{"le", "+Inf"}), float64(h.Count()))
	e.sample(name+"_sum", labels, h.Sum())
	e.sample(name+"_count", labels, float64(h.Count()))
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value. Integral values print without
// exponent or decimal point so counters read naturally.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
