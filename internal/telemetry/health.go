package telemetry

// /debug/timeseries and /debug/health: the HTTP surface over the
// in-process observability layer. The tsdb handler dumps retained
// ring-buffer points (the same data the health rules and tstorm-top
// read); the health handler dumps the SLO engine's verdicts. Both are
// pure reads over lock-free snapshots, like every other endpoint here.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"tstorm/internal/tsdb"
)

// levelValue maps a rule level name to its metric sample value. The
// string set is closed (health.Level.String), so unknown means a future
// level worse than critical — surface it as such rather than hiding it
// behind ok.
func levelValue(level string) float64 {
	switch level {
	case "ok":
		return 0
	case "degraded":
		return 1
	case "critical":
		return 2
	}
	return 3
}

// seriesDoc is one retained series in the /debug/timeseries response.
// Point timestamps are Unix nanoseconds, exactly as the sampler stamped
// them.
type seriesDoc struct {
	Name   string       `json:"name"`
	Kind   string       `json:"kind"`
	Points []tsdb.Point `json:"points"`
}

// timeseriesDoc is the /debug/timeseries response body.
type timeseriesDoc struct {
	// Now is the server's clock at request time, for clients computing
	// point ages without trusting their own clock skew.
	Now time.Time `json:"now"`
	// Window echoes the effective query window (0 = full retention).
	Window string      `json:"window,omitempty"`
	Series []seriesDoc `json:"series"`
}

// handleTimeseries dumps the retained ring-buffer series, oldest point
// first. ?family= restricts to one series (400 with the known names when
// unknown); ?window= restricts to points within a trailing duration.
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	db := s.cfg.TSDB
	if db == nil {
		http.Error(w, "time-series retention not enabled", http.StatusNotFound)
		return
	}
	window, ok := requestWindow(w, r, 0)
	if !ok {
		return
	}
	names := db.Names()
	if fam := r.URL.Query().Get("family"); fam != "" {
		if db.Lookup(fam) == nil {
			sort.Strings(names)
			badRequest(w, "unknown family %q: have %s", fam, strings.Join(names, ", "))
			return
		}
		names = []string{fam}
	}
	now := time.Now()
	doc := timeseriesDoc{Now: now, Series: []seriesDoc{}}
	if window > 0 {
		doc.Window = window.String()
	}
	for _, name := range names {
		sr := db.Lookup(name)
		var pts []tsdb.Point
		if window > 0 {
			pts = sr.Since(now.Add(-window).UnixNano())
		} else {
			pts = sr.Last(sr.Cap())
		}
		if pts == nil {
			pts = []tsdb.Point{}
		}
		doc.Series = append(doc.Series, seriesDoc{Name: name, Kind: sr.Kind().String(), Points: pts})
	}
	writeJSON(w, doc)
}

// handleHealth returns the SLO engine's verdict snapshot as JSON, or as
// a fixed-width text panel with ?format=text (one line per rule, worst
// first within equal spec order — the same panel tstorm-top renders).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	hl := s.cfg.Health
	if hl == nil {
		http.Error(w, "health engine not enabled", http.StatusNotFound)
		return
	}
	st := hl.Status(time.Now())
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "overall %s  evals=%d transitions=%d\n", st.Overall, st.Evals, st.Transitions)
		for _, rs := range st.Rules {
			val := "-"
			if rs.HasValue {
				val = fmt.Sprintf("%.3g", rs.Value)
				if rs.Unit != "" {
					val += " " + rs.Unit
				}
			}
			base := ""
			if rs.HasBaseline {
				base = fmt.Sprintf("  baseline=%.3g", rs.Baseline)
			}
			since := ""
			if !rs.Since.IsZero() {
				since = fmt.Sprintf("  for %s", time.Since(rs.Since).Round(time.Second))
			}
			fmt.Fprintf(w, "%-9s %-28s %s%s%s\n", rs.Level, rs.Name, val, base, since)
		}
		return
	}
	writeJSON(w, st)
}
