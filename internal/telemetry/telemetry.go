// Package telemetry exposes the live runtime's measurements over HTTP: a
// Prometheus text-format /metrics endpoint (cumulative counters and
// histograms, safe to scrape while benchmarks drain their own windows),
// /debug/placement (the current routing snapshot's executor→slot map as
// JSON), /debug/trace (recent wall-clock runtime events from the ring
// buffer, as JSON or a plain-text timeline), /debug/scheduler (the
// decision-report ring explaining every Algorithm 1 placement, as JSON or
// a text timeline), /debug/traffic (the current and historical
// traffic-matrix snapshots the scheduler decided on), /debug/tuples
// (sampled end-to-end tuple trees with critical-path latency attribution,
// as JSON or a text flame timeline), /debug/timeseries (the retained
// ring-buffer series the health sampler writes), and /debug/health (the
// SLO engine's per-rule verdicts). All endpoints are read-only: any
// method besides GET/HEAD is answered with 405, and malformed query
// parameters (?n=, ?window=, ?family=) are answered with a 400 carrying
// a JSON {"error": ...} body. Config.Pprof additionally mounts the
// net/http/pprof profiling handlers under /debug/pprof/.
//
// Everything the handlers read comes from lock-free snapshots — the
// engine's copy-on-write route table, per-executor atomics, and the
// cumulative side of the latency histogram — so a scraper polling at any
// rate never contends with the emission hot path or with a concurrent
// re-assignment.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/health"
	"tstorm/internal/live"
	"tstorm/internal/loaddb"
	"tstorm/internal/trace"
	"tstorm/internal/tracing"
	"tstorm/internal/tsdb"
)

// WorkerStatus is one worker process's liveness row, as reported by a
// distributed driver through Config.Workers (defined here so the
// telemetry layer needs no dependency on the dist package).
type WorkerStatus struct {
	Slot     cluster.SlotID `json:"slot"`
	PID      int            `json:"pid"`
	Alive    bool           `json:"alive"`
	Restarts int            `json:"restarts"`
	DataAddr string         `json:"data_addr,omitempty"`
	Pending  int64          `json:"pending"`
}

// Config selects what a Server exposes. An engine-backed server sets
// Engine; a distributed driver sets the Totals/Placement/Workers
// functions instead (at least one of Engine or Totals is required).
// Monitor and Trace add their endpoints' data when present.
type Config struct {
	// Engine is the live engine to instrument. Nil for the distributed
	// backend, whose per-executor state lives in other processes — the
	// function fields below feed the fleet-level aggregates instead.
	Engine *live.Engine
	// Totals supplies the counter snapshot when Engine is nil (the
	// distributed driver's fleet aggregation).
	Totals func() live.Totals
	// Placement supplies the executor→slot map when Engine is nil.
	Placement func() []live.PlacementEntry
	// Workers, when non-nil, adds /debug/workers and the tstorm_worker_up /
	// tstorm_worker_process_restarts_total process-liveness families —
	// the distributed backend's worker fleet.
	Workers func() []WorkerStatus
	// Monitor, when non-nil, contributes the sampling gauges
	// (tstorm_monitor_*) to /metrics.
	Monitor *live.Monitor
	// Trace, when non-nil, backs /debug/trace and the dropped-events
	// counter. Typically the same recorder as the engine's Config.Trace.
	Trace *trace.Recorder
	// TraceLimit caps how many events /debug/trace returns per request
	// (default 256; the ?n= query parameter can only lower it).
	TraceLimit int
	// History, when non-nil, backs /debug/scheduler, the historical half
	// of /debug/traffic, and the tstorm_scheduler_* metric families —
	// including the predicted-vs-observed reconciliation gauge computed
	// against the engine's inter-node counter at scrape time.
	History *decision.History
	// DB, when non-nil, contributes the live traffic matrix to
	// /debug/traffic.
	DB *loaddb.DB
	// Tuples, when non-nil, backs /debug/tuples and the tstorm_trace_*
	// tuple-tracing families — the collector assembling sampled per-tuple
	// spans into trees (the engine's TraceCollector, or the distributed
	// driver's). Absent, the tracing families are omitted entirely so a
	// tracing-free scrape stays byte-identical to earlier releases.
	Tuples *tracing.Collector
	// Pprof registers the net/http/pprof profiling handlers under
	// /debug/pprof/, enabling live CPU/heap/goroutine profiling of a
	// running stack. Off by default: profiling endpoints cost real CPU
	// when hit and should be opted into.
	Pprof bool
	// TSDB, when non-nil, backs /debug/timeseries — the retained
	// ring-buffer series the health sampler writes. Absent, the endpoint
	// answers 404.
	TSDB *tsdb.DB
	// Health, when non-nil, backs /debug/health and contributes the
	// tstorm_health_* metric families. Absent, both are omitted entirely
	// so a health-free scrape stays byte-identical to earlier releases.
	Health *health.Engine
}

// Server serves the telemetry endpoints.
type Server struct {
	cfg Config
	mux *http.ServeMux
	srv *http.Server
	ln  net.Listener
}

// NewServer builds a server over the given sources (not yet listening).
func NewServer(cfg Config) (*Server, error) {
	if cfg.Engine == nil && cfg.Totals == nil {
		return nil, fmt.Errorf("telemetry: need an engine or a totals source")
	}
	if cfg.TraceLimit <= 0 {
		cfg.TraceLimit = 256
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", readOnly(s.handleMetrics))
	s.mux.HandleFunc("/debug/placement", readOnly(s.handlePlacement))
	s.mux.HandleFunc("/debug/trace", readOnly(s.handleTrace))
	s.mux.HandleFunc("/debug/scheduler", readOnly(s.handleScheduler))
	s.mux.HandleFunc("/debug/traffic", readOnly(s.handleTraffic))
	s.mux.HandleFunc("/debug/workers", readOnly(s.handleWorkers))
	s.mux.HandleFunc("/debug/tuples", readOnly(s.handleTuples))
	s.mux.HandleFunc("/debug/timeseries", readOnly(s.handleTimeseries))
	s.mux.HandleFunc("/debug/health", readOnly(s.handleHealth))
	if cfg.Pprof {
		// The stock pprof handlers, on the usual paths. Not wrapped in
		// readOnly: /debug/pprof/symbol legitimately accepts POST.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// readOnly rejects every method except GET and HEAD with 405: all
// telemetry endpoints are pure reads, and answering a POST with data would
// mask a misconfigured client.
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// totals reads the counter snapshot from whichever source is configured.
func (s *Server) totals() live.Totals {
	if s.cfg.Engine != nil {
		return s.cfg.Engine.Totals()
	}
	return s.cfg.Totals()
}

// placement reads the executor→slot map from whichever source is
// configured (nil when neither is).
func (s *Server) placement() []live.PlacementEntry {
	if s.cfg.Engine != nil {
		return s.cfg.Engine.Placement()
	}
	if s.cfg.Placement != nil {
		return s.cfg.Placement()
	}
	return nil
}

// Handler returns the endpoint mux, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (e.g. ":9090" or "127.0.0.1:0") and serves in a
// background goroutine. It returns once the listener is bound, so Addr is
// immediately valid.
func (s *Server) Start(addr string) error {
	if s.ln != nil {
		return fmt.Errorf("telemetry: already started")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and open connections. Safe when never started.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// handleMetrics renders the full Prometheus text-format document. Families
// are written in a fixed order and samples within a family are pre-sorted
// (ExecutorStats and EdgeStats sort by identity), so output ordering is
// deterministic.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	eng := s.cfg.Engine
	var e expo

	t := s.totals()
	engineCounters := []struct {
		name, help string
		v          int64
	}{
		{"tstorm_engine_roots_emitted_total", "Spout root tuples emitted.", t.RootsEmitted},
		{"tstorm_engine_tuples_sent_total", "Executor-to-executor transfers.", t.TuplesSent},
		{"tstorm_engine_inter_node_sent_total", "Transfers that crossed an emulated node boundary.", t.InterNodeSent},
		{"tstorm_engine_inter_process_sent_total", "Transfers between slots on one node.", t.InterProcessSent},
		{"tstorm_engine_processed_total", "Tuples processed by bolts.", t.Processed},
		{"tstorm_engine_sink_processed_total", "Tuples processed by terminal bolts.", t.SinkProcessed},
		{"tstorm_engine_migrations_total", "Executors moved by re-assignments.", t.Migrations},
		{"tstorm_engine_applies_total", "Re-assignments applied.", t.Applies},
	}
	for _, c := range engineCounters {
		e.family(c.name, c.help, "counter")
		e.sample(c.name, nil, float64(c.v))
	}

	ackCounters := []struct {
		name, help string
		v          int64
	}{
		{"tstorm_ack_acked_total", "Anchored roots fully processed and acked to a spout.", t.Acked},
		{"tstorm_ack_late_total", "Acked roots whose completion arrived after a timeout.", t.LateAcked},
		{"tstorm_ack_failed_total", "Roots failed by a spout's timeout wheel.", t.FailedRoots},
		{"tstorm_ack_replayed_total", "Re-emits of an already-pending spout message ID.", t.Replayed},
		{"tstorm_ack_combined_total", "XOR acks folded sender-side into a buffered ack for the same root.", t.CtlCombined},
		{"tstorm_engine_dropped_total", "Tuples dropped at (or drained from) dead executors.", t.Dropped},
		{"tstorm_worker_crashes_total", "Executor goroutines killed by fault injection.", t.WorkerCrashes},
		{"tstorm_worker_restarts_total", "Executors restarted by the supervisor.", t.WorkerRestarts},
		{"tstorm_pool_hits_total", "Batch-pool gets served from recycled memory.", t.PoolHits},
		{"tstorm_pool_misses_total", "Batch-pool gets that had to allocate.", t.PoolMisses},
	}
	for _, c := range ackCounters {
		e.family(c.name, c.help, "counter")
		e.sample(c.name, nil, float64(c.v))
	}
	// Per-executor and latency families need in-process executor state;
	// the distributed driver (eng == nil) has none — its workers own it.
	if eng != nil {
		e.family("tstorm_ack_pending", "Anchored roots currently in flight (emitted, not yet acked or failed).", "gauge")
		e.sample("tstorm_ack_pending", nil, float64(eng.PendingRoots()))

		e.family("tstorm_latency_ms", "End-to-end tuple latency, spout emit to terminal bolt (cumulative).", "histogram")
		e.histogram("tstorm_latency_ms", nil, eng.LatencySnapshot())

		e.family("tstorm_completion_latency_ms", "Root completion latency, first spout emit to ack, surviving replays (cumulative).", "histogram")
		e.histogram("tstorm_completion_latency_ms", nil, eng.CompletionLatencySnapshot())

		stats := eng.ExecutorStats()
		execLabels := func(st *live.ExecutorStat) []label {
			return []label{
				{"topology", st.ID.Topology},
				{"component", st.ID.Component},
				{"index", strconv.Itoa(st.ID.Index)},
			}
		}
		e.family("tstorm_executor_queue_depth", "Input-queue depth in delivery batches.", "gauge")
		for i := range stats {
			if stats[i].Kind == "bolt" {
				e.sample("tstorm_executor_queue_depth", execLabels(&stats[i]), float64(stats[i].QueueLen))
			}
		}
		e.family("tstorm_executor_queue_capacity", "Input-queue capacity in delivery batches.", "gauge")
		for i := range stats {
			if stats[i].Kind == "bolt" {
				e.sample("tstorm_executor_queue_capacity", execLabels(&stats[i]), float64(stats[i].QueueCap))
			}
		}
		e.family("tstorm_executor_processed_total", "Lifetime tuples processed by the executor.", "counter")
		for i := range stats {
			e.sample("tstorm_executor_processed_total", execLabels(&stats[i]), float64(stats[i].Processed))
		}
		e.family("tstorm_executor_emitted_total", "Lifetime tuples emitted by the executor.", "counter")
		for i := range stats {
			e.sample("tstorm_executor_emitted_total", execLabels(&stats[i]), float64(stats[i].Emitted))
		}
		e.family("tstorm_executor_process_latency_ms", "Per-tuple process time (decode + Execute).", "histogram")
		for i := range stats {
			if stats[i].ProcLatency != nil {
				e.histogram("tstorm_executor_process_latency_ms", execLabels(&stats[i]), stats[i].ProcLatency)
			}
		}

		e.family("tstorm_edge_tuples_total", "Tuples transferred per executor pair, by boundary class.", "counter")
		for _, es := range eng.EdgeStats() {
			e.sample("tstorm_edge_tuples_total", []label{
				{"from", es.From.String()},
				{"to", es.To.String()},
				{"boundary", es.Boundary},
			}, float64(es.Tuples))
		}
	}

	if wf := s.cfg.Workers; wf != nil {
		workers := wf()
		alive := 0
		slotLabels := func(ws *WorkerStatus) []label {
			return []label{
				{"node", string(ws.Slot.Node)},
				{"port", strconv.Itoa(ws.Slot.Port)},
			}
		}
		e.family("tstorm_worker_up", "Whether the slot's worker process is registered and live.", "gauge")
		for i := range workers {
			v := 0.0
			if workers[i].Alive {
				v = 1.0
				alive++
			}
			e.sample("tstorm_worker_up", slotLabels(&workers[i]), v)
		}
		e.family("tstorm_worker_process_restarts_total", "Worker-process respawns performed by the supervisor.", "counter")
		for i := range workers {
			e.sample("tstorm_worker_process_restarts_total", slotLabels(&workers[i]), float64(workers[i].Restarts))
		}
		e.family("tstorm_workers_alive", "Live worker processes in the fleet.", "gauge")
		e.sample("tstorm_workers_alive", nil, float64(alive))
	}

	if m := s.cfg.Monitor; m != nil {
		e.family("tstorm_monitor_samples_total", "Completed monitor sampling rounds.", "counter")
		e.sample("tstorm_monitor_samples_total", nil, float64(m.Samples()))
		e.family("tstorm_monitor_last_sample_age_seconds", "Seconds since the last completed sampling round.", "gauge")
		e.sample("tstorm_monitor_last_sample_age_seconds", nil, m.LastSampleAge().Seconds())
		e.family("tstorm_monitor_sampling_round_duration_seconds", "Duration of the last sampling round.", "gauge")
		e.sample("tstorm_monitor_sampling_round_duration_seconds", nil, m.LastRoundDuration().Seconds())
	}

	if rec := s.cfg.Trace; rec != nil {
		e.family("tstorm_trace_dropped_total", "Trace events evicted from the ring buffer.", "counter")
		e.sample("tstorm_trace_dropped_total", nil, float64(rec.Dropped()))
	}

	s.traceFamilies(&e, t)

	if h := s.cfg.History; h != nil {
		e.family("tstorm_scheduler_rounds_total", "Completed scheduling decision rounds.", "counter")
		e.sample("tstorm_scheduler_rounds_total", nil, float64(h.Rounds()))
		e.family("tstorm_scheduler_moves_total", "Executors moved by applied scheduling rounds.", "counter")
		e.sample("tstorm_scheduler_moves_total", nil, float64(h.Moves()))
		e.family("tstorm_scheduler_relaxations_total", "Placements that needed constraint relaxation.", "counter")
		e.sample("tstorm_scheduler_relaxations_total", nil, float64(h.Relaxations()))
		e.family("tstorm_scheduler_decision_duration_ms", "Wall-clock duration of each scheduling decision round.", "histogram")
		e.histogram("tstorm_scheduler_decision_duration_ms", nil, h.DurationHistogram())
		// The reconciliation gauge: predicted inter-node rate of the live
		// schedule over the rate observed on the engine's counters since
		// the last round. No sample until a baseline window has elapsed.
		e.family("tstorm_scheduler_predicted_vs_observed_ratio", "Predicted inter-node traffic rate over the rate observed since the last scheduling round (1.0 = the cost model matched the wire).", "gauge")
		if ratio, ok := h.Reconcile(s.totals().InterNodeSent, time.Now()); ok {
			e.sample("tstorm_scheduler_predicted_vs_observed_ratio", nil, ratio)
		}
	}

	// Health families come last and only when a health engine is wired:
	// a health-off scrape is byte-identical to earlier releases, and a
	// health-on scrape is that same document plus this trailing block.
	if hl := s.cfg.Health; hl != nil {
		st := hl.Status(time.Now())
		e.family("tstorm_health_level", "Worst rule level: 0 ok, 1 degraded, 2 critical.", "gauge")
		e.sample("tstorm_health_level", nil, levelValue(st.Overall))
		e.family("tstorm_health_rule_level", "Per-rule SLO level: 0 ok, 1 degraded, 2 critical.", "gauge")
		for i := range st.Rules {
			e.sample("tstorm_health_rule_level", []label{{"rule", st.Rules[i].Name}}, levelValue(st.Rules[i].Level))
		}
		e.family("tstorm_health_evals_total", "Completed health evaluation passes.", "counter")
		e.sample("tstorm_health_evals_total", nil, float64(st.Evals))
		e.family("tstorm_health_transitions_total", "Rule level transitions since start.", "counter")
		e.sample("tstorm_health_transitions_total", nil, float64(st.Transitions))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, e.b.String())
}

// placementDoc is the /debug/placement response body.
type placementDoc struct {
	// Applies and Migrations are lifetime re-assignment counters; a
	// scraper can detect "placement changed since last poll" cheaply.
	Applies    int64                 `json:"applies"`
	Migrations int64                 `json:"migrations"`
	Placements []live.PlacementEntry `json:"placements"`
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	t := s.totals()
	placements := s.placement()
	// The engine has no topology-removal API, so executors of a topology
	// the monitor was told to Forget stay in the route snapshot; keep the
	// telemetry view consistent with the rest of the stack by filtering
	// them here.
	if m := s.cfg.Monitor; m != nil {
		kept := make([]live.PlacementEntry, 0, len(placements))
		for _, p := range placements {
			if !m.Forgotten(p.Executor.Topology) {
				kept = append(kept, p)
			}
		}
		placements = kept
	}
	doc := placementDoc{
		Applies:    t.Applies,
		Migrations: t.Migrations,
		Placements: placements,
	}
	writeJSON(w, doc)
}

// traceEventDoc is one /debug/trace event. Wall-clock events carry Time;
// simulated events carry SimSeconds.
type traceEventDoc struct {
	Time       string   `json:"time,omitempty"`
	SimSeconds *float64 `json:"sim_seconds,omitempty"`
	Kind       string   `json:"kind"`
	Topology   string   `json:"topology,omitempty"`
	Where      string   `json:"where,omitempty"`
	Detail     string   `json:"detail,omitempty"`
}

// handleTrace returns the most recent ring-buffer events, oldest first.
// ?n= lowers the event count; ?format=text returns the rendered one-line
// timeline instead of JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.cfg.Trace
	if rec == nil {
		http.Error(w, "tracing not enabled", http.StatusNotFound)
		return
	}
	events := rec.Events()
	limit, ok := requestLimit(w, r, s.cfg.TraceLimit)
	if !ok {
		return
	}
	if len(events) > limit {
		events = events[len(events)-limit:]
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, ev := range events {
			fmt.Fprintln(w, ev.String())
		}
		return
	}
	docs := make([]traceEventDoc, 0, len(events))
	for _, ev := range events {
		d := traceEventDoc{
			Kind:     string(ev.Kind),
			Topology: ev.Topology,
			Where:    ev.Where,
			Detail:   ev.Detail,
		}
		if !ev.Wall.IsZero() {
			d.Time = ev.Wall.Format(time.RFC3339Nano)
		} else {
			secs := ev.At.Seconds()
			d.SimSeconds = &secs
		}
		docs = append(docs, d)
	}
	writeJSON(w, docs)
}

// badRequest answers a malformed query parameter with a 400 and a JSON
// {"error": ...} body — the uniform contract across every /debug
// endpoint, so scrapers can parse rejections the same way they parse
// successes.
func badRequest(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck // best-effort over HTTP
		"error": fmt.Sprintf(format, args...),
	})
}

// requestLimit parses the ?n= query parameter against a default cap:
// absent keeps the default, a larger value clamps to it, and anything
// non-numeric or non-positive is a 400 (ok=false, response written).
func requestLimit(w http.ResponseWriter, r *http.Request, def int) (limit int, ok bool) {
	limit = def
	q := r.URL.Query().Get("n")
	if q == "" {
		return limit, true
	}
	n, err := strconv.Atoi(q)
	if err != nil || n <= 0 {
		badRequest(w, "invalid n=%q: want a positive integer", q)
		return 0, false
	}
	if n < limit {
		limit = n
	}
	return limit, true
}

// requestWindow parses the ?window= query parameter: absent keeps def,
// and anything that is not a positive Go duration is a 400 (ok=false,
// response written).
func requestWindow(w http.ResponseWriter, r *http.Request, def time.Duration) (window time.Duration, ok bool) {
	q := r.URL.Query().Get("window")
	if q == "" {
		return def, true
	}
	d, err := time.ParseDuration(q)
	if err != nil || d <= 0 {
		badRequest(w, "invalid window=%q: want a positive Go duration like 30s", q)
		return 0, false
	}
	return d, true
}

// schedulerDoc is the /debug/scheduler response body.
type schedulerDoc struct {
	// Rounds, Moves, and Relaxations are lifetime counters (they survive
	// ring eviction).
	Rounds      int64 `json:"rounds"`
	Moves       int64 `json:"moves"`
	Relaxations int64 `json:"relaxations"`
	// PredictedVsObservedRatio reconciles the live schedule's predicted
	// inter-node traffic rate against the engine's observed counters
	// (omitted until a baseline window has elapsed).
	PredictedVsObservedRatio *float64 `json:"predicted_vs_observed_ratio,omitempty"`
	// Reports are the retained decision reports, oldest first.
	Reports []decision.Report `json:"reports"`
}

// handleScheduler returns the decision-report ring. ?n= lowers the report
// count; ?format=text renders a one-line-per-round timeline instead.
func (s *Server) handleScheduler(w http.ResponseWriter, r *http.Request) {
	h := s.cfg.History
	if h == nil {
		http.Error(w, "decision history not enabled", http.StatusNotFound)
		return
	}
	limit, ok := requestLimit(w, r, h.Capacity())
	if !ok {
		return
	}
	reports := h.Reports()
	if len(reports) > limit {
		reports = reports[len(reports)-limit:]
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, rep := range reports {
			fmt.Fprintln(w, decisionLine(rep))
		}
		return
	}
	doc := schedulerDoc{
		Rounds:      h.Rounds(),
		Moves:       h.Moves(),
		Relaxations: h.Relaxations(),
		Reports:     reports,
	}
	if ratio, ok := h.Reconcile(s.totals().InterNodeSent, time.Now()); ok {
		doc.PredictedVsObservedRatio = &ratio
	}
	writeJSON(w, doc)
}

// workersDoc is the /debug/workers response body.
type workersDoc struct {
	Alive   int            `json:"alive"`
	Workers []WorkerStatus `json:"workers"`
}

// handleWorkers returns the distributed fleet's process-liveness table
// (404 on engine-backed servers, which have no worker processes).
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Workers == nil {
		http.Error(w, "no worker fleet (in-process backend)", http.StatusNotFound)
		return
	}
	doc := workersDoc{Workers: s.cfg.Workers()}
	if doc.Workers == nil {
		doc.Workers = []WorkerStatus{}
	}
	for i := range doc.Workers {
		if doc.Workers[i].Alive {
			doc.Alive++
		}
	}
	writeJSON(w, doc)
}

// decisionLine renders one report as a timeline line.
func decisionLine(rep decision.Report) string {
	applied := "skipped"
	if rep.Applied {
		applied = "applied"
	}
	before := "n/a"
	if rep.PredictedBefore >= 0 {
		before = fmt.Sprintf("%.0f", rep.PredictedBefore)
	}
	return fmt.Sprintf("round %d %s: algo=%s execs=%d nodes=%d/%d inter-node %s -> %.0f tuples/s moved=%d relaxed=%d in %.2fms [%s]",
		rep.Round, rep.Start.Format(time.RFC3339Nano), rep.Algorithm,
		rep.Executors, rep.NodesUsed, rep.Nodes,
		before, rep.PredictedAfter, rep.Moved, rep.Relaxations,
		float64(rep.Duration)/float64(time.Millisecond), applied)
}

// trafficDoc is the /debug/traffic response body.
type trafficDoc struct {
	// Current is the load database's traffic matrix at request time
	// (omitted without a DB). Save this document and feed it to
	// `tstorm-sched explain -snapshot` to replay the decision offline.
	Current *decision.TrafficSnapshot `json:"current,omitempty"`
	// History lists the snapshots recorded at each scheduling round,
	// oldest first.
	History []decision.TrafficSnapshot `json:"history"`
}

// handleTraffic returns the current and historical traffic matrices.
// ?n= lowers the history length.
func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	h := s.cfg.History
	if h == nil && s.cfg.DB == nil {
		http.Error(w, "decision history not enabled", http.StatusNotFound)
		return
	}
	def := decision.DefaultCapacity
	if h != nil {
		def = h.Capacity()
	}
	limit, ok := requestLimit(w, r, def)
	if !ok {
		return
	}
	doc := trafficDoc{History: []decision.TrafficSnapshot{}}
	if s.cfg.DB != nil {
		cur := decision.SnapshotOf(time.Now(), s.cfg.DB.Snapshot())
		doc.Current = &cur
	}
	if h != nil {
		doc.History = h.TrafficHistory()
		if len(doc.History) > limit {
			doc.History = doc.History[len(doc.History)-limit:]
		}
	}
	writeJSON(w, doc)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort over HTTP
}
