package decision

import (
	"sort"
	"sync"
	"time"

	"tstorm/internal/loaddb"
	"tstorm/internal/metrics"
	"tstorm/internal/topology"
)

// DefaultCapacity is the report/snapshot ring size when none is given.
const DefaultCapacity = 32

// ExecLoadEntry is one executor's smoothed CPU workload in a
// TrafficSnapshot — a slice instead of loaddb's map because struct map
// keys do not survive JSON.
type ExecLoadEntry struct {
	Executor topology.ExecutorID `json:"executor"`
	MHz      float64             `json:"mhz"`
}

// FlowEntry is one smoothed traffic-matrix entry of a TrafficSnapshot.
type FlowEntry struct {
	From topology.ExecutorID `json:"from"`
	To   topology.ExecutorID `json:"to"`
	Rate float64             `json:"rate"`
}

// TrafficSnapshot is a JSON-friendly copy of one loaddb snapshot at a
// point in time — the unit of the /debug/traffic history ring and the
// input format of `tstorm-sched explain`.
type TrafficSnapshot struct {
	At       time.Time       `json:"at"`
	ExecLoad []ExecLoadEntry `json:"exec_load"`
	Flows    []FlowEntry     `json:"flows"`
}

// SnapshotOf converts a loaddb snapshot, preserving its deterministic
// flow order and sorting the executor loads by identity.
func SnapshotOf(at time.Time, s *loaddb.Snapshot) TrafficSnapshot {
	out := TrafficSnapshot{At: at}
	if s == nil {
		return out
	}
	out.ExecLoad = make([]ExecLoadEntry, 0, len(s.ExecLoad))
	for e, mhz := range s.ExecLoad {
		out.ExecLoad = append(out.ExecLoad, ExecLoadEntry{Executor: e, MHz: mhz})
	}
	sort.Slice(out.ExecLoad, func(i, j int) bool {
		return out.ExecLoad[i].Executor.Less(out.ExecLoad[j].Executor)
	})
	out.Flows = make([]FlowEntry, 0, len(s.Flows))
	for _, f := range s.Flows {
		out.Flows = append(out.Flows, FlowEntry{From: f.From, To: f.To, Rate: f.Rate})
	}
	return out
}

// LoadSnapshot converts back to the loaddb form, so a captured snapshot
// can be fed straight into a scheduling algorithm.
func (ts TrafficSnapshot) LoadSnapshot() *loaddb.Snapshot {
	s := &loaddb.Snapshot{ExecLoad: make(map[topology.ExecutorID]float64, len(ts.ExecLoad))}
	for _, le := range ts.ExecLoad {
		s.ExecLoad[le.Executor] = le.MHz
	}
	s.Flows = make([]loaddb.Flow, 0, len(ts.Flows))
	for _, f := range ts.Flows {
		s.Flows = append(s.Flows, loaddb.Flow{From: f.From, To: f.To, Rate: f.Rate})
	}
	return s
}

// History retains the most recent decision reports and traffic-matrix
// snapshots, keeps lifetime round/move counters and a decision-duration
// histogram, and reconciles the scheduler's predicted inter-node traffic
// rate against the live engine's observed counter. Safe for concurrent
// use; the generators write, the telemetry handlers read.
type History struct {
	mu       sync.Mutex
	capacity int

	reports []*Report // oldest first
	rounds  int64
	moves   int64
	relaxed int64
	// durations records each round's Schedule wall time in milliseconds:
	// 1 µs to 10 s at 20 bins per decade covers an in-process scheduler.
	durations *metrics.Histogram

	snapshots []TrafficSnapshot // oldest first

	baseValid    bool
	basePredict  float64 // predicted inter-node rate (tuples/s)
	baseObserved int64   // engine inter-node counter at baseline
	baseAt       time.Time
}

// NewHistory returns a history retaining the last n reports and traffic
// snapshots (n ≤ 0 means DefaultCapacity).
func NewHistory(n int) *History {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &History{
		capacity:  n,
		durations: metrics.NewHistogram(1e-3, 1e4, 20),
	}
}

// Capacity reports the ring size.
func (h *History) Capacity() int { return h.capacity }

// Add records a finished round: it assigns the report's sequence number,
// folds its duration into the histogram, counts applied moves, and
// evicts the oldest report past the ring capacity.
func (h *History) Add(r *Report) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rounds++
	r.Round = h.rounds
	if r.Applied && r.Moved > 0 {
		h.moves += int64(r.Moved)
	}
	h.relaxed += int64(r.Relaxations)
	h.durations.Add(float64(r.Duration) / float64(time.Millisecond))
	h.reports = append(h.reports, r)
	if len(h.reports) > h.capacity {
		h.reports = h.reports[1:]
	}
}

// Reports returns the retained reports, oldest first. The returned
// reports share their placement slices with the ring; they are not
// mutated after Add.
func (h *History) Reports() []Report {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Report, len(h.reports))
	for i, r := range h.reports {
		out[i] = *r
	}
	return out
}

// Last returns the most recent report, if any.
func (h *History) Last() (Report, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.reports) == 0 {
		return Report{}, false
	}
	return *h.reports[len(h.reports)-1], true
}

// Rounds reports the lifetime round count (not capped by the ring).
func (h *History) Rounds() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rounds
}

// Moves reports the lifetime count of executors moved by applied rounds.
func (h *History) Moves() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.moves
}

// Relaxations reports the lifetime count of relaxed placements.
func (h *History) Relaxations() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.relaxed
}

// DurationHistogram returns a copy of the decision-duration histogram
// (milliseconds per round).
func (h *History) DurationHistogram() *metrics.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.durations.Clone()
}

// RecordTraffic appends one traffic-matrix snapshot to the ring.
func (h *History) RecordTraffic(at time.Time, s *loaddb.Snapshot) {
	ts := SnapshotOf(at, s)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.snapshots = append(h.snapshots, ts)
	if len(h.snapshots) > h.capacity {
		h.snapshots = h.snapshots[1:]
	}
}

// TrafficHistory returns the retained traffic snapshots, oldest first.
func (h *History) TrafficHistory() []TrafficSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]TrafficSnapshot(nil), h.snapshots...)
}

// SetBaseline anchors the reconciliation: predicted is the inter-node
// traffic rate (tuples/s) the scheduler expects the current placement to
// produce, observed the engine's inter-node transfer counter at that
// instant.
func (h *History) SetBaseline(predicted float64, observed int64, at time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.baseValid = true
	h.basePredict = predicted
	h.baseObserved = observed
	h.baseAt = at
}

// minReconcileWindow is how much wall clock must pass after a baseline
// before the observed rate is considered meaningful.
const minReconcileWindow = 50 * time.Millisecond

// Reconcile compares the baselined prediction against reality: observed
// is the engine's current inter-node transfer counter. The ratio is
// predicted rate ÷ observed rate since the baseline — 1.0 means the
// paper's cost model matched the wire exactly. ok is false before a
// baseline exists, within the minimum window, or while no inter-node
// traffic has been observed yet (unless none was predicted either, which
// reconciles perfectly).
func (h *History) Reconcile(observed int64, now time.Time) (ratio float64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.baseValid || h.basePredict < 0 {
		return 0, false
	}
	elapsed := now.Sub(h.baseAt)
	if elapsed < minReconcileWindow {
		return 0, false
	}
	rate := float64(observed-h.baseObserved) / elapsed.Seconds()
	if rate <= 0 {
		if h.basePredict == 0 {
			return 1, true
		}
		return 0, false
	}
	return h.basePredict / rate, true
}
