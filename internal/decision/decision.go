// Package decision records why the scheduler placed every executor where
// it did. A Builder rides along one Schedule call as the optional probe in
// scheduler.Input: Algorithm 1 reports, per executor, every candidate slot
// with its co-location gain and — for infeasible slots — which of the
// paper's three constraints rejected it. The finished Report summarizes
// the round (predicted inter-node traffic before/after, executors moved,
// nodes used, duration), and a History retains the last N reports plus a
// ring of traffic-matrix snapshots and reconciles the predictions against
// the live engine's observed inter-node counters.
//
// The package is a leaf below the scheduling stack (it imports only the
// data-model packages), so both internal/core and the baseline algorithms
// in internal/scheduler can feed the same probe without an import cycle.
package decision

import (
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// Constraint names the Algorithm 1 feasibility rule that rejected a
// candidate slot (empty for feasible slots).
type Constraint string

const (
	// RejectedSlot is constraint 1: the slot is owned by another topology,
	// or this topology already uses a different slot on the node
	// (one slot per topology per node).
	RejectedSlot Constraint = "slot"
	// RejectedCapacity is constraint 2: assigning the executor would push
	// the node's workload past C_k (the Constraints.CPUFraction share of
	// physical capacity).
	RejectedCapacity Constraint = "capacity"
	// RejectedCount is constraint 3: the node already holds γ·N_e/K
	// executors (the consolidation cap).
	RejectedCount Constraint = "count"
	// RejectedMemory is the memory dimension of the multi-resource
	// schedulers (rstorm): assigning the executor would push the node's
	// committed memory past its usable MemMB.
	RejectedMemory Constraint = "memory"
	// RejectedNet is the network-bandwidth dimension: assigning the
	// executor would push the node's committed bandwidth past its usable
	// NetMBps.
	RejectedNet Constraint = "net"
)

// SlotOption is one candidate slot evaluated for one executor during the
// strict (unrelaxed) pass.
type SlotOption struct {
	Slot cluster.SlotID `json:"slot"`
	// Gain is the traffic rate (tuples/s) the executor would co-locate by
	// landing on the slot's node — what Algorithm 1 maximizes.
	Gain float64 `json:"gain"`
	// Rejected names the first constraint that made the slot infeasible;
	// empty means the slot was a feasible candidate.
	Rejected Constraint `json:"rejected,omitempty"`
	// Chosen marks the winning slot.
	Chosen bool `json:"chosen,omitempty"`
}

// Placement explains one executor's placement decision.
type Placement struct {
	Executor topology.ExecutorID `json:"executor"`
	// Rank is the executor's position in the descending total-traffic
	// order (line 2 of Algorithm 1) — placement order for algorithms that
	// do not sort by traffic.
	Rank int `json:"rank"`
	// Traffic is the executor's total (incoming + outgoing) rate, the
	// sort key.
	Traffic float64 `json:"traffic"`
	// Load is the executor's smoothed CPU workload l_i in MHz.
	Load float64 `json:"load_mhz"`
	// Slot is where the executor landed; Gain is that slot's co-located
	// traffic rate.
	Slot cluster.SlotID `json:"slot"`
	Gain float64        `json:"gain"`
	// RelaxedCount / RelaxedCapacity record which constraints had to be
	// lifted before any slot became feasible for this executor.
	RelaxedCount    bool `json:"relaxed_count,omitempty"`
	RelaxedCapacity bool `json:"relaxed_capacity,omitempty"`
	// Options lists every candidate slot from the strict pass with its
	// gain and rejection verdict. Empty for algorithms that do not
	// evaluate per-slot constraints (the baselines).
	Options []SlotOption `json:"options,omitempty"`
}

// Report summarizes one scheduling round end to end.
type Report struct {
	// Round is the 1-based sequence number assigned by History.Add (0
	// until then).
	Round int64 `json:"round"`
	// Algorithm is the scheduling algorithm's Name().
	Algorithm string `json:"algorithm"`
	// Start and Duration time the Schedule call (wall clock).
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Gamma, CapacityFraction, and CountCap are Algorithm 1's effective
	// parameters for the round (zero for algorithms without them).
	Gamma            float64 `json:"gamma,omitempty"`
	CapacityFraction float64 `json:"capacity_fraction,omitempty"`
	CountCap         float64 `json:"count_cap,omitempty"`
	// Executors and Nodes are the round's N_e and K.
	Executors int `json:"executors"`
	Nodes     int `json:"nodes"`
	// NodesUsed counts distinct nodes in the produced assignment.
	NodesUsed int `json:"nodes_used"`
	// Relaxations counts placements that needed constraint relaxation.
	Relaxations int `json:"relaxations"`
	// PredictedBefore is the incumbent assignment's inter-node traffic
	// rate under the round's load snapshot (-1 when there was none), and
	// PredictedAfter the produced assignment's — the scheduler's own
	// prediction of what it saved.
	PredictedBefore float64 `json:"predicted_before"`
	PredictedAfter  float64 `json:"predicted_after"`
	// Moved counts executors whose slot differs from the incumbent
	// assignment (-1 when unknown); Applied reports whether the round's
	// schedule was actually applied/published.
	Moved   int  `json:"moved"`
	Applied bool `json:"applied"`
	// Placements explains every executor's decision in placement order.
	Placements []Placement `json:"placements"`
}

// Builder collects one Schedule call's decisions. Attach one to
// scheduler.Input.Probe; the algorithm fills it while it runs and the
// caller (a generator, or an offline tool) finalizes the report. A
// Builder is single-use and not safe for concurrent use — each Schedule
// call owns its own, so probe work never touches the emission hot path.
type Builder struct {
	rep      Report
	start    time.Time
	finished bool
}

// NewBuilder starts timing a round.
func NewBuilder() *Builder {
	return &Builder{
		start: time.Now(),
		rep:   Report{PredictedBefore: -1, Moved: -1},
	}
}

// Begin records the round's shape: the algorithm name, N_e, and K.
func (b *Builder) Begin(algorithm string, executors, nodes int) {
	b.rep.Algorithm = algorithm
	b.rep.Executors = executors
	b.rep.Nodes = nodes
	b.rep.Start = b.start
}

// Policy records Algorithm 1's effective parameters for the round.
func (b *Builder) Policy(gamma, capacityFraction, countCap float64) {
	b.rep.Gamma = gamma
	b.rep.CapacityFraction = capacityFraction
	b.rep.CountCap = countCap
}

// Place appends one executor's decision.
func (b *Builder) Place(p Placement) {
	b.rep.Placements = append(b.rep.Placements, p)
}

// Finish closes the round: it stamps the duration, derives the relaxation
// count from the placements, and — when an assignment and load snapshot
// are given — computes the predicted inter-node traffic and node count of
// the produced schedule. It returns the report for further annotation
// (PredictedBefore, Moved, Applied) and is idempotent.
func (b *Builder) Finish(a *cluster.Assignment, load *loaddb.Snapshot) *Report {
	if b.finished {
		return &b.rep
	}
	b.finished = true
	b.rep.Duration = time.Since(b.start)
	b.rep.Relaxations = 0
	for i := range b.rep.Placements {
		if b.rep.Placements[i].RelaxedCount || b.rep.Placements[i].RelaxedCapacity {
			b.rep.Relaxations++
		}
	}
	if a != nil {
		b.rep.NodesUsed = a.NumUsedNodes()
		if load != nil {
			b.rep.PredictedAfter = InterNodeRate(a, load)
		}
	}
	return &b.rep
}

// Report returns the report, finalizing it first if the algorithm never
// called Finish.
func (b *Builder) Report() *Report {
	if !b.finished {
		return b.Finish(nil, nil)
	}
	return &b.rep
}

// InterNodeRate is the scheduling objective: the total traffic rate
// (tuples/s) crossing node boundaries under the assignment. It is the
// same computation as core.InterNodeTraffic, housed here so the probe
// layer stays below the scheduler packages.
func InterNodeRate(a *cluster.Assignment, load *loaddb.Snapshot) float64 {
	if a == nil || load == nil {
		return 0
	}
	total := 0.0
	for _, f := range load.Flows {
		sa, okA := a.Slot(f.From)
		sb, okB := a.Slot(f.To)
		if okA && okB && sa.Node != sb.Node {
			total += f.Rate
		}
	}
	return total
}

// MovedExecutors counts executors whose slot under next differs from (or
// is absent in) cur — the migration count a round would cause.
func MovedExecutors(next, cur *cluster.Assignment) int {
	moved := 0
	for e, s := range next.Executors {
		if prev, ok := cur.Slot(e); !ok || prev != s {
			moved++
		}
	}
	return moved
}
