package decision

import (
	"encoding/json"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

func exec(comp string, i int) topology.ExecutorID {
	return topology.ExecutorID{Topology: "t", Component: comp, Index: i}
}

func slot(node string, port int) cluster.SlotID {
	return cluster.SlotID{Node: cluster.NodeID(node), Port: port}
}

func TestBuilderReportLifecycle(t *testing.T) {
	b := NewBuilder()
	b.Begin("tstorm", 2, 2)
	b.Policy(1.5, 0.9, 3)
	a := cluster.NewAssignment(0)
	a.Assign(exec("s", 0), slot("n1", 6700))
	a.Assign(exec("b", 0), slot("n2", 6700))
	b.Place(Placement{Executor: exec("s", 0), Rank: 0, Slot: slot("n1", 6700)})
	b.Place(Placement{Executor: exec("b", 0), Rank: 1, Slot: slot("n2", 6700), RelaxedCount: true})
	load := &loaddb.Snapshot{Flows: []loaddb.Flow{{From: exec("s", 0), To: exec("b", 0), Rate: 40}}}

	rep := b.Finish(a, load)
	if rep.Algorithm != "tstorm" || rep.Executors != 2 || rep.Nodes != 2 {
		t.Fatalf("header = %+v", rep)
	}
	if rep.Gamma != 1.5 || rep.CapacityFraction != 0.9 || rep.CountCap != 3 {
		t.Fatalf("policy = %+v", rep)
	}
	if rep.NodesUsed != 2 || rep.PredictedAfter != 40 || rep.Relaxations != 1 {
		t.Fatalf("derived fields = %+v", rep)
	}
	if rep.Duration <= 0 {
		t.Fatalf("Duration = %v, want > 0", rep.Duration)
	}
	// Finish is idempotent and Report returns the same finished report.
	if again := b.Finish(a, load); again != rep {
		t.Fatal("second Finish returned a different report")
	}
	if b.Report() != rep {
		t.Fatal("Report() differs from Finish result")
	}
}

func TestInterNodeRateAndMovedExecutors(t *testing.T) {
	a := cluster.NewAssignment(0)
	a.Assign(exec("s", 0), slot("n1", 6700))
	a.Assign(exec("b", 0), slot("n1", 6700))
	a.Assign(exec("b", 1), slot("n2", 6700))
	load := &loaddb.Snapshot{Flows: []loaddb.Flow{
		{From: exec("s", 0), To: exec("b", 0), Rate: 10}, // intra-node
		{From: exec("s", 0), To: exec("b", 1), Rate: 25}, // crosses
		{From: exec("b", 1), To: exec("x", 0), Rate: 99}, // unplaced endpoint
	}}
	if got := InterNodeRate(a, load); got != 25 {
		t.Fatalf("InterNodeRate = %v, want 25", got)
	}
	if got := InterNodeRate(a, nil); got != 0 {
		t.Fatalf("InterNodeRate(nil load) = %v, want 0", got)
	}

	next := a.Clone()
	next.Assign(exec("b", 1), slot("n1", 6700))   // moved
	next.Assign(exec("new", 0), slot("n3", 6700)) // absent from cur
	if got := MovedExecutors(next, a); got != 2 {
		t.Fatalf("MovedExecutors = %v, want 2", got)
	}
	if got := MovedExecutors(a, a); got != 0 {
		t.Fatalf("MovedExecutors(same) = %v, want 0", got)
	}
}

func TestHistoryRingAndCounters(t *testing.T) {
	h := NewHistory(2)
	if h.Capacity() != 2 {
		t.Fatalf("Capacity = %d", h.Capacity())
	}
	if _, ok := h.Last(); ok {
		t.Fatal("empty history has a last report")
	}
	for i := 0; i < 3; i++ {
		r := &Report{Moved: 2, Applied: i%2 == 0, Relaxations: 1, Duration: time.Millisecond}
		h.Add(r)
	}
	reps := h.Reports()
	if len(reps) != 2 {
		t.Fatalf("ring holds %d, want 2", len(reps))
	}
	// Lifetime counters are not capped by the ring.
	if h.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", h.Rounds())
	}
	// Rounds 1 and 3 applied (2 moves each); round 2 skipped.
	if h.Moves() != 4 {
		t.Fatalf("Moves = %d, want 4", h.Moves())
	}
	if h.Relaxations() != 3 {
		t.Fatalf("Relaxations = %d, want 3", h.Relaxations())
	}
	// Sequence numbers survive eviction: oldest retained is round 2.
	if reps[0].Round != 2 || reps[1].Round != 3 {
		t.Fatalf("retained rounds %d,%d, want 2,3", reps[0].Round, reps[1].Round)
	}
	if last, ok := h.Last(); !ok || last.Round != 3 {
		t.Fatalf("Last = %+v ok=%v", last, ok)
	}
	if h.DurationHistogram().Count() != 3 {
		t.Fatalf("duration histogram count = %d, want 3", h.DurationHistogram().Count())
	}
}

func TestHistoryTrafficRing(t *testing.T) {
	h := NewHistory(2)
	at := time.Unix(100, 0)
	for i := 0; i < 3; i++ {
		s := &loaddb.Snapshot{ExecLoad: map[topology.ExecutorID]float64{exec("s", i): float64(i)}}
		h.RecordTraffic(at.Add(time.Duration(i)*time.Second), s)
	}
	hist := h.TrafficHistory()
	if len(hist) != 2 {
		t.Fatalf("traffic ring holds %d, want 2", len(hist))
	}
	if hist[0].ExecLoad[0].Executor != exec("s", 1) || hist[1].ExecLoad[0].Executor != exec("s", 2) {
		t.Fatalf("wrong snapshots retained: %+v", hist)
	}
}

func TestReconcile(t *testing.T) {
	h := NewHistory(4)
	now := time.Unix(1000, 0)
	if _, ok := h.Reconcile(0, now); ok {
		t.Fatal("reconciled without a baseline")
	}
	h.SetBaseline(100, 5000, now)
	if _, ok := h.Reconcile(5100, now.Add(10*time.Millisecond)); ok {
		t.Fatal("reconciled inside the minimum window")
	}
	// 2000 tuples over 10 s = 200/s observed vs 100/s predicted → 0.5.
	if ratio, ok := h.Reconcile(7000, now.Add(10*time.Second)); !ok || ratio != 0.5 {
		t.Fatalf("ratio = %v ok=%v, want 0.5 true", ratio, ok)
	}
	// No observed traffic against a positive prediction: not meaningful.
	if _, ok := h.Reconcile(5000, now.Add(10*time.Second)); ok {
		t.Fatal("reconciled a zero observed rate against a positive prediction")
	}
	// Zero predicted and zero observed reconcile perfectly.
	h.SetBaseline(0, 5000, now)
	if ratio, ok := h.Reconcile(5000, now.Add(time.Second)); !ok || ratio != 1 {
		t.Fatalf("zero/zero ratio = %v ok=%v, want 1 true", ratio, ok)
	}
}

func TestTrafficSnapshotRoundTrip(t *testing.T) {
	snap := &loaddb.Snapshot{
		ExecLoad: map[topology.ExecutorID]float64{
			exec("b", 1): 20,
			exec("b", 0): 10,
		},
		Flows: []loaddb.Flow{{From: exec("s", 0), To: exec("b", 0), Rate: 7}},
	}
	ts := SnapshotOf(time.Unix(42, 0), snap)
	// Loads are sorted by executor identity for stable JSON.
	if ts.ExecLoad[0].Executor != exec("b", 0) || ts.ExecLoad[1].Executor != exec("b", 1) {
		t.Fatalf("exec loads unsorted: %+v", ts.ExecLoad)
	}
	data, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	var back TrafficSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got := back.LoadSnapshot()
	if got.ExecLoad[exec("b", 0)] != 10 || got.ExecLoad[exec("b", 1)] != 20 {
		t.Fatalf("round-tripped loads = %+v", got.ExecLoad)
	}
	if len(got.Flows) != 1 || got.Flows[0].Rate != 7 {
		t.Fatalf("round-tripped flows = %+v", got.Flows)
	}
	if empty := SnapshotOf(time.Unix(1, 0), nil); len(empty.ExecLoad) != 0 || len(empty.Flows) != 0 {
		t.Fatalf("nil snapshot conversion = %+v", empty)
	}
}
