package engine

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"tstorm/internal/acker"
	"tstorm/internal/cluster"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/tuple"
)

type workerState int

const (
	workerStarting workerState = iota + 1
	workerRunning
	workerStopping // T-Storm drain: processes but emits no new roots
	workerDead
)

// worker is one worker process (JVM analog) on a slot, hosting executors
// of exactly one topology for one assignment generation.
type worker struct {
	rt   *Runtime
	topo string
	slot cluster.SlotID
	// gen is the assignment generation the worker was created for;
	// currentGen is the newest generation it serves (bumped in place when
	// its slot's executor set is unchanged across a re-assignment).
	gen        int64
	currentGen int64
	// lastApplied is the newest assignment ID the supervisor reconciled
	// on this worker, for idempotency across sync passes.
	lastApplied int64

	state          workerState
	spoutHaltUntil sim.Time

	execs    map[topology.ExecutorID]*executor
	execList []*executor // sorted by executor ID
	// inbound buffers messages that arrive while the worker is still
	// starting — the transport layer keeps retrying connections until the
	// peer is up rather than dropping, as Storm's ZeroMQ/Netty client does.
	inbound []message
}

// accepting reports whether inbound messages may be enqueued or buffered.
func (w *worker) accepting() bool {
	return w.state == workerStarting || w.state == workerRunning || w.state == workerStopping
}

// processing reports whether executors may service their queues.
func (w *worker) processing() bool {
	return w.state == workerRunning || w.state == workerStopping
}

// newWorker launches a worker process on a slot for the given executors.
// It is immediately visible as a process (consuming a context-switch
// share); its executors come alive after WorkerStartup.
func (r *Runtime) newWorker(ss *slotState, topo string, gen int64, execIDs []topology.ExecutorID) *worker {
	app := r.apps[topo]
	w := &worker{
		rt: r, topo: topo, slot: ss.id,
		gen: gen, currentGen: gen, lastApplied: gen,
		state: workerStarting,
		execs: make(map[topology.ExecutorID]*executor, len(execIDs)),
	}
	ns := r.nodes[ss.id.Node]
	ns.activeWorkers++
	ns.residentExecs += len(execIDs)
	sorted := append([]topology.ExecutorID(nil), execIDs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	for _, eid := range sorted {
		comp, _ := app.Topology.Component(eid.Component)
		ex := &executor{
			w: w, id: eid, dense: r.dense[eid], comp: comp,
			cost:       app.costFor(eid.Component),
			pending:    make(map[tuple.ID]*pendingRoot),
			shuffleCtr: make(map[string]int),
		}
		switch {
		case eid.Component == topology.AckerComponent:
			ex.kind = ackerExec
			ex.tracker = acker.NewTracker()
		case comp.Kind == topology.SpoutKind:
			ex.kind = spoutExec
			ex.spout = app.Spouts[eid.Component]()
			ex.interval = app.spoutIntervalFor(eid.Component)
			ex.maxPending = app.MaxPending[eid.Component]
		default:
			ex.kind = boltExec
			ex.bolt = app.Bolts[eid.Component]()
		}
		w.execs[eid] = ex
		w.execList = append(w.execList, ex)
	}
	r.sim.After(r.cfg.WorkerStartup, w.start)
	return w
}

// start transitions a worker from starting to running: component instances
// are opened/prepared and spout emit loops begin (after any halt delay).
func (w *worker) start() {
	if w.state != workerStarting {
		return
	}
	w.state = workerRunning
	r := w.rt
	r.emit(trace.WorkerStarted, w.topo, w.slot.String(),
		fmt.Sprintf("gen=%d execs=%d", w.gen, len(w.execList)))
	// Connection-pending messages: the slot's pre-worker buffer first,
	// then what arrived while this worker was starting.
	ss := r.nodes[w.slot.Node].slots[w.slot.Port]
	buffered := append(ss.pending, w.inbound...)
	ss.pending = nil
	w.inbound = nil
	for _, ex := range w.execList {
		ctx := &Context{
			Topology:    ex.id.Topology,
			Component:   ex.id.Component,
			Index:       ex.id.Index,
			Parallelism: ex.comp.Parallelism,
			Rand:        rand.New(rand.NewPCG(r.cfg.Seed^uint64(ex.dense), uint64(ex.dense)*0x9e3779b9)),
		}
		switch ex.kind {
		case spoutExec:
			ex.spout.Open(ctx)
			ex.enqueue(job{kind: jobEmit})
			startSweep(ex)
		case boltExec:
			ex.bolt.Prepare(ctx)
			ex.maybeStart() // messages may have queued while stopping→running races
		case ackerExec:
			startSweep(ex)
		}
	}
	// Deliver everything that arrived while the connection was pending.
	for _, m := range buffered {
		if ex := w.execs[m.target]; ex != nil {
			ex.enqueue(jobFromMessage(m))
		} else {
			r.drop(m)
		}
	}
}

func startSweep(ex *executor) {
	var tick func()
	tick = func() {
		if ex.dead {
			return
		}
		ex.sweepZombies()
		ex.rt().sim.After(time.Minute, tick)
	}
	ex.rt().sim.After(time.Minute, tick)
}

// stop puts the worker into the draining state (T-Storm): no new roots
// are emitted but queued work completes and inbound messages are accepted.
func (w *worker) stop() {
	if w.state == workerStarting || w.state == workerRunning {
		w.state = workerStopping
		w.rt.emit(trace.WorkerStopping, w.topo, w.slot.String(), "draining")
	}
}

// kill terminates the worker process: queued jobs are dropped, executors
// die, and the process stops counting against the node.
func (w *worker) kill() {
	if w.state == workerDead {
		return
	}
	w.state = workerDead
	w.rt.emit(trace.WorkerKilled, w.topo, w.slot.String(), "")
	ns := w.rt.nodes[w.slot.Node]
	ns.activeWorkers--
	ns.residentExecs -= len(w.execList)
	for _, ex := range w.execList {
		ex.dead = true
		ex.queue = nil
		ex.head = 0
	}
}

// reconcileNode applies one topology's assignment to one node's slots —
// the supervisor logic. In Storm mode changed slots are restarted
// abruptly; in T-Storm mode old workers drain for ShutdownDelay, new
// workers register with the slot dispatcher, and spouts halt until bolts
// are ready (§IV-D).
func (r *Runtime) reconcileNode(ns *nodeState, topo string, a *cluster.Assignment) {
	desired := make(map[int][]topology.ExecutorID)
	for _, eid := range r.apps[topo].Topology.Executors() {
		s, ok := a.Slot(eid)
		if !ok || s.Node != ns.node.ID {
			continue
		}
		desired[s.Port] = append(desired[s.Port], eid)
	}
	now := r.sim.Now()
	haltUntil := now.Add(r.cfg.WorkerStartup + r.cfg.SpoutHaltDelay)
	for _, port := range ns.ports {
		ss := ns.slots[port]
		newSet := desired[port]
		sort.Slice(newSet, func(i, j int) bool { return newSet[i].Less(newSet[j]) })
		cur := ss.current
		if cur != nil && cur.state == workerDead {
			cur = nil
			ss.current = nil
		}
		if cur != nil && cur.topo != topo {
			// Slot owned by another topology; assignments were validated
			// not to overlap, so nothing to do here.
			continue
		}
		if cur == nil && len(newSet) == 0 {
			// Nothing runs here and nothing will: connect retries give up.
			for _, m := range ss.pending {
				r.drop(m)
			}
			ss.pending = nil
			continue
		}
		if cur != nil && cur.lastApplied >= a.ID {
			continue
		}
		if cur != nil && executorSetsEqual(cur.execList, newSet) {
			// Unchanged slot: the worker survives and serves the new
			// generation too.
			cur.lastApplied = a.ID
			cur.currentGen = a.ID
			if r.cfg.SmoothReassign {
				ss.dispatcher.Register(a.ID, cur)
				cur.spoutHaltUntil = haltUntil
			}
			continue
		}
		// Changed slot.
		if r.cfg.SmoothReassign {
			if cur != nil {
				old := cur
				old.stop()
				r.sim.After(r.cfg.ShutdownDelay, func() {
					old.kill()
					// Unregister every generation still routing to it.
					for _, g := range []int64{old.gen, old.currentGen} {
						if got, ok := ss.dispatcher.Route(g); ok && got == any(old) {
							ss.dispatcher.Unregister(g)
						}
					}
				})
			}
			ss.current = nil
			if len(newSet) > 0 {
				w := r.newWorker(ss, topo, a.ID, newSet)
				w.spoutHaltUntil = haltUntil
				ss.current = w
				ss.dispatcher.Register(a.ID, w)
			}
		} else {
			if cur != nil {
				cur.kill()
			}
			ss.current = nil
			if len(newSet) > 0 {
				ss.current = r.newWorker(ss, topo, a.ID, newSet)
			}
		}
	}
}

func executorSetsEqual(have []*executor, want []topology.ExecutorID) bool {
	if len(have) != len(want) {
		return false
	}
	for i := range have {
		if have[i].id != want[i] {
			return false
		}
	}
	return true
}
