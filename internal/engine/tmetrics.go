package engine

import (
	"time"

	"tstorm/internal/metrics"
	"tstorm/internal/sim"
)

// ComponentStats aggregates one component's execution counters — the
// per-bolt/per-spout numbers Storm's UI shows.
type ComponentStats struct {
	// Executed counts tuples processed (bolts) or emit cycles that
	// produced output (spouts).
	Executed int64
	// Emitted counts tuples sent downstream.
	Emitted int64
	// CPUCycles is the total useful work charged.
	CPUCycles float64
}

// ReassignEvent records one published assignment.
type ReassignEvent struct {
	At        sim.Time
	AssignID  int64
	UsedNodes int
	UsedSlots int
}

// TopologyMetrics collects a topology's runtime measurements. The paper's
// primary metric — average tuple processing time, reported as 1-minute
// averages — is the Latency series (samples in milliseconds, recorded at
// the spout when the acker confirms full processing).
type TopologyMetrics struct {
	// Latency holds per-completion processing times in milliseconds.
	Latency *metrics.Series
	// LatencyHist is the same signal as a log-bucketed histogram, for
	// percentile reporting (p50/p99).
	LatencyHist *metrics.Histogram
	// Failures holds timeout events (value 1 per failed root).
	Failures *metrics.Series
	// NodesInUse steps with each published assignment.
	NodesInUse metrics.StepSeries
	// Reassignments lists every published assignment.
	Reassignments []ReassignEvent

	// RootsEmitted counts anchored spout emissions.
	RootsEmitted int64
	// Completions counts fully processed roots (including late ones).
	Completions int64
	// LateCompletions counts roots completed after their timeout fired.
	LateCompletions int64
	// Failed counts roots that hit the ack timeout.
	Failed int64
	// Dropped counts messages discarded because no live worker could
	// accept them (worker restarts, stale routes).
	Dropped int64
	// WorkerCrashes counts worker processes killed by fault injection.
	WorkerCrashes int64
	// RescueReassignments counts assignments published by Nimbus's
	// failure detector after a node death.
	RescueReassignments int64
	// Components aggregates per-component execution counters.
	Components map[string]*ComponentStats
}

// Component returns (allocating if needed) the named component's stats.
func (tm *TopologyMetrics) Component(name string) *ComponentStats {
	cs := tm.Components[name]
	if cs == nil {
		cs = &ComponentStats{}
		tm.Components[name] = cs
	}
	return cs
}

func newTopologyMetrics(bucket time.Duration) *TopologyMetrics {
	return &TopologyMetrics{
		Latency:     metrics.NewSeries(bucket),
		LatencyHist: metrics.NewLatencyHistogram(),
		Failures:    metrics.NewSeries(bucket),
		Components:  make(map[string]*ComponentStats),
	}
}

// MeanLatencyAfter is the average processing time (ms) counting samples at
// or after t — the paper's "counting averages after stabilization".
func (tm *TopologyMetrics) MeanLatencyAfter(t sim.Time) float64 {
	return tm.Latency.MeanAfter(t)
}
