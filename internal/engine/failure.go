package engine

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
)

// This file implements Storm's fault-tolerance behaviour (§II of the
// paper): supervisors restart crashed workers on the same node, and when
// a worker node stops heartbeating, Nimbus re-assigns its executors to
// live nodes.

// HeartbeatPath is the coordination-store znode a node's supervisor
// refreshes every sync period.
func HeartbeatPath(node cluster.NodeID) string {
	return "/supervisors/" + string(node)
}

// heartbeatTimeout is the supervisor's coordination-session timeout:
// when a node stops refreshing its session, its ephemeral heartbeat znode
// vanishes and Nimbus declares it dead (Storm's nimbus.supervisor.timeout).
const heartbeatTimeout = 30 * time.Second

// CrashWorker kills the worker process on the given slot (simulating a
// JVM crash). Its supervisor notices at the next sync and restarts it on
// the same slot — Storm's first level of fault tolerance. It reports
// whether a live worker was found.
func (r *Runtime) CrashWorker(slot cluster.SlotID) bool {
	ns := r.nodes[slot.Node]
	if ns == nil {
		return false
	}
	ss := ns.slots[slot.Port]
	if ss == nil || ss.current == nil || ss.current.state == workerDead {
		return false
	}
	w := ss.current
	w.kill()
	ss.current = nil
	if tm := r.tmetrics[w.topo]; tm != nil {
		tm.WorkerCrashes++
	}
	return true
}

// FailNode takes a worker node down: every worker on it dies, inbound
// messages are dropped, and its supervisor stops heartbeating. Nimbus
// declares it dead after heartbeatTimeout and re-assigns its executors.
func (r *Runtime) FailNode(id cluster.NodeID) bool {
	ns := r.nodes[id]
	if ns == nil || ns.down {
		return false
	}
	ns.down = true
	r.emit(trace.NodeFailed, "", string(id), "")
	for _, port := range ns.ports {
		ss := ns.slots[port]
		if ss.current != nil {
			if tm := r.tmetrics[ss.current.topo]; tm != nil {
				tm.WorkerCrashes++
			}
			ss.current.kill()
			ss.current = nil
		}
	}
	return true
}

// RecoverNode brings a failed node back. Its supervisor resumes
// heartbeating and the node becomes available to future schedules; the
// scheduler decides when (and whether) to move work back.
func (r *Runtime) RecoverNode(id cluster.NodeID) bool {
	ns := r.nodes[id]
	if ns == nil || !ns.down {
		return false
	}
	ns.down = false
	r.emit(trace.NodeRecovered, "", string(id), "")
	return true
}

// NodeDown reports whether a node is currently failed.
func (r *Runtime) NodeDown(id cluster.NodeID) bool {
	ns := r.nodes[id]
	return ns != nil && ns.down
}

// DownNodes lists currently failed nodes, sorted.
func (r *Runtime) DownNodes() []cluster.NodeID {
	var out []cluster.NodeID
	for _, id := range r.nodeOrder {
		if r.nodes[id].down {
			out = append(out, id)
		}
	}
	return out
}

// heartbeat refreshes the supervisor's coordination session and its
// ephemeral liveness znode. A recovered node opens a fresh session.
func (r *Runtime) heartbeat(ns *nodeState) {
	if ns.session == nil || !ns.session.Alive() {
		sess, err := r.coord.NewSession(heartbeatTimeout)
		if err != nil {
			return
		}
		ns.session = sess
	}
	stamp := strconv.FormatInt(int64(r.sim.Now()), 10)
	_ = ns.session.SetEphemeral(HeartbeatPath(ns.node.ID), []byte(stamp))
	ns.session.Refresh()
	ns.everHeartbeat = true
}

// nimbusCheckFailures is Nimbus's failure detector: a node whose
// ephemeral heartbeat znode has vanished (its session expired) is dead,
// and every topology with executors there gets a rescue re-assignment
// onto live nodes. It runs on the supervisor sync cadence.
func (r *Runtime) nimbusCheckFailures() {
	dead := make(map[cluster.NodeID]bool)
	for _, id := range r.nodeOrder {
		ns := r.nodes[id]
		if !ns.everHeartbeat {
			continue // never joined yet: give it time
		}
		if !r.coord.Exists(HeartbeatPath(id)) {
			dead[id] = true
		}
	}
	if len(dead) == 0 {
		return
	}
	for _, topo := range r.appOrder {
		cur := r.current[topo]
		if cur == nil {
			continue
		}
		orphaned := false
		for _, s := range cur.Executors {
			if dead[s.Node] {
				orphaned = true
				break
			}
		}
		if !orphaned {
			continue
		}
		if next, err := r.rescueAssignment(topo, cur, dead); err == nil {
			_ = r.PublishAssignment(topo, next)
			r.emit(trace.RescuePublished, topo, "", fmt.Sprintf("dead nodes: %d", len(dead)))
			if tm := r.tmetrics[topo]; tm != nil {
				tm.RescueReassignments++
			}
		}
	}
}

// rescueAssignment moves every executor placed on a dead node to a live
// slot: preferably a slot its topology already uses (least-loaded first),
// otherwise a free slot on a live node.
func (r *Runtime) rescueAssignment(topo string, cur *cluster.Assignment, dead map[cluster.NodeID]bool) (*cluster.Assignment, error) {
	next := cur.Clone()
	next.ID = 0

	// Executor counts of this topology's live slots.
	counts := make(map[cluster.SlotID]int)
	for _, s := range next.Executors {
		if !dead[s.Node] {
			counts[s]++
		}
	}
	// Slots occupied by other topologies anywhere.
	occupied := make(map[cluster.SlotID]bool)
	for other, a := range r.current {
		if other == topo {
			continue
		}
		for _, s := range a.Executors {
			occupied[s] = true
		}
	}
	// Candidate pool: the topology's live slots, plus — preserving the
	// one-worker-per-node invariant — at most one free slot on each live
	// node that hosts none of this topology yet.
	var pool []cluster.SlotID
	nodeHasTopo := make(map[cluster.NodeID]bool)
	for s := range counts {
		pool = append(pool, s)
		nodeHasTopo[s.Node] = true
	}
	for _, id := range r.nodeOrder {
		if dead[id] || r.nodes[id].down || nodeHasTopo[id] {
			continue
		}
		for _, port := range r.nodes[id].ports {
			s := cluster.SlotID{Node: id, Port: port}
			if !occupied[s] {
				pool = append(pool, s)
				break
			}
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("engine: no live slots to rescue topology %q onto", topo)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].Less(pool[j]) })

	// Orphaned executors, in deterministic order.
	var orphans []topology.ExecutorID
	for e, s := range next.Executors {
		if dead[s.Node] {
			orphans = append(orphans, e)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].Less(orphans[j]) })
	for _, e := range orphans {
		best := pool[0]
		for _, s := range pool[1:] {
			if counts[s] < counts[best] {
				best = s
			}
		}
		next.Assign(e, best)
		counts[best]++
	}
	return next, nil
}
