package engine

import (
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
)

func localShuffleApp(t *testing.T, rec *recorder, limit int) *App {
	t.Helper()
	b := topology.NewBuilder("ls", 2)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 4).LocalOrShuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	spout := &testSpout{limit: limit}
	return &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return &recordBolt{rec: rec} }},
	}
}

func TestLocalOrShufflePrefersSameWorker(t *testing.T) {
	cl := testCluster(t, 2)
	rt := mustRuntime(t, DefaultConfig(), cl)
	rec := newRecorder()
	app := localShuffleApp(t, rec, 40)
	// Spout + sink[0] + sink[1] + acker on worker A; sink[2] + sink[3] on
	// worker B (other node).
	a := cluster.NewAssignment(0)
	slotA := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	slotB := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	for _, e := range app.Topology.Executors() {
		switch {
		case e.Component == "sink" && e.Index >= 2:
			a.Assign(e, slotB)
		default:
			a.Assign(e, slotA)
		}
	}
	if err := rt.Submit(app, a); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rec.total() != 40 {
		t.Fatalf("processed %d, want 40", rec.total())
	}
	// Everything stays on the spout's worker, split between its two local
	// tasks.
	if got := len(rec.byTask[2]) + len(rec.byTask[3]); got != 0 {
		t.Fatalf("remote tasks received %d tuples, want 0", got)
	}
	if len(rec.byTask[0]) != 20 || len(rec.byTask[1]) != 20 {
		t.Fatalf("local distribution uneven: %d/%d", len(rec.byTask[0]), len(rec.byTask[1]))
	}
}

func TestLocalOrShuffleFallsBackToShuffle(t *testing.T) {
	cl := testCluster(t, 2)
	rt := mustRuntime(t, DefaultConfig(), cl)
	rec := newRecorder()
	app := localShuffleApp(t, rec, 40)
	// Spout alone (with the acker) on worker A; all sinks on worker B.
	a := cluster.NewAssignment(0)
	slotA := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	slotB := cluster.SlotID{Node: "node02", Port: cluster.BasePort}
	for _, e := range app.Topology.Executors() {
		if e.Component == "sink" {
			a.Assign(e, slotB)
		} else {
			a.Assign(e, slotA)
		}
	}
	if err := rt.Submit(app, a); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rec.total() != 40 {
		t.Fatalf("processed %d, want 40", rec.total())
	}
	// Shuffle fallback spreads across all four tasks evenly.
	for task := 0; task < 4; task++ {
		if len(rec.byTask[task]) != 10 {
			t.Fatalf("task %d got %d, want 10 (even shuffle)", task, len(rec.byTask[task]))
		}
	}
}
