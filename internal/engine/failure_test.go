package engine

import (
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/sim"
)

func TestCrashedWorkerIsRestartedBySupervisor(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)
	slot := cl.Slots()[0]
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("test")
	before := tm.Completions
	if before == 0 {
		t.Fatal("no progress before crash")
	}
	if !rt.CrashWorker(slot) {
		t.Fatal("CrashWorker found no worker")
	}
	if rt.CrashWorker(slot) {
		t.Fatal("second crash found a worker before restart")
	}
	if tm.WorkerCrashes != 1 {
		t.Fatalf("WorkerCrashes = %d, want 1", tm.WorkerCrashes)
	}
	// Supervisor restarts it within a sync period + startup; processing
	// resumes.
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tm.Completions <= before {
		t.Fatal("processing did not resume after worker restart")
	}
}

func TestCrashWorkerBadTargets(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	if rt.CrashWorker(cluster.SlotID{Node: "ghost", Port: 1}) {
		t.Fatal("crashed a worker on a ghost node")
	}
	if rt.CrashWorker(cluster.SlotID{Node: "node01", Port: 9999}) {
		t.Fatal("crashed a worker on a missing slot")
	}
	if rt.CrashWorker(cl.Slots()[0]) {
		t.Fatal("crashed a worker on an empty slot")
	}
}

func TestNodeFailureTriggersRescueReassignment(t *testing.T) {
	cl := testCluster(t, 3)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 2, 2)
	var slots []cluster.SlotID
	for _, n := range cl.Nodes() {
		slots = append(slots, cluster.SlotID{Node: n.ID, Port: cluster.BasePort})
	}
	if err := rt.Submit(app, spreadRR(app.Topology, slots)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !rt.FailNode("node02") {
		t.Fatal("FailNode failed")
	}
	if rt.FailNode("node02") {
		t.Fatal("double FailNode reported success")
	}
	if !rt.NodeDown("node02") || len(rt.DownNodes()) != 1 {
		t.Fatal("down-node accounting wrong")
	}
	// Heartbeat timeout (30s) + sync: rescue within ~60s.
	if err := rt.RunFor(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("test")
	if tm.RescueReassignments == 0 {
		t.Fatal("no rescue re-assignment published")
	}
	cur, _ := rt.CurrentAssignment("test")
	for e, s := range cur.Executors {
		if s.Node == "node02" {
			t.Fatalf("executor %v still assigned to the dead node", e)
		}
	}
	// Processing resumes on the remaining nodes.
	before := tm.Completions
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tm.Completions <= before {
		t.Fatal("no progress after rescue")
	}
	// Rescue happens exactly once for one failure.
	if tm.RescueReassignments != 1 {
		t.Fatalf("RescueReassignments = %d, want 1", tm.RescueReassignments)
	}
}

func TestNodeRecoveryMakesNodeSchedulableAgain(t *testing.T) {
	cl := testCluster(t, 2)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	rt.FailNode("node02") // idle node, no rescue needed
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rt.Metrics("test").RescueReassignments != 0 {
		t.Fatal("rescue fired for a node hosting nothing")
	}
	if !rt.RecoverNode("node02") {
		t.Fatal("RecoverNode failed")
	}
	if rt.RecoverNode("node02") {
		t.Fatal("double recovery reported success")
	}
	if len(rt.DownNodes()) != 0 {
		t.Fatal("DownNodes not empty after recovery")
	}
	// A new assignment can use the recovered node again.
	moved := packAll(app.Topology, cl)
	for e := range moved.Executors {
		moved.Assign(e, cluster.SlotID{Node: "node02", Port: cluster.BasePort})
	}
	if err := rt.PublishAssignment("test", moved); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("test")
	if tm.Latency.MeanAfter(sim.Time(150*time.Second)) <= 0 {
		t.Fatal("no samples after moving onto the recovered node")
	}
}

func TestFailNodeDuringSmoothModeKeepsClusterConsistent(t *testing.T) {
	cl := testCluster(t, 3)
	rt := mustRuntime(t, TStormConfig(), cl)
	spout := &testSpout{}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 2, 2)
	var slots []cluster.SlotID
	for _, n := range cl.Nodes() {
		slots = append(slots, cluster.SlotID{Node: n.ID, Port: cluster.BasePort})
	}
	if err := rt.Submit(app, spreadRR(app.Topology, slots)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	rt.FailNode("node03")
	if err := rt.RunFor(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("test")
	if tm.RescueReassignments == 0 {
		t.Fatal("smooth mode: no rescue")
	}
	before := tm.Completions
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tm.Completions <= before {
		t.Fatal("smooth mode: no progress after rescue")
	}
	// node03 hosts no live workers.
	if rt.nodes["node03"].activeWorkers != 0 {
		t.Fatalf("dead node has %d workers", rt.nodes["node03"].activeWorkers)
	}
}
