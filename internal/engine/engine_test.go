package engine

import (
	"fmt"
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// ---- test fixtures ----

// testSpout emits sequential integers, up to limit (0 = unlimited), one
// per NextTuple call, and replays failed message IDs.
type testSpout struct {
	limit   int
	seq     int
	replays []any
	acked   []any
	failed  []any
}

func (s *testSpout) Open(*Context) {}

func (s *testSpout) NextTuple(em SpoutEmitter) {
	if len(s.replays) > 0 {
		id := s.replays[0]
		s.replays = s.replays[1:]
		em.EmitWithID("", tuple.Values{id.(int)}, id)
		return
	}
	if s.limit > 0 && s.seq >= s.limit {
		return
	}
	id := s.seq
	s.seq++
	em.EmitWithID("", tuple.Values{id}, id)
}

func (s *testSpout) Ack(msgID any) { s.acked = append(s.acked, msgID) }
func (s *testSpout) Fail(msgID any) {
	s.failed = append(s.failed, msgID)
	s.replays = append(s.replays, msgID)
}

// recorder collects which task processed which values.
type recorder struct {
	byTask map[int][]int
}

func newRecorder() *recorder { return &recorder{byTask: make(map[int][]int)} }

func (r *recorder) total() int {
	n := 0
	for _, v := range r.byTask {
		n += len(v)
	}
	return n
}

// recordBolt forwards its input and records it.
type recordBolt struct {
	rec     *recorder
	idx     int
	forward bool
}

func (b *recordBolt) Prepare(ctx *Context) { b.idx = ctx.Index }

func (b *recordBolt) Execute(in tuple.Tuple, em Emitter) {
	if v, ok := in.Values[0].(int); ok {
		b.rec.byTask[b.idx] = append(b.rec.byTask[b.idx], v)
	}
	if b.forward {
		em.Emit("", in.Values)
	}
}

func testCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.Uniform(nodes, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// chainApp builds spout → mid → sink with acking.
func chainApp(t *testing.T, spout *testSpout, midRec, sinkRec *recorder, midPar, sinkPar int) *App {
	t.Helper()
	b := topology.NewBuilder("test", 4)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("mid", midPar).Shuffle("spout").Output("default", "v")
	b.Bolt("sink", sinkPar).Shuffle("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
		Bolts: map[string]func() Bolt{
			"mid":  func() Bolt { return &recordBolt{rec: midRec, forward: true} },
			"sink": func() Bolt { return &recordBolt{rec: sinkRec} },
		},
		SpoutInterval: map[string]time.Duration{"spout": 5 * time.Millisecond},
	}
}

// packAll places every executor of the topology on the first slot of the
// first node.
func packAll(top *topology.Topology, cl *cluster.Cluster) *cluster.Assignment {
	a := cluster.NewAssignment(0)
	slot := cl.Slots()[0]
	for _, e := range top.Executors() {
		a.Assign(e, slot)
	}
	return a
}

// spreadRR places executors round-robin, one per slot index over the given
// slots.
func spreadRR(top *topology.Topology, slots []cluster.SlotID) *cluster.Assignment {
	a := cluster.NewAssignment(0)
	for i, e := range top.Executors() {
		a.Assign(e, slots[i%len(slots)])
	}
	return a
}

func mustRuntime(t *testing.T, cfg Config, cl *cluster.Cluster) *Runtime {
	t.Helper()
	rt, err := NewRuntime(cfg, cl)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// ---- tests ----

func TestPipelineProcessesAndAcks(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{limit: 100}
	midRec, sinkRec := newRecorder(), newRecorder()
	app := chainApp(t, spout, midRec, sinkRec, 1, 1)
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("test")
	if tm.RootsEmitted != 100 {
		t.Fatalf("RootsEmitted = %d, want 100", tm.RootsEmitted)
	}
	if tm.Completions != 100 || tm.Failed != 0 || tm.Dropped != 0 {
		t.Fatalf("completions=%d failed=%d dropped=%d", tm.Completions, tm.Failed, tm.Dropped)
	}
	if midRec.total() != 100 || sinkRec.total() != 100 {
		t.Fatalf("mid=%d sink=%d, want 100 each", midRec.total(), sinkRec.total())
	}
	if len(spout.acked) != 100 || len(spout.failed) != 0 {
		t.Fatalf("acked=%d failed=%d", len(spout.acked), len(spout.failed))
	}
	if tm.Latency.TotalCount() != 100 {
		t.Fatalf("latency samples = %d", tm.Latency.TotalCount())
	}
	// Latency is small but positive on a single packed node.
	mean := tm.Latency.MeanAfter(0)
	if mean <= 0 || mean > 10 {
		t.Fatalf("mean latency = %vms, want (0, 10]", mean)
	}
}

func TestSubmitValidation(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{limit: 1}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)

	// Missing placement.
	bad := cluster.NewAssignment(0)
	if err := rt.Submit(app, bad); err == nil {
		t.Fatal("incomplete assignment accepted")
	}
	// Unknown node.
	bad2 := packAll(app.Topology, cl)
	for e := range bad2.Executors {
		bad2.Executors[e] = cluster.SlotID{Node: "ghost", Port: 6700}
		break
	}
	if err := rt.Submit(app, bad2); err == nil {
		t.Fatal("assignment to unknown node accepted")
	}
	// Good one.
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	// Duplicate submit.
	if err := rt.Submit(app, packAll(app.Topology, cl)); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}

func TestAppValidate(t *testing.T) {
	b := topology.NewBuilder("t", 1)
	b.Spout("s", 1).Output("default", "v")
	b.Bolt("b", 1).Shuffle("s")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &App{Topology: top}
	if err := app.Validate(); err == nil {
		t.Fatal("app without spout factory validated")
	}
	app.Spouts = map[string]func() Spout{"s": func() Spout { return &testSpout{} }}
	if err := app.Validate(); err == nil {
		t.Fatal("app without bolt factory validated")
	}
	app.Bolts = map[string]func() Bolt{"b": func() Bolt { return &recordBolt{rec: newRecorder()} }}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	app.Bolts["ghost"] = app.Bolts["b"]
	if err := app.Validate(); err == nil {
		t.Fatal("dangling bolt factory validated")
	}
}

func TestFieldsGroupingRoutesByKey(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)

	b := topology.NewBuilder("fg", 2)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 4).Fields("spout", "v")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	spout := &testSpout{limit: 200}
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return &recordBolt{rec: rec} }},
	}
	// Make values repeat so each key appears multiple times.
	spout.limit = 40
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Re-run same key mapping: every occurrence of value v must be in
	// exactly one task's record. With one occurrence each, check instead
	// the hashing agreement:
	for task, vals := range rec.byTask {
		for _, v := range vals {
			want := tuple.HashKey(fmt.Sprintf("%d\x1f", v), 4)
			if task != want {
				t.Fatalf("value %d processed by task %d, fields-hash says %d", v, task, want)
			}
		}
	}
	if rec.total() != 40 {
		t.Fatalf("total = %d, want 40", rec.total())
	}
}

func TestAllGroupingBroadcasts(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("ag", 2)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 3).All("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	spout := &testSpout{limit: 10}
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return &recordBolt{rec: rec} }},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rec.total() != 30 {
		t.Fatalf("total = %d, want 10×3 broadcast", rec.total())
	}
	for task := 0; task < 3; task++ {
		if len(rec.byTask[task]) != 10 {
			t.Fatalf("task %d got %d tuples, want 10", task, len(rec.byTask[task]))
		}
	}
	if tm := rt.Metrics("ag"); tm.Completions != 10 {
		t.Fatalf("completions = %d, want 10 (broadcast must still ack)", tm.Completions)
	}
}

func TestGlobalGroupingUsesTaskZero(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("gg", 2)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 3).Global("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return &testSpout{limit: 10} }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return &recordBolt{rec: rec} }},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rec.byTask[0]) != 10 || rec.total() != 10 {
		t.Fatalf("byTask = %v, want all 10 on task 0", rec.byTask)
	}
}

// directSpout emits via EmitDirect to a chosen task.
type directSpout struct {
	sent int
}

func (s *directSpout) Open(*Context) {}
func (s *directSpout) NextTuple(em SpoutEmitter) {
	if s.sent >= 10 {
		return
	}
	em.EmitDirect("sink", 2, "", tuple.Values{s.sent})
	s.sent++
}
func (s *directSpout) Ack(any)  {}
func (s *directSpout) Fail(any) {}

func TestDirectGrouping(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("dg", 2)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 3).Direct("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return &directSpout{} }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return &recordBolt{rec: rec} }},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rec.byTask[2]) != 10 || rec.total() != 10 {
		t.Fatalf("byTask = %v, want all 10 on task 2", rec.byTask)
	}
}

func TestUnanchoredWithoutAckers(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("ua", 2)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 1).Shuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	spout := &testSpout{limit: 20}
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return &recordBolt{rec: rec} }},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rec.total() != 20 {
		t.Fatalf("sink got %d, want 20", rec.total())
	}
	tm := rt.Metrics("ua")
	if tm.RootsEmitted != 0 || tm.Completions != 0 {
		t.Fatalf("acking happened without ackers: %+v", tm)
	}
	if len(spout.acked) != 0 {
		t.Fatal("spout acked without ackers")
	}
}

// slowBolt burns a lot of CPU per tuple.
type slowBolt struct{}

func (slowBolt) Prepare(*Context)             {}
func (slowBolt) Execute(tuple.Tuple, Emitter) {}

func TestTimeoutFailsAndReplays(t *testing.T) {
	cl := testCluster(t, 1)
	cfg := DefaultConfig()
	cfg.MessageTimeout = 2 * time.Second
	rt := mustRuntime(t, cfg, cl)
	b := topology.NewBuilder("to", 1)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 1).Shuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	spout := &testSpout{limit: 50}
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return slowBolt{} }},
		// 500 ms of CPU per tuple at 2 GHz: service rate 2/s < arrival.
		Costs: map[string]CostFn{"sink": ConstCost(Cycles(500*time.Millisecond, 2000))},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("to")
	if tm.Failed == 0 {
		t.Fatal("no failures despite overload")
	}
	if len(spout.failed) == 0 {
		t.Fatal("spout.Fail never called")
	}
	// Late completions are recorded with large latencies.
	if tm.LateCompletions == 0 {
		t.Fatal("no late completions observed")
	}
	mean := tm.Latency.MeanAfter(0)
	if mean < cfg.MessageTimeout.Seconds()*1e3/2 {
		t.Fatalf("mean latency %vms too small for overload", mean)
	}
}

func TestSpreadingIncreasesLatency(t *testing.T) {
	// The engine-level reproduction of Observation 1 (Fig. 2): the same
	// topology, packed on one worker vs spread over 5 nodes, must show
	// higher processing time when spread.
	run := func(spread bool) float64 {
		cl, err := cluster.Uniform(5, 4, 2000, 4)
		if err != nil {
			t.Fatal(err)
		}
		rt := mustRuntime(t, DefaultConfig(), cl)
		spout := &testSpout{}
		midRec, sinkRec := newRecorder(), newRecorder()
		app := chainApp(t, spout, midRec, sinkRec, 1, 1)
		app.Costs = map[string]CostFn{
			"spout": ConstCost(Cycles(100*time.Microsecond, 2000)),
			"mid":   ConstCost(Cycles(200*time.Microsecond, 2000)),
			"sink":  ConstCost(Cycles(200*time.Microsecond, 2000)),
		}
		var a *cluster.Assignment
		if spread {
			nodes := cl.Nodes()
			var slots []cluster.SlotID
			for _, n := range nodes {
				slots = append(slots, cluster.SlotID{Node: n.ID, Port: cluster.BasePort})
			}
			a = spreadRR(app.Topology, slots)
		} else {
			a = packAll(app.Topology, cl)
		}
		if err := rt.Submit(app, a); err != nil {
			t.Fatal(err)
		}
		if err := rt.RunFor(100 * time.Second); err != nil {
			t.Fatal(err)
		}
		tm := rt.Metrics("test")
		if tm.Completions == 0 {
			t.Fatal("no completions")
		}
		return tm.Latency.MeanAfter(sim.Time(30 * time.Second))
	}
	packed := run(false)
	spreadL := run(true)
	if spreadL <= packed {
		t.Fatalf("spread latency %.3fms not worse than packed %.3fms", spreadL, packed)
	}
}
