package engine

import (
	"fmt"

	"tstorm/internal/trace"
)

// KillTopology terminates a running topology: every one of its workers is
// shut down, its assignment is removed from the coordination store, and
// supervisors stop managing it. Its metrics remain readable for
// post-mortem analysis, as in Storm's UI after `storm kill`.
func (r *Runtime) KillTopology(topo string) error {
	if _, ok := r.apps[topo]; !ok {
		return fmt.Errorf("engine: unknown topology %q", topo)
	}
	for _, nid := range r.nodeOrder {
		ns := r.nodes[nid]
		for _, port := range ns.ports {
			ss := ns.slots[port]
			if ss.current != nil && ss.current.topo == topo {
				ss.current.kill()
				ss.current = nil
			}
			// Drop buffered traffic addressed here for the dead topology.
			kept := ss.pending[:0]
			for _, m := range ss.pending {
				if m.target.Topology != topo {
					kept = append(kept, m)
				}
			}
			ss.pending = kept
		}
	}
	r.emit(trace.TopologyKilled, topo, "", "")
	_ = r.coord.Delete(AssignmentPath(topo))
	delete(r.current, topo)
	delete(r.apps, topo)
	for i, name := range r.appOrder {
		if name == topo {
			r.appOrder = append(r.appOrder[:i], r.appOrder[i+1:]...)
			break
		}
	}
	return nil
}
