package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// fanBolt forwards each input to the next stage, optionally duplicating.
type fanBolt struct {
	copies int
}

func (fanBolt) Prepare(*Context) {}
func (b fanBolt) Execute(in tuple.Tuple, em Emitter) {
	for i := 0; i < b.copies; i++ {
		em.Emit("", in.Values)
	}
}

// TestPropertyTupleConservation: for random small topologies under random
// stable placements, with a bounded spout and no overload, every emitted
// root is eventually fully processed — no loss, no duplication, no
// failures. This is the engine's core correctness invariant.
func TestPropertyTupleConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 1 + rng.Intn(3)
		stage1Par := 1 + rng.Intn(3)
		stage2Par := 1 + rng.Intn(3)
		copies := 1 + rng.Intn(2)
		roots := 20 + rng.Intn(60)
		ackers := 1 + rng.Intn(2)

		b := topology.NewBuilder("cons", 4)
		b.SetAckers(ackers)
		b.Spout("spout", 1).Output("default", "v")
		b.Bolt("fan", stage1Par).Shuffle("spout").Output("default", "v")
		b.Bolt("sink", stage2Par).Fields("fan", "v")
		top, err := b.Build()
		if err != nil {
			return false
		}
		cl, err := cluster.Uniform(nodes, 4, 2000, 4)
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.Seed = uint64(seed)
		rt, err := NewRuntime(cfg, cl)
		if err != nil {
			return false
		}
		spout := &testSpout{limit: roots}
		app := &App{
			Topology: top,
			Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
			Bolts: map[string]func() Bolt{
				"fan":  func() Bolt { return fanBolt{copies: copies} },
				"sink": func() Bolt { return slowBolt{} },
			},
		}
		// Random but valid placement over the cluster's slots.
		slots := cl.Slots()
		a := cluster.NewAssignment(0)
		// Respect one-slot-per-topology-per-node: pick one slot per node,
		// then scatter executors over those.
		var perNode []cluster.SlotID
		for _, n := range cl.Nodes() {
			perNode = append(perNode, cluster.SlotID{
				Node: n.ID, Port: cluster.BasePort + rng.Intn(n.NumSlots),
			})
		}
		for _, e := range top.Executors() {
			a.Assign(e, perNode[rng.Intn(len(perNode))])
		}
		_ = slots
		if err := rt.Submit(app, a); err != nil {
			return false
		}
		if err := rt.RunFor(90 * time.Second); err != nil {
			return false
		}
		tm := rt.Metrics("cons")
		if tm.RootsEmitted != int64(roots) {
			t.Logf("seed %d: emitted %d, want %d", seed, tm.RootsEmitted, roots)
			return false
		}
		if tm.Completions != int64(roots) || tm.Failed != 0 || tm.Dropped != 0 {
			t.Logf("seed %d: completions=%d failed=%d dropped=%d want %d/0/0",
				seed, tm.Completions, tm.Failed, tm.Dropped, roots)
			return false
		}
		// Every stage saw the right multiplicities.
		if got := tm.Component("fan").Executed; got != int64(roots) {
			t.Logf("seed %d: fan executed %d", seed, got)
			return false
		}
		if got := tm.Component("sink").Executed; got != int64(roots*copies) {
			t.Logf("seed %d: sink executed %d, want %d", seed, got, roots*copies)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
