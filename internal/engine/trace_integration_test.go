package engine

import (
	"testing"
	"time"

	"tstorm/internal/trace"
)

func TestTraceRecordsLifecycle(t *testing.T) {
	cl := testCluster(t, 2)
	cfg := DefaultConfig()
	rec := trace.NewRecorder(1000)
	cfg.Trace = rec
	rt := mustRuntime(t, cfg, cl)
	spout := &testSpout{}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Filter(trace.AssignmentPublished)); got != 1 {
		t.Fatalf("assignment events = %d, want 1", got)
	}
	if got := len(rec.Filter(trace.WorkerStarted)); got != 1 {
		t.Fatalf("worker-started events = %d, want 1", got)
	}
	// Crash → killed + restarted events.
	rt.CrashWorker(cl.Slots()[0])
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Filter(trace.WorkerKilled)); got != 1 {
		t.Fatalf("worker-killed events = %d, want 1", got)
	}
	if got := len(rec.Filter(trace.WorkerStarted)); got != 2 {
		t.Fatalf("worker-started after restart = %d, want 2", got)
	}
	// Node failure + kill topology leave their marks.
	rt.FailNode("node02")
	rt.RecoverNode("node02")
	if err := rt.KillTopology("test"); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []trace.Kind{trace.NodeFailed, trace.NodeRecovered, trace.TopologyKilled} {
		if got := len(rec.Filter(kind)); got != 1 {
			t.Fatalf("%s events = %d, want 1", kind, got)
		}
	}
	// Events carry timestamps in order.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("trace out of order at %d: %v after %v", i, evs[i], evs[i-1])
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{limit: 1}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	// No recorder attached: must not panic anywhere.
	if err := rt.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
