// Package engine executes Storm topologies on the simulated cluster: it
// instantiates executors inside worker processes, routes tuples between
// them according to stream groupings and the live assignment, charges CPU
// and network costs, runs the ack/timeout/replay protocol, and implements
// the supervisor-side worker lifecycle for both Storm's abrupt
// re-assignment and T-Storm's smoothed re-assignment (§IV-D).
package engine

import (
	"fmt"
	"math/rand/v2"
	"time"

	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// Context gives user code its identity within the topology.
type Context struct {
	// Topology is the topology name.
	Topology string
	// Component is the component name.
	Component string
	// Index is the executor index within the component.
	Index int
	// Parallelism is the component's executor count.
	Parallelism int
	// Rand is a deterministic per-instance random source.
	Rand *rand.Rand
}

// Emitter is handed to user code to emit tuples. Emissions from a bolt's
// Execute are anchored to the input tuple; emissions from a spout's
// NextTuple become new roots tracked by the ack protocol.
type Emitter interface {
	// Emit sends values on the named stream ("" means the default stream)
	// to every subscribed consumer per its grouping. Consumers subscribed
	// with direct grouping are skipped (use EmitDirect).
	Emit(stream string, vals tuple.Values)
	// EmitDirect sends values on the named stream to one specific task of
	// one specific consumer subscribed with direct grouping.
	EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values)
}

// SpoutEmitter extends Emitter for spouts: emissions carry the spout's own
// message ID so the engine can call Ack/Fail with it later.
type SpoutEmitter interface {
	Emitter
	// EmitWithID emits a new root tuple tied to msgID. On full processing
	// the spout's Ack(msgID) is called; on timeout, Fail(msgID).
	EmitWithID(stream string, vals tuple.Values, msgID any)
}

// Spout produces the topology's input stream. Implementations are
// instantiated per executor (per worker incarnation) via App.Spouts.
type Spout interface {
	// Open is called once when the executor starts.
	Open(ctx *Context)
	// NextTuple is called on every emit cycle; it may emit zero or more
	// tuples. The engine calls it again after the spout's configured
	// emit interval (rate control, the paper's 5 ms sleep).
	NextTuple(emit SpoutEmitter)
	// Ack signals that the tuple emitted with msgID was fully processed.
	Ack(msgID any)
	// Fail signals that the tuple emitted with msgID timed out; reliable
	// spouts re-emit it on a later NextTuple.
	Fail(msgID any)
}

// Bolt consumes and processes tuples. Implementations are instantiated per
// executor (per worker incarnation) via App.Bolts.
type Bolt interface {
	// Prepare is called once when the executor starts.
	Prepare(ctx *Context)
	// Execute processes one input tuple; emissions are anchored to it and
	// the input is acked automatically when Execute returns.
	Execute(in tuple.Tuple, emit Emitter)
}

// CostFn returns the CPU cost, in cycles, of processing one tuple (for
// bolts) or of one NextTuple call (for spouts). 1 MHz = 1e6 cycles/s, so a
// 2000 MHz core delivers 2e9 cycles per second.
type CostFn func(in tuple.Tuple) float64

// Cycles converts "d of CPU time on a core of atMHz" into cycles, the unit
// CostFn uses.
func Cycles(d time.Duration, atMHz float64) float64 {
	return d.Seconds() * atMHz * 1e6
}

// ConstCost returns a CostFn that charges the same cycles for every tuple.
func ConstCost(cycles float64) CostFn {
	return func(tuple.Tuple) float64 { return cycles }
}

// PerByteCost returns a CostFn charging base plus perByte times the
// tuple's serialized size.
func PerByteCost(base, perByte float64) CostFn {
	return func(in tuple.Tuple) float64 { return base + perByte*float64(in.Size) }
}

// DefaultSpoutInterval is the emit-cycle interval used when an App does
// not configure one — the 5 ms rate-control sleep of the paper's
// Throughput Test spout.
const DefaultSpoutInterval = 5 * time.Millisecond

// App bundles a validated topology with the code and cost model of its
// components — everything Submit needs to run it.
type App struct {
	Topology *topology.Topology
	// Spouts and Bolts construct fresh component instances; they are
	// invoked once per executor per worker incarnation (state does not
	// survive a worker restart, as in Storm).
	Spouts map[string]func() Spout
	Bolts  map[string]func() Bolt
	// Costs gives each component's per-tuple CPU cost. Components absent
	// from the map use DefaultCost.
	Costs map[string]CostFn
	// SpoutInterval overrides the emit-cycle interval per spout.
	SpoutInterval map[string]time.Duration
	// MaxPending caps a spout's outstanding (un-acked) roots; 0 = unlimited.
	MaxPending map[string]int
}

// DefaultCost is used for components with no entry in App.Costs:
// 0.05 ms on a 2 GHz core.
var DefaultCost = ConstCost(Cycles(50*time.Microsecond, 2000))

// Validate checks that every declared component has code and that no code
// is dangling.
func (a *App) Validate() error {
	if a.Topology == nil {
		return fmt.Errorf("engine: app has no topology")
	}
	for _, name := range a.Topology.ComponentNames() {
		c, _ := a.Topology.Component(name)
		switch c.Kind {
		case topology.SpoutKind:
			if a.Spouts[name] == nil {
				return fmt.Errorf("engine: spout %q has no factory", name)
			}
		case topology.BoltKind:
			if name != topology.AckerComponent && a.Bolts[name] == nil {
				return fmt.Errorf("engine: bolt %q has no factory", name)
			}
		}
	}
	for name := range a.Spouts {
		if c, ok := a.Topology.Component(name); !ok || c.Kind != topology.SpoutKind {
			return fmt.Errorf("engine: spout factory %q matches no spout", name)
		}
	}
	for name := range a.Bolts {
		if c, ok := a.Topology.Component(name); !ok || c.Kind != topology.BoltKind {
			return fmt.Errorf("engine: bolt factory %q matches no bolt", name)
		}
	}
	return nil
}

func (a *App) costFor(component string) CostFn {
	if fn, ok := a.Costs[component]; ok {
		return fn
	}
	return DefaultCost
}

func (a *App) spoutIntervalFor(component string) time.Duration {
	if d, ok := a.SpoutInterval[component]; ok && d > 0 {
		return d
	}
	return DefaultSpoutInterval
}
