package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/coord"
	"tstorm/internal/metrics"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/transport"
	"tstorm/internal/tuple"
)

// AssignmentPath returns the coordination-store path Nimbus publishes a
// topology's assignment under (supervisors poll it every sync period).
func AssignmentPath(topo string) string { return "/assignments/" + topo }

// Config holds the engine's timing and cost parameters. DefaultConfig
// reproduces stock Storm 0.8 behaviour; TStormConfig enables the smooth
// re-assignment machinery of §IV-D.
type Config struct {
	// Seed drives every random choice in the run.
	Seed uint64
	// Cost is the cluster fabric cost model.
	Cost transport.CostModel
	// MessageTimeout is the ack timeout after which a root is failed and
	// replayed (Storm default 30 s).
	MessageTimeout time.Duration
	// SupervisorSync is how often supervisors check for new assignments
	// (Storm default 10 s).
	SupervisorSync time.Duration
	// WorkerStartup is how long a worker process takes from launch until
	// its executors are prepared and processing.
	WorkerStartup time.Duration
	// SmoothReassign enables T-Storm's re-assignment smoothing: per-slot
	// dispatchers routing by assignment ID, delayed shutdown of old
	// workers, and spout halting.
	SmoothReassign bool
	// ShutdownDelay is how long old workers keep draining after a smooth
	// re-assignment (paper: 20 s, twice the supervisor sync period).
	ShutdownDelay time.Duration
	// SpoutHaltDelay is how long spouts stay halted after new workers are
	// up, so bolts are ready before data flows (paper: 10 s).
	SpoutHaltDelay time.Duration
	// LatencyBucket is the reporting granularity of the processing-time
	// series (paper: 1-minute averages).
	LatencyBucket time.Duration
	// AckerCost is the CPU cycles an acker spends per init/ack message.
	AckerCost float64
	// NotifyCost is the CPU cycles a spout spends handling one
	// complete/fail notification.
	NotifyCost float64
	// ControlMsgSize is the serialized size of init/ack/complete messages.
	ControlMsgSize int
	// WorkerMemMB is each worker process's (JVM) memory footprint. When
	// the live workers on a node overcommit its physical memory, the node
	// pages and every service slows by SwapPenalty per unit of
	// overcommitment — the effect worker-node consolidation removes (§V:
	// the default scheduler runs 4 workers per 2 GB node on the
	// Throughput Test; T-Storm runs 1).
	WorkerMemMB float64
	// ReservedMemMB is the memory the OS, supervisor, ZooKeeper and other
	// daemons occupy on every node; only the remainder is available to
	// worker processes.
	ReservedMemMB float64
	// SwapPenalty is the slowdown factor per unit memory overcommitment.
	SwapPenalty float64
	// Trace, when non-nil, receives structured runtime events (worker
	// lifecycle, assignments, drops, failures).
	Trace *trace.Recorder
	// BatchFlush, when positive, enables Storm 0.8-style transfer
	// batching: while the NIC is busy, inter-node messages to the same
	// destination slot coalesce (up to BatchFlush extra wait, or until
	// BatchMaxTuples accumulate) and share one transmission and one
	// propagation delay. An idle NIC sends immediately, so light traffic
	// pays no batching latency. Off by default; the calibrated figures
	// model per-tuple sends.
	BatchFlush time.Duration
	// BatchMaxTuples caps a batch's size (0 = 64).
	BatchMaxTuples int
}

// DefaultConfig returns a configuration reproducing stock Storm.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Cost:           transport.DefaultCostModel(),
		MessageTimeout: 30 * time.Second,
		SupervisorSync: 10 * time.Second,
		WorkerStartup:  2 * time.Second,
		SmoothReassign: false,
		ShutdownDelay:  20 * time.Second,
		SpoutHaltDelay: 10 * time.Second,
		LatencyBucket:  time.Minute,
		AckerCost:      Cycles(20*time.Microsecond, 2000),
		NotifyCost:     Cycles(10*time.Microsecond, 2000),
		ControlMsgSize: 32,
		WorkerMemMB:    700,
		ReservedMemMB:  875,
		SwapPenalty:    3.5,
	}
}

// TStormConfig returns DefaultConfig with T-Storm's smooth re-assignment
// enabled.
func TStormConfig() Config {
	cfg := DefaultConfig()
	cfg.SmoothReassign = true
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if c.MessageTimeout <= 0 || c.SupervisorSync <= 0 || c.WorkerStartup < 0 ||
		c.ShutdownDelay < 0 || c.SpoutHaltDelay < 0 || c.LatencyBucket <= 0 {
		return fmt.Errorf("engine: non-positive duration in config")
	}
	if c.AckerCost < 0 || c.NotifyCost < 0 || c.ControlMsgSize < 0 ||
		c.WorkerMemMB < 0 || c.ReservedMemMB < 0 || c.SwapPenalty < 0 {
		return fmt.Errorf("engine: negative cost in config")
	}
	return nil
}

// ExecutorLoadSample is one executor's CPU consumption since the previous
// drain, as a load monitor would read it from JMX.
type ExecutorLoadSample struct {
	Exec   topology.ExecutorID
	Dense  int
	Cycles float64
	// Node is where the executor currently runs ("" if not placed).
	Node cluster.NodeID
}

type nodeState struct {
	node cluster.Node
	nic  *transport.NIC
	// session is the supervisor's coordination session; its ephemeral
	// heartbeat znode is Nimbus's liveness signal. everHeartbeat guards
	// the failure detector during startup.
	session       *coord.Session
	everHeartbeat bool
	// batches holds the open transfer batch per destination slot when
	// batching is enabled.
	batches map[cluster.SlotID]*transferBatch
	// down marks a failed node: workers dead, messages dropped, no
	// heartbeats.
	down bool
	// residentExecs counts executor threads hosted by live workers here;
	// activeWorkers counts live worker processes (starting + running +
	// stopping). Both drive the busy-spin CPU contention model.
	residentExecs int
	activeWorkers int
	slots         map[int]*slotState
	ports         []int // sorted
}

type slotState struct {
	id         cluster.SlotID
	current    *worker
	dispatcher *transport.Dispatcher
	// pending holds messages that arrived while no worker was listening on
	// the slot yet — senders' transport clients retry connections and
	// queue, they do not drop. Drained into the next worker that starts
	// here; cleared when the slot is reconciled to empty.
	pending []message
}

// maxSlotPending bounds the per-slot connect-retry buffer.
const maxSlotPending = 100000

// Runtime is the simulated Storm cluster: nodes, supervisors, workers,
// executors, and the message fabric between them.
type Runtime struct {
	cfg   Config
	sim   *sim.Engine
	cl    *cluster.Cluster
	coord *coord.Store

	apps     map[string]*App
	appOrder []string

	dense    map[topology.ExecutorID]int
	denseRev []topology.ExecutorID

	traffic *metrics.TrafficMatrix
	cpu     []float64 // per dense executor, cycles since last drain

	current     map[string]*cluster.Assignment
	generations map[int64]*cluster.Assignment

	nodes     map[cluster.NodeID]*nodeState
	nodeOrder []cluster.NodeID

	tmetrics map[string]*TopologyMetrics
}

// NewRuntime builds a runtime over the given cluster.
func NewRuntime(cfg Config, cl *cluster.Cluster) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cfg.Seed)
	r := &Runtime{
		cfg:         cfg,
		sim:         eng,
		cl:          cl,
		coord:       coord.NewStore(eng, time.Millisecond),
		apps:        make(map[string]*App),
		dense:       make(map[topology.ExecutorID]int),
		traffic:     metrics.NewTrafficMatrix(),
		current:     make(map[string]*cluster.Assignment),
		generations: make(map[int64]*cluster.Assignment),
		nodes:       make(map[cluster.NodeID]*nodeState),
		tmetrics:    make(map[string]*TopologyMetrics),
	}
	for _, n := range cl.Nodes() {
		ns := &nodeState{
			node:  n,
			nic:   transport.NewNIC(cfg.Cost),
			slots: make(map[int]*slotState),
		}
		for p := 0; p < n.NumSlots; p++ {
			port := cluster.BasePort + p
			ns.slots[port] = &slotState{
				id:         cluster.SlotID{Node: n.ID, Port: port},
				dispatcher: transport.NewDispatcher(),
			}
			ns.ports = append(ns.ports, port)
		}
		sort.Ints(ns.ports)
		r.nodes[n.ID] = ns
		r.nodeOrder = append(r.nodeOrder, n.ID)
	}
	// Pre-create the supervisors' heartbeat directory, as Storm's setup
	// does in ZooKeeper.
	if err := r.coord.CreateAll("/supervisors", nil); err != nil {
		return nil, fmt.Errorf("engine: init coordination tree: %w", err)
	}
	// Supervisors sync every SupervisorSync, phase-shifted per node: as in
	// a real cluster, their timers are not aligned, which is what makes
	// abrupt re-assignment lossy ("creation and termination of workers...
	// are not perfectly coordinated", §IV-D) and what T-Storm's smoothing
	// compensates for.
	for i, nid := range r.nodeOrder {
		ns := r.nodes[nid]
		offset := time.Second + time.Duration(i)*cfg.SupervisorSync/time.Duration(len(r.nodeOrder))
		eng.Every(offset, cfg.SupervisorSync, func() {
			if ns.down {
				return
			}
			r.heartbeat(ns)
			r.supervise(ns)
		})
	}
	// Nimbus's failure detector runs on the same cadence.
	eng.Every(time.Second, cfg.SupervisorSync, r.nimbusCheckFailures)
	return r, nil
}

// Sim exposes the simulation engine (for scheduling monitors, schedule
// generators and experiment logic alongside the runtime).
func (r *Runtime) Sim() *sim.Engine { return r.sim }

// Coord exposes the coordination store.
func (r *Runtime) Coord() *coord.Store { return r.coord }

// Cluster returns the physical cluster description.
func (r *Runtime) Cluster() *cluster.Cluster { return r.cl }

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// emit records a trace event if a recorder is attached.
func (r *Runtime) emit(kind trace.Kind, topo, where, detail string) {
	if r.cfg.Trace == nil {
		return
	}
	r.cfg.Trace.Emit(trace.Event{
		At: r.sim.Now(), Kind: kind, Topology: topo, Where: where, Detail: detail,
	})
}

// Submit registers the app and publishes its initial assignment. The
// caller computes the initial placement (Storm's default scheduler or
// T-Storm's modified initial scheduler).
func (r *Runtime) Submit(app *App, initial *cluster.Assignment) error {
	if err := app.Validate(); err != nil {
		return err
	}
	name := app.Topology.Name()
	if _, dup := r.apps[name]; dup {
		return fmt.Errorf("engine: topology %q already submitted", name)
	}
	if err := r.validateAssignment(name, app, initial); err != nil {
		return err
	}
	r.apps[name] = app
	r.appOrder = append(r.appOrder, name)
	sort.Strings(r.appOrder)
	for _, e := range app.Topology.Executors() {
		r.dense[e] = len(r.denseRev)
		r.denseRev = append(r.denseRev, e)
		r.cpu = append(r.cpu, 0)
	}
	r.tmetrics[name] = newTopologyMetrics(r.cfg.LatencyBucket)
	return r.PublishAssignment(name, initial)
}

// App returns a submitted app.
func (r *Runtime) App(topo string) (*App, bool) {
	a, ok := r.apps[topo]
	return a, ok
}

// Topologies lists submitted topology names, sorted.
func (r *Runtime) Topologies() []string {
	out := make([]string, len(r.appOrder))
	copy(out, r.appOrder)
	return out
}

// DenseIndex returns the dense integer index of a logical executor, used
// as the key of the traffic matrix and CPU accounting.
func (r *Runtime) DenseIndex(e topology.ExecutorID) (int, bool) {
	i, ok := r.dense[e]
	return i, ok
}

// ExecutorByDense is the inverse of DenseIndex.
func (r *Runtime) ExecutorByDense(i int) topology.ExecutorID { return r.denseRev[i] }

// NumExecutors returns the number of registered executors across all
// submitted topologies.
func (r *Runtime) NumExecutors() int { return len(r.denseRev) }

// PublishAssignment validates and publishes a new assignment for the
// topology: it becomes the current generation, is written to the
// coordination store, and supervisors apply it at their next sync.
func (r *Runtime) PublishAssignment(topo string, a *cluster.Assignment) error {
	app, ok := r.apps[topo]
	if !ok {
		return fmt.Errorf("engine: unknown topology %q", topo)
	}
	if err := r.validateAssignment(topo, app, a); err != nil {
		return err
	}
	pub := a.Clone()
	if pub.ID == 0 {
		pub.ID = int64(r.sim.Now()) + 1 // non-zero, unique per instant
	}
	for r.generations[pub.ID] != nil {
		pub.ID++
	}
	r.generations[pub.ID] = pub
	r.current[topo] = pub
	data, err := json.Marshal(pub)
	if err != nil {
		return fmt.Errorf("engine: marshal assignment: %w", err)
	}
	if _, err := r.coord.SetOrCreate(AssignmentPath(topo), data); err != nil {
		return fmt.Errorf("engine: publish assignment: %w", err)
	}
	tm := r.tmetrics[topo]
	tm.NodesInUse.Set(r.sim.Now(), float64(pub.NumUsedNodes()))
	tm.Reassignments = append(tm.Reassignments, ReassignEvent{
		At: r.sim.Now(), AssignID: pub.ID,
		UsedNodes: pub.NumUsedNodes(), UsedSlots: len(pub.UsedSlots()),
	})
	r.emit(trace.AssignmentPublished, topo, "",
		fmt.Sprintf("id=%d nodes=%d slots=%d", pub.ID, pub.NumUsedNodes(), len(pub.UsedSlots())))
	return nil
}

func (r *Runtime) validateAssignment(topo string, app *App, a *cluster.Assignment) error {
	execs := app.Topology.Executors()
	if len(a.Executors) != len(execs) {
		return fmt.Errorf("engine: assignment for %q places %d executors, topology has %d",
			topo, len(a.Executors), len(execs))
	}
	for _, e := range execs {
		s, ok := a.Executors[e]
		if !ok {
			return fmt.Errorf("engine: executor %v unplaced", e)
		}
		ns, ok := r.nodes[s.Node]
		if !ok {
			return fmt.Errorf("engine: executor %v assigned to unknown node %q", e, s.Node)
		}
		if _, ok := ns.slots[s.Port]; !ok {
			return fmt.Errorf("engine: executor %v assigned to missing slot %v", e, s)
		}
	}
	// A slot hosts workers of exactly one topology.
	for otherName, other := range r.current {
		if otherName == topo {
			continue
		}
		otherSlots := make(map[cluster.SlotID]bool)
		for _, s := range other.Executors {
			otherSlots[s] = true
		}
		for _, s := range a.Executors {
			if otherSlots[s] {
				return fmt.Errorf("engine: slot %v already hosts topology %q", s, otherName)
			}
		}
	}
	return nil
}

// CurrentAssignment returns the topology's newest published assignment.
func (r *Runtime) CurrentAssignment(topo string) (*cluster.Assignment, bool) {
	a, ok := r.current[topo]
	if !ok {
		return nil, false
	}
	return a.Clone(), true
}

// Metrics returns the topology's metric set.
func (r *Runtime) Metrics(topo string) *TopologyMetrics { return r.tmetrics[topo] }

// RunFor advances the simulation by d.
func (r *Runtime) RunFor(d time.Duration) error {
	return r.sim.RunUntil(r.sim.Now().Add(d))
}

// DrainLoadSamples returns and resets each executor's CPU cycles consumed
// since the last drain, tagged with the node currently hosting it — the
// signal the paper's load monitors collect via getThreadCpuTime.
func (r *Runtime) DrainLoadSamples() []ExecutorLoadSample {
	out := make([]ExecutorLoadSample, 0, len(r.denseRev))
	for i, e := range r.denseRev {
		var node cluster.NodeID
		if a, ok := r.current[e.Topology]; ok {
			if s, ok := a.Slot(e); ok {
				node = s.Node
			}
		}
		out = append(out, ExecutorLoadSample{Exec: e, Dense: i, Cycles: r.cpu[i], Node: node})
		r.cpu[i] = 0
	}
	return out
}

// DrainTraffic returns and resets the inter-executor tuple counts since
// the last drain, keyed by dense executor index pairs.
func (r *Runtime) DrainTraffic() map[metrics.Pair]float64 { return r.traffic.Drain() }

// NodeCapacityMHz returns the CPU capacity of a node.
func (r *Runtime) NodeCapacityMHz(id cluster.NodeID) float64 {
	if ns, ok := r.nodes[id]; ok {
		return ns.node.CapacityMHz()
	}
	return 0
}

// ---- message fabric ----

type msgKind int

const (
	msgData msgKind = iota + 1
	msgInit
	msgAck
	msgComplete
)

type message struct {
	kind   msgKind
	gen    int64 // sender's assignment generation
	target topology.ExecutorID
	// data
	in tuple.Tuple
	// acker protocol
	root       tuple.ID
	xor        tuple.ID
	spoutDense int
	emitAt     sim.Time
	deserCost  float64
	size       int
}

// send routes a message from a live executor to a logical target,
// charging serialization, NIC and propagation costs. Traffic between the
// logical pair is counted for the monitors. The generation stamp travels
// with the message so every downstream hop keeps the sender's routes.
func (r *Runtime) send(from *executor, gen int64, m message) {
	m.gen = gen
	if di, ok := r.dense[m.target]; ok {
		r.traffic.Add(from.dense, di, 1)
	}
	a := r.generations[gen]
	if a == nil {
		a = r.current[m.target.Topology]
	}
	var dstSlot cluster.SlotID
	if a != nil {
		if s, ok := a.Slot(m.target); ok {
			dstSlot = s
		}
	}
	if dstSlot == (cluster.SlotID{}) {
		r.tmetrics[m.target.Topology].Dropped++
		return
	}
	srcSlot := from.w.slot
	hop := transport.Classify(srcSlot, dstSlot)
	arrive := r.sim.Now()
	if hop != transport.HopLocal {
		ser := r.cfg.Cost.SerializeCycles(m.size)
		r.cpu[from.dense] += ser
		m.deserCost = ser
	}
	switch hop {
	case transport.HopLocal:
		arrive = arrive.Add(r.cfg.Cost.LocalDelay)
	case transport.HopInterProcess:
		arrive = arrive.Add(r.cfg.Cost.LoopbackDelay)
	case transport.HopInterNode:
		if r.cfg.BatchFlush > 0 {
			r.enqueueBatch(srcSlot.Node, dstSlot, m)
			return
		}
		nic := r.nodes[srcSlot.Node].nic
		done := nic.Send(r.sim.Now(), m.size)
		arrive = done.Add(r.cfg.Cost.NetworkDelay)
	}
	r.sim.At(arrive, func() { r.deliver(dstSlot, m) })
}

// transferBatch is an open Storm-style transfer buffer to one slot.
type transferBatch struct {
	msgs  []message
	bytes int
}

// enqueueBatch coalesces an inter-node message into the open batch for
// its destination slot. With an idle NIC and no open batch the message
// goes straight to the wire; otherwise it waits for the wire to clear
// (bounded by BatchFlush) and shares the next transmission.
func (r *Runtime) enqueueBatch(src cluster.NodeID, dst cluster.SlotID, m message) {
	ns := r.nodes[src]
	if ns.batches == nil {
		ns.batches = make(map[cluster.SlotID]*transferBatch)
	}
	b := ns.batches[dst]
	if b == nil {
		now := r.sim.Now()
		if ns.nic.FreeAt() <= now {
			// Wire idle: no reason to wait.
			done := ns.nic.Send(now, m.size)
			arrive := done.Add(r.cfg.Cost.NetworkDelay)
			r.sim.At(arrive, func() { r.deliver(dst, m) })
			return
		}
		b = &transferBatch{}
		ns.batches[dst] = b
		wait := ns.nic.FreeAt().Sub(now)
		if wait > r.cfg.BatchFlush {
			wait = r.cfg.BatchFlush
		}
		r.sim.After(wait, func() { r.flushBatch(ns, dst) })
	}
	b.msgs = append(b.msgs, m)
	b.bytes += m.size
	maxTuples := r.cfg.BatchMaxTuples
	if maxTuples <= 0 {
		maxTuples = 64
	}
	if len(b.msgs) >= maxTuples {
		r.flushBatch(ns, dst)
	}
}

// flushBatch transmits an open batch as one wire message: the NIC and the
// propagation delay are paid once, amortized over every tuple inside.
func (r *Runtime) flushBatch(ns *nodeState, dst cluster.SlotID) {
	b := ns.batches[dst]
	if b == nil || len(b.msgs) == 0 {
		return
	}
	delete(ns.batches, dst)
	done := ns.nic.Send(r.sim.Now(), b.bytes)
	arrive := done.Add(r.cfg.Cost.NetworkDelay)
	msgs := b.msgs
	r.sim.At(arrive, func() {
		for _, m := range msgs {
			r.deliver(dst, m)
		}
	})
}

// deliver hands an arriving message to the right worker generation on the
// destination slot, or drops it if no suitable worker is accepting.
func (r *Runtime) deliver(slot cluster.SlotID, m message) {
	ns := r.nodes[slot.Node]
	if ns == nil || ns.down {
		r.drop(m)
		return
	}
	ss := ns.slots[slot.Port]
	if ss == nil {
		r.drop(m)
		return
	}
	var w *worker
	if r.cfg.SmoothReassign {
		if got, ok := ss.dispatcher.Route(m.gen); ok {
			w = got.(*worker)
		}
	} else {
		w = ss.current
	}
	if w == nil || !w.accepting() {
		if len(ss.pending) < maxSlotPending {
			ss.pending = append(ss.pending, m)
		} else {
			r.drop(m)
		}
		return
	}
	if w.state == workerStarting {
		w.inbound = append(w.inbound, m)
		return
	}
	ex := w.execs[m.target]
	if ex == nil || ex.dead {
		r.drop(m)
		return
	}
	ex.enqueue(jobFromMessage(m))
}

func (r *Runtime) drop(m message) {
	if tm := r.tmetrics[m.target.Topology]; tm != nil {
		tm.Dropped++
		// Drops can be very frequent; trace only the first few per topology.
		if tm.Dropped <= 10 {
			r.emit(trace.MessageDropped, m.target.Topology, "", m.target.String())
		}
	}
}

// newID draws a random non-zero 64-bit message ID.
func (r *Runtime) newID() tuple.ID {
	for {
		id := tuple.ID(r.sim.Rand().Uint64())
		if id != 0 {
			return id
		}
	}
}

// ---- supervision ----

// supervise is one supervisor's sync pass: fetch each topology's
// assignment from the coordination store and reconcile this node's slots.
func (r *Runtime) supervise(ns *nodeState) {
	for _, topo := range r.appOrder {
		data, _, err := r.coord.Get(AssignmentPath(topo))
		if err != nil {
			continue
		}
		var a cluster.Assignment
		if err := json.Unmarshal(data, &a); err != nil {
			continue
		}
		r.reconcileNode(ns, topo, &a)
	}
}
