package engine

import (
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// moveScenario runs a 2-node chain topology and moves the mid bolt to the
// other node at t=60s, returning the topology metrics.
func moveScenario(t *testing.T, smooth bool) *TopologyMetrics {
	t.Helper()
	cl := testCluster(t, 2)
	cfg := DefaultConfig()
	cfg.SmoothReassign = smooth
	rt := mustRuntime(t, cfg, cl)
	spout := &testSpout{}
	midRec, sinkRec := newRecorder(), newRecorder()
	app := chainApp(t, spout, midRec, sinkRec, 2, 2)
	// Keep the mid bolts busy (~75% utilization) so their queues hold
	// work whenever the abrupt restart kills them.
	app.Costs = map[string]CostFn{"mid": ConstCost(Cycles(3*time.Millisecond, 2000))}

	slotA := cluster.SlotID{Node: "node01", Port: cluster.BasePort}
	slotB := cluster.SlotID{Node: "node01", Port: cluster.BasePort + 1}
	slotC := cluster.SlotID{Node: "node02", Port: cluster.BasePort}

	initial := cluster.NewAssignment(0)
	for _, e := range app.Topology.Executors() {
		if e.Component == "mid" {
			initial.Assign(e, slotB)
		} else {
			initial.Assign(e, slotA)
		}
	}
	if err := rt.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Move mid executors to node02.
	next := initial.Clone()
	next.ID = 0
	for _, e := range app.Topology.Executors() {
		if e.Component == "mid" {
			next.Assign(e, slotC)
		}
	}
	if err := rt.PublishAssignment("test", next); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(240 * time.Second); err != nil {
		t.Fatal(err)
	}
	return rt.Metrics("test")
}

func TestReassignmentStormModeDropsTuples(t *testing.T) {
	tm := moveScenario(t, false)
	if tm.Completions == 0 {
		t.Fatal("no completions at all")
	}
	// The abrupt worker restart must lose some tuples: drops or failures.
	if tm.Dropped == 0 && tm.Failed == 0 {
		t.Fatalf("expected losses from abrupt restart: %+v", tm)
	}
	// Processing continues after the move.
	if tm.Latency.MeanAfter(sim.Time(120*time.Second)) <= 0 {
		t.Fatal("no samples after re-assignment")
	}
}

func TestSmoothReassignmentLosesLessThanStorm(t *testing.T) {
	storm := moveScenario(t, false)
	smooth := moveScenario(t, true)
	stormLoss := storm.Failed + storm.Dropped
	smoothLoss := smooth.Failed + smooth.Dropped
	if smoothLoss > stormLoss {
		t.Fatalf("smooth re-assignment lost more (%d) than Storm (%d)", smoothLoss, stormLoss)
	}
	if smooth.Failed != 0 {
		t.Fatalf("smooth re-assignment failed %d tuples, want 0", smooth.Failed)
	}
	if smooth.Completions == 0 {
		t.Fatal("smooth run completed nothing")
	}
	// Both runs recorded the re-assignment.
	if len(smooth.Reassignments) != 2 || len(storm.Reassignments) != 2 {
		t.Fatalf("reassign events: smooth=%d storm=%d, want 2 each",
			len(smooth.Reassignments), len(storm.Reassignments))
	}
}

func TestScaleToEmptySlotRemovesWorker(t *testing.T) {
	// Moving everything off a slot leaves the node idle; the topology
	// keeps processing on the remaining node.
	cl := testCluster(t, 2)
	cfg := TStormConfig()
	rt := mustRuntime(t, cfg, cl)
	spout := &testSpout{}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)

	slots := []cluster.SlotID{
		{Node: "node01", Port: cluster.BasePort},
		{Node: "node02", Port: cluster.BasePort},
	}
	initial := spreadRR(app.Topology, slots)
	if err := rt.Submit(app, initial); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	consolidated := packAll(app.Topology, cl)
	if err := rt.PublishAssignment("test", consolidated); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("test")
	if got := tm.NodesInUse.Last(); got != 1 {
		t.Fatalf("NodesInUse = %v, want 1", got)
	}
	before := tm.Completions
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tm.Completions <= before {
		t.Fatal("processing stalled after consolidation")
	}
	// node02 must have no live workers left.
	ns := rt.nodes["node02"]
	if ns.activeWorkers != 0 {
		t.Fatalf("node02 still has %d workers", ns.activeWorkers)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, float64) {
		cl := testCluster(t, 3)
		cfg := TStormConfig()
		cfg.Seed = 99
		rt := mustRuntime(t, cfg, cl)
		spout := &testSpout{}
		app := chainApp(t, spout, newRecorder(), newRecorder(), 3, 2)
		var slots []cluster.SlotID
		for _, n := range cl.Nodes() {
			slots = append(slots, cluster.SlotID{Node: n.ID, Port: cluster.BasePort})
		}
		if err := rt.Submit(app, spreadRR(app.Topology, slots)); err != nil {
			t.Fatal(err)
		}
		if err := rt.RunFor(90 * time.Second); err != nil {
			t.Fatal(err)
		}
		tm := rt.Metrics("test")
		return tm.Completions, tm.Latency.MeanAfter(0)
	}
	c1, l1 := run()
	c2, l2 := run()
	if c1 != c2 || l1 != l2 {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", c1, l1, c2, l2)
	}
	if c1 == 0 {
		t.Fatal("nothing completed")
	}
}

func TestDrainLoadSamplesAndTraffic(t *testing.T) {
	cl := testCluster(t, 2)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)
	var slots []cluster.SlotID
	for _, n := range cl.Nodes() {
		slots = append(slots, cluster.SlotID{Node: n.ID, Port: cluster.BasePort})
	}
	if err := rt.Submit(app, spreadRR(app.Topology, slots)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	samples := rt.DrainLoadSamples()
	if len(samples) != app.Topology.NumExecutors() {
		t.Fatalf("got %d samples, want %d", len(samples), app.Topology.NumExecutors())
	}
	busy := 0
	for _, s := range samples {
		if s.Cycles > 0 {
			busy++
		}
		if s.Node == "" {
			t.Fatalf("sample %v has no node", s.Exec)
		}
		if got, ok := rt.DenseIndex(s.Exec); !ok || got != s.Dense {
			t.Fatalf("dense index mismatch for %v", s.Exec)
		}
		if rt.ExecutorByDense(s.Dense) != s.Exec {
			t.Fatalf("ExecutorByDense mismatch for %v", s.Exec)
		}
	}
	if busy < 3 {
		t.Fatalf("only %d executors consumed CPU", busy)
	}
	// A second immediate drain is all zeros.
	for _, s := range rt.DrainLoadSamples() {
		if s.Cycles != 0 {
			t.Fatalf("drain did not reset: %v has %v cycles", s.Exec, s.Cycles)
		}
	}
	traffic := rt.DrainTraffic()
	if len(traffic) == 0 {
		t.Fatal("no traffic recorded")
	}
	spoutDense, _ := rt.DenseIndex(topology.ExecutorID{Topology: "test", Component: "spout", Index: 0})
	midDense, _ := rt.DenseIndex(topology.ExecutorID{Topology: "test", Component: "mid", Index: 0})
	found := false
	for p, n := range traffic {
		if p.From == spoutDense && p.To == midDense && n > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("spout→mid traffic not recorded")
	}
	if len(rt.DrainTraffic()) != 0 {
		t.Fatal("traffic drain did not reset")
	}
}

func TestNodeCapacityAndAccessors(t *testing.T) {
	cl := testCluster(t, 2)
	rt := mustRuntime(t, DefaultConfig(), cl)
	if got := rt.NodeCapacityMHz("node01"); got != 8000 {
		t.Fatalf("capacity = %v, want 8000", got)
	}
	if got := rt.NodeCapacityMHz("ghost"); got != 0 {
		t.Fatalf("ghost capacity = %v, want 0", got)
	}
	spout := &testSpout{limit: 1}
	app := chainApp(t, spout, newRecorder(), newRecorder(), 1, 1)
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	if got := rt.Topologies(); len(got) != 1 || got[0] != "test" {
		t.Fatalf("Topologies = %v", got)
	}
	if _, ok := rt.App("test"); !ok {
		t.Fatal("App not found")
	}
	if a, ok := rt.CurrentAssignment("test"); !ok || len(a.Executors) != app.Topology.NumExecutors() {
		t.Fatalf("CurrentAssignment wrong: ok=%v", ok)
	}
	if _, ok := rt.CurrentAssignment("ghost"); ok {
		t.Fatal("ghost assignment found")
	}
	if rt.NumExecutors() != app.Topology.NumExecutors() {
		t.Fatal("NumExecutors mismatch")
	}
	if rt.Cluster() != cl {
		t.Fatal("Cluster accessor wrong")
	}
	if rt.Config().MessageTimeout != 30*time.Second {
		t.Fatal("Config accessor wrong")
	}
}

func TestSlotExclusivityAcrossTopologies(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	mkApp := func(name string) *App {
		b := topology.NewBuilder(name, 1)
		b.Spout("s", 1).Output("default", "v")
		b.Bolt("b", 1).Shuffle("s")
		top, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return &App{
			Topology: top,
			Spouts:   map[string]func() Spout{"s": func() Spout { return &testSpout{limit: 1} }},
			Bolts:    map[string]func() Bolt{"b": func() Bolt { return &recordBolt{rec: newRecorder()} }},
		}
	}
	a1 := mkApp("one")
	if err := rt.Submit(a1, packAll(a1.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	a2 := mkApp("two")
	if err := rt.Submit(a2, packAll(a2.Topology, cl)); err == nil {
		t.Fatal("two topologies allowed on one slot")
	}
	// A different slot works.
	other := cluster.NewAssignment(0)
	for _, e := range a2.Topology.Executors() {
		other.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort + 1})
	}
	if err := rt.Submit(a2, other); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.MessageTimeout = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero timeout accepted")
	}
	bad2 := DefaultConfig()
	bad2.AckerCost = -1
	if err := bad2.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
	bad3 := DefaultConfig()
	bad3.Cost.BandwidthBps = 0
	if err := bad3.Validate(); err == nil {
		t.Fatal("bad cost model accepted")
	}
	if !TStormConfig().SmoothReassign {
		t.Fatal("TStormConfig not smooth")
	}
}

func TestCyclesHelpers(t *testing.T) {
	// 1 ms at 2000 MHz = 2e6 cycles.
	if got := Cycles(time.Millisecond, 2000); got != 2e6 {
		t.Fatalf("Cycles = %v, want 2e6", got)
	}
	c := ConstCost(42)
	if c(tuple.Tuple{}) != 42 {
		t.Fatal("ConstCost wrong")
	}
	p := PerByteCost(10, 2)
	if p(tuple.Tuple{Size: 5}) != 20 {
		t.Fatalf("PerByteCost = %v, want 20", p(tuple.Tuple{Size: 5}))
	}
}
