package engine

import (
	"testing"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

// slowAckSpout emits as fast as allowed; used to verify MaxPending.
type slowAckSpout struct {
	emitted int
}

func (s *slowAckSpout) Open(*Context) {}
func (s *slowAckSpout) NextTuple(em SpoutEmitter) {
	em.EmitWithID("", tuple.Values{s.emitted}, s.emitted)
	s.emitted++
}
func (s *slowAckSpout) Ack(any)  {}
func (s *slowAckSpout) Fail(any) {}

func TestMaxPendingThrottlesSpout(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("mp", 1)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 1).Shuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	spout := &slowAckSpout{}
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spout }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return slowBolt{} }},
		// The sink takes 100 ms per tuple: without a pending cap the
		// backlog would grow without bound.
		Costs:      map[string]CostFn{"sink": ConstCost(Cycles(100*time.Millisecond, 2000))},
		MaxPending: map[string]int{"spout": 5},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("mp")
	// Service rate is ~3/s (contended); in ~57s of uptime the spout may
	// emit roughly completions + cap, never the unthrottled thousands.
	if tm.RootsEmitted > tm.Completions+5+1 {
		t.Fatalf("MaxPending violated: emitted %d, completed %d", tm.RootsEmitted, tm.Completions)
	}
	if tm.Failed != 0 {
		t.Fatalf("throttled spout still failed %d tuples", tm.Failed)
	}
	if tm.Completions == 0 {
		t.Fatal("nothing completed")
	}
}

// directBolt forwards via EmitDirect to a fixed task of the next stage.
type directBolt struct{}

func (directBolt) Prepare(*Context) {}
func (directBolt) Execute(in tuple.Tuple, em Emitter) {
	em.EmitDirect("sink", 1, "", in.Values)
	// Out-of-range and unknown-consumer emissions are ignored, not fatal.
	em.EmitDirect("sink", 99, "", in.Values)
	em.EmitDirect("ghost", 0, "", in.Values)
}

func TestBoltEmitDirectAnchorsAndRoutes(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("bd", 1)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("mid", 1).Shuffle("spout").Output("default", "v")
	b.Bolt("sink", 3).Direct("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return &testSpout{limit: 10} }},
		Bolts: map[string]func() Bolt{
			"mid":  func() Bolt { return directBolt{} },
			"sink": func() Bolt { return &recordBolt{rec: rec} },
		},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(rec.byTask[1]) != 10 || rec.total() != 10 {
		t.Fatalf("byTask = %v, want all 10 on task 1", rec.byTask)
	}
	// The direct emission is anchored: trees complete.
	if tm := rt.Metrics("bd"); tm.Completions != 10 || tm.Failed != 0 {
		t.Fatalf("completions=%d failed=%d", tm.Completions, tm.Failed)
	}
}

// badStreamBolt emits on a stream that was never declared.
type badStreamBolt struct{}

func (badStreamBolt) Prepare(*Context) {}
func (badStreamBolt) Execute(in tuple.Tuple, em Emitter) {
	em.Emit("no-such-stream", in.Values)
}

func TestEmitOnUndeclaredStreamIsIgnored(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("us", 1)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("bad", 1).Shuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return &testSpout{limit: 5} }},
		Bolts:    map[string]func() Bolt{"bad": func() Bolt { return badStreamBolt{} }},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The bad emissions vanish but the input tuples still ack.
	if tm := rt.Metrics("us"); tm.Completions != 5 || tm.Failed != 0 {
		t.Fatalf("completions=%d failed=%d", tm.Completions, tm.Failed)
	}
}

// ctxProbe records its Context.
type ctxProbe struct {
	got []*Context
}

func (p *ctxProbe) Prepare(ctx *Context)         { p.got = append(p.got, ctx) }
func (p *ctxProbe) Execute(tuple.Tuple, Emitter) {}

func TestContextCarriesIdentity(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("ctx", 1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("probe", 3).Shuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	probe := &ctxProbe{}
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return &testSpout{limit: 1} }},
		Bolts:    map[string]func() Bolt{"probe": func() Bolt { return probe }},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(probe.got) != 3 {
		t.Fatalf("Prepare called %d times, want 3", len(probe.got))
	}
	seen := map[int]bool{}
	for _, ctx := range probe.got {
		if ctx.Topology != "ctx" || ctx.Component != "probe" || ctx.Parallelism != 3 {
			t.Fatalf("bad context %+v", ctx)
		}
		if ctx.Rand == nil {
			t.Fatal("context without Rand")
		}
		seen[ctx.Index] = true
	}
	if len(seen) != 3 {
		t.Fatalf("indexes = %v, want 0,1,2", seen)
	}
}

// statefulBolt counts tuples per incarnation.
type statefulBolt struct {
	incarnations *int
	seen         int
}

func (b *statefulBolt) Prepare(*Context)             { *b.incarnations++ }
func (b *statefulBolt) Execute(tuple.Tuple, Emitter) { b.seen++ }

func TestWorkerRestartRecreatesBoltState(t *testing.T) {
	// As in Storm, in-memory bolt state does not survive a worker
	// restart: a fresh instance is constructed.
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spoutDecl := &testSpout{}
	b := topology.NewBuilder("st", 1)
	b.SetAckers(1)
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("state", 1).Shuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	incarnations := 0
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return spoutDecl }},
		Bolts: map[string]func() Bolt{
			"state": func() Bolt { return &statefulBolt{incarnations: &incarnations} },
		},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if incarnations != 1 {
		t.Fatalf("incarnations = %d, want 1", incarnations)
	}
	rt.CrashWorker(cl.Slots()[0])
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if incarnations != 2 {
		t.Fatalf("incarnations after restart = %d, want 2", incarnations)
	}
}

func TestSpoutPlainEmitIsUnanchored(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	b := topology.NewBuilder("ua2", 1)
	b.SetAckers(1) // ackers exist, but plain Emit must bypass them
	b.Spout("spout", 1).Output("default", "v")
	b.Bolt("sink", 1).Shuffle("spout")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	app := &App{
		Topology: top,
		Spouts:   map[string]func() Spout{"spout": func() Spout { return &plainEmitSpout{} }},
		Bolts:    map[string]func() Bolt{"sink": func() Bolt { return &recordBolt{rec: rec} }},
	}
	if err := rt.Submit(app, packAll(top, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rec.total() != 10 {
		t.Fatalf("sink got %d, want 10", rec.total())
	}
	if tm := rt.Metrics("ua2"); tm.RootsEmitted != 0 || tm.Completions != 0 {
		t.Fatalf("unanchored emit tracked: %+v", tm)
	}
}

type plainEmitSpout struct{ n int }

func (s *plainEmitSpout) Open(*Context) {}
func (s *plainEmitSpout) NextTuple(em SpoutEmitter) {
	if s.n < 10 {
		em.Emit("", tuple.Values{s.n})
		s.n++
	}
}
func (s *plainEmitSpout) Ack(any)  {}
func (s *plainEmitSpout) Fail(any) {}

func TestMultiTopologyIsolation(t *testing.T) {
	// Two topologies share the cluster but not slots; each completes its
	// own tuples.
	cl := testCluster(t, 2)
	rt := mustRuntime(t, DefaultConfig(), cl)
	mk := func(name string) (*App, *recorder) {
		b := topology.NewBuilder(name, 1)
		b.SetAckers(1)
		b.Spout("s", 1).Output("default", "v")
		b.Bolt("b", 1).Shuffle("s")
		top, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		rec := newRecorder()
		return &App{
			Topology: top,
			Spouts:   map[string]func() Spout{"s": func() Spout { return &testSpout{limit: 20} }},
			Bolts:    map[string]func() Bolt{"b": func() Bolt { return &recordBolt{rec: rec} }},
		}, rec
	}
	a1, r1 := mk("alpha")
	a2, r2 := mk("beta")
	as1 := cluster.NewAssignment(0)
	for _, e := range a1.Topology.Executors() {
		as1.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
	}
	as2 := cluster.NewAssignment(0)
	for _, e := range a2.Topology.Executors() {
		as2.Assign(e, cluster.SlotID{Node: "node02", Port: cluster.BasePort})
	}
	if err := rt.Submit(a1, as1); err != nil {
		t.Fatal(err)
	}
	if err := rt.Submit(a2, as2); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r1.total() != 20 || r2.total() != 20 {
		t.Fatalf("totals = %d/%d, want 20 each", r1.total(), r2.total())
	}
	if rt.Metrics("alpha").Completions != 20 || rt.Metrics("beta").Completions != 20 {
		t.Fatal("per-topology completions wrong")
	}
}

func TestPerComponentStats(t *testing.T) {
	cl := testCluster(t, 1)
	rt := mustRuntime(t, DefaultConfig(), cl)
	spout := &testSpout{limit: 50}
	midRec, sinkRec := newRecorder(), newRecorder()
	app := chainApp(t, spout, midRec, sinkRec, 2, 1)
	if err := rt.Submit(app, packAll(app.Topology, cl)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	tm := rt.Metrics("test")
	spoutStats := tm.Component("spout")
	midStats := tm.Component("mid")
	sinkStats := tm.Component("sink")
	if spoutStats.Executed != 50 || spoutStats.Emitted != 50 {
		t.Fatalf("spout stats = %+v", spoutStats)
	}
	if midStats.Executed != 50 || midStats.Emitted != 50 {
		t.Fatalf("mid stats = %+v", midStats)
	}
	if sinkStats.Executed != 50 || sinkStats.Emitted != 0 {
		t.Fatalf("sink stats = %+v", sinkStats)
	}
	for _, name := range []string{"spout", "mid", "sink"} {
		if tm.Component(name).CPUCycles <= 0 {
			t.Fatalf("%s consumed no CPU", name)
		}
	}
}

func TestTransferBatchingDeliversEverythingWithOneNICSend(t *testing.T) {
	run := func(batch bool) (int64, int64, int64) {
		cl := testCluster(t, 2)
		cfg := DefaultConfig()
		if batch {
			cfg.BatchFlush = 2 * time.Millisecond
			cfg.BatchMaxTuples = 32
		}
		rt := mustRuntime(t, cfg, cl)
		spout := &testSpout{limit: 400}
		rec := newRecorder()
		app := chainApp(t, spout, newRecorder(), rec, 1, 1)
		// Four synchronized spout executors on node01 bursting at the same
		// instants; everything else on node02: every data hop crosses the
		// wire, and bursts find the NIC busy.
		spoutComp, _ := app.Topology.Component("spout")
		spoutComp.Parallelism = 4
		a := cluster.NewAssignment(0)
		for _, e := range app.Topology.Executors() {
			if e.Component == "spout" {
				a.Assign(e, cluster.SlotID{Node: "node01", Port: cluster.BasePort})
			} else {
				a.Assign(e, cluster.SlotID{Node: "node02", Port: cluster.BasePort})
			}
		}
		if err := rt.Submit(app, a); err != nil {
			t.Fatal(err)
		}
		if err := rt.RunFor(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		tm := rt.Metrics("test")
		return tm.Completions, tm.Failed, rt.nodes["node01"].nic.MessagesSent()
	}
	plainDone, plainFailed, plainSends := run(false)
	batchDone, batchFailed, batchSends := run(true)
	if plainDone != 400 || batchDone != 400 || plainFailed != 0 || batchFailed != 0 {
		t.Fatalf("completions plain=%d batch=%d failed=%d/%d",
			plainDone, batchDone, plainFailed, batchFailed)
	}
	// Batching must strictly reduce wire messages.
	if batchSends >= plainSends {
		t.Fatalf("batching sent %d wire messages, plain %d", batchSends, plainSends)
	}
}
