package engine

import (
	"fmt"
	"time"

	"tstorm/internal/acker"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/tuple"
)

type execKind int

const (
	spoutExec execKind = iota + 1
	boltExec
	ackerExec
)

type jobKind int

const (
	jobEmit     jobKind = iota + 1 // spout emit cycle
	jobData                        // data tuple for a bolt
	jobInit                        // acker: register root
	jobAck                         // acker: XOR update
	jobComplete                    // spout: tuple tree fully processed
	jobFail                        // spout: deliver Fail(msgID) to user code
)

type job struct {
	kind      jobKind
	gen       int64
	in        tuple.Tuple
	root      tuple.ID
	xor       tuple.ID
	spoutID   int // dense index of originating spout (acker protocol)
	emitAt    sim.Time
	deserCost float64
}

func jobFromMessage(m message) job {
	j := job{
		gen: m.gen, in: m.in, root: m.root, xor: m.xor,
		spoutID: m.spoutDense, emitAt: m.emitAt, deserCost: m.deserCost,
	}
	switch m.kind {
	case msgData:
		j.kind = jobData
	case msgInit:
		j.kind = jobInit
	case msgAck:
		j.kind = jobAck
	case msgComplete:
		j.kind = jobComplete
	}
	return j
}

// pendingRoot is a spout-side record of an outstanding (un-acked) root.
type pendingRoot struct {
	msgID  any
	emitAt sim.Time
	failed bool
	timer  *sim.Timer
}

// spoutLoopCost is the base CPU cost of one emit cycle even when the
// spout emits nothing.
var spoutLoopCost = Cycles(5*time.Microsecond, 2000)

// zombieRetention bounds how long failed pending entries are kept for
// late-completion measurement before being swept.
const zombieRetention = 5 * time.Minute

type executor struct {
	w     *worker
	id    topology.ExecutorID
	dense int
	comp  *topology.Component
	kind  execKind

	spout   Spout
	bolt    Bolt
	tracker *acker.Tracker
	cost    CostFn

	interval   time.Duration
	maxPending int

	queue []job
	head  int
	busy  bool
	dead  bool

	pending     map[tuple.ID]*pendingRoot
	outstanding int
	shuffleCtr  map[string]int

	// Stats (lifetime of this incarnation).
	processed int64
	emitted   int64
}

func (ex *executor) rt() *Runtime { return ex.w.rt }

func (ex *executor) enqueue(j job) {
	if ex.dead {
		return
	}
	ex.queue = append(ex.queue, j)
	ex.maybeStart()
}

func (ex *executor) queueLen() int { return len(ex.queue) - ex.head }

func (ex *executor) pop() job {
	j := ex.queue[ex.head]
	ex.queue[ex.head] = job{}
	ex.head++
	if ex.head > 64 && ex.head*2 >= len(ex.queue) {
		n := copy(ex.queue, ex.queue[ex.head:])
		ex.queue = ex.queue[:n]
		ex.head = 0
	}
	return j
}

// maybeStart begins servicing the queue head if the executor is idle and
// its worker is processing. User code runs at service start; its
// emissions are flushed when the service period ends.
func (ex *executor) maybeStart() {
	if ex.busy || ex.dead || ex.queueLen() == 0 || !ex.w.processing() {
		return
	}
	rt := ex.rt()
	j := ex.pop()
	ex.busy = true
	ns := rt.nodes[ex.w.slot.Node]
	speed := ns.effectiveMHz(&rt.cfg)
	cycles, flush := ex.execute(j)
	rt.cpu[ex.dense] += cycles
	if tm := rt.tmetrics[ex.id.Topology]; tm != nil {
		tm.Component(ex.id.Component).CPUCycles += cycles
	}
	dur := time.Duration(cycles / (speed * 1e6) * float64(time.Second))
	rt.sim.After(dur, func() {
		ex.busy = false
		if ex.dead {
			return
		}
		if flush != nil {
			flush()
		}
		ex.maybeStart()
	})
}

// workerSystemThreads is the number of always-spinning system threads
// (send + receive) each worker process runs besides its executors.
const workerSystemThreads = 2

// effectiveMHz is the per-thread CPU speed on this node right now. Storm
// 0.8 executor threads busy-spin on their disruptor queues, so every
// RESIDENT thread (executors plus each worker's system threads) consumes
// a core share whether or not it has work; each extra live worker process
// adds a context-switching penalty; and overcommitting the node's memory
// with worker footprints adds a paging penalty. Worker-node consolidation
// (§V) removes the last two and reduces the first.
func (ns *nodeState) effectiveMHz(cfg *Config) float64 {
	speed := ns.node.CoreMHz
	threads := ns.residentExecs + workerSystemThreads*ns.activeWorkers
	if threads > ns.node.Cores {
		speed *= float64(ns.node.Cores) / float64(threads)
	}
	if ns.activeWorkers > 1 {
		speed /= 1 + cfg.Cost.ContextSwitchPenalty*float64(ns.activeWorkers-1)
	}
	if cfg.WorkerMemMB > 0 && cfg.SwapPenalty > 0 {
		used := cfg.WorkerMemMB * float64(ns.activeWorkers)
		avail := float64(ns.node.MemMB) - cfg.ReservedMemMB
		if avail > 0 && used > avail {
			speed /= 1 + cfg.SwapPenalty*(used/avail-1)
		}
	}
	return speed
}

func (ex *executor) execute(j job) (float64, func()) {
	switch j.kind {
	case jobEmit:
		return ex.executeEmit()
	case jobData:
		return ex.executeData(j)
	case jobInit:
		return ex.executeInit(j)
	case jobAck:
		return ex.executeAck(j)
	case jobComplete:
		return ex.executeComplete(j)
	case jobFail:
		return ex.executeFail(j)
	default:
		panic(fmt.Sprintf("engine: unknown job kind %d", j.kind))
	}
}

// executeEmit runs one spout emit cycle and self-schedules the next one.
func (ex *executor) executeEmit() (float64, func()) {
	rt := ex.rt()
	cycles := spoutLoopCost
	var em *spoutEmitterImpl
	if ex.w.state == workerRunning && rt.sim.Now() >= ex.w.spoutHaltUntil &&
		(ex.maxPending == 0 || ex.outstanding < ex.maxPending) {
		em = &spoutEmitterImpl{ex: ex}
		ex.spout.NextTuple(em)
		for range em.roots {
			cycles += ex.cost(tuple.Tuple{})
		}
	}
	return cycles, func() {
		now := rt.sim.Now()
		if em != nil {
			ex.flushSpoutEmits(em, now)
		}
		rt.sim.After(ex.interval, func() {
			ex.enqueue(job{kind: jobEmit})
		})
	}
}

// flushSpoutEmits sends the buffered root emissions, registers pending
// state and arms the per-root timeout timers.
func (ex *executor) flushSpoutEmits(em *spoutEmitterImpl, now sim.Time) {
	rt := ex.rt()
	gen := ex.w.currentGen
	tm := rt.tmetrics[ex.id.Topology]
	for _, re := range em.roots {
		ex.emitted++
		cs := tm.Component(ex.id.Component)
		cs.Executed++
		cs.Emitted += int64(len(re.msgs))
		if re.root == 0 {
			// Unanchored: just send the data.
			for _, m := range re.msgs {
				m.gen = gen
				rt.send(ex, gen, m)
			}
			continue
		}
		tm.RootsEmitted++
		if len(re.msgs) == 0 {
			// No consumers: complete instantly.
			tm.Completions++
			tm.Latency.Add(now, 0)
			ex.spout.Ack(re.msgID)
			continue
		}
		root := re.root
		ex.pending[root] = &pendingRoot{msgID: re.msgID, emitAt: now}
		ex.outstanding++
		ex.pending[root].timer = rt.sim.After(rt.cfg.MessageTimeout, func() {
			ex.timeoutRoot(root)
		})
		for _, m := range re.msgs {
			m.gen = gen
			rt.send(ex, gen, m)
		}
		if ak, ok := ex.ackerTarget(root); ok {
			rt.send(ex, gen, message{
				kind: msgInit, gen: gen, target: ak,
				root: root, xor: re.initXor, spoutDense: ex.dense,
				emitAt: now, size: rt.cfg.ControlMsgSize,
			})
		}
	}
}

// timeoutRoot fires when a root's ack timeout expires.
func (ex *executor) timeoutRoot(root tuple.ID) {
	if ex.dead {
		return
	}
	p := ex.pending[root]
	if p == nil || p.failed {
		return
	}
	rt := ex.rt()
	p.failed = true
	ex.outstanding--
	tm := rt.tmetrics[ex.id.Topology]
	tm.Failed++
	tm.Failures.Add(rt.sim.Now(), 1)
	ex.enqueue(job{kind: jobFail, root: root})
}

// executeData runs a bolt on one input tuple.
func (ex *executor) executeData(j job) (float64, func()) {
	ex.processed++
	em := &boltEmitterImpl{ex: ex, in: j.in, gen: j.gen}
	ex.bolt.Execute(j.in, em)
	cs := ex.rt().tmetrics[ex.id.Topology].Component(ex.id.Component)
	cs.Executed++
	cs.Emitted += int64(len(em.msgs))
	cycles := j.deserCost + ex.cost(j.in)
	return cycles, func() {
		rt := ex.rt()
		for _, m := range em.msgs {
			rt.send(ex, j.gen, m)
		}
		if j.in.Root != 0 {
			if ak, ok := ex.ackerTarget(j.in.Root); ok {
				rt.send(ex, j.gen, message{
					kind: msgAck, gen: j.gen, target: ak,
					root: j.in.Root, xor: j.in.Edge ^ em.xorAcc,
					size: rt.cfg.ControlMsgSize,
				})
			}
		}
	}
}

func (ex *executor) executeInit(j job) (float64, func()) {
	ex.processed++
	rt := ex.rt()
	c, done := ex.tracker.Init(j.root, j.xor, j.spoutID, j.emitAt)
	cycles := rt.cfg.AckerCost + j.deserCost
	if !done {
		return cycles, nil
	}
	// Every ack raced ahead of the init: the tree completed the moment the
	// init merged. Notify the spout as a regular completion.
	spout := rt.denseRev[c.SpoutExec]
	return cycles, func() {
		rt.send(ex, j.gen, message{
			kind: msgComplete, gen: j.gen, target: spout,
			root: c.Root, size: rt.cfg.ControlMsgSize,
		})
	}
}

func (ex *executor) executeAck(j job) (float64, func()) {
	ex.processed++
	rt := ex.rt()
	c, done := ex.tracker.Ack(j.root, j.xor, rt.sim.Now())
	cycles := rt.cfg.AckerCost + j.deserCost
	if !done {
		return cycles, nil
	}
	spout := rt.denseRev[c.SpoutExec]
	return cycles, func() {
		rt.send(ex, j.gen, message{
			kind: msgComplete, gen: j.gen, target: spout,
			root: c.Root, size: rt.cfg.ControlMsgSize,
		})
	}
}

func (ex *executor) executeComplete(j job) (float64, func()) {
	rt := ex.rt()
	cycles := rt.cfg.NotifyCost + j.deserCost
	p := ex.pending[j.root]
	if p == nil {
		return cycles, nil
	}
	now := rt.sim.Now()
	tm := rt.tmetrics[ex.id.Topology]
	latencyMS := now.Sub(p.emitAt).Seconds() * 1e3
	tm.Latency.Add(now, latencyMS)
	tm.LatencyHist.Add(latencyMS)
	tm.Completions++
	if p.failed {
		tm.LateCompletions++
	} else {
		ex.outstanding--
	}
	p.timer.Cancel()
	delete(ex.pending, j.root)
	ex.spout.Ack(p.msgID)
	return cycles, nil
}

func (ex *executor) executeFail(j job) (float64, func()) {
	rt := ex.rt()
	p := ex.pending[j.root]
	if p != nil && p.failed {
		ex.spout.Fail(p.msgID)
	}
	return rt.cfg.NotifyCost, nil
}

// sweepZombies drops failed pending entries whose late completion never
// arrived within the retention window.
func (ex *executor) sweepZombies() {
	if ex.dead {
		return
	}
	now := ex.rt().sim.Now()
	for root, p := range ex.pending {
		if p.failed && now.Sub(p.emitAt) > ex.rt().cfg.MessageTimeout+zombieRetention {
			delete(ex.pending, root)
		}
	}
	if ex.tracker != nil {
		ex.tracker.Sweep(now, ex.rt().cfg.MessageTimeout+zombieRetention)
	}
}

// ackerTarget returns the acker executor responsible for a root, if the
// topology has ackers.
func (ex *executor) ackerTarget(root tuple.ID) (topology.ExecutorID, bool) {
	top := ex.rt().apps[ex.id.Topology].Topology
	n := top.Ackers()
	if n == 0 {
		return topology.ExecutorID{}, false
	}
	return topology.ExecutorID{
		Topology:  ex.id.Topology,
		Component: topology.AckerComponent,
		Index:     int(uint64(root) % uint64(n)),
	}, true
}

// ---- emission ----

// routeEmission resolves one logical emission to per-target data messages
// and accumulates the XOR of the new edge IDs (for anchoring).
func (ex *executor) routeEmission(stream string, vals tuple.Values, root tuple.ID) ([]message, tuple.ID, error) {
	if stream == "" {
		stream = topology.DefaultStream
	}
	rt := ex.rt()
	top := rt.apps[ex.id.Topology].Topology
	schema, ok := ex.comp.Outputs[stream]
	if !ok {
		return nil, 0, fmt.Errorf("engine: %v emits on undeclared stream %q", ex.id, stream)
	}
	size := tuple.SizeOf(vals)
	var msgs []message
	var xorAcc tuple.ID
	for _, edge := range top.Consumers(ex.comp.Name, stream) {
		if edge.Grouping.Type == topology.DirectGrouping {
			continue // only EmitDirect reaches direct subscribers
		}
		cons, _ := top.Component(edge.Consumer)
		for _, idx := range ex.chooseTargets(edge, cons.Parallelism, schema, vals) {
			var eid tuple.ID
			if root != 0 {
				eid = rt.newID()
				xorAcc ^= eid
			}
			msgs = append(msgs, message{
				kind:   msgData,
				target: topology.ExecutorID{Topology: ex.id.Topology, Component: edge.Consumer, Index: idx},
				in: tuple.Tuple{
					Root: root, Edge: eid, Stream: stream,
					SrcComponent: ex.comp.Name, SrcTask: ex.id.Index,
					Values: vals, Size: size,
				},
				size: size,
			})
		}
	}
	return msgs, xorAcc, nil
}

// chooseTargets picks the receiving task indexes for one consumer edge.
func (ex *executor) chooseTargets(edge topology.ConsumerEdge, parallelism int, schema tuple.Fields, vals tuple.Values) []int {
	switch edge.Grouping.Type {
	case topology.ShuffleGrouping:
		key := edge.Consumer + "\x00" + edge.Grouping.SourceStream
		i := ex.shuffleCtr[key]
		ex.shuffleCtr[key] = i + 1
		return []int{(i + ex.id.Index) % parallelism}
	case topology.LocalOrShuffleGrouping:
		// Prefer consumer tasks hosted by this very worker; fall back to
		// plain shuffle when the worker hosts none.
		var local []int
		for _, peer := range ex.w.execList {
			if peer.id.Component == edge.Consumer && !peer.dead {
				local = append(local, peer.id.Index)
			}
		}
		key := edge.Consumer + "\x00local\x00" + edge.Grouping.SourceStream
		i := ex.shuffleCtr[key]
		ex.shuffleCtr[key] = i + 1
		if len(local) > 0 {
			return []int{local[(i+ex.id.Index)%len(local)]}
		}
		return []int{(i + ex.id.Index) % parallelism}
	case topology.FieldsGrouping:
		key := ""
		for _, fn := range edge.Grouping.FieldNames {
			idx, ok := schema.Index(fn)
			if !ok || idx >= len(vals) {
				continue
			}
			key += tuple.KeyString(vals[idx]) + "\x1f"
		}
		return []int{tuple.HashKey(key, parallelism)}
	case topology.AllGrouping:
		out := make([]int, parallelism)
		for i := range out {
			out[i] = i
		}
		return out
	case topology.GlobalGrouping:
		return []int{0}
	default:
		return nil
	}
}

// routeDirect resolves an EmitDirect call to a single data message.
func (ex *executor) routeDirect(consumer string, taskIndex int, stream string, vals tuple.Values, root tuple.ID) (message, tuple.ID, bool) {
	if stream == "" {
		stream = topology.DefaultStream
	}
	rt := ex.rt()
	top := rt.apps[ex.id.Topology].Topology
	cons, ok := top.Component(consumer)
	if !ok || taskIndex < 0 || taskIndex >= cons.Parallelism {
		return message{}, 0, false
	}
	if _, ok := ex.comp.Outputs[stream]; !ok {
		return message{}, 0, false
	}
	var eid tuple.ID
	if root != 0 {
		eid = rt.newID()
	}
	size := tuple.SizeOf(vals)
	return message{
		kind:   msgData,
		target: topology.ExecutorID{Topology: ex.id.Topology, Component: consumer, Index: taskIndex},
		in: tuple.Tuple{
			Root: root, Edge: eid, Stream: stream,
			SrcComponent: ex.comp.Name, SrcTask: ex.id.Index,
			Values: vals, Size: size,
		},
		size: size,
	}, eid, true
}

// rootEmit is one buffered spout emission.
type rootEmit struct {
	root    tuple.ID
	initXor tuple.ID
	msgID   any
	msgs    []message
}

type spoutEmitterImpl struct {
	ex    *executor
	roots []rootEmit
}

var _ SpoutEmitter = (*spoutEmitterImpl)(nil)

func (e *spoutEmitterImpl) Emit(stream string, vals tuple.Values) {
	msgs, _, err := e.ex.routeEmission(stream, vals, 0)
	if err != nil {
		return
	}
	e.roots = append(e.roots, rootEmit{msgs: msgs})
}

func (e *spoutEmitterImpl) EmitWithID(stream string, vals tuple.Values, msgID any) {
	top := e.ex.rt().apps[e.ex.id.Topology].Topology
	root := tuple.ID(0)
	if top.Ackers() > 0 {
		root = e.ex.rt().newID()
	}
	msgs, xorAcc, err := e.ex.routeEmission(stream, vals, root)
	if err != nil {
		return
	}
	e.roots = append(e.roots, rootEmit{root: root, initXor: xorAcc, msgID: msgID, msgs: msgs})
}

func (e *spoutEmitterImpl) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	m, _, ok := e.ex.routeDirect(consumer, taskIndex, stream, vals, 0)
	if !ok {
		return
	}
	e.roots = append(e.roots, rootEmit{msgs: []message{m}})
}

type boltEmitterImpl struct {
	ex     *executor
	in     tuple.Tuple
	gen    int64
	msgs   []message
	xorAcc tuple.ID
}

var _ Emitter = (*boltEmitterImpl)(nil)

func (e *boltEmitterImpl) Emit(stream string, vals tuple.Values) {
	msgs, xorAcc, err := e.ex.routeEmission(stream, vals, e.in.Root)
	if err != nil {
		return
	}
	e.msgs = append(e.msgs, msgs...)
	e.xorAcc ^= xorAcc
}

func (e *boltEmitterImpl) EmitDirect(consumer string, taskIndex int, stream string, vals tuple.Values) {
	m, eid, ok := e.ex.routeDirect(consumer, taskIndex, stream, vals, e.in.Root)
	if !ok {
		return
	}
	e.msgs = append(e.msgs, m)
	e.xorAcc ^= eid
}
