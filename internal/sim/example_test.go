package sim_test

import (
	"fmt"
	"time"

	"tstorm/internal/sim"
)

// Events execute in virtual-time order on a single goroutine; a 1000 s
// experiment finishes in wall-clock milliseconds.
func ExampleEngine() {
	eng := sim.NewEngine(1)
	eng.After(3*time.Second, func() { fmt.Println("later at", eng.Now()) })
	eng.After(time.Second, func() { fmt.Println("first at", eng.Now()) })
	if err := eng.Run(); err != nil {
		panic(err)
	}
	// Output:
	// first at 1s
	// later at 3s
}
