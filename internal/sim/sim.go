// Package sim provides the discrete-event simulation (DES) kernel that the
// rest of the system runs on: a virtual clock, a deterministic event queue,
// cancellable timers and tickers, and a seeded random source.
//
// Everything scheduled on one Engine executes on a single goroutine in
// strict (time, insertion-order) order, so simulation components need no
// internal locking and every run with the same seed is bit-reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is an instant of virtual time, expressed as the elapsed duration
// since the start of the simulation (Time(0)).
type Time time.Duration

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as fractional seconds since simulation start.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Duration converts t to the duration elapsed since simulation start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats t like a time.Duration ("1m30s").
func (t Time) String() string { return time.Duration(t).String() }

// ErrStopped is returned by Run and RunUntil when the engine was stopped
// explicitly via Stop before the run completed.
var ErrStopped = errors.New("sim: engine stopped")

// Timer is a handle to a scheduled callback. The zero value is not a valid
// timer; timers are created by Engine.At and Engine.After.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from firing. It reports whether the
// cancellation was effective (false if the callback already ran or the
// timer was cancelled before).
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Ticker is a handle to a repeating callback created by Engine.Every.
type Ticker struct {
	stopped bool
	cur     *Timer
}

// Stop prevents any future firings of the ticker. Safe to call multiple
// times and from within the ticker's own callback.
func (tk *Ticker) Stop() {
	tk.stopped = true
	if tk.cur != nil {
		tk.cur.Cancel()
	}
}

type event struct {
	at        Time
	seq       uint64 // insertion order, breaks ties deterministically
	fn        func()
	cancelled bool
	fired     bool
	index     int // heap index
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation executor. It is not safe for
// concurrent use; all interaction must happen from the goroutine that calls
// Run/RunUntil (typically from within event callbacks).
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	running bool
	fired   uint64
}

// NewEngine returns an engine whose clock reads Time(0) and whose random
// source is deterministically seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsFired reports how many events have executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired
// (including cancelled events that have not been drained).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at instant t. Scheduling in the past panics: that
// is always a logic error in a deterministic simulation.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Every schedules fn to run first after start and then every period.
// period must be positive.
func (e *Engine) Every(start, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	tk := &Ticker{}
	var tick func()
	tick = func() {
		if tk.stopped {
			return
		}
		fn()
		if tk.stopped {
			return
		}
		tk.cur = e.After(period, tick)
	}
	tk.cur = e.After(start, tick)
	return tk
}

// Stop halts a Run/RunUntil in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called.
// It returns ErrStopped if stopped early.
func (e *Engine) Run() error { return e.run(Time(1<<62), false) }

// RunUntil executes all events with timestamps <= deadline, then advances
// the clock to exactly deadline. It returns ErrStopped if stopped early.
func (e *Engine) RunUntil(deadline Time) error { return e.run(deadline, true) }

func (e *Engine) run(deadline Time, advance bool) error {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&e.queue)
		if next.cancelled {
			continue
		}
		e.now = next.at
		next.fired = true
		e.fired++
		next.fn()
		if e.stopped {
			return ErrStopped
		}
	}
	if advance && e.now < deadline {
		e.now = deadline
	}
	return nil
}
