package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(90 * time.Second)
	if got := t1.Seconds(); got != 90 {
		t.Fatalf("Seconds() = %v, want 90", got)
	}
	if got := t1.Sub(t0); got != 90*time.Second {
		t.Fatalf("Sub = %v, want 90s", got)
	}
	if got := t1.String(); got != "1m30s" {
		t.Fatalf("String = %q, want 1m30s", got)
	}
	if got := t1.Duration(); got != 90*time.Second {
		t.Fatalf("Duration = %v, want 90s", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(3*time.Second, func() { got = append(got, 3) })
	e.After(1*time.Second, func() { got = append(got, 1) })
	e.After(2*time.Second, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(time.Second), func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want insertion order", got)
		}
	}
}

func TestSchedulingInsideCallback(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	e.After(time.Second, func() {
		fired = append(fired, "outer")
		e.After(time.Second, func() { fired = append(fired, "inner") })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(Time(0), func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.After(-time.Second, func() { ran = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("callback did not run")
	}
	if e.Now() != Time(0) {
		t.Fatalf("Now = %v, want 0", e.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tm := e.After(time.Second, func() { ran = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled timer fired")
	}
}

func TestCancelAfterFiringReportsFalse(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(time.Second, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Cancel() {
		t.Fatal("Cancel after firing should report false")
	}
}

func TestNilTimerCancel(t *testing.T) {
	var tm *Timer
	if tm.Cancel() {
		t.Fatal("nil timer Cancel should report false")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine(1)
	var at []float64
	tk := e.Every(10*time.Second, 20*time.Second, func() {
		at = append(at, e.Now().Seconds())
	})
	if err := e.RunUntil(Time(75 * time.Second)); err != nil {
		t.Fatal(err)
	}
	tk.Stop()
	want := []float64{10, 30, 50, 70}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(time.Second, time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("fired %d times, want 3", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every with zero period did not panic")
		}
	}()
	NewEngine(1).Every(0, 0, func() {})
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {})
	e.After(time.Minute, func() {})
	if err := e.RunUntil(Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(30*time.Second) {
		t.Fatalf("Now = %v, want 30s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// The later event is still deliverable.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != Time(time.Minute) {
		t.Fatalf("Now = %v, want 1m", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.After(time.Second, func() { n++; e.Stop() })
	e.After(2*time.Second, func() { n++ })
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	// A subsequent Run resumes with remaining events.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		_ = e.Run()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventsFiredCountsOnlyFired(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {})
	tm := e.After(2*time.Second, func() {})
	tm.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.EventsFired() != 1 {
		t.Fatalf("EventsFired = %d, want 1", e.EventsFired())
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	run := func(seed uint64) []int {
		e := NewEngine(seed)
		var draws []int
		e.Every(0, time.Second, func() {
			draws = append(draws, e.Rand().IntN(1000))
		})
		_ = e.RunUntil(Time(10 * time.Second))
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical draws")
	}
}

// Property: regardless of the (arbitrary) order delays are scheduled in,
// events fire sorted by delay, and the clock is monotonically non-decreasing.
func TestPropertyFiringOrderSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []uint16
		last := Time(-1)
		monotonic := true
		for _, d := range delays {
			d := d
			e.After(time.Duration(d)*time.Millisecond, func() {
				if e.Now() < last {
					monotonic = false
				}
				last = e.Now()
				fired = append(fired, d)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if !monotonic || len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset leaves exactly the rest to fire.
func TestPropertyCancellationSubset(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		e := NewEngine(3)
		fired := make([]bool, count)
		timers := make([]*Timer, count)
		for i := 0; i < count; i++ {
			i := i
			timers[i] = e.After(time.Duration(i+1)*time.Second, func() { fired[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				timers[i].Cancel()
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			cancelled := mask&(1<<uint(i)) != 0
			if fired[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, next)
		}
	}
	e.After(time.Microsecond, next)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
