package predictor_test

import (
	"fmt"

	"tstorm/internal/predictor"
)

// Holt double-exponential smoothing forecasts one monitoring period
// ahead, reacting to ramps faster than the paper's EWMA.
func ExampleHolt() {
	h := predictor.NewHolt(0.8, 0.5)
	for _, mhz := range []float64{100, 200, 300, 400} {
		h.Update(mhz)
	}
	fmt.Printf("forecast beyond the last sample: %v\n", h.Value() > 400)
	// Output: forecast beyond the last sample: true
}
