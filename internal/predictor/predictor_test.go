package predictor

import (
	"math"
	"testing"
	"testing/quick"
)

func feed(e Estimator, samples ...float64) Estimator {
	for _, s := range samples {
		e.Update(s)
	}
	return e
}

func TestEWMAMatchesPaperFormula(t *testing.T) {
	e := feed(NewEWMA(0.5), 10, 20, 0)
	if got := e.Value(); got != 7.5 {
		t.Fatalf("EWMA = %v, want 7.5", got)
	}
	if EWMAFactory(0.5)() == nil {
		t.Fatal("factory returned nil")
	}
}

func TestSlidingMean(t *testing.T) {
	s := NewSlidingMean(3)
	if s.Value() != 0 {
		t.Fatal("empty window not 0")
	}
	feed(s, 3)
	if s.Value() != 3 {
		t.Fatalf("partial window mean = %v, want 3", s.Value())
	}
	feed(s, 6, 9)
	if s.Value() != 6 {
		t.Fatalf("full window mean = %v, want 6", s.Value())
	}
	feed(s, 12) // evicts 3
	if s.Value() != 9 {
		t.Fatalf("rolled mean = %v, want 9", s.Value())
	}
	if SlidingMeanFactory(4)() == nil {
		t.Fatal("factory returned nil")
	}
}

func TestSlidingMeanBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSlidingMean(0) did not panic")
		}
	}()
	NewSlidingMean(0)
}

func TestHoltTracksRampsAheadOfEWMA(t *testing.T) {
	// Load ramps 100, 200, ..., 1000. Holt forecasts the next step;
	// EWMA lags behind the latest sample.
	h := NewHolt(0.8, 0.5)
	e := NewEWMA(0.5)
	last := 0.0
	for v := 100.0; v <= 1000; v += 100 {
		h.Update(v)
		e.Update(v)
		last = v
	}
	if h.Value() <= last {
		t.Fatalf("Holt forecast %v does not extrapolate past %v", h.Value(), last)
	}
	if e.Value() >= last {
		t.Fatalf("EWMA %v should lag the ramp peak %v", e.Value(), last)
	}
	// On the ramp, Holt's forecast error for the NEXT value (1100) is
	// smaller than EWMA's.
	holtErr := math.Abs(h.Value() - 1100)
	ewmaErr := math.Abs(e.Value() - 1100)
	if holtErr >= ewmaErr {
		t.Fatalf("Holt error %v not below EWMA error %v on a ramp", holtErr, ewmaErr)
	}
}

func TestHoltNeverNegative(t *testing.T) {
	h := feed(NewHolt(0.9, 0.9), 1000, 500, 10, 0, 0)
	if h.Value() < 0 {
		t.Fatalf("Holt forecast negative: %v", h.Value())
	}
}

func TestHoltFewSamples(t *testing.T) {
	h := NewHolt(0.5, 0.5)
	h.Update(10)
	if h.Value() != 10 {
		t.Fatalf("one-sample Holt = %v, want 10", h.Value())
	}
	h.Update(20)
	if h.Value() != 30 { // level 20 + trend 10
		t.Fatalf("two-sample Holt = %v, want 30", h.Value())
	}
	if HoltFactory(0.5, 0.5)() == nil {
		t.Fatal("factory returned nil")
	}
}

func TestHoltBadGainsPanic(t *testing.T) {
	for _, g := range [][2]float64{{0, 0.5}, {0.5, 0}, {1.1, 0.5}, {0.5, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHolt(%v, %v) did not panic", g[0], g[1])
				}
			}()
			NewHolt(g[0], g[1])
		}()
	}
}

func TestWindowMax(t *testing.T) {
	w := NewWindowMax(3)
	if w.Value() != 0 {
		t.Fatal("empty max not 0")
	}
	feed(w, 5, 9, 2)
	if w.Value() != 9 {
		t.Fatalf("max = %v, want 9", w.Value())
	}
	feed(w, 1) // evicts 5
	if w.Value() != 9 {
		t.Fatalf("max = %v, want 9", w.Value())
	}
	feed(w, 1) // evicts 9
	if w.Value() != 2 {
		t.Fatalf("max after eviction = %v, want 2", w.Value())
	}
	if WindowMaxFactory(2)() == nil {
		t.Fatal("factory returned nil")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewWindowMax(0) did not panic")
			}
		}()
		NewWindowMax(0)
	}()
}

// Property: the averaging estimators stay within [min, max] of their
// inputs; WindowMax stays within the window's actual max.
func TestPropertyEstimatesBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ests := []Estimator{NewEWMA(0.5), NewSlidingMean(4), NewWindowMax(4)}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			for _, e := range ests {
				e.Update(v)
			}
		}
		for _, e := range ests[:2] {
			if e.Value() < lo-1e-9 || e.Value() > hi+1e-9 {
				return false
			}
		}
		return ests[2].Value() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: on a constant signal every estimator converges to it.
func TestPropertyConstantSignalConverges(t *testing.T) {
	f := func(v uint16) bool {
		c := float64(v)
		ests := []Estimator{NewEWMA(0.5), NewSlidingMean(3), NewHolt(0.5, 0.5), NewWindowMax(3)}
		for i := 0; i < 50; i++ {
			for _, e := range ests {
				e.Update(c)
			}
		}
		for _, e := range ests {
			if math.Abs(e.Value()-c) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
