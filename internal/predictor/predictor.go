// Package predictor provides pluggable load estimators for the monitoring
// pipeline. The paper smooths instantaneous readings with the EWMA
// Y = αY + (1−α)·Sample and notes that "other machine learning based
// estimation/prediction methods can be easily integrated" (§IV-B); this
// package is that integration point. The load database accepts any
// Estimator factory, so the schedule generator transparently consumes
// whichever estimate the operator configures.
package predictor

import (
	"fmt"

	"tstorm/internal/metrics"
)

// Estimator folds in instantaneous samples and produces the smoothed (or
// forecast) value the scheduler should plan with.
type Estimator interface {
	// Update folds in one sample.
	Update(sample float64)
	// Value returns the current estimate.
	Value() float64
}

// Factory creates one estimator instance per monitored signal.
type Factory func() Estimator

// EWMA is the paper's estimator.
type EWMA struct {
	inner *metrics.EWMA
}

// NewEWMA returns the paper's α-weighted moving average.
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{inner: metrics.NewEWMA(alpha)}
}

// Update folds in one sample.
func (e *EWMA) Update(sample float64) { e.inner.Update(sample) }

// Value returns the current estimate.
func (e *EWMA) Value() float64 { return e.inner.Value() }

// EWMAFactory returns a Factory for the paper's estimator.
func EWMAFactory(alpha float64) Factory {
	return func() Estimator { return NewEWMA(alpha) }
}

// SlidingMean averages the last N samples — less smooth than EWMA but
// with bounded memory of the past.
type SlidingMean struct {
	window []float64
	next   int
	filled int
	sum    float64
}

// NewSlidingMean returns a mean over the last n samples (n ≥ 1).
func NewSlidingMean(n int) *SlidingMean {
	if n < 1 {
		panic(fmt.Sprintf("predictor: window %d must be ≥ 1", n))
	}
	return &SlidingMean{window: make([]float64, n)}
}

// Update folds in one sample.
func (s *SlidingMean) Update(sample float64) {
	if s.filled == len(s.window) {
		s.sum -= s.window[s.next]
	} else {
		s.filled++
	}
	s.window[s.next] = sample
	s.sum += sample
	s.next = (s.next + 1) % len(s.window)
}

// Value returns the window mean (0 before any sample).
func (s *SlidingMean) Value() float64 {
	if s.filled == 0 {
		return 0
	}
	return s.sum / float64(s.filled)
}

// SlidingMeanFactory returns a Factory for window means.
func SlidingMeanFactory(n int) Factory {
	return func() Estimator { return NewSlidingMean(n) }
}

// Holt is double exponential smoothing: it tracks a level and a trend and
// forecasts one sampling period ahead, reacting to load ramps faster than
// any averaging estimator — useful for overload prevention.
type Holt struct {
	alpha, beta  float64
	level, trend float64
	samples      int
}

// NewHolt returns a Holt estimator with level gain alpha and trend gain
// beta, both in (0, 1].
func NewHolt(alpha, beta float64) *Holt {
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		panic(fmt.Sprintf("predictor: Holt gains (%v, %v) out of (0,1]", alpha, beta))
	}
	return &Holt{alpha: alpha, beta: beta}
}

// Update folds in one sample.
func (h *Holt) Update(sample float64) {
	h.samples++
	switch h.samples {
	case 1:
		h.level = sample
		return
	case 2:
		h.trend = sample - h.level
		h.level = sample
		return
	}
	prevLevel := h.level
	h.level = h.alpha*sample + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
}

// Value forecasts one period ahead (level + trend). Forecasts never go
// negative: load cannot.
func (h *Holt) Value() float64 {
	v := h.level + h.trend
	if v < 0 {
		return 0
	}
	return v
}

// HoltFactory returns a Factory for Holt estimators.
func HoltFactory(alpha, beta float64) Factory {
	return func() Estimator { return NewHolt(alpha, beta) }
}

// WindowMax tracks the maximum of the last N samples — the conservative
// choice when the scheduler must never under-provision.
type WindowMax struct {
	window []float64
	next   int
	filled int
}

// NewWindowMax returns a max over the last n samples (n ≥ 1).
func NewWindowMax(n int) *WindowMax {
	if n < 1 {
		panic(fmt.Sprintf("predictor: window %d must be ≥ 1", n))
	}
	return &WindowMax{window: make([]float64, n)}
}

// Update folds in one sample.
func (w *WindowMax) Update(sample float64) {
	if w.filled < len(w.window) {
		w.filled++
	}
	w.window[w.next] = sample
	w.next = (w.next + 1) % len(w.window)
}

// Value returns the window max (0 before any sample).
func (w *WindowMax) Value() float64 {
	m := 0.0
	for i := 0; i < w.filled; i++ {
		if w.window[i] > m {
			m = w.window[i]
		}
	}
	return m
}

// WindowMaxFactory returns a Factory for window maxima.
func WindowMaxFactory(n int) Factory {
	return func() Estimator { return NewWindowMax(n) }
}

// Interface checks.
var (
	_ Estimator = (*EWMA)(nil)
	_ Estimator = (*SlidingMean)(nil)
	_ Estimator = (*Holt)(nil)
	_ Estimator = (*WindowMax)(nil)
)
