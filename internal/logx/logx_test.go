package logx

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func fixed(l *Logger) *Logger {
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLogfmtLineShape(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, Info)).With("worker", "node01:6700").With("gen", "3")
	l.Infof("configured %d executors", 4)
	want := `ts=2026-08-08T12:00:00.000Z level=info worker=node01:6700 gen=3 msg="configured 4 executors"` + "\n"
	if b.String() != want {
		t.Errorf("line = %q\nwant   %q", b.String(), want)
	}
}

func TestLevelGating(t *testing.T) {
	var b strings.Builder
	l := New(&b, Warn)
	l.Debugf("nope")
	l.Infof("nope")
	l.Warnf("yes")
	l.Errorf("also")
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "level=warn") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("gated output: %q", b.String())
	}
	if !l.Enabled(Error) || l.Enabled(Info) {
		t.Error("Enabled disagrees with the threshold")
	}
	Nop().Errorf("discarded") // must not panic
	if Nop().Enabled(Error) {
		t.Error("Nop logger claims to be enabled")
	}
}

func TestValueQuoting(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, Info)).With("k", `a "b"`+"\nc")
	l.Infof("plain")
	got := b.String()
	if !strings.Contains(got, `k="a \"b\"\nc"`) {
		t.Errorf("quoting wrong: %q", got)
	}
	if strings.Count(got, "\n") != 1 {
		t.Errorf("multi-line output: %q", got)
	}
}

func TestWithDoesNotMutateParent(t *testing.T) {
	var b strings.Builder
	parent := fixed(New(&b, Info)).With("worker", "w1")
	c1 := parent.With("gen", "1")
	c2 := parent.With("gen", "2")
	c1.Infof("one")
	c2.Infof("two")
	parent.Infof("bare")
	out := b.String()
	if !strings.Contains(out, "gen=1") || !strings.Contains(out, "gen=2") {
		t.Errorf("children missing fields: %q", out)
	}
	if strings.Contains(strings.Split(out, "\n")[2], "gen=") {
		t.Errorf("parent grew a child's field: %q", out)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": Debug, "INFO": Info, "warn": Warn, "warning": Warn,
		"error": Error, "off": Off, "none": Off, "": Info, "bogus": Info,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

// TestConcurrentWriters checks line atomicity under -race: every line
// must be complete, no interleaving.
func TestConcurrentWriters(t *testing.T) {
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	l := New(w, Info)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child := l.With("worker", "w")
			for i := 0; i < 200; i++ {
				child.Infof("g%d i%d", g, i)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	mu.Unlock()
	if len(lines) != 800 {
		t.Fatalf("%d lines, want 800", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, " msg=") {
			t.Fatalf("torn line: %q", ln)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
