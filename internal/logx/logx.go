// Package logx is a tiny leveled, structured (logfmt) logger for the
// runtime's operational messages. Worker processes write one line per
// event with stable key=value fields (ts, level, worker, gen, msg) so
// dist stderr is machine-parseable — no multi-line output, no free-form
// prefixes. Zero dependencies, safe for concurrent use.
package logx

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level gates which messages are written.
type Level int8

const (
	Debug Level = iota
	Info
	Warn
	Error
	// Off discards everything.
	Off
)

// String names the level for the logfmt level= field.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "off"
	}
}

// ParseLevel maps a name to its level (defaulting to Info on unknown
// input) — for TSTORM_LOG-style environment knobs.
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return Debug
	case "warn", "warning":
		return Warn
	case "error":
		return Error
	case "off", "none":
		return Off
	default:
		return Info
	}
}

// Field is one bound key=value pair.
type Field struct {
	Key   string
	Value string
}

// Logger writes logfmt lines at or above its level. With returns a child
// sharing the sink and level but carrying extra bound fields, so a
// worker binds worker= and gen= once and every line carries them.
type Logger struct {
	out    *sink
	level  Level
	fields []Field
	now    func() time.Time
}

// sink serializes writes from all derived loggers.
type sink struct {
	mu sync.Mutex
	w  io.Writer
}

// New returns a logger writing to w at the given threshold.
func New(w io.Writer, level Level) *Logger {
	return &Logger{out: &sink{w: w}, level: level, now: time.Now}
}

// Nop returns a logger that discards everything.
func Nop() *Logger {
	return &Logger{out: &sink{w: io.Discard}, level: Off, now: time.Now}
}

// With returns a child logger with an extra bound field. The receiver is
// unchanged; children are cheap to mint per-connection or per-generation.
func (l *Logger) With(key, value string) *Logger {
	child := *l
	child.fields = append(append([]Field(nil), l.fields...), Field{key, value})
	return &child
}

// Level reports the logger's threshold.
func (l *Logger) Level() Level { return l.level }

// Enabled reports whether messages at lv would be written.
func (l *Logger) Enabled(lv Level) bool { return lv >= l.level && l.level != Off }

// Debugf / Infof / Warnf / Errorf format msg and write one logfmt line.
func (l *Logger) Debugf(format string, args ...any) { l.logf(Debug, format, args...) }
func (l *Logger) Infof(format string, args ...any)  { l.logf(Info, format, args...) }
func (l *Logger) Warnf(format string, args ...any)  { l.logf(Warn, format, args...) }
func (l *Logger) Errorf(format string, args ...any) { l.logf(Error, format, args...) }

func (l *Logger) logf(lv Level, format string, args ...any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	for _, f := range l.fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		writeValue(&b, f.Value)
	}
	b.WriteString(" msg=")
	writeValue(&b, fmt.Sprintf(format, args...))
	b.WriteByte('\n')
	l.out.mu.Lock()
	io.WriteString(l.out.w, b.String())
	l.out.mu.Unlock()
}

// writeValue emits v bare when it is a clean token, quoted (with escaped
// quotes, backslashes, and newlines) otherwise.
func writeValue(b *strings.Builder, v string) {
	if v != "" && !strings.ContainsAny(v, " \t\n\"\\=") {
		b.WriteString(v)
		return
	}
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}
