// Package trace records structured runtime events — worker lifecycle,
// assignment publications, overload detections, failures, message drops —
// so experiments and operators can reconstruct *why* the cluster behaved
// as it did. The recorder is a bounded ring buffer with optional live
// subscribers; tracing is off unless a recorder is attached.
package trace

import (
	"fmt"
	"sync"
	"time"

	"tstorm/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the engine and the scheduling layer.
const (
	WorkerStarted       Kind = "worker-started"
	WorkerStopping      Kind = "worker-stopping"
	WorkerKilled        Kind = "worker-killed"
	AssignmentPublished Kind = "assignment-published"
	MessageDropped      Kind = "message-dropped"
	OverloadDetected    Kind = "overload-detected"
	NodeFailed          Kind = "node-failed"
	NodeRecovered       Kind = "node-recovered"
	RescuePublished     Kind = "rescue-published"
	TopologyKilled      Kind = "topology-killed"
	ScheduleGenerated   Kind = "schedule-generated"
	AlgorithmSwapped    Kind = "algorithm-swapped"
)

// Event kinds emitted by the live (wall-clock) runtime. They carry Wall
// instead of At.
const (
	ReassignApplied  Kind = "reassign-applied"
	SpoutsHalted     Kind = "spouts-halted"
	SpoutsResumed    Kind = "spouts-resumed"
	QueuesDrained    Kind = "queues-drained"
	ExecutorMigrated Kind = "executor-migrated"
	MonitorSampled   Kind = "monitor-sampled"
	WorkerCrashed    Kind = "worker-crashed"
	WorkerRestarted  Kind = "worker-restarted"
	TupleReplayed    Kind = "tuple-replayed"
)

// Event kinds emitted by the SLO health engine (internal/health). Where
// names the rule; Detail carries the from→to levels and the probed value.
const (
	HealthDegraded  Kind = "health-degraded"
	HealthCritical  Kind = "health-critical"
	HealthRecovered Kind = "health-recovered"
)

// Event is one recorded occurrence. Simulated components stamp At; the
// live runtime stamps Wall. Exactly one of the two is meaningful — Wall's
// zero value marks a simulated event.
type Event struct {
	At sim.Time
	// Wall is the wall-clock instant, set by the live runtime.
	Wall     time.Time
	Kind     Kind
	Topology string
	// Where names the node/slot involved, when applicable.
	Where string
	// Detail is a short human-readable elaboration.
	Detail string
}

// WallEvent builds a wall-clock event stamped now.
func WallEvent(kind Kind, topo, where, detail string) Event {
	return Event{Wall: time.Now(), Kind: kind, Topology: topo, Where: where, Detail: detail}
}

// String renders "t=123.4s kind topo@where: detail" for simulated events
// and "t=15:04:05.000 kind topo@where: detail" for wall-clock ones.
func (e Event) String() string {
	var s string
	if !e.Wall.IsZero() {
		s = fmt.Sprintf("t=%s %s", e.Wall.Format("15:04:05.000"), e.Kind)
	} else {
		s = fmt.Sprintf("t=%.1fs %s", e.At.Seconds(), e.Kind)
	}
	if e.Topology != "" {
		s += " " + e.Topology
	}
	if e.Where != "" {
		s += "@" + e.Where
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Recorder is a bounded, thread-safe event sink.
type Recorder struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	filled  int
	dropped int64
	subs    []func(Event)
}

// NewRecorder returns a recorder keeping the most recent capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Emit records an event and notifies subscribers. When the ring is full
// the oldest event is overwritten and counted as dropped.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	if r.filled == len(r.ring) {
		r.dropped++
	} else {
		r.filled++
	}
	r.ring[r.next] = ev
	r.next = (r.next + 1) % len(r.ring)
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Subscribe registers a live callback, invoked synchronously on Emit.
func (r *Recorder) Subscribe(fn func(Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, fn)
}

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.filled)
	start := (r.next - r.filled + len(r.ring)) % len(r.ring)
	for i := 0; i < r.filled; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Filter returns the retained events of one kind, oldest first.
func (r *Recorder) Filter(kind Kind) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// Dropped reports how many events were evicted from the ring.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports how many events are retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filled
}
