package trace

import (
	"strings"
	"testing"
	"time"

	"tstorm/internal/sim"
)

func at(s float64) sim.Time { return sim.Time(time.Duration(s * float64(time.Second))) }

func TestEmitAndEvents(t *testing.T) {
	r := NewRecorder(10)
	r.Emit(Event{At: at(1), Kind: WorkerStarted, Topology: "wc", Where: "node01:6700"})
	r.Emit(Event{At: at(2), Kind: WorkerKilled, Topology: "wc", Where: "node01:6700"})
	evs := r.Events()
	if len(evs) != 2 || r.Len() != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != WorkerStarted || evs[1].Kind != WorkerKilled {
		t.Fatalf("order wrong: %v", evs)
	}
	if r.Dropped() != 0 {
		t.Fatal("dropped on non-full ring")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: at(float64(i)), Kind: MessageDropped})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].At != at(2) || evs[2].At != at(4) {
		t.Fatalf("kept wrong window: %v", evs)
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(10)
	r.Emit(Event{Kind: WorkerStarted})
	r.Emit(Event{Kind: OverloadDetected})
	r.Emit(Event{Kind: WorkerStarted})
	if got := len(r.Filter(WorkerStarted)); got != 2 {
		t.Fatalf("Filter = %d, want 2", got)
	}
	if got := len(r.Filter(NodeFailed)); got != 0 {
		t.Fatalf("Filter(absent) = %d, want 0", got)
	}
}

func TestSubscribe(t *testing.T) {
	r := NewRecorder(2)
	var seen []Kind
	r.Subscribe(func(ev Event) { seen = append(seen, ev.Kind) })
	r.Emit(Event{Kind: NodeFailed})
	r.Emit(Event{Kind: NodeRecovered})
	if len(seen) != 2 || seen[0] != NodeFailed {
		t.Fatalf("subscriber saw %v", seen)
	}
}

func TestEventString(t *testing.T) {
	ev := Event{At: at(12.3), Kind: OverloadDetected, Topology: "wc", Where: "node03", Detail: "7200 MHz"}
	s := ev.String()
	for _, want := range []string{"t=12.3s", "overload-detected", "wc", "@node03", "7200 MHz"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	bare := Event{At: at(1), Kind: WorkerStarted}.String()
	if strings.Contains(bare, "@") || strings.Contains(bare, ":  ") {
		t.Errorf("bare event renders extras: %q", bare)
	}
}

func TestTinyCapacityClamped(t *testing.T) {
	r := NewRecorder(0)
	r.Emit(Event{Kind: WorkerStarted})
	if r.Len() != 1 {
		t.Fatal("capacity clamp failed")
	}
}
