package trace

import (
	"strings"
	"testing"
	"time"
)

// TestWallEventString checks that a wall-clock event renders its clock
// time, and a simulated event keeps the seconds rendering.
func TestWallEventString(t *testing.T) {
	wall := time.Date(2026, 8, 5, 13, 4, 5, 678e6, time.UTC)
	ev := Event{Wall: wall, Kind: ExecutorMigrated, Topology: "wc",
		Where: "node02:6700", Detail: "queue handed off"}
	s := ev.String()
	for _, want := range []string{"t=13:04:05.678", "executor-migrated", "wc@node02:6700", "queue handed off"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	simEv := Event{At: at(2.5), Kind: SpoutsHalted}
	if got := simEv.String(); !strings.HasPrefix(got, "t=2.5s spouts-halted") {
		t.Errorf("sim event renders %q", got)
	}
}

// TestWallEventStampsNow sanity-checks the constructor.
func TestWallEventStamps(t *testing.T) {
	before := time.Now()
	ev := WallEvent(MonitorSampled, "", "", "round")
	if ev.Wall.Before(before) || time.Since(ev.Wall) > time.Minute {
		t.Fatalf("WallEvent stamped %v", ev.Wall)
	}
	if ev.Kind != MonitorSampled || ev.Detail != "round" {
		t.Fatalf("fields lost: %+v", ev)
	}
}

// TestRecorderMixesSimAndWall ensures one ring can hold both event
// families (the live engine and simulated runtime may share a recorder in
// parity tests).
func TestRecorderMixesSimAndWall(t *testing.T) {
	r := NewRecorder(4)
	r.Emit(Event{At: at(1), Kind: WorkerStarted})
	r.Emit(WallEvent(ReassignApplied, "wc", "", "moved 3"))
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("retained %d events", len(evs))
	}
	if !evs[0].Wall.IsZero() || evs[1].Wall.IsZero() {
		t.Fatalf("wall stamps wrong: %+v", evs)
	}
}
