package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tstorm/internal/sim"
)

// Render writes a human-readable report of the figure: the summary table,
// the latency series as aligned columns (one row per minute bucket), node
// annotations and notes.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	b.WriteString(f.Title + "\n")
	b.WriteString(strings.Repeat("=", len(f.Title)) + "\n\n")

	if len(f.Summary) > 0 {
		metricW, paperW := len("metric"), len("paper")
		for _, r := range f.Summary {
			metricW = max(metricW, len(r.Metric))
			paperW = max(paperW, len(r.Paper))
		}
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", metricW, "metric", paperW, "paper", "measured")
		fmt.Fprintf(&b, "%s  %s  %s\n", strings.Repeat("-", metricW),
			strings.Repeat("-", paperW), strings.Repeat("-", len("measured")))
		for _, r := range f.Summary {
			fmt.Fprintf(&b, "%-*s  %-*s  %s\n", metricW, r.Metric, paperW, r.Paper, r.Measured)
		}
		b.WriteString("\n")
	}

	if len(f.Series) > 0 {
		b.WriteString(f.seriesTable())
		b.WriteString("\n")
	}

	for _, label := range sortedStepLabels(f.NodeSteps) {
		fmt.Fprintf(&b, "nodes(%s):", label)
		for _, s := range f.NodeSteps[label] {
			fmt.Fprintf(&b, " %gs→%g", s.At.Seconds(), s.Value)
		}
		b.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sortedStepLabels[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// seriesTable aligns all series on shared minute buckets.
func (f *Figure) seriesTable() string {
	type key = sim.Time
	buckets := map[key]bool{}
	values := make([]map[key]float64, len(f.Series))
	for i, s := range f.Series {
		values[i] = make(map[key]float64, len(s.Points))
		for _, p := range s.Points {
			buckets[p.Start] = true
			values[i][p.Start] = p.Mean
		}
	}
	times := make([]key, 0, len(buckets))
	for t := range buckets {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "t(s)")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %14s", truncate(s.Label, 14))
	}
	b.WriteString("\n")
	for _, t := range times {
		fmt.Fprintf(&b, "%8.0f", t.Seconds())
		for i := range f.Series {
			if v, ok := values[i][t]; ok {
				fmt.Fprintf(&b, "  %14.3f", v)
			} else {
				fmt.Fprintf(&b, "  %14s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// CSV writes the figure's series in long form:
// figure,series,t_seconds,mean,count,max.
func (f *Figure) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("figure,series,t_seconds,mean,count,max\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%.0f,%.6f,%d,%.6f\n",
				f.ID, csvEscape(s.Label), p.Start.Seconds(), p.Mean, p.Count, p.Max)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
