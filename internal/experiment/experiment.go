// Package experiment is the evaluation harness: it assembles the paper's
// cluster (Table II: 10 nodes, dual 2.0 GHz dual-core Xeons, 1 Gbps),
// runs a workload under a chosen scheduler for the experiment duration,
// and collects the series the paper plots — 1-minute average processing
// times, failed-tuple counts and worker nodes in use. Every figure of §V
// has a generator in figures.go.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/docstore"
	"tstorm/internal/engine"
	"tstorm/internal/loaddb"
	"tstorm/internal/metrics"
	"tstorm/internal/monitor"
	"tstorm/internal/redisq"
	"tstorm/internal/scheduler"
	"tstorm/internal/sim"
	"tstorm/internal/topology"
	"tstorm/internal/trace"
	"tstorm/internal/workloads"
)

// SchedulerKind selects the scheduling system under test.
type SchedulerKind string

// The schedulers compared in §V.
const (
	// SchedStormDefault is stock Storm with the default round-robin
	// scheduler (the paper's "Storm" baseline).
	SchedStormDefault SchedulerKind = "storm-default"
	// SchedTStorm is the full T-Storm stack: monitors, load DB, schedule
	// generator running Algorithm 1, custom scheduler, smooth
	// re-assignment.
	SchedTStorm SchedulerKind = "tstorm"
	// SchedAnielloOnline is Storm plus the DEBS'13 online scheduler.
	SchedAnielloOnline SchedulerKind = "aniello-online"
	// SchedAnielloOffline is Storm with the DEBS'13 offline scheduler
	// applied at submission.
	SchedAnielloOffline SchedulerKind = "aniello-offline"
	// SchedLoadBalanced is the traffic-blind ablation: runtime-load-aware
	// least-loaded placement under T-Storm's one-slot-per-node rule.
	SchedLoadBalanced SchedulerKind = "load-balanced"
	// SchedPinned applies a hand-built fixed assignment (Figs. 2/3).
	SchedPinned SchedulerKind = "pinned"
)

// WorkloadKind selects the application under test.
type WorkloadKind string

// The paper's workloads.
const (
	WorkloadThroughput WorkloadKind = "throughput"
	WorkloadWordCount  WorkloadKind = "wordcount"
	WorkloadLogStream  WorkloadKind = "logstream"
	WorkloadChain      WorkloadKind = "chain"
)

// Config describes one experiment run.
type Config struct {
	Name      string
	Workload  WorkloadKind
	Scheduler SchedulerKind
	// Gamma is the consolidation factor (T-Storm only).
	Gamma float64
	// Nodes is the cluster size (paper: 10).
	Nodes int
	// Duration is the run length (paper: 1000 s).
	Duration time.Duration
	// StabilizeAfter is the cutoff for the stable-mean summary (the
	// paper "counts average processing times after" this instant).
	StabilizeAfter time.Duration
	Seed           uint64

	// FeedRate is lines/s for the queue-fed workloads (0 = default).
	FeedRate float64
	// Workers overrides the topology's requested worker count N_u.
	Workers int
	// ChainCfg overrides the chain workload's shape (Figs. 2/3).
	ChainCfg *workloads.ChainConfig
	// PinAssignment builds the fixed placement for SchedPinned, given
	// the built topology and cluster.
	PinAssignment func(*topology.Topology, *cluster.Cluster) *cluster.Assignment
	// SmoothOverride forces smooth re-assignment on (1) or off (-1);
	// 0 keeps the scheduler's default. Used by the ablation benches.
	SmoothOverride int
	// GenerationPeriod overrides the schedule generation period
	// (paper default: 300 s).
	GenerationPeriod time.Duration
	// Trace, when non-nil, receives the run's structured runtime events.
	Trace *trace.Recorder
	// Batching enables Storm 0.8-style transfer batching (1 ms flush),
	// used by the batching ablation.
	Batching bool
}

// settleMargin is how long after the last re-assignment the system is
// given to stabilize before stable means are counted.
const settleMargin = 120 * time.Second

// settledMean averages the latency series from the later of minStart and
// (last re-assignment + settleMargin), weighting buckets by sample count.
// It falls back to the whole-series mean when the settled window is empty.
func settledMean(res *Result, minStart time.Duration) float64 {
	cut := sim.Time(minStart)
	if n := len(res.Reassignments); n > 0 {
		if settled := res.Reassignments[n-1].At.Add(settleMargin); settled > cut {
			cut = settled
		}
	}
	var sum float64
	var count int64
	for _, p := range res.Latency {
		if p.Start >= cut {
			sum += p.Sum
			count += p.Count
		}
	}
	if count == 0 {
		// The settle window extends past the run's end (short runs): use
		// the freshest bucket instead of polluting the mean with the
		// re-assignment spike.
		n := len(res.Latency)
		for _, p := range res.Latency[max(0, n-1):] {
			sum += p.Sum
			count += p.Count
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// defaultFeedRates reproduce moderate utilization on the 10-node cluster.
var defaultFeedRates = map[WorkloadKind]float64{
	WorkloadWordCount: 120,
	WorkloadLogStream: 220,
}

// Result collects everything a figure needs from one run.
type Result struct {
	Name      string
	Scheduler SchedulerKind
	Gamma     float64

	// Latency is the 1-minute average processing-time series (ms).
	Latency []metrics.Point
	// Failures is the per-minute failed-tuple series.
	Failures []metrics.Point
	// Nodes is the worker-nodes-in-use step series.
	Nodes []metrics.StepPoint

	// StableMean is the average processing time (ms) counting samples
	// after the system stabilized: from StabilizeAfter or, if later, from
	// settleMargin past the last re-assignment (the paper counts "after
	// the system stabilized at about 500s").
	StableMean float64
	// FinalNodes is the node count of the last assignment.
	FinalNodes int
	// P50 and P99 are whole-run latency percentiles in milliseconds.
	P50, P99 float64
	// Components copies the per-component execution counters.
	Components map[string]engine.ComponentStats
	// Placement summarizes the final assignment per node.
	Placement []PlacementRow

	RootsEmitted    int64
	Completions     int64
	LateCompletions int64
	Failed          int64
	Dropped         int64
	SinkWrites      int64
	Reassignments   []engine.ReassignEvent
	// SimEvents is the number of simulation events executed (cost probe).
	SimEvents uint64
}

// PlacementRow is one node's share of the final assignment.
type PlacementRow struct {
	Node      string
	Slots     int
	Executors int
}

// Validate fills defaults and checks the config.
func (c *Config) Validate() error {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.Duration == 0 {
		c.Duration = 1000 * time.Second
	}
	if c.StabilizeAfter == 0 {
		c.StabilizeAfter = c.Duration / 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch c.Workload {
	case WorkloadThroughput, WorkloadWordCount, WorkloadLogStream, WorkloadChain:
	default:
		return fmt.Errorf("experiment: unknown workload %q", c.Workload)
	}
	switch c.Scheduler {
	case SchedStormDefault, SchedTStorm, SchedAnielloOnline, SchedAnielloOffline, SchedLoadBalanced:
	case SchedPinned:
		if c.PinAssignment == nil {
			return fmt.Errorf("experiment: pinned scheduler needs PinAssignment")
		}
	default:
		return fmt.Errorf("experiment: unknown scheduler %q", c.Scheduler)
	}
	if c.Scheduler == SchedTStorm && c.Gamma == 0 {
		c.Gamma = 1
	}
	return nil
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The paper's testbed: IBM blades with two 2.0 GHz dual-core Xeons
	// (4 cores × 2000 MHz) and 4 slots per node.
	cl, err := cluster.Uniform(cfg.Nodes, 4, 2000, 4)
	if err != nil {
		return nil, err
	}

	ecfg := engine.DefaultConfig()
	if cfg.Scheduler == SchedTStorm {
		ecfg = engine.TStormConfig()
	}
	switch cfg.SmoothOverride {
	case 1:
		ecfg.SmoothReassign = true
	case -1:
		ecfg.SmoothReassign = false
	}
	ecfg.Seed = cfg.Seed
	ecfg.Trace = cfg.Trace
	if cfg.Batching {
		ecfg.BatchFlush = time.Millisecond
		ecfg.BatchMaxTuples = 16
	}
	rt, err := engine.NewRuntime(ecfg, cl)
	if err != nil {
		return nil, err
	}

	app, sink, cleanup, err := buildWorkload(rt.Sim(), cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	initial, err := initialAssignment(cfg, app, cl)
	if err != nil {
		return nil, err
	}
	if err := rt.Submit(app, initial); err != nil {
		return nil, err
	}

	// The T-Storm architecture (and the Aniello online baseline, which
	// also reschedules at runtime) needs monitors and a generator.
	switch cfg.Scheduler {
	case SchedTStorm:
		db := loaddb.New(0.5)
		monitor.Start(rt, db, monitor.DefaultPeriod)
		gcfg := core.DefaultGeneratorConfig()
		if cfg.GenerationPeriod > 0 {
			gcfg.GenerationPeriod = cfg.GenerationPeriod
		}
		if _, err := core.StartGenerator(rt, db, gcfg, core.NewTrafficAware(cfg.Gamma)); err != nil {
			return nil, err
		}
		core.StartCustomScheduler(rt, core.DefaultFetchPeriod)
	case SchedAnielloOnline, SchedLoadBalanced:
		var algo scheduler.Algorithm = scheduler.AnielloOnline{}
		if cfg.Scheduler == SchedLoadBalanced {
			algo = scheduler.LoadBalanced{}
		}
		db := loaddb.New(0.5)
		monitor.Start(rt, db, monitor.DefaultPeriod)
		gcfg := core.DefaultGeneratorConfig()
		gcfg.OverloadThreshold = 1 // no overload trigger in these baselines
		if cfg.GenerationPeriod > 0 {
			gcfg.GenerationPeriod = cfg.GenerationPeriod
		}
		if _, err := core.StartGenerator(rt, db, gcfg, algo); err != nil {
			return nil, err
		}
		core.StartCustomScheduler(rt, core.DefaultFetchPeriod)
	}

	if err := rt.RunFor(cfg.Duration); err != nil {
		return nil, err
	}

	tm := rt.Metrics(app.Topology.Name())
	res := &Result{
		Name:            cfg.Name,
		Scheduler:       cfg.Scheduler,
		Gamma:           cfg.Gamma,
		Latency:         tm.Latency.Points(),
		Failures:        tm.Failures.Points(),
		Nodes:           tm.NodesInUse.Steps(),
		P50:             tm.LatencyHist.Quantile(0.5),
		P99:             tm.LatencyHist.Quantile(0.99),
		FinalNodes:      int(tm.NodesInUse.Last()),
		RootsEmitted:    tm.RootsEmitted,
		Completions:     tm.Completions,
		LateCompletions: tm.LateCompletions,
		Failed:          tm.Failed,
		Dropped:         tm.Dropped,
		Reassignments:   tm.Reassignments,
		SimEvents:       rt.Sim().EventsFired(),
	}
	res.Components = make(map[string]engine.ComponentStats, len(tm.Components))
	for name, cs := range tm.Components {
		res.Components[name] = *cs
	}
	if a, ok := rt.CurrentAssignment(app.Topology.Name()); ok {
		perNode := map[string]*PlacementRow{}
		slotSeen := map[cluster.SlotID]bool{}
		for _, slot := range a.Executors {
			row := perNode[string(slot.Node)]
			if row == nil {
				row = &PlacementRow{Node: string(slot.Node)}
				perNode[string(slot.Node)] = row
			}
			row.Executors++
			if !slotSeen[slot] {
				slotSeen[slot] = true
				row.Slots++
			}
		}
		for _, row := range perNode {
			res.Placement = append(res.Placement, *row)
		}
		sort.Slice(res.Placement, func(i, j int) bool { return res.Placement[i].Node < res.Placement[j].Node })
	}
	res.StableMean = settledMean(res, cfg.StabilizeAfter)
	if sink != nil {
		res.SinkWrites = sink.TotalWrites()
	}
	if math.IsNaN(res.StableMean) {
		res.StableMean = 0
	}
	return res, nil
}

// buildWorkload constructs the app, its external substrates and feeders.
func buildWorkload(eng *sim.Engine, cfg Config) (*engine.App, *docstore.Store, func(), error) {
	nop := func() {}
	switch cfg.Workload {
	case WorkloadThroughput:
		tcfg := workloads.DefaultThroughputConfig()
		if cfg.Workers > 0 {
			tcfg.Workers = cfg.Workers
		}
		app, err := workloads.NewThroughputTest(tcfg)
		return app, nil, nop, err

	case WorkloadChain:
		ccfg := workloads.DefaultChainConfig()
		if cfg.ChainCfg != nil {
			ccfg = *cfg.ChainCfg
		}
		if cfg.Workers > 0 {
			ccfg.Workers = cfg.Workers
		}
		app, err := workloads.NewChain(ccfg)
		return app, nil, nop, err

	case WorkloadWordCount:
		queue := redisq.NewServer()
		sink := docstore.NewStore()
		wcfg := workloads.DefaultWordCountConfig()
		wcfg.Queue, wcfg.Sink = queue, sink
		if cfg.Workers > 0 {
			wcfg.Workers = cfg.Workers
		}
		app, err := workloads.NewWordCount(wcfg)
		if err != nil {
			return nil, nil, nop, err
		}
		rate := cfg.FeedRate
		if rate == 0 {
			rate = defaultFeedRates[WorkloadWordCount]
		}
		stop := workloads.StartCorpusFeeder(eng, queue, wcfg.QueueKey, rate)
		return app, sink, stop, nil

	case WorkloadLogStream:
		queue := redisq.NewServer()
		sink := docstore.NewStore()
		lcfg := workloads.DefaultLogStreamConfig()
		lcfg.Queue, lcfg.Sink = queue, sink
		if cfg.Workers > 0 {
			lcfg.Workers = cfg.Workers
		}
		app, err := workloads.NewLogStream(lcfg)
		if err != nil {
			return nil, nil, nop, err
		}
		rate := cfg.FeedRate
		if rate == 0 {
			rate = defaultFeedRates[WorkloadLogStream]
		}
		stop := workloads.StartLogFeeder(eng, queue, lcfg.QueueKey, cfg.Seed, rate)
		return app, sink, stop, nil
	}
	return nil, nil, nop, fmt.Errorf("experiment: unknown workload %q", cfg.Workload)
}

// initialAssignment computes the placement applied at submission.
func initialAssignment(cfg Config, app *engine.App, cl *cluster.Cluster) (*cluster.Assignment, error) {
	in := &scheduler.Input{Topologies: []*topology.Topology{app.Topology}, Cluster: cl}
	switch cfg.Scheduler {
	case SchedPinned:
		return cfg.PinAssignment(app.Topology, cl), nil
	case SchedTStorm, SchedLoadBalanced:
		return scheduler.TStormInitial{}.Schedule(in)
	case SchedAnielloOffline:
		return scheduler.AnielloOffline{}.Schedule(in)
	default:
		return scheduler.RoundRobin{}.Schedule(in)
	}
}
