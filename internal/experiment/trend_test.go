package experiment

import (
	"testing"
	"time"
)

// gammaTrend runs Storm plus T-Storm at the paper's γ values and asserts
// the §V shape: T-Storm always beats the default scheduler, higher γ uses
// fewer nodes, and deeper consolidation costs some latency back (the
// paper's warning not to "greedily set γ to a large value").
func gammaTrend(t *testing.T, wl WorkloadKind, gammas []float64, wantNodes []int) {
	t.Helper()
	dur := 600 * time.Second
	storm, err := Run(Config{Name: "trend-storm", Workload: wl, Scheduler: SchedStormDefault, Duration: dur})
	if err != nil {
		t.Fatal(err)
	}
	stormMean := storm.StableMean
	if storm.Failed > 0 {
		t.Fatalf("Storm baseline unstable: %d failures", storm.Failed)
	}
	var prev float64
	for i, g := range gammas {
		res, err := Run(Config{Name: "trend-ts", Workload: wl, Scheduler: SchedTStorm, Gamma: g, Duration: dur})
		if err != nil {
			t.Fatal(err)
		}
		mean := res.StableMean
		t.Logf("%s γ=%.1f: %.2fms on %d nodes (Storm %.2fms on %d)",
			wl, g, mean, res.FinalNodes, stormMean, storm.FinalNodes)
		if res.FinalNodes != wantNodes[i] {
			t.Errorf("γ=%v used %d nodes, want %d", g, res.FinalNodes, wantNodes[i])
		}
		if mean >= stormMean {
			t.Errorf("γ=%v did not beat Storm: %.2f vs %.2f ms", g, mean, stormMean)
		}
		if res.Failed > res.RootsEmitted/100 {
			t.Errorf("γ=%v failed too many: %d", g, res.Failed)
		}
		if i > 0 && mean < prev {
			t.Errorf("γ=%v latency %.2f improved over smaller γ's %.2f; consolidation should cost",
				g, mean, prev)
		}
		prev = mean
	}
}

func TestWordCountGammaTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("long shape test")
	}
	gammaTrend(t, WorkloadWordCount, []float64{1, 1.8, 2.2}, []int{10, 7, 5})
}

func TestLogStreamGammaTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("long shape test")
	}
	gammaTrend(t, WorkloadLogStream, []float64{1, 1.7, 2}, []int{10, 7, 5})
}
