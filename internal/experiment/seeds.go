package experiment

import (
	"fmt"
	"math"
)

// Aggregate summarizes one metric across seeds.
type Aggregate struct {
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	N      int
}

// String renders "mean ± stddev (n=N)".
func (a Aggregate) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", a.Mean, a.StdDev, a.N)
}

func aggregate(vals []float64) Aggregate {
	a := Aggregate{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if a.N == 0 {
		return Aggregate{}
	}
	for _, v := range vals {
		a.Mean += v
		a.Min = math.Min(a.Min, v)
		a.Max = math.Max(a.Max, v)
	}
	a.Mean /= float64(a.N)
	for _, v := range vals {
		a.StdDev += (v - a.Mean) * (v - a.Mean)
	}
	if a.N > 1 {
		a.StdDev = math.Sqrt(a.StdDev / float64(a.N-1))
	} else {
		a.StdDev = 0
	}
	return a
}

// MultiResult is the cross-seed aggregation of one experiment config.
type MultiResult struct {
	Name       string
	StableMean Aggregate
	FinalNodes Aggregate
	Failed     Aggregate
	Dropped    Aggregate
	// Runs holds the individual per-seed results.
	Runs []*Result
}

// RunSeeds executes the experiment once per seed and aggregates the
// headline metrics — the simulation is deterministic per seed, so this
// measures sensitivity to random routing/ID choices, not run-to-run noise.
func RunSeeds(cfg Config, seeds []uint64) (*MultiResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiment: no seeds")
	}
	mr := &MultiResult{Name: cfg.Name}
	var stable, nodes, failed, dropped []float64
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		res, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		mr.Runs = append(mr.Runs, res)
		stable = append(stable, res.StableMean)
		nodes = append(nodes, float64(res.FinalNodes))
		failed = append(failed, float64(res.Failed))
		dropped = append(dropped, float64(res.Dropped))
	}
	mr.StableMean = aggregate(stable)
	mr.FinalNodes = aggregate(nodes)
	mr.Failed = aggregate(failed)
	mr.Dropped = aggregate(dropped)
	return mr, nil
}
