package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Workload: "nope", Scheduler: SchedStormDefault},
		{Workload: WorkloadChain, Scheduler: "nope"},
		{Workload: WorkloadChain, Scheduler: SchedPinned}, // no PinAssignment
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	// Defaults fill in.
	cfg := Config{Workload: WorkloadChain, Scheduler: SchedStormDefault}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes != 10 || cfg.Duration != 1000*time.Second || cfg.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	tcfg := Config{Workload: WorkloadChain, Scheduler: SchedTStorm}
	if err := tcfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if tcfg.Gamma != 1 {
		t.Fatalf("tstorm default gamma = %v, want 1", tcfg.Gamma)
	}
}

func TestFig2Shape(t *testing.T) {
	fig, err := Fig2(Options{Duration: 300 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	n1 := fig.Results["n1w1"].StableMean
	n5w5 := fig.Results["n5w5"].StableMean
	n5w10 := fig.Results["n5w10"].StableMean
	t.Logf("n1w1=%.3fms n5w5=%.3fms n5w10=%.3fms", n1, n5w5, n5w10)
	if !(n1 < n5w5 && n5w5 < n5w10) {
		t.Fatalf("Observation 1 shape violated: %.3f, %.3f, %.3f", n1, n5w5, n5w10)
	}
	if fig.Results["n1w1"].Completions == 0 {
		t.Fatal("n1w1 completed nothing")
	}
}

func TestFig3OverloadShape(t *testing.T) {
	fig, err := Fig3(Options{Duration: 180 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res := fig.Results["overload"]
	if res.Failed == 0 {
		t.Fatal("no failed tuples under overload")
	}
	peak := maxMean(res.Latency)
	t.Logf("peak latency %.0fms, failed %d", peak, res.Failed)
	if peak < 1000 {
		t.Fatalf("overload peak %.0fms too small for Observation 2", peak)
	}
}

func TestFig5QuickShape(t *testing.T) {
	// Shortened Throughput Test comparison at γ=1.7: T-Storm must beat
	// Storm substantially and use fewer nodes.
	dur := 600 * time.Second
	storm, err := Run(Config{
		Name: "q-storm", Workload: WorkloadThroughput, Scheduler: SchedStormDefault,
		Duration: dur, StabilizeAfter: 300 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Run(Config{
		Name: "q-tstorm", Workload: WorkloadThroughput, Scheduler: SchedTStorm, Gamma: 1.7,
		Duration: dur, StabilizeAfter: 400 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("storm=%.3fms (%d nodes), tstorm=%.3fms (%d nodes), speedup=%.0f%%",
		storm.StableMean, storm.FinalNodes, ts.StableMean, ts.FinalNodes,
		100*(1-ts.StableMean/storm.StableMean))
	if storm.FinalNodes != 10 {
		t.Fatalf("Storm used %d nodes, want all 10", storm.FinalNodes)
	}
	if ts.FinalNodes >= storm.FinalNodes {
		t.Fatalf("T-Storm used %d nodes, not fewer than Storm's %d", ts.FinalNodes, storm.FinalNodes)
	}
	if ts.StableMean >= storm.StableMean/2 {
		t.Fatalf("T-Storm %.3fms not at least 2× faster than Storm %.3fms",
			ts.StableMean, storm.StableMean)
	}
	if ts.Failed > ts.RootsEmitted/50 {
		t.Fatalf("T-Storm failed too many tuples: %d of %d", ts.Failed, ts.RootsEmitted)
	}
}

func TestFig9OverloadRecovery(t *testing.T) {
	fig, err := Fig9(Options{Duration: 600 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	res := fig.Results["T-Storm"]
	t.Logf("final nodes=%d, reassignments=%d, peak=%.0fms, stable=%.1fms",
		res.FinalNodes, len(res.Reassignments), maxMean(res.Latency), res.StableMean)
	if res.FinalNodes < 2 {
		t.Fatal("overload handling did not spread beyond one node")
	}
	if len(res.Reassignments) < 2 {
		t.Fatal("no overload-triggered re-assignment")
	}
	peak := maxMean(res.Latency)
	if res.StableMean >= peak/10 {
		t.Fatalf("latency did not recover: peak %.0fms, stable %.1fms", peak, res.StableMean)
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig, err := Fig2(Options{Duration: 180 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 2", "n1w1", "n5w5", "n5w10", "paper", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := fig.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "figure,series,t_seconds,mean,count,max\n") {
		t.Fatalf("csv header wrong: %q", csv.String()[:60])
	}
	if !strings.Contains(csv.String(), "2,n1w1,") {
		t.Fatal("csv missing series rows")
	}
}

func TestGeneratorsRegistry(t *testing.T) {
	gens := Generators()
	ids := GeneratorIDs()
	if len(gens) != len(ids) {
		t.Fatalf("registry (%d) and ID list (%d) disagree", len(gens), len(ids))
	}
	for _, id := range ids {
		if gens[id] == nil {
			t.Errorf("generator %q missing", id)
		}
	}
}

func TestChartRendering(t *testing.T) {
	fig, err := Fig2(Options{Duration: 180 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fig.Chart(&sb, 8, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"*", "o", "+", "n1w1", "n5w10", "t=0s"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Log scale renders too.
	var sb2 strings.Builder
	if err := fig.Chart(&sb2, 8, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "log-scale") {
		t.Error("log-scale footer missing")
	}
	// Empty figure degrades gracefully.
	var sb3 strings.Builder
	if err := (&Figure{}).Chart(&sb3, 8, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb3.String(), "no series") {
		t.Error("empty chart message missing")
	}
}

func TestGammaSweepShort(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ten simulations")
	}
	fig, err := GammaSweep(Options{Duration: 420 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want latency + nodes", len(fig.Series))
	}
	// Nodes monotonically non-increasing along γ, latency non-decreasing
	// from the lowest to the highest γ endpoint.
	nodes := fig.Series[1].Points
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Mean > nodes[i-1].Mean {
			t.Fatalf("node curve not non-increasing at %d: %v", i, nodes)
		}
	}
	lat := fig.Series[0].Points
	if lat[len(lat)-1].Mean < lat[0].Mean {
		t.Fatalf("latency at max γ (%v) below γ=1 (%v)", lat[len(lat)-1].Mean, lat[0].Mean)
	}
	if fig.Results["storm"] == nil {
		t.Fatal("storm baseline missing")
	}
}

func TestTableIIFigure(t *testing.T) {
	fig, err := TableII(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Summary) < 8 {
		t.Fatalf("summary rows = %d", len(fig.Summary))
	}
	for _, row := range fig.Summary {
		if row.Measured == "" {
			t.Fatalf("row %q unmeasured", row.Metric)
		}
	}
}
