package experiment

import (
	"fmt"
	"sort"
	"time"

	"tstorm/internal/cluster"
	"tstorm/internal/metrics"
	"tstorm/internal/topology"
	"tstorm/internal/workloads"
)

// Options tunes figure generation. Zero values use the paper's settings;
// tests pass a shorter Duration.
type Options struct {
	// Duration overrides each run's length (0 = the figure's paper
	// duration, typically 1000 s).
	Duration time.Duration
	// Seed overrides the simulation seed (0 = 1).
	Seed uint64
}

func (o Options) duration(paper time.Duration) time.Duration {
	if o.Duration > 0 {
		return o.Duration
	}
	return paper
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []metrics.Point
}

// SummaryRow is one paper-vs-measured comparison line.
type SummaryRow struct {
	Metric   string
	Paper    string
	Measured string
}

// Figure is a regenerated table/figure of the paper.
type Figure struct {
	ID    string
	Title string
	// Series holds the plotted lines (1-minute average processing time
	// unless noted).
	Series []Series
	// NodeSteps annotates node-count changes per run (the "#Nodes=…"
	// labels of Figs. 5-10).
	NodeSteps map[string][]metrics.StepPoint
	// Summary compares headline values against the paper.
	Summary []SummaryRow
	Notes   []string
	// Results gives access to the full per-run data.
	Results map[string]*Result
}

// Generators returns every figure generator keyed by figure ID.
func Generators() map[string]func(Options) (*Figure, error) {
	return map[string]func(Options) (*Figure, error){
		"2":         Fig2,
		"3":         Fig3,
		"5":         Fig5,
		"6":         Fig6,
		"8":         Fig8,
		"9":         Fig9,
		"10":        Fig10,
		"headline":  Headline,
		"baselines": Baselines,
		"gamma":     GammaSweep,
		"table2":    TableII,
	}
}

// GeneratorIDs lists figure IDs in presentation order.
func GeneratorIDs() []string {
	return []string{"table2", "2", "3", "5", "6", "8", "9", "10", "headline", "baselines", "gamma"}
}

// PinAllOnFirstSlot places every executor on the first slot of the first
// node (the n1w1 placement of Fig. 2).
func PinAllOnFirstSlot(top *topology.Topology, cl *cluster.Cluster) *cluster.Assignment {
	return pinAllOn(top, cl)
}

// PinSpread returns a placement builder spreading executors round-robin
// over `workers` slots across `nodes` nodes (the n5w5/n5w10 placements).
func PinSpread(nodes, workers int) func(*topology.Topology, *cluster.Cluster) *cluster.Assignment {
	return pinSpread(nodes, workers)
}

// pinAllOn places every executor on the first slot of the first node
// (the n1w1 placement).
func pinAllOn(top *topology.Topology, cl *cluster.Cluster) *cluster.Assignment {
	a := cluster.NewAssignment(0)
	slot := cl.Slots()[0]
	for _, e := range top.Executors() {
		a.Assign(e, slot)
	}
	return a
}

// pinSpread places executors round-robin over `workers` slots spread over
// `nodes` nodes (ports filled per node as needed).
func pinSpread(nodes, workers int) func(*topology.Topology, *cluster.Cluster) *cluster.Assignment {
	return func(top *topology.Topology, cl *cluster.Cluster) *cluster.Assignment {
		a := cluster.NewAssignment(0)
		all := cl.Nodes()
		if nodes > len(all) {
			nodes = len(all)
		}
		slots := make([]cluster.SlotID, 0, workers)
		for i := 0; i < workers; i++ {
			n := all[i%nodes]
			port := cluster.BasePort + i/nodes
			slots = append(slots, cluster.SlotID{Node: n.ID, Port: port})
		}
		for i, e := range top.Executors() {
			a.Assign(e, slots[i%len(slots)])
		}
		return a
	}
}

// Fig2 reproduces Observation 1: the chain topology under three fixed
// placements — n1w1 (1 node, 1 worker), n5w5 (5 nodes, 5 workers, the
// default scheduler's placement) and n5w10 (5 nodes, 10 workers, maximal
// spread).
func Fig2(opt Options) (*Figure, error) {
	dur := opt.duration(500 * time.Second)
	fig := &Figure{
		ID:        "2",
		Title:     "Fig. 2 — Impact of inter-process and inter-node traffic (chain topology)",
		NodeSteps: map[string][]metrics.StepPoint{},
		Results:   map[string]*Result{},
	}
	cases := []struct {
		label   string
		pin     func(*topology.Topology, *cluster.Cluster) *cluster.Assignment
		workers int
	}{
		{"n1w1", pinAllOn, 1},
		{"n5w5", pinSpread(5, 5), 5},
		{"n5w10", pinSpread(5, 10), 10},
	}
	for _, c := range cases {
		res, err := Run(Config{
			Name: "fig2-" + c.label, Workload: WorkloadChain, Scheduler: SchedPinned,
			Nodes: 5, Duration: dur, StabilizeAfter: dur / 2, Seed: opt.seed(),
			Workers: c.workers, PinAssignment: c.pin,
		})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{Label: c.label, Points: res.Latency})
		fig.Results[c.label] = res
	}
	n1 := fig.Results["n1w1"].StableMean
	n5w5 := fig.Results["n5w5"].StableMean
	n5w10 := fig.Results["n5w10"].StableMean
	fig.Summary = []SummaryRow{
		{"n5w5 vs n1w1 (stable avg proc time)", "+35%", fmt.Sprintf("%+.0f%%", 100*(n5w5/n1-1))},
		{"n5w10 vs n1w1 (stable avg proc time)", "+67%", fmt.Sprintf("%+.0f%%", 100*(n5w10/n1-1))},
	}
	fig.Notes = append(fig.Notes,
		"Shape target: spreading executors over processes and nodes strictly increases processing time.")
	return fig, nil
}

// Fig3 reproduces Observation 2: overloading a single bolt executor with
// 5 spouts explodes processing time (a) and fails tuples (b).
func Fig3(opt Options) (*Figure, error) {
	dur := opt.duration(180 * time.Second)
	ccfg := workloads.DefaultChainConfig()
	ccfg.Spouts = 5
	ccfg.Bolts = 1
	ccfg.Workers = 1
	// A single bolt executor (one thread, one 2 GHz core) at 1.5 ms per
	// tuple can process ~666 tuples/s; 5 spouts emit ~1000/s.
	ccfg.BoltCostCycles = 1.5e-3 * 2000e6
	res, err := Run(Config{
		Name: "fig3", Workload: WorkloadChain, Scheduler: SchedPinned,
		Nodes: 1, Duration: dur, StabilizeAfter: dur / 2, Seed: opt.seed(),
		ChainCfg: &ccfg, PinAssignment: pinAllOn,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:    "3",
		Title: "Fig. 3 — Impact of overloading a worker node (5 spouts → 1 bolt executor)",
		Series: []Series{
			{Label: "avg-proc-time", Points: res.Latency},
			{Label: "failed-tuples", Points: res.Failures},
		},
		Results: map[string]*Result{"overload": res},
	}
	fig.Summary = []SummaryRow{
		{"processing time during overload", "skyrockets (10^4 ms scale)",
			fmt.Sprintf("peak minute mean %.0f ms", maxMean(res.Latency))},
		{"failed tuples", "accumulate steadily", fmt.Sprintf("%d failed", res.Failed)},
	}
	return fig, nil
}

func maxMean(pts []metrics.Point) float64 {
	m := 0.0
	for _, p := range pts {
		if p.Mean > m {
			m = p.Mean
		}
	}
	return m
}

// comparisonFigure runs Storm (default scheduler) once and T-Storm at
// each γ, producing one sub-figure per γ.
func comparisonFigure(id, title string, workload WorkloadKind, gammas []float64,
	paperNodes []int, paperSpeedup []string, opt Options) (*Figure, error) {
	dur := opt.duration(1000 * time.Second)
	stab := dur / 2
	fig := &Figure{
		ID:        id,
		Title:     title,
		NodeSteps: map[string][]metrics.StepPoint{},
		Results:   map[string]*Result{},
	}
	storm, err := Run(Config{
		Name: "fig" + id + "-storm", Workload: workload, Scheduler: SchedStormDefault,
		Duration: dur, StabilizeAfter: stab, Seed: opt.seed(),
	})
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, Series{Label: "Storm", Points: storm.Latency})
	fig.Results["Storm"] = storm

	for i, g := range gammas {
		label := fmt.Sprintf("T-Storm γ=%g", g)
		res, err := Run(Config{
			Name: fmt.Sprintf("fig%s-tstorm-g%g", id, g), Workload: workload,
			Scheduler: SchedTStorm, Gamma: g,
			Duration: dur, StabilizeAfter: stab, Seed: opt.seed(),
		})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{Label: label, Points: res.Latency})
		fig.NodeSteps[label] = res.Nodes
		fig.Results[label] = res
		speedup := 100 * (1 - res.StableMean/storm.StableMean)
		fig.Summary = append(fig.Summary,
			SummaryRow{
				Metric:   fmt.Sprintf("γ=%g nodes used", g),
				Paper:    fmt.Sprintf("%d", paperNodes[i]),
				Measured: fmt.Sprintf("%d", res.FinalNodes),
			},
			SummaryRow{
				Metric:   fmt.Sprintf("γ=%g speedup vs Storm (stable)", g),
				Paper:    paperSpeedup[i],
				Measured: fmt.Sprintf("%.0f%%", speedup),
			})
	}
	return fig, nil
}

// Fig5 reproduces the Throughput Test comparison (γ = 1, 1.7, 6).
func Fig5(opt Options) (*Figure, error) {
	return comparisonFigure("5",
		"Fig. 5 — Throughput Test topology: Storm vs T-Storm",
		WorkloadThroughput,
		[]float64{1, 1.7, 6},
		[]int{10, 7, 2},
		[]string{"83%", "84%", "~84%"},
		opt)
}

// Fig6 reproduces the Word Count comparison (γ = 1, 1.8, 2.2).
func Fig6(opt Options) (*Figure, error) {
	return comparisonFigure("6",
		"Fig. 6 — Word Count topology: Storm vs T-Storm",
		WorkloadWordCount,
		[]float64{1, 1.8, 2.2},
		[]int{10, 7, 5},
		[]string{"49%", "42%", "35%"},
		opt)
}

// Fig8 reproduces the Log Stream Processing comparison (γ = 1, 1.7, 2).
func Fig8(opt Options) (*Figure, error) {
	return comparisonFigure("8",
		"Fig. 8 — Log Stream Processing topology: Storm vs T-Storm",
		WorkloadLogStream,
		[]float64{1, 1.7, 2},
		[]int{10, 7, 5},
		[]string{"54%", "27%", "~0% (comparable)"},
		opt)
}

// overloadFigure reproduces the overload-handling experiments: the
// topology starts on one worker on one node, the feed is doubled, and
// T-Storm must detect the overload and spread out.
func overloadFigure(id, title string, workload WorkloadKind, paperNodes int, opt Options) (*Figure, error) {
	dur := opt.duration(1000 * time.Second)
	res, err := Run(Config{
		Name: "fig" + id, Workload: workload, Scheduler: SchedTStorm, Gamma: 2,
		Duration: dur, StabilizeAfter: dur * 3 / 4, Seed: opt.seed(),
		Workers:  1,
		FeedRate: 2 * defaultFeedRates[workload], // "two concurrent streams"
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:    id,
		Title: title,
		Series: []Series{
			{Label: "T-Storm", Points: res.Latency},
			{Label: "failed-tuples", Points: res.Failures},
		},
		NodeSteps: map[string][]metrics.StepPoint{"T-Storm": res.Nodes},
		Results:   map[string]*Result{"T-Storm": res},
	}
	detect := "never"
	for _, ev := range res.Reassignments[1:] {
		detect = fmt.Sprintf("%.0fs", ev.At.Seconds())
		break
	}
	fig.Summary = []SummaryRow{
		{"overload detected and re-scheduled at", map[string]string{"9": "~120s", "10": "~164s"}[id], detect},
		{"nodes after recovery", fmt.Sprintf("%d", paperNodes), fmt.Sprintf("%d", res.FinalNodes)},
		{"latency recovers", "sharp drop to normal",
			fmt.Sprintf("peak %.0f ms → stable %.1f ms", maxMean(res.Latency), res.StableMean)},
	}
	return fig, nil
}

// Fig9 reproduces overload handling on Word Count (1 node → 5 nodes).
func Fig9(opt Options) (*Figure, error) {
	return overloadFigure("9",
		"Fig. 9 — Overload handling on the Word Count topology (log-scale latency)",
		WorkloadWordCount, 5, opt)
}

// Fig10 reproduces overload handling on Log Stream Processing
// (1 node → 8 nodes).
func Fig10(opt Options) (*Figure, error) {
	return overloadFigure("10",
		"Fig. 10 — Overload handling on the Log Stream Processing topology (log-scale latency)",
		WorkloadLogStream, 8, opt)
}

// Headline reproduces the abstract's claim: over 84% speedup on lightly
// loaded and 27% on heavily loaded topologies with 30% fewer nodes.
func Headline(opt Options) (*Figure, error) {
	dur := opt.duration(1000 * time.Second)
	stab := dur / 2
	fig := &Figure{
		ID:      "headline",
		Title:   "Headline — speedup with 30% fewer worker nodes (γ=1.7)",
		Results: map[string]*Result{},
	}
	for _, wl := range []struct {
		kind  WorkloadKind
		label string
		paper string
	}{
		{WorkloadThroughput, "light (Throughput Test)", "≥84%"},
		{WorkloadLogStream, "heavy (Log Stream Processing)", "≥27%"},
	} {
		storm, err := Run(Config{
			Name: "headline-storm-" + string(wl.kind), Workload: wl.kind,
			Scheduler: SchedStormDefault, Duration: dur, StabilizeAfter: stab, Seed: opt.seed(),
		})
		if err != nil {
			return nil, err
		}
		ts, err := Run(Config{
			Name: "headline-tstorm-" + string(wl.kind), Workload: wl.kind,
			Scheduler: SchedTStorm, Gamma: 1.7, Duration: dur, StabilizeAfter: stab, Seed: opt.seed(),
		})
		if err != nil {
			return nil, err
		}
		fig.Results["storm-"+string(wl.kind)] = storm
		fig.Results["tstorm-"+string(wl.kind)] = ts
		stormMean, tsMean := storm.StableMean, ts.StableMean
		speedup := 100 * (1 - tsMean/stormMean)
		fig.Summary = append(fig.Summary,
			SummaryRow{
				Metric:   wl.label + " speedup",
				Paper:    wl.paper,
				Measured: fmt.Sprintf("%.0f%% (%.2f ms → %.2f ms)", speedup, stormMean, tsMean),
			},
			SummaryRow{
				Metric:   wl.label + " nodes",
				Paper:    "10 → 7 (30% fewer)",
				Measured: fmt.Sprintf("%d → %d", storm.FinalNodes, ts.FinalNodes),
			})
	}
	return fig, nil
}

// Baselines is our extension: T-Storm against the DEBS'13 online and
// offline schedulers (§III discusses them; the paper could not evaluate
// the online one on real topologies because it fell back to the default
// scheduler).
func Baselines(opt Options) (*Figure, error) {
	dur := opt.duration(1000 * time.Second)
	stab := dur / 2
	fig := &Figure{
		ID:      "baselines",
		Title:   "Extension — scheduler shoot-out on Word Count",
		Results: map[string]*Result{},
	}
	kinds := []SchedulerKind{SchedStormDefault, SchedAnielloOffline, SchedAnielloOnline, SchedLoadBalanced, SchedTStorm}
	means := map[SchedulerKind]float64{}
	for _, k := range kinds {
		res, err := Run(Config{
			Name: "baseline-" + string(k), Workload: WorkloadWordCount, Scheduler: k,
			Gamma: 1.8, Duration: dur, StabilizeAfter: stab, Seed: opt.seed(),
		})
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, Series{Label: string(k), Points: res.Latency})
		fig.Results[string(k)] = res
		means[k] = res.StableMean
		fig.Summary = append(fig.Summary, SummaryRow{
			Metric:   string(k) + " stable mean / nodes",
			Paper:    "—",
			Measured: fmt.Sprintf("%.2f ms / %d nodes", res.StableMean, res.FinalNodes),
		})
	}
	if means[SchedTStorm] < means[SchedStormDefault] {
		fig.Notes = append(fig.Notes, "T-Storm beats the default scheduler, as in the paper.")
	}
	sort.Slice(fig.Series, func(i, j int) bool { return fig.Series[i].Label < fig.Series[j].Label })
	return fig, nil
}
