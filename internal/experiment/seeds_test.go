package experiment

import (
	"math"
	"testing"
	"time"
)

func TestAggregate(t *testing.T) {
	a := aggregate([]float64{2, 4, 6})
	if a.Mean != 4 || a.Min != 2 || a.Max != 6 || a.N != 3 {
		t.Fatalf("aggregate = %+v", a)
	}
	if math.Abs(a.StdDev-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", a.StdDev)
	}
	one := aggregate([]float64{5})
	if one.StdDev != 0 || one.Mean != 5 {
		t.Fatalf("single-sample aggregate = %+v", one)
	}
	if aggregate(nil).N != 0 {
		t.Fatal("empty aggregate not zero")
	}
	if got := a.String(); got != "4.000 ± 2.000 (n=3)" {
		t.Fatalf("String = %q", got)
	}
}

func TestRunSeedsConsistency(t *testing.T) {
	cfg := Config{
		Name: "seeds", Workload: WorkloadChain, Scheduler: SchedTStorm,
		Gamma: 2, Nodes: 3, Duration: 120 * time.Second,
	}
	mr, err := RunSeeds(cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Runs) != 3 || mr.StableMean.N != 3 {
		t.Fatalf("runs = %d", len(mr.Runs))
	}
	if mr.StableMean.Mean <= 0 {
		t.Fatalf("mean latency %v", mr.StableMean.Mean)
	}
	// Seed sensitivity should be small relative to the mean on this
	// deterministic workload.
	if mr.StableMean.StdDev > mr.StableMean.Mean {
		t.Fatalf("across-seed stddev %v exceeds mean %v", mr.StableMean.StdDev, mr.StableMean.Mean)
	}
	if _, err := RunSeeds(cfg, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	// Same seed twice → identical results.
	mr2, err := RunSeeds(cfg, []uint64{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if mr2.Runs[0].StableMean != mr2.Runs[1].StableMean {
		t.Fatal("same seed produced different results")
	}
	if mr2.StableMean.StdDev != 0 {
		t.Fatalf("identical runs have stddev %v", mr2.StableMean.StdDev)
	}
}
