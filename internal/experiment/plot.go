package experiment

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"tstorm/internal/sim"
)

// seriesMarks are the plotting symbols, assigned to series in order.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%'}

// Chart renders the figure's series as an ASCII line chart: columns are
// the shared minute buckets, rows the (optionally log-scaled) value axis —
// a terminal rendition of the paper's plots.
func (f *Figure) Chart(w io.Writer, height int, logScale bool) error {
	if height < 4 {
		height = 4
	}
	if len(f.Series) == 0 {
		_, err := io.WriteString(w, "(no series)\n")
		return err
	}

	// Collect shared time buckets and values.
	bucketSet := map[sim.Time]bool{}
	vals := make([]map[sim.Time]float64, len(f.Series))
	for i, s := range f.Series {
		vals[i] = make(map[sim.Time]float64, len(s.Points))
		for _, p := range s.Points {
			bucketSet[p.Start] = true
			vals[i][p.Start] = p.Mean
		}
	}
	times := make([]sim.Time, 0, len(bucketSet))
	for t := range bucketSet {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	scale := func(v float64) (float64, bool) {
		if logScale {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range f.Series {
		for _, v := range vals[i] {
			if sv, ok := scale(v); ok {
				lo = math.Min(lo, sv)
				hi = math.Max(hi, sv)
			}
		}
	}
	if math.IsInf(lo, 1) {
		_, err := io.WriteString(w, "(no plottable values)\n")
		return err
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(times)))
	}
	for i := range f.Series {
		mark := seriesMarks[i%len(seriesMarks)]
		for c, t := range times {
			v, ok := vals[i][t]
			if !ok {
				continue
			}
			sv, ok := scale(v)
			if !ok {
				continue
			}
			row := int((sv - lo) / (hi - lo) * float64(height-1))
			r := height - 1 - row
			grid[r][c] = mark
		}
	}

	var b strings.Builder
	axisLabel := func(frac float64) float64 {
		v := lo + frac*(hi-lo)
		if logScale {
			return math.Pow(10, v)
		}
		return v
	}
	for r := 0; r < height; r++ {
		frac := float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%10.2f |%s|\n", axisLabel(frac), string(grid[r]))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", len(times)))
	fmt.Fprintf(&b, "%10s  t=%.0fs%*s t=%.0fs\n", "",
		times[0].Seconds(), max(1, len(times)-12), "", times[len(times)-1].Seconds())
	for i, s := range f.Series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", seriesMarks[i%len(seriesMarks)], s.Label)
	}
	if logScale {
		fmt.Fprintf(&b, "%10s  (log-scale y, ms)\n", "")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
