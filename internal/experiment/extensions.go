package experiment

import (
	"fmt"
	"time"

	"tstorm/internal/core"
	"tstorm/internal/engine"
	"tstorm/internal/metrics"
	"tstorm/internal/monitor"
	"tstorm/internal/sim"
)

// GammaSweep is our extension figure: Word Count under a fine γ grid,
// tracing the whole consolidation/latency trade-off curve the paper
// samples at three points. One series point per γ: x = γ (encoded in the
// bucket start for plotting), y = stable latency; node counts go into the
// summary.
func GammaSweep(opt Options) (*Figure, error) {
	dur := opt.duration(600 * time.Second)
	gammas := []float64{1, 1.2, 1.4, 1.6, 1.8, 2, 2.2, 2.6, 3}
	fig := &Figure{
		ID:      "gamma",
		Title:   "Extension — consolidation factor sweep on Word Count (γ vs latency/nodes)",
		Results: map[string]*Result{},
	}
	storm, err := Run(Config{
		Name: "gamma-storm", Workload: WorkloadWordCount, Scheduler: SchedStormDefault,
		Duration: dur, Seed: opt.seed(),
	})
	if err != nil {
		return nil, err
	}
	fig.Results["storm"] = storm
	var latencyCurve, nodeCurve []metrics.Point
	for _, g := range gammas {
		res, err := Run(Config{
			Name: fmt.Sprintf("gamma-%g", g), Workload: WorkloadWordCount,
			Scheduler: SchedTStorm, Gamma: g, Duration: dur, Seed: opt.seed(),
		})
		if err != nil {
			return nil, err
		}
		fig.Results[fmt.Sprintf("γ=%g", g)] = res
		// Encode γ on the time axis (γ seconds) so Chart/CSV render the
		// curve directly.
		at := sim.Time(time.Duration(g * float64(time.Second)))
		latencyCurve = append(latencyCurve, metrics.Point{
			Start: at, Mean: res.StableMean, Count: 1, Sum: res.StableMean, Max: res.StableMean,
		})
		nodeCurve = append(nodeCurve, metrics.Point{
			Start: at, Mean: float64(res.FinalNodes), Count: 1,
			Sum: float64(res.FinalNodes), Max: float64(res.FinalNodes),
		})
		fig.Summary = append(fig.Summary, SummaryRow{
			Metric: fmt.Sprintf("γ=%g", g),
			Paper:  "—",
			Measured: fmt.Sprintf("%d nodes, %.2f ms (%.0f%% vs Storm)",
				res.FinalNodes, res.StableMean, 100*(1-res.StableMean/storm.StableMean)),
		})
	}
	fig.Series = []Series{
		{Label: "stable-latency-ms (x=γ)", Points: latencyCurve},
		{Label: "nodes-used (x=γ)", Points: nodeCurve},
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("Storm baseline: %.2f ms on %d nodes.", storm.StableMean, storm.FinalNodes),
		"The curve shows the paper's §V guidance: moderate γ buys node savings nearly for free; large γ gives latency back.")
	return fig, nil
}

// TableII reports the common experimental settings actually used by this
// harness against the paper's Table II.
func TableII(Options) (*Figure, error) {
	ecfg := engine.DefaultConfig()
	gcfg := core.DefaultGeneratorConfig()
	fig := &Figure{
		ID:    "table2",
		Title: "Table II — common experimental settings",
		Summary: []SummaryRow{
			{"estimation coefficient (α)", "0.5", "0.5"},
			{"load monitoring and estimation period", "20s", monitor.DefaultPeriod.String()},
			{"number of available worker nodes", "10", "10"},
			{"running time of each experiment", "1000s", "1000s"},
			{"schedule fetching period", "10s", core.DefaultFetchPeriod.String()},
			{"schedule generation period", "300s", gcfg.GenerationPeriod.String()},
			{"message timeout", "30s (Storm default)", ecfg.MessageTimeout.String()},
			{"supervisor sync period", "10s (Storm default)", ecfg.SupervisorSync.String()},
			{"smooth re-assignment shutdown delay", "20s", ecfg.ShutdownDelay.String()},
			{"smooth re-assignment spout halt", "10s", ecfg.SpoutHaltDelay.String()},
			{"latency reporting granularity", "1-minute averages", ecfg.LatencyBucket.String()},
		},
	}
	return fig, nil
}
