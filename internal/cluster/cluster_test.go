package cluster

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"tstorm/internal/topology"
)

func exec(comp string, i int) topology.ExecutorID {
	return topology.ExecutorID{Topology: "t", Component: comp, Index: i}
}

func TestUniformCluster(t *testing.T) {
	c, err := Uniform(10, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 10 || c.NumSlots() != 40 {
		t.Fatalf("nodes=%d slots=%d", c.NumNodes(), c.NumSlots())
	}
	n, ok := c.Node("node01")
	if !ok || n.CapacityMHz() != 8000 {
		t.Fatalf("Node = %+v ok=%v", n, ok)
	}
	if _, ok := c.Node("nope"); ok {
		t.Fatal("missing node found")
	}
	slots := c.Slots()
	if slots[0] != (SlotID{"node01", BasePort}) || slots[39] != (SlotID{"node10", BasePort + 3}) {
		t.Fatalf("slot order wrong: %v ... %v", slots[0], slots[39])
	}
	if got := slots[0].String(); got != "node01:6700" {
		t.Fatalf("SlotID.String = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"empty", nil},
		{"empty id", []Node{{ID: "", Cores: 1, CoreMHz: 1, NumSlots: 1}}},
		{"dup id", []Node{
			{ID: "a", Cores: 1, CoreMHz: 1, NumSlots: 1},
			{ID: "a", Cores: 1, CoreMHz: 1, NumSlots: 1}}},
		{"zero cores", []Node{{ID: "a", Cores: 0, CoreMHz: 1, NumSlots: 1}}},
		{"zero mhz", []Node{{ID: "a", Cores: 1, CoreMHz: 0, NumSlots: 1}}},
		{"zero slots", []Node{{ID: "a", Cores: 1, CoreMHz: 1, NumSlots: 0}}},
	}
	for _, tt := range cases {
		if _, err := New(tt.nodes); err == nil {
			t.Errorf("New(%s) succeeded, want error", tt.name)
		}
	}
}

func TestNodesReturnsCopy(t *testing.T) {
	c, _ := Uniform(2, 1, 1000, 1)
	nodes := c.Nodes()
	nodes[0].ID = "mutated"
	if n, _ := c.Node("node01"); n.ID != "node01" {
		t.Fatal("Nodes aliases internal state")
	}
}

func TestSlotIDLess(t *testing.T) {
	a := SlotID{"a", 6700}
	if !a.Less(SlotID{"b", 6700}) || !a.Less(SlotID{"a", 6701}) || a.Less(a) {
		t.Fatal("SlotID.Less wrong")
	}
}

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment(5)
	a.Assign(exec("spout", 0), SlotID{"n1", 6700})
	a.Assign(exec("bolt", 0), SlotID{"n1", 6700})
	a.Assign(exec("bolt", 1), SlotID{"n2", 6700})
	if s, ok := a.Slot(exec("bolt", 1)); !ok || s != (SlotID{"n2", 6700}) {
		t.Fatalf("Slot = %v ok=%v", s, ok)
	}
	if _, ok := a.Slot(exec("ghost", 0)); ok {
		t.Fatal("unassigned executor found")
	}
	if got := a.NumUsedNodes(); got != 2 {
		t.Fatalf("NumUsedNodes = %d, want 2", got)
	}
	used := a.UsedSlots()
	if len(used) != 2 || used[0] != (SlotID{"n1", 6700}) {
		t.Fatalf("UsedSlots = %v", used)
	}
	nodes := a.UsedNodes()
	if len(nodes) != 2 || nodes[0] != "n1" || nodes[1] != "n2" {
		t.Fatalf("UsedNodes = %v", nodes)
	}
	per := a.SlotExecutors()
	if len(per[SlotID{"n1", 6700}]) != 2 {
		t.Fatalf("SlotExecutors = %v", per)
	}
	// Sorted executor lists.
	l := per[SlotID{"n1", 6700}]
	if !l[0].Less(l[1]) {
		t.Fatalf("executors not sorted: %v", l)
	}
}

func TestAssignmentCloneAndEqual(t *testing.T) {
	a := NewAssignment(1)
	a.Assign(exec("s", 0), SlotID{"n1", 6700})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Assign(exec("s", 0), SlotID{"n2", 6700})
	if a.Equal(b) {
		t.Fatal("diverged clone still equal")
	}
	if got, _ := a.Slot(exec("s", 0)); got != (SlotID{"n1", 6700}) {
		t.Fatal("clone aliases original")
	}
	c := NewAssignment(1)
	if a.Equal(c) {
		t.Fatal("different sizes equal")
	}
}

func TestDiff(t *testing.T) {
	oldA := NewAssignment(1)
	oldA.Assign(exec("s", 0), SlotID{"n1", 6700})
	oldA.Assign(exec("b", 0), SlotID{"n1", 6700})
	oldA.Assign(exec("b", 1), SlotID{"n2", 6700})

	newA := NewAssignment(2)
	newA.Assign(exec("s", 0), SlotID{"n1", 6700})
	newA.Assign(exec("b", 0), SlotID{"n1", 6700})
	newA.Assign(exec("b", 1), SlotID{"n3", 6700}) // moved n2 → n3

	diffs := Diff(oldA, newA)
	if len(diffs) != 3 {
		t.Fatalf("got %d slot diffs, want 3: %+v", len(diffs), diffs)
	}
	bys := make(map[SlotID]SlotDiff)
	for _, d := range diffs {
		bys[d.Slot] = d
	}
	if bys[SlotID{"n1", 6700}].Changed() {
		t.Fatal("unchanged slot reported changed")
	}
	d2 := bys[SlotID{"n2", 6700}]
	if !d2.Changed() || len(d2.Old) != 1 || len(d2.New) != 0 {
		t.Fatalf("n2 diff = %+v", d2)
	}
	d3 := bys[SlotID{"n3", 6700}]
	if !d3.Changed() || len(d3.Old) != 0 || len(d3.New) != 1 {
		t.Fatalf("n3 diff = %+v", d3)
	}
}

func TestAssignmentJSONRoundTrip(t *testing.T) {
	a := NewAssignment(42)
	a.Assign(exec("s", 0), SlotID{"n1", 6700})
	a.Assign(exec("b", 3), SlotID{"n2", 6701})
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Assignment
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.ID != 42 || !a.Equal(&b) {
		t.Fatalf("round trip lost data: %+v", b)
	}
	// Deterministic encoding.
	data2, _ := json.Marshal(a)
	if string(data) != string(data2) {
		t.Fatal("non-deterministic JSON")
	}
	if err := (&Assignment{}).UnmarshalJSON([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// Property: Diff(a, a) reports no changed slots, and Diff respects moves:
// every executor that changed slot appears in exactly two changed diffs.
func TestPropertyDiffConsistency(t *testing.T) {
	f := func(placements []uint8, moves []uint8) bool {
		slots := []SlotID{{"n1", 6700}, {"n2", 6700}, {"n3", 6700}, {"n3", 6701}}
		oldA := NewAssignment(1)
		for i, p := range placements {
			oldA.Assign(exec("c", i), slots[int(p)%len(slots)])
		}
		for _, d := range Diff(oldA, oldA) {
			if d.Changed() {
				return false
			}
		}
		newA := oldA.Clone()
		for _, m := range moves {
			i := int(m) % max(1, len(placements))
			if len(placements) == 0 {
				break
			}
			newA.Assign(exec("c", i), slots[(int(placements[i])+1)%len(slots)])
		}
		for _, d := range Diff(oldA, newA) {
			_ = d.Changed()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeMemoryDefaults(t *testing.T) {
	c, err := New([]Node{{ID: "a", Cores: 1, CoreMHz: 1000, NumSlots: 1}})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := c.Node("a")
	if n.MemMB != DefaultMemMB {
		t.Fatalf("MemMB = %d, want default %d", n.MemMB, DefaultMemMB)
	}
	if _, err := New([]Node{{ID: "a", Cores: 1, CoreMHz: 1, NumSlots: 1, MemMB: -1}}); err == nil {
		t.Fatal("negative memory accepted")
	}
	// Explicit memory survives.
	c2, err := New([]Node{{ID: "a", Cores: 1, CoreMHz: 1000, NumSlots: 1, MemMB: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := c2.Node("a")
	if n2.MemMB != 4096 {
		t.Fatalf("MemMB = %d, want 4096", n2.MemMB)
	}
}
