// Package cluster models the physical layer of a Storm deployment: worker
// nodes with CPU capacity, slots (worker-process ports) on each node, and
// executor-to-slot assignments, including the assignment diffing that
// supervisors use to decide which workers to restart.
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"

	"tstorm/internal/topology"
)

// NodeID names a worker node.
type NodeID string

// DefaultMemMB is the node memory assumed when a Node does not specify
// one — the paper's blades carry 2 GB.
const DefaultMemMB = 2048

// DefaultNetMBps is the node network bandwidth assumed when a Node does
// not specify one: 125 MB/s, i.e. the gigabit Ethernet of the paper's
// testbed.
const DefaultNetMBps = 125.0

// Node is one worker node (physical machine).
type Node struct {
	ID NodeID
	// Cores is the number of CPU cores.
	Cores int
	// CoreMHz is the clock speed of one core.
	CoreMHz float64
	// NumSlots is the number of configured slots (worker processes that
	// may run here); the cluster operator typically sets it to Cores.
	NumSlots int
	// MemMB is the node's physical memory (0 = DefaultMemMB). Worker
	// processes are JVMs with a substantial footprint; overcommitting
	// memory slows a node down (the consolidation effect of §V).
	MemMB int
	// NetMBps is the node's network bandwidth in megabytes per second
	// (0 = DefaultNetMBps). Resource-aware schedulers (R-Storm) treat it
	// as a third capacity dimension next to CPU and memory.
	NetMBps float64
}

// CapacityMHz is the node's total CPU capacity, the paper's C_k.
func (n Node) CapacityMHz() float64 { return float64(n.Cores) * n.CoreMHz }

// BasePort is the first slot port on every node, as in Storm's default
// supervisor.slots.ports (6700, 6701, ...).
const BasePort = 6700

// SlotID identifies a slot: a (node, port) pair.
type SlotID struct {
	Node NodeID `json:"node"`
	Port int    `json:"port"`
}

// String renders "node:port".
func (s SlotID) String() string { return fmt.Sprintf("%s:%d", s.Node, s.Port) }

// Less orders slots by (node, port).
func (s SlotID) Less(o SlotID) bool {
	if s.Node != o.Node {
		return s.Node < o.Node
	}
	return s.Port < o.Port
}

// Cluster is a fixed set of worker nodes.
type Cluster struct {
	nodes []Node
	byID  map[NodeID]int
}

// New validates the node list and returns a Cluster.
func New(nodes []Node) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	c := &Cluster{nodes: append([]Node(nil), nodes...), byID: make(map[NodeID]int, len(nodes))}
	for i, n := range c.nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node %d has empty ID", i)
		}
		if _, dup := c.byID[n.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		if n.Cores <= 0 || n.CoreMHz <= 0 || n.NumSlots <= 0 {
			return nil, fmt.Errorf("cluster: node %q has non-positive cores/MHz/slots", n.ID)
		}
		if n.MemMB < 0 {
			return nil, fmt.Errorf("cluster: node %q has negative memory", n.ID)
		}
		if n.MemMB == 0 {
			c.nodes[i].MemMB = DefaultMemMB
		}
		if n.NetMBps < 0 {
			return nil, fmt.Errorf("cluster: node %q has negative network bandwidth", n.ID)
		}
		if n.NetMBps == 0 {
			c.nodes[i].NetMBps = DefaultNetMBps
		}
		c.byID[n.ID] = i
	}
	return c, nil
}

// Uniform builds a cluster of n identical nodes named node01..nodeNN.
func Uniform(n, cores int, coreMHz float64, slots int) (*Cluster, error) {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID:       NodeID(fmt.Sprintf("node%02d", i+1)),
			Cores:    cores,
			CoreMHz:  coreMHz,
			NumSlots: slots,
		}
	}
	return New(nodes)
}

// Nodes returns the nodes in declaration order (copy).
func (c *Cluster) Nodes() []Node {
	out := make([]Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// NumNodes returns the node count (the paper's K).
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns the named node.
func (c *Cluster) Node(id NodeID) (Node, bool) {
	i, ok := c.byID[id]
	if !ok {
		return Node{}, false
	}
	return c.nodes[i], true
}

// Slots enumerates every slot in deterministic order: nodes in declaration
// order, ports ascending from BasePort. This is the paper's slot set S.
func (c *Cluster) Slots() []SlotID {
	var out []SlotID
	for _, n := range c.nodes {
		for p := 0; p < n.NumSlots; p++ {
			out = append(out, SlotID{Node: n.ID, Port: BasePort + p})
		}
	}
	return out
}

// NumSlots returns the total slot count (the paper's N_s).
func (c *Cluster) NumSlots() int {
	n := 0
	for _, nd := range c.nodes {
		n += nd.NumSlots
	}
	return n
}

// Assignment maps executors to slots. The ID is the generation timestamp
// in virtual nanoseconds; T-Storm uses it to tag messages so the per-slot
// dispatcher can separate old-generation and new-generation traffic.
type Assignment struct {
	ID        int64
	Executors map[topology.ExecutorID]SlotID
}

// NewAssignment returns an empty assignment with the given ID.
func NewAssignment(id int64) *Assignment {
	return &Assignment{ID: id, Executors: make(map[topology.ExecutorID]SlotID)}
}

// Clone deep-copies the assignment.
func (a *Assignment) Clone() *Assignment {
	out := NewAssignment(a.ID)
	for e, s := range a.Executors {
		out.Executors[e] = s
	}
	return out
}

// Slot returns the slot hosting the given executor.
func (a *Assignment) Slot(e topology.ExecutorID) (SlotID, bool) {
	s, ok := a.Executors[e]
	return s, ok
}

// Assign places executor e on slot s, replacing any previous placement.
func (a *Assignment) Assign(e topology.ExecutorID, s SlotID) { a.Executors[e] = s }

// SlotExecutors groups the assignment by slot; executor lists are sorted.
func (a *Assignment) SlotExecutors() map[SlotID][]topology.ExecutorID {
	out := make(map[SlotID][]topology.ExecutorID)
	for e, s := range a.Executors {
		out[s] = append(out[s], e)
	}
	for _, execs := range out {
		sort.Slice(execs, func(i, j int) bool { return execs[i].Less(execs[j]) })
	}
	return out
}

// UsedSlots returns the distinct slots in use, sorted.
func (a *Assignment) UsedSlots() []SlotID {
	seen := make(map[SlotID]bool)
	for _, s := range a.Executors {
		seen[s] = true
	}
	out := make([]SlotID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// UsedNodes returns the distinct nodes in use, sorted.
func (a *Assignment) UsedNodes() []NodeID {
	seen := make(map[NodeID]bool)
	for _, s := range a.Executors {
		seen[s.Node] = true
	}
	out := make([]NodeID, 0, len(seen))
	for n := range seen {
		out = append(out, NodeID(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumUsedNodes counts distinct nodes in use.
func (a *Assignment) NumUsedNodes() int { return len(a.UsedNodes()) }

// Equal reports whether two assignments place every executor identically
// (IDs are ignored).
func (a *Assignment) Equal(b *Assignment) bool {
	if len(a.Executors) != len(b.Executors) {
		return false
	}
	for e, s := range a.Executors {
		if bs, ok := b.Executors[e]; !ok || bs != s {
			return false
		}
	}
	return true
}

// SlotDiff describes how one slot's executor set changes between two
// assignments.
type SlotDiff struct {
	Slot SlotID
	// Old and New are the sorted executor sets before and after.
	Old, New []topology.ExecutorID
}

// Changed reports whether the slot's executor set differs.
func (d SlotDiff) Changed() bool {
	if len(d.Old) != len(d.New) {
		return true
	}
	for i := range d.Old {
		if d.Old[i] != d.New[i] {
			return true
		}
	}
	return false
}

// Diff computes per-slot changes from old to new. Slots present in either
// assignment appear in the result, sorted by slot. Supervisors restart
// exactly the slots for which Changed() is true — Storm's behaviour.
func Diff(oldA, newA *Assignment) []SlotDiff {
	oldSlots := oldA.SlotExecutors()
	newSlots := newA.SlotExecutors()
	seen := make(map[SlotID]bool)
	var out []SlotDiff
	add := func(s SlotID) {
		if seen[s] {
			return
		}
		seen[s] = true
		out = append(out, SlotDiff{Slot: s, Old: oldSlots[s], New: newSlots[s]})
	}
	for s := range oldSlots {
		add(s)
	}
	for s := range newSlots {
		add(s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot.Less(out[j].Slot) })
	return out
}

// assignmentJSON is the wire form used for coordination-store publication.
type assignmentJSON struct {
	ID      int64       `json:"id"`
	Entries []entryJSON `json:"entries"`
}

type entryJSON struct {
	Exec topology.ExecutorID `json:"exec"`
	Slot SlotID              `json:"slot"`
}

// MarshalJSON encodes the assignment deterministically (entries sorted by
// executor).
func (a *Assignment) MarshalJSON() ([]byte, error) {
	execs := make([]topology.ExecutorID, 0, len(a.Executors))
	for e := range a.Executors {
		execs = append(execs, e)
	}
	sort.Slice(execs, func(i, j int) bool { return execs[i].Less(execs[j]) })
	w := assignmentJSON{ID: a.ID, Entries: make([]entryJSON, len(execs))}
	for i, e := range execs {
		w.Entries[i] = entryJSON{Exec: e, Slot: a.Executors[e]}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form.
func (a *Assignment) UnmarshalJSON(data []byte) error {
	var w assignmentJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("cluster: bad assignment: %w", err)
	}
	a.ID = w.ID
	a.Executors = make(map[topology.ExecutorID]SlotID, len(w.Entries))
	for _, e := range w.Entries {
		a.Executors[e.Exec] = e.Slot
	}
	return nil
}
