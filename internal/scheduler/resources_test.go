package scheduler

import (
	"strings"
	"testing"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// TestConstraintsConvention pins the single fraction convention shared by
// validation, documentation, and defaults: fractions live in [0,1], and 0
// selects full capacity. The old scalar CapacityFraction documented "0
// means 1.0" while its error string claimed "(0,1]" — this test keeps the
// two from drifting apart again.
func TestConstraintsConvention(t *testing.T) {
	n := cluster.Node{ID: "n", Cores: 4, CoreMHz: 2000, NumSlots: 4,
		MemMB: 4096, NetMBps: 250}

	// 0 selects full capacity in every dimension, and validates.
	var zero Constraints
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero constraints must validate (0 selects full capacity): %v", err)
	}
	if got := zero.CPULimitMHz(n); got != n.CapacityMHz() {
		t.Fatalf("CPULimitMHz at fraction 0 = %v, want full %v", got, n.CapacityMHz())
	}
	if got := zero.MemLimitMB(n); got != 4096 {
		t.Fatalf("MemLimitMB at fraction 0 = %v, want full 4096", got)
	}
	if got := zero.NetLimitMBps(n); got != 250 {
		t.Fatalf("NetLimitMBps at fraction 0 = %v, want full 250", got)
	}

	// Explicit fractions scale each dimension independently.
	c := Constraints{CPUFraction: 0.5, MemFraction: 0.25, NetFraction: 0.1}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.CPULimitMHz(n); got != 4000 {
		t.Fatalf("CPULimitMHz = %v, want 4000", got)
	}
	if got := c.MemLimitMB(n); got != 1024 {
		t.Fatalf("MemLimitMB = %v, want 1024", got)
	}
	if got := c.NetLimitMBps(n); got != 25 {
		t.Fatalf("NetLimitMBps = %v, want 25", got)
	}

	// Out-of-range fractions fail in every dimension, and the error text
	// states the documented convention rather than contradicting it.
	for _, bad := range []Constraints{
		{CPUFraction: 1.5},
		{CPUFraction: -0.1},
		{MemFraction: 2},
		{NetFraction: -1},
	} {
		err := bad.Validate()
		if err == nil {
			t.Fatalf("constraints %+v validated", bad)
		}
		if !strings.Contains(err.Error(), "out of [0,1] (0 selects full capacity)") {
			t.Fatalf("error %q does not state the fraction convention", err)
		}
	}

	// Input.Validate reports the same convention, so scheduler inputs and
	// standalone constraints can never disagree about what 0 means.
	top := buildChain(t, "t", 1, 1, 1)
	cl, err := cluster.New([]cluster.Node{n})
	if err != nil {
		t.Fatal(err)
	}
	in := &Input{Topologies: []*topology.Topology{top}, Cluster: cl,
		Constraints: Constraints{CPUFraction: 1.5}}
	verr := in.Validate()
	if verr == nil {
		t.Fatal("out-of-range input validated")
	}
	if !strings.Contains(verr.Error(), "out of [0,1] (0 selects full capacity)") {
		t.Fatalf("Input.Validate error %q does not state the fraction convention", verr)
	}
}

// TestDeriveDemands checks the snapshot-to-demand derivation: CPU is the
// smoothed workload, network is total traffic scaled by BytesPerTuple,
// and memory is the monitored footprint when present, else the baseline.
func TestDeriveDemands(t *testing.T) {
	top := buildChain(t, "d", 2, 1, 1) // spout, mid, sink + 2 ackers
	spout := topology.ExecutorID{Topology: "d", Component: "spout", Index: 0}
	mid := topology.ExecutorID{Topology: "d", Component: "mid", Index: 0}

	db := loaddb.New(1)
	db.UpdateExecutorLoad(spout, 1200)
	db.UpdateTraffic(spout, mid, 1e6) // 1M tuples/s
	db.UpdateExecutorMemory(mid, 512)
	snap := db.Snapshot()

	demands := DeriveDemands([]*topology.Topology{top}, snap, DemandModel{})
	if len(demands) != top.NumExecutors() {
		t.Fatalf("derived %d demands, want %d", len(demands), top.NumExecutors())
	}
	ds := demands[spout]
	if ds.CPUMHz != 1200 {
		t.Fatalf("spout CPU = %v, want 1200", ds.CPUMHz)
	}
	// 1M tuples/s × 256 B/tuple = 256 MB/s.
	if ds.NetMBps != 256 {
		t.Fatalf("spout net = %v MB/s, want 256", ds.NetMBps)
	}
	if ds.MemMB != DefaultBaselineMemMB {
		t.Fatalf("spout mem = %v, want baseline %v", ds.MemMB, DefaultBaselineMemMB)
	}
	if dm := demands[mid]; dm.MemMB != 512 {
		t.Fatalf("mid mem = %v, want monitored 512", dm.MemMB)
	}

	// NewInput derives demands itself; DemandFor falls back to baseline
	// memory for executors it has never seen.
	cl, err := cluster.Uniform(2, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput([]*topology.Topology{top}, cl, snap, 0.9)
	if got := in.DemandFor(spout); got != demands[spout] {
		t.Fatalf("DemandFor(spout) = %+v, want %+v", got, demands[spout])
	}
	unknown := topology.ExecutorID{Topology: "other", Component: "x", Index: 0}
	if got := in.DemandFor(unknown); got.MemMB != DefaultBaselineMemMB || got.CPUMHz != 0 {
		t.Fatalf("DemandFor(unknown) = %+v, want baseline", got)
	}
}
