package scheduler

// The multi-resource side of the scheduling input: per-node usable-
// capacity constraints and per-executor demand estimates. Algorithm 1
// only reads the CPU dimension; the arena contenders (rstorm, hetero)
// pack against all three.

import (
	"fmt"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// Constraints bounds how much of each node resource the scheduler may
// commit. Every fraction is in [0,1], and 0 selects full capacity (1.0)
// — the single convention shared by validation, documentation, and
// defaults. CPUFraction subsumes the old scalar Input.CapacityFraction:
// it scales each node's usable CPU capacity, the paper's advice to set
// C_k below physical capacity.
type Constraints struct {
	// CPUFraction scales node CPU capacity (CapacityMHz) to the usable
	// C_k. 0 selects full capacity.
	CPUFraction float64
	// MemFraction scales node memory (MemMB). 0 selects full capacity.
	MemFraction float64
	// NetFraction scales node network bandwidth (NetMBps). 0 selects
	// full capacity.
	NetFraction float64
}

// fraction normalizes one constraint fraction: 0 selects full capacity.
func fraction(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

// Validate checks every fraction against the shared convention.
func (c Constraints) Validate() error {
	for _, dim := range []struct {
		name string
		f    float64
	}{{"cpu", c.CPUFraction}, {"memory", c.MemFraction}, {"network", c.NetFraction}} {
		if dim.f < 0 || dim.f > 1 {
			return fmt.Errorf("scheduler: %s fraction %v out of [0,1] (0 selects full capacity)", dim.name, dim.f)
		}
	}
	return nil
}

// CPULimitMHz is the usable CPU capacity of the node (the paper's C_k).
func (c Constraints) CPULimitMHz(n cluster.Node) float64 {
	return n.CapacityMHz() * fraction(c.CPUFraction)
}

// MemLimitMB is the usable memory of the node.
func (c Constraints) MemLimitMB(n cluster.Node) float64 {
	return float64(n.MemMB) * fraction(c.MemFraction)
}

// NetLimitMBps is the usable network bandwidth of the node.
func (c Constraints) NetLimitMBps(n cluster.Node) float64 {
	return n.NetMBps * fraction(c.NetFraction)
}

// Demand is one executor's estimated multi-resource requirement.
type Demand struct {
	// CPUMHz is the smoothed CPU workload, the paper's l_i.
	CPUMHz float64
	// MemMB is the estimated memory footprint.
	MemMB float64
	// NetMBps is the estimated network transfer volume, derived from the
	// executor's total traffic rate.
	NetMBps float64
}

// DemandModel converts a load snapshot into per-executor demands. The
// zero value selects the defaults.
type DemandModel struct {
	// BytesPerTuple converts traffic rates (tuples/s) into bandwidth
	// demand (MB/s). 0 selects DefaultBytesPerTuple.
	BytesPerTuple float64
	// BaselineMemMB is the per-executor memory floor assumed when no
	// monitor has reported a footprint. 0 selects DefaultBaselineMemMB.
	BaselineMemMB float64
}

// DefaultBytesPerTuple approximates the wire size of one encoded tuple.
const DefaultBytesPerTuple = 256.0

// DefaultBaselineMemMB is the per-executor memory floor: queues, routing
// state, and component state make even an idle executor non-free.
const DefaultBaselineMemMB = 64.0

func (m DemandModel) bytesPerTuple() float64 {
	if m.BytesPerTuple == 0 {
		return DefaultBytesPerTuple
	}
	return m.BytesPerTuple
}

func (m DemandModel) baselineMemMB() float64 {
	if m.BaselineMemMB == 0 {
		return DefaultBaselineMemMB
	}
	return m.BaselineMemMB
}

// DeriveDemands estimates every executor's demand from the load
// snapshot: CPU is the smoothed workload, network is total traffic
// scaled by BytesPerTuple, and memory is the monitored footprint when
// one exists, else the baseline. Executors absent from the snapshot get
// zero CPU/network and baseline memory — matching how Algorithm 1 has
// always treated unknown load. load may be nil.
func DeriveDemands(topos []*topology.Topology, load *loaddb.Snapshot, model DemandModel) map[topology.ExecutorID]Demand {
	if load == nil {
		load = &loaddb.Snapshot{}
	}
	total := load.TotalTraffic()
	out := make(map[topology.ExecutorID]Demand)
	for _, top := range topos {
		for _, e := range top.Executors() {
			d := Demand{
				CPUMHz:  load.ExecLoad[e],
				MemMB:   model.baselineMemMB(),
				NetMBps: total[e] * model.bytesPerTuple() / 1e6,
			}
			if mb, ok := load.ExecMem[e]; ok && mb > 0 {
				d.MemMB = mb
			}
			out[e] = d
		}
	}
	return out
}

// DemandFor reads one executor's demand, falling back to the zero-CPU /
// baseline-memory estimate when the Demands map was never populated —
// algorithms stay total on hand-built Inputs.
func (in *Input) DemandFor(e topology.ExecutorID) Demand {
	if d, ok := in.Demands[e]; ok {
		return d
	}
	var load float64
	if in.Load != nil {
		load = in.Load.ExecLoad[e]
	}
	return Demand{CPUMHz: load, MemMB: DefaultBaselineMemMB}
}
