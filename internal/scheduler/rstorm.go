package scheduler

import (
	"fmt"
	"math"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/topology"
)

// RStorm is the resource-aware scheduler of Peng et al. (R-Storm,
// Middleware'15), re-implemented from their description over this repo's
// multi-resource Input: executors walk in BFS order from the spouts (so
// stream-adjacent components are considered back to back), and each is
// packed onto the feasible node minimizing the Euclidean distance between
// its demand vector and the node's remaining-availability vector in
// normalized (CPU, memory, bandwidth) space — a 3D best-fit that keeps
// communicating executors clustered while never overcommitting any
// dimension. It is the arena's traffic-blind contrast to Algorithm 1:
// R-Storm sees three resources but no traffic matrix, T-Storm sees
// traffic but only CPU.
//
// If no slot fits, the resource dimensions are relaxed progressively
// (bandwidth, then memory, then CPU) so the algorithm is total — the same
// contract Algorithm 1's relaxation path provides.
type RStorm struct{}

var _ Algorithm = RStorm{}

// Name returns "rstorm".
func (RStorm) Name() string { return "rstorm" }

// resourceState tracks per-node committed resources during one packing
// run, against the usable limits set by the input's Constraints.
type resourceState struct {
	in       *Input
	cpu      map[cluster.NodeID]float64 // committed MHz
	mem      map[cluster.NodeID]float64 // committed MB
	net      map[cluster.NodeID]float64 // committed MB/s
	slotTopo map[cluster.SlotID]string  // slot → owning topology
}

func newResourceState(in *Input) *resourceState {
	return &resourceState{
		in:       in,
		cpu:      make(map[cluster.NodeID]float64),
		mem:      make(map[cluster.NodeID]float64),
		net:      make(map[cluster.NodeID]float64),
		slotTopo: make(map[cluster.SlotID]string),
	}
}

// classify names the first constraint that makes the slot infeasible for
// the demand (empty when feasible). The per-dimension labels are what the
// decision probe reports, so an explain run shows exactly which resource
// priced a node out. relaxNet/relaxMem/relaxCPU drop the corresponding
// dimension — the progressive totality fallback.
func (rs *resourceState) classify(s cluster.SlotID, topo string, d Demand, relaxNet, relaxMem, relaxCPU bool) decision.Constraint {
	if owner, owned := rs.slotTopo[s]; owned && owner != topo {
		return decision.RejectedSlot
	}
	node, _ := rs.in.Cluster.Node(s.Node)
	c := rs.in.Constraints
	if !relaxCPU && rs.cpu[s.Node]+d.CPUMHz > c.CPULimitMHz(node) {
		return decision.RejectedCapacity
	}
	if !relaxMem && rs.mem[s.Node]+d.MemMB > c.MemLimitMB(node) {
		return decision.RejectedMemory
	}
	if !relaxNet && rs.net[s.Node]+d.NetMBps > c.NetLimitMBps(node) {
		return decision.RejectedNet
	}
	return ""
}

// commit records the executor's demand against the slot's node.
func (rs *resourceState) commit(e topology.ExecutorID, s cluster.SlotID, d Demand) {
	rs.cpu[s.Node] += d.CPUMHz
	rs.mem[s.Node] += d.MemMB
	rs.net[s.Node] += d.NetMBps
	rs.slotTopo[s] = e.Topology
}

// distance is R-Storm's packing objective: the Euclidean distance between
// the demand vector and the node's remaining-availability vector, each
// dimension normalized by the node's usable capacity so a 100 MB memory
// gap and a 100 MB/s bandwidth gap aren't conflated. Smaller is a tighter
// (better) fit.
func (rs *resourceState) distance(n cluster.NodeID, d Demand) float64 {
	node, _ := rs.in.Cluster.Node(n)
	c := rs.in.Constraints
	dist := 0.0
	for _, dim := range [3]struct{ limit, used, want float64 }{
		{c.CPULimitMHz(node), rs.cpu[n], d.CPUMHz},
		{c.MemLimitMB(node), rs.mem[n], d.MemMB},
		{c.NetLimitMBps(node), rs.net[n], d.NetMBps},
	} {
		if dim.limit <= 0 {
			continue
		}
		gap := (dim.limit - dim.used - dim.want) / dim.limit
		dist += gap * gap
	}
	return math.Sqrt(dist)
}

// Schedule packs every executor by 3D min-distance best fit.
func (RStorm) Schedule(in *Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	a := cluster.NewAssignment(0)
	rs := newResourceState(in)
	slots := in.FreeSlots()
	probe := in.Probe
	if probe != nil {
		probe.Begin("rstorm", in.NumExecutors(), in.Cluster.NumNodes())
	}

	rank := 0
	for _, top := range in.Topologies {
		for _, e := range bfsOrderedExecutors(top) {
			d := in.DemandFor(e)
			var opts []decision.SlotOption
			eval := func(relaxNet, relaxMem, relaxCPU, record bool) (cluster.SlotID, bool) {
				var best cluster.SlotID
				bestDist := math.Inf(1)
				found := false
				for _, s := range slots {
					rejected := rs.classify(s, e.Topology, d, relaxNet, relaxMem, relaxCPU)
					dist := rs.distance(s.Node, d)
					if record {
						// Gain is the probe's maximize-me score; negate the
						// distance so the tightest fit reads as the best gain.
						opts = append(opts, decision.SlotOption{Slot: s, Gain: -dist, Rejected: rejected})
					}
					if rejected != "" {
						continue
					}
					if !found || dist < bestDist {
						best, bestDist = s, dist
						found = true
					}
				}
				return best, found
			}

			slot, ok := eval(false, false, false, probe != nil)
			relaxed := false
			if !ok {
				relaxed = true
				slot, ok = eval(true, false, false, false)
			}
			if !ok {
				slot, ok = eval(true, true, false, false)
			}
			if !ok {
				slot, ok = eval(true, true, true, false)
			}
			if !ok {
				return nil, fmt.Errorf("scheduler: rstorm found no slot for executor %v", e)
			}
			if probe != nil {
				for i := range opts {
					if opts[i].Slot == slot {
						opts[i].Chosen = true
					}
				}
				probe.Place(decision.Placement{
					Executor:        e,
					Rank:            rank,
					Load:            d.CPUMHz,
					Slot:            slot,
					Gain:            -rs.distance(slot.Node, d),
					RelaxedCapacity: relaxed,
					Options:         opts,
				})
			}
			a.Assign(e, slot)
			rs.commit(e, slot, d)
			rank++
		}
	}
	if probe != nil {
		probe.Finish(a, in.Load)
	}
	return a, nil
}
