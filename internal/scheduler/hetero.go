package scheduler

import (
	"fmt"
	"sort"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/topology"
)

// Hetero is a heterogeneous-cluster throughput maximizer in the style of
// Nasiri et al.: executors are placed heaviest-CPU-first, and each goes
// to the feasible slot on the fastest node — per-core clock speed first,
// remaining usable CPU as the tie-break — so on a cluster of unequal
// machines the hot executors monopolize the fast cores and the long pole
// of every tuple tree shortens. On a uniform cluster it degenerates to
// worst-fit CPU balancing, which is exactly the contrast the arena wants
// against rstorm's best-fit packing and Algorithm 1's traffic chasing.
//
// Feasibility spans all three resource dimensions of the input's
// Constraints, with per-dimension rejection labels on the probe; the
// same progressive relaxation as rstorm keeps the algorithm total.
type Hetero struct{}

var _ Algorithm = Hetero{}

// Name returns "hetero".
func (Hetero) Name() string { return "hetero" }

// Schedule places executors heaviest-first on the fastest feasible node.
func (Hetero) Schedule(in *Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	var execs []topology.ExecutorID
	for _, top := range in.Topologies {
		execs = append(execs, top.Executors()...)
	}
	sort.SliceStable(execs, func(i, j int) bool {
		di, dj := in.DemandFor(execs[i]).CPUMHz, in.DemandFor(execs[j]).CPUMHz
		if di != dj {
			return di > dj
		}
		return execs[i].Less(execs[j])
	})

	a := cluster.NewAssignment(0)
	rs := newResourceState(in)
	slots := in.FreeSlots()
	probe := in.Probe
	if probe != nil {
		probe.Begin("hetero", in.NumExecutors(), in.Cluster.NumNodes())
	}

	// score is the slot's speed-weighted headroom: per-core clock speed
	// scaled by the fraction of usable CPU still free after the placement.
	// Fast idle nodes dominate, fast busy nodes fade, slow nodes lose.
	score := func(n cluster.NodeID, d Demand) float64 {
		node, _ := in.Cluster.Node(n)
		limit := in.Constraints.CPULimitMHz(node)
		if limit <= 0 {
			return 0
		}
		headroom := (limit - rs.cpu[n] - d.CPUMHz) / limit
		return node.CoreMHz * headroom
	}

	for rank, e := range execs {
		d := in.DemandFor(e)
		var opts []decision.SlotOption
		eval := func(relaxNet, relaxMem, relaxCPU, record bool) (cluster.SlotID, bool) {
			var best cluster.SlotID
			bestScore := 0.0
			found := false
			for _, s := range slots {
				rejected := rs.classify(s, e.Topology, d, relaxNet, relaxMem, relaxCPU)
				sc := score(s.Node, d)
				if record {
					opts = append(opts, decision.SlotOption{Slot: s, Gain: sc, Rejected: rejected})
				}
				if rejected != "" {
					continue
				}
				if !found || sc > bestScore {
					best, bestScore = s, sc
					found = true
				}
			}
			return best, found
		}

		slot, ok := eval(false, false, false, probe != nil)
		relaxed := false
		if !ok {
			relaxed = true
			slot, ok = eval(true, false, false, false)
		}
		if !ok {
			slot, ok = eval(true, true, false, false)
		}
		if !ok {
			slot, ok = eval(true, true, true, false)
		}
		if !ok {
			return nil, fmt.Errorf("scheduler: hetero found no slot for executor %v", e)
		}
		if probe != nil {
			for i := range opts {
				if opts[i].Slot == slot {
					opts[i].Chosen = true
				}
			}
			probe.Place(decision.Placement{
				Executor:        e,
				Rank:            rank,
				Load:            d.CPUMHz,
				Slot:            slot,
				Gain:            score(slot.Node, d),
				RelaxedCapacity: relaxed,
				Options:         opts,
			})
		}
		a.Assign(e, slot)
		rs.commit(e, slot, d)
	}
	if probe != nil {
		probe.Finish(a, in.Load)
	}
	return a, nil
}
