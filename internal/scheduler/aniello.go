package scheduler

import (
	"fmt"
	"sort"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// AnielloOffline is the offline scheduler of Aniello, Baldoni and Querzoni
// (DEBS'13), re-implemented from their description: it inspects only the
// topology graph — no runtime information — walks the components in
// topological (BFS) order, and packs executors of adjacent components into
// the same workers, placing workers round-robin across nodes. The paper
// under reproduction criticizes it for exactly this load-obliviousness.
type AnielloOffline struct{}

var _ Algorithm = AnielloOffline{}

// Name returns "aniello-offline".
func (AnielloOffline) Name() string { return "aniello-offline" }

// Schedule partitions each topology's executors into N_u contiguous
// chunks along the BFS component order.
func (AnielloOffline) Schedule(in *Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	a := cluster.NewAssignment(0)
	free := in.InterleavedFreeSlots()
	for _, top := range in.Topologies {
		nw := top.NumWorkers()
		if nw > len(free) {
			nw = len(free)
		}
		if nw == 0 {
			return nil, fmt.Errorf("scheduler: no free slots for topology %q", top.Name())
		}
		workers := free[:nw]
		free = free[nw:]

		execs := bfsOrderedExecutors(top)
		// Contiguous chunks keep adjacent components' executors together.
		per := (len(execs) + nw - 1) / nw
		for i, e := range execs {
			a.Assign(e, workers[i/per])
		}
	}
	recordDecisions(in, "aniello-offline", a)
	return a, nil
}

// bfsOrderedExecutors lists executors component-by-component in BFS order
// from the spouts, so stream-adjacent components are adjacent in the list.
func bfsOrderedExecutors(top *topology.Topology) []topology.ExecutorID {
	adj := top.AdjacentComponents()
	visited := make(map[string]bool)
	var order []string
	var queue []string
	for _, name := range top.ComponentNames() {
		c, _ := top.Component(name)
		if c.Kind == topology.SpoutKind {
			queue = append(queue, name)
			visited[name] = true
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		neighbors := append([]string(nil), adj[cur]...)
		sort.Strings(neighbors)
		for _, n := range neighbors {
			if !visited[n] {
				visited[n] = true
				queue = append(queue, n)
			}
		}
	}
	// Anything unreachable (e.g. the acker component) goes last.
	for _, name := range top.ComponentNames() {
		if !visited[name] {
			order = append(order, name)
		}
	}
	var out []topology.ExecutorID
	for _, name := range order {
		c, _ := top.Component(name)
		for i := 0; i < c.Parallelism; i++ {
			out = append(out, topology.ExecutorID{Topology: top.Name(), Component: name, Index: i})
		}
	}
	return out
}

// AnielloOnline is the online scheduler of Aniello et al. (DEBS'13),
// re-implemented from their two-phase description:
//
//  1. executors → workers: executor pairs in descending traffic order are
//     greedily merged into the same worker, subject to a per-worker
//     executor cap ceil(N_e/N_w);
//  2. workers → nodes: worker pairs in descending inter-worker traffic
//     order are co-located on the same node, subject to a per-node worker
//     cap ceil(N_w/K).
//
// Unlike the original implementation — which falls back to Storm's default
// scheduler on topologies below a complexity threshold (a limitation §III
// of the reproduced paper calls out) — this version runs on any topology.
type AnielloOnline struct{}

var _ Algorithm = AnielloOnline{}

// Name returns "aniello-online".
func (AnielloOnline) Name() string { return "aniello-online" }

// Schedule runs the two phases per topology.
func (AnielloOnline) Schedule(in *Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.Load == nil {
		in = &Input{Topologies: in.Topologies, Cluster: in.Cluster,
			Load: &loaddb.Snapshot{}, Occupied: in.Occupied,
			Demands: in.Demands, Constraints: in.Constraints, Probe: in.Probe}
	}
	a := cluster.NewAssignment(0)
	free := in.InterleavedFreeSlots()
	for _, top := range in.Topologies {
		nw := top.NumWorkers()
		if nw > len(free) {
			nw = len(free)
		}
		if nw == 0 {
			return nil, fmt.Errorf("scheduler: no free slots for topology %q", top.Name())
		}
		slots := free[:nw]
		free = free[nw:]
		groups := phase1Workers(top, in.Load, nw)
		order := phase2Order(top, in.Load, groups, in.Cluster.NumNodes())
		for wi, slotIdx := range order {
			for _, e := range groups[wi] {
				a.Assign(e, slots[slotIdx])
			}
		}
	}
	recordDecisions(in, "aniello-online", a)
	return a, nil
}

// phase1Workers groups executors into nw workers, merging high-traffic
// pairs first under the executor cap.
func phase1Workers(top *topology.Topology, load *loaddb.Snapshot, nw int) [][]topology.ExecutorID {
	execs := top.Executors()
	capSize := (len(execs) + nw - 1) / nw

	group := make(map[topology.ExecutorID]int, len(execs))
	for _, e := range execs {
		group[e] = -1
	}
	sizes := make([]int, 0, nw)
	var groups [][]topology.ExecutorID

	newGroup := func(e topology.ExecutorID) int {
		groups = append(groups, []topology.ExecutorID{e})
		sizes = append(sizes, 1)
		group[e] = len(groups) - 1
		return group[e]
	}

	// Merge pairs in descending traffic order.
	flows := append([]loaddb.Flow(nil), load.Flows...)
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].Rate > flows[j].Rate })
	for _, f := range flows {
		if f.From.Topology != top.Name() || f.To.Topology != top.Name() {
			continue
		}
		gi, okFrom := group[f.From]
		gj, okTo := group[f.To]
		if !okFrom || !okTo {
			continue
		}
		switch {
		case gi == -1 && gj == -1:
			if len(groups) < nw {
				g := newGroup(f.From)
				groups[g] = append(groups[g], f.To)
				sizes[g]++
				group[f.To] = g
			}
		case gi == -1 && gj >= 0:
			if sizes[gj] < capSize {
				groups[gj] = append(groups[gj], f.From)
				sizes[gj]++
				group[f.From] = gj
			}
		case gi >= 0 && gj == -1:
			if sizes[gi] < capSize {
				groups[gi] = append(groups[gi], f.To)
				sizes[gi]++
				group[f.To] = gi
			}
		}
	}
	// Everything unplaced goes to the least-filled group (creating groups
	// until nw exist).
	for _, e := range execs {
		if group[e] >= 0 {
			continue
		}
		if len(groups) < nw {
			newGroup(e)
			continue
		}
		best := 0
		for g := 1; g < len(groups); g++ {
			if sizes[g] < sizes[best] {
				best = g
			}
		}
		groups[best] = append(groups[best], e)
		sizes[best]++
		group[e] = best
	}
	return groups
}

// phase2Order maps each worker group to a slot index such that
// high-traffic worker pairs land on the same node where possible. The
// returned slice is indexed by group and holds the slot index.
func phase2Order(top *topology.Topology, load *loaddb.Snapshot, groups [][]topology.ExecutorID, numNodes int) []int {
	nw := len(groups)
	groupOf := make(map[topology.ExecutorID]int)
	for gi, g := range groups {
		for _, e := range g {
			groupOf[e] = gi
		}
	}
	// Inter-group traffic.
	type gpair struct{ a, b int }
	inter := make(map[gpair]float64)
	for _, f := range load.Flows {
		ga, okA := groupOf[f.From]
		gb, okB := groupOf[f.To]
		if !okA || !okB || ga == gb {
			continue
		}
		if ga > gb {
			ga, gb = gb, ga
		}
		inter[gpair{ga, gb}] += f.Rate
	}
	pairs := make([]gpair, 0, len(inter))
	for p := range inter {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if inter[pairs[i]] != inter[pairs[j]] {
			return inter[pairs[i]] > inter[pairs[j]]
		}
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	// Buddy assignment: slots are handed out in order; the slot list is
	// interleaved (node-major per round), so "same node" means slot
	// indexes congruent modulo numNodes... instead we group slot indexes
	// by pseudo-node bucket i%numNodes of the interleaved ordering.
	perNode := (nw + numNodes - 1) / numNodes
	nodeOf := make([]int, nw)   // group → pseudo-node
	nodeFill := make([]int, nw) // pseudo-node → groups placed
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	nextNode := 0
	place := func(g int) int {
		for nodeFill[nextNode] >= perNode {
			nextNode++
		}
		nodeOf[g] = nextNode
		nodeFill[nextNode]++
		return nextNode
	}
	for _, p := range pairs {
		switch {
		case nodeOf[p.a] == -1 && nodeOf[p.b] == -1:
			n := place(p.a)
			if nodeFill[n] < perNode {
				nodeOf[p.b] = n
				nodeFill[n]++
			}
		case nodeOf[p.a] == -1:
			if nodeFill[nodeOf[p.b]] < perNode {
				nodeOf[p.a] = nodeOf[p.b]
				nodeFill[nodeOf[p.b]]++
			}
		case nodeOf[p.b] == -1:
			if nodeFill[nodeOf[p.a]] < perNode {
				nodeOf[p.b] = nodeOf[p.a]
				nodeFill[nodeOf[p.a]]++
			}
		}
	}
	for g := 0; g < nw; g++ {
		if nodeOf[g] == -1 {
			place(g)
		}
	}
	// Convert pseudo-node buckets to slot indexes: slots were handed out
	// interleaved across nodes, so slot index = node + round*numNodes.
	// Groups on the same pseudo-node take consecutive rounds of the same
	// column when possible.
	used := make(map[int]bool)
	out := make([]int, nw)
	for g := 0; g < nw; g++ {
		col := nodeOf[g] % numNodes
		idx := col
		for used[idx] || idx >= nw {
			idx = (idx + numNodes)
			if idx >= nw {
				// Column exhausted: linear scan for any free slot.
				idx = 0
				for used[idx] {
					idx++
				}
			}
		}
		used[idx] = true
		out[g] = idx
	}
	return out
}
