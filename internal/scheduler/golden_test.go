package scheduler_test

// Golden-assignment equivalence tests: every algorithm's placement on a
// fixed fixture is pinned byte-for-byte in testdata/golden/. The fixtures
// were captured against the scalar-CapacityFraction Input that predated
// the multi-resource redesign, so a passing run proves the redesigned
// Input (Constraints block + per-executor Demands) leaves every
// pre-existing algorithm's output bit-identical. Regenerate deliberately
// with `go test -run TestGoldenAssignments -update ./internal/scheduler`
// after a change that is MEANT to alter placements.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tstorm/internal/cluster"
	"tstorm/internal/core"
	"tstorm/internal/loaddb"
	"tstorm/internal/scheduler"
	"tstorm/internal/topology"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// goldenTopologies builds the fixture: two topologies of different shapes
// sharing one cluster, so slot-exclusivity and multi-topology interleaving
// are both exercised.
func goldenTopologies(t *testing.T) []*topology.Topology {
	t.Helper()
	ab := topology.NewBuilder("alpha", 8)
	ab.SetAckers(2)
	ab.Spout("spout", 4).Output("default", "v")
	ab.Bolt("mid", 8).Shuffle("spout").Output("default", "k", "v")
	ab.Bolt("sink", 6).Fields("mid", "k")
	alpha, err := ab.Build()
	if err != nil {
		t.Fatal(err)
	}
	bb := topology.NewBuilder("beta", 4)
	bb.SetAckers(1)
	bb.Spout("spout", 2).Output("default", "v")
	bb.Bolt("work", 4).Shuffle("spout")
	beta, err := bb.Build()
	if err != nil {
		t.Fatal(err)
	}
	return []*topology.Topology{alpha, beta}
}

// goldenLoad synthesizes a deterministic load snapshot: executor CPU load
// and pairwise traffic follow closed-form functions of the executor
// indices, so the snapshot is identical on every run and every platform.
func goldenLoad(tops []*topology.Topology) *loaddb.Snapshot {
	db := loaddb.New(1)
	for ti, top := range tops {
		execs := top.Executors()
		for i, e := range execs {
			db.UpdateExecutorLoad(e, float64(100+37*((i+ti*11)%13)))
		}
		// Traffic along declared edges: every producer executor feeds every
		// consumer executor with a rate derived from the index pair.
		for _, name := range top.ComponentNames() {
			c, _ := top.Component(name)
			for _, edge := range top.Consumers(name, topology.DefaultStream) {
				cons, _ := top.Component(edge.Consumer)
				for i := 0; i < c.Parallelism; i++ {
					from := topology.ExecutorID{Topology: top.Name(), Component: name, Index: i}
					for j := 0; j < cons.Parallelism; j++ {
						to := topology.ExecutorID{Topology: top.Name(), Component: edge.Consumer, Index: j}
						db.UpdateTraffic(from, to, float64(50+(i*7+j*3+ti*5)%97))
					}
				}
			}
		}
	}
	return db.Snapshot()
}

// goldenAlgorithms lists every pre-redesign algorithm under golden pinning.
func goldenAlgorithms() []scheduler.Algorithm {
	return []scheduler.Algorithm{
		scheduler.RoundRobin{},
		scheduler.TStormInitial{},
		scheduler.AnielloOffline{},
		scheduler.AnielloOnline{},
		scheduler.LoadBalanced{},
		core.NewTrafficAware(1.5),
	}
}

func TestGoldenAssignments(t *testing.T) {
	tops := goldenTopologies(t)
	cl, err := cluster.Uniform(6, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	snap := goldenLoad(tops)
	for _, algo := range goldenAlgorithms() {
		algo := algo
		t.Run(algo.Name(), func(t *testing.T) {
			in := scheduler.NewInput(tops, cl, snap, 0.9)
			a, err := algo.Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			raw, err := json.Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			var buf json.RawMessage = raw
			pretty, err := json.MarshalIndent(buf, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			pretty = append(pretty, '\n')
			path := filepath.Join("testdata", "golden", algo.Name()+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, pretty, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to capture): %v", err)
			}
			if string(want) != string(pretty) {
				t.Fatalf("assignment diverged from golden fixture %s\ngot:\n%s\nwant:\n%s",
					path, pretty, want)
			}
		})
	}
}
