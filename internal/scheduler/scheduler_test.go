package scheduler

import (
	"testing"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

func buildChain(t *testing.T, name string, workers, spoutPar, boltPar int) *topology.Topology {
	t.Helper()
	b := topology.NewBuilder(name, workers)
	b.SetAckers(2)
	b.Spout("spout", spoutPar).Output("default", "v")
	b.Bolt("mid", boltPar).Shuffle("spout").Output("default", "v")
	b.Bolt("sink", boltPar).Shuffle("mid")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func tenNodes(t *testing.T) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.Uniform(10, 4, 2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestRoundRobinUsesAllNodes(t *testing.T) {
	top := buildChain(t, "tt", 40, 5, 15) // 5+15+15+2 = 37 executors
	cl := tenNodes(t)
	a, err := RoundRobin{}.Schedule(&Input{Topologies: []*topology.Topology{top}, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != top.NumExecutors() {
		t.Fatalf("placed %d, want %d", len(a.Executors), top.NumExecutors())
	}
	// The paper's observation: the default scheduler always uses all
	// available worker nodes.
	if got := a.NumUsedNodes(); got != 10 {
		t.Fatalf("used %d nodes, want 10", got)
	}
	// 40 workers requested and 40 slots exist: 37 executors land on 37
	// distinct slots (one each), i.e. maximal spreading.
	if got := len(a.UsedSlots()); got != 37 {
		t.Fatalf("used %d slots, want 37", got)
	}
}

func TestRoundRobinFewerWorkersThanSlots(t *testing.T) {
	top := buildChain(t, "t", 5, 1, 4) // 1+4+4+2 = 11 executors
	cl := tenNodes(t)
	a, err := RoundRobin{}.Schedule(&Input{Topologies: []*topology.Topology{top}, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(a.UsedSlots()); got != 5 {
		t.Fatalf("used %d slots, want N_u=5", got)
	}
	// Interleaved slot order spreads the 5 workers over 5 distinct nodes.
	if got := a.NumUsedNodes(); got != 5 {
		t.Fatalf("used %d nodes, want 5", got)
	}
}

func TestTStormInitialOneWorkerPerNode(t *testing.T) {
	top := buildChain(t, "t", 20, 2, 5) // N_u=20 > 10 nodes
	cl := tenNodes(t)
	a, err := TStormInitial{}.Schedule(&Input{Topologies: []*topology.Topology{top}, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	// N*_w = min(20, 10) = 10 workers, one per node.
	if got := len(a.UsedSlots()); got != 10 {
		t.Fatalf("used %d slots, want 10", got)
	}
	if got := a.NumUsedNodes(); got != 10 {
		t.Fatalf("used %d nodes, want 10", got)
	}
	// At most one slot per node.
	perNode := make(map[cluster.NodeID]map[cluster.SlotID]bool)
	for _, s := range a.UsedSlots() {
		if perNode[s.Node] == nil {
			perNode[s.Node] = make(map[cluster.SlotID]bool)
		}
		perNode[s.Node][s] = true
	}
	for n, slots := range perNode {
		if len(slots) != 1 {
			t.Fatalf("node %s hosts %d slots, want 1", n, len(slots))
		}
	}
}

func TestSchedulersRespectOccupiedSlots(t *testing.T) {
	top := buildChain(t, "t", 40, 2, 5)
	cl := tenNodes(t)
	occupied := make(map[cluster.SlotID]bool)
	for _, s := range cl.Slots() {
		if s.Node == "node01" {
			occupied[s] = true
		}
	}
	for _, alg := range []Algorithm{RoundRobin{}, TStormInitial{}, AnielloOffline{}, AnielloOnline{}} {
		a, err := alg.Schedule(&Input{Topologies: []*topology.Topology{top}, Cluster: cl, Occupied: occupied})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for e, s := range a.Executors {
			if s.Node == "node01" {
				t.Fatalf("%s placed %v on occupied node01", alg.Name(), e)
			}
		}
	}
}

func TestAnielloOfflineGroupsAdjacentComponents(t *testing.T) {
	top := buildChain(t, "t", 4, 2, 4) // 2+4+4+2 = 12 execs, 4 workers → 3 each
	cl := tenNodes(t)
	a, err := AnielloOffline{}.Schedule(&Input{Topologies: []*topology.Topology{top}, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != 12 {
		t.Fatalf("placed %d, want 12", len(a.Executors))
	}
	if got := len(a.UsedSlots()); got != 4 {
		t.Fatalf("used %d slots, want 4", got)
	}
	// BFS order = spout, mid, sink, acker: the first chunk must contain
	// the two spout executors together (contiguous chunking).
	s0, _ := a.Slot(topology.ExecutorID{Topology: "t", Component: "spout", Index: 0})
	s1, _ := a.Slot(topology.ExecutorID{Topology: "t", Component: "spout", Index: 1})
	if s0 != s1 {
		t.Fatalf("spout executors split across %v and %v", s0, s1)
	}
}

func TestAnielloOnlineColocatesHotPairs(t *testing.T) {
	top := buildChain(t, "t", 4, 1, 2) // 1+2+2+2 = 7 execs
	cl := tenNodes(t)
	spout0 := topology.ExecutorID{Topology: "t", Component: "spout", Index: 0}
	mid0 := topology.ExecutorID{Topology: "t", Component: "mid", Index: 0}
	mid1 := topology.ExecutorID{Topology: "t", Component: "mid", Index: 1}
	sink0 := topology.ExecutorID{Topology: "t", Component: "sink", Index: 0}

	db := loaddb.New(1)
	db.UpdateTraffic(spout0, mid0, 1000) // hottest pair
	db.UpdateTraffic(mid0, sink0, 10)
	db.UpdateTraffic(spout0, mid1, 5)
	a, err := AnielloOnline{}.Schedule(&Input{
		Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != 7 {
		t.Fatalf("placed %d, want 7", len(a.Executors))
	}
	sa, _ := a.Slot(spout0)
	sb, _ := a.Slot(mid0)
	if sa != sb {
		t.Fatalf("hottest pair split: %v vs %v", sa, sb)
	}
}

func TestAnielloOnlineWithoutLoadStillSchedules(t *testing.T) {
	top := buildChain(t, "t", 3, 1, 2)
	cl := tenNodes(t)
	a, err := AnielloOnline{}.Schedule(&Input{Topologies: []*topology.Topology{top}, Cluster: cl})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != top.NumExecutors() {
		t.Fatalf("placed %d, want %d", len(a.Executors), top.NumExecutors())
	}
}

func TestMultipleTopologiesDisjointSlots(t *testing.T) {
	t1 := buildChain(t, "one", 5, 1, 2)
	t2 := buildChain(t, "two", 5, 1, 2)
	cl := tenNodes(t)
	for _, alg := range []Algorithm{RoundRobin{}, TStormInitial{}, AnielloOffline{}, AnielloOnline{}} {
		a, err := alg.Schedule(&Input{Topologies: []*topology.Topology{t1, t2}, Cluster: cl})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		slotOwner := make(map[cluster.SlotID]string)
		for e, s := range a.Executors {
			if owner, ok := slotOwner[s]; ok && owner != e.Topology {
				t.Fatalf("%s: slot %v shared by %s and %s", alg.Name(), s, owner, e.Topology)
			}
			slotOwner[s] = e.Topology
		}
	}
}

func TestInputValidation(t *testing.T) {
	if err := (&Input{}).Validate(); err == nil {
		t.Fatal("empty input validated")
	}
	top := buildChain(t, "t", 1, 1, 1)
	if err := (&Input{Topologies: []*topology.Topology{top}}).Validate(); err == nil {
		t.Fatal("input without cluster validated")
	}
	cl := tenNodes(t)
	bad := &Input{Topologies: []*topology.Topology{top}, Cluster: cl, Constraints: Constraints{CPUFraction: 1.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("capacity fraction >1 validated")
	}
	good := &Input{Topologies: []*topology.Topology{top}, Cluster: cl}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.NumExecutors() != top.NumExecutors() {
		t.Fatal("NumExecutors mismatch")
	}
}

func TestPinned(t *testing.T) {
	top := buildChain(t, "t", 1, 1, 1)
	cl := tenNodes(t)
	want := cluster.NewAssignment(0)
	for _, e := range top.Executors() {
		want.Assign(e, cl.Slots()[0])
	}
	got, err := Pinned{Assignment: want}.Schedule(nil)
	if err != nil || !got.Equal(want) {
		t.Fatalf("pinned schedule wrong: %v", err)
	}
	// Returned assignment is a clone.
	got.Assign(top.Executors()[0], cl.Slots()[1])
	if !want.Equal(mustSchedule(t, Pinned{Assignment: want})) {
		t.Fatal("Pinned leaked internal assignment")
	}
	if _, err := (Pinned{}).Schedule(nil); err == nil {
		t.Fatal("nil pinned assignment accepted")
	}
}

func mustSchedule(t *testing.T, a Algorithm) *cluster.Assignment {
	t.Helper()
	got, err := a.Schedule(nil)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(RoundRobin{})
	r.Register(TStormInitial{})
	if _, ok := r.Get("default"); !ok {
		t.Fatal("default not registered")
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("ghost algorithm found")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "default" || names[1] != "tstorm-initial" {
		t.Fatalf("Names = %v", names)
	}
}

func TestPlaceExecutors(t *testing.T) {
	top := buildChain(t, "t", 1, 2, 3)
	cl := tenNodes(t)
	a := cluster.NewAssignment(0)
	slots := cl.Slots()[:2]
	PlaceExecutors(a, top, slots, "spout")
	if len(a.Executors) != 2 {
		t.Fatalf("placed %d, want 2 spouts", len(a.Executors))
	}
	s0, _ := a.Slot(topology.ExecutorID{Topology: "t", Component: "spout", Index: 0})
	s1, _ := a.Slot(topology.ExecutorID{Topology: "t", Component: "spout", Index: 1})
	if s0 == s1 {
		t.Fatal("round-robin did not alternate slots")
	}
}

func TestInterleavedFreeSlotsOrder(t *testing.T) {
	cl := tenNodes(t)
	in := &Input{Topologies: []*topology.Topology{buildChain(t, "t", 1, 1, 1)}, Cluster: cl}
	slots := in.InterleavedFreeSlots()
	// Port-major: all nodes' 6700 first, then all 6701, ...
	for i := 0; i < 10; i++ {
		if slots[i].Port != cluster.BasePort {
			t.Fatalf("slot %d = %v, want port %d first", i, slots[i], cluster.BasePort)
		}
	}
	if slots[10].Port != cluster.BasePort+1 || slots[10].Node != "node01" {
		t.Fatalf("slot 10 = %v", slots[10])
	}
	// Occupied slots are excluded.
	in.Occupied = map[cluster.SlotID]bool{{Node: "node01", Port: cluster.BasePort}: true}
	free := in.InterleavedFreeSlots()
	if len(free) != 39 || free[0].Node != "node02" {
		t.Fatalf("occupied not excluded: %v", free[0])
	}
}

func TestFreeSlotsNodeMajor(t *testing.T) {
	cl := tenNodes(t)
	in := &Input{Topologies: []*topology.Topology{buildChain(t, "t", 1, 1, 1)}, Cluster: cl}
	slots := in.FreeSlots()
	if slots[0] != (cluster.SlotID{Node: "node01", Port: cluster.BasePort}) ||
		slots[1] != (cluster.SlotID{Node: "node01", Port: cluster.BasePort + 1}) {
		t.Fatalf("node-major order wrong: %v %v", slots[0], slots[1])
	}
}

func TestLoadBalancedSpreadsHeavyExecutorsEvenly(t *testing.T) {
	top := buildChain(t, "t", 20, 2, 5) // 14 executors
	cl := tenNodes(t)
	db := loaddb.New(1)
	for i, e := range top.Executors() {
		db.UpdateExecutorLoad(e, float64(100*(i+1)))
	}
	a, err := LoadBalanced{}.Schedule(&Input{
		Topologies: []*topology.Topology{top}, Cluster: cl, Load: db.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Executors) != top.NumExecutors() {
		t.Fatalf("placed %d, want %d", len(a.Executors), top.NumExecutors())
	}
	// One slot per node per topology.
	perNode := map[cluster.NodeID]map[cluster.SlotID]bool{}
	nodeLoad := map[cluster.NodeID]float64{}
	snap := db.Snapshot()
	for e, s := range a.Executors {
		if perNode[s.Node] == nil {
			perNode[s.Node] = map[cluster.SlotID]bool{}
		}
		perNode[s.Node][s] = true
		nodeLoad[s.Node] += snap.ExecLoad[e]
	}
	for n, slots := range perNode {
		if len(slots) != 1 {
			t.Fatalf("node %s hosts %d slots", n, len(slots))
		}
	}
	// Balance: max node load within 3× of min among used nodes (LPT bound
	// is far tighter; this guards regressions).
	lo, hi := 1e18, 0.0
	for _, l := range nodeLoad {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi > 3*lo {
		t.Fatalf("imbalanced: min %v max %v", lo, hi)
	}
	if (LoadBalanced{}).Name() != "load-balanced" {
		t.Fatal("Name wrong")
	}
}
