package scheduler

import (
	"fmt"
	"sync"
	"testing"

	"tstorm/internal/cluster"
)

// namedAlgo is a minimal Algorithm for registry tests.
type namedAlgo struct{ name string }

func (a namedAlgo) Name() string { return a.name }
func (a namedAlgo) Schedule(*Input) (*cluster.Assignment, error) {
	return cluster.NewAssignment(0), nil
}

// TestRegistryConcurrentAccess hammers the hot-swap registry from many
// goroutines at once — the schedule generator looks algorithms up while
// operators register replacements. Run with -race.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const rounds = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("algo-%d", w%4)
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					r.Register(namedAlgo{name: name})
				case 1:
					if a, ok := r.Get(name); ok && a.Name() != name {
						t.Errorf("Get(%q) returned %q", name, a.Name())
						return
					}
				case 2:
					for _, n := range r.Names() {
						if n == "" {
							t.Error("empty name in registry")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	names := r.Names()
	if len(names) != 4 {
		t.Fatalf("registry has %d names, want 4: %v", len(names), names)
	}
}
