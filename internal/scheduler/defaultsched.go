package scheduler

import (
	"fmt"

	"tstorm/internal/cluster"
	"tstorm/internal/topology"
)

// RoundRobin is Storm's default (even) scheduler: each topology's
// executors are distributed round-robin over the number of workers its
// user requested (N_u), and those workers are spread evenly over the
// cluster's available slots, interleaving nodes. It ignores runtime load
// and traffic entirely, and — as the paper observes — always ends up using
// all available worker nodes.
type RoundRobin struct{}

var _ Algorithm = RoundRobin{}

// Name returns "default".
func (RoundRobin) Name() string { return "default" }

// Schedule assigns each topology independently.
func (RoundRobin) Schedule(in *Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	a := cluster.NewAssignment(0)
	free := in.InterleavedFreeSlots()
	for _, top := range in.Topologies {
		nw := top.NumWorkers()
		if nw > len(free) {
			nw = len(free)
		}
		if nw == 0 {
			return nil, fmt.Errorf("scheduler: no free slots for topology %q", top.Name())
		}
		workers := free[:nw]
		free = free[nw:]
		assignRoundRobin(a, top.Executors(), workers)
	}
	recordDecisions(in, "default", a)
	return a, nil
}

// TStormInitial is the modified default scheduler T-Storm applies when a
// topology is first launched and no runtime load information exists
// (§IV-C): the number of workers is N*_w = min(N_u, N_w) where N_w is the
// number of worker nodes with available slots, and the workers are placed
// one per node, so that executors of a topology occupy at most one slot
// per node from the start.
type TStormInitial struct{}

var _ Algorithm = TStormInitial{}

// Name returns "tstorm-initial".
func (TStormInitial) Name() string { return "tstorm-initial" }

// Schedule assigns each topology independently, one worker per node.
func (TStormInitial) Schedule(in *Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	a := cluster.NewAssignment(0)
	free := in.InterleavedFreeSlots()
	taken := make(map[cluster.SlotID]bool)
	for _, top := range in.Topologies {
		// One candidate slot per node, the first free one.
		var perNode []cluster.SlotID
		seen := make(map[cluster.NodeID]bool)
		for _, s := range free {
			if taken[s] || seen[s.Node] {
				continue
			}
			seen[s.Node] = true
			perNode = append(perNode, s)
		}
		nw := top.NumWorkers()
		if nw > len(perNode) {
			nw = len(perNode)
		}
		if nw == 0 {
			return nil, fmt.Errorf("scheduler: no free nodes for topology %q", top.Name())
		}
		workers := perNode[:nw]
		for _, s := range workers {
			taken[s] = true
		}
		assignRoundRobin(a, top.Executors(), workers)
	}
	recordDecisions(in, "tstorm-initial", a)
	return a, nil
}

// Pinned returns every executor placed on one fixed slot — used by the
// problem-demonstration experiments (Fig. 2/3) that need hand-built
// placements.
type Pinned struct {
	// Assignment is returned as-is.
	Assignment *cluster.Assignment
}

var _ Algorithm = Pinned{}

// Name returns "pinned".
func (Pinned) Name() string { return "pinned" }

// Schedule returns the pinned assignment.
func (p Pinned) Schedule(in *Input) (*cluster.Assignment, error) {
	if p.Assignment == nil {
		return nil, fmt.Errorf("scheduler: pinned assignment is nil")
	}
	a := p.Assignment.Clone()
	if in != nil {
		recordDecisions(in, "pinned", a)
	}
	return a, nil
}

// PlaceExecutors is a helper for hand-built placements: it assigns the
// executors of the named components round-robin over the given slots.
func PlaceExecutors(a *cluster.Assignment, top *topology.Topology, slots []cluster.SlotID, components ...string) {
	var execs []topology.ExecutorID
	for _, e := range top.Executors() {
		for _, c := range components {
			if e.Component == c {
				execs = append(execs, e)
			}
		}
	}
	assignRoundRobin(a, execs, slots)
}
