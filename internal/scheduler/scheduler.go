// Package scheduler defines the scheduling framework — the input model
// (topologies, load snapshot, cluster, occupied slots), the Algorithm
// interface, and a registry enabling hot-swapping by name — plus the
// baseline schedulers the paper compares against: Storm's default
// round-robin scheduler, T-Storm's modified initial scheduler, and the
// offline/online schedulers of Aniello et al. (DEBS'13).
//
// The paper's own contribution, the traffic-aware online algorithm
// (Algorithm 1), lives in internal/core.
package scheduler

import (
	"fmt"
	"sort"
	"sync"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// Input carries everything a scheduling algorithm may use.
type Input struct {
	// Topologies are the applications being (re-)scheduled.
	Topologies []*topology.Topology
	// Cluster is the physical cluster.
	Cluster *cluster.Cluster
	// Load is the smoothed runtime load snapshot (may be empty for
	// offline algorithms or initial scheduling).
	Load *loaddb.Snapshot
	// Occupied marks slots unavailable because another topology (not in
	// Topologies) owns them.
	Occupied map[cluster.SlotID]bool
	// Demands maps each executor to its multi-resource demand estimate
	// (CPU MHz, memory MB, network MB/s), derived from Load by
	// DeriveDemands. May be nil on hand-built inputs; algorithms read
	// through DemandFor, which falls back to a model baseline.
	Demands map[topology.ExecutorID]Demand
	// Constraints bounds per-node resource use. All fractions are in
	// [0,1] and 0 selects full capacity; CPUFraction is the paper's
	// advice to set C_k below physical capacity (the old scalar
	// CapacityFraction field).
	Constraints Constraints
	// Probe, when non-nil, receives the run's placement decisions —
	// which slots were considered for each executor, with what gain, and
	// which constraint rejected the losers. Algorithms must behave
	// identically with and without it; each Schedule call owns its own
	// Builder, so recording never synchronizes with anything.
	Probe *decision.Builder
}

// NewInput assembles a scheduling Input from its parts — the single
// construction path shared by the simulated schedule generator
// (internal/core) and the live runtime's generator (internal/live), so
// both backends hand algorithms inputs of identical shape. load may be
// nil for offline/initial scheduling; capacityFraction populates
// Constraints.CPUFraction (0 selects full capacity). Per-executor
// resource demands are derived from the snapshot with the default
// DemandModel; callers needing a custom model overwrite Demands after
// construction.
func NewInput(topos []*topology.Topology, cl *cluster.Cluster, load *loaddb.Snapshot, capacityFraction float64) *Input {
	topos = append([]*topology.Topology(nil), topos...)
	return &Input{
		Topologies:  topos,
		Cluster:     cl,
		Load:        load,
		Demands:     DeriveDemands(topos, load, DemandModel{}),
		Constraints: Constraints{CPUFraction: capacityFraction},
		Occupied:    make(map[cluster.SlotID]bool),
	}
}

// OccupyNode marks every slot of the named node occupied — how generators
// fence off failed (or reserved) nodes from the algorithms.
func (in *Input) OccupyNode(id cluster.NodeID) {
	node, ok := in.Cluster.Node(id)
	if !ok {
		return
	}
	if in.Occupied == nil {
		in.Occupied = make(map[cluster.SlotID]bool)
	}
	for p := 0; p < node.NumSlots; p++ {
		in.Occupied[cluster.SlotID{Node: id, Port: cluster.BasePort + p}] = true
	}
}

// NumExecutors is the paper's N_e: executors across all input topologies.
func (in *Input) NumExecutors() int {
	n := 0
	for _, t := range in.Topologies {
		n += t.NumExecutors()
	}
	return n
}

// FreeSlots returns all slots not marked occupied, in deterministic
// node-major order.
func (in *Input) FreeSlots() []cluster.SlotID {
	var out []cluster.SlotID
	for _, s := range in.Cluster.Slots() {
		if !in.Occupied[s] {
			out = append(out, s)
		}
	}
	return out
}

// InterleavedFreeSlots returns the free slots ordered port-major (all
// nodes' first ports, then all second ports, ...), the order Storm's even
// scheduler effectively fills slots in.
func (in *Input) InterleavedFreeSlots() []cluster.SlotID {
	free := in.FreeSlots()
	sort.SliceStable(free, func(i, j int) bool {
		if free[i].Port != free[j].Port {
			return free[i].Port < free[j].Port
		}
		return free[i].Node < free[j].Node
	})
	return free
}

// Validate checks the input.
func (in *Input) Validate() error {
	if len(in.Topologies) == 0 {
		return fmt.Errorf("scheduler: no topologies")
	}
	if in.Cluster == nil {
		return fmt.Errorf("scheduler: no cluster")
	}
	if err := in.Constraints.Validate(); err != nil {
		return err
	}
	return nil
}

// Algorithm computes an executor-to-slot assignment for every executor of
// every input topology.
type Algorithm interface {
	Name() string
	Schedule(in *Input) (*cluster.Assignment, error)
}

// Registry maps algorithm names to instances, enabling hot-swap by name.
// It is safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	algos map[string]Algorithm
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{algos: make(map[string]Algorithm)}
}

// Register adds or replaces an algorithm under its Name.
func (r *Registry) Register(a Algorithm) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.algos[a.Name()] = a
}

// Get looks an algorithm up by name.
func (r *Registry) Get(name string) (Algorithm, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.algos[name]
	return a, ok
}

// Names lists registered algorithm names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.algos))
	for n := range r.algos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterBuiltins registers every algorithm this package defines under
// its canonical name — the baselines plus the arena contenders — so both
// schedule generators (sim and live) expose the full field for hot-swap
// and the arena bench can rank them all. Algorithm 1 itself lives in
// internal/core (above this package) and is registered by its caller;
// Pinned is omitted because it needs per-instance state.
func RegisterBuiltins(r *Registry) {
	for _, a := range []Algorithm{
		RoundRobin{}, TStormInitial{}, AnielloOffline{}, AnielloOnline{},
		LoadBalanced{}, RStorm{}, Hetero{},
	} {
		r.Register(a)
	}
}

// assignRoundRobin distributes executors over the given worker slots in
// round-robin order.
func assignRoundRobin(a *cluster.Assignment, execs []topology.ExecutorID, slots []cluster.SlotID) {
	for i, e := range execs {
		a.Assign(e, slots[i%len(slots)])
	}
}

// recordDecisions feeds the input's probe, if any, from a finished
// assignment — the uniform path for algorithms that place by structural
// rules rather than per-slot constraint evaluation (the baselines).
// Rank is declaration order and Options stays empty; Algorithm 1 in
// internal/core records its richer per-candidate trail itself.
func recordDecisions(in *Input, algorithm string, a *cluster.Assignment) {
	p := in.Probe
	if p == nil || a == nil || in.Cluster == nil {
		return
	}
	load := in.Load
	if load == nil {
		load = &loaddb.Snapshot{}
	}
	p.Begin(algorithm, in.NumExecutors(), in.Cluster.NumNodes())
	total := load.TotalTraffic()
	rank := 0
	for _, top := range in.Topologies {
		for _, e := range top.Executors() {
			if s, ok := a.Slot(e); ok {
				p.Place(decision.Placement{
					Executor: e,
					Rank:     rank,
					Traffic:  total[e],
					Load:     load.ExecLoad[e],
					Slot:     s,
				})
			}
			rank++
		}
	}
	p.Finish(a, load)
}
