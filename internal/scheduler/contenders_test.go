package scheduler

import (
	"testing"

	"tstorm/internal/cluster"
	"tstorm/internal/decision"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// contenderInput builds a two-topology input with deterministic demands
// so both contenders exercise multi-topology slot exclusivity.
func contenderInput(t *testing.T, cl *cluster.Cluster) *Input {
	t.Helper()
	t1 := buildChain(t, "a", 8, 2, 4)
	t2 := buildChain(t, "b", 4, 1, 2)
	db := loaddb.New(1)
	for ti, top := range []*topology.Topology{t1, t2} {
		for i, e := range top.Executors() {
			db.UpdateExecutorLoad(e, float64(200+150*((i+ti)%5)))
			db.UpdateExecutorMemory(e, float64(64+32*(i%3)))
		}
		execs := top.Executors()
		for i := 1; i < len(execs); i++ {
			db.UpdateTraffic(execs[i-1], execs[i], float64(1000*(i+ti)))
		}
	}
	return NewInput([]*topology.Topology{t1, t2}, cl, db.Snapshot(), 0.9)
}

// checkComplete asserts every executor placed and no slot shared between
// topologies — the engine's hard requirements on any assignment.
func checkComplete(t *testing.T, in *Input, a *cluster.Assignment) {
	t.Helper()
	want := 0
	for _, top := range in.Topologies {
		want += top.NumExecutors()
	}
	if len(a.Executors) != want {
		t.Fatalf("placed %d executors, want %d", len(a.Executors), want)
	}
	slotOwner := make(map[cluster.SlotID]string)
	for e, s := range a.Executors {
		if owner, ok := slotOwner[s]; ok && owner != e.Topology {
			t.Fatalf("slot %v shared between topologies %q and %q", s, owner, e.Topology)
		}
		slotOwner[s] = e.Topology
	}
}

func TestContendersCompleteAndDeterministic(t *testing.T) {
	cl := tenNodes(t)
	for _, algo := range []Algorithm{RStorm{}, Hetero{}} {
		t.Run(algo.Name(), func(t *testing.T) {
			in := contenderInput(t, cl)
			a, err := algo.Schedule(in)
			if err != nil {
				t.Fatal(err)
			}
			checkComplete(t, in, a)
			b, err := algo.Schedule(contenderInput(t, cl))
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatal("two runs over the same input disagree")
			}
		})
	}
}

// TestRStormRespectsAllDimensions overloads one dimension at a time and
// checks that packing spreads instead of overcommitting it.
func TestRStormRespectsAllDimensions(t *testing.T) {
	top := buildChain(t, "m", 20, 2, 5) // 14 executors
	// Small-memory nodes: 2 executors of 512 MB fill a 1200 MB node.
	nodes := make([]cluster.Node, 8)
	for i := range nodes {
		nodes[i] = cluster.Node{ID: cluster.NodeID(rune('a' + i)), Cores: 8,
			CoreMHz: 3000, NumSlots: 4, MemMB: 1200}
	}
	cl, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	db := loaddb.New(1)
	for _, e := range top.Executors() {
		db.UpdateExecutorLoad(e, 100)
		db.UpdateExecutorMemory(e, 512)
	}
	in := NewInput([]*topology.Topology{top}, cl, db.Snapshot(), 0)
	a, err := RStorm{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, in, a)
	perNode := make(map[cluster.NodeID]float64)
	for e := range a.Executors {
		perNode[a.Executors[e].Node] += in.DemandFor(e).MemMB
	}
	for n, mb := range perNode {
		if mb > 1200 {
			t.Fatalf("node %s memory overcommitted: %v MB of 1200", n, mb)
		}
	}
	// 14 executors × 512 MB at ≤2 per node needs ≥7 nodes.
	if got := a.NumUsedNodes(); got < 7 {
		t.Fatalf("memory constraint ignored: only %d nodes used", got)
	}
}

// TestHeteroPrefersFastNodes puts two node classes in the cluster and
// checks the heavy executors land on the fast one.
func TestHeteroPrefersFastNodes(t *testing.T) {
	nodes := []cluster.Node{
		{ID: "fast", Cores: 16, CoreMHz: 4000, NumSlots: 8},
		{ID: "slow", Cores: 16, CoreMHz: 1000, NumSlots: 8},
	}
	cl, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	top := buildChain(t, "h", 8, 1, 2) // 1+2+2+2 = 7 executors
	db := loaddb.New(1)
	for i, e := range top.Executors() {
		db.UpdateExecutorLoad(e, float64(3000-200*i))
	}
	in := NewInput([]*topology.Topology{top}, cl, db.Snapshot(), 0)
	a, err := Hetero{}.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, in, a)
	// The fast node has 64 GHz usable; all 7 executors (≤ 21 GHz) fit, and
	// every placement scores higher there — nothing should touch "slow".
	for e, s := range a.Executors {
		if s.Node != "fast" {
			t.Fatalf("executor %v landed on %s with the fast node feasible", e, s.Node)
		}
	}
}

// TestContenderProbesNamePerDimensionConstraints runs rstorm with a probe
// on a memory-constrained cluster and checks losing slots carry resource-
// dimension rejection labels.
func TestContenderProbesNamePerDimensionConstraints(t *testing.T) {
	top := buildChain(t, "p", 20, 2, 5)
	nodes := make([]cluster.Node, 8)
	for i := range nodes {
		nodes[i] = cluster.Node{ID: cluster.NodeID(rune('a' + i)), Cores: 8,
			CoreMHz: 3000, NumSlots: 4, MemMB: 1200}
	}
	cl, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	db := loaddb.New(1)
	for _, e := range top.Executors() {
		db.UpdateExecutorLoad(e, 100)
		db.UpdateExecutorMemory(e, 512)
	}
	in := NewInput([]*topology.Topology{top}, cl, db.Snapshot(), 0)
	probe := decision.NewBuilder()
	in.Probe = probe
	if _, err := (RStorm{}).Schedule(in); err != nil {
		t.Fatal(err)
	}
	rep := probe.Report()
	if rep.Algorithm != "rstorm" {
		t.Fatalf("report algorithm %q, want rstorm", rep.Algorithm)
	}
	if len(rep.Placements) != top.NumExecutors() {
		t.Fatalf("%d placements recorded, want %d", len(rep.Placements), top.NumExecutors())
	}
	byConstraint := make(map[decision.Constraint]int)
	for _, p := range rep.Placements {
		if len(p.Options) == 0 {
			t.Fatalf("placement of %v recorded no candidate slots", p.Executor)
		}
		chosen := 0
		for _, o := range p.Options {
			if o.Chosen {
				chosen++
			}
			if o.Rejected != "" {
				byConstraint[o.Rejected]++
			}
		}
		if chosen != 1 {
			t.Fatalf("placement of %v marked %d chosen slots", p.Executor, chosen)
		}
	}
	if byConstraint[decision.RejectedMemory] == 0 {
		t.Fatalf("no slot rejected on the memory dimension: %v", byConstraint)
	}
}

func TestRegisterBuiltins(t *testing.T) {
	r := NewRegistry()
	RegisterBuiltins(r)
	for _, name := range []string{"default", "tstorm-initial", "aniello-offline",
		"aniello-online", "load-balanced", "rstorm", "hetero"} {
		if _, ok := r.Get(name); !ok {
			t.Fatalf("builtin %q not registered", name)
		}
	}
	// An already-registered name survives: callers register their running
	// algorithm after the builtins, so the instance in use wins clashes.
	r2 := NewRegistry()
	RegisterBuiltins(r2)
	r2.Register(Pinned{Assignment: cluster.NewAssignment(7)})
	if len(r2.Names()) != 8 {
		t.Fatalf("names = %v, want 8 entries", r2.Names())
	}
}
