package scheduler

import (
	"fmt"
	"sort"

	"tstorm/internal/cluster"
	"tstorm/internal/loaddb"
	"tstorm/internal/topology"
)

// LoadBalanced is a traffic-blind ablation baseline: it uses the same
// runtime workload information as Algorithm 1 and the same
// one-slot-per-topology-per-node rule, but places each executor on the
// least-loaded node instead of minimizing inter-node traffic. Comparing
// it against T-Storm isolates the value of traffic-awareness itself from
// the value of load-aware consolidation.
type LoadBalanced struct{}

var _ Algorithm = LoadBalanced{}

// Name returns "load-balanced".
func (LoadBalanced) Name() string { return "load-balanced" }

// Schedule places executors (heaviest first) on the currently
// least-loaded node, one slot per topology per node.
func (LoadBalanced) Schedule(in *Input) (*cluster.Assignment, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	load := in.Load
	if load == nil {
		load = &loaddb.Snapshot{}
	}
	var execs []topology.ExecutorID
	for _, top := range in.Topologies {
		execs = append(execs, top.Executors()...)
	}
	// Heaviest first: the classic LPT greedy for makespan balance.
	sort.SliceStable(execs, func(i, j int) bool {
		li, lj := load.ExecLoad[execs[i]], load.ExecLoad[execs[j]]
		if li != lj {
			return li > lj
		}
		return execs[i].Less(execs[j])
	})

	free := in.FreeSlots()
	freeByNode := make(map[cluster.NodeID][]cluster.SlotID)
	var nodes []cluster.NodeID
	for _, s := range free {
		if len(freeByNode[s.Node]) == 0 {
			nodes = append(nodes, s.Node)
		}
		freeByNode[s.Node] = append(freeByNode[s.Node], s)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("scheduler: no free slots")
	}

	a := cluster.NewAssignment(0)
	nodeLoad := make(map[cluster.NodeID]float64)
	topoSlot := make(map[cluster.NodeID]map[string]cluster.SlotID)
	slotTaken := make(map[cluster.SlotID]bool)
	for _, e := range execs {
		// Least-loaded node first; stable tie-break by node order.
		best := -1
		for i, n := range nodes {
			if _, has := topoSlot[n][e.Topology]; !has {
				// Needs a fresh slot on this node.
				avail := false
				for _, s := range freeByNode[n] {
					if !slotTaken[s] {
						avail = true
						break
					}
				}
				if !avail {
					continue
				}
			}
			if best < 0 || nodeLoad[n] < nodeLoad[nodes[best]] {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("scheduler: no slot for executor %v", e)
		}
		n := nodes[best]
		slot, has := topoSlot[n][e.Topology]
		if !has {
			for _, s := range freeByNode[n] {
				if !slotTaken[s] {
					slot = s
					break
				}
			}
			slotTaken[slot] = true
			if topoSlot[n] == nil {
				topoSlot[n] = make(map[string]cluster.SlotID)
			}
			topoSlot[n][e.Topology] = slot
		}
		a.Assign(e, slot)
		nodeLoad[n] += load.ExecLoad[e]
	}
	recordDecisions(in, "load-balanced", a)
	return a, nil
}
