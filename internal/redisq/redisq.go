// Package redisq is the Redis-list substrate the paper's Word Count and
// Log Stream topologies consume from: producers RPUSH lines onto named
// lists and spouts LPOP (or block with BLPop) from them. Only the list
// operations the workloads need are implemented.
package redisq

import "sync"

// Server is an in-memory Redis-like list server. It is safe for concurrent
// use (the simulation itself is single-threaded, but tests and examples may
// load queues from other goroutines).
type Server struct {
	mu      sync.Mutex
	lists   map[string][]string
	waiters map[string][]func(string)
	pushed  map[string]int64
	popped  map[string]int64
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		lists:   make(map[string][]string),
		waiters: make(map[string][]func(string)),
		pushed:  make(map[string]int64),
		popped:  make(map[string]int64),
	}
}

// RPush appends values to the tail of the named list and returns the new
// length. Blocked BLPop waiters are served first, in FIFO order.
func (s *Server) RPush(key string, vals ...string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushed[key] += int64(len(vals))
	for _, v := range vals {
		if ws := s.waiters[key]; len(ws) > 0 {
			fn := ws[0]
			s.waiters[key] = ws[1:]
			s.popped[key]++
			fn(v)
			continue
		}
		s.lists[key] = append(s.lists[key], v)
	}
	return len(s.lists[key])
}

// LPop removes and returns the head of the named list.
func (s *Server) LPop(key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lists[key]
	if len(l) == 0 {
		return "", false
	}
	v := l[0]
	s.lists[key] = l[1:]
	s.popped[key]++
	return v, true
}

// BLPop pops the head of the list if available; otherwise it registers fn
// to be called with the next pushed value. fn is invoked synchronously
// from RPush (callers in the simulation should re-schedule work rather
// than doing heavy processing inside fn).
func (s *Server) BLPop(key string, fn func(string)) {
	s.mu.Lock()
	l := s.lists[key]
	if len(l) > 0 {
		v := l[0]
		s.lists[key] = l[1:]
		s.popped[key]++
		s.mu.Unlock()
		fn(v)
		return
	}
	s.waiters[key] = append(s.waiters[key], fn)
	s.mu.Unlock()
}

// LLen returns the length of the named list.
func (s *Server) LLen(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lists[key])
}

// Pushed returns how many values were ever pushed onto the named list.
func (s *Server) Pushed(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushed[key]
}

// Popped returns how many values were ever consumed from the named list.
func (s *Server) Popped(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.popped[key]
}
