package redisq

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestPushPopFIFO(t *testing.T) {
	s := NewServer()
	if n := s.RPush("q", "a", "b", "c"); n != 3 {
		t.Fatalf("RPush len = %d, want 3", n)
	}
	for _, want := range []string{"a", "b", "c"} {
		got, ok := s.LPop("q")
		if !ok || got != want {
			t.Fatalf("LPop = (%q, %v), want %q", got, ok, want)
		}
	}
	if _, ok := s.LPop("q"); ok {
		t.Fatal("LPop on empty list returned a value")
	}
}

func TestLLenAndCounters(t *testing.T) {
	s := NewServer()
	s.RPush("q", "a", "b")
	if s.LLen("q") != 2 {
		t.Fatalf("LLen = %d, want 2", s.LLen("q"))
	}
	s.LPop("q")
	if s.Pushed("q") != 2 || s.Popped("q") != 1 {
		t.Fatalf("Pushed=%d Popped=%d, want 2,1", s.Pushed("q"), s.Popped("q"))
	}
	if s.LLen("missing") != 0 {
		t.Fatal("LLen of missing key should be 0")
	}
}

func TestBLPopImmediateWhenAvailable(t *testing.T) {
	s := NewServer()
	s.RPush("q", "x")
	var got string
	s.BLPop("q", func(v string) { got = v })
	if got != "x" {
		t.Fatalf("BLPop delivered %q, want x", got)
	}
	if s.LLen("q") != 0 {
		t.Fatal("value not consumed")
	}
}

func TestBLPopBlocksUntilPush(t *testing.T) {
	s := NewServer()
	var got []string
	s.BLPop("q", func(v string) { got = append(got, v) })
	s.BLPop("q", func(v string) { got = append(got, v) })
	if len(got) != 0 {
		t.Fatal("waiters fired before any push")
	}
	s.RPush("q", "first", "second", "third")
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("waiters received %v", got)
	}
	// Remaining value stays on the list.
	if v, ok := s.LPop("q"); !ok || v != "third" {
		t.Fatalf("leftover = (%q, %v)", v, ok)
	}
}

func TestIndependentKeys(t *testing.T) {
	s := NewServer()
	s.RPush("a", "1")
	s.RPush("b", "2")
	if v, _ := s.LPop("b"); v != "2" {
		t.Fatalf("cross-key interference: got %q", v)
	}
}

// Property: every pushed value is popped exactly once, in push order,
// regardless of how pops interleave between LPop and BLPop.
func TestPropertyFIFOConservation(t *testing.T) {
	f := func(ops []bool) bool {
		s := NewServer()
		var delivered []string
		pushes := 0
		for i, blocking := range ops {
			v := strconv.Itoa(i)
			if blocking {
				s.BLPop("q", func(x string) { delivered = append(delivered, x) })
			}
			s.RPush("q", v)
			pushes++
			if !blocking {
				if x, ok := s.LPop("q"); ok {
					delivered = append(delivered, x)
				}
			}
		}
		// Drain the rest.
		for {
			x, ok := s.LPop("q")
			if !ok {
				break
			}
			delivered = append(delivered, x)
		}
		if len(delivered) != pushes {
			return false
		}
		for i, v := range delivered {
			if v != strconv.Itoa(i) {
				return false
			}
		}
		return s.Popped("q") == int64(pushes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
