package metrics

import (
	"sync"
	"testing"
)

func TestSyncTrafficMatrixConcurrent(t *testing.T) {
	m := NewSyncTrafficMatrix()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m.Add(w, (w+1)%workers, 1)
			}
		}(w)
	}
	wg.Wait()
	total := 0.0
	for _, v := range m.Snapshot() {
		total += v
	}
	if total != workers*perWorker {
		t.Fatalf("total = %v, want %d", total, workers*perWorker)
	}
	drained := m.Drain()
	if len(drained) != workers {
		t.Fatalf("drained %d pairs, want %d", len(drained), workers)
	}
	if len(m.Snapshot()) != 0 {
		t.Fatalf("matrix not empty after drain")
	}
}

func TestSyncHistogramConcurrentAndDrain(t *testing.T) {
	h := NewSyncLatencyHistogram()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Add(1.0)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	window := h.Drain()
	if window.Count() != workers*perWorker {
		t.Fatalf("drained count = %d, want %d", window.Count(), workers*perWorker)
	}
	if h.Count() != 0 {
		t.Fatalf("histogram not empty after drain: %d", h.Count())
	}
	// The replacement histogram keeps the original shape.
	h.Add(2.5)
	if got := h.Quantile(1); got <= 0 {
		t.Fatalf("quantile after drain = %v, want > 0", got)
	}
}
