package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 22 {
		t.Fatalf("Mean = %v, want 22", h.Mean())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %v, want 100", h.Max())
	}
	// Median within one bucket width of 3.
	med := h.Quantile(0.5)
	if med < 2 || med > 4 {
		t.Fatalf("median = %v, want ≈3", med)
	}
	// p100 never exceeds the true max.
	if h.Quantile(1) > 100 {
		t.Fatalf("p100 = %v > max", h.Quantile(1))
	}
}

func TestHistogramIgnoresBadValues(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(0)
	h.Add(-5)
	h.Add(math.NaN())
	h.Add(math.Inf(1))
	if h.Count() != 0 {
		t.Fatalf("bad values recorded: %d", h.Count())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(1, 100, 10)
	h.Add(0.0001) // below lo → first bin
	h.Add(1e9)    // above hi → last bin
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0.25); got > 1.3 {
		t.Fatalf("clamped-low quantile = %v", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, c := range [][3]float64{{0, 10, 5}, {10, 5, 5}, {1, 10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", c)
				}
			}()
			NewHistogram(c[0], c[1], int(c[2]))
		}()
	}
}

// Property: quantile estimates carry bounded relative error vs exact
// order statistics (bucket ratio at 20/decade is 10^(1/20) ≈ 1.122).
func TestPropertyQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(n uint8) bool {
		count := int(n)%500 + 50
		h := NewLatencyHistogram()
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = math.Exp(rng.Float64()*12 - 3) // ~0.05ms..8000ms
			h.Add(vals[i])
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := vals[int(math.Ceil(q*float64(count)))-1]
			got := h.Quantile(q)
			if got < exact/1.3 || got > exact*1.3 {
				t.Logf("q=%v exact=%v got=%v", q, exact, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewLatencyHistogram()
	for i := 0; i < 1000; i++ {
		h.Add(math.Exp(rng.Float64() * 10))
	}
	prev := 0.0
	for q := 0.05; q <= 1.0; q += 0.05 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, cur, prev)
		}
		prev = cur
	}
}
