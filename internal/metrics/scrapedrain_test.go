package metrics

import (
	"sync"
	"testing"
)

// TestScrapeNeverLosesDrainSamples is the scrape/drain-conflict proof: a
// scraper calling Snapshot as fast as it can, concurrent with writers, a
// health sampler diffing consecutive snapshots (the windowed-p99 path),
// and a benchmark repeatedly draining windows, must not cost the
// benchmark a single sample — every value lands in exactly one drained
// window, the sampler's Sub windows are monotone and non-negative, and
// the cumulative snapshot converges to the full total.
func TestScrapeNeverLosesDrainSamples(t *testing.T) {
	h := NewSyncLatencyHistogram()
	const writers, per = 4, 2000
	total := int64(writers * per)

	var wg sync.WaitGroup
	stopScrape := make(chan struct{})

	// Scraper: hammer the cumulative snapshot during the whole run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
				if s := h.Snapshot(); s.Count() > total {
					t.Errorf("snapshot count %d exceeds written total %d", s.Count(), total)
					return
				}
			}
		}
	}()

	// Sampler: diff consecutive cumulative snapshots exactly like the
	// health collector computing a per-window p99. Windows must never go
	// negative (Sub clamps, but a conserving histogram never needs the
	// clamp on count) and their sum must track the cumulative view.
	var sampledWindows int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev *Histogram
		for {
			select {
			case <-stopScrape:
				// One final window so the sampler has seen everything the
				// cumulative side ever published.
				cur := h.Snapshot()
				sampledWindows += cur.Sub(prev).Count()
				return
			default:
				cur := h.Snapshot()
				win := cur.Sub(prev)
				if win.Count() < 0 {
					t.Errorf("sampled window count went negative: %d", win.Count())
					return
				}
				sampledWindows += win.Count()
				prev = cur
			}
		}
	}()

	// Benchmark: drain windows continuously, summing what each returns.
	var drained int64
	var drainWG sync.WaitGroup
	stopDrain := make(chan struct{})
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-stopDrain:
				return
			default:
				drained += h.Drain().Count()
			}
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < per; i++ {
				h.Add(1.0)
			}
		}()
	}
	writerWG.Wait()
	close(stopDrain)
	drainWG.Wait()
	drained += h.Drain().Count() // final partial window
	close(stopScrape)
	wg.Wait()

	if drained != total {
		t.Fatalf("drained windows sum to %d samples, writers recorded %d — scrape stole %d",
			drained, total, total-drained)
	}
	if got := h.Snapshot().Count(); got != total {
		t.Fatalf("cumulative snapshot has %d samples, want %d", got, total)
	}
	if sampledWindows != total {
		t.Fatalf("sampled Sub windows sum to %d samples, want %d — the sampler view leaks or double-counts",
			sampledWindows, total)
	}
}

// TestSnapshotIsCumulativeAcrossDrains pins the two views' semantics:
// Drain returns disjoint windows, Snapshot the lifetime union.
func TestSnapshotIsCumulativeAcrossDrains(t *testing.T) {
	h := NewSyncLatencyHistogram()
	h.Add(1)
	h.Add(2)
	if w := h.Drain(); w.Count() != 2 {
		t.Fatalf("first window %d, want 2", w.Count())
	}
	h.Add(3)
	if got := h.Snapshot().Count(); got != 3 {
		t.Fatalf("cumulative %d after drain, want 3", got)
	}
	if w := h.Drain(); w.Count() != 1 {
		t.Fatalf("second window %d, want 1", w.Count())
	}
	if got := h.Snapshot().Count(); got != 3 {
		t.Fatalf("cumulative %d, want 3", got)
	}
	// The snapshot is a copy: mutating it must not touch the source.
	s := h.Snapshot()
	s.Add(4)
	if got := h.Snapshot().Count(); got != 3 {
		t.Fatalf("snapshot aliased internal state: %d, want 3", got)
	}
}
