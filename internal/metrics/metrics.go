// Package metrics provides the measurement primitives the paper relies on:
// the EWMA estimator used by load monitors (Y = αY + (1−α)·Sample), the
// 1-minute-bucketed averages used to report tuple processing time, stepped
// gauges (e.g. worker nodes in use over time), and the inter-executor
// traffic matrix sampled by monitors.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tstorm/internal/sim"
)

// EWMA is the exponentially weighted moving average the paper uses to
// smooth instantaneous load readings: Y = αY + (1−α)·Sample. The smaller
// the α, the more sensitive the estimate is to new samples. The first
// sample initializes Y directly.
type EWMA struct {
	alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an estimator with coefficient alpha in [0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("metrics: EWMA alpha %v out of [0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds in one instantaneous sample and returns the new estimate.
func (e *EWMA) Update(sample float64) float64 {
	if !e.seen {
		e.value = sample
		e.seen = true
		return e.value
	}
	e.value = e.alpha*e.value + (1-e.alpha)*sample
	return e.value
}

// Value returns the current estimate (zero before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been folded in.
func (e *EWMA) Initialized() bool { return e.seen }

// Point is one bucket of a bucketed series.
type Point struct {
	// Start is the bucket's start instant.
	Start sim.Time
	// Mean is the bucket average (0 when Count is 0).
	Mean float64
	// Count is the number of samples in the bucket.
	Count int64
	// Sum is the bucket total.
	Sum float64
	// Max is the largest sample (0 when Count is 0).
	Max float64
}

// Series accumulates samples into fixed-width time buckets. The paper
// reports 1-minute averages of tuple processing time; Series with
// width=time.Minute reproduces that.
type Series struct {
	width   time.Duration
	buckets map[int64]*Point
}

// NewSeries returns a series with the given bucket width.
func NewSeries(width time.Duration) *Series {
	if width <= 0 {
		panic("metrics: non-positive series bucket width")
	}
	return &Series{width: width, buckets: make(map[int64]*Point)}
}

// Width returns the bucket width.
func (s *Series) Width() time.Duration { return s.width }

// Add records one sample at instant t.
func (s *Series) Add(t sim.Time, v float64) {
	idx := int64(t) / int64(s.width)
	b := s.buckets[idx]
	if b == nil {
		b = &Point{Start: sim.Time(idx * int64(s.width))}
		s.buckets[idx] = b
	}
	b.Count++
	b.Sum += v
	b.Mean = b.Sum / float64(b.Count)
	if v > b.Max {
		b.Max = v
	}
}

// Points returns the non-empty buckets in time order. The returned slice
// is a copy and safe to retain.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.buckets))
	for _, b := range s.buckets {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// MeanAfter averages all samples recorded at or after t — the paper's
// "counting average processing times after stabilization at Xs".
func (s *Series) MeanAfter(t sim.Time) float64 {
	var sum float64
	var n int64
	for _, b := range s.buckets {
		if b.Start >= t {
			sum += b.Sum
			n += b.Count
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// TotalCount returns the number of samples across all buckets.
func (s *Series) TotalCount() int64 {
	var n int64
	for _, b := range s.buckets {
		n += b.Count
	}
	return n
}

// StepPoint is one level change of a stepped gauge.
type StepPoint struct {
	At    sim.Time
	Value float64
}

// StepSeries records a piecewise-constant value over time, e.g. the number
// of worker nodes in use. Consecutive identical values are coalesced.
type StepSeries struct {
	steps []StepPoint
}

// Set records that the gauge has the given value from instant t on.
func (s *StepSeries) Set(t sim.Time, v float64) {
	if n := len(s.steps); n > 0 {
		if s.steps[n-1].Value == v {
			return
		}
		if s.steps[n-1].At == t {
			s.steps[n-1].Value = v
			// Coalesce back if this made it equal to its predecessor.
			if n > 1 && s.steps[n-2].Value == v {
				s.steps = s.steps[:n-1]
			}
			return
		}
	}
	s.steps = append(s.steps, StepPoint{At: t, Value: v})
}

// At returns the gauge value at instant t (0 before the first step).
func (s *StepSeries) At(t sim.Time) float64 {
	v := 0.0
	for _, st := range s.steps {
		if st.At > t {
			break
		}
		v = st.Value
	}
	return v
}

// Steps returns a copy of all level changes in time order.
func (s *StepSeries) Steps() []StepPoint {
	out := make([]StepPoint, len(s.steps))
	copy(out, s.steps)
	return out
}

// Last returns the most recent value (0 if never set).
func (s *StepSeries) Last() float64 {
	if len(s.steps) == 0 {
		return 0
	}
	return s.steps[len(s.steps)-1].Value
}

// Pair identifies a directed executor pair (from → to) in the traffic
// matrix. Executors are identified by dense integer IDs.
type Pair struct {
	From, To int
}

// TrafficMatrix counts tuples sent between executor pairs. Monitors call
// Drain every sampling period to obtain and reset the window's counts.
type TrafficMatrix struct {
	counts map[Pair]float64
}

// NewTrafficMatrix returns an empty matrix.
func NewTrafficMatrix() *TrafficMatrix {
	return &TrafficMatrix{counts: make(map[Pair]float64)}
}

// Add records n tuples sent from one executor to another.
func (m *TrafficMatrix) Add(from, to int, n float64) {
	m.counts[Pair{from, to}] += n
}

// Get returns the current count for a pair.
func (m *TrafficMatrix) Get(from, to int) float64 {
	return m.counts[Pair{from, to}]
}

// Drain returns all non-zero counts and resets the matrix.
func (m *TrafficMatrix) Drain() map[Pair]float64 {
	out := m.counts
	m.counts = make(map[Pair]float64, len(out))
	return out
}

// Snapshot returns a copy of the counts without resetting.
func (m *TrafficMatrix) Snapshot() map[Pair]float64 {
	out := make(map[Pair]float64, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}
