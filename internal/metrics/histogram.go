package metrics

import (
	"fmt"
	"math"
)

// Histogram is a fixed-memory, log-bucketed histogram for positive values
// (latencies in milliseconds). Buckets are geometric with binsPerDecade
// bins per power of ten, spanning [lo, hi); values outside are clamped
// into the edge bins. Quantiles are answered from bucket midpoints, so
// relative error is bounded by the bucket ratio (~12% at 20 bins/decade).
type Histogram struct {
	lo, hi        float64
	binsPerDecade int
	counts        []int64
	total         int64
	sum           float64
	max           float64
}

// NewHistogram returns a histogram over [lo, hi) with the given bins per
// decade. lo must be positive and less than hi.
func NewHistogram(lo, hi float64, binsPerDecade int) *Histogram {
	if lo <= 0 || hi <= lo || binsPerDecade < 1 {
		panic(fmt.Sprintf("metrics: bad histogram bounds (%v, %v, %d)", lo, hi, binsPerDecade))
	}
	decades := math.Log10(hi / lo)
	n := int(math.Ceil(decades * float64(binsPerDecade)))
	return &Histogram{lo: lo, hi: hi, binsPerDecade: binsPerDecade, counts: make([]int64, n)}
}

// NewLatencyHistogram covers 1 µs to ~10^7 ms (2.8 hours) at 20 bins per
// decade — every latency this system can produce.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(1e-3, 1e7, 20)
}

func (h *Histogram) bin(v float64) int {
	if v < h.lo {
		return 0
	}
	i := int(math.Log10(v/h.lo) * float64(h.binsPerDecade))
	if i >= len(h.counts) {
		return len(h.counts) - 1
	}
	return i
}

// Add records one value. Non-positive and NaN values are ignored.
func (h *Histogram) Add(v float64) {
	if !(v > 0) || math.IsInf(v, 0) {
		return
	}
	h.counts[h.bin(v)]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// upperBound returns bin i's exclusive upper bound.
func (h *Histogram) upperBound(i int) float64 {
	return h.lo * math.Pow(10, float64(i+1)/float64(h.binsPerDecade))
}

// Bucket is one non-empty bin of a histogram, for exposition.
type Bucket struct {
	// UpperBound is the bin's exclusive upper bound.
	UpperBound float64
	// Count is the number of values recorded in the bin.
	Count int64
}

// Buckets returns the non-empty bins in ascending bound order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, Bucket{UpperBound: h.upperBound(i), Count: c})
		}
	}
	return out
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]int64(nil), h.counts...)
	return &c
}

// Sub returns the window between two cumulative snapshots of the same
// histogram: a histogram holding the samples recorded in h but not yet
// in prev. It panics on mismatched geometry. The window's max is h's
// cumulative max — an upper bound, since per-window maxima are not
// retained — which only tightens the quantile cap.
func (h *Histogram) Sub(prev *Histogram) *Histogram {
	if prev == nil {
		return h.Clone()
	}
	if h.lo != prev.lo || h.hi != prev.hi || h.binsPerDecade != prev.binsPerDecade {
		panic("metrics: Sub across mismatched histogram geometries")
	}
	w := *h
	w.counts = make([]int64, len(h.counts))
	for i := range h.counts {
		if d := h.counts[i] - prev.counts[i]; d > 0 {
			w.counts[i] = d
		}
	}
	w.total = h.total - prev.total
	if w.total < 0 {
		w.total = 0
	}
	w.sum = h.sum - prev.sum
	if w.sum < 0 {
		w.sum = 0
	}
	return &w
}

// Count reports the number of recorded values.
func (h *Histogram) Count() int64 { return h.total }

// Sum reports the exact sum of recorded values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the exact mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max reports the exact maximum recorded value.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the approximate q-quantile (0 < q ≤ 1), from the
// geometric midpoint of the bucket containing it. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lower := h.lo * math.Pow(10, float64(i)/float64(h.binsPerDecade))
			upper := h.lo * math.Pow(10, float64(i+1)/float64(h.binsPerDecade))
			mid := math.Sqrt(lower * upper)
			if mid > h.max && h.max > 0 {
				return h.max
			}
			return mid
		}
	}
	return h.max
}
